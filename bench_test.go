// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each
// BenchmarkFigN replays a scaled-down version of the corresponding
// experiment and reports the figure's headline quantities as custom
// metrics (pJ/write, cells/write, errors/write, coverage %), so
// `go test -bench=. -benchmem` reproduces the paper's series end to end.
// Encode-throughput benchmarks for every scheme follow at the bottom.
package wlcrc_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"wlcrc"
	"wlcrc/internal/core"
	"wlcrc/internal/exp"
	"wlcrc/internal/hw"
	"wlcrc/internal/pcm"
	"wlcrc/internal/sim"
	"wlcrc/internal/trace"
	"wlcrc/internal/workload"
)

// benchConfig scales experiments down so a full -bench=. pass stays in
// benchmark-friendly territory while preserving the shapes.
func benchConfig() exp.Config {
	cfg := exp.DefaultConfig()
	cfg.WritesPerBenchmark = 400
	cfg.RandomWrites = 600
	cfg.Footprint = 256
	return cfg
}

func BenchmarkFig1Random(b *testing.B) {
	cfg := benchConfig()
	var points []exp.SweepPoint
	for i := 0; i < b.N; i++ {
		points, _ = exp.Figure1(cfg, true)
	}
	report16(b, points)
}

func BenchmarkFig1Biased(b *testing.B) {
	cfg := benchConfig()
	var points []exp.SweepPoint
	for i := 0; i < b.N; i++ {
		points, _ = exp.Figure1(cfg, false)
	}
	report16(b, points)
}

func report16(b *testing.B, points []exp.SweepPoint) {
	for _, p := range points {
		if p.Granularity == 16 {
			b.ReportMetric(p.Total(), "pJ/write@16b")
		}
	}
}

func BenchmarkFig2CosetCandidatesRandom(b *testing.B) {
	cfg := benchConfig()
	var pts map[string][]exp.SweepPoint
	for i := 0; i < b.N; i++ {
		pts, _ = exp.Figure2(cfg)
	}
	b.ReportMetric(pts["6cosets"][1].Total(), "6cosets-pJ@16b")
	b.ReportMetric(pts["4cosets"][1].Total(), "4cosets-pJ@16b")
}

func BenchmarkFig3CosetCandidatesBiased(b *testing.B) {
	cfg := benchConfig()
	var pts map[string][]exp.SweepPoint
	for i := 0; i < b.N; i++ {
		pts, _ = exp.Figure3(cfg)
	}
	b.ReportMetric(pts["6cosets"][1].Total(), "6cosets-pJ@16b")
	b.ReportMetric(pts["4cosets"][1].Total(), "4cosets-pJ@16b")
}

func BenchmarkFig4Compressibility(b *testing.B) {
	cfg := benchConfig()
	var rows []exp.Figure4Row
	for i := 0; i < b.N; i++ {
		rows, _ = exp.Figure4(cfg)
	}
	avg := rows[len(rows)-1]
	b.ReportMetric(100*avg.WLC[6], "WLC6-%")
	b.ReportMetric(100*avg.WLC[9], "WLC9-%")
	b.ReportMetric(100*avg.FPCBDI, "FPC+BDI-%")
	b.ReportMetric(100*avg.COC, "COC-%")
}

func BenchmarkFig5RestrictedCosets(b *testing.B) {
	cfg := benchConfig()
	var pts map[string][]exp.SweepPoint
	for i := 0; i < b.N; i++ {
		pts, _ = exp.Figure5(cfg)
	}
	b.ReportMetric(pts["3-r-cosets"][1].Total(), "3r-pJ@16b")
	b.ReportMetric(pts["4cosets"][1].Total(), "4cosets-pJ@16b")
}

// evalOnce caches the Figure 8/9/10 matrix across the three benches when
// run in the same process.
var evalCache *exp.Evaluation

func evalForBench(b *testing.B) *exp.Evaluation {
	b.Helper()
	if evalCache == nil {
		evalCache = exp.RunEvaluation(benchConfig())
	}
	return evalCache
}

func BenchmarkFig8WriteEnergy(b *testing.B) {
	var e *exp.Evaluation
	for i := 0; i < b.N; i++ {
		evalCache = nil
		e = evalForBench(b)
	}
	b.ReportMetric(e.Average("Baseline", sim.Metrics.AvgEnergy), "Baseline-pJ")
	b.ReportMetric(e.Average("6cosets", sim.Metrics.AvgEnergy), "6cosets-pJ")
	b.ReportMetric(e.Average("WLCRC-16", sim.Metrics.AvgEnergy), "WLCRC16-pJ")
}

func BenchmarkFig9Endurance(b *testing.B) {
	var e *exp.Evaluation
	for i := 0; i < b.N; i++ {
		evalCache = nil
		e = evalForBench(b)
	}
	b.ReportMetric(e.Average("Baseline", sim.Metrics.AvgUpdated), "Baseline-cells")
	b.ReportMetric(e.Average("WLCRC-16", sim.Metrics.AvgUpdated), "WLCRC16-cells")
}

func BenchmarkFig10Disturbance(b *testing.B) {
	var e *exp.Evaluation
	for i := 0; i < b.N; i++ {
		evalCache = nil
		e = evalForBench(b)
	}
	b.ReportMetric(e.Average("DIN", sim.Metrics.AvgDisturb), "DIN-errors")
	b.ReportMetric(e.Average("WLCRC-16", sim.Metrics.AvgDisturb), "WLCRC16-errors")
}

func BenchmarkFig11to13Granularity(b *testing.B) {
	cfg := benchConfig()
	var pts map[string][]exp.SweepPoint
	for i := 0; i < b.N; i++ {
		pts, _ = exp.GranularityStudy(cfg)
	}
	wl := pts["WLCRC"]
	for _, p := range wl {
		b.ReportMetric(p.Total(), fmt.Sprintf("WLCRC%d-pJ", p.Granularity))
	}
}

func BenchmarkFig14EnergyLevels(b *testing.B) {
	cfg := benchConfig()
	var pts []exp.Figure14Point
	for i := 0; i < b.N; i++ {
		pts, _ = exp.Figure14(cfg)
	}
	b.ReportMetric(100*pts[0].Improvement, "imp-583pJ-%")
	b.ReportMetric(100*pts[len(pts)-1].Improvement, "imp-116pJ-%")
}

func BenchmarkMultiObjective(b *testing.B) {
	cfg := benchConfig()
	var res exp.MultiObjectiveResult
	for i := 0; i < b.N; i++ {
		res, _ = exp.MultiObjective(cfg)
	}
	b.ReportMetric(res.PlainUpdated, "plain-cells")
	b.ReportMetric(res.MultiUpdated, "T1%-cells")
}

func BenchmarkAblationEmbedding(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.AblationEmbedding(cfg)
	}
}

func BenchmarkAblationDisturbAware(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.AblationDisturbAware(cfg, []float64{1000})
	}
}

func BenchmarkHWModel(b *testing.B) {
	var rep hw.Report
	for i := 0; i < b.N; i++ {
		rep = hw.Estimate(hw.FreePDK45(), hw.WLCRCDesign())
	}
	b.ReportMetric(rep.AreaMM2*1000, "area-10^-3mm2")
	b.ReportMetric(rep.WriteNS, "write-ns")
}

// Serial-vs-parallel replay benchmarks for the sharded engine: the same
// fixed trace replays through every evaluation scheme with one worker
// and with all CPUs. Results are bit-identical by construction (see
// sim.Engine); only wall-clock changes, reported as writes/s and as the
// parallel-over-serial speedup.

// engineFixture pre-records a deterministic multi-scheme replay load.
func engineFixture(b *testing.B) ([]core.Scheme, *trace.SliceSource) {
	b.Helper()
	cfg := core.DefaultConfig()
	names := []string{"Baseline", "FlipMin", "FNW", "DIN", "6cosets",
		"COC+4cosets", "WLC+4cosets", "WLCRC-16"}
	schemes := make([]core.Scheme, len(names))
	for i, n := range names {
		s, err := core.NewScheme(n, cfg)
		if err != nil {
			b.Fatal(err)
		}
		schemes[i] = s
	}
	p, ok := workload.ProfileByName("gcc")
	if !ok {
		b.Fatal("gcc profile missing")
	}
	return schemes, trace.Record(workload.NewGenerator(p, 1024, 17), 4000)
}

func replayOnce(b *testing.B, schemes []core.Scheme, src *trace.SliceSource, workers int) time.Duration {
	b.Helper()
	src.Rewind()
	opts := sim.DefaultOptions()
	opts.Workers = workers
	e := sim.NewEngine(opts, schemes...)
	start := time.Now()
	if err := e.Run(src, 0); err != nil {
		b.Fatal(err)
	}
	return time.Since(start)
}

func benchReplay(b *testing.B, workers int) {
	schemes, src := engineFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayOnce(b, schemes, src, workers)
	}
	writes := float64(len(src.Reqs) * len(schemes) * b.N)
	b.ReportMetric(writes/b.Elapsed().Seconds(), "writes/s")
}

func BenchmarkReplaySerial(b *testing.B) { benchReplay(b, 1) }

func BenchmarkReplayParallel(b *testing.B) { benchReplay(b, runtime.GOMAXPROCS(0)) }

// BenchmarkReplayParallelScaling replays the fixture at fixed worker
// counts — the scaling curve the benchguard replay_parallel_pr6 series
// gates. Fixed counts (not GOMAXPROCS) keep the series comparable
// across machines: benchguard reads the workers=1 time as the serial
// baseline and gates the parallel/serial wall-clock ratio, never
// absolute times.
func BenchmarkReplayParallelScaling(b *testing.B) {
	schemes, src := engineFixture(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				replayOnce(b, schemes, src, workers)
			}
			writes := float64(len(src.Reqs) * len(schemes) * b.N)
			b.ReportMetric(writes/b.Elapsed().Seconds(), "writes/s")
		})
	}
}

// BenchmarkReplayStorage replays the fixture serially on both line
// stores: the plane-native arena (the default for plane-capable
// schemes) and the reference scalar map forced by
// sim.Options.ScalarStorage. Results are bit-identical; only
// wall-clock changes. benchguard gates the scalar/planes wall-clock
// ratio — a same-box number that is meaningful on any machine, unlike
// absolute times — so a regression that erodes the arena path's
// advantage fails CI even though the PR-8 tree is long gone.
func BenchmarkReplayStorage(b *testing.B) {
	schemes, src := engineFixture(b)
	for _, scalar := range []bool{false, true} {
		name := "storage=planes"
		if scalar {
			name = "storage=scalar"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src.Rewind()
				opts := sim.DefaultOptions()
				opts.Workers = 1
				opts.ScalarStorage = scalar
				e := sim.NewEngine(opts, schemes...)
				if err := e.Run(src, 0); err != nil {
					b.Fatal(err)
				}
			}
			writes := float64(len(src.Reqs) * len(schemes) * b.N)
			b.ReportMetric(writes/b.Elapsed().Seconds(), "writes/s")
		})
	}
}

// BenchmarkReplaySpeedup interleaves serial and parallel replays of the
// same trace and reports their wall-clock ratio ("speedup-x") plus the
// worker count used, the headline number for the parallel engine.
func BenchmarkReplaySpeedup(b *testing.B) {
	schemes, src := engineFixture(b)
	workers := runtime.GOMAXPROCS(0)
	var serial, parallel time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial += replayOnce(b, schemes, src, 1)
		parallel += replayOnce(b, schemes, src, workers)
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-x")
	b.ReportMetric(float64(workers), "workers")
}

// Encode-throughput benchmarks: lines encoded per second for every
// scheme, on a steady-state biased write stream. With the zero-alloc
// codec path, -benchmem must report 0 allocs/op here.
func BenchmarkEncode(b *testing.B) {
	for _, name := range wlcrc.SchemeNames() {
		b.Run(name, func(b *testing.B) {
			mem := wlcrc.NewMemory(wlcrc.MustScheme(name))
			w, err := wlcrc.NewWorkload("gcc", 256, 9)
			if err != nil {
				b.Fatal(err)
			}
			reqs := make([]wlcrc.WriteRequest, 512)
			for i := range reqs {
				reqs[i] = w.Next()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := reqs[i%len(reqs)]
				mem.Write(r.Addr, r.New)
			}
			b.SetBytes(64)
		})
	}
}

// BenchmarkEncodeInto measures the bare codec hot path — EncodeInto
// over a rotating set of steady-state (old, data) pairs, no memory map
// or metrics in the loop. This is the headline series BENCH_encode.json
// tracks; allocs/op must be 0 for every scheme.
func BenchmarkEncodeInto(b *testing.B) {
	for _, name := range wlcrc.SchemeNames() {
		b.Run(name, func(b *testing.B) {
			sch := wlcrc.MustScheme(name)
			w, err := wlcrc.NewWorkload("gcc", 64, 9)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-encode a pool of lines so the measured loop rewrites
			// warmed cell states, like steady-state replay.
			const pool = 64
			olds := make([][]pcm.State, pool)
			datas := make([]wlcrc.Line, pool)
			fresh := core.InitialCells(sch.TotalCells())
			for i := range olds {
				warm := w.Next().New
				olds[i] = make([]pcm.State, sch.TotalCells())
				sch.EncodeInto(olds[i], fresh, &warm)
				datas[i] = w.Next().New // the rewrite the loop measures
			}
			dst := make([]pcm.State, sch.TotalCells())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % pool
				sch.EncodeInto(dst, olds[k], &datas[k])
			}
			b.SetBytes(64)
		})
	}
}

// BenchmarkDecodeInto is the decode-side counterpart.
func BenchmarkDecodeInto(b *testing.B) {
	for _, name := range wlcrc.SchemeNames() {
		b.Run(name, func(b *testing.B) {
			sch := wlcrc.MustScheme(name)
			w, err := wlcrc.NewWorkload("gcc", 64, 9)
			if err != nil {
				b.Fatal(err)
			}
			const pool = 64
			cells := make([][]pcm.State, pool)
			fresh := core.InitialCells(sch.TotalCells())
			for i := range cells {
				data := w.Next().New
				cells[i] = make([]pcm.State, sch.TotalCells())
				sch.EncodeInto(cells[i], fresh, &data)
			}
			var out wlcrc.Line
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sch.DecodeInto(cells[i%pool], &out)
			}
			b.SetBytes(64)
		})
	}
}
