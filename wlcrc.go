// Package wlcrc is a library-level implementation of WLCRC — Word-Level
// Compression with Restricted Coset coding — the fine-grain write-energy
// reduction architecture for multi-level-cell phase change memory from
// Seyedzadeh, Jones and Melhem, "Enabling Fine-Grain Restricted Coset
// Coding Through Word-Level Compression for PCM" (HPCA 2018,
// arXiv:1711.08572), together with every scheme the paper evaluates
// against (differential-write baseline, FlipMin, Flip-N-Write, DIN,
// 6cosets, COC+4cosets, WLC+4cosets).
//
// The package exposes three layers:
//
//   - Encoders (NewScheme): turn (current cell states, new 512-bit line)
//     into the MLC cell states to program, and decode them back.
//   - Memory (NewMemory): a simulated PCM region behind one encoder that
//     tracks per-write programming energy, programmed-cell counts and
//     write-disturbance statistics using the paper's Table II device
//     model.
//   - Workloads (NewWorkload): synthetic write streams calibrated to the
//     paper's SPEC CPU2006 / PARSEC benchmark profiles.
//
// The full evaluation harness that regenerates the paper's figures lives
// in cmd/experiments; see DESIGN.md and EXPERIMENTS.md.
package wlcrc

import (
	"fmt"
	"sort"

	"wlcrc/internal/core"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// Line is a 512-bit memory line, the unit every encoder operates on.
type Line = memline.Line

// LineFromWords builds a line from eight 64-bit words (word w occupies
// bits 64w..64w+63).
func LineFromWords(ws [8]uint64) Line { return memline.FromWords(ws) }

// Scheme is a write-encoding scheme for 512-bit MLC PCM lines. See
// package core for the semantics of the methods.
type Scheme = core.Scheme

// Option customizes scheme construction.
type Option func(*core.Config)

// WithEnergyLevels overrides the SET energies (pJ) of the four cell
// states; the RESET energy stays at 36 pJ. The defaults are Table II's
// 0, 20, 307 and 547 pJ. Used for the paper's Figure 14 sensitivity
// study.
func WithEnergyLevels(s1, s2, s3, s4 float64) Option {
	return func(c *core.Config) {
		c.Energy.Set = [4]float64{s1, s2, s3, s4}
	}
}

// WithMultiObjective enables the §VIII.D multi-objective mode: when the
// two restricted-coset group costs are within threshold t (e.g. 0.01 for
// 1%), WLCRC picks the group that programs fewer cells instead of the
// cheaper one, trading a sliver of energy for endurance.
func WithMultiObjective(t float64) Option {
	return func(c *core.Config) { c.MultiObjectiveT = t }
}

// WithEncryptionKey keys the counter-mode encryption model of the
// encrypted-PCM schemes (VCC-2/4/8 and Enc(...)). Zero keeps the
// deterministic default key.
func WithEncryptionKey(key uint64) Option {
	return func(c *core.Config) { c.EncryptionKey = key }
}

// SchemeNames lists every constructible scheme name. Enc(...) accepts
// any non-counter inner scheme; only the evaluated Enc(WLCRC-16)
// encrypted-baseline form is listed.
func SchemeNames() []string {
	names := []string{
		"Baseline", "FlipMin", "FNW", "DIN", "6cosets", "COC+4cosets",
		"WLC+4cosets", "WLC+3cosets",
		"WLCRC-8", "WLCRC-16", "WLCRC-32", "WLCRC-64",
		"VCC-2", "VCC-4", "VCC-8", "Enc(WLCRC-16)",
	}
	sort.Strings(names)
	return names
}

// NewScheme constructs a scheme by name (see SchemeNames). WLCRC-16 is
// the paper's headline configuration.
func NewScheme(name string, opts ...Option) (Scheme, error) {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewScheme(name, cfg)
}

// MustScheme is NewScheme that panics on error, for initialization.
func MustScheme(name string, opts ...Option) Scheme {
	s, err := NewScheme(name, opts...)
	if err != nil {
		panic(fmt.Sprintf("wlcrc: %v", err))
	}
	return s
}

// EnergyModel returns the Table II device energy model, exposed for
// callers that want to price writes themselves.
func EnergyModel() pcm.EnergyModel { return pcm.DefaultEnergy() }
