package wlcrc

import (
	"fmt"
	"runtime"

	"wlcrc/internal/fault"
	"wlcrc/internal/sim"
)

// Metrics is the per-scheme result of a Replay: write counts,
// accumulated energy, programmed cells, disturbance errors, compression
// coverage, Verify-and-Restore activity, per-write energy and
// updated-cell histograms, and (with TrackWear) the per-cell wear
// digest, with Avg* accessors for the per-write figures the paper
// reports.
type Metrics = sim.Metrics

// Progress is one live report from the replay dispatcher: requests
// dispatched, elapsed time (Rate() combines them), and per-worker queue
// depths.
type Progress = sim.Progress

// FaultConfig enables and parameterizes the stuck-at fault model: cell
// endurance and its spread, pre-seeded static defects, the per-line ECC
// budget, the spare-line pool, and the graceful-degradation threshold.
// The zero value (Enabled false) keeps the fault machinery — and its
// replay cost — entirely off.
type FaultConfig = fault.Config

// FaultStats is the per-scheme fault/repair digest a fault-enabled
// Replay folds into Metrics.Faults: stuck-cell counts by origin, repair
// recourse counters (retries, ECC corrections, retirements, remap
// hits), uncorrectable writes, and the sequence number of the first
// retirement.
type FaultStats = fault.Stats

// StuckCell pre-seeds one manufacturing defect via FaultConfig.Static.
type StuckCell = fault.StuckCell

// DegradedError reports a fault-enabled replay that completed but
// breached its service thresholds: too many retired lines or at least
// one uncorrectable write. The metrics inside are complete — the whole
// trace replayed before the verdict.
type DegradedError = sim.DegradedError

// ReplayOptions configures Replay.
type ReplayOptions struct {
	// Workers bounds the replay goroutines. 0 means all CPUs; 1 runs
	// serially; values above the routing-unit count (banks x sub-shards,
	// 256 under the default geometry) are capped there. Results are
	// bit-identical for every value — the engine shards the address
	// space by (bank, sub-shard) unit and merges deterministically — so
	// this is purely a speed knob.
	Workers int
	// IngestRouters controls the parallel ingest front-end that reads
	// and pre-routes the stream in chunks ahead of the dispatcher:
	// 0 auto-sizes (off on a single-CPU machine), negative disables,
	// positive requests that many router goroutines. Like Workers it is
	// purely a speed knob — results are bit-identical either way.
	IngestRouters int
	// SampleDisturb switches disturbance accounting from expected values
	// to Monte-Carlo sampling seeded with Seed.
	SampleDisturb bool
	// Seed drives the sampled-disturbance PRNG substreams.
	Seed uint64
	// TrackWear enables dense per-cell wear accounting; the wear digest
	// (worst-cell wear, wear CDF, first-failure projection) lands in
	// each scheme's Metrics.Wear.
	TrackWear bool
	// Progress, when non-nil, receives live dispatcher reports roughly
	// twice a second while the replay runs.
	Progress func(Progress)
	// Faults enables the stuck-at fault model and repair pipeline
	// (write-verify, stuck-aware re-encode, interleaved BCH ECC, line
	// retirement). Fault statistics land in each scheme's
	// Metrics.Faults; a replay that breaches the degradation thresholds
	// returns a *DegradedError alongside complete metrics.
	Faults FaultConfig
	// FailFast aborts a fault-enabled replay at the first uncorrectable
	// write instead of degrading gracefully to end-of-trace.
	FailFast bool
}

// Replay replays n requests from the workload through every scheme on
// the parallel sharded engine and returns per-scheme metrics,
// index-aligned with schemes. Decode verification is always on: a
// scheme that fails to round-trip its stored data surfaces as an error.
// n must be positive — workloads are infinite streams, so there is no
// "replay everything".
func Replay(w *Workload, n int, opts ReplayOptions, schemes ...Scheme) ([]Metrics, error) {
	if n <= 0 {
		return nil, fmt.Errorf("wlcrc: Replay needs a positive request count, got %d (workloads are infinite)", n)
	}
	o := sim.DefaultOptions()
	o.Workers = opts.Workers
	o.IngestRouters = opts.IngestRouters
	o.SampleDisturb = opts.SampleDisturb
	o.Seed = opts.Seed
	o.TrackWear = opts.TrackWear
	o.Progress = opts.Progress
	o.Faults = opts.Faults
	o.FailFast = opts.FailFast
	e := sim.NewEngine(o, schemes...)
	if err := e.Run(w.src, n); err != nil {
		// A degraded fault-model run still replayed everything: hand the
		// caller the metrics next to the verdict.
		if _, ok := err.(*DegradedError); ok {
			return e.Metrics(), err
		}
		return nil, err
	}
	return e.Metrics(), nil
}

// ReplayWorkers returns the worker count Replay resolves opts.Workers=0
// to: the number of usable CPUs.
func ReplayWorkers() int { return runtime.GOMAXPROCS(0) }
