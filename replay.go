package wlcrc

import (
	"fmt"
	"runtime"

	"wlcrc/internal/sim"
)

// Metrics is the per-scheme result of a Replay: write counts,
// accumulated energy, programmed cells, disturbance errors, compression
// coverage, Verify-and-Restore activity, per-write energy and
// updated-cell histograms, and (with TrackWear) the per-cell wear
// digest, with Avg* accessors for the per-write figures the paper
// reports.
type Metrics = sim.Metrics

// Progress is one live report from the replay dispatcher: requests
// dispatched, elapsed time (Rate() combines them), and per-worker queue
// depths.
type Progress = sim.Progress

// ReplayOptions configures Replay.
type ReplayOptions struct {
	// Workers bounds the replay goroutines. 0 means all CPUs; 1 runs
	// serially; values above the routing-unit count (banks x sub-shards,
	// 256 under the default geometry) are capped there. Results are
	// bit-identical for every value — the engine shards the address
	// space by (bank, sub-shard) unit and merges deterministically — so
	// this is purely a speed knob.
	Workers int
	// IngestRouters controls the parallel ingest front-end that reads
	// and pre-routes the stream in chunks ahead of the dispatcher:
	// 0 auto-sizes (off on a single-CPU machine), negative disables,
	// positive requests that many router goroutines. Like Workers it is
	// purely a speed knob — results are bit-identical either way.
	IngestRouters int
	// SampleDisturb switches disturbance accounting from expected values
	// to Monte-Carlo sampling seeded with Seed.
	SampleDisturb bool
	// Seed drives the sampled-disturbance PRNG substreams.
	Seed uint64
	// TrackWear enables dense per-cell wear accounting; the wear digest
	// (worst-cell wear, wear CDF, first-failure projection) lands in
	// each scheme's Metrics.Wear.
	TrackWear bool
	// Progress, when non-nil, receives live dispatcher reports roughly
	// twice a second while the replay runs.
	Progress func(Progress)
}

// Replay replays n requests from the workload through every scheme on
// the parallel sharded engine and returns per-scheme metrics,
// index-aligned with schemes. Decode verification is always on: a
// scheme that fails to round-trip its stored data surfaces as an error.
// n must be positive — workloads are infinite streams, so there is no
// "replay everything".
func Replay(w *Workload, n int, opts ReplayOptions, schemes ...Scheme) ([]Metrics, error) {
	if n <= 0 {
		return nil, fmt.Errorf("wlcrc: Replay needs a positive request count, got %d (workloads are infinite)", n)
	}
	o := sim.DefaultOptions()
	o.Workers = opts.Workers
	o.IngestRouters = opts.IngestRouters
	o.SampleDisturb = opts.SampleDisturb
	o.Seed = opts.Seed
	o.TrackWear = opts.TrackWear
	o.Progress = opts.Progress
	e := sim.NewEngine(o, schemes...)
	if err := e.Run(w.src, n); err != nil {
		return nil, err
	}
	return e.Metrics(), nil
}

// ReplayWorkers returns the worker count Replay resolves opts.Workers=0
// to: the number of usable CPUs.
func ReplayWorkers() int { return runtime.GOMAXPROCS(0) }
