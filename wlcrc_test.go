package wlcrc_test

import (
	"testing"

	"wlcrc"
)

func TestSchemeNamesAllConstructible(t *testing.T) {
	for _, name := range wlcrc.SchemeNames() {
		s, err := wlcrc.NewScheme(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("%s: empty Name()", name)
		}
	}
	if _, err := wlcrc.NewScheme("bogus"); err == nil {
		t.Error("bogus scheme must fail")
	}
}

func TestMustSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	wlcrc.MustScheme("bogus")
}

func TestMemoryWriteReadRoundTrip(t *testing.T) {
	mem := wlcrc.NewMemory(wlcrc.MustScheme("WLCRC-16"))
	var ws [8]uint64
	for i := range ws {
		ws[i] = uint64(i) * 0x1111
	}
	data := wlcrc.LineFromWords(ws)
	info := mem.Write(7, data)
	if info.EnergyPJ <= 0 || info.UpdatedCells <= 0 {
		t.Errorf("write info = %+v", info)
	}
	if !info.Compressed {
		t.Error("small-int line should take the compressed path")
	}
	if got := mem.Read(7); got != data {
		t.Error("read-back mismatch")
	}
	if mem.Read(99) != (wlcrc.Line{}) {
		t.Error("unwritten line must read zero")
	}
	if !mem.Written(7) || mem.Written(99) {
		t.Error("Written() inconsistent")
	}
	if mem.Lines() != 1 {
		t.Errorf("Lines = %d", mem.Lines())
	}
}

func TestMemoryRewriteSameDataFree(t *testing.T) {
	mem := wlcrc.NewMemory(wlcrc.MustScheme("WLCRC-16"))
	data := wlcrc.LineFromWords([8]uint64{1, 2, 3, 4, 5, 6, 7, 8})
	mem.Write(0, data)
	info := mem.Write(0, data)
	if info.EnergyPJ != 0 || info.UpdatedCells != 0 {
		t.Errorf("rewrite of identical data cost %+v", info)
	}
}

func TestMemoryStats(t *testing.T) {
	mem := wlcrc.NewMemory(wlcrc.MustScheme("Baseline"))
	w, err := wlcrc.NewWorkload("gcc", 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		r := w.Next()
		mem.Write(r.Addr, r.New)
	}
	st := mem.Stats()
	if st.Writes != 300 {
		t.Errorf("writes = %d", st.Writes)
	}
	if st.AvgEnergyPJ() <= 0 || st.AvgUpdatedCells() <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWLCRCBeatsBaselineViaPublicAPI(t *testing.T) {
	base := wlcrc.NewMemory(wlcrc.MustScheme("Baseline"))
	fine := wlcrc.NewMemory(wlcrc.MustScheme("WLCRC-16"))
	w, err := wlcrc.NewWorkload("mcf", 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		r := w.Next()
		base.Write(r.Addr, r.New)
		fine.Write(r.Addr, r.New)
	}
	if fine.Stats().AvgEnergyPJ() >= base.Stats().AvgEnergyPJ() {
		t.Errorf("WLCRC-16 %.0f pJ >= baseline %.0f pJ",
			fine.Stats().AvgEnergyPJ(), base.Stats().AvgEnergyPJ())
	}
}

func TestOptions(t *testing.T) {
	s, err := wlcrc.NewScheme("WLCRC-16", wlcrc.WithMultiObjective(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "WLCRC-16(T=1%)" {
		t.Errorf("Name = %q", s.Name())
	}
	// Scaled energy levels still produce a working encoder.
	s2, err := wlcrc.NewScheme("WLCRC-16", wlcrc.WithEnergyLevels(0, 20, 75, 135))
	if err != nil {
		t.Fatal(err)
	}
	mem := wlcrc.NewMemory(s2)
	data := wlcrc.LineFromWords([8]uint64{42, 0, 0, 0, 0, 0, 0, 0})
	mem.Write(0, data)
	if mem.Read(0) != data {
		t.Error("round trip with scaled energies failed")
	}
}

func TestWorkloadNames(t *testing.T) {
	names := wlcrc.WorkloadNames()
	if len(names) != 13 {
		t.Errorf("got %d workloads, want 13", len(names))
	}
	for _, n := range names {
		if _, err := wlcrc.NewWorkload(n, 64, 1); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := wlcrc.NewWorkload("bogus", 0, 1); err == nil {
		t.Error("bogus workload must fail")
	}
}

func TestDisturbSampling(t *testing.T) {
	mem := wlcrc.NewMemory(wlcrc.MustScheme("Baseline"), wlcrc.WithDisturbSampling(7))
	w, _ := wlcrc.NewWorkload("lesl", 64, 2)
	var total float64
	for i := 0; i < 500; i++ {
		r := w.Next()
		info := mem.Write(r.Addr, r.New)
		if info.DisturbErrors != float64(int(info.DisturbErrors)) {
			t.Fatal("sampled disturbance must be integral")
		}
		total += info.DisturbErrors
	}
	if total == 0 {
		t.Error("no disturbance errors sampled in 500 writes")
	}
}

func TestEnergyModelExposed(t *testing.T) {
	em := wlcrc.EnergyModel()
	if em.Reset != 36 || em.Set[3] != 547 {
		t.Errorf("EnergyModel = %+v", em)
	}
}
