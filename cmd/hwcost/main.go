// Command hwcost prints the §VI.B hardware cost estimate for the
// WLCRC-16 encode/decode pipeline (the structural gate-count model that
// stands in for the paper's Synopsys DC + FreePDK45 synthesis).
package main

import (
	"fmt"

	"wlcrc/internal/hw"
)

func main() {
	design := hw.WLCRCDesign()
	fmt.Println("WLCRC-16 module inventory (Figure 7 architecture):")
	for _, m := range design {
		fmt.Printf("  %-40s %6d gates x%d, depth %d\n", m.Name, m.Gates, m.Count, m.Depth)
	}
	fmt.Println()
	rep := hw.Estimate(hw.FreePDK45(), design)
	fmt.Println(rep.Table().String())
}
