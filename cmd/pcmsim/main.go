// Command pcmsim replays a workload (synthetic or from a trace file)
// through one or more encoding schemes and reports the paper's three
// metrics — write energy, updated cells, disturbance errors — plus
// compression coverage. With -memsys it also pushes the write stream
// through the Table II memory-system model, one controller per scheme
// with every write's bank-busy time scaled by that scheme's
// programmed-cell count (P&V iterations), and reports per-scheme
// latency and utilization — fewer updated cells shows up directly as a
// latency/bandwidth win. The cell counts come from per-scheme shadow
// memories on the source path, so -memsys roughly doubles the encode
// work and serializes it ahead of the engine; it is a timing study
// knob, not a throughput mode.
//
// -encrypted replays the stream in its counter-mode encrypted form (the
// ciphertext an encrypted DIMM stores; -key picks the key), under which
// compression-gated schemes collapse to their raw fallback. -vcc
// appends the virtual coset coding schemes VCC-2/4/8, which recover
// coset-style write reduction on exactly that traffic.
//
// Replay runs on the parallel sharded engine: every scheme replays
// concurrently, and within a scheme the address space is sharded by
// (bank, sub-shard) routing unit — each bank splits into
// address-interleaved sub-shards, so useful worker counts extend well
// past the bank count (256 units under the Table II geometry). -workers
// bounds the goroutines (default: all CPUs); results are bit-identical
// for every worker count, so -workers 1 reproduces the serial numbers
// exactly. -ingest adds a parallel ingest front-end that reads and
// pre-routes the stream in chunks ahead of the dispatcher (0 = auto,
// negative = off) — also bit-identical for any value. Trace files given
// with -trace are memory-mapped and decoded zero-copy when the platform
// allows it.
//
// -progress streams live dispatcher throughput and per-worker queue
// depths to stderr while a replay runs; -wear enables dense per-cell
// wear tracking and appends a wear report (worst-cell wear, wear CDF
// quantiles, first-cell-failure projection) per scheme. -cpuprofile,
// -memprofile and -exectrace write a pprof CPU profile, a heap profile
// and a runtime execution trace of the replay (-trace already names the
// input trace file, hence -exectrace).
//
// -faults enables the stuck-at fault model: cells wear out (mean
// endurance -fault-endurance, spread -fault-spread) or start defective
// (-fault-static), and the controller repairs affected writes through
// stuck-aware re-encode retries, interleaved BCH ECC (-fault-ecc-bits)
// and line retirement to a spare pool (-fault-spares). A fault/repair
// table is appended per scheme. By default the replay degrades
// gracefully — the full trace runs and a run that breaches the
// -fault-retire-frac threshold (or sees any uncorrectable write) exits
// non-zero after reporting; -failfast aborts on the first uncorrectable
// write instead. Either way the partial metrics and wear of everything
// replayed so far are still printed.
//
// Examples:
//
//	pcmsim -workload gcc -schemes Baseline,WLCRC-16 -writes 10000
//	pcmsim -trace writes.wlct -schemes WLCRC-16 -progress
//	pcmsim -workload all -schemes Baseline,6cosets,WLCRC-16 -memsys
//	pcmsim -workload all -schemes Baseline,WLCRC-16 -workers 1 -wear
//	pcmsim -workload gcc -schemes "Baseline,WLCRC-16" -encrypted -vcc
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"wlcrc"
	"wlcrc/internal/core"
	"wlcrc/internal/fault"
	"wlcrc/internal/memsys"
	"wlcrc/internal/profiling"
	"wlcrc/internal/sim"
	"wlcrc/internal/stats"
	"wlcrc/internal/trace"
	"wlcrc/internal/wear"
	"wlcrc/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcmsim: ")
	var (
		schemesFlag = flag.String("schemes", "Baseline,WLCRC-16", "comma-separated scheme names")
		wlFlag      = flag.String("workload", "gcc", "workload name, 'all', or 'random' (ignored with -trace)")
		traceFile   = flag.String("trace", "", "replay a trace file instead of a synthetic workload")
		writes      = flag.Int("writes", 5000, "writes per workload (synthetic only)")
		footprint   = flag.Int("footprint", 0, "working-set size in lines (0 = profile default)")
		seed        = flag.Uint64("seed", 1, "workload seed")
		sample      = flag.Bool("sample-disturb", false, "sample disturbance instead of expected values")
		useMemsys   = flag.Bool("memsys", false, "also run the Table II memory-system timing model")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "replay worker goroutines, up to banks x sub-shards (1 = serial; results are identical for any value)")
		ingest      = flag.Int("ingest", 0, "ingest router goroutines pre-routing the stream ahead of the dispatcher (0 = auto, negative = off; results are identical for any value)")
		progress    = flag.Bool("progress", false, "stream live replay throughput and queue depths to stderr")
		wearReport  = flag.Bool("wear", false, "track dense per-cell wear and report the wear distribution per scheme")
		encrypted   = flag.Bool("encrypted", false, "replay the counter-mode encrypted (whitened) form of the write stream")
		key         = flag.Uint64("key", 0, "encryption key for -encrypted and the VCC/Enc schemes (0 = default key)")
		useVCC      = flag.Bool("vcc", false, "append the virtual coset coding schemes VCC-2,VCC-4,VCC-8")
		faults      = flag.Bool("faults", false, "enable the stuck-at fault model and repair pipeline, and report fault stats per scheme")
		faultEndur  = flag.Uint64("fault-endurance", 0, "mean cell endurance in program cycles before stuck-at onset (0 = 1e7)")
		faultSpread = flag.Float64("fault-spread", 0, "relative half-width of the per-cell endurance threshold draw (0 = exact)")
		faultECC    = flag.Int("fault-ecc-bits", 0, "per-line correctable-bit ECC budget, rounded up to t=2 BCH ways (0 = 4)")
		faultSpares = flag.Int("fault-spares", 0, "spare lines per shard for retirement remapping (0 = 16)")
		faultRetire = flag.Float64("fault-retire-frac", 0, "retired-line fraction of touched lines that ends the run degraded (0 = 0.25)")
		faultStatic = flag.Int("fault-static", 0, "pre-seed N random stuck cells (manufacturing defects) over the first -footprint lines (4096 when unset)")
		failFast    = flag.Bool("failfast", false, "abort replay on the first uncorrectable write instead of degrading gracefully")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		execTrace   = flag.String("exectrace", "", "write a runtime execution trace to this file (-trace names the input trace file)")
	)
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProfile, *memProfile, *execTrace)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.EncryptionKey = *key
	names := strings.Split(*schemesFlag, ",")
	if *useVCC {
		names = append(names, "VCC-2", "VCC-4", "VCC-8")
	}
	var schemes []core.Scheme
	seen := map[string]bool{}
	for _, name := range names {
		name = strings.TrimSpace(name)
		// Dedup so e.g. `-schemes VCC-4 -vcc` replays (and, with
		// -memsys, shadow-encodes) each scheme once.
		if seen[name] {
			continue
		}
		seen[name] = true
		s, err := core.NewScheme(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		schemes = append(schemes, s)
	}

	opts := sim.DefaultOptions()
	opts.SampleDisturb = *sample
	opts.Seed = *seed
	opts.Workers = *workers
	opts.IngestRouters = *ingest
	opts.TrackWear = *wearReport
	if *faults {
		opts.Faults = fault.Config{
			Enabled:            true,
			CellEndurance:      uint32(*faultEndur),
			EnduranceSpread:    *faultSpread,
			ECCBits:            *faultECC,
			SpareLines:         *faultSpares,
			MaxRetiredFraction: *faultRetire,
		}
		if *faultStatic > 0 {
			maxAddr := uint64(4096)
			if *footprint > 0 {
				maxAddr = uint64(*footprint)
			}
			opts.Faults.Static = fault.RandomStatic(*seed, *faultStatic, maxAddr)
		}
	}
	opts.FailFast = *failFast
	if *progress {
		opts.Progress = sim.ProgressPrinter(os.Stderr)
	}

	type namedSource struct {
		name string
		src  trace.Source
		n    int
	}
	var sources []namedSource
	switch {
	case *traceFile != "":
		// Prefer the memory-mapped source: zero-copy decode straight off
		// the page cache, and the natural feed for the batched ingest
		// stage. Fall back to the buffered reader if mapping fails (e.g.
		// an exotic filesystem without mmap support).
		if m, err := trace.OpenMapped(*traceFile); err == nil {
			defer m.Close()
			if terr := m.Err(); terr != nil {
				log.Printf("warning: %s: %v; replaying the %d complete records", *traceFile, terr, m.Records())
			}
			sources = append(sources, namedSource{name: *traceFile, src: m})
		} else {
			f, err := os.Open(*traceFile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			rd, err := trace.NewReader(f)
			if err != nil {
				log.Fatal(err)
			}
			sources = append(sources, namedSource{name: *traceFile, src: &trace.ReaderSource{R: rd}})
		}
	case *wlFlag == "all":
		for _, p := range workload.Profiles() {
			sources = append(sources, namedSource{
				name: p.Name,
				src:  workload.NewGenerator(p, *footprint, *seed),
				n:    *writes,
			})
		}
	case *wlFlag == "random":
		sources = append(sources, namedSource{
			name: "random",
			src:  workload.NewGenerator(workload.RandomProfile(), *footprint, *seed),
			n:    *writes,
		})
	default:
		p, ok := workload.ProfileByName(*wlFlag)
		if !ok {
			log.Fatalf("unknown workload %q", *wlFlag)
		}
		sources = append(sources, namedSource{
			name: p.Name,
			src:  workload.NewGenerator(p, *footprint, *seed),
			n:    *writes,
		})
	}

	tbl := stats.NewTable("workload", "scheme", "pJ/write", "cells/write",
		"disturb/write", "compressed")
	var wearTbl *stats.Table
	if *wearReport {
		wearTbl = stats.NewTable("workload", "scheme", "cells/write", "max wear",
			"p50", "p99", "imbalance", "writes to 1st failure")
	}
	var faultTbl *stats.Table
	if *faults {
		faultTbl = stats.NewTable("workload", "scheme", "stuck cells", "detected",
			"retried ok", "ECC-saved", "retired", "remap hits", "uncorrectable", "1st retire")
	}
	var timers []*schemeTimer
	if *useMemsys {
		for _, s := range schemes {
			timers = append(timers, &schemeTimer{
				scheme: s,
				ctrl:   memsys.New(memsys.TableII()),
			})
		}
	}
	// SIGINT/SIGTERM cancel the replay cooperatively between batches:
	// the loop below reports the partial metrics of everything replayed
	// so far and pcmsim exits non-zero instead of dying mid-replay.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()

	var totalWrites uint64
	var failed, interrupted bool
	start := time.Now()
	var eng *sim.Engine
	for _, ns := range sources {
		if interrupted {
			break
		}
		eng = sim.NewEngine(opts, schemes...)
		src := ns.src
		if *encrypted {
			src = workload.Encrypted(src, *key)
		}
		if ns.n > 0 {
			src = &workload.Limited{Src: src, N: ns.n}
		}
		if timers != nil {
			// Each source replays against fresh shadow memories, like the
			// fresh engine above; the controllers keep accumulating.
			for _, st := range timers {
				st.mem = wlcrc.NewMemory(st.scheme)
			}
			src = &timingTap{src: src, timers: timers}
		}
		if err := eng.RunContext(ctx, src, 0); err != nil {
			// A failed replay — an aborted -failfast run, a degraded
			// graceful one, a trace decode error, a SIGINT — still has
			// merged partial metrics worth reporting: Snapshot drains
			// whatever the shards got through before the stop. Report,
			// keep going (or stop, on interrupt), and exit non-zero at
			// the end.
			if ctx.Err() != nil {
				log.Printf("%s: interrupted (reporting partial metrics)", ns.name)
				interrupted = true
			} else {
				log.Printf("%s: %v (reporting partial metrics)", ns.name, err)
			}
			failed = true
		}
		for _, m := range eng.Snapshot() {
			totalWrites += uint64(m.Writes)
			tbl.Row(ns.name, m.Scheme, m.AvgEnergy(), m.AvgUpdated(),
				m.AvgDisturb(), stats.Percent(m.CompressedFraction()))
			if wearTbl != nil {
				w := m.Wear
				wearTbl.Row(ns.name, m.Scheme, w.AvgUpdatedCells(),
					fmt.Sprintf("%d", w.MaxCellWear),
					fmt.Sprintf("%d", w.Quantile(0.5)), fmt.Sprintf("%d", w.Quantile(0.99)),
					w.WearImbalance(),
					fmt.Sprintf("%.3g", w.LifetimeWrites(wear.DefaultCellEndurance)))
			}
			if faultTbl != nil {
				f := m.Faults
				firstRetire := "never"
				if f.FirstRetireSeq != 0 {
					firstRetire = fmt.Sprintf("%d", f.FirstRetireSeq)
				}
				faultTbl.Row(ns.name, m.Scheme, fmt.Sprintf("%d", f.StuckCells),
					fmt.Sprintf("%d", f.Detected), fmt.Sprintf("%d", f.RetriedOK),
					fmt.Sprintf("%d", f.CorrectedWrites), fmt.Sprintf("%d", f.RetiredLines),
					fmt.Sprintf("%d", f.RemapHits), fmt.Sprintf("%d", f.Uncorrectable),
					firstRetire)
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Print(tbl.String())
	if wearTbl != nil {
		fmt.Printf("\nper-cell wear (first-failure projection at %.0e program cycles):\n%s",
			wear.DefaultCellEndurance, wearTbl.String())
	}
	if faultTbl != nil {
		fmt.Printf("\nstuck-at faults and repair (retry -> ECC -> retire):\n%s", faultTbl.String())
	}
	if eng != nil {
		fmt.Printf("\nreplayed %d scheme-writes in %v with %d workers over %d routing units (%d banks x %d sub-shards, %s)\n",
			totalWrites, elapsed.Round(time.Millisecond), eng.Workers(), eng.Units(),
			eng.Banks(), eng.SubShards(), stats.Rate(totalWrites, elapsed))
	}
	if timers != nil {
		fmt.Printf("\nmemory system (%s), write busy time scaled by programmed cells:\n",
			memsys.TableII())
		mt := stats.NewTable("scheme", "writes", "avg write latency", "pauses",
			"drains", "utilization")
		for _, st := range timers {
			st.ctrl.Drain()
			s := st.ctrl.Stats()
			mt.Row(st.scheme.Name(), fmt.Sprintf("%d", s.Writes),
				fmt.Sprintf("%.0f cyc", s.AvgWriteLatency()),
				fmt.Sprintf("%d", s.WritePauses), fmt.Sprintf("%d", s.DrainEvents),
				stats.Percent(s.Utilization()))
		}
		fmt.Print(mt.String())
	}
	if err := stopProf(); err != nil {
		log.Print(err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// schemeTimer pairs one scheme's cycle-based controller with the shadow
// memory that prices each write's programmed-cell count for it.
type schemeTimer struct {
	scheme core.Scheme
	mem    *wlcrc.Memory
	ctrl   *memsys.Controller
}

// timingTap feeds every request into each scheme's memory-system model
// as it passes through: the shadow memory encodes the write exactly as
// the replay engine will, and its updated-cell count scales the write's
// bank-busy time (memsys.Config.WriteCyclesFor).
type timingTap struct {
	src    trace.Source
	timers []*schemeTimer
}

// Next implements trace.Source.
func (t *timingTap) Next() (trace.Request, bool) {
	req, ok := t.src.Next()
	if ok {
		for _, st := range t.timers {
			info := st.mem.Write(req.Addr, req.New)
			// Access.Cells = 0 means "unknown" (full WriteCycles), so a
			// genuinely silent store — zero updated cells — is billed as
			// one cell: the floor-cost verify pass, not a full write.
			cells := info.UpdatedCells
			if cells < 1 {
				cells = 1
			}
			st.ctrl.Enqueue(memsys.Access{Kind: memsys.Write, Addr: req.Addr, Cells: cells})
			st.ctrl.Step(40) // nominal inter-arrival gap
		}
	}
	return req, ok
}
