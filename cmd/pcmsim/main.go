// Command pcmsim replays a workload (synthetic or from a trace file)
// through one or more encoding schemes and reports the paper's three
// metrics — write energy, updated cells, disturbance errors — plus
// compression coverage. With -memsys it also pushes the write stream
// through the Table II memory-system model and reports latency and
// utilization.
//
// Replay runs on the parallel sharded engine: every scheme replays
// concurrently, and within a scheme the address space is sharded by bank
// so independent lines replay in parallel. -workers bounds the
// goroutines (default: all CPUs); results are bit-identical for every
// worker count, so -workers 1 reproduces the serial numbers exactly.
//
// -progress streams live dispatcher throughput and per-worker queue
// depths to stderr while a replay runs; -wear enables dense per-cell
// wear tracking and appends a wear report (worst-cell wear, wear CDF
// quantiles, first-cell-failure projection) per scheme.
//
// Examples:
//
//	pcmsim -workload gcc -schemes Baseline,WLCRC-16 -writes 10000
//	pcmsim -trace writes.wlct -schemes WLCRC-16 -progress
//	pcmsim -workload all -schemes Baseline,6cosets,WLCRC-16 -memsys
//	pcmsim -workload all -schemes Baseline,WLCRC-16 -workers 1 -wear
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"wlcrc/internal/core"
	"wlcrc/internal/memsys"
	"wlcrc/internal/sim"
	"wlcrc/internal/stats"
	"wlcrc/internal/trace"
	"wlcrc/internal/wear"
	"wlcrc/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcmsim: ")
	var (
		schemesFlag = flag.String("schemes", "Baseline,WLCRC-16", "comma-separated scheme names")
		wlFlag      = flag.String("workload", "gcc", "workload name, 'all', or 'random' (ignored with -trace)")
		traceFile   = flag.String("trace", "", "replay a trace file instead of a synthetic workload")
		writes      = flag.Int("writes", 5000, "writes per workload (synthetic only)")
		footprint   = flag.Int("footprint", 0, "working-set size in lines (0 = profile default)")
		seed        = flag.Uint64("seed", 1, "workload seed")
		sample      = flag.Bool("sample-disturb", false, "sample disturbance instead of expected values")
		useMemsys   = flag.Bool("memsys", false, "also run the Table II memory-system timing model")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "replay worker goroutines (1 = serial; results are identical for any value)")
		progress    = flag.Bool("progress", false, "stream live replay throughput and queue depths to stderr")
		wearReport  = flag.Bool("wear", false, "track dense per-cell wear and report the wear distribution per scheme")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	var schemes []core.Scheme
	for _, name := range strings.Split(*schemesFlag, ",") {
		s, err := core.NewScheme(strings.TrimSpace(name), cfg)
		if err != nil {
			log.Fatal(err)
		}
		schemes = append(schemes, s)
	}

	opts := sim.DefaultOptions()
	opts.SampleDisturb = *sample
	opts.Seed = *seed
	opts.Workers = *workers
	opts.TrackWear = *wearReport
	if *progress {
		opts.Progress = sim.ProgressPrinter(os.Stderr)
	}

	type namedSource struct {
		name string
		src  trace.Source
		n    int
	}
	var sources []namedSource
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		rd, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		sources = append(sources, namedSource{name: *traceFile, src: &trace.ReaderSource{R: rd}})
	case *wlFlag == "all":
		for _, p := range workload.Profiles() {
			sources = append(sources, namedSource{
				name: p.Name,
				src:  workload.NewGenerator(p, *footprint, *seed),
				n:    *writes,
			})
		}
	case *wlFlag == "random":
		sources = append(sources, namedSource{
			name: "random",
			src:  workload.NewGenerator(workload.RandomProfile(), *footprint, *seed),
			n:    *writes,
		})
	default:
		p, ok := workload.ProfileByName(*wlFlag)
		if !ok {
			log.Fatalf("unknown workload %q", *wlFlag)
		}
		sources = append(sources, namedSource{
			name: p.Name,
			src:  workload.NewGenerator(p, *footprint, *seed),
			n:    *writes,
		})
	}

	tbl := stats.NewTable("workload", "scheme", "pJ/write", "cells/write",
		"disturb/write", "compressed")
	var wearTbl *stats.Table
	if *wearReport {
		wearTbl = stats.NewTable("workload", "scheme", "cells/write", "max wear",
			"p50", "p99", "imbalance", "writes to 1st failure")
	}
	var msys *memsys.Controller
	if *useMemsys {
		msys = memsys.New(memsys.TableII())
	}
	var totalWrites uint64
	start := time.Now()
	var eng *sim.Engine
	for _, ns := range sources {
		eng = sim.NewEngine(opts, schemes...)
		src := ns.src
		if ns.n > 0 {
			src = &workload.Limited{Src: src, N: ns.n}
		}
		if msys != nil {
			src = &timingTap{src: src, ctrl: msys}
		}
		if err := eng.Run(src, 0); err != nil {
			log.Fatal(err)
		}
		for _, m := range eng.Metrics() {
			totalWrites += uint64(m.Writes)
			tbl.Row(ns.name, m.Scheme, m.AvgEnergy(), m.AvgUpdated(),
				m.AvgDisturb(), stats.Percent(m.CompressedFraction()))
			if wearTbl != nil {
				w := m.Wear
				wearTbl.Row(ns.name, m.Scheme, w.AvgUpdatedCells(),
					fmt.Sprintf("%d", w.MaxCellWear),
					fmt.Sprintf("%d", w.Quantile(0.5)), fmt.Sprintf("%d", w.Quantile(0.99)),
					w.WearImbalance(),
					fmt.Sprintf("%.3g", w.LifetimeWrites(wear.DefaultCellEndurance)))
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Print(tbl.String())
	if wearTbl != nil {
		fmt.Printf("\nper-cell wear (first-failure projection at %.0e program cycles):\n%s",
			wear.DefaultCellEndurance, wearTbl.String())
	}
	if eng != nil {
		fmt.Printf("\nreplayed %d scheme-writes in %v with %d workers over %d bank shards (%s)\n",
			totalWrites, elapsed.Round(time.Millisecond), eng.Workers(), eng.Banks(),
			stats.Rate(totalWrites, elapsed))
	}
	if msys != nil {
		msys.Drain()
		st := msys.Stats()
		fmt.Printf("\nmemory system (%s):\n", memsys.TableII())
		fmt.Printf("  writes %d, avg write latency %.0f cycles, pauses %d, drains %d, utilization %s\n",
			st.Writes, st.AvgWriteLatency(), st.WritePauses, st.DrainEvents,
			stats.Percent(st.Utilization()))
	}
}

// timingTap feeds every request into the memory-system model as it
// passes through.
type timingTap struct {
	src  trace.Source
	ctrl *memsys.Controller
}

// Next implements trace.Source.
func (t *timingTap) Next() (trace.Request, bool) {
	req, ok := t.src.Next()
	if ok {
		t.ctrl.Enqueue(memsys.Access{Kind: memsys.Write, Addr: req.Addr})
		t.ctrl.Step(40) // nominal inter-arrival gap
	}
	return req, ok
}
