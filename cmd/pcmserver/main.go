// Command pcmserver turns the replay engine into a long-running
// simulation service (ROADMAP item 1): it accepts replay and sweep
// jobs over HTTP, multiplexes them onto a bounded shared worker pool,
// streams live progress and periodic engine snapshots to clients over
// SSE, and persists every job's spec and results in an append-only
// JSONL store so runs survive restarts and stay queryable and
// comparable across days.
//
// Job results are bit-identical to a direct wlcrc.Replay of the same
// spec — the server changes how simulations are scheduled and served,
// never what they compute.
//
//	pcmserver -addr :8080 -data ./pcmdata -pool 4
//
// Endpoints (see internal/server):
//
//	POST   /v1/jobs             submit {"workload":"gcc","writes":10000,...}
//	GET    /v1/jobs/{id}        job status and results
//	GET    /v1/jobs/{id}/events live SSE progress + snapshots
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/results?scheme=  stored per-scheme rows across runs
//	GET    /v1/series/{name}    stored bench series
//	GET    /healthz, /metrics   liveness and Prometheus text metrics
//
// SIGINT/SIGTERM shut down gracefully: the listener stops accepting,
// running jobs are canceled through their contexts, and their partial
// snapshots are persisted as canceled records before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wlcrc/internal/jobs"
	"wlcrc/internal/server"
	"wlcrc/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcmserver: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		dataDir  = flag.String("data", "", "result store directory (empty = no persistence)")
		pool     = flag.Int("pool", 2, "jobs that run concurrently (each job parallelizes internally)")
		queueCap = flag.Int("queue", 64, "pending-job backlog beyond the running ones")
		snapshot = flag.Duration("snapshot-interval", time.Second, "pace of periodic SSE snapshot events")
		portFile = flag.String("port-file", "", "write the bound TCP port to this file once listening (for scripts and CI)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var st store.Store
	if *dataDir != "" {
		js, err := store.Open(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		st = js
		logger.Info("store open", "dir", *dataDir, "jobs", len(js.Jobs()))
	}

	mgr := jobs.NewManager(jobs.Config{
		Pool:             *pool,
		QueueCap:         *queueCap,
		Store:            st,
		SnapshotInterval: *snapshot,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(*portFile, []byte(fmt.Sprintf("%d\n", port)), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	srv := &http.Server{Handler: server.New(mgr, st, logger)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String(), "pool", *pool, "queue", *queueCap)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("signal received, shutting down")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		return
	}

	// Graceful teardown order: stop accepting requests (bounded — SSE
	// clients of canceled jobs unblock when the jobs finish), then
	// cancel and drain running jobs so their partial snapshots persist,
	// then close the store.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	mgr.Shutdown()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
		srv.Close()
	}
	if st != nil {
		if err := st.Close(); err != nil {
			logger.Warn("store close", "err", err)
		}
	}
	logger.Info("bye")
}
