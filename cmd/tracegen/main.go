// Command tracegen generates write-trace files from the synthetic
// benchmark workloads (optionally through the Table II L2 cache model,
// which turns a store stream into the dirty write-back stream the
// paper's Simics methodology captured) and inspects existing traces.
//
// With -out - the trace streams to stdout (summaries go to stderr), so
// generated workloads pipe straight into pcmsim without a temp file:
//
//	tracegen -workload mcf -writes 100000 -out - | pcmsim -trace /dev/stdin
//
// Files written with -out <path> carry the real record count in the
// header (back-patched on close); streamed output keeps the header's
// count-unknown convention, which every reader accepts.
//
// Examples:
//
//	tracegen -workload mcf -writes 100000 -out mcf.wlct
//	tracegen -workload lesl -writes 50000 -through-cache -out lesl.wlct
//	tracegen -info mcf.wlct
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"wlcrc/internal/cache"
	"wlcrc/internal/memline"
	"wlcrc/internal/trace"
	"wlcrc/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		wlName   = flag.String("workload", "gcc", "workload profile name or 'random'")
		writes   = flag.Int("writes", 10000, "number of write requests to emit")
		out      = flag.String("out", "", "output trace file, or '-' for stdout (required unless -info)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		footpr   = flag.Int("footprint", 0, "working-set lines (0 = profile default)")
		useCache = flag.Bool("through-cache", false, "filter stores through the Table II L2; the trace holds its dirty write-backs")
		info     = flag.String("info", "", "print a summary of an existing trace file and exit")
	)
	flag.Parse()

	if *info != "" {
		if err := describe(*info); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *out == "" {
		log.Fatal("-out is required (or use -info)")
	}

	var prof workload.Profile
	if *wlName == "random" {
		prof = workload.RandomProfile()
	} else {
		var ok bool
		prof, ok = workload.ProfileByName(*wlName)
		if !ok {
			log.Fatalf("unknown workload %q", *wlName)
		}
	}
	gen := workload.NewGenerator(prof, *footpr, *seed)

	// With -out - the records stream to stdout and human-readable
	// summaries move to stderr. Stdout is wrapped so the writer does not
	// try to back-patch the header count — stdout is usually a pipe, and
	// even when it is a file the stream convention (count 0 = unknown)
	// keeps piped and redirected output identical.
	var (
		dst     io.Writer
		closef  func() error
		summary io.Writer = os.Stdout
	)
	if *out == "-" {
		dst = struct{ io.Writer }{os.Stdout}
		summary = os.Stderr
		closef = func() error { return nil }
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		dst = f
		closef = f.Close
	}
	w, err := trace.NewWriter(dst)
	if err != nil {
		log.Fatal(err)
	}

	if *useCache {
		// Stores go through the L2; the trace records its dirty
		// write-backs, each carrying the previous memory content.
		mem := cache.NewMemory()
		var sinkErr error
		l2 := cache.New(cache.TableII(), mem, func(r trace.Request) {
			if sinkErr == nil {
				sinkErr = w.Write(r)
			}
		})
		for i := 0; i < *writes; i++ {
			req, _ := gen.Next()
			l2.Store(req.Addr, req.New)
			if sinkErr != nil {
				log.Fatal(sinkErr)
			}
		}
		l2.Flush()
		if sinkErr != nil {
			log.Fatal(sinkErr)
		}
		st := l2.Stats()
		fmt.Fprintf(summary, "L2: %.1f%% hit rate, %d write-backs from %d stores\n",
			100*st.HitRate(), st.WriteBacks, *writes)
	} else {
		for i := 0; i < *writes; i++ {
			req, _ := gen.Next()
			if err := w.Write(req); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Close back-patches the header record count on seekable outputs.
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if err := closef(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(summary, "wrote %d requests to %s\n", w.Count(), *out)
}

func describe(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	if c := rd.Count(); c > 0 {
		fmt.Printf("header count: %d\n", c)
	} else {
		fmt.Println("header count: unknown (streamed)")
	}
	var (
		n        int
		addrs    = map[uint64]bool{}
		diffSyms int
		hist     [memline.SymbolValues]int
	)
	for {
		req, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		n++
		addrs[req.Addr] = true
		diffSyms += req.Old.CountDiffSymbols(&req.New)
		for v, c := range req.New.SymbolHistogram() {
			hist[v] += c
		}
	}
	fmt.Printf("%s: %d requests, %d distinct lines\n", path, n, len(addrs))
	if n > 0 {
		avg := float64(diffSyms) / float64(n)
		fmt.Printf("avg changed symbols per write: %.1f / %d (%.1f%%)\n",
			avg, memline.LineCells, 100*avg/float64(memline.LineCells))
		total := float64(n) * memline.LineCells
		fmt.Printf("written symbol mix: 00=%.1f%% 01=%.1f%% 10=%.1f%% 11=%.1f%%\n",
			100*float64(hist[0])/total, 100*float64(hist[1])/total,
			100*float64(hist[2])/total, 100*float64(hist[3])/total)
	}
	return nil
}
