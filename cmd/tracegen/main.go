// Command tracegen generates write-trace files from the synthetic
// benchmark workloads (optionally through the Table II L2 cache model,
// which turns a store stream into the dirty write-back stream the
// paper's Simics methodology captured) and inspects existing traces.
//
// With -out - the trace streams to stdout (summaries go to stderr), so
// generated workloads pipe straight into pcmsim without a temp file:
//
//	tracegen -workload mcf -writes 100000 -out - | pcmsim -trace /dev/stdin
//
// Files written with -out <path> carry the real record count in the
// header (back-patched on close); streamed output keeps the header's
// count-unknown convention, which every reader accepts.
//
// With -encrypt the emitted trace is the counter-mode encrypted
// (whitened) form of the stream — the ciphertext an encrypted DIMM
// stores, with per-line write counters advanced deterministically —
// so any recorded workload can be replayed as encrypted traffic. The
// transform is keyed (-key) and is its own inverse. With -from the
// requests come from an existing trace file instead of a synthetic
// workload (reading it to the end; the workload flags are ignored), so
// -from enc.wlct -encrypt with the same key decrypts an encrypted
// trace back to plaintext. Input traces (-from, -info) are
// memory-mapped and decoded zero-copy when the platform allows it;
// -info also reports the file's pure decode throughput off the mapping.
//
// Examples:
//
//	tracegen -workload mcf -writes 100000 -out mcf.wlct
//	tracegen -workload lesl -writes 50000 -through-cache -out lesl.wlct
//	tracegen -workload gcc -writes 50000 -encrypt -out gcc-enc.wlct
//	tracegen -from gcc-enc.wlct -encrypt -out gcc-plain.wlct   # decrypt
//	tracegen -info mcf.wlct
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"time"

	"wlcrc/internal/cache"
	"wlcrc/internal/memline"
	"wlcrc/internal/stats"
	"wlcrc/internal/trace"
	"wlcrc/internal/vcc"
	"wlcrc/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		wlName   = flag.String("workload", "gcc", "workload profile name or 'random'")
		writes   = flag.Int("writes", 10000, "number of write requests to emit")
		out      = flag.String("out", "", "output trace file, or '-' for stdout (required unless -info)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		footpr   = flag.Int("footprint", 0, "working-set lines (0 = profile default)")
		useCache = flag.Bool("through-cache", false, "filter stores through the Table II L2; the trace holds its dirty write-backs")
		encrypt  = flag.Bool("encrypt", false, "emit the counter-mode encrypted (whitened) form of the stream")
		key      = flag.Uint64("key", 0, "encryption key for -encrypt (0 = default key)")
		from     = flag.String("from", "", "read requests from an existing trace file instead of a synthetic workload (read to the end; workload flags ignored)")
		info     = flag.String("info", "", "print a summary of an existing trace file and exit")
	)
	flag.Parse()

	if *info != "" {
		if err := describe(*info); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *out == "" {
		log.Fatal("-out is required (or use -info)")
	}

	// The request source: a synthetic workload generator, or with -from
	// an existing trace (drained to its end, so -writes is ignored too).
	var src trace.Source
	limit := *writes
	if *from != "" {
		// os.Create(*out) truncates before the first record is read, so
		// an in-place transform would silently destroy the input.
		if *out != "-" && samePath(*from, *out) {
			log.Fatalf("-from and -out name the same file %q; write to a new file instead", *out)
		}
		// Prefer the memory-mapped source (zero-copy decode); fall back
		// to the buffered reader when mapping is unavailable.
		if m, err := trace.OpenMapped(*from); err == nil {
			defer m.Close()
			src = m
		} else {
			f, err := os.Open(*from)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			rd, err := trace.NewReader(f)
			if err != nil {
				log.Fatal(err)
			}
			src = &trace.ReaderSource{R: rd}
		}
		limit = -1
	} else {
		var prof workload.Profile
		if *wlName == "random" {
			prof = workload.RandomProfile()
		} else {
			var ok bool
			prof, ok = workload.ProfileByName(*wlName)
			if !ok {
				log.Fatalf("unknown workload %q", *wlName)
			}
		}
		src = workload.NewGenerator(prof, *footpr, *seed)
	}

	// With -out - the records stream to stdout and human-readable
	// summaries move to stderr. Stdout is wrapped so the writer does not
	// try to back-patch the header count — stdout is usually a pipe, and
	// even when it is a file the stream convention (count 0 = unknown)
	// keeps piped and redirected output identical.
	var (
		dst     io.Writer
		closef  func() error
		summary io.Writer = os.Stdout
	)
	if *out == "-" {
		dst = struct{ io.Writer }{os.Stdout}
		summary = os.Stderr
		closef = func() error { return nil }
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		dst = f
		closef = f.Close
	}
	w, err := trace.NewWriter(dst)
	if err != nil {
		log.Fatal(err)
	}

	// With -encrypt every record is whitened on its way into the writer,
	// after the cache filter (the DIMM sees the write-back stream).
	var enc *vcc.StreamEncryptor
	if *encrypt {
		enc = vcc.NewStreamEncryptor(*key)
	}
	emit := func(r trace.Request) error {
		if enc != nil {
			enc.Apply(&r)
		}
		return w.Write(r)
	}

	if *useCache {
		// Stores go through the L2; the trace records its dirty
		// write-backs, each carrying the previous memory content.
		mem := cache.NewMemory()
		var sinkErr error
		l2 := cache.New(cache.TableII(), mem, func(r trace.Request) {
			if sinkErr == nil {
				sinkErr = emit(r)
			}
		})
		stores := 0
		for ; limit < 0 || stores < limit; stores++ {
			req, ok := src.Next()
			if !ok {
				break
			}
			l2.Store(req.Addr, req.New)
			if sinkErr != nil {
				log.Fatal(sinkErr)
			}
		}
		l2.Flush()
		if sinkErr != nil {
			log.Fatal(sinkErr)
		}
		st := l2.Stats()
		fmt.Fprintf(summary, "L2: %.1f%% hit rate, %d write-backs from %d stores\n",
			100*st.HitRate(), st.WriteBacks, stores)
	} else {
		for i := 0; limit < 0 || i < limit; i++ {
			req, ok := src.Next()
			if !ok {
				break
			}
			if err := emit(req); err != nil {
				log.Fatal(err)
			}
		}
	}
	if rs, ok := src.(*trace.ReaderSource); ok && rs.Err() != nil {
		log.Fatal(rs.Err())
	}
	if m, ok := src.(*trace.MappedSource); ok && m.Err() != nil {
		log.Fatal(m.Err())
	}
	// Close back-patches the header record count on seekable outputs.
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if err := closef(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(summary, "wrote %d requests to %s\n", w.Count(), *out)
}

// samePath reports whether two paths name the same file, falling back
// to a lexical comparison when either cannot be resolved (e.g. the
// output does not exist yet).
func samePath(a, b string) bool {
	ai, errA := os.Stat(a)
	bi, errB := os.Stat(b)
	if errA == nil && errB == nil {
		return os.SameFile(ai, bi)
	}
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	return errA == nil && errB == nil && aa == bb
}

func describe(path string) error {
	m, err := trace.OpenMapped(path)
	if err != nil {
		// Mapping failed (exotic filesystem, malformed header surfaces
		// below either way) — describe through the buffered reader.
		return describeReader(path)
	}
	defer m.Close()
	if c := m.Count(); c > 0 {
		fmt.Printf("header count: %d\n", c)
	} else {
		fmt.Println("header count: unknown (streamed)")
	}
	// Timed pure-decode pass: batch-decode every record off the mapping
	// with none of the analysis below, i.e. exactly what a replay's
	// ingest pays per record.
	var buf [512]trace.Request
	start := time.Now()
	for m.NextBatch(buf[:]) != 0 {
	}
	elapsed := time.Since(start)
	backing := "mmap"
	if !m.Mapped() {
		backing = "bulk read"
	}
	fmt.Printf("decode: %d records in %v (%s, %s)\n", m.Records(),
		elapsed.Round(time.Microsecond), stats.Rate(uint64(m.Records()), elapsed), backing)
	m.Rewind()
	summarize(path, m)
	return m.Err()
}

// describeReader is the -info fallback when the file cannot be mapped.
func describeReader(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	if c := rd.Count(); c > 0 {
		fmt.Printf("header count: %d\n", c)
	} else {
		fmt.Println("header count: unknown (streamed)")
	}
	rs := &trace.ReaderSource{R: rd}
	summarize(path, rs)
	return rs.Err()
}

// summarize drains a source and prints the request-level summary shared
// by the mapped and reader -info paths.
func summarize(path string, src trace.Source) {
	var (
		n        int
		addrs    = map[uint64]bool{}
		diffSyms int
		hist     [memline.SymbolValues]int
	)
	for {
		req, ok := src.Next()
		if !ok {
			break
		}
		n++
		addrs[req.Addr] = true
		diffSyms += req.Old.CountDiffSymbols(&req.New)
		for v, c := range req.New.SymbolHistogram() {
			hist[v] += c
		}
	}
	fmt.Printf("%s: %d requests, %d distinct lines\n", path, n, len(addrs))
	if n > 0 {
		avg := float64(diffSyms) / float64(n)
		fmt.Printf("avg changed symbols per write: %.1f / %d (%.1f%%)\n",
			avg, memline.LineCells, 100*avg/float64(memline.LineCells))
		total := float64(n) * memline.LineCells
		fmt.Printf("written symbol mix: 00=%.1f%% 01=%.1f%% 10=%.1f%% 11=%.1f%%\n",
			100*float64(hist[0])/total, 100*float64(hist[1])/total,
			100*float64(hist[2])/total, 100*float64(hist[3])/total)
	}
}
