package main

import (
	"reflect"
	"strings"
	"testing"

	"wlcrc/internal/store"
)

// TestMeasuredFromStore exercises the -from-store source: the latest
// point of the named series — by timestamp, with append order breaking
// ties — must come back verbatim as the measured map.
func TestMeasuredFromStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pts := []store.SeriesPoint{
		{Name: "ingest", JobID: "a", Unix: 100, Values: map[string]float64{"reader": 300000, "mapped": 200000}},
		{Name: "ingest", JobID: "b", Unix: 300, Values: map[string]float64{"reader": 309412, "mapped": 40380, "batch": 64717}},
		{Name: "ingest", JobID: "c", Unix: 200, Values: map[string]float64{"reader": 1, "mapped": 1}},
		{Name: "other", JobID: "d", Unix: 900, Values: map[string]float64{"x": 1}},
	}
	for _, p := range pts {
		if err := st.PutSeries(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	got := measured(dir, "", "ingest", nil)
	if want := pts[1].Values; !reflect.DeepEqual(got, want) {
		t.Fatalf("measured = %v, want the Unix=300 point %v", got, want)
	}

	// An explicit -series name overrides the mode default.
	got = measured(dir, "other", "ingest", nil)
	if want := pts[3].Values; !reflect.DeepEqual(got, want) {
		t.Fatalf("measured(other) = %v, want %v", got, want)
	}
}

// TestMeasuredParsesInput covers the default (no -from-store) source:
// bench text through the mode's parser, averaged across -count repeats.
// The parser records each line under both the suffix-stripped and the
// verbatim key (the "-N" GOMAXPROCS decoration is locally ambiguous);
// only the stripped keys match what the gates look up.
func TestMeasuredParsesInput(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"goos: linux",
		"BenchmarkIngest/reader-2 100 300000 ns/op",
		"BenchmarkIngest/reader-2 100 310000 ns/op",
		"BenchmarkIngest/mapped-2 100 40000 ns/op",
		"PASS",
	}, "\n"))
	got, err := parseIngestBench(in)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"reader": 305000, "reader-2": 305000,
		"mapped": 40000, "mapped-2": 40000,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseIngestBench = %v, want %v", got, want)
	}
}

// TestGuardSeriesDetectsRegression checks the geomean-normalized encode
// gate on plain maps — the shape both bench text and store series reduce
// to. A uniform 2x slowdown cancels out; a single-scheme 2x trips it.
func TestGuardSeriesDetectsRegression(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 200, "C": 400}
	uniform := map[string]float64{"A": 200, "B": 400, "C": 800}
	if guardSeries("test", base, uniform, 0.10, false) {
		t.Fatal("uniformly slower run must not trip the gate")
	}
	skewed := map[string]float64{"A": 100, "B": 200, "C": 800}
	if !guardSeries("test", base, skewed, 0.10, false) {
		t.Fatal("single-scheme regression must trip the gate")
	}
}
