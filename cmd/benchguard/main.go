// Command benchguard enforces the committed encode-benchmark baseline.
//
// It parses `go test -bench` output (stdin or a file), extracts the
// BenchmarkEncodeInto/<scheme> series, and compares each scheme against
// the PR 3 series committed in BENCH_encode.json. Because CI machines
// differ in absolute speed from the machine the baseline was measured
// on, the comparison is normalized: each scheme's ns/op is divided by
// the geometric mean of the whole run, and that relative position must
// not exceed the baseline's by more than the tolerance (default 10%).
// A uniformly slower machine shifts every scheme equally and cancels
// out; a real hot-path regression moves one scheme against the rest of
// the field and trips the gate. Run with -count 3 or more so averaging
// damps scheduler noise.
//
//	go test -run xxx -bench BenchmarkEncodeInto -benchtime 1s . | benchguard
//	benchguard -emit-baseline > old.txt   # baseline in benchstat format
//
// With -replay it guards the parallel replay dispatcher instead. It
// prefers the PR 6 scaling series — BenchmarkReplayParallelScaling/
// workers=N at fixed worker counts — reading the workers=1 time as the
// serial reference and gating the parallel-over-serial wall-clock ratio
// at the baseline's gate_workers count against the committed
// replay_parallel_pr6 ratio. Inputs without the scaling series (pre-PR6
// bench runs) fall back to BenchmarkReplaySerial/BenchmarkReplayParallel
// against the replay_parallel_pr4 baseline. Either way the gated number
// is a same-box wall-clock ratio, machine-speed independent, and exactly
// what a dispatch regression moves — a broadcast-style fan-out or a lost
// parallelism bug drags parallel toward (or past) serial. Machines with
// more cores than the baseline's only improve the ratio, so the gate
// stays sound across CI hardware.
//
//	go test -run xxx -bench 'BenchmarkReplayParallelScaling' -benchtime 2x -count 3 . | benchguard -replay
//
// With -ingest it guards the PR 7 trace-decode front-end instead: the
// BenchmarkIngest/mapped over BenchmarkIngest/reader ns/op ratio (both
// decode the same records, so this is the per-record decode-cost ratio,
// same-box and machine-speed independent) must stay at or below the
// committed ingest_pr7 gate_ratio — i.e. the zero-copy mapped batch
// path must keep its >=2x throughput edge over the per-record reader
// loop.
//
//	go test -run xxx -bench BenchmarkIngest -benchtime 1s -count 3 ./internal/trace/ | benchguard -ingest
//
// With -faultfree it guards the PR 8 stuck-at fault model's zero-cost
// claim: with faults disabled the replay engine must stay within the
// committed fault_free_pr8 gate_ratio (5%) of the plain PR 7 engine on
// the same fixture — BenchmarkEngineRunFaults/off over
// BenchmarkEngineRun/workers=4/ingest=off, identical configurations
// except that the former is compiled through the fault-aware write
// path. Same box, same process, so the ratio is machine-speed
// independent; it moves only when fault-model bookkeeping leaks into
// the fault-disabled hot path.
//
//	go test -run xxx -bench 'BenchmarkEngineRun' -benchtime 2x -count 3 ./internal/sim/ | benchguard -faultfree
//
// With -arena it guards the PR 9 plane-native line store: the serial
// replay on the reference scalar store (sim.Options.ScalarStorage)
// over the same replay on the plane arena — BenchmarkReplayStorage/
// storage=scalar over storage=planes — must stay at or above the
// committed replay_arena_pr9 gate_ratio. The scalar path is the PR 8
// storage preserved in-tree as the equivalence reference, so the ratio
// re-measures the PR's speedup on every box: it collapses toward 1.0
// only when the arena path loses its edge (a pack/unpack or map lookup
// creeping back into the hot loop).
//
//	go test -run xxx -bench BenchmarkReplayStorage -benchtime 2x -count 3 . | benchguard -arena
//
// With -from-store <dir> the measured numbers come from a pcmserver
// result store instead of bench output: the latest point of the named
// series (-series, defaulting to the guard mode's name — encode,
// replay, ingest, faultfree or arena) supplies the key→value map the
// mode would otherwise parse from `go test -bench` text. A CI box that
// pushes its bench runs to the server over POST /v1/series can then
// gate any recorded run, or re-gate yesterday's, without keeping the
// raw bench logs around:
//
//	benchguard -ingest -from-store /var/lib/pcmserver -series ingest
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"wlcrc/internal/store"
)

type baseline struct {
	EncodePR3 map[string]float64 `json:"encode_into_ns_per_op_pr3"`
	// EncodeVCC is the PR 5 encrypted-PCM scheme family (VCC-n, Enc).
	// It is gated separately from EncodePR3, each family normalized by
	// its own geometric mean, because the two were measured on
	// different days and absolute machine speed drifts between sessions.
	EncodeVCC map[string]float64 `json:"encode_into_ns_per_op_vcc_pr5"`
	Replay    *replayBaseline    `json:"replay_parallel_pr4"`
	// ReplayScaling is the PR 6 sub-bank-sharded pipeline series,
	// measured by BenchmarkReplayParallelScaling at fixed worker counts.
	ReplayScaling *replayScalingBaseline `json:"replay_parallel_pr6"`
	// Ingest is the PR 7 trace-decode front-end series, measured by
	// BenchmarkIngest in internal/trace.
	Ingest *ingestBaseline `json:"ingest_pr7"`
	// FaultFree is the PR 8 fault-model overhead series, measured by
	// BenchmarkEngineRun + BenchmarkEngineRunFaults in internal/sim.
	FaultFree *faultFreeBaseline `json:"fault_free_pr8"`
	// Arena is the PR 9 plane-native line-store series, measured by
	// BenchmarkReplayStorage at the repo root.
	Arena *arenaBaseline `json:"replay_arena_pr9"`
}

type replayBaseline struct {
	SerialNS   float64 `json:"serial_ns_per_run"`
	ParallelNS float64 `json:"parallel_ns_per_run"`
	Ratio      float64 `json:"parallel_over_serial"`
	Workers    int     `json:"workers"`
}

// replayScalingBaseline records the fixed-worker scaling curve. The gate
// compares the measured parallel(gate_workers)/serial(workers=1) ratio
// against Ratio; NSPerRun keeps the whole curve for the record.
type replayScalingBaseline struct {
	NSPerRun    map[string]float64 `json:"ns_per_run_by_workers"`
	Ratio       float64            `json:"parallel_over_serial"`
	GateWorkers int                `json:"gate_workers"`
}

// ingestBaseline records the trace-decode front-end series. Every
// BenchmarkIngest sub-benchmark decodes the same number of records per
// op, so mapped/reader ns/op is the per-record decode-cost ratio — a
// same-box number, machine-speed independent. The gate requires the
// measured ratio to stay at or below GateRatio (0.5 = the mapped batch
// path must decode at least 2x as fast as the per-record reader loop);
// NSPerOp keeps the measured absolute times for the record.
type ingestBaseline struct {
	NSPerOp   map[string]float64 `json:"ns_per_pass_by_path"`
	Records   int                `json:"records_per_pass"`
	Ratio     float64            `json:"mapped_over_reader"`
	GateRatio float64            `json:"gate_ratio"`
}

// faultFreeBaseline records the fault-model overhead series: "plain" is
// BenchmarkEngineRun/workers=4/ingest=off (the PR 7 engine), "off" and
// "on" are BenchmarkEngineRunFaults with the model disabled and
// enabled on the identical fixture. The gate requires the measured
// off/plain ratio to stay at or below GateRatio — a fault-disabled
// replay must not pay for the fault machinery; "on" is recorded but not
// gated (its cost is the model's job, not a regression).
type faultFreeBaseline struct {
	NSPerRun  map[string]float64 `json:"ns_per_run_by_mode"`
	Ratio     float64            `json:"off_over_plain"`
	GateRatio float64            `json:"gate_ratio"`
}

// arenaBaseline records the plane-native line-store series: "planes"
// is BenchmarkReplayStorage on the arena (the default store for
// plane-capable schemes), "scalar" is the same serial replay forced
// onto the reference scalar map. Both run in one process on one box,
// so scalar/planes is machine-speed independent: it is the PR's
// speedup, re-measured live. The gate requires the measured ratio to
// stay at or above GateRatio — below it, the arena path has lost its
// edge over the storage it replaced. The committed Ratio sits well
// above the gate; the margin between them is the noise headroom.
type arenaBaseline struct {
	NSPerRun  map[string]float64 `json:"ns_per_run_by_storage"`
	Ratio     float64            `json:"scalar_over_planes"`
	GateRatio float64            `json:"gate_ratio"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	var (
		basePath  = flag.String("baseline", "BENCH_encode.json", "committed baseline JSON")
		tol       = flag.Float64("tolerance", 0.10, "allowed relative regression (0.10 = 10%)")
		emit      = flag.Bool("emit-baseline", false, "print the baseline as benchstat-compatible bench output and exit")
		replay    = flag.Bool("replay", false, "guard the parallel replay dispatcher (parallel/serial wall-clock ratio) instead of the encode series")
		replayTol = flag.Float64("replay-tolerance", 0.30, "allowed relative ratio regression in -replay mode (generous: wall-clock ratios are noisy)")
		ingest    = flag.Bool("ingest", false, "guard the trace-decode front-end (mapped/reader decode-cost ratio from BenchmarkIngest) instead of the encode series")
		faultFree = flag.Bool("faultfree", false, "guard the fault model's zero-cost-when-disabled claim (BenchmarkEngineRunFaults/off over BenchmarkEngineRun) instead of the encode series")
		arena     = flag.Bool("arena", false, "guard the plane-native line store's speedup (BenchmarkReplayStorage scalar/planes ratio) instead of the encode series")
		fromStore = flag.String("from-store", "", "pcmserver result-store directory: gate the latest point of a recorded series instead of parsing bench output")
		series    = flag.String("series", "", "series name to read with -from-store (default: the guard mode's name — encode, replay, ingest, faultfree or arena)")
	)
	flag.Parse()

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatal(err)
	}
	if *replay {
		guardReplay(base, measured(*fromStore, *series, "replay", parseReplayBench), *replayTol)
		return
	}
	if *ingest {
		guardIngest(base, measured(*fromStore, *series, "ingest", parseIngestBench))
		return
	}
	if *faultFree {
		guardFaultFree(base, measured(*fromStore, *series, "faultfree", parseFaultFreeBench))
		return
	}
	if *arena {
		guardArena(base, measured(*fromStore, *series, "arena", parseArenaBench))
		return
	}
	if len(base.EncodePR3) == 0 {
		log.Fatalf("%s has no encode_into_ns_per_op_pr3 series", *basePath)
	}

	if *emit {
		for _, series := range []map[string]float64{base.EncodePR3, base.EncodeVCC} {
			names := make([]string, 0, len(series))
			for n := range series {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Printf("BenchmarkEncodeInto/%s 1 %g ns/op\n", n, series[n])
			}
		}
		return
	}

	got := measured(*fromStore, *series, "encode", parseBench)
	if len(got) == 0 {
		log.Fatal("no BenchmarkEncodeInto results in input")
	}

	failed := guardSeries("pr3", base.EncodePR3, got, *tol, true)
	if len(base.EncodeVCC) > 0 {
		failed = guardSeries("vcc_pr5", base.EncodeVCC, got, *tol, false) || failed
	}
	if failed {
		log.Fatalf("encode hot path regressed beyond %.0f%% (geomean-normalized)", 100**tol)
	}
	fmt.Println("benchguard: encode hot path within baseline")
}

// guardSeries compares one baseline family against the run, normalized
// by the family's own geometric mean over the schemes present in both:
// a uniformly slower machine shifts every scheme equally and cancels
// out, while a single-scheme hot-path regression stands out. It reports
// whether any scheme regressed beyond tol. A run with no overlap at all
// is fatal for a required family but only a warning for an optional one
// (filtered bench runs and pre-PR5 outputs legitimately lack the VCC
// series).
func guardSeries(label string, series, got map[string]float64, tol float64, required bool) bool {
	var names []string
	for n := range series {
		if _, ok := got[n]; ok {
			names = append(names, n)
		} else {
			log.Printf("WARN: scheme %s missing from bench run", n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		if required {
			log.Fatalf("no overlap between the %s baseline and the bench run", label)
		}
		log.Printf("WARN: no overlap between the %s baseline and the bench run; skipping the family", label)
		return false
	}
	baseNorm, gotNorm := geomean(series, names), geomean(got, names)

	failed := false
	for _, n := range names {
		baseRatio := series[n] / baseNorm
		curRatio := got[n] / gotNorm
		delta := curRatio/baseRatio - 1
		status := "ok"
		if delta > tol {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-14s baseline %8.1f ns (x%.2f)   run %8.1f ns (x%.2f)   %+6.1f%%  %s\n",
			n, series[n], baseRatio, got[n], curRatio, 100*delta, status)
	}
	return failed
}

// openInput returns the bench output to parse: the first positional
// argument as a file, or stdin. The process exits before the reader is
// finished with, so the file is never explicitly closed.
func openInput() io.Reader {
	if flag.NArg() == 0 {
		return os.Stdin
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	return f
}

// measured resolves the mode's measured key→value map: parsed from
// bench output (stdin or a file) by default, or — with -from-store —
// the latest point of a series recorded in a pcmserver result store.
// Store series carry exactly the map the parser would produce (the
// server's POST /v1/series contract), so the gates downstream cannot
// tell the two sources apart. name defaults to the mode's own name.
func measured(dir, name, mode string, parse func(io.Reader) (map[string]float64, error)) map[string]float64 {
	if dir == "" {
		m, err := parse(openInput())
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	if name == "" {
		name = mode
	}
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	pts := st.Series(name)
	if len(pts) == 0 {
		have := strings.Join(st.SeriesNames(), ", ")
		if have == "" {
			have = "none"
		}
		log.Fatalf("store %s has no series %q (recorded series: %s)", dir, name, have)
	}
	// Latest observation wins; points carry their submission timestamp,
	// with append order breaking ties (and ordering unstamped points).
	best := pts[0]
	for _, p := range pts[1:] {
		if p.Unix >= best.Unix {
			best = p
		}
	}
	fmt.Printf("benchguard: gating series %q from %s (%d point(s), latest of job %q)\n",
		name, dir, len(pts), best.JobID)
	return best.Values
}

// guardReplay enforces the routed-dispatch baseline: the measured
// parallel-over-serial replay ratio must not exceed the committed ratio
// by more than tol (relative). It gates the PR 6 scaling series when the
// input carries it, and falls back to the PR 4 serial/parallel pair for
// older bench outputs.
func guardReplay(base baseline, m map[string]float64, tol float64) {
	if bs := base.ReplayScaling; bs != nil && bs.Ratio != 0 {
		gateKey := fmt.Sprintf("workers=%d", bs.GateWorkers)
		serial, parallel := m["workers=1"], m[gateKey]
		if serial != 0 && parallel != 0 {
			gateRatio(serial, parallel, bs.Ratio, bs.GateWorkers, tol, "replay_parallel_pr6")
			return
		}
		log.Printf("WARN: input has no BenchmarkReplayParallelScaling workers=1/%s results; "+
			"falling back to the pr4 serial/parallel pair", gateKey)
	}
	if base.Replay == nil || base.Replay.Ratio == 0 {
		log.Fatal("baseline has no replay_parallel_pr6 or replay_parallel_pr4 series")
	}
	serial, parallel := m["BenchmarkReplaySerial"], m["BenchmarkReplayParallel"]
	if serial == 0 || parallel == 0 {
		log.Fatal("input is missing BenchmarkReplaySerial or BenchmarkReplayParallel results")
	}
	gateRatio(serial, parallel, base.Replay.Ratio, base.Replay.Workers, tol, "replay_parallel_pr4")
}

// gateRatio applies the machine-independent check shared by both replay
// series: measured parallel/serial must stay within tol of the committed
// ratio.
func gateRatio(serial, parallel, baseRatio float64, workers int, tol float64, series string) {
	ratio := parallel / serial
	limit := baseRatio * (1 + tol)
	fmt.Printf("replay: serial %.1fms, parallel %.1fms, parallel/serial %.3f "+
		"(%s baseline %.3f at %d workers, limit %.3f)\n",
		serial/1e6, parallel/1e6, ratio, series, baseRatio, workers, limit)
	if ratio > limit {
		log.Fatalf("parallel replay dispatch regressed: ratio %.3f exceeds %.3f "+
			"(baseline %.3f +%.0f%%)", ratio, limit, baseRatio, 100*tol)
	}
	fmt.Println("benchguard: parallel replay dispatch within baseline")
}

// guardIngest enforces the trace-decode front-end baseline: the
// measured mapped-over-reader decode-cost ratio from BenchmarkIngest
// must stay at or below the committed gate_ratio. Both paths decode the
// same records on the same box, so the gated number is machine-speed
// independent — it moves only when the mapped batch path loses its
// edge over the per-record reader loop (a copy sneaking back into the
// zero-copy decode, batching lost, the mapping silently falling back).
// No tolerance is applied: the baseline ratio sits well under the gate,
// so the gate itself is the headroom.
func guardIngest(base baseline, m map[string]float64) {
	if base.Ingest == nil || base.Ingest.GateRatio == 0 {
		log.Fatal("baseline has no ingest_pr7 series")
	}
	reader, mapped := m["reader"], m["mapped"]
	if reader == 0 || mapped == 0 {
		log.Fatal("input is missing BenchmarkIngest/reader or BenchmarkIngest/mapped results")
	}
	ratio := mapped / reader
	fmt.Printf("ingest: reader %.0fns, mapped %.0fns per pass, mapped/reader %.3f "+
		"(ingest_pr7 baseline %.3f, gate %.3f)\n",
		reader, mapped, ratio, base.Ingest.Ratio, base.Ingest.GateRatio)
	if batch := m["batch"]; batch != 0 {
		fmt.Printf("ingest: batch %.0fns per pass, batch/reader %.3f (not gated)\n",
			batch, batch/reader)
	}
	if ratio > base.Ingest.GateRatio {
		log.Fatalf("mapped decode lost its edge: mapped/reader %.3f exceeds gate %.3f "+
			"(the mapped batch path must stay >=%.1fx faster than the per-record reader)",
			ratio, base.Ingest.GateRatio, 1/base.Ingest.GateRatio)
	}
	fmt.Println("benchguard: trace-decode front-end within baseline")
}

// guardFaultFree enforces the fault-model overhead baseline: the
// fault-disabled engine run must stay within the committed gate_ratio
// of the plain engine on the identical fixture. Both benchmarks run on
// the same box in the same process, so the gated ratio is machine-speed
// independent; it moves only when fault bookkeeping leaks into the
// fault-disabled write path (a map lookup that stopped compiling down
// to a nil check, wear tracking created unconditionally, and so on).
// The fault-enabled time is reported for context but never gated.
func guardFaultFree(base baseline, m map[string]float64) {
	if base.FaultFree == nil || base.FaultFree.GateRatio == 0 {
		log.Fatal("baseline has no fault_free_pr8 series")
	}
	plain, off := m["plain"], m["off"]
	if plain == 0 || off == 0 {
		log.Fatal("input is missing BenchmarkEngineRun/workers=4/ingest=off or BenchmarkEngineRunFaults/off results")
	}
	ratio := off / plain
	fmt.Printf("faultfree: plain %.1fms, faults-off %.1fms, off/plain %.3f "+
		"(fault_free_pr8 baseline %.3f, gate %.3f)\n",
		plain/1e6, off/1e6, ratio, base.FaultFree.Ratio, base.FaultFree.GateRatio)
	if on := m["on"]; on != 0 {
		fmt.Printf("faultfree: faults-on %.1fms, on/plain %.3f (not gated)\n", on/1e6, on/plain)
	}
	if ratio > base.FaultFree.GateRatio {
		log.Fatalf("fault-disabled replay regressed: off/plain %.3f exceeds gate %.3f "+
			"(the fault model must cost nothing when disabled)", ratio, base.FaultFree.GateRatio)
	}
	fmt.Println("benchguard: fault-disabled replay within baseline")
}

// guardArena enforces the plane-native line-store baseline: serial
// replay forced onto the reference scalar store must stay at or above
// gate_ratio times the plane-arena replay of the same fixture. The
// two runs share a process and a box, so the ratio never moves with
// machine speed — only with the arena path's actual edge over the
// per-write pack/unpack and map-lookup storage it replaced.
func guardArena(base baseline, m map[string]float64) {
	if base.Arena == nil || base.Arena.GateRatio == 0 {
		log.Fatal("baseline has no replay_arena_pr9 series")
	}
	planes, scalar := m["storage=planes"], m["storage=scalar"]
	if planes == 0 || scalar == 0 {
		log.Fatal("input is missing BenchmarkReplayStorage/storage=planes or /storage=scalar results")
	}
	ratio := scalar / planes
	fmt.Printf("arena: planes %.1fms, scalar %.1fms, scalar/planes %.3f "+
		"(replay_arena_pr9 baseline %.3f, gate %.3f)\n",
		planes/1e6, scalar/1e6, ratio, base.Arena.Ratio, base.Arena.GateRatio)
	if ratio < base.Arena.GateRatio {
		log.Fatalf("plane-native store lost its edge: scalar/planes %.3f fell below gate %.3f "+
			"(the arena path must stay >=%.2fx faster than the scalar reference)",
			ratio, base.Arena.GateRatio, base.Arena.GateRatio)
	}
	fmt.Println("benchguard: plane-native line store within baseline")
}

// parseArenaBench extracts the mean ns/op of the BenchmarkReplayStorage
// sub-benchmarks, keyed by storage mode (storage=planes, storage=scalar).
func parseArenaBench(r io.Reader) (map[string]float64, error) {
	return parseBenchLines(r, func(name string) (string, bool) {
		return strings.CutPrefix(name, "BenchmarkReplayStorage/")
	})
}

// parseFaultFreeBench extracts the mean ns/op of the fault-overhead
// trio in one pass: the plain PR 7 engine fixture plus the faults
// benchmark's off/on modes.
func parseFaultFreeBench(r io.Reader) (map[string]float64, error) {
	return parseBenchLines(r, func(name string) (string, bool) {
		if name == "BenchmarkEngineRun/workers=4/ingest=off" {
			return "plain", true
		}
		return strings.CutPrefix(name, "BenchmarkEngineRunFaults/")
	})
}

// parseIngestBench extracts the mean ns/op of the BenchmarkIngest
// sub-benchmarks, keyed by path name (reader, batch, mapped).
func parseIngestBench(r io.Reader) (map[string]float64, error) {
	return parseBenchLines(r, func(name string) (string, bool) {
		return strings.CutPrefix(name, "BenchmarkIngest/")
	})
}

// parseReplayBench extracts the mean ns/op of every replay benchmark in
// one pass (the input reader cannot rewind): the PR 6 scaling series
// keyed "workers=N" plus the legacy serial/parallel pair keyed by full
// benchmark name.
func parseReplayBench(r io.Reader) (map[string]float64, error) {
	return parseBenchLines(r, func(name string) (string, bool) {
		if k, ok := strings.CutPrefix(name, "BenchmarkReplayParallelScaling/"); ok {
			return k, true
		}
		if name == "BenchmarkReplaySerial" || name == "BenchmarkReplayParallel" {
			return name, true
		}
		return "", false
	})
}

// geomean returns the geometric mean of m over names.
func geomean(m map[string]float64, names []string) float64 {
	var logSum float64
	for _, n := range names {
		logSum += math.Log(m[n])
	}
	return math.Exp(logSum / float64(len(names)))
}

// parseBench extracts ns/op per scheme from BenchmarkEncodeInto lines,
// averaging repeated -count runs.
func parseBench(r io.Reader) (map[string]float64, error) {
	return parseBenchLines(r, func(name string) (string, bool) {
		return strings.CutPrefix(name, "BenchmarkEncodeInto/")
	})
}

// parseBenchLines scans `go test -bench` output and returns mean ns/op
// per key (averaging -count repeats). match maps a benchmark name to its
// result key, or rejects the line. Each line is offered to match twice:
// as printed, and with the trailing "-N" stripped. Whether that suffix
// is Go's -GOMAXPROCS decoration or part of the benchmark's own name
// (BenchmarkEncodeInto/WLCRC-16 on a GOMAXPROCS=1 box has no decoration)
// cannot be told apart locally, so both candidate keys are recorded —
// the wrong variant never matches a committed baseline name, while
// picking one interpretation silently dropped real schemes from the
// gate on single-CPU machines.
func parseBenchLines(r io.Reader, match func(name string) (key string, ok bool)) (map[string]float64, error) {
	sum := map[string]float64{}
	cnt := map[string]int{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		raw := fields[0]
		names := []string{raw}
		if i := strings.LastIndex(raw, "-"); i > 0 {
			names = append(names, raw[:i])
		}
		var keys []string
		for _, name := range names {
			if key, ok := match(name); ok {
				keys = append(keys, key)
			}
		}
		if len(keys) == 2 && keys[0] == keys[1] {
			keys = keys[:1]
		}
		if len(keys) == 0 {
			continue
		}
		var ns float64
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
				}
				ns = v
				break
			}
		}
		if ns == 0 {
			continue
		}
		for _, key := range keys {
			sum[key] += ns
			cnt[key]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(sum))
	for n, s := range sum {
		out[n] = s / float64(cnt[n])
	}
	return out, nil
}
