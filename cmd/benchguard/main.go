// Command benchguard enforces the committed encode-benchmark baseline.
//
// It parses `go test -bench` output (stdin or a file), extracts the
// BenchmarkEncodeInto/<scheme> series, and compares each scheme against
// the PR 3 series committed in BENCH_encode.json. Because CI machines
// differ in absolute speed from the machine the baseline was measured
// on, the comparison is normalized: each scheme's ns/op is divided by
// the geometric mean of the whole run, and that relative position must
// not exceed the baseline's by more than the tolerance (default 10%).
// A uniformly slower machine shifts every scheme equally and cancels
// out; a real hot-path regression moves one scheme against the rest of
// the field and trips the gate. Run with -count 3 or more so averaging
// damps scheduler noise.
//
//	go test -run xxx -bench BenchmarkEncodeInto -benchtime 1s . | benchguard
//	benchguard -emit-baseline > old.txt   # baseline in benchstat format
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	EncodePR3 map[string]float64 `json:"encode_into_ns_per_op_pr3"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	var (
		basePath = flag.String("baseline", "BENCH_encode.json", "committed baseline JSON")
		tol      = flag.Float64("tolerance", 0.10, "allowed relative regression (0.10 = 10%)")
		emit     = flag.Bool("emit-baseline", false, "print the baseline as benchstat-compatible bench output and exit")
	)
	flag.Parse()

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatal(err)
	}
	if len(base.EncodePR3) == 0 {
		log.Fatalf("%s has no encode_into_ns_per_op_pr3 series", *basePath)
	}

	if *emit {
		names := make([]string, 0, len(base.EncodePR3))
		for n := range base.EncodePR3 {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("BenchmarkEncodeInto/%s 1 %g ns/op\n", n, base.EncodePR3[n])
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(got) == 0 {
		log.Fatal("no BenchmarkEncodeInto results in input")
	}

	// Normalize by the geometric mean over the schemes present in both
	// series: a uniformly slower machine shifts every scheme equally and
	// cancels out, while a single-scheme hot-path regression stands out.
	var names []string
	for n := range base.EncodePR3 {
		if _, ok := got[n]; ok {
			names = append(names, n)
		} else {
			log.Printf("WARN: scheme %s missing from bench run", n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		log.Fatal("no overlap between baseline and bench run")
	}
	baseNorm, gotNorm := geomean(base.EncodePR3, names), geomean(got, names)

	failed := false
	for _, n := range names {
		baseRatio := base.EncodePR3[n] / baseNorm
		curRatio := got[n] / gotNorm
		delta := curRatio/baseRatio - 1
		status := "ok"
		if delta > *tol {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-14s baseline %8.1f ns (x%.2f)   run %8.1f ns (x%.2f)   %+6.1f%%  %s\n",
			n, base.EncodePR3[n], baseRatio, got[n], curRatio, 100*delta, status)
	}
	if failed {
		log.Fatalf("encode hot path regressed beyond %.0f%% (geomean-normalized)", 100**tol)
	}
	fmt.Println("benchguard: encode hot path within baseline")
}

// geomean returns the geometric mean of m over names.
func geomean(m map[string]float64, names []string) float64 {
	var logSum float64
	for _, n := range names {
		logSum += math.Log(m[n])
	}
	return math.Exp(logSum / float64(len(names)))
}

// parseBench extracts ns/op per scheme from BenchmarkEncodeInto lines,
// averaging repeated -count runs.
func parseBench(r io.Reader) (map[string]float64, error) {
	sum := map[string]float64{}
	cnt := map[string]int{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "BenchmarkEncodeInto/") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "BenchmarkEncodeInto/")
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		var ns float64
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
				}
				ns = v
				break
			}
		}
		if ns == 0 {
			continue
		}
		sum[name] += ns
		cnt[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(sum))
	for n, s := range sum {
		out[n] = s / float64(cnt[n])
	}
	return out, nil
}
