// Command experiments regenerates the tables and figures of the paper's
// evaluation. Each figure prints the same rows/series the paper reports;
// EXPERIMENTS.md records paper-vs-measured values.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig8 -writes 5000
//	experiments -run fig1a,fig4,hw
//
// Valid experiment ids: fig1a fig1b fig2 fig3 fig4 fig5 fig8 fig9 fig10
// fig11 fig12 fig13 fig14 multiobj ablation hw headline wear endurance
// encrypted all.
//
// -encrypted replays every experiment's workloads in counter-mode
// encrypted (whitened) form; -vcc appends the VCC schemes to the
// Figure 8/9/10 evaluation matrix; -run encrypted prints the dedicated
// plaintext-vs-ciphertext study (raw / FlipMin / WLCRC / Enc / VCC
// energy, updated cells and p50/p99 per-write energy).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"wlcrc/internal/exp"
	"wlcrc/internal/hw"
	"wlcrc/internal/profiling"
	"wlcrc/internal/sim"
	"wlcrc/internal/stats"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated experiment ids (fig1a..fig14, multiobj, ablation, hw, headline, wear, endurance, encrypted, all)")
		writes    = flag.Int("writes", 2000, "write requests per benchmark")
		random    = flag.Int("random-writes", 4000, "write requests for random-workload figures")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "replay worker goroutines, up to banks x sub-shards (1 = serial; results are identical for any value)")
		ingest    = flag.Int("ingest", 0, "ingest router goroutines pre-routing each replay's stream (0 = auto, negative = off; results are identical for any value)")
		progress  = flag.Bool("progress", false, "print live replay throughput to stderr")
		encrypted = flag.Bool("encrypted", false, "replay every workload in counter-mode encrypted (whitened) form")
		key       = flag.Uint64("key", 0, "encryption key for -encrypted and the VCC/Enc schemes (0 = default key)")
		useVCC    = flag.Bool("vcc", false, "append VCC-2,VCC-4,VCC-8 to the fig8/9/10 evaluation matrix")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		execTrace  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProfile, *memProfile, *execTrace)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancel the running replay cooperatively: the
	// experiment panics with exp.Interrupted, recovered below into a
	// partial report instead of the process dying mid-replay.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		intr, ok := r.(exp.Interrupted)
		if !ok {
			panic(r)
		}
		fmt.Fprintf(os.Stderr, "experiments: %v\n", intr)
		if len(intr.Partial) > 0 {
			t := stats.NewTable("scheme", "writes", "pJ/write", "cells/write", "disturb/write")
			for _, m := range intr.Partial {
				t.Row(m.Scheme, fmt.Sprintf("%d", m.Writes), m.AvgEnergy(), m.AvgUpdated(), m.AvgDisturb())
			}
			fmt.Printf("== Partial metrics of the interrupted replay (%s) ==\n%s\n", intr.Benchmark, t.String())
		}
		stopProf()
		os.Exit(130)
	}()

	cfg := exp.DefaultConfig()
	cfg.Context = ctx
	cfg.WritesPerBenchmark = *writes
	cfg.RandomWrites = *random
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.IngestRouters = *ingest
	cfg.Encrypted = *encrypted
	cfg.EncryptionKey = *key
	if *useVCC {
		cfg.ExtraSchemes = append(cfg.ExtraSchemes, "VCC-2", "VCC-4", "VCC-8")
	}
	if *progress {
		cfg.Progress = sim.ProgressPrinter(os.Stderr)
	}

	ids := strings.Split(*run, ",")
	if *run == "all" {
		// fig11 prints the combined 11-13 sweep table.
		ids = []string{"fig1a", "fig1b", "fig2", "fig3", "fig4", "fig5",
			"fig8", "fig9", "fig10", "fig11", "fig14",
			"multiobj", "ablation", "hw", "wear", "endurance", "encrypted", "headline"}
	}
	// The wear report digests the shared fig8/9/10 evaluation rather
	// than replaying its own matrix, so wear tracking must be on before
	// the evaluation is (lazily) computed.
	for _, id := range ids {
		if strings.TrimSpace(id) == "wear" {
			cfg.TrackWear = true
		}
	}

	// The fig8/9/10 matrix and the fig11/12/13 sweep are each computed
	// once and shared.
	var eval *exp.Evaluation
	getEval := func() *exp.Evaluation {
		if eval == nil {
			eval = exp.RunEvaluation(cfg)
		}
		return eval
	}
	var study map[string][]exp.SweepPoint
	var studyTbl *stats.Table
	getStudy := func() (map[string][]exp.SweepPoint, *stats.Table) {
		if study == nil {
			study, studyTbl = exp.GranularityStudy(cfg)
		}
		return study, studyTbl
	}

	for _, id := range ids {
		switch strings.TrimSpace(id) {
		case "fig1a":
			_, t := exp.Figure1(cfg, true)
			section("Figure 1(a): 6cosets energy vs granularity, random workload", t)
		case "fig1b":
			_, t := exp.Figure1(cfg, false)
			section("Figure 1(b): 6cosets energy vs granularity, biased workloads", t)
		case "fig2":
			_, t := exp.Figure2(cfg)
			section("Figure 2: 6cosets vs 4cosets, random workload (pJ/write)", t)
		case "fig3":
			_, t := exp.Figure3(cfg)
			section("Figure 3: 6cosets vs 4cosets, biased workloads (pJ/write)", t)
		case "fig4":
			_, t := exp.Figure4(cfg)
			section("Figure 4: % of memory lines compressed", t)
		case "fig5":
			_, t := exp.Figure5(cfg)
			section("Figure 5: 4cosets vs 3cosets vs 3-r-cosets, biased workloads (pJ/write)", t)
		case "fig8":
			section("Figure 8: write energy per request (pJ)", getEval().Figure8())
		case "fig9":
			section("Figure 9: average updated cells per request", getEval().Figure9())
		case "fig10":
			section("Figure 10: average write disturbance errors per request", getEval().Figure10())
		case "fig11", "fig12", "fig13":
			_, t := getStudy()
			section("Figures 11-13: WLC+{4,3}cosets vs WLCRC across granularities", t)
		case "fig14":
			_, t := exp.Figure14(cfg)
			section("Figure 14: WLCRC-16 sensitivity to intermediate-state energies", t)
		case "multiobj":
			_, t := exp.MultiObjective(cfg)
			section("§VIII.D: multi-objective optimization (T=1%)", t)
		case "hw":
			rep := hw.Estimate(hw.FreePDK45(), hw.WLCRCDesign())
			section("§VI.B: WLCRC-16 hardware cost model", rep.Table())
		case "wear":
			_, t := exp.WearReportFrom(getEval())
			section("Wear: per-cell wear distribution and first-failure projection (Fig 9 extended)", t)
		case "endurance":
			_, t := exp.EnduranceStudy(cfg)
			section("Endurance: writes to first line retirement under accelerated wear (stuck-at + repair)", t)
		case "encrypted":
			_, t := exp.EncryptedStudy(cfg)
			section("Encrypted PCM: compression-gate collapse and the VCC recovery", t)
		case "ablation":
			section("Ablation: multi-objective threshold sweep",
				exp.AblationMultiObjective(cfg, []float64{0.01, 0.05, 0.2}))
			section("Ablation: disturbance-aware lambda sweep (§XI extension)",
				exp.AblationDisturbAware(cfg, []float64{500, 1000, 2000}))
			section("Ablation: restriction vs in-word embedding at 16-bit blocks",
				exp.AblationEmbedding(cfg))
		case "headline":
			fmt.Println("== Headline comparisons ==")
			fmt.Println(getEval().Headline())
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", id)
			stopProf()
			os.Exit(2)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func section(title string, t *stats.Table) {
	fmt.Printf("== %s ==\n%s\n", title, t.String())
}
