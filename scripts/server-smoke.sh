#!/usr/bin/env bash
# End-to-end smoke for the pcmserver job daemon: boots the real binary
# on a random port, submits a job over HTTP, streams its SSE feed, polls
# it to done, queries the result rows and metrics, then restarts the
# server on the same data directory and asserts the finished job is
# still served — the restart-persistence contract of the JSONL store,
# proven against the shipped binary rather than httptest.
#
#   ./scripts/server-smoke.sh [path-to-pcmserver-binary]
#
# Needs curl; everything else is POSIX-ish shell. Exits non-zero on the
# first broken expectation.
set -euo pipefail

BIN=${1:-}
if [ -z "$BIN" ]; then
  go build -o /tmp/pcmserver-smoke ./cmd/pcmserver
  BIN=/tmp/pcmserver-smoke
fi

WORK=$(mktemp -d)
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

start_server() {
  "$BIN" -addr 127.0.0.1:0 -data "$WORK/store" -port-file "$WORK/port" \
    -pool 2 -snapshot-interval 200ms >"$WORK/server.log" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    sleep 0.1
  done
  [ -s "$WORK/port" ] || { echo "FAIL: server never wrote its port file"; cat "$WORK/server.log"; exit 1; }
  BASE="http://127.0.0.1:$(cat "$WORK/port")"
}

stop_server() {
  kill -TERM "$SRV_PID"
  wait "$SRV_PID" || true
  SRV_PID=""
  rm -f "$WORK/port"
}

# The server pretty-prints its JSON, so every matcher tolerates
# whitespace after the colon. Bodies are fetched into variables before
# matching: under pipefail, `curl | grep -q` fails spuriously when grep
# exits at the first match and curl takes the EPIPE.
fetch() { # fetch <url-path>
  curl -fsS "$BASE$1"
}
json_field() { # json_field <key> — first string value of "key" on stdin
  sed -n "s/.*\"$1\": *\"\([^\"]*\)\".*/\1/p" | head -n 1
}

start_server
echo "== server up at $BASE"

fetch /healthz | grep '"status": *"ok"' >/dev/null || { echo "FAIL: healthz"; exit 1; }

ID=$(curl -fsS -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
  -d '{"label":"smoke","workload":"gcc","writes":2000,"schemes":["Baseline","WLCRC-16"],"series":"smoke"}' \
  | json_field id)
[ -n "$ID" ] || { echo "FAIL: submit returned no job id"; exit 1; }
echo "== submitted job $ID"

STATE=""
for _ in $(seq 1 100); do
  STATE=$(fetch "/v1/jobs/$ID" | json_field state)
  [ "$STATE" = done ] && break
  case "$STATE" in failed|canceled) echo "FAIL: job ended $STATE"; cat "$WORK/server.log"; exit 1;; esac
  sleep 0.2
done
[ "$STATE" = done ] || { echo "FAIL: job never reached done (last state: $STATE)"; exit 1; }
echo "== job done"

# A finished job's SSE feed replays its terminal state and closes: one
# done event carrying the full status.
SSE=$(curl -fsS --max-time 10 "$BASE/v1/jobs/$ID/events")
echo "$SSE" | grep '^event: done' >/dev/null \
  || { echo "FAIL: SSE feed has no done event"; exit 1; }

fetch "/v1/results?scheme=WLCRC-16&label=smoke" | grep '"scheme": *"WLCRC-16"' >/dev/null \
  || { echo "FAIL: results query returned no WLCRC-16 row"; exit 1; }
fetch /v1/series/smoke | grep '"job_id": *"'"$ID"'"' >/dev/null \
  || { echo "FAIL: series endpoint has no point for the job"; exit 1; }
fetch /metrics | grep '^pcmserver_jobs_completed_total 1$' >/dev/null \
  || { echo "FAIL: metrics do not count the completed job"; exit 1; }
echo "== results, series and metrics check out"

# Restart on the same data directory: the finished job must come back
# from the JSONL store, results and all.
stop_server
start_server
echo "== server restarted at $BASE"

fetch "/v1/jobs/$ID" | grep '"state": *"done"' >/dev/null \
  || { echo "FAIL: restarted server lost the finished job"; exit 1; }
fetch "/v1/results?job=$ID" | grep '"scheme": *"Baseline"' >/dev/null \
  || { echo "FAIL: restarted server lost the result rows"; exit 1; }
echo "== restart persistence holds"

echo "PASS: pcmserver end-to-end smoke"
