package wlcrc_test

import (
	"errors"
	"reflect"
	"testing"

	"wlcrc"
)

// TestReplayParallelMatchesSerial checks the public replay API end to
// end: a parallel replay of a fixed-seed workload must produce metrics
// bit-identical to the serial replay of the same workload.
func TestReplayParallelMatchesSerial(t *testing.T) {
	run := func(workers int) []wlcrc.Metrics {
		w, err := wlcrc.NewWorkload("gcc", 512, 23)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := wlcrc.Replay(w, 2000, wlcrc.ReplayOptions{Workers: workers},
			wlcrc.MustScheme("Baseline"), wlcrc.MustScheme("WLCRC-16"))
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	serial := run(1)
	parallel := run(0) // all CPUs
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel replay differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serial[0].Writes != 2000 || serial[1].Writes != 2000 {
		t.Errorf("writes = %d/%d, want 2000", serial[0].Writes, serial[1].Writes)
	}
	if serial[1].AvgEnergy() >= serial[0].AvgEnergy() {
		t.Errorf("WLCRC-16 energy %.1f not below baseline %.1f",
			serial[1].AvgEnergy(), serial[0].AvgEnergy())
	}
}

// TestReplaySampledDeterministic checks that Monte-Carlo disturbance
// sampling is reproducible and worker-count independent through the
// public API.
func TestReplaySampledDeterministic(t *testing.T) {
	run := func(workers int) []wlcrc.Metrics {
		w, err := wlcrc.NewWorkload("zeus", 256, 4)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := wlcrc.Replay(w, 1500, wlcrc.ReplayOptions{Workers: workers, SampleDisturb: true, Seed: 99},
			wlcrc.MustScheme("Baseline"))
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Error("sampled replay depends on worker count")
	}
}

// TestReplayEncryptedWorkload drives the encrypted-PCM scenario through
// the public API: an encrypted workload collapses WLCRC's compression
// gate while VCC-8 keeps reducing energy and updated cells against the
// raw encrypted write, with decode verification on throughout and
// results identical for serial and parallel replays.
func TestReplayEncryptedWorkload(t *testing.T) {
	run := func(workers int) []wlcrc.Metrics {
		w, err := wlcrc.NewWorkload("gcc", 256, 31)
		if err != nil {
			t.Fatal(err)
		}
		w.Encrypt(0)
		ms, err := wlcrc.Replay(w, 2000, wlcrc.ReplayOptions{Workers: workers},
			wlcrc.MustScheme("Baseline"), wlcrc.MustScheme("WLCRC-16"),
			wlcrc.MustScheme("VCC-8"))
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	serial := run(1)
	if !reflect.DeepEqual(serial, run(0)) {
		t.Error("parallel encrypted replay differs from serial")
	}
	base, wl, v8 := serial[0], serial[1], serial[2]
	if f := wl.CompressedFraction(); f > 0.001 {
		t.Errorf("WLCRC-16 compressed %.4f of encrypted writes, want ~0", f)
	}
	if v8.AvgEnergy() >= base.AvgEnergy() {
		t.Errorf("VCC-8 energy %.0f >= raw encrypted %.0f", v8.AvgEnergy(), base.AvgEnergy())
	}
	if v8.AvgUpdated() >= base.AvgUpdated() {
		t.Errorf("VCC-8 updated %.1f >= raw encrypted %.1f", v8.AvgUpdated(), base.AvgUpdated())
	}
}

// TestMemoryCounterSchemeRoundTrip checks the public Memory with a
// counter-keyed scheme: reads decode through the current counter, and
// rewriting the same plaintext re-encrypts (costs energy) rather than
// being differential-write free.
func TestMemoryCounterSchemeRoundTrip(t *testing.T) {
	mem := wlcrc.NewMemory(wlcrc.MustScheme("VCC-4"))
	data := wlcrc.LineFromWords([8]uint64{1, 2, 3, 4, 5, 6, 7, 8})
	first := mem.Write(9, data)
	if got := mem.Read(9); got != data {
		t.Fatalf("read-back mismatch after first write")
	}
	again := mem.Write(9, data)
	if got := mem.Read(9); got != data {
		t.Fatalf("read-back mismatch after rewrite")
	}
	if again.UpdatedCells == 0 {
		t.Error("re-encrypted rewrite programmed zero cells — counter not advancing")
	}
	if first.EnergyPJ <= 0 || again.EnergyPJ <= 0 {
		t.Error("writes should cost energy")
	}
}

// TestWorkloadEncryptIdempotent pins the double-Encrypt guard: a second
// Encrypt call must not stack a second whitening pass (which, being an
// involution, would silently decrypt the stream back to plaintext).
func TestWorkloadEncryptIdempotent(t *testing.T) {
	once, _ := wlcrc.NewWorkload("gcc", 128, 3)
	once.Encrypt(0)
	twice, _ := wlcrc.NewWorkload("gcc", 128, 3)
	twice.Encrypt(0).Encrypt(0)
	for i := 0; i < 200; i++ {
		a, b := once.Next(), twice.Next()
		if a != b {
			t.Fatalf("double Encrypt changed the stream at request %d", i)
		}
	}
}

// TestWorkloadEncryptConflictingKeyPanics: a re-key attempt cannot be
// honored and must not silently keep the old key.
func TestWorkloadEncryptConflictingKeyPanics(t *testing.T) {
	w, _ := wlcrc.NewWorkload("gcc", 128, 3)
	w.Encrypt(1)
	defer func() {
		if recover() == nil {
			t.Error("Encrypt with a different key did not panic")
		}
	}()
	w.Encrypt(2)
}

// TestWorkloadNextBatchMatchesNext pins the public bulk-draw API:
// NextBatch must yield the exact sequence Next does, plaintext and
// encrypted alike.
func TestWorkloadNextBatchMatchesNext(t *testing.T) {
	for _, encrypted := range []bool{false, true} {
		name := "plain"
		if encrypted {
			name = "encrypted"
		}
		t.Run(name, func(t *testing.T) {
			mk := func() *wlcrc.Workload {
				w, err := wlcrc.NewWorkload("mcf", 256, 31)
				if err != nil {
					t.Fatal(err)
				}
				if encrypted {
					w.Encrypt(0)
				}
				return w
			}
			ref, bulk := mk(), mk()
			const total, batch = 600, 100
			want := make([]wlcrc.WriteRequest, total)
			for i := range want {
				want[i] = ref.Next()
			}
			dst := make([]wlcrc.WriteRequest, batch)
			for off := 0; off < total; off += batch {
				if n := bulk.NextBatch(dst); n != batch {
					t.Fatalf("NextBatch = %d, want %d (stream is infinite)", n, batch)
				}
				for i := range dst {
					if dst[i] != want[off+i] {
						t.Fatalf("request %d differs between Next and NextBatch", off+i)
					}
				}
			}
			if n := bulk.NextBatch(nil); n != 0 {
				t.Errorf("NextBatch(nil) = %d, want 0", n)
			}
		})
	}
}

// TestReplayIngestMatchesSerial extends the public-API determinism
// guarantee to the ingest front-end: Replay with ingest routers must be
// bit-identical to the serial, ingest-off replay.
func TestReplayIngestMatchesSerial(t *testing.T) {
	run := func(workers, ingest int) []wlcrc.Metrics {
		w, err := wlcrc.NewWorkload("gcc", 512, 23)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := wlcrc.Replay(w, 2000, wlcrc.ReplayOptions{Workers: workers, IngestRouters: ingest},
			wlcrc.MustScheme("Baseline"), wlcrc.MustScheme("WLCRC-16"))
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	want := run(1, -1)
	for _, ingest := range []int{1, 3} {
		for _, workers := range []int{1, 4} {
			if got := run(workers, ingest); !reflect.DeepEqual(want, got) {
				t.Errorf("workers=%d ingest=%d: metrics differ from serial replay", workers, ingest)
			}
		}
	}
}

// TestReplayFaultModel drives the stuck-at fault model through the
// public API: an accelerated-endurance replay accumulates fault stats
// in Metrics.Faults, stays worker-count deterministic, and a run that
// breaches the degradation threshold returns a *DegradedError together
// with complete metrics.
func TestReplayFaultModel(t *testing.T) {
	faults := wlcrc.FaultConfig{
		Enabled:         true,
		CellEndurance:   8,
		EnduranceSpread: 0.5,
		ECCBits:         4,
		SpareLines:      4,
		Static:          []wlcrc.StuckCell{{Addr: 3, Cell: 17, State: 2}},
	}
	run := func(workers int) ([]wlcrc.Metrics, error) {
		w, err := wlcrc.NewWorkload("gcc", 96, 31)
		if err != nil {
			t.Fatal(err)
		}
		return wlcrc.Replay(w, 2000, wlcrc.ReplayOptions{Workers: workers, Seed: 13, Faults: faults},
			wlcrc.MustScheme("Baseline"), wlcrc.MustScheme("WLCRC-16"))
	}
	ms, err := run(1)
	var de *wlcrc.DegradedError
	if err != nil && !errors.As(err, &de) {
		t.Fatal(err)
	}
	if ms == nil {
		t.Fatal("no metrics returned alongside the replay verdict")
	}
	for _, m := range ms {
		if m.Writes != 2000 {
			t.Errorf("%s: %d writes, want 2000 (graceful mode replays the whole trace)", m.Scheme, m.Writes)
		}
		if m.Faults.StuckCells == 0 || m.Faults.LinesTouched == 0 {
			t.Errorf("%s: fault model left no trace in metrics: %+v", m.Scheme, m.Faults)
		}
	}
	ms4, err4 := run(4)
	if !reflect.DeepEqual(ms, ms4) {
		t.Error("fault-enabled replay metrics depend on worker count")
	}
	if !reflect.DeepEqual(err, err4) {
		t.Errorf("fault-enabled replay verdict depends on worker count:\nserial:   %v\nparallel: %v", err, err4)
	}
}
