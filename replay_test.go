package wlcrc_test

import (
	"reflect"
	"testing"

	"wlcrc"
)

// TestReplayParallelMatchesSerial checks the public replay API end to
// end: a parallel replay of a fixed-seed workload must produce metrics
// bit-identical to the serial replay of the same workload.
func TestReplayParallelMatchesSerial(t *testing.T) {
	run := func(workers int) []wlcrc.Metrics {
		w, err := wlcrc.NewWorkload("gcc", 512, 23)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := wlcrc.Replay(w, 2000, wlcrc.ReplayOptions{Workers: workers},
			wlcrc.MustScheme("Baseline"), wlcrc.MustScheme("WLCRC-16"))
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	serial := run(1)
	parallel := run(0) // all CPUs
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel replay differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serial[0].Writes != 2000 || serial[1].Writes != 2000 {
		t.Errorf("writes = %d/%d, want 2000", serial[0].Writes, serial[1].Writes)
	}
	if serial[1].AvgEnergy() >= serial[0].AvgEnergy() {
		t.Errorf("WLCRC-16 energy %.1f not below baseline %.1f",
			serial[1].AvgEnergy(), serial[0].AvgEnergy())
	}
}

// TestReplaySampledDeterministic checks that Monte-Carlo disturbance
// sampling is reproducible and worker-count independent through the
// public API.
func TestReplaySampledDeterministic(t *testing.T) {
	run := func(workers int) []wlcrc.Metrics {
		w, err := wlcrc.NewWorkload("zeus", 256, 4)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := wlcrc.Replay(w, 1500, wlcrc.ReplayOptions{Workers: workers, SampleDisturb: true, Seed: 99},
			wlcrc.MustScheme("Baseline"))
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Error("sampled replay depends on worker count")
	}
}
