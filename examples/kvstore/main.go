// kvstore: a toy key-value store whose value log lives in simulated MLC
// PCM, comparing the write energy of the paper's schemes under a
// PUT-heavy workload. This is the class of persistent-memory application
// the paper's introduction motivates: update-intensive, small values,
// strong byte-level bias (counters, timestamps, flags).
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"

	"wlcrc"
	"wlcrc/internal/prng"
)

// record is a fixed-layout 64-byte KV slot: header, key hash (48-bit,
// as stores that pack hash+tag into pointer-sized fields do), version,
// expiry, and four small value fields — the usual mix of pointers,
// counters and flags.
type record struct {
	keyHash uint64 // 48-bit truncated hash
	version uint64
	expiry  uint64
	flags   uint64
	fields  [4]int64
}

func (r record) line() wlcrc.Line {
	return wlcrc.LineFromWords([8]uint64{
		r.keyHash, r.version, r.expiry, r.flags,
		uint64(r.fields[0]), uint64(r.fields[1]),
		uint64(r.fields[2]), uint64(r.fields[3]),
	})
}

func main() {
	const (
		slots = 4096
		puts  = 30000
	)
	schemes := []string{"Baseline", "FNW", "6cosets", "WLC+4cosets", "WLCRC-16"}

	fmt.Printf("PUT-heavy KV store: %d slots, %d PUTs\n\n", slots, puts)
	fmt.Printf("%-12s %12s %14s %12s\n", "scheme", "pJ/PUT", "cells/PUT", "vs Baseline")

	var baseline float64
	for _, name := range schemes {
		mem := wlcrc.NewMemory(wlcrc.MustScheme(name))
		r := prng.New(42)
		recs := make([]record, slots)
		for i := 0; i < puts; i++ {
			// Zipf-ish: most PUTs update hot keys.
			slot := r.Intn(slots / 16)
			if !r.Bool(0.8) {
				slot = r.Intn(slots)
			}
			rec := &recs[slot]
			rec.keyHash = 0x9e3779b97f4a7c15 * uint64(slot+1) >> 16
			rec.version++
			rec.expiry = 1_700_000_000 + uint64(i)
			rec.flags = uint64(r.Intn(16))
			// Value churn: one or two counters move a little.
			f := r.Intn(4)
			rec.fields[f] += int64(r.Intn(1000)) - 300
			if r.Bool(0.3) {
				rec.fields[(f+1)%4] = -rec.fields[f]
			}
			mem.Write(uint64(slot), rec.line())
		}
		st := mem.Stats()
		if name == "Baseline" {
			baseline = st.AvgEnergyPJ()
		}
		fmt.Printf("%-12s %12.0f %14.1f %11.1f%%\n",
			name, st.AvgEnergyPJ(), st.AvgUpdatedCells(),
			100*(1-st.AvgEnergyPJ()/baseline))
	}
	fmt.Println("\n(positive percentages = energy saved relative to differential write alone)")
}
