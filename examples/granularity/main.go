// granularity: the paper's central trade-off (§IX, Figure 11) on a
// single workload — sweeping the WLCRC block granularity from 8 to 64
// bits and watching write energy. Finer blocks pick better mappings but
// need more reclaimed bits, so fewer lines compress; 16-bit blocks are
// the sweet spot.
//
// Run with: go run ./examples/granularity
package main

import (
	"fmt"

	"wlcrc"
)

func main() {
	const writes = 8000
	fmt.Println("WLCRC granularity sweep on the 'sopl' workload:")
	fmt.Printf("%-10s %10s %12s %12s\n", "scheme", "pJ/write", "cells/write", "compressed")

	best := ""
	bestE := 0.0
	for _, gran := range []int{8, 16, 32, 64} {
		name := fmt.Sprintf("WLCRC-%d", gran)
		mem := wlcrc.NewMemory(wlcrc.MustScheme(name))
		w, err := wlcrc.NewWorkload("sopl", 512, 7)
		if err != nil {
			panic(err)
		}
		for i := 0; i < writes; i++ {
			r := w.Next()
			mem.Write(r.Addr, r.New)
		}
		st := mem.Stats()
		compressed := float64(st.CompressedWrites) / float64(st.Writes)
		fmt.Printf("%-10s %10.0f %12.1f %11.1f%%\n",
			name, st.AvgEnergyPJ(), st.AvgUpdatedCells(), 100*compressed)
		if best == "" || st.AvgEnergyPJ() < bestE {
			best, bestE = name, st.AvgEnergyPJ()
		}
	}
	fmt.Printf("\nminimum energy point: %s (the paper's Figure 11 finds the same)\n", best)
}
