// Quickstart: encode a handful of memory lines with WLCRC-16 and see
// what a write costs compared to plain differential write.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"wlcrc"
)

func main() {
	// Two simulated PCM regions: one behind the paper's WLCRC-16
	// encoder, one with plain differential write.
	fine := wlcrc.NewMemory(wlcrc.MustScheme("WLCRC-16"))
	base := wlcrc.NewMemory(wlcrc.MustScheme("Baseline"))

	// A realistic line: a struct of small counters and flags. All eight
	// words are sign-extended narrow values, so WLC can reclaim the top
	// bits of every word and the coset encoder gets to work per 16-bit
	// block.
	first := wlcrc.LineFromWords([8]uint64{
		1024, 42, ^uint64(0) - 6 /* -7 */, 0,
		0x0000_0000_ffff_0000, 55, 1, ^uint64(99) + 1, /* -99 */
	})
	// The same line a moment later: two fields updated.
	second := first
	second = wlcrc.LineFromWords(words(second, map[int]uint64{1: 43, 6: ^uint64(0)}))

	for _, step := range []struct {
		label string
		data  wlcrc.Line
	}{{"initial write", first}, {"field update", second}} {
		fi := fine.Write(0, step.data)
		bi := base.Write(0, step.data)
		fmt.Printf("%-14s WLCRC-16: %7.0f pJ, %3d cells (compressed=%v)   Baseline: %7.0f pJ, %3d cells\n",
			step.label, fi.EnergyPJ, fi.UpdatedCells, fi.Compressed, bi.EnergyPJ, bi.UpdatedCells)
	}

	// Reads always decode back to what was written.
	if fine.Read(0) != second {
		panic("decode mismatch")
	}
	fmt.Println("\nread-back verified: stored cells decode to the written data")

	st, bt := fine.Stats(), base.Stats()
	fmt.Printf("total: WLCRC-16 %.0f pJ vs Baseline %.0f pJ (%.0f%% saved)\n",
		st.EnergyPJ, bt.EnergyPJ, 100*(1-st.EnergyPJ/bt.EnergyPJ))
}

// words copies a line's words, replacing the given indices.
func words(l wlcrc.Line, repl map[int]uint64) [8]uint64 {
	var ws [8]uint64
	for i := 0; i < 8; i++ {
		ws[i] = l.Word(i)
	}
	for i, v := range repl {
		ws[i] = v
	}
	return ws
}
