// sensorlog: an append-heavy time-series workload on PCM — a ring of
// sample buffers where each append rewrites one line with mostly-similar
// content (timestamps advance, a couple of readings change). This is the
// differential-write-friendly pattern where WLCRC's property of *not*
// moving bits around (unlike stream compressors) matters most; the
// example contrasts it with COC+4cosets, whose variable-length packing
// shifts every downstream bit when one sample changes length (§VIII.A).
//
// Run with: go run ./examples/sensorlog
package main

import (
	"fmt"

	"wlcrc"
	"wlcrc/internal/prng"
)

// sampleLine packs a sensor frame: timestamp, sequence number, and six
// 16-bit-ish readings stored as sign-extended 64-bit values.
func sampleLine(ts, seq uint64, readings [6]int64) wlcrc.Line {
	var ws [8]uint64
	ws[0] = ts
	ws[1] = seq
	for i, r := range readings {
		ws[2+i] = uint64(r)
	}
	return wlcrc.LineFromWords(ws)
}

func main() {
	const (
		buffers = 16
		appends = 20000
	)
	schemes := []string{"Baseline", "COC+4cosets", "WLCRC-16"}

	fmt.Printf("sensor log: %d ring buffers, %d appends\n\n", buffers, appends)
	results := map[string]wlcrc.MemStats{}
	for _, name := range schemes {
		mem := wlcrc.NewMemory(wlcrc.MustScheme(name))
		r := prng.New(3)
		ts := uint64(1_700_000_000_000)
		var readings [6]int64
		for i := range readings {
			readings[i] = int64(r.Intn(2000)) - 1000
		}
		for i := 0; i < appends; i++ {
			ts += uint64(10 + r.Intn(5))
			// One or two sensors move by a small delta; occasionally a
			// sensor spikes (wider value) or drops out (reads -1) —
			// exactly the width changes that make variable-length
			// compressed layouts shift.
			k := r.Intn(6)
			switch {
			case r.Bool(0.06):
				readings[k] = -1
			case r.Bool(0.06):
				readings[k] = int64(r.Intn(1<<20)) - 1<<19
			default:
				readings[k] += int64(r.Intn(31)) - 15
			}
			mem.Write(uint64(i%buffers), sampleLine(ts, uint64(i), readings))
		}
		results[name] = mem.Stats()
	}

	base := results["Baseline"]
	fmt.Printf("%-12s %12s %14s %12s\n", "scheme", "pJ/append", "cells/append", "vs Baseline")
	for _, name := range schemes {
		st := results[name]
		fmt.Printf("%-12s %12.0f %14.1f %11.1f%%\n", name,
			st.AvgEnergyPJ(), st.AvgUpdatedCells(),
			100*(1-st.AvgEnergyPJ()/base.AvgEnergyPJ()))
	}
	fmt.Println("\nWLCRC keeps bit positions stable across appends, so the differential")
	fmt.Println("write only touches the fields that moved; COC repacks the line and")
	fmt.Println("pays for it. (Paper §VIII.A makes the same comparison.)")
}
