module wlcrc

go 1.21
