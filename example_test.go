package wlcrc_test

import (
	"fmt"

	"wlcrc"
)

// Encoding one line with the paper's headline configuration and reading
// it back.
func ExampleNewMemory() {
	mem := wlcrc.NewMemory(wlcrc.MustScheme("WLCRC-16"))
	data := wlcrc.LineFromWords([8]uint64{100, 200, 300, 400, 500, 600, 700, 800})
	info := mem.Write(0, data)
	fmt.Println("compressed:", info.Compressed)
	fmt.Println("round trip:", mem.Read(0) == data)
	// Output:
	// compressed: true
	// round trip: true
}

// Rewriting identical data costs nothing under differential write.
func ExampleMemory_Write() {
	mem := wlcrc.NewMemory(wlcrc.MustScheme("Baseline"))
	data := wlcrc.LineFromWords([8]uint64{1, 2, 3, 4, 5, 6, 7, 8})
	mem.Write(7, data)
	again := mem.Write(7, data)
	fmt.Println(again.EnergyPJ, again.UpdatedCells)
	// Output:
	// 0 0
}

// Scheme names accepted by NewScheme.
func ExampleSchemeNames() {
	for _, n := range wlcrc.SchemeNames()[:3] {
		fmt.Println(n)
	}
	// Output:
	// 6cosets
	// Baseline
	// COC+4cosets
}

// Comparing two schemes on a synthetic benchmark workload.
func ExampleNewWorkload() {
	w, err := wlcrc.NewWorkload("mcf", 64, 1)
	if err != nil {
		panic(err)
	}
	base := wlcrc.NewMemory(wlcrc.MustScheme("Baseline"))
	fine := wlcrc.NewMemory(wlcrc.MustScheme("WLCRC-16"))
	for i := 0; i < 2000; i++ {
		r := w.Next()
		base.Write(r.Addr, r.New)
		fine.Write(r.Addr, r.New)
	}
	fmt.Println("WLCRC-16 saves energy:",
		fine.Stats().AvgEnergyPJ() < base.Stats().AvgEnergyPJ())
	// Output:
	// WLCRC-16 saves energy: true
}
