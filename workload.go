package wlcrc

import (
	"fmt"

	"wlcrc/internal/trace"
	"wlcrc/internal/vcc"
	"wlcrc/internal/workload"
)

// WriteRequest is one element of a synthetic write stream: the line
// address, the new content, and the content being overwritten.
type WriteRequest struct {
	Addr uint64
	Old  Line
	New  Line
}

// Workload is a synthetic write-request stream.
type Workload struct {
	src trace.Source
	// encKey remembers the effective Encrypt key (0 = not encrypted),
	// so repeated same-key calls are no-ops and conflicting keys panic.
	encKey uint64
	// batch is NextBatch's reusable staging buffer between the internal
	// trace.Request stream and the caller's WriteRequest slice.
	batch []trace.Request
}

// WorkloadNames lists the benchmark profiles of the paper's evaluation
// (§VII.B) plus "random".
func WorkloadNames() []string {
	var names []string
	for _, p := range workload.Profiles() {
		names = append(names, p.Name)
	}
	names = append(names, "random")
	return names
}

// NewWorkload builds the named synthetic workload with a deterministic
// seed. footprint overrides the working-set size in lines when positive.
func NewWorkload(name string, footprint int, seed uint64) (*Workload, error) {
	if name == "random" {
		return &Workload{src: workload.NewGenerator(workload.RandomProfile(), footprint, seed)}, nil
	}
	p, ok := workload.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("wlcrc: unknown workload %q (see WorkloadNames)", name)
	}
	return &Workload{src: workload.NewGenerator(p, footprint, seed)}, nil
}

// Encrypt switches the workload to its counter-mode encrypted form:
// from the next request on, the stream carries the ciphertext an
// encrypted DIMM would store (every write re-encrypted under the line's
// incremented counter), which makes the content incompressible and
// defeats compression-gated encoders. key 0 uses the default key. It
// returns w for chaining; call it before the first Next or Replay.
//
// Encrypting an already-encrypted workload with the same key is a
// no-op: the whitening transform is an involution, so stacking a second
// pass would silently decrypt the stream back to plaintext — exactly
// the opposite of what a defensive second call intends. Calling Encrypt
// again with a different key panics, since the stream cannot honor both
// keys and silently keeping the first would be indistinguishable from
// a successful re-key.
func (w *Workload) Encrypt(key uint64) *Workload {
	eff := key
	if eff == 0 {
		eff = vcc.DefaultKey
	}
	if w.encKey == eff {
		return w
	}
	if w.encKey != 0 {
		panic(fmt.Sprintf("wlcrc: Workload already encrypted with a different key (%#x)", w.encKey))
	}
	w.encKey = eff
	w.src = workload.Encrypted(w.src, key)
	return w
}

// Next returns the next write request; the stream never ends.
func (w *Workload) Next() WriteRequest {
	req, _ := w.src.Next()
	return WriteRequest{Addr: req.Addr, Old: req.Old, New: req.New}
}

// NextBatch fills dst with the next len(dst) write requests and returns
// the fill count — always len(dst), since the stream never ends. The
// batch is drawn through the generator's bulk path (one internal call
// per batch instead of one per request) and is identical to len(dst)
// Next calls.
func (w *Workload) NextBatch(dst []WriteRequest) int {
	if len(dst) == 0 {
		return 0
	}
	if w.batch == nil || len(w.batch) < len(dst) {
		w.batch = make([]trace.Request, len(dst))
	}
	buf := w.batch[:len(dst)]
	n := trace.Batched(w.src).NextBatch(buf)
	for i := 0; i < n; i++ {
		dst[i] = WriteRequest{Addr: buf[i].Addr, Old: buf[i].Old, New: buf[i].New}
	}
	return n
}
