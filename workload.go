package wlcrc

import (
	"fmt"

	"wlcrc/internal/workload"
)

// WriteRequest is one element of a synthetic write stream: the line
// address, the new content, and the content being overwritten.
type WriteRequest struct {
	Addr uint64
	Old  Line
	New  Line
}

// Workload is a synthetic write-request stream.
type Workload struct {
	gen *workload.Generator
}

// WorkloadNames lists the benchmark profiles of the paper's evaluation
// (§VII.B) plus "random".
func WorkloadNames() []string {
	var names []string
	for _, p := range workload.Profiles() {
		names = append(names, p.Name)
	}
	names = append(names, "random")
	return names
}

// NewWorkload builds the named synthetic workload with a deterministic
// seed. footprint overrides the working-set size in lines when positive.
func NewWorkload(name string, footprint int, seed uint64) (*Workload, error) {
	if name == "random" {
		return &Workload{gen: workload.NewGenerator(workload.RandomProfile(), footprint, seed)}, nil
	}
	p, ok := workload.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("wlcrc: unknown workload %q (see WorkloadNames)", name)
	}
	return &Workload{gen: workload.NewGenerator(p, footprint, seed)}, nil
}

// Next returns the next write request; the stream never ends.
func (w *Workload) Next() WriteRequest {
	req, _ := w.gen.Next()
	return WriteRequest{Addr: req.Addr, Old: req.Old, New: req.New}
}
