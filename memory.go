package wlcrc

import (
	"wlcrc/internal/arena"
	"wlcrc/internal/core"
	"wlcrc/internal/coset"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// WriteInfo reports the cost of one line write.
type WriteInfo struct {
	// EnergyPJ is the programming energy of the differential write.
	EnergyPJ float64
	// UpdatedCells is the number of MLC cells programmed.
	UpdatedCells int
	// DisturbErrors is the number of write-disturbance errors the write
	// induced in idle neighbor cells (expected value, or a sample when
	// the Memory was built with WithDisturbSampling).
	DisturbErrors float64
	// Compressed reports whether the scheme's encoded (compressed) path
	// was taken; false means the raw fallback.
	Compressed bool
}

// MemStats aggregates write costs over a Memory's lifetime.
type MemStats struct {
	Writes           int
	EnergyPJ         float64
	UpdatedCells     int
	DisturbErrors    float64
	CompressedWrites int
}

// AvgEnergyPJ returns mean programming energy per write.
func (s MemStats) AvgEnergyPJ() float64 {
	if s.Writes == 0 {
		return 0
	}
	return s.EnergyPJ / float64(s.Writes)
}

// AvgUpdatedCells returns mean programmed cells per write.
func (s MemStats) AvgUpdatedCells() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.UpdatedCells) / float64(s.Writes)
}

// MemOption customizes a Memory.
type MemOption func(*Memory)

// WithDisturbSampling switches disturbance accounting from expected
// values to Monte-Carlo sampling with the given seed.
func WithDisturbSampling(seed uint64) MemOption {
	return func(m *Memory) { m.rnd = prng.New(seed) }
}

// WithMemEnergy overrides the device energy model used for accounting.
func WithMemEnergy(em pcm.EnergyModel) MemOption {
	return func(m *Memory) { m.energy = em }
}

// Memory simulates a PCM region behind one encoding scheme. It tracks
// the cell states of every line ever written, prices each write with
// the Table II device model, and can read back (decode) any line.
// Memory is not safe for concurrent use.
//
// Lines are stored plane-native whenever the scheme supports it: each
// line is a flat run of bit-plane words in a contiguous arena,
// addressed by an open slot index, and the scheme encodes and decodes
// the planes directly — no per-write cell pack/unpack and no map
// lookup. Counter-keyed schemes (VCC-n, Enc) keep the scalar
// map-of-cell-vectors store. Either way the write path is
// allocation-free in steady state and the compression-flag convention
// is resolved once at construction.
type Memory struct {
	scheme     Scheme
	compressed func([]pcm.State) bool
	encodeCtr  func(dst, old []pcm.State, addr, ctr uint64, data *Line)
	decodeCtr  func(cells []pcm.State, addr, ctr uint64, dst *Line)
	energy     pcm.EnergyModel
	disturb    pcm.DisturbModel
	cells      map[uint64][]pcm.State
	// Plane-native storage (nil planeEnc selects the scalar path).
	planeEnc     core.PlaneScheme
	planeGate    func([]uint64) bool
	lines        *arena.Lines
	planeScratch []uint64
	masks        []uint64
	// ctrs is the per-line write-counter store counter-keyed schemes
	// (VCC-n, Enc) encode and decode against; nil for ordinary schemes.
	ctrs    map[uint64]uint64
	scratch []pcm.State
	changed []bool
	// lineBuf stages the written line: passing a stack copy's address
	// through the Scheme interface would force a per-write heap escape.
	lineBuf Line
	rnd     *prng.Xoshiro256
	stats   MemStats
}

// NewMemory builds a simulated PCM region using scheme for every line.
func NewMemory(scheme Scheme, opts ...MemOption) *Memory {
	m := &Memory{
		scheme:  scheme,
		energy:  pcm.DefaultEnergy(),
		disturb: pcm.DefaultDisturb(),
	}
	m.compressed = core.CompressedWriteFunc(scheme)
	m.encodeCtr = core.EncodeCtrFunc(scheme)
	m.decodeCtr = core.DecodeCtrFunc(scheme)
	if ps, ok := core.PlaneCodec(scheme); ok {
		stride := coset.PlaneWords(scheme.TotalCells())
		m.planeEnc = ps
		m.planeGate = core.CompressedWritePlanesFunc(scheme)
		m.lines = arena.New(stride, 0)
		m.planeScratch = make([]uint64, stride)
		m.masks = make([]uint64, stride/2)
	} else {
		m.cells = make(map[uint64][]pcm.State)
		m.scratch = make([]pcm.State, scheme.TotalCells())
		m.changed = make([]bool, scheme.TotalCells())
	}
	if core.UsesCounters(scheme) {
		m.ctrs = make(map[uint64]uint64)
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Scheme returns the memory's encoding scheme.
func (m *Memory) Scheme() Scheme { return m.scheme }

// Write stores data at the given line address and returns its cost.
func (m *Memory) Write(addr uint64, data Line) WriteInfo {
	if m.planeEnc != nil {
		return m.writePlanes(addr, data)
	}
	old, ok := m.cells[addr]
	if !ok {
		old = core.InitialCells(m.scheme.TotalCells())
	}
	var ctr uint64
	if m.ctrs != nil {
		ctr = m.ctrs[addr] + 1
		m.ctrs[addr] = ctr
	}
	next := m.scratch
	m.lineBuf = data
	m.encodeCtr(next, old, addr, ctr, &m.lineBuf)
	ws := m.energy.DiffWrite(old, next, m.scheme.DataCells())
	m.changed = pcm.ChangedMaskInto(m.changed, old, next)
	var sampler pcm.Sampler
	if m.rnd != nil {
		sampler = m.rnd
	}
	ds := m.disturb.CountDisturb(next, m.changed, m.scheme.DataCells(), sampler)
	// Swap buffers: the encoded states become the stored line, the old
	// stored line becomes the next write's scratch.
	m.cells[addr] = next
	m.scratch = old

	info := WriteInfo{
		EnergyPJ:      ws.Energy(),
		UpdatedCells:  ws.Updated(),
		DisturbErrors: ds.Errors(),
		Compressed:    m.compressed(next),
	}
	m.stats.Writes++
	m.stats.EnergyPJ += info.EnergyPJ
	m.stats.UpdatedCells += info.UpdatedCells
	m.stats.DisturbErrors += info.DisturbErrors
	if info.Compressed {
		m.stats.CompressedWrites++
	}
	return info
}

// writePlanes is Write on plane-native storage: one slot probe, a
// plane-resident encode into the reusable scratch, the XOR-diff energy
// and disturbance charges, and a single plane copy to commit.
func (m *Memory) writePlanes(addr uint64, data Line) WriteInfo {
	slot, _ := m.lines.Ensure(addr)
	old := m.lines.Planes(slot)
	next := m.planeScratch
	m.lineBuf = data
	m.planeEnc.EncodePlanesInto(next, old, &m.lineBuf)
	ws := m.energy.DiffWriteMasks(old, next, m.masks, m.scheme.DataCells())
	var sampler pcm.Sampler
	if m.rnd != nil {
		sampler = m.rnd
	}
	ds := m.disturb.CountDisturbMasks(next, m.masks, m.scheme.TotalCells(), m.scheme.DataCells(), sampler)
	copy(old, next)

	info := WriteInfo{
		EnergyPJ:      ws.Energy(),
		UpdatedCells:  ws.Updated(),
		DisturbErrors: ds.Errors(),
		Compressed:    m.planeGate(next),
	}
	m.stats.Writes++
	m.stats.EnergyPJ += info.EnergyPJ
	m.stats.UpdatedCells += info.UpdatedCells
	m.stats.DisturbErrors += info.DisturbErrors
	if info.Compressed {
		m.stats.CompressedWrites++
	}
	return info
}

// Read decodes and returns the line at addr. Unwritten lines read as
// zero.
func (m *Memory) Read(addr uint64) Line {
	var l Line
	if m.planeEnc != nil {
		if slot, ok := m.lines.Lookup(addr); ok {
			m.planeEnc.DecodePlanesInto(m.lines.Planes(slot), &l)
		}
		return l
	}
	cells, ok := m.cells[addr]
	if !ok {
		return Line{}
	}
	var ctr uint64
	if m.ctrs != nil {
		ctr = m.ctrs[addr]
	}
	m.decodeCtr(cells, addr, ctr, &l)
	return l
}

// Written reports whether addr has ever been written.
func (m *Memory) Written(addr uint64) bool {
	if m.planeEnc != nil {
		_, ok := m.lines.Lookup(addr)
		return ok
	}
	_, ok := m.cells[addr]
	return ok
}

// Lines returns the number of distinct lines written.
func (m *Memory) Lines() int {
	if m.planeEnc != nil {
		return m.lines.Len()
	}
	return len(m.cells)
}

// Stats returns the accumulated write statistics.
func (m *Memory) Stats() MemStats { return m.stats }
