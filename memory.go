package wlcrc

import (
	"wlcrc/internal/core"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// WriteInfo reports the cost of one line write.
type WriteInfo struct {
	// EnergyPJ is the programming energy of the differential write.
	EnergyPJ float64
	// UpdatedCells is the number of MLC cells programmed.
	UpdatedCells int
	// DisturbErrors is the number of write-disturbance errors the write
	// induced in idle neighbor cells (expected value, or a sample when
	// the Memory was built with WithDisturbSampling).
	DisturbErrors float64
	// Compressed reports whether the scheme's encoded (compressed) path
	// was taken; false means the raw fallback.
	Compressed bool
}

// MemStats aggregates write costs over a Memory's lifetime.
type MemStats struct {
	Writes           int
	EnergyPJ         float64
	UpdatedCells     int
	DisturbErrors    float64
	CompressedWrites int
}

// AvgEnergyPJ returns mean programming energy per write.
func (s MemStats) AvgEnergyPJ() float64 {
	if s.Writes == 0 {
		return 0
	}
	return s.EnergyPJ / float64(s.Writes)
}

// AvgUpdatedCells returns mean programmed cells per write.
func (s MemStats) AvgUpdatedCells() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.UpdatedCells) / float64(s.Writes)
}

// MemOption customizes a Memory.
type MemOption func(*Memory)

// WithDisturbSampling switches disturbance accounting from expected
// values to Monte-Carlo sampling with the given seed.
func WithDisturbSampling(seed uint64) MemOption {
	return func(m *Memory) { m.rnd = prng.New(seed) }
}

// WithMemEnergy overrides the device energy model used for accounting.
func WithMemEnergy(em pcm.EnergyModel) MemOption {
	return func(m *Memory) { m.energy = em }
}

// Memory simulates a PCM region behind one encoding scheme. It tracks
// the cell states of every line ever written, prices each write with
// the Table II device model, and can read back (decode) any line.
// Memory is not safe for concurrent use.
//
// The write path is allocation-free in steady state: encoding targets a
// reusable scratch buffer that swaps roles with the stored line on every
// write, and the compression-flag convention is resolved once at
// construction.
type Memory struct {
	scheme     Scheme
	compressed func([]pcm.State) bool
	encodeCtr  func(dst, old []pcm.State, addr, ctr uint64, data *Line)
	decodeCtr  func(cells []pcm.State, addr, ctr uint64, dst *Line)
	energy     pcm.EnergyModel
	disturb    pcm.DisturbModel
	cells      map[uint64][]pcm.State
	// ctrs is the per-line write-counter store counter-keyed schemes
	// (VCC-n, Enc) encode and decode against; nil for ordinary schemes.
	ctrs    map[uint64]uint64
	scratch []pcm.State
	changed []bool
	// lineBuf stages the written line: passing a stack copy's address
	// through the Scheme interface would force a per-write heap escape.
	lineBuf Line
	rnd     *prng.Xoshiro256
	stats   MemStats
}

// NewMemory builds a simulated PCM region using scheme for every line.
func NewMemory(scheme Scheme, opts ...MemOption) *Memory {
	m := &Memory{
		scheme:  scheme,
		energy:  pcm.DefaultEnergy(),
		disturb: pcm.DefaultDisturb(),
		cells:   make(map[uint64][]pcm.State),
		scratch: make([]pcm.State, scheme.TotalCells()),
		changed: make([]bool, scheme.TotalCells()),
	}
	m.compressed = core.CompressedWriteFunc(scheme)
	m.encodeCtr = core.EncodeCtrFunc(scheme)
	m.decodeCtr = core.DecodeCtrFunc(scheme)
	if core.UsesCounters(scheme) {
		m.ctrs = make(map[uint64]uint64)
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Scheme returns the memory's encoding scheme.
func (m *Memory) Scheme() Scheme { return m.scheme }

// Write stores data at the given line address and returns its cost.
func (m *Memory) Write(addr uint64, data Line) WriteInfo {
	old, ok := m.cells[addr]
	if !ok {
		old = core.InitialCells(m.scheme.TotalCells())
	}
	var ctr uint64
	if m.ctrs != nil {
		ctr = m.ctrs[addr] + 1
		m.ctrs[addr] = ctr
	}
	next := m.scratch
	m.lineBuf = data
	m.encodeCtr(next, old, addr, ctr, &m.lineBuf)
	ws := m.energy.DiffWrite(old, next, m.scheme.DataCells())
	m.changed = pcm.ChangedMaskInto(m.changed, old, next)
	var sampler pcm.Sampler
	if m.rnd != nil {
		sampler = m.rnd
	}
	ds := m.disturb.CountDisturb(next, m.changed, m.scheme.DataCells(), sampler)
	// Swap buffers: the encoded states become the stored line, the old
	// stored line becomes the next write's scratch.
	m.cells[addr] = next
	m.scratch = old

	info := WriteInfo{
		EnergyPJ:      ws.Energy(),
		UpdatedCells:  ws.Updated(),
		DisturbErrors: ds.Errors(),
		Compressed:    m.compressed(next),
	}
	m.stats.Writes++
	m.stats.EnergyPJ += info.EnergyPJ
	m.stats.UpdatedCells += info.UpdatedCells
	m.stats.DisturbErrors += info.DisturbErrors
	if info.Compressed {
		m.stats.CompressedWrites++
	}
	return info
}

// Read decodes and returns the line at addr. Unwritten lines read as
// zero.
func (m *Memory) Read(addr uint64) Line {
	cells, ok := m.cells[addr]
	if !ok {
		return Line{}
	}
	var l Line
	var ctr uint64
	if m.ctrs != nil {
		ctr = m.ctrs[addr]
	}
	m.decodeCtr(cells, addr, ctr, &l)
	return l
}

// Written reports whether addr has ever been written.
func (m *Memory) Written(addr uint64) bool {
	_, ok := m.cells[addr]
	return ok
}

// Lines returns the number of distinct lines written.
func (m *Memory) Lines() int { return len(m.cells) }

// Stats returns the accumulated write statistics.
func (m *Memory) Stats() MemStats { return m.stats }
