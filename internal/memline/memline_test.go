package memline

import (
	"testing"
	"testing/quick"
)

func TestBitSetGet(t *testing.T) {
	var l Line
	for _, i := range []int{0, 1, 7, 8, 63, 64, 255, 510, 511} {
		l.SetBit(i, 1)
		if l.Bit(i) != 1 {
			t.Errorf("bit %d: got 0 after SetBit(1)", i)
		}
		l.SetBit(i, 0)
		if l.Bit(i) != 0 {
			t.Errorf("bit %d: got 1 after SetBit(0)", i)
		}
	}
}

func TestSymbolBitConsistency(t *testing.T) {
	// Symbol value must be hi<<1 | lo where lo = bit 2c, hi = bit 2c+1.
	var l Line
	l.SetBit(0, 1) // cell 0 lo bit
	if got := l.Symbol(0); got != 1 {
		t.Errorf("cell 0 after setting bit 0: symbol = %d, want 1 (\"01\")", got)
	}
	l.SetBit(0, 0)
	l.SetBit(1, 1) // cell 0 hi bit
	if got := l.Symbol(0); got != 2 {
		t.Errorf("cell 0 after setting bit 1: symbol = %d, want 2 (\"10\")", got)
	}
	l.SetBit(511, 1)
	l.SetBit(510, 1)
	if got := l.Symbol(255); got != 3 {
		t.Errorf("cell 255 = %d, want 3", got)
	}
}

func TestSetSymbolRoundTrip(t *testing.T) {
	var l Line
	for c := 0; c < LineCells; c++ {
		v := uint8((c*7 + 3) % 4)
		l.SetSymbol(c, v)
	}
	for c := 0; c < LineCells; c++ {
		want := uint8((c*7 + 3) % 4)
		if got := l.Symbol(c); got != want {
			t.Fatalf("cell %d = %d, want %d", c, got, want)
		}
	}
}

func TestSetSymbolDoesNotDisturbNeighbors(t *testing.T) {
	var l Line
	for c := 0; c < LineCells; c++ {
		l.SetSymbol(c, 3)
	}
	l.SetSymbol(100, 0)
	if l.Symbol(99) != 3 || l.Symbol(101) != 3 {
		t.Error("SetSymbol disturbed neighboring cells")
	}
	if l.Symbol(100) != 0 {
		t.Error("SetSymbol(100, 0) failed")
	}
}

func TestWordRoundTrip(t *testing.T) {
	var l Line
	for w := 0; w < LineWords; w++ {
		l.SetWord(w, uint64(w)*0x0123456789abcdef)
	}
	for w := 0; w < LineWords; w++ {
		if got := l.Word(w); got != uint64(w)*0x0123456789abcdef {
			t.Fatalf("word %d mismatch", w)
		}
	}
	ws := l.Words()
	l2 := FromWords(ws)
	if !l.Equal(&l2) {
		t.Error("FromWords(Words()) != original")
	}
}

func TestWordBitCorrespondence(t *testing.T) {
	// Bit j of word w must be line bit 64w+j.
	var l Line
	l.SetWord(3, 1<<63)
	if l.Bit(3*64+63) != 1 {
		t.Error("word bit 63 of word 3 is not line bit 255")
	}
	if l.Bit(3*64+62) != 0 {
		t.Error("unexpected set bit")
	}
}

func TestCountDiffSymbols(t *testing.T) {
	var a, b Line
	if a.CountDiffSymbols(&b) != 0 {
		t.Error("identical lines differ")
	}
	b.SetSymbol(0, 1)
	b.SetSymbol(255, 2)
	if got := a.CountDiffSymbols(&b); got != 2 {
		t.Errorf("diff = %d, want 2", got)
	}
}

func TestSymbolHistogram(t *testing.T) {
	var l Line
	h := l.SymbolHistogram()
	if h[0] != LineCells {
		t.Errorf("all-zero line histogram[0] = %d", h[0])
	}
	for c := 0; c < 10; c++ {
		l.SetSymbol(c, 3)
	}
	h = l.SymbolHistogram()
	if h[3] != 10 || h[0] != LineCells-10 {
		t.Errorf("histogram = %v", h)
	}
}

// symbolHistogramRef is the original per-cell loop, kept as the
// reference the table-driven SymbolHistogram is checked against.
func symbolHistogramRef(l *Line) [SymbolValues]int {
	var h [SymbolValues]int
	for c := 0; c < LineCells; c++ {
		h[l.Symbol(c)]++
	}
	return h
}

func TestSymbolHistogramMatchesReference(t *testing.T) {
	var l Line
	// Saturating case: a single symbol value filling the line must not
	// overflow the packed 16-bit count lanes.
	for v := uint8(0); v < 4; v++ {
		for i := range l {
			l[i] = v | v<<2 | v<<4 | v<<6
		}
		if got, want := l.SymbolHistogram(), symbolHistogramRef(&l); got != want {
			t.Fatalf("uniform symbol %d: %v != %v", v, got, want)
		}
	}
	rnd := uint64(0x9E3779B97F4A7C15)
	for trial := 0; trial < 500; trial++ {
		for i := range l {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			l[i] = byte(rnd >> 33)
		}
		if got, want := l.SymbolHistogram(), symbolHistogramRef(&l); got != want {
			t.Fatalf("trial %d: %v != %v", trial, got, want)
		}
	}
}

func TestBitField(t *testing.T) {
	w := uint64(0xdeadbeefcafe1234)
	if got := BitField(w, 0, 16); got != 0x1234 {
		t.Errorf("BitField(.., 0, 16) = %#x", got)
	}
	if got := BitField(w, 48, 16); got != 0xdead {
		t.Errorf("BitField(.., 48, 16) = %#x", got)
	}
	if got := BitField(w, 0, 64); got != w {
		t.Errorf("BitField(.., 0, 64) = %#x", got)
	}
	w2 := SetBitField(w, 16, 16, 0xffff)
	if got := BitField(w2, 16, 16); got != 0xffff {
		t.Errorf("SetBitField failed: %#x", got)
	}
	if BitField(w2, 0, 16) != 0x1234 || BitField(w2, 32, 32) != 0xdeadbeef {
		t.Error("SetBitField disturbed other bits")
	}
}

func TestMSBRun(t *testing.T) {
	cases := []struct {
		w    uint64
		want int
	}{
		{0, 64},
		{^uint64(0), 64},
		{1, 63},
		{1 << 62, 1},
		{0xffff000000000000, 16},
		{0x00ffffffffffffff, 8},
		{0x8000000000000000, 1},
		{0xc000000000000000, 2},
	}
	for _, c := range cases {
		if got := MSBRun(c.w); got != c.want {
			t.Errorf("MSBRun(%#x) = %d, want %d", c.w, got, c.want)
		}
	}
}

// TestMSBRunExhaustiveBoundaries sweeps every run length 1..64 for both
// leading-bit polarities, with every below-the-run remainder pattern
// that flips the boundary bit — the exact cases the branch-free
// LeadingZeros64 form must get right.
func TestMSBRunExhaustiveBoundaries(t *testing.T) {
	for run := 1; run <= 64; run++ {
		for top := 0; top <= 1; top++ {
			var w uint64
			if top == 1 {
				// run leading ones.
				w = ^uint64(0) << uint(64-run)
			}
			if run < 64 {
				// Force the boundary bit to the opposite polarity and
				// fill the tail with patterns of both polarities.
				boundary := uint64(1-top) << uint(63-run)
				w = w&^(uint64(1)<<uint(63-run)) | boundary
				for _, tail := range []uint64{0, ^uint64(0), 0xAAAAAAAAAAAAAAAA} {
					v := w
					if run < 63 {
						mask := uint64(1)<<uint(63-run) - 1
						v = v&^mask | tail&mask
					}
					if got := MSBRun(v); got != run {
						t.Fatalf("MSBRun(%#064b) = %d, want %d", v, got, run)
					}
				}
			} else if got := MSBRun(w); got != 64 {
				t.Fatalf("MSBRun(all-%d) = %d, want 64", top, got)
			}
		}
	}
}

func TestLoHiPlanesConvention(t *testing.T) {
	// Cell c's symbol is (hi<<1 | lo) from bits (2c, 2c+1): check the
	// documented plane convention on a word with distinct symbols.
	var word uint64
	for c := 0; c < WordCells; c++ {
		word |= uint64(c&3) << uint(2*c)
	}
	lo, hi := LoHiPlanes(word)
	for c := 0; c < WordCells; c++ {
		sym := uint8(hi>>uint(c)&1)<<1 | uint8(lo>>uint(c)&1)
		if sym != uint8(c&3) {
			t.Fatalf("cell %d: plane symbol %d, want %d", c, sym, c&3)
		}
	}
	if InterleavePlanes(lo, hi) != word {
		t.Fatal("InterleavePlanes is not the inverse of LoHiPlanes")
	}
}

func TestSignExtend(t *testing.T) {
	if got := SignExtend(0xff, 8); got != ^uint64(0) {
		t.Errorf("SignExtend(0xff, 8) = %#x", got)
	}
	if got := SignExtend(0x7f, 8); got != 0x7f {
		t.Errorf("SignExtend(0x7f, 8) = %#x", got)
	}
	if !FitsSigned(^uint64(0), 1) {
		t.Error("-1 should fit in 1 bit")
	}
	if FitsSigned(0x80, 8) {
		t.Error("0x80 should not fit signed in 8 bits")
	}
	if !FitsSigned(0x7f, 8) {
		t.Error("0x7f should fit signed in 8 bits")
	}
}

func TestQuickSymbolWordConsistency(t *testing.T) {
	// Property: for any words, the symbol view and word view agree bit
	// by bit.
	f := func(ws [LineWords]uint64) bool {
		l := FromWords(ws)
		for c := 0; c < LineCells; c++ {
			w := ws[c/WordCells]
			in := c % WordCells
			lo := (w >> uint(2*in)) & 1
			hi := (w >> uint(2*in+1)) & 1
			if l.Symbol(c) != uint8(hi<<1|lo) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBitFieldRoundTrip(t *testing.T) {
	f := func(w, v uint64, lo8, width8 uint8) bool {
		lo := int(lo8) % 64
		width := int(width8) % (64 - lo + 1)
		got := SetBitField(w, lo, width, v)
		want := v & (func() uint64 {
			if width == 64 {
				return ^uint64(0)
			}
			return 1<<uint(width) - 1
		}())
		return BitField(got, lo, width) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	var l Line
	l.SetWord(0, 0xdead)
	s := l.String()
	if len(s) == 0 {
		t.Fatal("empty string")
	}
	if s[:16] != "000000000000dead" {
		t.Errorf("String() starts %q", s[:16])
	}
}

func BenchmarkCountDiffSymbols(b *testing.B) {
	var x, y Line
	for i := range x {
		x[i] = byte(i * 31)
		y[i] = byte(i * 17)
	}
	b.ReportAllocs()
	n := 0
	for i := 0; i < b.N; i++ {
		n += x.CountDiffSymbols(&y)
	}
	_ = n
}

func BenchmarkSymbolHistogram(b *testing.B) {
	var l Line
	for i := range l {
		l[i] = byte(i * 37)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.SymbolHistogram()
	}
}

func BenchmarkLoHiPlanes(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		lo, hi := LoHiPlanes(uint64(i) * 0x9E3779B97F4A7C15)
		sink += InterleavePlanes(lo, hi)
	}
	_ = sink
}
