// Package memline defines the 512-bit memory line abstraction used by all
// encoders, and the bit / symbol / word accessors the paper's schemes are
// built from.
//
// Conventions (see DESIGN.md §3):
//   - A line is 64 bytes. Bit i of the line is bit (i&7) of byte (i>>3),
//     i.e. LSB-first within each byte.
//   - Cell c (c in [0,256)) stores the bit pair (2c, 2c+1). Its symbol
//     value is bit(2c+1)<<1 | bit(2c), matching the paper's textual
//     notation: symbol "01" has high bit 0 and low bit 1, value 1.
//   - Word w (w in [0,8)) is the little-endian uint64 of bytes 8w..8w+7,
//     so bit j of the word is line bit 64w+j. This matches Figure 6 where
//     b63..b0 index a word's bits.
package memline

import (
	"encoding/binary"
	"fmt"
)

// Constants describing the fixed geometry of a PCM memory line.
const (
	LineBits    = 512 // bits per memory line
	LineBytes   = 64  // bytes per memory line
	LineCells   = 256 // MLC cells (2-bit symbols) per line
	LineWords   = 8   // 64-bit words per line
	WordBits    = 64  // bits per word
	WordCells   = 32  // cells per word
	SymbolStats = 4   // distinct 2-bit symbol values
)

// Line is one 512-bit memory line.
type Line [LineBytes]byte

// Bit returns bit i of the line (0 or 1).
func (l *Line) Bit(i int) int {
	return int(l[i>>3]>>(uint(i)&7)) & 1
}

// SetBit sets bit i of the line to v (0 or 1).
func (l *Line) SetBit(i, v int) {
	if v&1 == 1 {
		l[i>>3] |= 1 << (uint(i) & 7)
	} else {
		l[i>>3] &^= 1 << (uint(i) & 7)
	}
}

// Symbol returns the 2-bit symbol stored in cell c.
func (l *Line) Symbol(c int) uint8 {
	b := l[c>>2] >> ((uint(c) & 3) * 2)
	// b holds (lo, hi) in its two low bits: bit0 = line bit 2c (lo),
	// bit1 = line bit 2c+1 (hi). Symbol value = hi<<1 | lo, which is
	// exactly those two bits.
	return uint8(b & 3)
}

// SetSymbol stores the 2-bit symbol v in cell c.
func (l *Line) SetSymbol(c int, v uint8) {
	shift := (uint(c) & 3) * 2
	l[c>>2] = l[c>>2]&^(3<<shift) | (v&3)<<shift
}

// SymbolsInto extracts all 256 data symbols into dst without
// allocating. Each byte of the line carries four consecutive symbols, so
// the extraction runs four-symbols-per-load instead of the 256
// shift-mask iterations of per-cell Symbol calls.
func (l *Line) SymbolsInto(dst *[LineCells]uint8) {
	for b, v := range l {
		dst[4*b] = v & 3
		dst[4*b+1] = v >> 2 & 3
		dst[4*b+2] = v >> 4 & 3
		dst[4*b+3] = v >> 6
	}
}

// SetSymbolsFrom packs all 256 symbols into the line, four per byte —
// the inverse of SymbolsInto, for decoders that materialize a full
// symbol vector.
func (l *Line) SetSymbolsFrom(syms *[LineCells]uint8) {
	for b := 0; b < LineBytes; b++ {
		c := 4 * b
		l[b] = syms[c]&3 | syms[c+1]&3<<2 | syms[c+2]&3<<4 | syms[c+3]<<6
	}
}

// WordSymbols extracts the 32 cell symbols of one 64-bit word into dst:
// symbol c is bits (2c, 2c+1) of the word. Like SymbolsInto it works a
// byte at a time, four symbols per shift, instead of 32 variable-shift
// iterations.
func WordSymbols(word uint64, dst *[WordCells]uint8) {
	for b := 0; b < 8; b++ {
		v := uint8(word >> (8 * b))
		dst[4*b] = v & 3
		dst[4*b+1] = v >> 2 & 3
		dst[4*b+2] = v >> 4 & 3
		dst[4*b+3] = v >> 6
	}
}

// Word returns 64-bit word w of the line.
func (l *Line) Word(w int) uint64 {
	return binary.LittleEndian.Uint64(l[w*8 : w*8+8])
}

// SetWord stores v into 64-bit word w of the line.
func (l *Line) SetWord(w int, v uint64) {
	binary.LittleEndian.PutUint64(l[w*8:w*8+8], v)
}

// Words returns all eight words of the line.
func (l *Line) Words() [LineWords]uint64 {
	var ws [LineWords]uint64
	for i := range ws {
		ws[i] = l.Word(i)
	}
	return ws
}

// FromWords builds a line from eight 64-bit words.
func FromWords(ws [LineWords]uint64) Line {
	var l Line
	for i, w := range ws {
		l.SetWord(i, w)
	}
	return l
}

// Equal reports whether two lines hold identical content.
func (l *Line) Equal(o *Line) bool { return *l == *o }

// String renders the line as 8 hex words, most-significant word last,
// matching the word order used throughout the package.
func (l *Line) String() string {
	s := ""
	for w := 0; w < LineWords; w++ {
		if w > 0 {
			s += " "
		}
		s += fmt.Sprintf("%016x", l.Word(w))
	}
	return s
}

// CountDiffSymbols returns the number of cells whose symbols differ
// between l and o. Under the default mapping this is the number of cells
// a differential write would program.
func (l *Line) CountDiffSymbols(o *Line) int {
	n := 0
	for c := 0; c < LineCells; c++ {
		if l.Symbol(c) != o.Symbol(c) {
			n++
		}
	}
	return n
}

// SymbolHistogram counts occurrences of each of the four symbol values.
func (l *Line) SymbolHistogram() [SymbolStats]int {
	var h [SymbolStats]int
	for c := 0; c < LineCells; c++ {
		h[l.Symbol(c)]++
	}
	return h
}

// BitField extracts bits [lo, lo+width) of word w as a uint64.
// width must be in [0, 64].
func BitField(word uint64, lo, width int) uint64 {
	if width == 64 {
		return word >> uint(lo)
	}
	return (word >> uint(lo)) & (1<<uint(width) - 1)
}

// SetBitField returns word with bits [lo, lo+width) replaced by the low
// bits of v.
func SetBitField(word uint64, lo, width int, v uint64) uint64 {
	if width == 64 {
		return v << uint(lo) // lo must be 0 in this case
	}
	mask := (uint64(1)<<uint(width) - 1) << uint(lo)
	return word&^mask | (v<<uint(lo))&mask
}

// MSBRun returns the length of the run of identical bits starting at the
// most significant bit of word. For example MSBRun(0) = 64 and
// MSBRun(0x4000000000000000) = 1.
func MSBRun(word uint64) int {
	top := word >> 63
	run := 0
	for i := 63; i >= 0; i-- {
		if (word>>uint(i))&1 != top {
			break
		}
		run++
	}
	return run
}

// SignExtend returns v (a value occupying the low `bits` bits) sign
// extended to 64 bits.
func SignExtend(v uint64, bits int) uint64 {
	if bits <= 0 || bits >= 64 {
		return v
	}
	shift := uint(64 - bits)
	return uint64(int64(v<<shift) >> shift)
}

// FitsSigned reports whether the 64-bit two's-complement value v is
// representable in `bits` bits (sign-extended).
func FitsSigned(v uint64, bits int) bool {
	return SignExtend(v, bits) == v
}
