// Package memline defines the 512-bit memory line abstraction used by all
// encoders, and the bit / symbol / word accessors the paper's schemes are
// built from.
//
// Conventions (see DESIGN.md §3):
//   - A line is 64 bytes. Bit i of the line is bit (i&7) of byte (i>>3),
//     i.e. LSB-first within each byte.
//   - Cell c (c in [0,256)) stores the bit pair (2c, 2c+1). Its symbol
//     value is bit(2c+1)<<1 | bit(2c), matching the paper's textual
//     notation: symbol "01" has high bit 0 and low bit 1, value 1.
//   - Word w (w in [0,8)) is the little-endian uint64 of bytes 8w..8w+7,
//     so bit j of the word is line bit 64w+j. This matches Figure 6 where
//     b63..b0 index a word's bits.
package memline

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Constants describing the fixed geometry of a PCM memory line.
const (
	LineBits     = 512 // bits per memory line
	LineBytes    = 64  // bytes per memory line
	LineCells    = 256 // MLC cells (2-bit symbols) per line
	LineWords    = 8   // 64-bit words per line
	WordBits     = 64  // bits per word
	WordCells    = 32  // cells per word
	SymbolValues = 4   // distinct 2-bit symbol values
)

// Line is one 512-bit memory line.
type Line [LineBytes]byte

// Bit returns bit i of the line (0 or 1).
func (l *Line) Bit(i int) int {
	return int(l[i>>3]>>(uint(i)&7)) & 1
}

// SetBit sets bit i of the line to v (0 or 1).
func (l *Line) SetBit(i, v int) {
	if v&1 == 1 {
		l[i>>3] |= 1 << (uint(i) & 7)
	} else {
		l[i>>3] &^= 1 << (uint(i) & 7)
	}
}

// Symbol returns the 2-bit symbol stored in cell c.
func (l *Line) Symbol(c int) uint8 {
	b := l[c>>2] >> ((uint(c) & 3) * 2)
	// b holds (lo, hi) in its two low bits: bit0 = line bit 2c (lo),
	// bit1 = line bit 2c+1 (hi). Symbol value = hi<<1 | lo, which is
	// exactly those two bits.
	return uint8(b & 3)
}

// SetSymbol stores the 2-bit symbol v in cell c.
func (l *Line) SetSymbol(c int, v uint8) {
	shift := (uint(c) & 3) * 2
	l[c>>2] = l[c>>2]&^(3<<shift) | (v&3)<<shift
}

// SymbolsInto extracts all 256 data symbols into dst without
// allocating. Each byte of the line carries four consecutive symbols, so
// the extraction runs four-symbols-per-load instead of the 256
// shift-mask iterations of per-cell Symbol calls.
func (l *Line) SymbolsInto(dst *[LineCells]uint8) {
	for b, v := range l {
		dst[4*b] = v & 3
		dst[4*b+1] = v >> 2 & 3
		dst[4*b+2] = v >> 4 & 3
		dst[4*b+3] = v >> 6
	}
}

// SetSymbolsFrom packs all 256 symbols into the line, four per byte —
// the inverse of SymbolsInto, for decoders that materialize a full
// symbol vector.
func (l *Line) SetSymbolsFrom(syms *[LineCells]uint8) {
	for b := 0; b < LineBytes; b++ {
		c := 4 * b
		l[b] = syms[c]&3 | syms[c+1]&3<<2 | syms[c+2]&3<<4 | syms[c+3]<<6
	}
}

// WordSymbols extracts the 32 cell symbols of one 64-bit word into dst:
// symbol c is bits (2c, 2c+1) of the word. Like SymbolsInto it works a
// byte at a time, four symbols per shift, instead of 32 variable-shift
// iterations.
func WordSymbols(word uint64, dst *[WordCells]uint8) {
	for b := 0; b < 8; b++ {
		v := uint8(word >> (8 * b))
		dst[4*b] = v & 3
		dst[4*b+1] = v >> 2 & 3
		dst[4*b+2] = v >> 4 & 3
		dst[4*b+3] = v >> 6
	}
}

// Word returns 64-bit word w of the line.
func (l *Line) Word(w int) uint64 {
	return binary.LittleEndian.Uint64(l[w*8 : w*8+8])
}

// SetWord stores v into 64-bit word w of the line.
func (l *Line) SetWord(w int, v uint64) {
	binary.LittleEndian.PutUint64(l[w*8:w*8+8], v)
}

// Words returns all eight words of the line.
func (l *Line) Words() [LineWords]uint64 {
	var ws [LineWords]uint64
	for i := range ws {
		ws[i] = l.Word(i)
	}
	return ws
}

// FromWords builds a line from eight 64-bit words.
func FromWords(ws [LineWords]uint64) Line {
	var l Line
	for i, w := range ws {
		l.SetWord(i, w)
	}
	return l
}

// Equal reports whether two lines hold identical content.
func (l *Line) Equal(o *Line) bool { return *l == *o }

// String renders the line as 8 hex words, most-significant word last,
// matching the word order used throughout the package.
func (l *Line) String() string {
	s := ""
	for w := 0; w < LineWords; w++ {
		if w > 0 {
			s += " "
		}
		s += fmt.Sprintf("%016x", l.Word(w))
	}
	return s
}

// CountDiffSymbols returns the number of cells whose symbols differ
// between l and o. Under the default mapping this is the number of cells
// a differential write would program. It runs word-parallel: a cell
// differs when either bit of its pair differs, so XOR + pair-OR folds
// each word's 32 cells into one popcount.
func (l *Line) CountDiffSymbols(o *Line) int {
	n := 0
	for w := 0; w < LineWords; w++ {
		x := l.Word(w) ^ o.Word(w)
		n += bits.OnesCount64((x | x>>1) & loPlaneMask)
	}
	return n
}

// histLUT maps one line byte (four 2-bit symbols) to its packed
// per-symbol counts, 16 bits per symbol value. Lane v of the sum over
// all 64 bytes is the line's count of symbol v; each lane peaks at 256,
// well inside 16 bits.
var histLUT = func() (t [256]uint64) {
	for b := 0; b < 256; b++ {
		for s := 0; s < 4; s++ {
			t[b] += 1 << (16 * (b >> (2 * s) & 3))
		}
	}
	return
}()

// SymbolHistogram counts occurrences of each of the four symbol values,
// one table lookup per byte (four cells) instead of a shift-mask per
// cell.
func (l *Line) SymbolHistogram() [SymbolValues]int {
	var packed uint64
	for _, b := range l {
		packed += histLUT[b]
	}
	var h [SymbolValues]int
	for v := range h {
		h[v] = int(packed >> (16 * v) & 0xFFFF)
	}
	return h
}

// BitField extracts bits [lo, lo+width) of word w as a uint64.
// width must be in [0, 64].
func BitField(word uint64, lo, width int) uint64 {
	if width == 64 {
		return word >> uint(lo)
	}
	return (word >> uint(lo)) & (1<<uint(width) - 1)
}

// SetBitField returns word with bits [lo, lo+width) replaced by the low
// bits of v.
func SetBitField(word uint64, lo, width int, v uint64) uint64 {
	if width == 64 {
		return v << uint(lo) // lo must be 0 in this case
	}
	mask := (uint64(1)<<uint(width) - 1) << uint(lo)
	return word&^mask | (v<<uint(lo))&mask
}

// MSBRun returns the length of the run of identical bits starting at the
// most significant bit of word. For example MSBRun(0) = 64 and
// MSBRun(0x4000000000000000) = 1.
//
// Branch-free: XORing against the sign-replicated top bit turns the
// leading run into leading zeros (an all-equal word becomes 0, and
// bits.LeadingZeros64(0) is exactly 64).
func MSBRun(word uint64) int {
	return bits.LeadingZeros64(word ^ uint64(int64(word)>>63))
}

// Bit-plane view -------------------------------------------------------
//
// A 64-bit word interleaves its 32 cell symbols: cell c is the bit pair
// (2c, 2c+1). The SWAR coset engine works on the de-interleaved planes
// instead — the "lo" plane gathers the even bits (each symbol's low
// bit), the "hi" plane the odd bits — so a symbol-wise operation over 32
// cells becomes a handful of boolean ops on two words. Bit c of a plane
// is cell c; planes occupy the low 32 bits.

// loPlaneMask selects the even (symbol low) bits of an interleaved word.
const loPlaneMask = 0x5555555555555555

// compressEven gathers the even bits of x (already masked to even
// positions) into the low 32 bits — the Morton-decode half step.
func compressEven(x uint64) uint64 {
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	return (x | x>>16) & 0x00000000FFFFFFFF
}

// expandEven spreads the low 32 bits of x onto the even bit positions —
// the inverse of compressEven.
func expandEven(x uint64) uint64 {
	x &= 0x00000000FFFFFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	return (x | x<<1) & loPlaneMask
}

// LoHiPlanes de-interleaves a word into its two symbol bit-planes: bit c
// of lo is data bit 2c (the low bit of cell c's symbol), bit c of hi is
// data bit 2c+1. Both planes occupy the low 32 bits.
func LoHiPlanes(word uint64) (lo, hi uint64) {
	return compressEven(word & loPlaneMask), compressEven(word >> 1 & loPlaneMask)
}

// InterleavePlanes rebuilds a word from its two bit-planes — the inverse
// of LoHiPlanes. Only the low 32 bits of each plane are used.
func InterleavePlanes(lo, hi uint64) uint64 {
	return expandEven(lo) | expandEven(hi)<<1
}

// SignExtend returns v (a value occupying the low `bits` bits) sign
// extended to 64 bits.
func SignExtend(v uint64, bits int) uint64 {
	if bits <= 0 || bits >= 64 {
		return v
	}
	shift := uint(64 - bits)
	return uint64(int64(v<<shift) >> shift)
}

// FitsSigned reports whether the 64-bit two's-complement value v is
// representable in `bits` bits (sign-extended).
func FitsSigned(v uint64, bits int) bool {
	return SignExtend(v, bits) == v
}
