package memline

import "testing"

// FuzzCountDiffSymbols asserts the word-parallel diff count equals the
// per-cell reference on arbitrary line pairs.
func FuzzCountDiffSymbols(f *testing.F) {
	f.Add(make([]byte, 2*LineBytes))
	seed := make([]byte, 2*LineBytes)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		var a, b Line
		copy(a[:], raw)
		if len(raw) > LineBytes {
			copy(b[:], raw[LineBytes:])
		}
		want := 0
		for c := 0; c < LineCells; c++ {
			if a.Symbol(c) != b.Symbol(c) {
				want++
			}
		}
		if got := a.CountDiffSymbols(&b); got != want {
			t.Fatalf("CountDiffSymbols = %d, reference = %d", got, want)
		}
	})
}

// FuzzMSBRun asserts the branch-free MSBRun equals the bit-walk
// reference.
func FuzzMSBRun(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(0x4000000000000000))
	f.Add(uint64(1))
	f.Fuzz(func(t *testing.T, word uint64) {
		top := word >> 63
		want := 0
		for i := 63; i >= 0; i-- {
			if (word>>uint(i))&1 != top {
				break
			}
			want++
		}
		if got := MSBRun(word); got != want {
			t.Fatalf("MSBRun(%#x) = %d, reference = %d", word, got, want)
		}
	})
}

// FuzzLoHiPlanes asserts the plane decomposition round-trips and is
// linear over XOR (the property FlipMin's candidate sweep relies on).
func FuzzLoHiPlanes(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(0x5555555555555555))
	f.Add(uint64(0x0123456789ABCDEF), uint64(0xAAAAAAAAAAAAAAAA))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		lo, hi := LoHiPlanes(a)
		if InterleavePlanes(lo, hi) != a {
			t.Fatalf("round trip failed for %#x", a)
		}
		blo, bhi := LoHiPlanes(b)
		xlo, xhi := LoHiPlanes(a ^ b)
		if xlo != lo^blo || xhi != hi^bhi {
			t.Fatalf("planes not XOR-linear for %#x ^ %#x", a, b)
		}
	})
}
