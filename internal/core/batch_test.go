package core

import (
	"testing"

	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// batchSchemes is allSchemes plus the counter-keyed families, whose
// batch path must thread the per-job counter through unchanged.
func batchSchemes(t *testing.T) []Scheme {
	t.Helper()
	out := allSchemes(t)
	for _, n := range []string{"VCC-2", "VCC-4", "VCC-8", "Enc(WLCRC-16)"} {
		s, err := NewScheme(n, DefaultConfig())
		if err != nil {
			t.Fatalf("NewScheme(%q): %v", n, err)
		}
		out = append(out, s)
	}
	return out
}

// TestEncodeBatchMatchesPerLine is the batch entry point's contract: for
// every scheme, one EncodeBatchFunc call over a run of address-distinct
// jobs must produce, job for job, exactly the cell vectors the resolved
// per-line counter-aware encode produces — and every encoded line must
// still decode back to its data.
func TestEncodeBatchMatchesPerLine(t *testing.T) {
	rnd := prng.New(99)
	for _, s := range batchSchemes(t) {
		t.Run(s.Name(), func(t *testing.T) {
			n := s.TotalCells()
			enc := EncodeCtrFunc(s)
			encBatch := EncodeBatchFunc(s)
			dec := DecodeCtrFunc(s)
			for round := 0; round < 8; round++ {
				const runLen = 7
				jobs := make([]EncodeJob, runLen)
				data := make([]memline.Line, runLen)
				olds := make([][]pcm.State, runLen)
				for k := 0; k < runLen; k++ {
					data[k] = randomBiasedLine(rnd)
					olds[k] = InitialCells(n)
					if round > 0 { // rewrite path: start from a previous encode
						enc(olds[k], InitialCells(n), uint64(k), 1, &data[k])
						data[k] = randomBiasedLine(rnd)
					}
					jobs[k] = EncodeJob{
						Dst:  make([]pcm.State, n),
						Old:  append([]pcm.State(nil), olds[k]...),
						Addr: uint64(round*runLen + k),
						Ctr:  uint64(round + 1),
						Data: &data[k],
					}
				}
				encBatch(jobs)
				for k := range jobs {
					j := &jobs[k]
					want := make([]pcm.State, n)
					enc(want, olds[k], j.Addr, j.Ctr, &data[k])
					for c := range want {
						if j.Dst[c] != want[c] {
							t.Fatalf("round %d job %d: batch encode differs from per-line encode at cell %d",
								round, k, c)
						}
					}
					var back memline.Line
					dec(j.Dst, j.Addr, j.Ctr, &back)
					if !back.Equal(&data[k]) {
						t.Fatalf("round %d job %d: batch-encoded line fails decode round-trip", round, k)
					}
				}
			}
		})
	}
}

// TestEncodeBatchDoesNotMutateOldOrData pins the aliasing contract the
// shard relies on: the batch encode reads Old and Data but never writes
// them (Old buffers are recycled as future encode targets only after
// the batch settles).
func TestEncodeBatchDoesNotMutateOldOrData(t *testing.T) {
	rnd := prng.New(3)
	for _, s := range batchSchemes(t) {
		n := s.TotalCells()
		encBatch := EncodeBatchFunc(s)
		const runLen = 4
		jobs := make([]EncodeJob, runLen)
		data := make([]memline.Line, runLen)
		oldCopies := make([][]pcm.State, runLen)
		dataCopies := make([]memline.Line, runLen)
		for k := 0; k < runLen; k++ {
			data[k] = randomBiasedLine(rnd)
			old := InitialCells(n)
			oldCopies[k] = append([]pcm.State(nil), old...)
			dataCopies[k] = data[k]
			jobs[k] = EncodeJob{Dst: make([]pcm.State, n), Old: old,
				Addr: uint64(k), Ctr: 1, Data: &data[k]}
		}
		encBatch(jobs)
		for k := range jobs {
			for c := range oldCopies[k] {
				if jobs[k].Old[c] != oldCopies[k][c] {
					t.Fatalf("%s: batch encode mutated job %d's Old at cell %d", s.Name(), k, c)
				}
			}
			if !data[k].Equal(&dataCopies[k]) {
				t.Fatalf("%s: batch encode mutated job %d's Data", s.Name(), k)
			}
		}
	}
}
