package core

import (
	"wlcrc/internal/bch"
	"wlcrc/internal/compress"
	"wlcrc/internal/memline"
)

// Plane-native DIN codec. DIN's whole transform (FPC+BDI, 3-to-4
// expansion, BCH parity) happens on the data line before any cell state
// exists; the stored bit layout then goes through the fixed C1 mapping,
// so the plane path just swaps rawEncode/rawDecode for their plane
// forms and writes the flag into the tail word.

// CompressedWritePlanes implements PlaneCompressionGate.
func (d *DIN) CompressedWritePlanes(planes []uint64) bool {
	return tailFlag(planes) == flagCompressed
}

// EncodePlanesInto implements PlaneScheme.
func (d *DIN) EncodePlanesInto(dst, old []uint64, data *memline.Line) {
	var cBack [(compress.FPCBDIMaxBits + 7) / 8]byte
	cw := compress.WrapBitWriter(cBack[:])
	bits := compress.FPCBDICompressTo(data, &cw)
	if bits > dinMaxCompressed {
		rawEncodePlanes(data, dst)
		setTailFlag(dst, flagUncompressed)
		return
	}
	r := compress.WrapBitReader(cw.Bytes())
	var eBack [memline.LineBytes]byte
	w := compress.WrapBitWriter(eBack[:])
	for i := 0; i < dinMaxCompressed/3; i++ {
		w.WriteBits(uint64(d.enc3to4[r.ReadBits(3)]), 4)
	}
	payload := w.Bytes()
	var msg [dinPayloadBits]uint8
	for i := range msg {
		msg[i] = payload[i/8] >> (uint(i) % 8) & 1
	}
	var parity [bch.ParityBits]uint8
	d.codec.EncodeTo(msg[:], parity[:])
	var stored memline.Line
	for i, b := range msg {
		stored.SetBit(i, int(b))
	}
	for i, b := range parity {
		stored.SetBit(dinPayloadBits+i, int(b))
	}
	rawEncodePlanes(&stored, dst)
	setTailFlag(dst, flagCompressed)
}

// DecodePlanesInto implements PlaneScheme.
func (d *DIN) DecodePlanesInto(planes []uint64, dst *memline.Line) {
	if tailFlag(planes) != flagCompressed {
		rawDecodePlanes(planes, dst)
		return
	}
	var stored memline.Line
	rawDecodePlanes(planes, &stored)
	*dst = d.decodeExpanded(&stored)
}

// decodeExpanded inverts the expansion+BCH layout of a stored line —
// the shared back half of DecodeInto and DecodePlanesInto.
func (d *DIN) decodeExpanded(stored *memline.Line) memline.Line {
	var cw [bch.ParityBits + dinPayloadBits]uint8
	for i := 0; i < dinPayloadBits; i++ {
		cw[bch.ParityBits+i] = uint8(stored.Bit(i))
	}
	for i := 0; i < bch.ParityBits; i++ {
		cw[i] = uint8(stored.Bit(dinPayloadBits + i))
	}
	d.codec.Decode(cw[:])
	var sBack [(dinMaxCompressed + 7) / 8]byte
	w := compress.WrapBitWriter(sBack[:])
	for g := 0; g < dinPayloadBits/4; g++ {
		var v uint8
		for b := 0; b < 4; b++ {
			v |= cw[bch.ParityBits+g*4+b] << uint(b)
		}
		dec := d.dec4to3[v]
		if dec == 255 {
			dec = 0
		}
		w.WriteBits(uint64(dec), 3)
	}
	return compress.FPCBDIDecompress(w.Bytes())
}
