package core

import (
	"wlcrc/internal/bch"
	"wlcrc/internal/compress"
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// DIN (Jiang, Zhang & Yang [16]) removes the high-energy (and most
// disturbance-prone) cell state by remapping every 3 data bits onto a
// 4-bit codeword whose two symbols avoid S4, and protects the line with a
// 20-bit BCH code correcting two write-disturbance errors. The 33%
// expansion only fits when FPC+BDI compresses the line to at most 369
// bits (369 * 4/3 + 20 = 512); otherwise the line is written raw. One
// flag cell records which path was taken.
//
// Fixed layout of an encoded line (bit positions within the 512-bit
// region, all stored through the default mapping):
//
//	[0,   492)  3-to-4 expansion of the FPC+BDI stream zero-padded to 369 bits
//	[492, 512)  BCH parity
type DIN struct {
	em    pcm.EnergyModel
	codec *bch.Code
	// enc3to4[v] is the 4-bit codeword (two symbols, low symbol in bits
	// 0-1) for the 3-bit value v; dec4to3 inverts it (255 = invalid).
	enc3to4 [8]uint8
	dec4to3 [16]uint8
}

// dinMaxCompressed is the FPC+BDI size gate in bits.
const dinMaxCompressed = 369

// dinPayloadBits is the fixed size of the expanded region.
const dinPayloadBits = dinMaxCompressed * 4 / 3 // 492

// NewDIN returns the DIN scheme.
func NewDIN(cfg Config) *DIN {
	d := &DIN{em: cfg.Energy, codec: bch.New()}
	// Allowed symbols avoid the state S4 = C1 mapping of "01": with the
	// default mapping, S4 stores symbol 01 (value 1), so codeword symbols
	// are drawn from {00, 10, 11} = {0, 2, 3}. That yields 9 two-symbol
	// codewords for 8 values.
	allowed := []uint8{0, 2, 3}
	for i := range d.dec4to3 {
		d.dec4to3[i] = 255
	}
	for v := 0; v < 8; v++ {
		lo := allowed[v%3]
		hi := allowed[v/3]
		cw := hi<<2 | lo
		d.enc3to4[v] = cw
		d.dec4to3[cw] = uint8(v)
	}
	return d
}

// Name implements Scheme.
func (*DIN) Name() string { return "DIN" }

// TotalCells implements Scheme: 256 data cells plus the flag cell.
func (*DIN) TotalCells() int { return memline.LineCells + 1 }

// DataCells implements Scheme.
func (*DIN) DataCells() int { return memline.LineCells }

// Compressible reports whether the line passes DIN's FPC+BDI gate; the
// paper finds only ~30% of lines do.
func (d *DIN) Compressible(data *memline.Line) bool {
	return compress.FPCBDISize(data) <= dinMaxCompressed
}

// CompressedWrite implements CompressionGate.
func (d *DIN) CompressedWrite(cells []pcm.State) bool {
	return cells[memline.LineCells] == flagCompressed
}

// Encode implements Scheme.
func (d *DIN) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, d.TotalCells())
	d.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements Scheme.
func (d *DIN) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	var cBack [(compress.FPCBDIMaxBits + 7) / 8]byte
	cw := compress.WrapBitWriter(cBack[:])
	bits := compress.FPCBDICompressTo(data, &cw)
	if bits > dinMaxCompressed {
		rawEncode(data, dst)
		dst[memline.LineCells] = flagUncompressed
		return
	}
	// Zero-pad the stream to exactly 369 bits and expand 3 bits -> 4.
	r := compress.WrapBitReader(cw.Bytes())
	var eBack [memline.LineBytes]byte
	w := compress.WrapBitWriter(eBack[:])
	for i := 0; i < dinMaxCompressed/3; i++ {
		w.WriteBits(uint64(d.enc3to4[r.ReadBits(3)]), 4)
	}
	// BCH parity over the expanded payload.
	payload := w.Bytes()
	var msg [dinPayloadBits]uint8
	for i := range msg {
		msg[i] = payload[i/8] >> (uint(i) % 8) & 1
	}
	var parity [bch.ParityBits]uint8
	d.codec.EncodeTo(msg[:], parity[:])
	// Lay out payload then parity as line bits, store through C1.
	var stored memline.Line
	for i, b := range msg {
		stored.SetBit(i, int(b))
	}
	for i, b := range parity {
		stored.SetBit(dinPayloadBits+i, int(b))
	}
	rawEncode(&stored, dst)
	dst[memline.LineCells] = flagCompressed
}

// Decode implements Scheme.
func (d *DIN) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	d.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements Scheme.
func (d *DIN) DecodeInto(cells []pcm.State, dst *memline.Line) {
	if cells[memline.LineCells] != flagCompressed {
		rawDecodeInto(cells, dst)
		return
	}
	var stored memline.Line
	rawDecodeInto(cells, &stored)
	// Rebuild the BCH codeword (parity first, then message) and correct
	// up to two errors. In normal simulator operation there are none —
	// disturbance errors are modeled statistically, not injected — but
	// CorrectLine exposes the repair path and tests exercise it.
	var cw [bch.ParityBits + dinPayloadBits]uint8
	for i := 0; i < dinPayloadBits; i++ {
		cw[bch.ParityBits+i] = uint8(stored.Bit(i))
	}
	for i := 0; i < bch.ParityBits; i++ {
		cw[i] = uint8(stored.Bit(dinPayloadBits + i))
	}
	d.codec.Decode(cw[:])
	// De-expand 4 -> 3.
	var sBack [(dinMaxCompressed + 7) / 8]byte
	w := compress.WrapBitWriter(sBack[:])
	for g := 0; g < dinPayloadBits/4; g++ {
		var v uint8
		for b := 0; b < 4; b++ {
			v |= cw[bch.ParityBits+g*4+b] << uint(b)
		}
		dec := d.dec4to3[v]
		if dec == 255 {
			dec = 0 // uncorrectable garbage; decode deterministically
		}
		w.WriteBits(uint64(dec), 3)
	}
	*dst = compress.FPCBDIDecompress(w.Bytes())
}

// CorrectLine runs the BCH verification step of DIN on a stored cell
// vector with up to two flipped payload bits, returning the number of
// corrected bits. It is the VnR hook the paper describes.
func (d *DIN) CorrectLine(cells []pcm.State) int {
	if cells[memline.LineCells] != flagCompressed {
		return 0
	}
	stored := rawDecode(cells)
	var cw [bch.ParityBits + dinPayloadBits]uint8
	for i := 0; i < dinPayloadBits; i++ {
		cw[bch.ParityBits+i] = uint8(stored.Bit(i))
	}
	for i := 0; i < bch.ParityBits; i++ {
		cw[i] = uint8(stored.Bit(dinPayloadBits + i))
	}
	n, ok := d.codec.Decode(cw[:])
	if !ok {
		return 0
	}
	if n > 0 {
		var fixed memline.Line
		for i := 0; i < dinPayloadBits; i++ {
			fixed.SetBit(i, int(cw[bch.ParityBits+i]))
		}
		for i := 0; i < bch.ParityBits; i++ {
			fixed.SetBit(dinPayloadBits+i, int(cw[i]))
		}
		for c := 0; c < memline.LineCells; c++ {
			cells[c] = coset.C1[fixed.Symbol(c)]
		}
	}
	return n
}
