package core

import (
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// EncodeJob is one line of a batch encode: the destination cell vector,
// the line's current cells, the routing/counter context, and the data to
// store. Dst and Old must not alias, and no two jobs of one batch may
// share an address (the caller breaks batches on address repeats, since
// the second write's Old would be the first write's Dst).
type EncodeJob struct {
	Dst, Old []pcm.State
	Addr     uint64
	Ctr      uint64
	Data     *memline.Line
}

// BatchEncoder is the optional Scheme extension for encoders that can
// price several lines per call. A single EncodeBatchInto invocation must
// be equivalent to calling the (counter-aware) per-line encode on each
// job in order; its point is amortization — SWAR cost tables, coset
// selectors and per-scheme lookup state are loaded once and stay hot in
// cache across the whole batch instead of being re-fetched line by line.
type BatchEncoder interface {
	EncodeBatchInto(jobs []EncodeJob)
}

// EncodeBatchFunc resolves a scheme's line-batch encode entry point
// once, the batch counterpart of EncodeCtrFunc: schemes implementing
// BatchEncoder get their native multi-line path; everything else gets a
// tight loop over the resolved counter-aware encode, which still hoists
// the interface dispatch and counter-scheme type test out of the
// per-line path. Replay frontends resolve at construction and feed the
// returned function runs of independent lines, so one scheme's tables
// are reused across the run instead of competing with every other
// scheme's on every request.
func EncodeBatchFunc(s Scheme) func(jobs []EncodeJob) {
	if bs, ok := s.(BatchEncoder); ok {
		return bs.EncodeBatchInto
	}
	enc := EncodeCtrFunc(s)
	return func(jobs []EncodeJob) {
		for k := range jobs {
			j := &jobs[k]
			enc(j.Dst, j.Old, j.Addr, j.Ctr, j.Data)
		}
	}
}
