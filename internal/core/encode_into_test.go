package core

import (
	"reflect"
	"testing"

	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// randomOld fills a plausible pre-write cell vector: a mix of fresh
// (all-S1) regions and fully random states, so both first-write and
// steady-state differential behavior are exercised.
func randomOld(r *prng.Xoshiro256, n int) []pcm.State {
	old := make([]pcm.State, n)
	if r.Bool(0.25) {
		return old // fresh line
	}
	for i := range old {
		old[i] = pcm.State(r.Intn(pcm.NumStates))
	}
	return old
}

// TestEncodeIntoMatchesEncode is the new-vs-old path equivalence
// property: for every scheme, EncodeInto into garbage-prefilled caller
// storage must produce exactly the states the allocating Encode wrapper
// returns, and both must decode back to the written data (through both
// Decode and DecodeInto), over randomized old-state/data corpora
// covering compressible and incompressible content.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	r := prng.New(20260727)
	for _, s := range allSchemes(t) {
		n := s.TotalCells()
		for trial := 0; trial < 60; trial++ {
			data := randomBiasedLine(r)
			old := randomOld(r, n)
			want := s.Encode(old, &data)

			// Garbage-prefill dst: EncodeInto must overwrite every cell.
			dst := make([]pcm.State, n)
			for i := range dst {
				dst[i] = pcm.State(r.Intn(pcm.NumStates))
			}
			s.EncodeInto(dst, old, &data)
			if !reflect.DeepEqual(want, dst) {
				t.Fatalf("%s: EncodeInto differs from Encode at trial %d", s.Name(), trial)
			}

			got := s.Decode(dst)
			if !got.Equal(&data) {
				t.Fatalf("%s: Decode round trip failed at trial %d", s.Name(), trial)
			}
			// DecodeInto must fully overwrite garbage too.
			var into memline.Line
			r.Fill(into[:])
			s.DecodeInto(dst, &into)
			if !into.Equal(&data) {
				t.Fatalf("%s: DecodeInto round trip failed at trial %d", s.Name(), trial)
			}
		}
	}
}

// TestEncodeIntoStableUnderRewrites chains EncodeInto over its own
// output (the replay steady state, with the buffer-swap discipline the
// simulator uses) and cross-checks every step against the allocating
// path.
func TestEncodeIntoStableUnderRewrites(t *testing.T) {
	r := prng.New(4242)
	for _, s := range allSchemes(t) {
		n := s.TotalCells()
		stored := InitialCells(n)
		scratch := make([]pcm.State, n)
		for step := 0; step < 25; step++ {
			data := randomBiasedLine(r)
			want := s.Encode(stored, &data)
			s.EncodeInto(scratch, stored, &data)
			if !reflect.DeepEqual(want, scratch) {
				t.Fatalf("%s: step %d: EncodeInto diverges from Encode", s.Name(), step)
			}
			stored, scratch = scratch, stored
			got := s.Decode(stored)
			if !got.Equal(&data) {
				t.Fatalf("%s: step %d: decode mismatch", s.Name(), step)
			}
		}
	}
}

// TestEncodeIntoDoesNotMutateOld guards the EncodeInto contract the way
// TestEncodeDoesNotMutateOld guards Encode's.
func TestEncodeIntoDoesNotMutateOld(t *testing.T) {
	r := prng.New(6)
	for _, s := range allSchemes(t) {
		data := randomBiasedLine(r)
		old := randomOld(r, s.TotalCells())
		snapshot := append([]pcm.State(nil), old...)
		dst := make([]pcm.State, s.TotalCells())
		s.EncodeInto(dst, old, &data)
		if !reflect.DeepEqual(old, snapshot) {
			t.Errorf("%s: EncodeInto mutated old", s.Name())
		}
	}
}

// TestCompressionGateMatchesFlag pins the hoisted flag-cell convention:
// the CompressionGate classification must agree with the scheme's
// Compressible predicate on every write.
func TestCompressionGateMatchesFlag(t *testing.T) {
	type compressible interface{ Compressible(*memline.Line) bool }
	r := prng.New(99)
	for _, s := range allSchemes(t) {
		gate, gated := s.(CompressionGate)
		comp, hasComp := s.(compressible)
		if gated != hasComp {
			t.Errorf("%s: CompressionGate %v but Compressible %v", s.Name(), gated, hasComp)
			continue
		}
		if !gated {
			continue
		}
		for trial := 0; trial < 40; trial++ {
			data := randomBiasedLine(r)
			cells := s.Encode(InitialCells(s.TotalCells()), &data)
			if got, want := gate.CompressedWrite(cells), comp.Compressible(&data); got != want {
				t.Fatalf("%s: CompressedWrite = %v, Compressible = %v", s.Name(), got, want)
			}
		}
	}
}
