package core

import (
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// Plane-native codecs of the whole-line schemes: FlipMin, FNW, and the
// (restricted) line-coset family. Each mirrors its scalar EncodeInto /
// DecodeInto exactly — same candidate sweeps, same tie-breaks — but
// reads old state via SetOldPlanes and emits new state as planes, so
// neither PackStates nor UnpackStates runs on the hot path.

// planeOrSet stores state s into cell c of a plane-resident line whose
// target bits are known to be zero (an OR-only PlaneSet for freshly
// zeroed tail words).
func planeOrSet(planes []uint64, c int, s pcm.State) {
	w, b := c>>5, uint(c&31)
	planes[2*w] |= uint64(s&1) << b
	planes[2*w+1] |= uint64(s>>1) << b
}

// zeroTail clears every plane word of dst from cell 256 up — the aux
// region writers then OR their states in, and the tail-zero invariant
// holds for free.
func zeroTail(dst []uint64) {
	for i := tailWord; i < len(dst); i++ {
		dst[i] = 0
	}
}

// setTailBitsPlanes packs auxiliary bits into the (zeroed) tail under
// the identity AuxPack layout: bit 2k goes to the low plane and bit
// 2k+1 to the high plane of cell 256+k — the plane form of
// coset.PackBitsToStates over the aux region.
func setTailBitsPlanes(dst []uint64, bits []uint8) {
	for j, b := range bits {
		c := memline.LineCells + j/2
		w, pos := c>>5, uint(c&31)
		dst[2*w+j%2] |= uint64(b&1) << pos
	}
}

// tailBitsPlanes reads back the bits stored by setTailBitsPlanes.
func tailBitsPlanes(planes []uint64, bits []uint8) {
	for j := range bits {
		c := memline.LineCells + j/2
		w, pos := c>>5, uint(c&31)
		bits[j] = uint8(planes[2*w+j%2]>>pos) & 1
	}
}

// FlipMin ---------------------------------------------------------------

// EncodePlanesInto implements PlaneScheme: the same 16-candidate
// XOR-plane sweep as EncodeInto, with the winner's planes stored
// directly.
func (f *FlipMin) EncodePlanesInto(dst, old []uint64, data *memline.Line) {
	var lp linePlanes
	lp.initPlanes(data, old)
	bestIdx, bestCost := 0, -1.0
	for i := range f.maskPlanes {
		var cnt [4]int
		for w := 0; w < memline.LineWords; w++ {
			p := &lp[w]
			m := &f.maskPlanes[i][w]
			f.swar.CountsPlanes(p.Lo^m[0], p.Hi^m[1], p, coset.AllCells, &cnt)
		}
		cost, _ := f.swar.CostOf(&cnt)
		if bestCost < 0 || cost < bestCost {
			bestIdx, bestCost = i, cost
		}
	}
	for w := 0; w < memline.LineWords; w++ {
		m := &f.maskPlanes[bestIdx][w]
		dst[2*w], dst[2*w+1] = f.swar.ApplyPlanes(lp[w].Lo^m[0], lp[w].Hi^m[1])
	}
	setTailBits4(dst, uint8(bestIdx))
}

// DecodePlanesInto implements PlaneScheme.
func (f *FlipMin) DecodePlanesInto(planes []uint64, dst *memline.Line) {
	idx := int(tailBits4(planes))
	rawDecodePlanes(planes, dst)
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, dst.Word(w)^f.maskWords[idx][w])
	}
}

// FNW -------------------------------------------------------------------

// EncodePlanesInto implements PlaneScheme.
func (f *FNW) EncodePlanesInto(dst, old []uint64, data *memline.Line) {
	var lp linePlanes
	lp.initPlanes(data, old)
	var ns newStates
	var bits uint8
	for b := 0; b < fnwBlocks; b++ {
		lo := b * fnwBlockCells
		hi := lo + fnwBlockCells
		costKeep, _ := lp.blockCost(&f.swarKeep, lo, hi)
		costFlip, _ := lp.blockCost(&f.swarFlip, lo, hi)
		tab := &f.swarKeep
		if costFlip < costKeep {
			bits |= 1 << uint(b)
			tab = &f.swarFlip
		}
		ns.applyBlock(tab, &lp, lo, hi)
	}
	ns.writePlanes(dst, memline.LineCells)
	setTailBits4(dst, bits)
}

// DecodePlanesInto implements PlaneScheme.
func (f *FNW) DecodePlanesInto(planes []uint64, dst *memline.Line) {
	bits := tailBits4(planes)
	var sp lineStatePlanes
	sp.fromPlanes(planes, memline.LineWords)
	var dw dataWords
	for b := 0; b < fnwBlocks; b++ {
		lo := b * fnwBlockCells
		tab := &f.swarKeep
		if bits>>uint(b)&1 == 1 {
			tab = &f.swarFlip
		}
		dw.decodeBlock(tab, &sp, lo, lo+fnwBlockCells)
	}
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, dw.word(w))
	}
}

// LineCosets ------------------------------------------------------------

func (s *LineCosets) writeAuxPlanes(dst []uint64, block, idx int) {
	base := memline.LineCells + block*s.auxPerBlk
	if s.auxPerBlk == 1 {
		planeOrSet(dst, base, pcm.State(idx))
		return
	}
	pair := s.pairs[idx]
	planeOrSet(dst, base, pair[0])
	planeOrSet(dst, base+1, pair[1])
}

func (s *LineCosets) readAuxPlanes(planes []uint64, block int) int {
	base := memline.LineCells + block*s.auxPerBlk
	if s.auxPerBlk == 1 {
		idx := int(coset.PlaneGet(planes, base))
		if idx >= len(s.cands) {
			idx = 0
		}
		return idx
	}
	key := [2]pcm.State{coset.PlaneGet(planes, base), coset.PlaneGet(planes, base+1)}
	if idx, ok := s.pairIdx[key]; ok {
		return idx
	}
	return 0
}

// EncodePlanesInto implements PlaneScheme.
func (s *LineCosets) EncodePlanesInto(dst, old []uint64, data *memline.Line) {
	var lp linePlanes
	lp.initPlanes(data, old)
	var ns newStates
	zeroTail(dst)
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		hi := lo + s.blockCells
		idx, _ := lp.bestBlock(s.swar, lo, hi)
		ns.applyBlock(&s.swar[idx], &lp, lo, hi)
		s.writeAuxPlanes(dst, b, idx)
	}
	ns.writePlanes(dst, memline.LineCells)
}

// DecodePlanesInto implements PlaneScheme.
func (s *LineCosets) DecodePlanesInto(planes []uint64, dst *memline.Line) {
	var sp lineStatePlanes
	sp.fromPlanes(planes, memline.LineWords)
	var dw dataWords
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		dw.decodeBlock(&s.swar[s.readAuxPlanes(planes, b)], &sp, lo, lo+s.blockCells)
	}
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, dw.word(w))
	}
}

// RestrictedLineCosets --------------------------------------------------

// EncodePlanesInto implements PlaneScheme.
func (s *RestrictedLineCosets) EncodePlanesInto(dst, old []uint64, data *memline.Line) {
	var lp linePlanes
	lp.initPlanes(data, old)
	var costs [2]float64
	var choices [2][rlcMaxBlocks]uint8
	for g := 0; g < 2; g++ {
		alt := &s.swarAlt[g]
		var total float64
		for b := 0; b < s.nblocks; b++ {
			lo := b * s.blockCells
			hi := lo + s.blockCells
			c1, _ := lp.blockCost(&s.swar1, lo, hi)
			ca, _ := lp.blockCost(alt, lo, hi)
			if ca < c1 {
				choices[g][b] = 1
				total += ca
			} else {
				total += c1
			}
		}
		costs[g] = total
	}
	group := 0
	if costs[1] < costs[0] {
		group = 1
	}
	alt := &s.swarAlt[group]
	choice := &choices[group]

	var ns newStates
	var bits [1 + rlcMaxBlocks]uint8
	bits[0] = uint8(group)
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		tab := &s.swar1
		if choice[b] == 1 {
			tab = alt
		}
		ns.applyBlock(tab, &lp, lo, lo+s.blockCells)
		bits[1+b] = choice[b]
	}
	ns.writePlanes(dst, memline.LineCells)
	zeroTail(dst)
	setTailBitsPlanes(dst, bits[:1+s.nblocks])
}

// DecodePlanesInto implements PlaneScheme.
func (s *RestrictedLineCosets) DecodePlanesInto(planes []uint64, dst *memline.Line) {
	var bits [1 + rlcMaxBlocks]uint8
	tailBitsPlanes(planes, bits[:1+s.nblocks])
	alt := &s.swarAlt[bits[0]&1]
	var sp lineStatePlanes
	sp.fromPlanes(planes, memline.LineWords)
	var dw dataWords
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		tab := &s.swar1
		if bits[1+b] == 1 {
			tab = alt
		}
		dw.decodeBlock(tab, &sp, lo, lo+s.blockCells)
	}
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, dw.word(w))
	}
}
