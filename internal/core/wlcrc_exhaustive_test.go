package core

import (
	"testing"

	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// bruteForceWordCost enumerates every legal WLCRC-16 encoding of one
// word — 2 groups x 2^4 per-block candidate choices — materializes the
// cell states exactly as commit() would, and returns the minimum
// differential-write cost. This independently validates the encoder's
// two-pass plan search (Algorithm 1 plus aux-cell accounting).
func bruteForceWordCost(s *WLCRC, word uint64, old []pcm.State) float64 {
	em := s.em
	var syms [memline.WordCells]uint8
	for c := 0; c < memline.WordCells; c++ {
		syms[c] = uint8(word >> (uint(c) * 2) & 3)
	}
	best := -1.0
	out := make([]pcm.State, memline.WordCells)
	for group := uint8(0); group <= 1; group++ {
		for mask := 0; mask < 1<<len(s.geom.blocks); mask++ {
			plan := wordPlan{group: group}
			for b := 0; b < len(s.geom.blocks); b++ {
				plan.cands[b] = uint8(mask >> uint(b) & 1)
			}
			copy(out, old)
			s.commit(&plan, syms[:], out)
			var cost float64
			for c := range out {
				if out[c] != old[c] {
					cost += em.WriteEnergy(out[c])
				}
			}
			if best < 0 || cost < best {
				best = cost
			}
		}
	}
	return best
}

// The encoder implements the paper's Algorithm 1: per-block greedy
// candidate selection inside each group, then a group-level compare.
// That is NOT globally optimal — a block's candidate bit also sits in a
// shared auxiliary cell, so a locally-worse candidate can occasionally
// buy a cheaper aux symbol. The tests below bound the greedy gap: the
// encoder can never beat the exhaustive optimum, and it can only lose by
// aux-cell coupling (at most two shared aux cells' worth of energy), and
// on average the gap must be tiny.
func TestWLCRC16PlanSearchNearOptimal(t *testing.T) {
	testPlanSearchNearOptimal(t, 16, 58, 2024)
}

func TestWLCRC32PlanSearchNearOptimal(t *testing.T) {
	testPlanSearchNearOptimal(t, 32, 60, 77)
}

func testPlanSearchNearOptimal(t *testing.T, gran, payloadBits int, seed uint64) {
	t.Helper()
	s, err := NewWLCRC(DefaultConfig(), gran)
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(seed)
	em := s.em
	// Worst possible coupling loss: two shared aux cells rewritten into
	// the most expensive state.
	maxGap := 2 * em.WriteEnergy(pcm.S4)
	var totalGot, totalOpt float64
	for trial := 0; trial < 500; trial++ {
		word := memline.SignExtend(r.Uint64()&(1<<uint(payloadBits)-1), payloadBits+1)
		old := make([]pcm.State, memline.WordCells)
		for i := range old {
			old[i] = pcm.State(r.Intn(pcm.NumStates))
		}
		out := make([]pcm.State, memline.WordCells)
		copy(out, old)
		s.encodeWord(word, old, out)
		var got float64
		for c := range out {
			if out[c] != old[c] {
				got += em.WriteEnergy(out[c])
			}
		}
		want := bruteForceWordCost(s, word, old)
		if got < want-1e-9 {
			t.Fatalf("trial %d: encoder cost %.1f beats the exhaustive optimum %.1f — brute force is broken",
				trial, got, want)
		}
		if got > want+maxGap+1e-9 {
			t.Fatalf("trial %d: greedy gap %.1f exceeds the aux-coupling bound %.1f (word %#x)",
				trial, got-want, maxGap, word)
		}
		totalGot += got
		totalOpt += want
	}
	gap := (totalGot - totalOpt) / totalOpt
	if gap > 0.02 {
		t.Errorf("average greedy gap %.2f%%, want <= 2%%", 100*gap)
	}
	t.Logf("gran %d: average greedy-vs-exhaustive gap %.3f%%", gran, 100*gap)
}

// TestWLCRC16AuxLayoutGolden pins the physical aux-bit layout of
// DESIGN.md §3 so a refactor cannot silently change the stored format:
// b59=cand3, b60=cand2, b61=cand1, b62=cand0, b63=group, all aux cells
// through C1.
func TestWLCRC16AuxLayoutGolden(t *testing.T) {
	s, err := NewWLCRC(DefaultConfig(), 16)
	if err != nil {
		t.Fatal(err)
	}
	// All-ones data over fresh cells: every block prefers an alternate
	// candidate mapping 11 -> S1, i.e. cand bits 1111. Both groups cost
	// zero on data cells (C2 and C3 both map 11 to S1 = the fresh
	// state), so the aux cells decide: cell31 holds (group, cand0), and
	// with cand0 = 1 the C3 group's symbol 11 stores as S3 (343 pJ)
	// versus the C2 group's symbol 01 as S4 (583 pJ) — the encoder must
	// pick group 1.
	var data memline.Line
	for i := range data {
		data[i] = 0xff
	}
	// Make the line compressible but keep block contents all-ones: the
	// top 6 bits of each word are already all 1 = compressible.
	cells := s.Encode(InitialCells(s.TotalCells()), &data)
	if cells[memline.LineCells] != flagCompressed {
		t.Fatal("line must compress")
	}
	inv := coset.C1.Inverse()
	for w := 0; w < memline.LineWords; w++ {
		base := w * memline.WordCells
		// cell29 = (cand3, b58): b58 = 1 (data bit), cand3 = 1.
		if got := inv[cells[base+29]]; got != 0b11 {
			t.Errorf("word %d cell29 symbol = %02b, want 11", w, got)
		}
		// cell30 = (cand1, cand2) = 11.
		if got := inv[cells[base+30]]; got != 0b11 {
			t.Errorf("word %d cell30 symbol = %02b, want 11", w, got)
		}
		// cell31 = (group, cand0): group 1 (cheaper aux), cand0 = 1.
		if got := inv[cells[base+31]]; got != 0b11 {
			t.Errorf("word %d cell31 symbol = %02b, want 11 (group=1, cand0=1)", w, got)
		}
		// Data cells of blocks 0..2 hold 11 -> S1 under C3.
		for c := 0; c < 24; c++ {
			if cells[base+c] != pcm.S1 {
				t.Fatalf("word %d cell %d = %v, want S1 (C3 maps 11 there)", w, c, cells[base+c])
			}
		}
	}
}

// TestWLCRCBlockRangesCellAligned asserts the geometry table invariants
// for every granularity.
func TestWLCRCBlockRangesCellAligned(t *testing.T) {
	for gran, g := range wlcrcGeoms {
		covered := make([]bool, memline.WordCells)
		for _, rng := range g.blocks {
			if rng[0] < 0 || rng[1] > g.dataCells || rng[0] >= rng[1] {
				t.Errorf("gran %d: bad block range %v", gran, rng)
			}
			for c := rng[0]; c < rng[1]; c++ {
				if covered[c] {
					t.Errorf("gran %d: cell %d in two blocks", gran, c)
				}
				covered[c] = true
			}
		}
		for c := 0; c < g.dataCells; c++ {
			if !covered[c] {
				t.Errorf("gran %d: data cell %d not in any block", gran, c)
			}
		}
		// Aux bits required must fit the reclaimed field: one bit per
		// block plus a group bit (except gran 64: a 2-bit index).
		need := len(g.blocks) + 1
		if gran == 64 {
			need = 2
		}
		if need > g.reclaim {
			t.Errorf("gran %d: %d aux bits > %d reclaimed", gran, need, g.reclaim)
		}
		// Data bits + reclaimed bits must cover the word exactly.
		dataBits := g.dataCells * 2
		if g.mixed {
			dataBits++
		}
		if dataBits+g.reclaim != memline.WordBits {
			t.Errorf("gran %d: %d data + %d reclaimed != 64", gran, dataBits, g.reclaim)
		}
	}
}
