package core

import (
	"wlcrc/internal/compress"
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// COC4 is the COC+4cosets scheme of §VIII: the line is compressed with
// the coverage-oriented menu, and the freed space holds per-block
// candidate indices for the four Table I cosets. Lines compressing to at
// most 448 bits are encoded at 16-bit granularity, lines at most 480
// bits at 32-bit granularity, and everything else is written raw.
//
// The stored layout is fixed per mode so the decoder can locate the
// auxiliary bits before it knows any block's mapping:
//
//	16-bit mode: payload cells 0..223 (448 bits), 28 blocks, aux bits in
//	             cells 224..251 (two bits per block through C1).
//	32-bit mode: payload cells 0..239 (480 bits), 15 blocks, aux bits in
//	             cells 240..254.
//
// Cells beyond the aux region are left untouched. The flag cell
// disambiguates the three modes; per the paper the overwhelmingly common
// 16-bit mode gets the lowest-energy state.
type COC4 struct {
	em   pcm.EnergyModel
	tabs []coset.CostTable // Table I candidate pricing
	swar []coset.SWARTable // word-parallel pricing/apply of the same candidates
}

const (
	coc16PayloadBits  = 448
	coc16PayloadCells = coc16PayloadBits / 2
	coc16Blocks       = coc16PayloadBits / 16
	coc32PayloadBits  = 480
	coc32PayloadCells = coc32PayloadBits / 2
	coc32Blocks       = coc32PayloadBits / 32

	cocFlag16  = pcm.S1
	cocFlag32  = pcm.S2
	cocFlagRaw = pcm.S3
)

// NewCOC4 returns the COC+4cosets scheme.
func NewCOC4(cfg Config) *COC4 {
	return &COC4{
		em:   cfg.Energy,
		tabs: coset.CostTables(&cfg.Energy, coset.Table1[:]),
		swar: coset.SWARTables(&cfg.Energy, coset.Table1[:]),
	}
}

// Name implements Scheme.
func (*COC4) Name() string { return "COC+4cosets" }

// TotalCells implements Scheme.
func (*COC4) TotalCells() int { return memline.LineCells + 1 }

// DataCells implements Scheme.
func (*COC4) DataCells() int { return memline.LineCells }

// Compressible reports whether the line fits one of the two encoded
// modes (the paper: COC compresses more than 90% of lines).
func (s *COC4) Compressible(data *memline.Line) bool {
	return compress.COCSize(data) <= coc32PayloadBits
}

// CompressedWrite implements CompressionGate: both the 16- and the
// 32-bit mode count as encoded; only the raw fallback does not.
func (s *COC4) CompressedWrite(cells []pcm.State) bool {
	flag := cells[memline.LineCells]
	return flag == cocFlag16 || flag == cocFlag32
}

// Encode implements Scheme.
func (s *COC4) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, s.TotalCells())
	s.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements Scheme.
func (s *COC4) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	copy(dst, old)
	var backing [(compress.COCMaxBits + 7) / 8]byte
	w := compress.WrapBitWriter(backing[:])
	bits := compress.COCCompressTo(data, &w)
	switch {
	case bits <= coc16PayloadBits:
		s.encodeMode(dst, old, w.Bytes(), coc16PayloadCells, 8, coc16Blocks)
		dst[memline.LineCells] = cocFlag16
	case bits <= coc32PayloadBits:
		s.encodeMode(dst, old, w.Bytes(), coc32PayloadCells, 16, coc32Blocks)
		dst[memline.LineCells] = cocFlag32
	default:
		rawEncode(data, dst)
		dst[memline.LineCells] = cocFlagRaw
	}
}

// encodeMode coset-encodes the compressed payload. blockCells is the
// block granularity in cells (8 = 16 bits, 16 = 32 bits).
func (s *COC4) encodeMode(out, old []pcm.State, buf []byte, payloadCells, blockCells, nblocks int) {
	// View the (zero-padded) compressed stream as a line prefix.
	var payload memline.Line
	copy(payload[:], buf)
	var lp linePlanes
	lp.initWords(&payload, old, (payloadCells+memline.WordCells-1)/memline.WordCells)
	var ns newStates
	var auxBits [2 * coc16Blocks]uint8
	for b := 0; b < nblocks; b++ {
		lo := b * blockCells
		hi := lo + blockCells
		idx, _ := lp.bestBlock(s.swar, lo, hi)
		ns.applyBlock(&s.swar[idx], &lp, lo, hi)
		auxBits[2*b] = uint8(idx) & 1
		auxBits[2*b+1] = uint8(idx) >> 1
	}
	// Only the payload cells are unpacked; the aux region and anything
	// beyond keep their old states until PackBitsToStates below.
	ns.unpack(out, payloadCells)
	coset.PackBitsToStates(auxBits[:2*nblocks], out[payloadCells:payloadCells+nblocks])
}

// Decode implements Scheme.
func (s *COC4) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	s.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements Scheme.
func (s *COC4) DecodeInto(cells []pcm.State, dst *memline.Line) {
	switch cells[memline.LineCells] {
	case cocFlag16:
		*dst = s.decodeMode(cells, coc16PayloadCells, 8, coc16Blocks)
	case cocFlag32:
		*dst = s.decodeMode(cells, coc32PayloadCells, 16, coc32Blocks)
	default:
		rawDecodeInto(cells, dst)
	}
}

func (s *COC4) decodeMode(cells []pcm.State, payloadCells, blockCells, nblocks int) memline.Line {
	var auxBits [2 * coc16Blocks]uint8
	coset.UnpackBits(cells[payloadCells:payloadCells+nblocks], auxBits[:2*nblocks])
	var sp lineStatePlanes
	sp.initWords(cells, (payloadCells+memline.WordCells-1)/memline.WordCells)
	var dw dataWords
	for b := 0; b < nblocks; b++ {
		lo := b * blockCells
		idx := int(auxBits[2*b]) | int(auxBits[2*b+1])<<1
		dw.decodeBlock(&s.swar[idx], &sp, lo, lo+blockCells)
	}
	var payload memline.Line
	for w := 0; w*memline.WordCells < payloadCells; w++ {
		payload.SetWord(w, dw.word(w))
	}
	return compress.COCDecompress(payload[:])
}
