package core

import (
	"wlcrc/internal/compress"
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
)

// Plane-native codecs of the compression-gated schemes COC+4cosets and
// WLC+Ncosets. The compression front-ends are unchanged (they work on
// the data line, not on cell states); only the coset-state plumbing
// moves to planes.

// COC+4cosets -----------------------------------------------------------

// CompressedWritePlanes implements PlaneCompressionGate.
func (s *COC4) CompressedWritePlanes(planes []uint64) bool {
	flag := tailFlag(planes)
	return flag == cocFlag16 || flag == cocFlag32
}

// EncodePlanesInto implements PlaneScheme. The copy-from-old becomes an
// 18-word plane copy instead of a 257-byte state copy.
func (s *COC4) EncodePlanesInto(dst, old []uint64, data *memline.Line) {
	copy(dst, old)
	var backing [(compress.COCMaxBits + 7) / 8]byte
	w := compress.WrapBitWriter(backing[:])
	bits := compress.COCCompressTo(data, &w)
	switch {
	case bits <= coc16PayloadBits:
		s.encodeModePlanes(dst, old, w.Bytes(), coc16PayloadCells, 8, coc16Blocks)
		setTailFlag(dst, cocFlag16)
	case bits <= coc32PayloadBits:
		s.encodeModePlanes(dst, old, w.Bytes(), coc32PayloadCells, 16, coc32Blocks)
		setTailFlag(dst, cocFlag32)
	default:
		rawEncodePlanes(data, dst)
		setTailFlag(dst, cocFlagRaw)
	}
}

// encodeModePlanes is encodeMode on plane storage. The aux region —
// cells [payloadCells, payloadCells+nblocks), always inside word 7 —
// is two candidate-index bit vectors merged in with one masked RMW per
// plane; the cells above it keep the old states the initial copy
// brought in.
func (s *COC4) encodeModePlanes(dst, old []uint64, buf []byte, payloadCells, blockCells, nblocks int) {
	var payload memline.Line
	copy(payload[:], buf)
	var lp linePlanes
	lp.initWordsPlanes(&payload, old, (payloadCells+memline.WordCells-1)/memline.WordCells)
	var ns newStates
	var auxLo, auxHi uint64
	for b := 0; b < nblocks; b++ {
		lo := b * blockCells
		hi := lo + blockCells
		idx, _ := lp.bestBlock(s.swar, lo, hi)
		ns.applyBlock(&s.swar[idx], &lp, lo, hi)
		auxLo |= uint64(idx&1) << uint(b)
		auxHi |= uint64(idx>>1) << uint(b)
	}
	ns.writePlanes(dst, payloadCells)
	wa := payloadCells / memline.WordCells
	shift := uint(payloadCells & (memline.WordCells - 1))
	mask := coset.CellMask(int(shift), nblocks)
	dst[2*wa] = dst[2*wa]&^mask | auxLo<<shift
	dst[2*wa+1] = dst[2*wa+1]&^mask | auxHi<<shift
}

// DecodePlanesInto implements PlaneScheme.
func (s *COC4) DecodePlanesInto(planes []uint64, dst *memline.Line) {
	switch tailFlag(planes) {
	case cocFlag16:
		*dst = s.decodeModePlanes(planes, coc16PayloadCells, 8, coc16Blocks)
	case cocFlag32:
		*dst = s.decodeModePlanes(planes, coc32PayloadCells, 16, coc32Blocks)
	default:
		rawDecodePlanes(planes, dst)
	}
}

func (s *COC4) decodeModePlanes(planes []uint64, payloadCells, blockCells, nblocks int) memline.Line {
	wa := payloadCells / memline.WordCells
	shift := uint(payloadCells & (memline.WordCells - 1))
	auxLo := planes[2*wa] >> shift
	auxHi := planes[2*wa+1] >> shift
	var sp lineStatePlanes
	sp.fromPlanes(planes, (payloadCells+memline.WordCells-1)/memline.WordCells)
	var dw dataWords
	for b := 0; b < nblocks; b++ {
		lo := b * blockCells
		idx := int(auxLo>>uint(b)&1) | int(auxHi>>uint(b)&1)<<1
		dw.decodeBlock(&s.swar[idx], &sp, lo, lo+blockCells)
	}
	var payload memline.Line
	for w := 0; w*memline.WordCells < payloadCells; w++ {
		payload.SetWord(w, dw.word(w))
	}
	return compress.COCDecompress(payload[:])
}

// WLC+Ncosets -----------------------------------------------------------

// CompressedWritePlanes implements PlaneCompressionGate.
func (s *WLCCosets) CompressedWritePlanes(planes []uint64) bool {
	return tailFlag(planes) == flagCompressed
}

// EncodePlanesInto implements PlaneScheme.
func (s *WLCCosets) EncodePlanesInto(dst, old []uint64, data *memline.Line) {
	if !s.wlc.LineCompressible(data) {
		rawEncodePlanes(data, dst)
		setTailFlag(dst, flagUncompressed)
		return
	}
	for w := 0; w < memline.LineWords; w++ {
		dst[2*w], dst[2*w+1] = s.encodeWordPlanes(data.Word(w), old[2*w], old[2*w+1])
	}
	setTailFlag(dst, flagCompressed)
}

// encodeWordPlanes is encodeWord with the old states read from planes
// and the result — data cells plus the reclaimed-field candidate
// indices — assembled as one plane pair. Aux cell j stores block j's
// index directly (low bit to the low plane), matching the identity
// AuxPack layout of the scalar path; reclaimed cells beyond the block
// count come out S1 exactly like the scalar zero bits.
func (s *WLCCosets) encodeWordPlanes(word, oldLo, oldHi uint64) (uint64, uint64) {
	var p coset.WordPlanes
	p.SetData(word)
	p.SetOldPlanes(oldLo, oldHi)
	var nlo, nhi, auxLo, auxHi uint64
	for b, rng := range s.blocks {
		mask := coset.CellMask(rng[0], rng[1]-rng[0])
		idx, _ := coset.BestSWAR(s.swar, &p, mask)
		lo, hi := s.swar[idx].Apply(&p)
		nlo |= lo & mask
		nhi |= hi & mask
		auxLo |= uint64(idx&1) << uint(b)
		auxHi |= uint64(idx>>1) << uint(b)
	}
	shift := uint(s.dataCells)
	return nlo | auxLo<<shift, nhi | auxHi<<shift
}

// DecodePlanesInto implements PlaneScheme.
func (s *WLCCosets) DecodePlanesInto(planes []uint64, dst *memline.Line) {
	if tailFlag(planes) != flagCompressed {
		rawDecodePlanes(planes, dst)
		return
	}
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, s.decodeWordPlanes(planes[2*w], planes[2*w+1]))
	}
}

func (s *WLCCosets) decodeWordPlanes(slo, shi uint64) uint64 {
	auxLo := slo >> uint(s.dataCells)
	auxHi := shi >> uint(s.dataCells)
	var dlo, dhi uint64
	for b, rng := range s.blocks {
		idx := int(auxLo>>uint(b)&1) | int(auxHi>>uint(b)&1)<<1
		if idx >= len(s.cands) {
			idx = 0
		}
		lo, hi := s.swar[idx].ApplyInvPlanes(slo, shi)
		mask := coset.CellMask(rng[0], rng[1]-rng[0])
		dlo |= lo & mask
		dhi |= hi & mask
	}
	return s.wlc.DecompressWord(memline.InterleavePlanes(dlo, dhi))
}
