package core

import (
	"fmt"

	"wlcrc/internal/compress"
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// WLCRC is the paper's contribution (§VI): Word-Level Compression
// integrated with Restricted Coset coding. When every 64-bit word of the
// line is WLC-compressible, each word is encoded independently: its data
// blocks all use candidates from one per-word group — {C1,C2} or {C1,C3}
// — selected by Algorithm 1, with one candidate bit per block and one
// group bit stored in the word's reclaimed field. Incompressible lines
// (fewer than 9% of writes on the paper's workloads) are written raw; a
// global flag cell tells the two cases apart.
//
// Per-word layout by granularity (DESIGN.md §3). Cells that carry
// auxiliary bits are always stored through the fixed C1 mapping so the
// decoder can read them before it knows any block's mapping:
//
//	WLCRC-16 (reclaim r=5, WLC k=6):
//	    blocks: cells 0-7, 8-15, 16-23, 24-28 (+ data bit b58 in cell 29)
//	    b59=cand3 b60=cand2 b61=cand1 b62=cand0 b63=group
//	    cell29=(b59,b58) mixed; cells 30,31 pure aux
//	WLCRC-32 (r=3, k=4):
//	    blocks: cells 0-15, 16-29 (+ data bit b60 in cell 30)
//	    b61=cand1 b62=cand0 b63=group
//	WLCRC-8 (r=8, k=9):
//	    blocks: 7 x 4 cells (bits b0..b55); b56..b62=cand0..6, b63=group
//	WLCRC-64 (r=2, k=3): identical to unrestricted 3cosets on the word:
//	    one block, cells 0-30 (bits b0..b61); b62,b63 = candidate index
type WLCRC struct {
	displayName string
	em          pcm.EnergyModel
	gran        int
	wlc         compress.WLC
	multiT      float64
	wdLambda    float64
	dm          pcm.DisturbModel
	geom        wlcrcGeom
}

// wlcrcGeom captures the per-word layout of one granularity.
type wlcrcGeom struct {
	reclaim   int      // bits reclaimed by WLC (k-1)
	dataCells int      // count of cells that are pure data (0..dataCells-1)
	mixed     bool     // cell dataCells carries one data bit (lo) + one aux bit (hi)
	blocks    [][2]int // [lo,hi) pure-data cell ranges per block
	// When mixed, the owning block is the last one; its candidate bit is
	// the aux (hi) bit of the mixed cell.
}

var wlcrcGeoms = map[int]wlcrcGeom{
	8: {
		reclaim:   8,
		dataCells: 28,
		blocks:    [][2]int{{0, 4}, {4, 8}, {8, 12}, {12, 16}, {16, 20}, {20, 24}, {24, 28}},
	},
	16: {
		reclaim:   5,
		dataCells: 29,
		mixed:     true,
		blocks:    [][2]int{{0, 8}, {8, 16}, {16, 24}, {24, 29}},
	},
	32: {
		reclaim:   3,
		dataCells: 30,
		mixed:     true,
		blocks:    [][2]int{{0, 16}, {16, 30}},
	},
	64: {
		reclaim:   2,
		dataCells: 31,
		blocks:    [][2]int{{0, 31}},
	},
}

// NewWLCRC builds a WLCRC scheme at block granularity 8, 16, 32 or 64
// bits. The default evaluation configuration is 16 (WLCRC-16). If
// cfg.MultiObjectiveT is nonzero, the §VIII.D multi-objective group
// selection is enabled and reflected in the scheme name.
func NewWLCRC(cfg Config, gran int) (*WLCRC, error) {
	geom, ok := wlcrcGeoms[gran]
	if !ok {
		return nil, fmt.Errorf("core: WLCRC granularity %d not in {8,16,32,64}", gran)
	}
	name := fmt.Sprintf("WLCRC-%d", gran)
	if cfg.MultiObjectiveT > 0 {
		name = fmt.Sprintf("WLCRC-%d(T=%g%%)", gran, cfg.MultiObjectiveT*100)
	}
	if cfg.DisturbAwareLambda > 0 {
		name = fmt.Sprintf("WLCRC-%d(WD)", gran)
	}
	dm := cfg.Disturb
	if dm.DER == ([pcm.NumStates]float64{}) {
		dm = pcm.DefaultDisturb()
	}
	return &WLCRC{
		displayName: name,
		em:          cfg.Energy,
		gran:        gran,
		wlc:         compress.WLC{K: geom.reclaim + 1},
		multiT:      cfg.MultiObjectiveT,
		wdLambda:    cfg.DisturbAwareLambda,
		dm:          dm,
		geom:        geom,
	}, nil
}

// Name implements Scheme.
func (s *WLCRC) Name() string { return s.displayName }

// Granularity returns the block size in bits.
func (s *WLCRC) Granularity() int { return s.gran }

// Compressible reports whether WLC can reclaim this granularity's
// auxiliary field in every word of the line.
func (s *WLCRC) Compressible(data *memline.Line) bool {
	return s.wlc.LineCompressible(data)
}

// TotalCells implements Scheme: auxiliary bits live inside the words;
// only the compression flag cell is extra (<0.4% overhead, §VI.A).
func (s *WLCRC) TotalCells() int { return memline.LineCells + 1 }

// DataCells implements Scheme.
func (s *WLCRC) DataCells() int { return memline.LineCells }

// AuxCellsPerWord returns how many trailing cells of each word hold only
// auxiliary bits when the line is compressed (the mixed cell counts as
// data).
func (s *WLCRC) AuxCellsPerWord() int {
	n := memline.WordCells - s.geom.dataCells
	if s.geom.mixed {
		n--
	}
	return n
}

// Encode implements Scheme.
func (s *WLCRC) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, s.TotalCells())
	copy(out, old)
	if !s.wlc.LineCompressible(data) {
		rawEncode(data, out)
		out[memline.LineCells] = flagUncompressed
		return out
	}
	for w := 0; w < memline.LineWords; w++ {
		s.encodeWord(data.Word(w), old[w*memline.WordCells:(w+1)*memline.WordCells], out[w*memline.WordCells:(w+1)*memline.WordCells])
	}
	out[memline.LineCells] = flagCompressed
	return out
}

// wordPlan is a fully-evaluated encoding of one word under one group.
type wordPlan struct {
	cost    float64
	updates int
	cands   []uint8 // candidate bit (or 2-bit index for gran 64) per block
	group   uint8
}

func (s *WLCRC) encodeWord(word uint64, old, out []pcm.State) {
	var syms [memline.WordCells]uint8
	for c := 0; c < memline.WordCells; c++ {
		syms[c] = uint8(word >> (uint(c) * 2) & 3)
	}
	if s.gran == 64 {
		s.encodeWord64(syms[:], old, out)
		return
	}
	p12 := s.planGroup(0, coset.C2, syms[:], old)
	p13 := s.planGroup(1, coset.C3, syms[:], old)
	best := p12
	if p13.cost < best.cost {
		best = p13
	}
	if s.multiT > 0 {
		// §VIII.D: when the two group costs are within T of each other,
		// choose the group that programs fewer cells.
		hi := p12.cost
		if p13.cost > hi {
			hi = p13.cost
		}
		diff := p12.cost - p13.cost
		if diff < 0 {
			diff = -diff
		}
		if hi > 0 && diff <= s.multiT*hi {
			best = p12
			if p13.updates < p12.updates ||
				(p13.updates == p12.updates && p13.cost < p12.cost) {
				best = p13
			}
		}
	}
	s.commit(best, syms[:], out)
}

// planGroup evaluates Algorithm 1 for one coset group: every block picks
// the cheaper of C1 and alt; the plan cost includes the auxiliary cells.
// In multi-objective mode (§VIII.D), a block whose two candidate costs
// are within T of each other is decided by updated-cell count instead —
// the source of the paper's endurance gain at negligible energy cost.
func (s *WLCRC) planGroup(group uint8, alt coset.Mapping, syms []uint8, old []pcm.State) wordPlan {
	g := &s.geom
	plan := wordPlan{group: group, cands: make([]uint8, len(g.blocks))}
	for b, rng := range g.blocks {
		mixedHere := g.mixed && b == len(g.blocks)-1
		c1Cost, c1Upd := s.blockCost(coset.C1, 0, mixedHere, syms, old, rng)
		caCost, caUpd := s.blockCost(alt, 1, mixedHere, syms, old, rng)
		pickAlt := caCost < c1Cost
		if s.multiT > 0 {
			hi := c1Cost
			if caCost > hi {
				hi = caCost
			}
			diff := c1Cost - caCost
			if diff < 0 {
				diff = -diff
			}
			if hi > 0 && diff <= s.multiT*hi {
				pickAlt = caUpd < c1Upd || (caUpd == c1Upd && caCost < c1Cost)
			}
		}
		if pickAlt {
			plan.cands[b] = 1
			plan.cost += caCost
			plan.updates += caUpd
		} else {
			plan.cost += c1Cost
			plan.updates += c1Upd
		}
	}
	// Pure auxiliary cells.
	for i, sym := range s.auxSymbols(plan.cands, plan.group) {
		cell := s.firstAuxCell() + i
		st := coset.C1[sym]
		if st != old[cell] {
			plan.cost += s.em.WriteEnergy(st)
			plan.updates++
		}
	}
	return plan
}

// blockCost prices one block under mapping m whose candidate bit is
// candBit. When the block owns the mixed cell, that cell's C1-mapped
// symbol (aux hi bit = candBit, lo bit = the block's last data bit) is
// included — this is how the "11-bit most significant block" of §VI.A is
// accounted. With the §XI write-disturbance-aware extension enabled, the
// cost also includes wdLambda pJ per expected disturbance error the
// block's write pattern would induce on its idle cells.
func (s *WLCRC) blockCost(m coset.Mapping, candBit uint8, mixedHere bool, syms []uint8, old []pcm.State, rng [2]int) (float64, int) {
	var cost float64
	updates := 0
	var changed [memline.WordCells]bool
	for c := rng[0]; c < rng[1]; c++ {
		st := m[syms[c]]
		if st != old[c] {
			cost += s.em.WriteEnergy(st)
			updates++
			changed[c-rng[0]] = true
		}
	}
	if mixedHere {
		cell := s.geom.dataCells
		st := coset.C1[candBit<<1|syms[cell]&1]
		if st != old[cell] {
			cost += s.em.WriteEnergy(st)
			updates++
		}
	}
	if s.wdLambda > 0 {
		cost += s.wdLambda * s.blockDisturbRisk(m, syms, old, rng, changed[:rng[1]-rng[0]])
	}
	return cost, updates
}

// blockDisturbRisk estimates the expected disturbance errors within a
// block for a candidate mapping: each idle cell adjacent to a written
// cell contributes DER of the state it will hold, plus a future-
// vulnerability term for written cells left in disturbance-prone states.
func (s *WLCRC) blockDisturbRisk(m coset.Mapping, syms []uint8, old []pcm.State, rng [2]int, changed []bool) float64 {
	var risk float64
	n := rng[1] - rng[0]
	for i := 0; i < n; i++ {
		c := rng[0] + i
		if changed[i] {
			// The written cell's final state determines how vulnerable
			// it is to later neighboring writes.
			risk += 0.5 * s.dm.DER[m[syms[c]]]
			continue
		}
		exposed := (i > 0 && changed[i-1]) || (i < n-1 && changed[i+1])
		if exposed {
			risk += s.dm.DER[old[c]]
		}
	}
	return risk
}

// firstAuxCell returns the index of the first pure-aux cell in a word.
func (s *WLCRC) firstAuxCell() int {
	if s.geom.mixed {
		return s.geom.dataCells + 1
	}
	return s.geom.dataCells
}

// auxSymbols derives the symbols of the pure-aux cells from the
// candidate bits and group bit (layouts in the type comment). The mixed
// cell is handled in blockCost.
func (s *WLCRC) auxSymbols(cands []uint8, group uint8) []uint8 {
	switch s.gran {
	case 8: // cells 28..31: (c1,c0) (c3,c2) (c5,c4) (group,c6)
		return []uint8{
			cands[1]<<1 | cands[0],
			cands[3]<<1 | cands[2],
			cands[5]<<1 | cands[4],
			group<<1 | cands[6],
		}
	case 16: // cells 30,31: (c1,c2) (group,c0); c3 is in the mixed cell
		return []uint8{
			cands[1]<<1 | cands[2],
			group<<1 | cands[0],
		}
	case 32: // cell 31: (group,c0); c1 is in the mixed cell
		return []uint8{group<<1 | cands[0]}
	}
	panic("core: auxSymbols on unrestricted granularity")
}

// commit writes the chosen plan's states.
func (s *WLCRC) commit(plan wordPlan, syms []uint8, out []pcm.State) {
	alt := coset.C2
	if plan.group == 1 {
		alt = coset.C3
	}
	g := &s.geom
	for b, rng := range g.blocks {
		m := coset.C1
		if plan.cands[b] == 1 {
			m = alt
		}
		for c := rng[0]; c < rng[1]; c++ {
			out[c] = m[syms[c]]
		}
		if g.mixed && b == len(g.blocks)-1 {
			cell := g.dataCells
			out[cell] = coset.C1[plan.cands[b]<<1|syms[cell]&1]
		}
	}
	for i, sym := range s.auxSymbols(plan.cands, plan.group) {
		out[s.firstAuxCell()+i] = coset.C1[sym]
	}
}

// encodeWord64 is the degenerate granularity-64 case: one block per word,
// unrestricted choice among C1, C2, C3, two-bit index in cell 31.
func (s *WLCRC) encodeWord64(syms []uint8, old, out []pcm.State) {
	cands := coset.Table1[:3]
	rng := s.geom.blocks[0]
	idx, _ := coset.Best(&s.em, cands, syms[rng[0]:rng[1]], old[rng[0]:rng[1]])
	coset.Encode(cands[idx], syms[rng[0]:rng[1]], out[rng[0]:rng[1]])
	out[31] = coset.C1[uint8(idx)]
}

// Decode implements Scheme.
func (s *WLCRC) Decode(cells []pcm.State) memline.Line {
	if cells[memline.LineCells] != flagCompressed {
		return rawDecode(cells)
	}
	var l memline.Line
	for w := 0; w < memline.LineWords; w++ {
		l.SetWord(w, s.decodeWord(cells[w*memline.WordCells:(w+1)*memline.WordCells]))
	}
	return l
}

func (s *WLCRC) decodeWord(cells []pcm.State) uint64 {
	inv := coset.C1.Inverse()
	g := &s.geom
	var word uint64

	if s.gran == 64 {
		idx := int(inv[cells[31]])
		if idx > 2 {
			idx = 0
		}
		blk := make([]uint8, g.dataCells)
		coset.Decode(coset.Table1[idx], cells[:g.dataCells], blk)
		for c, v := range blk {
			word |= uint64(v) << (uint(c) * 2)
		}
		return s.wlc.DecompressWord(word)
	}

	cands, group, mixedData := s.readAux(cells)
	alt := coset.C2
	if group == 1 {
		alt = coset.C3
	}
	blk := make([]uint8, memline.WordCells)
	for b, rng := range g.blocks {
		m := coset.C1
		if cands[b] == 1 {
			m = alt
		}
		n := rng[1] - rng[0]
		coset.Decode(m, cells[rng[0]:rng[1]], blk[:n])
		for i := 0; i < n; i++ {
			word |= uint64(blk[i]) << (uint(rng[0]+i) * 2)
		}
	}
	if g.mixed {
		word |= uint64(mixedData) << (uint(g.dataCells) * 2)
	}
	return s.wlc.DecompressWord(word)
}

// readAux recovers the candidate bits, group bit, and (for mixed
// layouts) the mixed cell's data bit from the C1-mapped auxiliary cells.
func (s *WLCRC) readAux(cells []pcm.State) (cands []uint8, group, mixedData uint8) {
	inv := coset.C1.Inverse()
	g := &s.geom
	cands = make([]uint8, len(g.blocks))
	switch s.gran {
	case 8:
		a := [4]uint8{inv[cells[28]], inv[cells[29]], inv[cells[30]], inv[cells[31]]}
		cands[0], cands[1] = a[0]&1, a[0]>>1
		cands[2], cands[3] = a[1]&1, a[1]>>1
		cands[4], cands[5] = a[2]&1, a[2]>>1
		cands[6], group = a[3]&1, a[3]>>1
	case 16:
		mixedSym := inv[cells[29]]
		mixedData = mixedSym & 1
		cands[3] = mixedSym >> 1
		a30, a31 := inv[cells[30]], inv[cells[31]]
		cands[2], cands[1] = a30&1, a30>>1
		cands[0], group = a31&1, a31>>1
	case 32:
		mixedSym := inv[cells[30]]
		mixedData = mixedSym & 1
		cands[1] = mixedSym >> 1
		a31 := inv[cells[31]]
		cands[0], group = a31&1, a31>>1
	}
	return cands, group, mixedData
}
