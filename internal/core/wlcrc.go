package core

import (
	"fmt"

	"wlcrc/internal/compress"
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// WLCRC is the paper's contribution (§VI): Word-Level Compression
// integrated with Restricted Coset coding. When every 64-bit word of the
// line is WLC-compressible, each word is encoded independently: its data
// blocks all use candidates from one per-word group — {C1,C2} or {C1,C3}
// — selected by Algorithm 1, with one candidate bit per block and one
// group bit stored in the word's reclaimed field. Incompressible lines
// (fewer than 9% of writes on the paper's workloads) are written raw; a
// global flag cell tells the two cases apart.
//
// Per-word layout by granularity (DESIGN.md §3). Cells that carry
// auxiliary bits are always stored through the fixed C1 mapping so the
// decoder can read them before it knows any block's mapping:
//
//	WLCRC-16 (reclaim r=5, WLC k=6):
//	    blocks: cells 0-7, 8-15, 16-23, 24-28 (+ data bit b58 in cell 29)
//	    b59=cand3 b60=cand2 b61=cand1 b62=cand0 b63=group
//	    cell29=(b59,b58) mixed; cells 30,31 pure aux
//	WLCRC-32 (r=3, k=4):
//	    blocks: cells 0-15, 16-29 (+ data bit b60 in cell 30)
//	    b61=cand1 b62=cand0 b63=group
//	WLCRC-8 (r=8, k=9):
//	    blocks: 7 x 4 cells (bits b0..b55); b56..b62=cand0..6, b63=group
//	WLCRC-64 (r=2, k=3): identical to unrestricted 3cosets on the word:
//	    one block, cells 0-30 (bits b0..b61); b62,b63 = candidate index
type WLCRC struct {
	displayName string
	em          pcm.EnergyModel
	gran        int
	wlc         compress.WLC
	multiT      float64
	wdLambda    float64
	dm          pcm.DisturbModel
	geom        wlcrcGeom
	// tab1 prices the fixed C1 mapping (data blocks and every aux
	// cell); tabAlt[0] and tabAlt[1] price the group alternates C2 and
	// C3. tab64 holds the three unrestricted candidates of the
	// granularity-64 degenerate case. The swar* fields are their
	// word-parallel bit-plane counterparts; the scalar tables remain the
	// single-cell path (mixed cell, aux cells) and the §XI
	// disturbance-aware fallback.
	tab1   coset.CostTable
	tabAlt [2]coset.CostTable
	tab64  []coset.CostTable

	swar1   coset.SWARTable
	swarAlt [2]coset.SWARTable
	swar64  []coset.SWARTable
}

// wlcrcMaxBlocks bounds the per-word block count (7 at granularity 8)
// for the fixed-size plan scratch.
const wlcrcMaxBlocks = 7

// wlcrcMaxAux bounds the pure-aux cells per word (4 at granularity 8).
const wlcrcMaxAux = 4

// wlcrcGeom captures the per-word layout of one granularity.
type wlcrcGeom struct {
	reclaim   int      // bits reclaimed by WLC (k-1)
	dataCells int      // count of cells that are pure data (0..dataCells-1)
	mixed     bool     // cell dataCells carries one data bit (lo) + one aux bit (hi)
	blocks    [][2]int // [lo,hi) pure-data cell ranges per block
	// When mixed, the owning block is the last one; its candidate bit is
	// the aux (hi) bit of the mixed cell.
}

var wlcrcGeoms = map[int]wlcrcGeom{
	8: {
		reclaim:   8,
		dataCells: 28,
		blocks:    [][2]int{{0, 4}, {4, 8}, {8, 12}, {12, 16}, {16, 20}, {20, 24}, {24, 28}},
	},
	16: {
		reclaim:   5,
		dataCells: 29,
		mixed:     true,
		blocks:    [][2]int{{0, 8}, {8, 16}, {16, 24}, {24, 29}},
	},
	32: {
		reclaim:   3,
		dataCells: 30,
		mixed:     true,
		blocks:    [][2]int{{0, 16}, {16, 30}},
	},
	64: {
		reclaim:   2,
		dataCells: 31,
		blocks:    [][2]int{{0, 31}},
	},
}

// NewWLCRC builds a WLCRC scheme at block granularity 8, 16, 32 or 64
// bits. The default evaluation configuration is 16 (WLCRC-16). If
// cfg.MultiObjectiveT is nonzero, the §VIII.D multi-objective group
// selection is enabled and reflected in the scheme name.
func NewWLCRC(cfg Config, gran int) (*WLCRC, error) {
	geom, ok := wlcrcGeoms[gran]
	if !ok {
		return nil, fmt.Errorf("core: WLCRC granularity %d not in {8,16,32,64}", gran)
	}
	name := fmt.Sprintf("WLCRC-%d", gran)
	if cfg.MultiObjectiveT > 0 {
		name = fmt.Sprintf("WLCRC-%d(T=%g%%)", gran, cfg.MultiObjectiveT*100)
	}
	if cfg.DisturbAwareLambda > 0 {
		name = fmt.Sprintf("WLCRC-%d(WD)", gran)
	}
	dm := cfg.Disturb
	if dm.DER == ([pcm.NumStates]float64{}) {
		dm = pcm.DefaultDisturb()
	}
	return &WLCRC{
		displayName: name,
		em:          cfg.Energy,
		gran:        gran,
		wlc:         compress.WLC{K: geom.reclaim + 1},
		multiT:      cfg.MultiObjectiveT,
		wdLambda:    cfg.DisturbAwareLambda,
		dm:          dm,
		geom:        geom,
		tab1:        coset.C1.CostTable(&cfg.Energy),
		tabAlt:      [2]coset.CostTable{coset.C2.CostTable(&cfg.Energy), coset.C3.CostTable(&cfg.Energy)},
		tab64:       coset.CostTables(&cfg.Energy, coset.Table1[:3]),
		swar1:       coset.C1.SWAR(&cfg.Energy),
		swarAlt:     [2]coset.SWARTable{coset.C2.SWAR(&cfg.Energy), coset.C3.SWAR(&cfg.Energy)},
		swar64:      coset.SWARTables(&cfg.Energy, coset.Table1[:3]),
	}, nil
}

// Name implements Scheme.
func (s *WLCRC) Name() string { return s.displayName }

// Granularity returns the block size in bits.
func (s *WLCRC) Granularity() int { return s.gran }

// Compressible reports whether WLC can reclaim this granularity's
// auxiliary field in every word of the line.
func (s *WLCRC) Compressible(data *memline.Line) bool {
	return s.wlc.LineCompressible(data)
}

// CompressedWrite implements CompressionGate.
func (s *WLCRC) CompressedWrite(cells []pcm.State) bool {
	return cells[memline.LineCells] == flagCompressed
}

// TotalCells implements Scheme: auxiliary bits live inside the words;
// only the compression flag cell is extra (<0.4% overhead, §VI.A).
func (s *WLCRC) TotalCells() int { return memline.LineCells + 1 }

// DataCells implements Scheme.
func (s *WLCRC) DataCells() int { return memline.LineCells }

// AuxCellsPerWord returns how many trailing cells of each word hold only
// auxiliary bits when the line is compressed (the mixed cell counts as
// data).
func (s *WLCRC) AuxCellsPerWord() int {
	n := memline.WordCells - s.geom.dataCells
	if s.geom.mixed {
		n--
	}
	return n
}

// Encode implements Scheme.
func (s *WLCRC) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, s.TotalCells())
	s.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements Scheme.
func (s *WLCRC) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	// Both paths overwrite every cell (data, in-word aux, flag), so no
	// copy-from-old is needed.
	if !s.wlc.LineCompressible(data) {
		rawEncode(data, dst)
		dst[memline.LineCells] = flagUncompressed
		return
	}
	for w := 0; w < memline.LineWords; w++ {
		s.encodeWord(data.Word(w), old[w*memline.WordCells:(w+1)*memline.WordCells], dst[w*memline.WordCells:(w+1)*memline.WordCells])
	}
	dst[memline.LineCells] = flagCompressed
}

// wordPlan is a fully-evaluated encoding of one word under one group.
type wordPlan struct {
	cost    float64
	updates int
	cands   [wlcrcMaxBlocks]uint8 // candidate bit per block
	group   uint8
}

func (s *WLCRC) encodeWord(word uint64, old, out []pcm.State) {
	if s.wdLambda > 0 {
		// The §XI disturbance-aware extension prices per-cell neighbor
		// exposure; it stays on the scalar path.
		s.encodeWordScalar(word, old, out)
		return
	}
	var p coset.WordPlanes
	p.Init(word, old)
	if s.gran == 64 {
		s.encodeWord64(&p, out)
		return
	}
	// Both groups share C1, so price every block's three candidate
	// tables once and let the two group plans read the cached evals.
	g := &s.geom
	var ev [wlcrcMaxBlocks]blockEval
	for b, rng := range g.blocks {
		mask := coset.CellMask(rng[0], rng[1]-rng[0])
		e := &ev[b]
		e.cost[0], e.upd[0] = s.swar1.CostCount(&p, mask)
		e.cost[1], e.upd[1] = s.swarAlt[0].CostCount(&p, mask)
		e.cost[2], e.upd[2] = s.swarAlt[1].CostCount(&p, mask)
		if g.mixed && b == len(g.blocks)-1 {
			// The mixed cell's C1-mapped symbol carries the block's
			// candidate bit (hi) and its last data bit (lo).
			cell := g.dataCells
			st := old[cell]
			dataBit := uint8(word >> uint(2*cell) & 1)
			e.cost[0] += s.tab1.Cost[st][dataBit]
			e.upd[0] += int(s.tab1.Update[st][dataBit])
			caCost := s.tab1.Cost[st][2|dataBit]
			caUpd := int(s.tab1.Update[st][2|dataBit])
			e.cost[1] += caCost
			e.upd[1] += caUpd
			e.cost[2] += caCost
			e.upd[2] += caUpd
		}
	}
	p12 := s.planFromEvals(0, &ev, old)
	p13 := s.planFromEvals(1, &ev, old)
	s.commitSWAR(s.pickPlan(&p12, &p13), &p, word, out)
}

// blockEval caches one block's cost/updates under C1, C2 and C3 (the
// candidate-bit contribution of a mixed cell folded in).
type blockEval struct {
	cost [3]float64
	upd  [3]int
}

// planFromEvals assembles Algorithm 1's plan for one coset group
// (0 = {C1,C2}, 1 = {C1,C3}) from the cached block evals, with the same
// per-block pick and §VIII.D multi-objective tie-break as planGroup.
func (s *WLCRC) planFromEvals(group uint8, ev *[wlcrcMaxBlocks]blockEval, old []pcm.State) wordPlan {
	plan := wordPlan{group: group}
	alt := int(group) + 1
	for b := range s.geom.blocks {
		c1Cost, c1Upd := ev[b].cost[0], ev[b].upd[0]
		caCost, caUpd := ev[b].cost[alt], ev[b].upd[alt]
		pickAlt := caCost < c1Cost
		if s.multiT > 0 {
			hi := c1Cost
			if caCost > hi {
				hi = caCost
			}
			diff := c1Cost - caCost
			if diff < 0 {
				diff = -diff
			}
			if hi > 0 && diff <= s.multiT*hi {
				pickAlt = caUpd < c1Upd || (caUpd == c1Upd && caCost < c1Cost)
			}
		}
		if pickAlt {
			plan.cands[b] = 1
			plan.cost += caCost
			plan.updates += caUpd
		} else {
			plan.cost += c1Cost
			plan.updates += c1Upd
		}
	}
	// Pure auxiliary cells.
	var aux [wlcrcMaxAux]uint8
	nAux := s.auxSymbols(&plan.cands, plan.group, &aux)
	first := s.firstAuxCell()
	for i := 0; i < nAux; i++ {
		cell := first + i
		st := old[cell]
		plan.cost += s.tab1.Cost[st][aux[i]]
		plan.updates += int(s.tab1.Update[st][aux[i]])
	}
	return plan
}

// encodeWordScalar is the per-cell reference path, kept for the §XI
// disturbance-aware pricing (and as the behavioral reference the SWAR
// path is tested against).
func (s *WLCRC) encodeWordScalar(word uint64, old, out []pcm.State) {
	var syms [memline.WordCells]uint8
	memline.WordSymbols(word, &syms)
	if s.gran == 64 {
		s.encodeWord64Scalar(syms[:], old, out)
		return
	}
	p12 := s.planGroup(0, syms[:], old)
	p13 := s.planGroup(1, syms[:], old)
	s.commit(s.pickPlan(&p12, &p13), syms[:], out)
}

// pickPlan chooses between the two group plans: cheapest wins, except in
// §VIII.D multi-objective mode where near-ties go to the plan that
// programs fewer cells.
func (s *WLCRC) pickPlan(p12, p13 *wordPlan) *wordPlan {
	best := p12
	if p13.cost < best.cost {
		best = p13
	}
	if s.multiT > 0 {
		// §VIII.D: when the two group costs are within T of each other,
		// choose the group that programs fewer cells.
		hi := p12.cost
		if p13.cost > hi {
			hi = p13.cost
		}
		diff := p12.cost - p13.cost
		if diff < 0 {
			diff = -diff
		}
		if hi > 0 && diff <= s.multiT*hi {
			best = p12
			if p13.updates < p12.updates ||
				(p13.updates == p12.updates && p13.cost < p12.cost) {
				best = p13
			}
		}
	}
	return best
}

// planGroup evaluates Algorithm 1 for one coset group (0 = {C1,C2},
// 1 = {C1,C3}): every block picks the cheaper of C1 and the alternate;
// the plan cost includes the auxiliary cells. In multi-objective mode
// (§VIII.D), a block whose two candidate costs are within T of each
// other is decided by updated-cell count instead — the source of the
// paper's endurance gain at negligible energy cost.
func (s *WLCRC) planGroup(group uint8, syms []uint8, old []pcm.State) wordPlan {
	g := &s.geom
	alt := &s.tabAlt[group]
	plan := wordPlan{group: group}
	for b, rng := range g.blocks {
		mixedHere := g.mixed && b == len(g.blocks)-1
		c1Cost, c1Upd := s.blockCost(&s.tab1, 0, mixedHere, syms, old, rng)
		caCost, caUpd := s.blockCost(alt, 1, mixedHere, syms, old, rng)
		pickAlt := caCost < c1Cost
		if s.multiT > 0 {
			hi := c1Cost
			if caCost > hi {
				hi = caCost
			}
			diff := c1Cost - caCost
			if diff < 0 {
				diff = -diff
			}
			if hi > 0 && diff <= s.multiT*hi {
				pickAlt = caUpd < c1Upd || (caUpd == c1Upd && caCost < c1Cost)
			}
		}
		if pickAlt {
			plan.cands[b] = 1
			plan.cost += caCost
			plan.updates += caUpd
		} else {
			plan.cost += c1Cost
			plan.updates += c1Upd
		}
	}
	// Pure auxiliary cells.
	var aux [wlcrcMaxAux]uint8
	nAux := s.auxSymbols(&plan.cands, plan.group, &aux)
	first := s.firstAuxCell()
	for i := 0; i < nAux; i++ {
		cell := first + i
		st := old[cell]
		plan.cost += s.tab1.Cost[st][aux[i]]
		plan.updates += int(s.tab1.Update[st][aux[i]])
	}
	return plan
}

// commitSWAR writes the chosen plan's states word-parallel: each block's
// mapping is applied as masked plane selection, then the mixed and aux
// cells are overwritten scalar.
func (s *WLCRC) commitSWAR(plan *wordPlan, p *coset.WordPlanes, word uint64, out []pcm.State) {
	g := &s.geom
	alt := &s.swarAlt[plan.group]
	var nlo, nhi uint64
	for b, rng := range g.blocks {
		t := &s.swar1
		if plan.cands[b] == 1 {
			t = alt
		}
		lo, hi := t.Apply(p)
		mask := coset.CellMask(rng[0], rng[1]-rng[0])
		nlo |= lo & mask
		nhi |= hi & mask
	}
	coset.UnpackStates(nlo, nhi, out[:memline.WordCells])
	if g.mixed {
		cell := g.dataCells
		cand := plan.cands[len(g.blocks)-1]
		out[cell] = coset.C1[cand<<1|uint8(word>>uint(2*cell))&1]
	}
	var aux [wlcrcMaxAux]uint8
	nAux := s.auxSymbols(&plan.cands, plan.group, &aux)
	first := s.firstAuxCell()
	for i := 0; i < nAux; i++ {
		out[first+i] = coset.C1[aux[i]]
	}
}

// blockCost prices one block under the candidate table t whose candidate
// bit is candBit, as pure table lookups. When the block owns the mixed
// cell, that cell's C1-mapped symbol (aux hi bit = candBit, lo bit = the
// block's last data bit) is included — this is how the "11-bit most
// significant block" of §VI.A is accounted. With the §XI
// write-disturbance-aware extension enabled, the cost also includes
// wdLambda pJ per expected disturbance error the block's write pattern
// would induce on its idle cells.
func (s *WLCRC) blockCost(t *coset.CostTable, candBit uint8, mixedHere bool, syms []uint8, old []pcm.State, rng [2]int) (float64, int) {
	var cost float64
	updates := 0
	for c := rng[0]; c < rng[1]; c++ {
		st := old[c]
		cost += t.Cost[st][syms[c]]
		updates += int(t.Update[st][syms[c]])
	}
	if mixedHere {
		cell := s.geom.dataCells
		sym := candBit<<1 | syms[cell]&1
		st := old[cell]
		cost += s.tab1.Cost[st][sym]
		updates += int(s.tab1.Update[st][sym])
	}
	if s.wdLambda > 0 {
		var changed [memline.WordCells]bool
		for c := rng[0]; c < rng[1]; c++ {
			changed[c-rng[0]] = t.Update[old[c]][syms[c]] == 1
		}
		cost += s.wdLambda * s.blockDisturbRisk(t.States, syms, old, rng, changed[:rng[1]-rng[0]])
	}
	return cost, updates
}

// blockDisturbRisk estimates the expected disturbance errors within a
// block for a candidate mapping: each idle cell adjacent to a written
// cell contributes DER of the state it will hold, plus a future-
// vulnerability term for written cells left in disturbance-prone states.
func (s *WLCRC) blockDisturbRisk(m coset.Mapping, syms []uint8, old []pcm.State, rng [2]int, changed []bool) float64 {
	var risk float64
	n := rng[1] - rng[0]
	for i := 0; i < n; i++ {
		c := rng[0] + i
		if changed[i] {
			// The written cell's final state determines how vulnerable
			// it is to later neighboring writes.
			risk += 0.5 * s.dm.DER[m[syms[c]]]
			continue
		}
		exposed := (i > 0 && changed[i-1]) || (i < n-1 && changed[i+1])
		if exposed {
			risk += s.dm.DER[old[c]]
		}
	}
	return risk
}

// firstAuxCell returns the index of the first pure-aux cell in a word.
func (s *WLCRC) firstAuxCell() int {
	if s.geom.mixed {
		return s.geom.dataCells + 1
	}
	return s.geom.dataCells
}

// auxSymbols derives the symbols of the pure-aux cells from the
// candidate bits and group bit (layouts in the type comment), writing
// them into dst and returning the count. The mixed cell is handled in
// blockCost.
func (s *WLCRC) auxSymbols(cands *[wlcrcMaxBlocks]uint8, group uint8, dst *[wlcrcMaxAux]uint8) int {
	switch s.gran {
	case 8: // cells 28..31: (c1,c0) (c3,c2) (c5,c4) (group,c6)
		dst[0] = cands[1]<<1 | cands[0]
		dst[1] = cands[3]<<1 | cands[2]
		dst[2] = cands[5]<<1 | cands[4]
		dst[3] = group<<1 | cands[6]
		return 4
	case 16: // cells 30,31: (c1,c2) (group,c0); c3 is in the mixed cell
		dst[0] = cands[1]<<1 | cands[2]
		dst[1] = group<<1 | cands[0]
		return 2
	case 32: // cell 31: (group,c0); c1 is in the mixed cell
		dst[0] = group<<1 | cands[0]
		return 1
	}
	panic("core: auxSymbols on unrestricted granularity")
}

// commit writes the chosen plan's states.
func (s *WLCRC) commit(plan *wordPlan, syms []uint8, out []pcm.State) {
	alt := &s.tabAlt[plan.group]
	g := &s.geom
	for b, rng := range g.blocks {
		m := &s.tab1.States
		if plan.cands[b] == 1 {
			m = &alt.States
		}
		for c := rng[0]; c < rng[1]; c++ {
			out[c] = m[syms[c]]
		}
		if g.mixed && b == len(g.blocks)-1 {
			cell := g.dataCells
			out[cell] = coset.C1[plan.cands[b]<<1|syms[cell]&1]
		}
	}
	var aux [wlcrcMaxAux]uint8
	nAux := s.auxSymbols(&plan.cands, plan.group, &aux)
	first := s.firstAuxCell()
	for i := 0; i < nAux; i++ {
		out[first+i] = coset.C1[aux[i]]
	}
}

// encodeWord64 is the degenerate granularity-64 case: one block per word,
// unrestricted choice among C1, C2, C3, two-bit index in cell 31.
func (s *WLCRC) encodeWord64(p *coset.WordPlanes, out []pcm.State) {
	rng := s.geom.blocks[0]
	mask := coset.CellMask(rng[0], rng[1]-rng[0])
	idx, _ := coset.BestSWAR(s.swar64, p, mask)
	lo, hi := s.swar64[idx].Apply(p)
	coset.UnpackStates(lo&mask, hi&mask, out[:memline.WordCells])
	out[31] = coset.C1[uint8(idx)]
}

// encodeWord64Scalar is the per-cell reference of encodeWord64.
func (s *WLCRC) encodeWord64Scalar(syms []uint8, old, out []pcm.State) {
	rng := s.geom.blocks[0]
	idx, _ := coset.BestTable(s.tab64, syms[rng[0]:rng[1]], old[rng[0]:rng[1]])
	s.tab64[idx].Encode(syms[rng[0]:rng[1]], out[rng[0]:rng[1]])
	out[31] = coset.C1[uint8(idx)]
}

// Decode implements Scheme.
func (s *WLCRC) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	s.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements Scheme.
func (s *WLCRC) DecodeInto(cells []pcm.State, dst *memline.Line) {
	if cells[memline.LineCells] != flagCompressed {
		rawDecodeInto(cells, dst)
		return
	}
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, s.decodeWord(cells[w*memline.WordCells:(w+1)*memline.WordCells]))
	}
}

func (s *WLCRC) decodeWord(cells []pcm.State) uint64 {
	g := &s.geom
	slo, shi := coset.PackStates(cells)

	if s.gran == 64 {
		idx := int(coset.C1Inv[cells[31]])
		if idx > 2 {
			idx = 0
		}
		lo, hi := s.swar64[idx].ApplyInvPlanes(slo, shi)
		mask := coset.CellMask(0, g.dataCells)
		return s.wlc.DecompressWord(memline.InterleavePlanes(lo&mask, hi&mask))
	}

	var cands [wlcrcMaxBlocks]uint8
	group, mixedData := s.readAux(cells, &cands)
	alt := &s.swarAlt[group]
	var dlo, dhi uint64
	for b, rng := range g.blocks {
		t := &s.swar1
		if cands[b] == 1 {
			t = alt
		}
		lo, hi := t.ApplyInvPlanes(slo, shi)
		mask := coset.CellMask(rng[0], rng[1]-rng[0])
		dlo |= lo & mask
		dhi |= hi & mask
	}
	word := memline.InterleavePlanes(dlo, dhi)
	if g.mixed {
		word |= uint64(mixedData) << (uint(g.dataCells) * 2)
	}
	return s.wlc.DecompressWord(word)
}

// readAux recovers the candidate bits, group bit, and (for mixed
// layouts) the mixed cell's data bit from the C1-mapped auxiliary cells.
func (s *WLCRC) readAux(cells []pcm.State, cands *[wlcrcMaxBlocks]uint8) (group, mixedData uint8) {
	inv := &coset.C1Inv
	switch s.gran {
	case 8:
		a := [4]uint8{inv[cells[28]], inv[cells[29]], inv[cells[30]], inv[cells[31]]}
		cands[0], cands[1] = a[0]&1, a[0]>>1
		cands[2], cands[3] = a[1]&1, a[1]>>1
		cands[4], cands[5] = a[2]&1, a[2]>>1
		cands[6], group = a[3]&1, a[3]>>1
	case 16:
		mixedSym := inv[cells[29]]
		mixedData = mixedSym & 1
		cands[3] = mixedSym >> 1
		a30, a31 := inv[cells[30]], inv[cells[31]]
		cands[2], cands[1] = a30&1, a30>>1
		cands[0], group = a31&1, a31>>1
	case 32:
		mixedSym := inv[cells[30]]
		mixedData = mixedSym & 1
		cands[1] = mixedSym >> 1
		a31 := inv[cells[31]]
		cands[0], group = a31&1, a31>>1
	}
	return group, mixedData
}
