package core

import (
	"reflect"
	"testing"

	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// SWAR-vs-scalar equivalence: every scheme's word-parallel EncodeInto
// must produce exactly the cell vector of the PR 2 table-driven scalar
// path — same winner indices, costs, update counts and tie-breaks —
// because the encoded line is a pure function of those decisions. The
// reference encoders below are the pre-SWAR implementations, kept
// verbatim on the CostTable API.

func refRawEncode(data *memline.Line, dst []pcm.State) {
	var syms [memline.LineCells]uint8
	data.SymbolsInto(&syms)
	for c, v := range syms {
		dst[c] = coset.C1[v]
	}
}

func refLineCosets(s *LineCosets, dst, old []pcm.State, data *memline.Line) {
	copy(dst, old)
	var syms [memline.LineCells]uint8
	data.SymbolsInto(&syms)
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		hi := lo + s.blockCells
		idx, _ := coset.BestTable(s.tabs, syms[lo:hi], old[lo:hi])
		s.tabs[idx].Encode(syms[lo:hi], dst[lo:hi])
		s.writeAux(dst, b, idx)
	}
}

func refRestricted(s *RestrictedLineCosets, dst, old []pcm.State, data *memline.Line) {
	var syms [memline.LineCells]uint8
	data.SymbolsInto(&syms)
	var costs [2]float64
	var choices [2][rlcMaxBlocks]uint8
	for g := 0; g < 2; g++ {
		alt := &s.tabAlt[g]
		var total float64
		for b := 0; b < s.nblocks; b++ {
			lo := b * s.blockCells
			hi := lo + s.blockCells
			c1 := s.tab1.BlockCost(syms[lo:hi], old[lo:hi])
			ca := alt.BlockCost(syms[lo:hi], old[lo:hi])
			if ca < c1 {
				choices[g][b] = 1
				total += ca
			} else {
				total += c1
			}
		}
		costs[g] = total
	}
	group := 0
	if costs[1] < costs[0] {
		group = 1
	}
	alt := &s.tabAlt[group]
	choice := &choices[group]
	copy(dst, old)
	var bits [1 + rlcMaxBlocks]uint8
	bits[0] = uint8(group)
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		hi := lo + s.blockCells
		tab := &s.tab1
		if choice[b] == 1 {
			tab = alt
		}
		tab.Encode(syms[lo:hi], dst[lo:hi])
		bits[1+b] = choice[b]
	}
	coset.PackBitsToStates(bits[:1+s.nblocks], dst[memline.LineCells:])
}

func refFNW(f *FNW, dst, old []pcm.State, data *memline.Line) {
	tabKeep := coset.C1.CostTable(&f.em)
	var flipped coset.Mapping
	for v := uint8(0); v < 4; v++ {
		flipped[v] = coset.C1[^v&3]
	}
	tabFlip := flipped.CostTable(&f.em)
	var syms [memline.LineCells]uint8
	data.SymbolsInto(&syms)
	var bits [fnwBlocks]uint8
	for b := 0; b < fnwBlocks; b++ {
		lo := b * fnwBlockCells
		hi := lo + fnwBlockCells
		var costKeep, costFlip float64
		for c := lo; c < hi; c++ {
			costKeep += tabKeep.Cost[old[c]][syms[c]]
			costFlip += tabFlip.Cost[old[c]][syms[c]]
		}
		tab := &tabKeep
		if costFlip < costKeep {
			bits[b] = 1
			tab = &tabFlip
		}
		for c := lo; c < hi; c++ {
			dst[c] = tab.States[syms[c]]
		}
	}
	coset.PackBitsToStates(bits[:], dst[memline.LineCells:])
}

func refFlipMin(f *FlipMin, dst, old []pcm.State, data *memline.Line) {
	tab := coset.C1.CostTable(&f.em)
	words := data.Words()
	bestIdx, bestCost := 0, -1.0
	var syms [memline.WordCells]uint8
	for i := range f.maskWords {
		var cost float64
		for w := 0; w < memline.LineWords; w++ {
			memline.WordSymbols(words[w]^f.maskWords[i][w], &syms)
			base := w * memline.WordCells
			for c, v := range syms {
				cost += tab.Cost[old[base+c]][v]
			}
		}
		if bestCost < 0 || cost < bestCost {
			bestIdx, bestCost = i, cost
		}
	}
	for w := 0; w < memline.LineWords; w++ {
		memline.WordSymbols(words[w]^f.maskWords[bestIdx][w], &syms)
		base := w * memline.WordCells
		for c, v := range syms {
			dst[base+c] = coset.C1[v]
		}
	}
	bits := [4]uint8{
		uint8(bestIdx) & 1, uint8(bestIdx) >> 1 & 1,
		uint8(bestIdx) >> 2 & 1, uint8(bestIdx) >> 3 & 1,
	}
	coset.PackBitsToStates(bits[:], dst[memline.LineCells:])
}

func refWLCCosets(s *WLCCosets, dst, old []pcm.State, data *memline.Line) {
	copy(dst, old)
	if !s.wlc.LineCompressible(data) {
		refRawEncode(data, dst)
		dst[memline.LineCells] = flagUncompressed
		return
	}
	for w := 0; w < memline.LineWords; w++ {
		word := data.Word(w)
		oldW := old[w*memline.WordCells : (w+1)*memline.WordCells]
		outW := dst[w*memline.WordCells : (w+1)*memline.WordCells]
		var syms [memline.WordCells]uint8
		memline.WordSymbols(word, &syms)
		var auxBits [2 * memline.WordCells]uint8
		nAux := 2 * (memline.WordCells - s.dataCells)
		for b, rng := range s.blocks {
			idx, _ := coset.BestTable(s.tabs, syms[rng[0]:rng[1]], oldW[rng[0]:rng[1]])
			s.tabs[idx].Encode(syms[rng[0]:rng[1]], outW[rng[0]:rng[1]])
			auxBits[2*b] = uint8(idx) & 1
			auxBits[2*b+1] = uint8(idx) >> 1
		}
		coset.PackBitsToStates(auxBits[:nAux], outW[s.dataCells:])
	}
	dst[memline.LineCells] = flagCompressed
}

// refWLCRC rides on encodeWordScalar, the per-cell CostTable path kept
// in wlcrc.go for the §XI extension.
func refWLCRC(s *WLCRC, dst, old []pcm.State, data *memline.Line) {
	copy(dst, old)
	if !s.wlc.LineCompressible(data) {
		refRawEncode(data, dst)
		dst[memline.LineCells] = flagUncompressed
		return
	}
	for w := 0; w < memline.LineWords; w++ {
		s.encodeWordScalar(data.Word(w), old[w*memline.WordCells:(w+1)*memline.WordCells],
			dst[w*memline.WordCells:(w+1)*memline.WordCells])
	}
	dst[memline.LineCells] = flagCompressed
}

// encodeRef dispatches to the scalar reference of a scheme, returning
// false for schemes whose encode is already pinned by other references
// (DIN and COC4 reuse rawEncode and the LineCosets-style block loop on
// their compressed payloads; their gates and layouts are unchanged by
// this PR and covered by the round-trip and stability tests).
func encodeRef(s Scheme, dst, old []pcm.State, data *memline.Line) bool {
	switch v := s.(type) {
	case Baseline:
		refRawEncode(data, dst)
		return true
	case *LineCosets:
		refLineCosets(v, dst, old, data)
		return true
	case *RestrictedLineCosets:
		refRestricted(v, dst, old, data)
		return true
	case *FNW:
		refFNW(v, dst, old, data)
		return true
	case *FlipMin:
		refFlipMin(v, dst, old, data)
		return true
	case *WLCCosets:
		refWLCCosets(v, dst, old, data)
		return true
	case *WLCRC:
		refWLCRC(v, dst, old, data)
		return true
	}
	return false
}

// equivSchemes returns the twelve evaluation schemes plus extra
// granularity instances that stress sub-word, word and multi-word
// masked pricing, and the §VIII.D multi-objective tie-break.
func equivSchemes(t *testing.T) []Scheme {
	t.Helper()
	out := allSchemes(t)
	cfg := DefaultConfig()
	for _, bb := range []int{8, 16, 64, 128, 256} {
		out = append(out, NewLineCosets(cfg, "4cosets", coset.Table1[:], bb))
		out = append(out, NewLineCosets(cfg, "6cosets", coset.SixCosets(), bb))
	}
	for _, bb := range []int{8, 16, 32, 512} {
		out = append(out, NewRestrictedLineCosets(cfg, bb))
	}
	mcfg := DefaultConfig()
	mcfg.MultiObjectiveT = 0.01
	for _, g := range []int{8, 16, 32, 64} {
		s, err := NewWLCRC(mcfg, g)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func TestSWAREncodeMatchesScalarReference(t *testing.T) {
	r := prng.New(0x5AA5)
	covered := 0
	for _, s := range equivSchemes(t) {
		n := s.TotalCells()
		want := make([]pcm.State, n)
		got := make([]pcm.State, n)
		hasRef := false
		for trial := 0; trial < 80; trial++ {
			data := randomBiasedLine(r)
			old := randomOld(r, n)
			for i := range got {
				got[i] = pcm.State(r.Intn(pcm.NumStates))
				want[i] = got[i]
			}
			if !encodeRef(s, want, old, &data) {
				break
			}
			hasRef = true
			s.EncodeInto(got, old, &data)
			if !reflect.DeepEqual(want, got) {
				for c := range want {
					if want[c] != got[c] {
						t.Fatalf("%s: trial %d: first mismatch at cell %d: scalar %v, SWAR %v",
							s.Name(), trial, c, want[c], got[c])
					}
				}
			}
		}
		if hasRef {
			covered++
		}
	}
	if covered < 15 {
		t.Fatalf("only %d schemes had scalar references", covered)
	}
}
