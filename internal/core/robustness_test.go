package core

import (
	"testing"

	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// A decoder must tolerate arbitrary stored cell states without panicking
// and produce *some* line: corrupted or hostile array content (bit rot,
// uncorrected disturbance, a different scheme's leftovers) must never
// crash the memory controller model.
func TestDecodeNeverPanicsOnArbitraryStates(t *testing.T) {
	r := prng.New(20_24)
	for _, s := range allSchemes(t) {
		for trial := 0; trial < 500; trial++ {
			cells := make([]pcm.State, s.TotalCells())
			for i := range cells {
				cells[i] = pcm.State(r.Intn(pcm.NumStates))
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s: Decode panicked on arbitrary states: %v", s.Name(), p)
					}
				}()
				_ = s.Decode(cells)
			}()
		}
	}
}

// Decoding another scheme's encoding must not panic either (it will of
// course produce garbage data).
func TestCrossSchemeDecodeNeverPanics(t *testing.T) {
	r := prng.New(555)
	schemes := allSchemes(t)
	for _, enc := range schemes {
		data := randomBiasedLine(r)
		cells := enc.Encode(InitialCells(enc.TotalCells()), &data)
		for _, dec := range schemes {
			n := dec.TotalCells()
			view := make([]pcm.State, n)
			copy(view, cells) // truncate or zero-pad to the decoder's geometry
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s decoding %s cells panicked: %v", dec.Name(), enc.Name(), p)
					}
				}()
				_ = dec.Decode(view)
			}()
		}
	}
}

// Encoding must be a pure function of (old, data): repeated calls with
// identical inputs yield identical outputs for every scheme.
func TestEncodeIsDeterministic(t *testing.T) {
	r := prng.New(404)
	for _, s := range allSchemes(t) {
		data := randomBiasedLine(r)
		old := InitialCells(s.TotalCells())
		for i := range old {
			old[i] = pcm.State(r.Intn(pcm.NumStates))
		}
		a := s.Encode(old, &data)
		b := s.Encode(old, &data)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: nondeterministic encode at cell %d", s.Name(), i)
				break
			}
		}
	}
}

// A flipped flag cell on an encoded line must not panic the decoder
// (the raw path decodes whatever the cells hold).
func TestFlagCellCorruptionTolerated(t *testing.T) {
	r := prng.New(31337)
	for _, name := range []string{"DIN", "COC+4cosets", "WLC+4cosets", "WLCRC-16"} {
		s, err := NewScheme(name, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		data := randomBiasedLine(r)
		cells := s.Encode(InitialCells(s.TotalCells()), &data)
		for flag := pcm.State(0); flag < pcm.NumStates; flag++ {
			mut := append([]pcm.State(nil), cells...)
			mut[memline.LineCells] = flag
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s: flag %v panicked: %v", name, flag, p)
					}
				}()
				_ = s.Decode(mut)
			}()
		}
	}
}
