package core

import (
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// Plane-native codec entry points.
//
// The replay engine stores lines in the bit-plane layout of
// coset.PlaneWords: (lo, hi) uint64 pairs per 32 cells, tail bits zero.
// Schemes implementing PlaneScheme encode and decode that layout
// directly — reading old states and writing new states as planes — so
// the per-write PackStates/UnpackStates round trips of the scalar API
// disappear from the hot path. The scalar EncodeInto/DecodeInto
// implementations remain untouched as the reference the equivalence and
// fuzz tests hold the plane paths to.

// PlaneScheme is the plane-resident codec API. dst and old have
// coset.PlaneWords(TotalCells()) words and must not alias; every word of
// dst is written (cells the scheme leaves alone are copied from old) and
// the tail-zero invariant is preserved. Implementations must not retain
// dst, and must not retain or modify old.
type PlaneScheme interface {
	EncodePlanesInto(dst, old []uint64, data *memline.Line)
	DecodePlanesInto(planes []uint64, dst *memline.Line)
}

// PlaneCompressionGate is CompressionGate for plane-resident lines.
type PlaneCompressionGate interface {
	CompressedWritePlanes(planes []uint64) bool
}

// PlaneCodec resolves s's plane-native entry points, reporting whether
// the scheme encodes plane-resident lines without materializing cell
// vectors. Counter schemes always answer false — their keyed paths need
// (addr, ctr) and run through the frontends' scalar adapter.
func PlaneCodec(s Scheme) (PlaneScheme, bool) {
	if _, ok := s.(CounterScheme); ok {
		return nil, false
	}
	ps, ok := s.(PlaneScheme)
	return ps, ok
}

// CompressedWritePlanesFunc resolves the plane-resident write
// classifier: plane-gated schemes answer through their flag cell,
// everything else counts every write as encoded. Only meaningful for
// schemes on the plane-native path (PlaneCodec ok).
func CompressedWritePlanesFunc(s Scheme) func([]uint64) bool {
	if g, ok := s.(PlaneCompressionGate); ok {
		return g.CompressedWritePlanes
	}
	return func([]uint64) bool { return true }
}

// PlaneEncodeJob is one line write of a plane-resident batch encode run.
type PlaneEncodeJob struct {
	Dst, Old []uint64
	Data     *memline.Line
}

// EncodePlaneBatch encodes a run of plane-resident writes, hoisting the
// interface dispatch out of the per-job loop — the plane counterpart of
// EncodeBatchFunc for the shard's applyRun path.
func EncodePlaneBatch(ps PlaneScheme, jobs []PlaneEncodeJob) {
	for i := range jobs {
		ps.EncodePlanesInto(jobs[i].Dst, jobs[i].Old, jobs[i].Data)
	}
}

// rawEncodePlanes is rawEncode straight into plane storage: the fixed C1
// mapping applied word-parallel, with no state unpacking.
func rawEncodePlanes(data *memline.Line, dst []uint64) {
	for w := 0; w < memline.LineWords; w++ {
		dst[2*w], dst[2*w+1] = coset.C1SWAR.ApplyPlanes(memline.LoHiPlanes(data.Word(w)))
	}
}

// rawDecodePlanes inverts rawEncodePlanes.
func rawDecodePlanes(planes []uint64, l *memline.Line) {
	for w := 0; w < memline.LineWords; w++ {
		l.SetWord(w, memline.InterleavePlanes(coset.C1SWAR.ApplyInvPlanes(planes[2*w], planes[2*w+1])))
	}
}

// tailWord is the plane-pair index of the word holding cells 256+ — the
// flag/aux word of every 257- and 258-cell scheme.
const tailWord = 2 * (memline.LineCells / memline.WordCells)

// setTailFlag writes the flag cell 256 as the only occupied cell of the
// final word pair, zeroing the rest of both planes.
func setTailFlag(dst []uint64, flag pcm.State) {
	dst[tailWord] = uint64(flag & 1)
	dst[tailWord+1] = uint64(flag >> 1)
}

// tailFlag reads the flag cell 256.
func tailFlag(planes []uint64) pcm.State {
	return pcm.State(planes[tailWord]&1 | planes[tailWord+1]&1<<1)
}

// setTailBits4 stores four auxiliary bits in cells 256 and 257 under the
// identity AuxPack mapping (cell 256 = b1<<1|b0, cell 257 = b3<<1|b2),
// zeroing the rest of the final word pair — the plane form of
// coset.PackBitsToStates for the FlipMin/FNW tails.
func setTailBits4(dst []uint64, b uint8) {
	dst[tailWord] = uint64(b&1) | uint64(b>>2&1)<<1
	dst[tailWord+1] = uint64(b>>1&1) | uint64(b>>3&1)<<1
}

// tailBits4 reads the four auxiliary bits stored by setTailBits4.
func tailBits4(planes []uint64) uint8 {
	lo, hi := planes[tailWord], planes[tailWord+1]
	return uint8(lo&1) | uint8(hi&1)<<1 | uint8(lo>>1&1)<<2 | uint8(hi>>1&1)<<3
}

// Plane variants of the line-level SWAR plumbing in swarline.go --------

// initPlanes fills the planes from the line's words and a plane-resident
// old line — SetOldPlanes instead of PackStates per word.
func (lp *linePlanes) initPlanes(data *memline.Line, oldP []uint64) {
	lp.initWordsPlanes(data, oldP, memline.LineWords)
}

// initWordsPlanes fills only the first n words' planes.
func (lp *linePlanes) initWordsPlanes(data *memline.Line, oldP []uint64, n int) {
	for w := 0; w < n; w++ {
		lp[w].SetData(data.Word(w))
		lp[w].SetOldPlanes(oldP[2*w], oldP[2*w+1])
	}
}

// writePlanes stores the first n accumulated cells into a plane-resident
// line. Full words overwrite; a final partial word merges, keeping dst's
// cells at and beyond n (COC4's 32-bit payload ends mid-word and the
// cells above it keep their old states).
func (ns *newStates) writePlanes(dst []uint64, n int) {
	full := n / memline.WordCells
	for w := 0; w < full; w++ {
		dst[2*w], dst[2*w+1] = ns.lo[w], ns.hi[w]
	}
	if rem := n - full*memline.WordCells; rem > 0 {
		mask := coset.CellMask(0, rem)
		dst[2*full] = dst[2*full]&^mask | ns.lo[full]&mask
		dst[2*full+1] = dst[2*full+1]&^mask | ns.hi[full]&mask
	}
}

// fromPlanes loads the first n words' state planes from a plane-resident
// line — the zero-conversion form of lineStatePlanes.init.
func (sp *lineStatePlanes) fromPlanes(planes []uint64, n int) {
	for w := 0; w < n; w++ {
		sp[w][0], sp[w][1] = planes[2*w], planes[2*w+1]
	}
}

// Baseline --------------------------------------------------------------

// EncodePlanesInto implements PlaneScheme.
func (Baseline) EncodePlanesInto(dst, old []uint64, data *memline.Line) {
	rawEncodePlanes(data, dst)
}

// DecodePlanesInto implements PlaneScheme.
func (Baseline) DecodePlanesInto(planes []uint64, dst *memline.Line) {
	rawDecodePlanes(planes, dst)
}
