package core

import (
	"fmt"

	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// LineCosets is the family of unrestricted coset encoders operating on a
// bare (uncompressed) memory line with auxiliary symbols stored in extra
// cells, as in §III and the granularity sweeps of Figures 1–3 and 5:
//
//   - 6cosets [34]: six candidates, two aux cells per block, the
//     candidate identified by the i-th cheapest two-cell state pair.
//   - 4cosets / 3cosets (Table I): one aux cell per block, candidate Ci
//     stored directly as state Si (§IX.A).
//
// The block granularity ranges from 8 bits up to the full 512-bit line.
type LineCosets struct {
	name       string
	cands      []coset.Mapping
	blockBits  int
	blockCells int
	nblocks    int
	auxPerBlk  int // aux cells per block: 1 for <=4 candidates, 2 for 6
	em         pcm.EnergyModel
	pairs      [][2]pcm.State
	pairIdx    map[[2]pcm.State]int
}

// NewLineCosets builds an unrestricted coset scheme. blockBits must
// divide 512 and be even. With more than four candidates two auxiliary
// cells per block are used, otherwise one.
func NewLineCosets(cfg Config, name string, cands []coset.Mapping, blockBits int) *LineCosets {
	if blockBits < 2 || blockBits%2 != 0 || memline.LineBits%blockBits != 0 {
		panic(fmt.Sprintf("core: invalid coset block size %d", blockBits))
	}
	if len(cands) < 2 || len(cands) > 16 {
		panic("core: candidate count out of range")
	}
	s := &LineCosets{
		name:       name,
		cands:      cands,
		blockBits:  blockBits,
		blockCells: blockBits / 2,
		nblocks:    memline.LineBits / blockBits,
		auxPerBlk:  1,
		em:         cfg.Energy,
	}
	if len(cands) > 4 {
		s.auxPerBlk = 2
		s.pairs = coset.AuxPairs(&cfg.Energy)[:len(cands)]
		s.pairIdx = auxPairIndex(s.pairs)
	}
	return s
}

// Name implements Scheme.
func (s *LineCosets) Name() string { return s.name }

// BlockBits returns the encoding granularity in bits.
func (s *LineCosets) BlockBits() int { return s.blockBits }

// TotalCells implements Scheme.
func (s *LineCosets) TotalCells() int {
	return memline.LineCells + s.nblocks*s.auxPerBlk
}

// DataCells implements Scheme.
func (s *LineCosets) DataCells() int { return memline.LineCells }

// Encode implements Scheme. Each block independently picks the candidate
// with minimum differential-write energy; its index goes to the block's
// auxiliary cells.
func (s *LineCosets) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	syms := lineSymbols(data)
	out := make([]pcm.State, s.TotalCells())
	copy(out, old) // aux cells not rewritten below keep their states
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		hi := lo + s.blockCells
		idx, _ := coset.Best(&s.em, s.cands, syms[lo:hi], old[lo:hi])
		coset.Encode(s.cands[idx], syms[lo:hi], out[lo:hi])
		s.writeAux(out, b, idx)
	}
	return out
}

func (s *LineCosets) writeAux(out []pcm.State, block, idx int) {
	base := memline.LineCells + block*s.auxPerBlk
	if s.auxPerBlk == 1 {
		// §IX.A: candidate Ci is stored directly as state Si, so the
		// frequent C1/C2 keep the aux cell in a low-energy state.
		out[base] = pcm.State(idx)
		return
	}
	pair := s.pairs[idx]
	out[base] = pair[0]
	out[base+1] = pair[1]
}

func (s *LineCosets) readAux(cells []pcm.State, block int) int {
	base := memline.LineCells + block*s.auxPerBlk
	if s.auxPerBlk == 1 {
		idx := int(cells[base])
		if idx >= len(s.cands) {
			idx = 0
		}
		return idx
	}
	if idx, ok := s.pairIdx[[2]pcm.State{cells[base], cells[base+1]}]; ok {
		return idx
	}
	return 0
}

// Decode implements Scheme.
func (s *LineCosets) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	blkSyms := make([]uint8, s.blockCells)
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		idx := s.readAux(cells, b)
		coset.Decode(s.cands[idx], cells[lo:lo+s.blockCells], blkSyms)
		for i, v := range blkSyms {
			l.SetSymbol(lo+i, v)
		}
	}
	return l
}

// RestrictedLineCosets is the line-level restricted coset encoding of §V
// (called 3-r-cosets in Figure 5): every block of the line is encoded
// with one of two candidates from a per-line group — either {C1,C2} or
// {C1,C3} — so each block costs one auxiliary bit plus one global bit for
// the whole line. The auxiliary bits are packed two per cell through the
// fixed C1 mapping.
type RestrictedLineCosets struct {
	name       string
	blockBits  int
	blockCells int
	nblocks    int
	em         pcm.EnergyModel
}

// NewRestrictedLineCosets builds the 3-r-cosets scheme at the given block
// granularity. blockBits must divide 512 and be even.
func NewRestrictedLineCosets(cfg Config, blockBits int) *RestrictedLineCosets {
	if blockBits < 2 || blockBits%2 != 0 || memline.LineBits%blockBits != 0 {
		panic(fmt.Sprintf("core: invalid coset block size %d", blockBits))
	}
	return &RestrictedLineCosets{
		name:       fmt.Sprintf("3-r-cosets-%d", blockBits),
		blockBits:  blockBits,
		blockCells: blockBits / 2,
		nblocks:    memline.LineBits / blockBits,
		em:         cfg.Energy,
	}
}

// Name implements Scheme.
func (s *RestrictedLineCosets) Name() string { return s.name }

// BlockBits returns the encoding granularity in bits.
func (s *RestrictedLineCosets) BlockBits() int { return s.blockBits }

// auxCells returns the number of auxiliary cells: 1 global bit plus one
// bit per block, two bits per cell.
func (s *RestrictedLineCosets) auxCells() int { return (1 + s.nblocks + 1) / 2 }

// TotalCells implements Scheme.
func (s *RestrictedLineCosets) TotalCells() int { return memline.LineCells + s.auxCells() }

// DataCells implements Scheme.
func (s *RestrictedLineCosets) DataCells() int { return memline.LineCells }

// Encode implements Scheme: §V's three steps — encode every block with
// {C1,C2}, encode every block with {C1,C3}, keep the better line.
func (s *RestrictedLineCosets) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	syms := lineSymbols(data)
	type plan struct {
		cost   float64
		choice []uint8 // per block: 0 = C1, 1 = group alternate
	}
	plans := [2]plan{}
	for g, alt := range [2]coset.Mapping{coset.C2, coset.C3} {
		choice := make([]uint8, s.nblocks)
		var total float64
		for b := 0; b < s.nblocks; b++ {
			lo := b * s.blockCells
			hi := lo + s.blockCells
			c1 := coset.BlockCost(&s.em, coset.C1, syms[lo:hi], old[lo:hi])
			ca := coset.BlockCost(&s.em, alt, syms[lo:hi], old[lo:hi])
			if ca < c1 {
				choice[b] = 1
				total += ca
			} else {
				total += c1
			}
		}
		plans[g] = plan{cost: total, choice: choice}
	}
	group := 0
	if plans[1].cost < plans[0].cost {
		group = 1
	}
	alt := coset.C2
	if group == 1 {
		alt = coset.C3
	}
	p := plans[group]

	out := make([]pcm.State, s.TotalCells())
	copy(out, old)
	bits := make([]uint8, 1+s.nblocks)
	bits[0] = uint8(group)
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		hi := lo + s.blockCells
		m := coset.C1
		if p.choice[b] == 1 {
			m = alt
		}
		coset.Encode(m, syms[lo:hi], out[lo:hi])
		bits[1+b] = p.choice[b]
	}
	coset.PackBitsToStates(bits, out[memline.LineCells:])
	return out
}

// Decode implements Scheme.
func (s *RestrictedLineCosets) Decode(cells []pcm.State) memline.Line {
	bits := coset.UnpackStatesToBits(cells[memline.LineCells:], 1+s.nblocks)
	alt := coset.C2
	if bits[0] == 1 {
		alt = coset.C3
	}
	var l memline.Line
	blkSyms := make([]uint8, s.blockCells)
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		m := coset.C1
		if bits[1+b] == 1 {
			m = alt
		}
		coset.Decode(m, cells[lo:lo+s.blockCells], blkSyms)
		for i, v := range blkSyms {
			l.SetSymbol(lo+i, v)
		}
	}
	return l
}
