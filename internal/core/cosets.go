package core

import (
	"fmt"

	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// LineCosets is the family of unrestricted coset encoders operating on a
// bare (uncompressed) memory line with auxiliary symbols stored in extra
// cells, as in §III and the granularity sweeps of Figures 1–3 and 5:
//
//   - 6cosets [34]: six candidates, two aux cells per block, the
//     candidate identified by the i-th cheapest two-cell state pair.
//   - 4cosets / 3cosets (Table I): one aux cell per block, candidate Ci
//     stored directly as state Si (§IX.A).
//
// The block granularity ranges from 8 bits up to the full 512-bit line.
type LineCosets struct {
	name       string
	cands      []coset.Mapping
	tabs       []coset.CostTable
	swar       []coset.SWARTable
	blockBits  int
	blockCells int
	nblocks    int
	auxPerBlk  int // aux cells per block: 1 for <=4 candidates, 2 for 6
	em         pcm.EnergyModel
	pairs      [][2]pcm.State
	pairIdx    map[[2]pcm.State]int
}

// NewLineCosets builds an unrestricted coset scheme. blockBits must
// divide 512 and be even. With more than four candidates two auxiliary
// cells per block are used, otherwise one.
func NewLineCosets(cfg Config, name string, cands []coset.Mapping, blockBits int) *LineCosets {
	if blockBits < 2 || blockBits%2 != 0 || memline.LineBits%blockBits != 0 {
		panic(fmt.Sprintf("core: invalid coset block size %d", blockBits))
	}
	if len(cands) < 2 || len(cands) > 16 {
		panic("core: candidate count out of range")
	}
	s := &LineCosets{
		name:       name,
		cands:      cands,
		tabs:       coset.CostTables(&cfg.Energy, cands),
		swar:       coset.SWARTables(&cfg.Energy, cands),
		blockBits:  blockBits,
		blockCells: blockBits / 2,
		nblocks:    memline.LineBits / blockBits,
		auxPerBlk:  1,
		em:         cfg.Energy,
	}
	if len(cands) > 4 {
		s.auxPerBlk = 2
		s.pairs = coset.AuxPairs(&cfg.Energy)[:len(cands)]
		s.pairIdx = auxPairIndex(s.pairs)
	}
	return s
}

// Name implements Scheme.
func (s *LineCosets) Name() string { return s.name }

// BlockBits returns the encoding granularity in bits.
func (s *LineCosets) BlockBits() int { return s.blockBits }

// TotalCells implements Scheme.
func (s *LineCosets) TotalCells() int {
	return memline.LineCells + s.nblocks*s.auxPerBlk
}

// DataCells implements Scheme.
func (s *LineCosets) DataCells() int { return memline.LineCells }

// Encode implements Scheme.
func (s *LineCosets) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, s.TotalCells())
	s.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements Scheme. Each block independently picks the
// candidate with minimum differential-write energy by word-parallel
// masked pricing on the line's bit-planes; its index goes to the block's
// auxiliary cells.
func (s *LineCosets) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	// Every data cell is unpacked and every block writes its aux cells,
	// so dst needs no copy-from-old.
	var lp linePlanes
	lp.init(data, old)
	var ns newStates
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		hi := lo + s.blockCells
		idx, _ := lp.bestBlock(s.swar, lo, hi)
		ns.applyBlock(&s.swar[idx], &lp, lo, hi)
		s.writeAux(dst, b, idx)
	}
	ns.unpack(dst, memline.LineCells)
}

func (s *LineCosets) writeAux(out []pcm.State, block, idx int) {
	base := memline.LineCells + block*s.auxPerBlk
	if s.auxPerBlk == 1 {
		// §IX.A: candidate Ci is stored directly as state Si, so the
		// frequent C1/C2 keep the aux cell in a low-energy state.
		out[base] = pcm.State(idx)
		return
	}
	pair := s.pairs[idx]
	out[base] = pair[0]
	out[base+1] = pair[1]
}

func (s *LineCosets) readAux(cells []pcm.State, block int) int {
	base := memline.LineCells + block*s.auxPerBlk
	if s.auxPerBlk == 1 {
		idx := int(cells[base])
		if idx >= len(s.cands) {
			idx = 0
		}
		return idx
	}
	if idx, ok := s.pairIdx[[2]pcm.State{cells[base], cells[base+1]}]; ok {
		return idx
	}
	return 0
}

// Decode implements Scheme.
func (s *LineCosets) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	s.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements Scheme.
func (s *LineCosets) DecodeInto(cells []pcm.State, dst *memline.Line) {
	var sp lineStatePlanes
	sp.init(cells)
	var dw dataWords
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		dw.decodeBlock(&s.swar[s.readAux(cells, b)], &sp, lo, lo+s.blockCells)
	}
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, dw.word(w))
	}
}

// RestrictedLineCosets is the line-level restricted coset encoding of §V
// (called 3-r-cosets in Figure 5): every block of the line is encoded
// with one of two candidates from a per-line group — either {C1,C2} or
// {C1,C3} — so each block costs one auxiliary bit plus one global bit for
// the whole line. The auxiliary bits are packed two per cell through the
// fixed C1 mapping.
type RestrictedLineCosets struct {
	name       string
	blockBits  int
	blockCells int
	nblocks    int
	em         pcm.EnergyModel
	tab1       coset.CostTable    // C1
	tabAlt     [2]coset.CostTable // C2, C3 — the two group alternates
	swar1      coset.SWARTable
	swarAlt    [2]coset.SWARTable
}

// NewRestrictedLineCosets builds the 3-r-cosets scheme at the given block
// granularity. blockBits must divide 512 and be even.
func NewRestrictedLineCosets(cfg Config, blockBits int) *RestrictedLineCosets {
	if blockBits < 2 || blockBits%2 != 0 || memline.LineBits%blockBits != 0 {
		panic(fmt.Sprintf("core: invalid coset block size %d", blockBits))
	}
	return &RestrictedLineCosets{
		name:       fmt.Sprintf("3-r-cosets-%d", blockBits),
		blockBits:  blockBits,
		blockCells: blockBits / 2,
		nblocks:    memline.LineBits / blockBits,
		em:         cfg.Energy,
		tab1:       coset.C1.CostTable(&cfg.Energy),
		tabAlt:     [2]coset.CostTable{coset.C2.CostTable(&cfg.Energy), coset.C3.CostTable(&cfg.Energy)},
		swar1:      coset.C1.SWAR(&cfg.Energy),
		swarAlt:    [2]coset.SWARTable{coset.C2.SWAR(&cfg.Energy), coset.C3.SWAR(&cfg.Energy)},
	}
}

// Name implements Scheme.
func (s *RestrictedLineCosets) Name() string { return s.name }

// BlockBits returns the encoding granularity in bits.
func (s *RestrictedLineCosets) BlockBits() int { return s.blockBits }

// auxCells returns the number of auxiliary cells: 1 global bit plus one
// bit per block, two bits per cell.
func (s *RestrictedLineCosets) auxCells() int { return (1 + s.nblocks + 1) / 2 }

// TotalCells implements Scheme.
func (s *RestrictedLineCosets) TotalCells() int { return memline.LineCells + s.auxCells() }

// DataCells implements Scheme.
func (s *RestrictedLineCosets) DataCells() int { return memline.LineCells }

// rlcMaxBlocks bounds the per-line block count (2-bit blocks) for the
// fixed plan scratch.
const rlcMaxBlocks = memline.LineBits / 2

// Encode implements Scheme.
func (s *RestrictedLineCosets) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, s.TotalCells())
	s.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements Scheme: §V's three steps — encode every block
// with {C1,C2}, encode every block with {C1,C3}, keep the better line.
func (s *RestrictedLineCosets) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	var lp linePlanes
	lp.init(data, old)
	var costs [2]float64
	var choices [2][rlcMaxBlocks]uint8 // per block: 0 = C1, 1 = group alternate
	for g := 0; g < 2; g++ {
		alt := &s.swarAlt[g]
		var total float64
		for b := 0; b < s.nblocks; b++ {
			lo := b * s.blockCells
			hi := lo + s.blockCells
			c1, _ := lp.blockCost(&s.swar1, lo, hi)
			ca, _ := lp.blockCost(alt, lo, hi)
			if ca < c1 {
				choices[g][b] = 1
				total += ca
			} else {
				total += c1
			}
		}
		costs[g] = total
	}
	group := 0
	if costs[1] < costs[0] {
		group = 1
	}
	alt := &s.swarAlt[group]
	choice := &choices[group]

	var ns newStates
	var bits [1 + rlcMaxBlocks]uint8
	bits[0] = uint8(group)
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		tab := &s.swar1
		if choice[b] == 1 {
			tab = alt
		}
		ns.applyBlock(tab, &lp, lo, lo+s.blockCells)
		bits[1+b] = choice[b]
	}
	ns.unpack(dst, memline.LineCells)
	coset.PackBitsToStates(bits[:1+s.nblocks], dst[memline.LineCells:])
}

// Decode implements Scheme.
func (s *RestrictedLineCosets) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	s.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements Scheme.
func (s *RestrictedLineCosets) DecodeInto(cells []pcm.State, dst *memline.Line) {
	var bits [1 + rlcMaxBlocks]uint8
	coset.UnpackBits(cells[memline.LineCells:], bits[:1+s.nblocks])
	alt := &s.swarAlt[bits[0]&1]
	var sp lineStatePlanes
	sp.init(cells)
	var dw dataWords
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		tab := &s.swar1
		if bits[1+b] == 1 {
			tab = alt
		}
		dw.decodeBlock(tab, &sp, lo, lo+s.blockCells)
	}
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, dw.word(w))
	}
}
