package core

import (
	"testing"

	"wlcrc/internal/compress"
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// --- LineCosets (6cosets / 4cosets / 3cosets granularity sweep) ---

func TestLineCosetsAuxGeometry(t *testing.T) {
	cfg := DefaultConfig()
	six := NewLineCosets(cfg, "6cosets", coset.SixCosets(), 512)
	if six.TotalCells() != 258 {
		t.Errorf("6cosets-512 total cells = %d, want 258 (two aux symbols)", six.TotalCells())
	}
	four := NewLineCosets(cfg, "4cosets-16", coset.Table1[:], 16)
	// 32 blocks, one aux cell each.
	if four.TotalCells() != 256+32 {
		t.Errorf("4cosets-16 total cells = %d, want 288", four.TotalCells())
	}
	six8 := NewLineCosets(cfg, "6cosets-8", coset.SixCosets(), 8)
	// 64 blocks, two aux cells each: the 25% overhead of §II.C.
	if six8.TotalCells() != 256+128 {
		t.Errorf("6cosets-8 total cells = %d, want 384", six8.TotalCells())
	}
}

func TestLineCosetsRoundTripAllGranularities(t *testing.T) {
	r := prng.New(8)
	cfg := DefaultConfig()
	for _, g := range []int{8, 16, 32, 64, 128, 256, 512} {
		for _, tc := range []struct {
			name  string
			cands []coset.Mapping
		}{
			{"6cosets", coset.SixCosets()},
			{"4cosets", coset.Table1[:]},
			{"3cosets", coset.Table1[:3]},
		} {
			s := NewLineCosets(cfg, tc.name, tc.cands, g)
			cells := InitialCells(s.TotalCells())
			for step := 0; step < 5; step++ {
				data := randomBiasedLine(r)
				cells = s.Encode(cells, &data)
				got := s.Decode(cells)
				if !got.Equal(&data) {
					t.Fatalf("%s-%d: round trip failed", tc.name, g)
				}
			}
		}
	}
}

func TestLineCosetsPicksCheaperThanC1(t *testing.T) {
	// For a fresh line of all-ones data, an encoder with C2 available
	// must beat the baseline data cost.
	cfg := DefaultConfig()
	em := cfg.Energy
	s := NewLineCosets(cfg, "4cosets", coset.Table1[:], 64)
	var data memline.Line
	for i := range data {
		data[i] = 0xff
	}
	old := InitialCells(s.TotalCells())
	cells := s.Encode(old, &data)
	st := em.DiffWrite(old, cells, s.DataCells())
	// All-ones symbols (11) map to S1 under C2: zero writes on fresh
	// (all-S1) cells for the data region.
	if st.EnergyData != 0 {
		t.Errorf("data energy = %v, want 0 (C2 maps 11 to S1 = initial state)", st.EnergyData)
	}
}

func TestRestrictedLineCosetsRoundTrip(t *testing.T) {
	r := prng.New(21)
	cfg := DefaultConfig()
	for _, g := range []int{8, 16, 32, 64, 128} {
		s := NewRestrictedLineCosets(cfg, g)
		wantAux := (1 + 512/g + 1) / 2
		if s.TotalCells() != 256+wantAux {
			t.Errorf("3-r-cosets-%d total = %d, want %d", g, s.TotalCells(), 256+wantAux)
		}
		cells := InitialCells(s.TotalCells())
		for step := 0; step < 8; step++ {
			data := randomBiasedLine(r)
			cells = s.Encode(cells, &data)
			got := s.Decode(cells)
			if !got.Equal(&data) {
				t.Fatalf("3-r-cosets-%d: round trip failed", g)
			}
		}
	}
}

func TestRestrictedUsesFewerAuxCellsThanUnrestricted(t *testing.T) {
	cfg := DefaultConfig()
	// §V example: at 16-bit granularity, restricted needs 33 bits (17
	// cells) vs 64 bits (32 cells) for unrestricted.
	restricted := NewRestrictedLineCosets(cfg, 16)
	unrestricted := NewLineCosets(cfg, "3cosets", coset.Table1[:3], 16)
	ra := restricted.TotalCells() - 256
	ua := unrestricted.TotalCells() - 256
	if ra != 17 {
		t.Errorf("restricted aux cells = %d, want 17", ra)
	}
	if ua != 32 {
		t.Errorf("unrestricted aux cells = %d, want 32", ua)
	}
}

// --- FNW ---

func TestFNWFlipsBeneficialBlock(t *testing.T) {
	cfg := DefaultConfig()
	em := cfg.Energy
	s := NewFNW(cfg)
	// All-ones data over fresh (all-S1) cells: unflipped symbols 11->S3
	// (expensive); flipped symbols 00->S1 (free).
	var data memline.Line
	for i := range data {
		data[i] = 0xff
	}
	old := InitialCells(s.TotalCells())
	cells := s.Encode(old, &data)
	st := em.DiffWrite(old, cells, s.DataCells())
	if st.EnergyData != 0 {
		t.Errorf("FNW data energy = %v, want 0 after flipping", st.EnergyData)
	}
	got := s.Decode(cells)
	if !got.Equal(&data) {
		t.Error("FNW decode mismatch")
	}
}

func TestFNWCostNeverWorseThanBaselinePerWrite(t *testing.T) {
	// FNW includes "keep" as an option, so on any single fresh write its
	// data cost is at most the baseline's.
	r := prng.New(14)
	em := pcm.DefaultEnergy()
	fnw := NewFNW(DefaultConfig())
	base := NewBaseline()
	for trial := 0; trial < 100; trial++ {
		data := randomBiasedLine(r)
		oldF := InitialCells(fnw.TotalCells())
		oldB := InitialCells(base.TotalCells())
		fc := fnw.Encode(oldF, &data)
		bc := base.Encode(oldB, &data)
		fe := em.DiffWrite(oldF, fc, fnw.DataCells()).EnergyData
		be := em.DiffWrite(oldB, bc, base.DataCells()).EnergyData
		if fe > be {
			t.Fatalf("trial %d: FNW data energy %.0f > baseline %.0f", trial, fe, be)
		}
	}
}

// --- FlipMin ---

func TestFlipMinDeterministicMasks(t *testing.T) {
	a := NewFlipMin(DefaultConfig())
	b := NewFlipMin(DefaultConfig())
	for i := range a.masks {
		if a.masks[i] != b.masks[i] {
			t.Fatal("FlipMin masks are not deterministic")
		}
	}
	var zero memline.Line
	if a.masks[0] != zero {
		t.Error("mask 0 must be the all-zero vector")
	}
}

func TestFlipMinNeverWorseThanBaselineFreshWrite(t *testing.T) {
	r := prng.New(7)
	em := pcm.DefaultEnergy()
	fm := NewFlipMin(DefaultConfig())
	base := NewBaseline()
	for trial := 0; trial < 50; trial++ {
		data := randomBiasedLine(r)
		oldF := InitialCells(fm.TotalCells())
		fc := fm.Encode(oldF, &data)
		fe := em.DiffWrite(oldF, fc, fm.DataCells()).EnergyData
		oldB := InitialCells(base.TotalCells())
		bc := base.Encode(oldB, &data)
		be := em.DiffWrite(oldB, bc, base.DataCells()).EnergyData
		if fe > be {
			t.Fatalf("FlipMin data energy %.0f > baseline %.0f (mask 0 is identity)", fe, be)
		}
	}
}

// --- DIN ---

func TestDINCompressiblePath(t *testing.T) {
	s := NewDIN(DefaultConfig())
	var data memline.Line // zero line: trivially compressible
	if !s.Compressible(&data) {
		t.Fatal("zero line must pass the FPC+BDI gate")
	}
	cells := s.Encode(InitialCells(s.TotalCells()), &data)
	if cells[memline.LineCells] != flagCompressed {
		t.Error("flag must mark compressed")
	}
	got := s.Decode(cells)
	if !got.Equal(&data) {
		t.Error("DIN decode mismatch on zero line")
	}
}

func TestDINAvoidsHighestEnergyState(t *testing.T) {
	// The whole point of the 3-to-4 remap: no encoded payload cell may
	// sit in S4. (Raw-fallback lines may.)
	r := prng.New(55)
	s := NewDIN(DefaultConfig())
	checked := 0
	for trial := 0; trial < 200; trial++ {
		var data memline.Line
		// Small-valued words compress well under FPC.
		for w := 0; w < memline.LineWords; w++ {
			data.SetWord(w, uint64(r.Uint32()&0xffff))
		}
		if !s.Compressible(&data) {
			continue
		}
		cells := s.Encode(InitialCells(s.TotalCells()), &data)
		if cells[memline.LineCells] != flagCompressed {
			continue
		}
		checked++
		// The 3-to-4 remap covers the expanded payload (bits 0..491 =
		// cells 0..245); the 20 BCH parity bits are stored raw and may
		// use any state.
		for c := 0; c < dinPayloadBits/2; c++ {
			if cells[c] == pcm.S4 {
				t.Fatalf("trial %d: payload cell %d in S4", trial, c)
			}
		}
		got := s.Decode(cells)
		if !got.Equal(&data) {
			t.Fatalf("trial %d: decode mismatch", trial)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d compressible trials; generator broken", checked)
	}
}

func TestDINUncompressibleFallsBack(t *testing.T) {
	r := prng.New(66)
	s := NewDIN(DefaultConfig())
	var data memline.Line
	r.Fill(data[:])
	if s.Compressible(&data) {
		t.Skip("random line unexpectedly compressible")
	}
	cells := s.Encode(InitialCells(s.TotalCells()), &data)
	if cells[memline.LineCells] != flagUncompressed {
		t.Error("flag must mark uncompressed")
	}
	if got := s.Decode(cells); !got.Equal(&data) {
		t.Error("raw fallback decode mismatch")
	}
}

func TestDINCorrectsInjectedDisturbance(t *testing.T) {
	// Flip up to two stored payload bits (simulated write disturbance)
	// and verify the BCH layer repairs them: decode must still return
	// the original data, and CorrectLine must report the repairs.
	s := NewDIN(DefaultConfig())
	var data memline.Line
	for w := 0; w < memline.LineWords; w++ {
		data.SetWord(w, uint64(w)*0x1111)
	}
	clean := s.Encode(InitialCells(s.TotalCells()), &data)
	if clean[memline.LineCells] != flagCompressed {
		t.Fatal("test line must be compressible")
	}
	for _, positions := range [][]int{{3}, {100, 350}, {0, 511}} {
		cells := append([]pcm.State(nil), clean...)
		for _, bit := range positions {
			// Disturb the cell holding this payload bit: write
			// disturbance drives a cell toward SET (S2). Flipping the
			// decoded bit via a symbol change models the corruption.
			cellIdx := bit / 2
			inv := coset.C1.Inverse()
			sym := inv[cells[cellIdx]]
			sym ^= 1 << uint(bit%2)
			cells[cellIdx] = coset.C1[sym]
		}
		fixed := s.CorrectLine(cells)
		if fixed != len(positions) {
			t.Errorf("positions %v: corrected %d", positions, fixed)
		}
		got := s.Decode(cells)
		if !got.Equal(&data) {
			t.Errorf("positions %v: decode mismatch after correction", positions)
		}
	}
}

// --- COC+4cosets ---

func TestCOC4ModeSelection(t *testing.T) {
	s := NewCOC4(DefaultConfig())
	var zero memline.Line
	cells := s.Encode(InitialCells(s.TotalCells()), &zero)
	if cells[memline.LineCells] != cocFlag16 {
		t.Errorf("zero line flag = %v, want 16-bit mode", cells[memline.LineCells])
	}
	// Random line: raw.
	r := prng.New(12)
	var rnd memline.Line
	r.Fill(rnd[:])
	if compress.COCSize(&rnd) <= coc32PayloadBits {
		t.Skip("random line unexpectedly compressible")
	}
	cells = s.Encode(InitialCells(s.TotalCells()), &rnd)
	if cells[memline.LineCells] != cocFlagRaw {
		t.Errorf("random line flag = %v, want raw", cells[memline.LineCells])
	}
}

func TestCOC4MidModeRoundTrip(t *testing.T) {
	// Construct a line whose COC size lands between 448 and 480 to hit
	// the 32-bit mode.
	r := prng.New(44)
	s := NewCOC4(DefaultConfig())
	found := false
	for trial := 0; trial < 2000 && !found; trial++ {
		var l memline.Line
		for w := 0; w < memline.LineWords; w++ {
			if w < 6 {
				l.SetWord(w, r.Uint64())
			} else {
				l.SetWord(w, uint64(r.Uint32()&0xff))
			}
		}
		size := compress.COCSize(&l)
		if size > coc16PayloadBits && size <= coc32PayloadBits {
			found = true
			cells := s.Encode(InitialCells(s.TotalCells()), &l)
			if cells[memline.LineCells] != cocFlag32 {
				t.Fatalf("flag = %v, want 32-bit mode", cells[memline.LineCells])
			}
			if got := s.Decode(cells); !got.Equal(&l) {
				t.Fatal("32-bit mode round trip failed")
			}
		}
	}
	if !found {
		t.Skip("no line hit the 32-bit window")
	}
}

// --- 6cosets candidate identification through aux pairs ---

func TestSixCosetsAuxPairsAreCheapest(t *testing.T) {
	cfg := DefaultConfig()
	s := NewLineCosets(cfg, "6cosets", coset.SixCosets(), 512)
	pairs := coset.AuxPairs(&cfg.Energy)
	for i := 0; i < 6; i++ {
		if s.pairs[i] != pairs[i] {
			t.Fatalf("aux pair %d = %v, want %v", i, s.pairs[i], pairs[i])
		}
	}
	// None of the six identifiers should use S4 (547pJ).
	for i, p := range s.pairs {
		if p[0] == pcm.S4 || p[1] == pcm.S4 {
			t.Errorf("aux pair %d uses S4: %v", i, p)
		}
	}
}
