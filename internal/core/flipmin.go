package core

import (
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// FlipMin (Jacobvitz, Calderbank & Sorin [14]) maps each line to a coset
// of codeword candidates and writes the cheapest member. As in the
// paper's evaluation, our adaptation uses 16 candidates over the whole
// 512-bit line, generated pseudo-randomly with the technique of PRES
// [32] (seeded xoshiro vectors; candidate 0 is the all-zero vector so the
// original data is always a member). The candidate index occupies four
// bits = two auxiliary cells.
type FlipMin struct {
	em    pcm.EnergyModel
	masks [16]memline.Line
	// maskWords caches every mask's word view so the cost sweep XORs
	// whole words without re-decoding bytes.
	maskWords [16][memline.LineWords]uint64
	// tab prices symbol-over-state through the default C1 mapping; the
	// 16-candidate sweep is pure table lookups.
	tab coset.CostTable
}

// flipMinSeed pins the pseudo-random candidate set; it is part of the
// code definition, not a tuning knob.
const flipMinSeed = 0xF11BA5ED

// NewFlipMin returns the FlipMin scheme.
func NewFlipMin(cfg Config) *FlipMin {
	f := &FlipMin{em: cfg.Energy}
	r := prng.New(flipMinSeed)
	for i := 1; i < len(f.masks); i++ {
		r.Fill(f.masks[i][:])
	}
	for i := range f.masks {
		f.maskWords[i] = f.masks[i].Words()
	}
	f.tab = coset.C1.CostTable(&cfg.Energy)
	return f
}

// Name implements Scheme.
func (*FlipMin) Name() string { return "FlipMin" }

// TotalCells implements Scheme.
func (*FlipMin) TotalCells() int { return memline.LineCells + 2 }

// DataCells implements Scheme.
func (*FlipMin) DataCells() int { return memline.LineCells }

// Encode implements Scheme.
func (f *FlipMin) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, f.TotalCells())
	f.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements Scheme: XOR the line with each candidate vector,
// price it through the C1 cost table, then materialize only the winner.
func (f *FlipMin) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	words := data.Words()
	bestIdx, bestCost := 0, -1.0
	var syms [memline.WordCells]uint8
	for i := range f.maskWords {
		var cost float64
		for w := 0; w < memline.LineWords; w++ {
			memline.WordSymbols(words[w]^f.maskWords[i][w], &syms)
			base := w * memline.WordCells
			for c, v := range syms {
				cost += f.tab.Cost[old[base+c]][v]
			}
		}
		if bestCost < 0 || cost < bestCost {
			bestIdx, bestCost = i, cost
		}
	}
	for w := 0; w < memline.LineWords; w++ {
		memline.WordSymbols(words[w]^f.maskWords[bestIdx][w], &syms)
		base := w * memline.WordCells
		for c, v := range syms {
			dst[base+c] = coset.C1[v]
		}
	}
	bits := [4]uint8{
		uint8(bestIdx) & 1, uint8(bestIdx) >> 1 & 1,
		uint8(bestIdx) >> 2 & 1, uint8(bestIdx) >> 3 & 1,
	}
	coset.PackBitsToStates(bits[:], dst[memline.LineCells:])
}

// Decode implements Scheme.
func (f *FlipMin) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	f.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements Scheme.
func (f *FlipMin) DecodeInto(cells []pcm.State, dst *memline.Line) {
	var bits [4]uint8
	coset.UnpackBits(cells[memline.LineCells:], bits[:])
	idx := int(bits[0]) | int(bits[1])<<1 | int(bits[2])<<2 | int(bits[3])<<3
	rawDecodeInto(cells, dst)
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, dst.Word(w)^f.maskWords[idx][w])
	}
}
