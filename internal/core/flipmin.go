package core

import (
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// FlipMin (Jacobvitz, Calderbank & Sorin [14]) maps each line to a coset
// of codeword candidates and writes the cheapest member. As in the
// paper's evaluation, our adaptation uses 16 candidates over the whole
// 512-bit line, generated pseudo-randomly with the technique of PRES
// [32] (seeded xoshiro vectors; candidate 0 is the all-zero vector so the
// original data is always a member). The candidate index occupies four
// bits = two auxiliary cells.
type FlipMin struct {
	em    pcm.EnergyModel
	masks [16]memline.Line
}

// flipMinSeed pins the pseudo-random candidate set; it is part of the
// code definition, not a tuning knob.
const flipMinSeed = 0xF11BA5ED

// NewFlipMin returns the FlipMin scheme.
func NewFlipMin(cfg Config) *FlipMin {
	f := &FlipMin{em: cfg.Energy}
	r := prng.New(flipMinSeed)
	for i := 1; i < len(f.masks); i++ {
		r.Fill(f.masks[i][:])
	}
	return f
}

// Name implements Scheme.
func (*FlipMin) Name() string { return "FlipMin" }

// TotalCells implements Scheme.
func (*FlipMin) TotalCells() int { return memline.LineCells + 2 }

// DataCells implements Scheme.
func (*FlipMin) DataCells() int { return memline.LineCells }

// Encode implements Scheme: XOR the line with each candidate vector,
// store through the default mapping, keep the cheapest.
func (f *FlipMin) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	bestIdx, bestCost := 0, -1.0
	var bestStates [memline.LineCells]pcm.State
	var states [memline.LineCells]pcm.State
	for i := range f.masks {
		var cost float64
		for w := 0; w < memline.LineWords; w++ {
			xw := data.Word(w) ^ f.masks[i].Word(w)
			for c := 0; c < memline.WordCells; c++ {
				st := coset.C1[xw>>(uint(c)*2)&3]
				cell := w*memline.WordCells + c
				states[cell] = st
				if st != old[cell] {
					cost += f.em.WriteEnergy(st)
				}
			}
		}
		if bestCost < 0 || cost < bestCost {
			bestIdx, bestCost = i, cost
			bestStates = states
		}
	}
	out := make([]pcm.State, f.TotalCells())
	copy(out, bestStates[:])
	bits := []uint8{
		uint8(bestIdx) & 1, uint8(bestIdx) >> 1 & 1,
		uint8(bestIdx) >> 2 & 1, uint8(bestIdx) >> 3 & 1,
	}
	coset.PackBitsToStates(bits, out[memline.LineCells:])
	return out
}

// Decode implements Scheme.
func (f *FlipMin) Decode(cells []pcm.State) memline.Line {
	bits := coset.UnpackStatesToBits(cells[memline.LineCells:], 4)
	idx := int(bits[0]) | int(bits[1])<<1 | int(bits[2])<<2 | int(bits[3])<<3
	l := rawDecode(cells)
	for w := 0; w < memline.LineWords; w++ {
		l.SetWord(w, l.Word(w)^f.masks[idx].Word(w))
	}
	return l
}
