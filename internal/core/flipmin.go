package core

import (
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// FlipMin (Jacobvitz, Calderbank & Sorin [14]) maps each line to a coset
// of codeword candidates and writes the cheapest member. As in the
// paper's evaluation, our adaptation uses 16 candidates over the whole
// 512-bit line, generated pseudo-randomly with the technique of PRES
// [32] (seeded xoshiro vectors; candidate 0 is the all-zero vector so the
// original data is always a member). The candidate index occupies four
// bits = two auxiliary cells.
type FlipMin struct {
	em    pcm.EnergyModel
	masks [16]memline.Line
	// maskWords caches every mask's word view so the winner's data can
	// be rebuilt by whole-word XOR at decode.
	maskWords [16][memline.LineWords]uint64
	// maskPlanes caches every mask word's bit-plane pair. LoHiPlanes is
	// linear over XOR, so the planes of (word ^ mask) are two XORs —
	// the 16-candidate sweep never re-extracts the data.
	maskPlanes [16][memline.LineWords][2]uint64
	// swar prices symbol-over-state through the default C1 mapping; the
	// 16-candidate sweep is four popcounts per word per candidate.
	swar coset.SWARTable
}

// flipMinSeed pins the pseudo-random candidate set; it is part of the
// code definition, not a tuning knob.
const flipMinSeed = 0xF11BA5ED

// NewFlipMin returns the FlipMin scheme.
func NewFlipMin(cfg Config) *FlipMin {
	f := &FlipMin{em: cfg.Energy}
	r := prng.New(flipMinSeed)
	for i := 1; i < len(f.masks); i++ {
		r.Fill(f.masks[i][:])
	}
	for i := range f.masks {
		f.maskWords[i] = f.masks[i].Words()
		for w, word := range f.maskWords[i] {
			f.maskPlanes[i][w][0], f.maskPlanes[i][w][1] = memline.LoHiPlanes(word)
		}
	}
	f.swar = coset.C1.SWAR(&cfg.Energy)
	return f
}

// Name implements Scheme.
func (*FlipMin) Name() string { return "FlipMin" }

// TotalCells implements Scheme.
func (*FlipMin) TotalCells() int { return memline.LineCells + 2 }

// DataCells implements Scheme.
func (*FlipMin) DataCells() int { return memline.LineCells }

// Encode implements Scheme.
func (f *FlipMin) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, f.TotalCells())
	f.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements Scheme: XOR the line's bit-planes with each
// candidate's plane pair, price the result word-parallel through the C1
// weights, then materialize only the winner.
func (f *FlipMin) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	var lp linePlanes
	lp.init(data, old)
	bestIdx, bestCost := 0, -1.0
	for i := range f.maskPlanes {
		var cnt [4]int
		for w := 0; w < memline.LineWords; w++ {
			p := &lp[w]
			m := &f.maskPlanes[i][w]
			f.swar.CountsPlanes(p.Lo^m[0], p.Hi^m[1], p, coset.AllCells, &cnt)
		}
		cost, _ := f.swar.CostOf(&cnt)
		if bestCost < 0 || cost < bestCost {
			bestIdx, bestCost = i, cost
		}
	}
	for w := 0; w < memline.LineWords; w++ {
		m := &f.maskPlanes[bestIdx][w]
		nlo, nhi := f.swar.ApplyPlanes(lp[w].Lo^m[0], lp[w].Hi^m[1])
		coset.UnpackStates(nlo, nhi, dst[w*memline.WordCells:(w+1)*memline.WordCells])
	}
	bits := [4]uint8{
		uint8(bestIdx) & 1, uint8(bestIdx) >> 1 & 1,
		uint8(bestIdx) >> 2 & 1, uint8(bestIdx) >> 3 & 1,
	}
	coset.PackBitsToStates(bits[:], dst[memline.LineCells:])
}

// Decode implements Scheme.
func (f *FlipMin) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	f.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements Scheme.
func (f *FlipMin) DecodeInto(cells []pcm.State, dst *memline.Line) {
	var bits [4]uint8
	coset.UnpackBits(cells[memline.LineCells:], bits[:])
	idx := int(bits[0]) | int(bits[1])<<1 | int(bits[2])<<2 | int(bits[3])<<3
	rawDecodeInto(cells, dst)
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, dst.Word(w)^f.maskWords[idx][w])
	}
}
