package core

import (
	"reflect"
	"testing"

	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// planeSchemes returns every registered scheme that takes the
// plane-native path (all eight evaluation schemes plus the extra WLCRC
// granularities; the counter-keyed families are excluded by design).
func planeSchemes(t testing.TB) []struct {
	Scheme
	planes PlaneScheme
} {
	cfg := DefaultConfig()
	names := []string{
		"Baseline", "FlipMin", "FNW", "DIN", "6cosets", "COC+4cosets",
		"WLC+4cosets", "WLC+3cosets",
		"WLCRC-8", "WLCRC-16", "WLCRC-32", "WLCRC-64",
	}
	var out []struct {
		Scheme
		planes PlaneScheme
	}
	for _, n := range names {
		s, err := NewScheme(n, cfg)
		if err != nil {
			t.Fatalf("NewScheme(%q): %v", n, err)
		}
		ps, ok := PlaneCodec(s)
		if !ok {
			t.Fatalf("%s: expected a plane codec", n)
		}
		out = append(out, struct {
			Scheme
			planes PlaneScheme
		}{s, ps})
	}
	return out
}

// packedPlanes packs a cell vector into a fresh plane buffer.
func packedPlanes(cells []pcm.State) []uint64 {
	p := make([]uint64, coset.PlaneWords(len(cells)))
	coset.PackLine(cells, p)
	return p
}

// checkPlaneEquivalence runs one (old, data) pair through both codec
// paths of one scheme and cross-checks everything the replay engine
// relies on: the encoded planes must be bit-identical to the packed
// scalar encode, the old planes must survive unmutated, the tail-zero
// invariant must hold, the plane decode must round-trip to the written
// data, and the plane compression gate must agree with the scalar gate.
func checkPlaneEquivalence(t testing.TB, s Scheme, ps PlaneScheme, r *prng.Xoshiro256,
	old []pcm.State, data *memline.Line) {
	n := s.TotalCells()
	want := make([]pcm.State, n)
	s.EncodeInto(want, old, data)
	wantP := packedPlanes(want)

	oldP := packedPlanes(old)
	oldSnap := append([]uint64(nil), oldP...)
	// Garbage-prefill dst: EncodePlanesInto must overwrite every word,
	// including the zero tail bits above cell n.
	dst := make([]uint64, len(oldP))
	for i := range dst {
		dst[i] = r.Uint64()
	}
	ps.EncodePlanesInto(dst, oldP, data)
	if !reflect.DeepEqual(wantP, dst) {
		t.Fatalf("%s: EncodePlanesInto differs from packed EncodeInto\nold  %v\nwant %x\ngot  %x",
			s.Name(), old[:8], wantP, dst)
	}
	if !reflect.DeepEqual(oldSnap, oldP) {
		t.Fatalf("%s: EncodePlanesInto mutated old planes", s.Name())
	}
	for c := n; c < 32*len(dst)/2; c++ {
		if coset.PlaneGet(dst, c) != 0 {
			t.Fatalf("%s: tail cell %d nonzero after encode", s.Name(), c)
		}
	}

	var got memline.Line
	r.Fill(got[:]) // DecodePlanesInto must fully overwrite garbage
	ps.DecodePlanesInto(dst, &got)
	if !got.Equal(data) {
		t.Fatalf("%s: DecodePlanesInto round trip failed", s.Name())
	}

	if gate, ok := s.(CompressionGate); ok {
		pg, ok := s.(PlaneCompressionGate)
		if !ok {
			t.Fatalf("%s: CompressionGate without PlaneCompressionGate", s.Name())
		}
		if sc, pl := gate.CompressedWrite(want), pg.CompressedWritePlanes(dst); sc != pl {
			t.Fatalf("%s: CompressedWritePlanes = %v, scalar CompressedWrite = %v", s.Name(), pl, sc)
		}
	}
}

// TestEncodePlanesMatchesScalar is the plane-native storage PR's core
// equivalence property, over the randomized corpus the scalar
// EncodeInto tests use: compressible and incompressible data against
// fresh and steady-state old vectors.
func TestEncodePlanesMatchesScalar(t *testing.T) {
	r := prng.New(20260807)
	for _, s := range planeSchemes(t) {
		for trial := 0; trial < 60; trial++ {
			data := randomBiasedLine(r)
			old := randomOld(r, s.TotalCells())
			checkPlaneEquivalence(t, s.Scheme, s.planes, r, old, &data)
		}
	}
}

// TestEncodePlanesStableUnderRewrites chains both codec paths over
// their own output in lockstep — the replay steady state — and demands
// the stored representations stay bit-identical at every step.
func TestEncodePlanesStableUnderRewrites(t *testing.T) {
	r := prng.New(777)
	for _, s := range planeSchemes(t) {
		n := s.TotalCells()
		stored := InitialCells(n)
		scratch := make([]pcm.State, n)
		storedP := packedPlanes(stored)
		scratchP := make([]uint64, len(storedP))
		for step := 0; step < 25; step++ {
			data := randomBiasedLine(r)
			s.EncodeInto(scratch, stored, &data)
			s.planes.EncodePlanesInto(scratchP, storedP, &data)
			stored, scratch = scratch, stored
			storedP, scratchP = scratchP, storedP
			if want := packedPlanes(stored); !reflect.DeepEqual(want, storedP) {
				t.Fatalf("%s: step %d: plane store diverged from scalar store", s.Name(), step)
			}
			var got memline.Line
			s.planes.DecodePlanesInto(storedP, &got)
			if !got.Equal(&data) {
				t.Fatalf("%s: step %d: plane decode mismatch", s.Name(), step)
			}
		}
	}
}

// FuzzEncodePlanesEquiv fuzzes the plane/scalar equivalence: the input
// selects a scheme, an old-state regime and the line content, and both
// codec paths must agree on the encoded planes, the decode round trip
// and the compression classification.
func FuzzEncodePlanesEquiv(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte{})
	f.Add(uint8(3), uint8(1), []byte{0x42, 0xff, 0x00, 0x7f})
	f.Add(uint8(5), uint8(2), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint8(7), uint8(0), []byte{0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef})
	f.Add(uint8(11), uint8(3), []byte{0x80, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, schemeSel, oldSel uint8, body []byte) {
		schemes := planeSchemes(t)
		s := schemes[int(schemeSel)%len(schemes)]
		n := s.TotalCells()

		// Line content: repeat the body across the line (empty body means
		// an all-zero, maximally compressible line).
		var data memline.Line
		for i := range data {
			if len(body) > 0 {
				data[i] = body[i%len(body)]
			}
		}

		// Old regime: fresh, random, or re-encode of the fuzzed data
		// itself (the rewrite-same-data steady state).
		r := prng.New(uint64(oldSel)<<32 | uint64(len(body)+1))
		old := make([]pcm.State, n)
		switch oldSel % 3 {
		case 0: // fresh line
		case 1:
			for i := range old {
				old[i] = pcm.State(r.Intn(pcm.NumStates))
			}
		case 2:
			s.EncodeInto(old, InitialCells(n), &data)
		}
		checkPlaneEquivalence(t, s.Scheme, s.planes, r, old, &data)
	})
}

// FuzzDecodePlanesNeverPanics is the plane form of the scalar
// robustness guarantee: decoding arbitrary (possibly never-encoded)
// stored states must not panic for any scheme — corrupt aux cells,
// reserved flag values and impossible candidate indices included.
func FuzzDecodePlanesNeverPanics(f *testing.F) {
	f.Add(uint8(0), []byte{0})
	f.Add(uint8(4), []byte{3, 3, 3, 3, 3, 3, 3, 3})
	f.Add(uint8(9), []byte{0, 1, 2, 3, 0, 1, 2, 3, 2, 1})
	f.Fuzz(func(t *testing.T, schemeSel uint8, states []byte) {
		if len(states) == 0 {
			t.Skip("no states")
		}
		schemes := planeSchemes(t)
		s := schemes[int(schemeSel)%len(schemes)]
		n := s.TotalCells()
		cells := make([]pcm.State, n)
		for i := range cells {
			cells[i] = pcm.State(states[i%len(states)] % 4)
		}
		planes := packedPlanes(cells)
		var l memline.Line
		s.planes.DecodePlanesInto(planes, &l) // must not panic
	})
}
