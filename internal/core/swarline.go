package core

import (
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// Line-level SWAR plumbing shared by the block-granular coset encoders:
// build the per-word bit-planes once, then price and apply candidate
// mappings over arbitrary [lo, hi) cell ranges as masked word
// operations. Word-, multi-word- and sub-word-granularity blocks all
// reduce to the same masked pricing.

// linePlanes caches the WordPlanes of all eight words of a line.
type linePlanes [memline.LineWords]coset.WordPlanes

// init fills the planes from the line's words and the old cell states.
func (lp *linePlanes) init(data *memline.Line, old []pcm.State) {
	lp.initWords(data, old, memline.LineWords)
}

// initWords fills only the first n words' planes — for encoders whose
// coset region stops short of the full line (COC4 payload modes).
func (lp *linePlanes) initWords(data *memline.Line, old []pcm.State, n int) {
	for w := 0; w < n; w++ {
		lp[w].Init(data.Word(w), old[w*memline.WordCells:(w+1)*memline.WordCells])
	}
}

// wordMask returns the in-word cell mask of the intersection of line
// cell range [lo, hi) with word w.
func wordMask(w, lo, hi int) uint64 {
	base := w * memline.WordCells
	a, b := 0, memline.WordCells
	if base < lo {
		a = lo - base
	}
	if base+memline.WordCells > hi {
		b = hi - base
	}
	return coset.CellMask(a, b-a)
}

// blockCost prices t over line cells [lo, hi).
func (lp *linePlanes) blockCost(t *coset.SWARTable, lo, hi int) (cost float64, updates int) {
	w := lo / memline.WordCells
	if hi-lo <= memline.WordCells-(lo-w*memline.WordCells) {
		// Block granularities divide the line, so sub-word blocks never
		// straddle a word boundary: one masked sweep prices the block.
		return t.CostCount(&lp[w], coset.CellMask(lo-w*memline.WordCells, hi-lo))
	}
	// Multi-word block: gather integer per-state counts across the
	// words, convert to energy once.
	var cnt [4]int
	for ; w*memline.WordCells < hi; w++ {
		t.Counts(&lp[w], wordMask(w, lo, hi), &cnt)
	}
	return t.CostOf(&cnt)
}

// bestBlock picks the cheapest candidate for line cells [lo, hi), with
// the lowest-index tie-break of Best/BestTable.
func (lp *linePlanes) bestBlock(tabs []coset.SWARTable, lo, hi int) (idx int, cost float64) {
	idx = 0
	cost, _ = lp.blockCost(&tabs[0], lo, hi)
	for i := 1; i < len(tabs); i++ {
		if c, _ := lp.blockCost(&tabs[i], lo, hi); c < cost {
			idx, cost = i, c
		}
	}
	return idx, cost
}

// newStates accumulates the chosen mappings' output planes per word;
// unpack writes them back as cell states.
type newStates struct {
	lo, hi [memline.LineWords]uint64
}

// applyBlock maps line cells [lo, hi) through t into the accumulator.
func (ns *newStates) applyBlock(t *coset.SWARTable, lp *linePlanes, lo, hi int) {
	for w := lo / memline.WordCells; w*memline.WordCells < hi; w++ {
		l, h := t.Apply(&lp[w])
		mask := wordMask(w, lo, hi)
		ns.lo[w] |= l & mask
		ns.hi[w] |= h & mask
	}
}

// unpack writes the first n accumulated cells into dst.
func (ns *newStates) unpack(dst []pcm.State, n int) {
	for w := 0; w*memline.WordCells < n; w++ {
		end := (w + 1) * memline.WordCells
		if end > n {
			end = n
		}
		coset.UnpackStates(ns.lo[w], ns.hi[w], dst[w*memline.WordCells:end])
	}
}

// lineStatePlanes caches the packed state planes of a stored line's
// first 256 cells for block-granular decode.
type lineStatePlanes [memline.LineWords][2]uint64

func (sp *lineStatePlanes) init(cells []pcm.State) {
	sp.initWords(cells, memline.LineWords)
}

// initWords packs only the first n words' states.
func (sp *lineStatePlanes) initWords(cells []pcm.State, n int) {
	for w := 0; w < n; w++ {
		sp[w][0], sp[w][1] = coset.PackStates(cells[w*memline.WordCells:])
	}
}

// dataWords accumulates decoded symbol planes per word; word returns the
// rebuilt data word.
type dataWords struct {
	lo, hi [memline.LineWords]uint64
}

// decodeBlock maps stored cells [lo, hi) through t's inverse into the
// accumulator.
func (dw *dataWords) decodeBlock(t *coset.SWARTable, sp *lineStatePlanes, lo, hi int) {
	for w := lo / memline.WordCells; w*memline.WordCells < hi; w++ {
		l, h := t.ApplyInvPlanes(sp[w][0], sp[w][1])
		mask := wordMask(w, lo, hi)
		dw.lo[w] |= l & mask
		dw.hi[w] |= h & mask
	}
}

// word returns data word w.
func (dw *dataWords) word(w int) uint64 {
	return memline.InterleavePlanes(dw.lo[w], dw.hi[w])
}
