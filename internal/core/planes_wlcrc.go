package core

import (
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// Plane-native WLCRC codec. The per-word pipeline — block evals, the
// two group plans, the multi-objective tie-breaks — is identical to
// encodeWord; only the word's old states arrive as a plane pair and the
// committed states leave as one. The handful of cells the planner reads
// individually (the mixed cell and the pure-aux tail) are extracted
// from the old planes into a stack array so planFromEvals runs
// unchanged against both layouts.

// wordState reads cell c's state out of one word's (lo, hi) plane pair.
func wordState(lo, hi uint64, c int) pcm.State {
	return pcm.State((lo>>uint(c))&1 | ((hi>>uint(c))&1)<<1)
}

// CompressedWritePlanes implements PlaneCompressionGate.
func (s *WLCRC) CompressedWritePlanes(planes []uint64) bool {
	return tailFlag(planes) == flagCompressed
}

// EncodePlanesInto implements PlaneScheme.
func (s *WLCRC) EncodePlanesInto(dst, old []uint64, data *memline.Line) {
	if s.wdLambda > 0 {
		// The §XI disturbance-aware pricing is per-cell by nature; funnel
		// it through the scalar reference: unpack, encode, repack.
		var oldC, newC [memline.LineCells + 1]pcm.State
		coset.UnpackLine(old, oldC[:])
		s.EncodeInto(newC[:], oldC[:], data)
		coset.PackLine(newC[:], dst)
		return
	}
	if !s.wlc.LineCompressible(data) {
		rawEncodePlanes(data, dst)
		setTailFlag(dst, flagUncompressed)
		return
	}
	for w := 0; w < memline.LineWords; w++ {
		dst[2*w], dst[2*w+1] = s.encodeWordPlanes(data.Word(w), old[2*w], old[2*w+1])
	}
	setTailFlag(dst, flagCompressed)
}

// encodeWordPlanes is encodeWord over plane-resident old state,
// returning the committed state planes.
func (s *WLCRC) encodeWordPlanes(word, oldLo, oldHi uint64) (uint64, uint64) {
	var p coset.WordPlanes
	p.SetData(word)
	p.SetOldPlanes(oldLo, oldHi)
	g := &s.geom

	if s.gran == 64 {
		rng := g.blocks[0]
		mask := coset.CellMask(rng[0], rng[1]-rng[0])
		idx, _ := coset.BestSWAR(s.swar64, &p, mask)
		lo, hi := s.swar64[idx].Apply(&p)
		st := coset.C1[uint8(idx)]
		return lo&mask | uint64(st&1)<<31, hi&mask | uint64(st>>1)<<31
	}

	// The planner reads individual old states only at the mixed cell and
	// the pure-aux tail — all at or beyond dataCells.
	var oldC [memline.WordCells]pcm.State
	for c := g.dataCells; c < memline.WordCells; c++ {
		oldC[c] = wordState(oldLo, oldHi, c)
	}

	var ev [wlcrcMaxBlocks]blockEval
	for b, rng := range g.blocks {
		mask := coset.CellMask(rng[0], rng[1]-rng[0])
		e := &ev[b]
		e.cost[0], e.upd[0] = s.swar1.CostCount(&p, mask)
		e.cost[1], e.upd[1] = s.swarAlt[0].CostCount(&p, mask)
		e.cost[2], e.upd[2] = s.swarAlt[1].CostCount(&p, mask)
		if g.mixed && b == len(g.blocks)-1 {
			cell := g.dataCells
			st := oldC[cell]
			dataBit := uint8(word >> uint(2*cell) & 1)
			e.cost[0] += s.tab1.Cost[st][dataBit]
			e.upd[0] += int(s.tab1.Update[st][dataBit])
			caCost := s.tab1.Cost[st][2|dataBit]
			caUpd := int(s.tab1.Update[st][2|dataBit])
			e.cost[1] += caCost
			e.upd[1] += caUpd
			e.cost[2] += caCost
			e.upd[2] += caUpd
		}
	}
	p12 := s.planFromEvals(0, &ev, oldC[:])
	p13 := s.planFromEvals(1, &ev, oldC[:])
	plan := s.pickPlan(&p12, &p13)

	// Commit: masked plane selection per block, then the mixed and aux
	// cells OR their C1-mapped symbols into the (still zero) tail bits.
	alt := &s.swarAlt[plan.group]
	var nlo, nhi uint64
	for b, rng := range g.blocks {
		t := &s.swar1
		if plan.cands[b] == 1 {
			t = alt
		}
		lo, hi := t.Apply(&p)
		mask := coset.CellMask(rng[0], rng[1]-rng[0])
		nlo |= lo & mask
		nhi |= hi & mask
	}
	if g.mixed {
		cell := g.dataCells
		st := coset.C1[plan.cands[len(g.blocks)-1]<<1|uint8(word>>uint(2*cell))&1]
		nlo |= uint64(st&1) << uint(cell)
		nhi |= uint64(st>>1) << uint(cell)
	}
	var aux [wlcrcMaxAux]uint8
	nAux := s.auxSymbols(&plan.cands, plan.group, &aux)
	first := s.firstAuxCell()
	for i := 0; i < nAux; i++ {
		st := coset.C1[aux[i]]
		nlo |= uint64(st&1) << uint(first+i)
		nhi |= uint64(st>>1) << uint(first+i)
	}
	return nlo, nhi
}

// DecodePlanesInto implements PlaneScheme.
func (s *WLCRC) DecodePlanesInto(planes []uint64, dst *memline.Line) {
	if tailFlag(planes) != flagCompressed {
		rawDecodePlanes(planes, dst)
		return
	}
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, s.decodeWordPlanes(planes[2*w], planes[2*w+1]))
	}
}

func (s *WLCRC) decodeWordPlanes(slo, shi uint64) uint64 {
	g := &s.geom

	if s.gran == 64 {
		idx := int(coset.C1Inv[wordState(slo, shi, 31)])
		if idx > 2 {
			idx = 0
		}
		lo, hi := s.swar64[idx].ApplyInvPlanes(slo, shi)
		mask := coset.CellMask(0, g.dataCells)
		return s.wlc.DecompressWord(memline.InterleavePlanes(lo&mask, hi&mask))
	}

	var cands [wlcrcMaxBlocks]uint8
	group, mixedData := s.readAuxPlanes(slo, shi, &cands)
	alt := &s.swarAlt[group]
	var dlo, dhi uint64
	for b, rng := range g.blocks {
		t := &s.swar1
		if cands[b] == 1 {
			t = alt
		}
		lo, hi := t.ApplyInvPlanes(slo, shi)
		mask := coset.CellMask(rng[0], rng[1]-rng[0])
		dlo |= lo & mask
		dhi |= hi & mask
	}
	word := memline.InterleavePlanes(dlo, dhi)
	if g.mixed {
		word |= uint64(mixedData) << (uint(g.dataCells) * 2)
	}
	return s.wlc.DecompressWord(word)
}

// readAuxPlanes is readAux with the aux-cell states read from the
// word's plane pair.
func (s *WLCRC) readAuxPlanes(slo, shi uint64, cands *[wlcrcMaxBlocks]uint8) (group, mixedData uint8) {
	inv := &coset.C1Inv
	switch s.gran {
	case 8:
		a := [4]uint8{
			inv[wordState(slo, shi, 28)], inv[wordState(slo, shi, 29)],
			inv[wordState(slo, shi, 30)], inv[wordState(slo, shi, 31)],
		}
		cands[0], cands[1] = a[0]&1, a[0]>>1
		cands[2], cands[3] = a[1]&1, a[1]>>1
		cands[4], cands[5] = a[2]&1, a[2]>>1
		cands[6], group = a[3]&1, a[3]>>1
	case 16:
		mixedSym := inv[wordState(slo, shi, 29)]
		mixedData = mixedSym & 1
		cands[3] = mixedSym >> 1
		a30, a31 := inv[wordState(slo, shi, 30)], inv[wordState(slo, shi, 31)]
		cands[2], cands[1] = a30&1, a30>>1
		cands[0], group = a31&1, a31>>1
	case 32:
		mixedSym := inv[wordState(slo, shi, 30)]
		mixedData = mixedSym & 1
		cands[1] = mixedSym >> 1
		a31 := inv[wordState(slo, shi, 31)]
		cands[0], group = a31&1, a31>>1
	}
	return group, mixedData
}
