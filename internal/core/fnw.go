package core

import (
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// FNW is Flip-N-Write (Cho & Lee [7]) adapted to MLC PCM as the paper's
// evaluation does: the line is partitioned into four 128-bit blocks, and
// each block is stored either as-is or bitwise complemented, whichever
// needs less differential-write energy. One flip bit per block — four
// bits, two auxiliary cells per line — matches FlipMin's space overhead
// (§VIII).
type FNW struct {
	em pcm.EnergyModel
	// tabKeep prices a symbol stored as-is through C1; tabFlip prices
	// its complement (complementing a bit pair complements the symbol),
	// so the keep-vs-flip compare is two table lookups per cell.
	tabKeep coset.CostTable
	tabFlip coset.CostTable
}

// fnwBlocks is the number of independently-flippable blocks per line.
const fnwBlocks = 4

// fnwBlockCells is the number of cells per 128-bit block.
const fnwBlockCells = memline.LineCells / fnwBlocks

// NewFNW returns the FNW scheme.
func NewFNW(cfg Config) *FNW {
	var flipped coset.Mapping
	for v := uint8(0); v < 4; v++ {
		flipped[v] = coset.C1[^v&3]
	}
	return &FNW{
		em:      cfg.Energy,
		tabKeep: coset.C1.CostTable(&cfg.Energy),
		tabFlip: flipped.CostTable(&cfg.Energy),
	}
}

// Name implements Scheme.
func (*FNW) Name() string { return "FNW" }

// TotalCells implements Scheme.
func (*FNW) TotalCells() int { return memline.LineCells + 2 }

// DataCells implements Scheme.
func (*FNW) DataCells() int { return memline.LineCells }

// Encode implements Scheme.
func (f *FNW) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, f.TotalCells())
	f.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements Scheme. Complementing a bit pair complements the
// symbol (v -> ^v&3), so flipping is evaluated symbol-wise under the
// default mapping.
func (f *FNW) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	var syms [memline.LineCells]uint8
	data.SymbolsInto(&syms)
	var bits [fnwBlocks]uint8
	for b := 0; b < fnwBlocks; b++ {
		lo := b * fnwBlockCells
		hi := lo + fnwBlockCells
		var costKeep, costFlip float64
		for c := lo; c < hi; c++ {
			costKeep += f.tabKeep.Cost[old[c]][syms[c]]
			costFlip += f.tabFlip.Cost[old[c]][syms[c]]
		}
		tab := &f.tabKeep
		if costFlip < costKeep {
			bits[b] = 1
			tab = &f.tabFlip
		}
		for c := lo; c < hi; c++ {
			dst[c] = tab.States[syms[c]]
		}
	}
	coset.PackBitsToStates(bits[:], dst[memline.LineCells:])
}

// Decode implements Scheme.
func (f *FNW) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	f.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements Scheme.
func (f *FNW) DecodeInto(cells []pcm.State, dst *memline.Line) {
	var bits [fnwBlocks]uint8
	coset.UnpackBits(cells[memline.LineCells:], bits[:])
	for b := 0; b < fnwBlocks; b++ {
		lo := b * fnwBlockCells
		for c := lo; c < lo+fnwBlockCells; c++ {
			v := coset.C1Inv[cells[c]]
			if bits[b] == 1 {
				v = ^v & 3
			}
			dst.SetSymbol(c, v)
		}
	}
}
