package core

import (
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// FNW is Flip-N-Write (Cho & Lee [7]) adapted to MLC PCM as the paper's
// evaluation does: the line is partitioned into four 128-bit blocks, and
// each block is stored either as-is or bitwise complemented, whichever
// needs less differential-write energy. One flip bit per block — four
// bits, two auxiliary cells per line — matches FlipMin's space overhead
// (§VIII).
type FNW struct {
	em pcm.EnergyModel
	// swarKeep prices a symbol stored as-is through C1; swarFlip prices
	// its complement (complementing a bit pair complements the symbol),
	// so the keep-vs-flip compare is two masked popcount sweeps per
	// block.
	swarKeep coset.SWARTable
	swarFlip coset.SWARTable
}

// fnwBlocks is the number of independently-flippable blocks per line.
const fnwBlocks = 4

// fnwBlockCells is the number of cells per 128-bit block.
const fnwBlockCells = memline.LineCells / fnwBlocks

// NewFNW returns the FNW scheme.
func NewFNW(cfg Config) *FNW {
	var flipped coset.Mapping
	for v := uint8(0); v < 4; v++ {
		flipped[v] = coset.C1[^v&3]
	}
	return &FNW{
		em:       cfg.Energy,
		swarKeep: coset.C1.SWAR(&cfg.Energy),
		swarFlip: flipped.SWAR(&cfg.Energy),
	}
}

// Name implements Scheme.
func (*FNW) Name() string { return "FNW" }

// TotalCells implements Scheme.
func (*FNW) TotalCells() int { return memline.LineCells + 2 }

// DataCells implements Scheme.
func (*FNW) DataCells() int { return memline.LineCells }

// Encode implements Scheme.
func (f *FNW) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, f.TotalCells())
	f.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements Scheme. Complementing a bit pair complements the
// symbol, so the flipped alternative is just a second mapping priced on
// the same bit-planes.
func (f *FNW) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	var lp linePlanes
	lp.init(data, old)
	var ns newStates
	var bits [fnwBlocks]uint8
	for b := 0; b < fnwBlocks; b++ {
		lo := b * fnwBlockCells
		hi := lo + fnwBlockCells
		costKeep, _ := lp.blockCost(&f.swarKeep, lo, hi)
		costFlip, _ := lp.blockCost(&f.swarFlip, lo, hi)
		tab := &f.swarKeep
		if costFlip < costKeep {
			bits[b] = 1
			tab = &f.swarFlip
		}
		ns.applyBlock(tab, &lp, lo, hi)
	}
	ns.unpack(dst, memline.LineCells)
	coset.PackBitsToStates(bits[:], dst[memline.LineCells:])
}

// Decode implements Scheme.
func (f *FNW) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	f.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements Scheme.
func (f *FNW) DecodeInto(cells []pcm.State, dst *memline.Line) {
	var bits [fnwBlocks]uint8
	coset.UnpackBits(cells[memline.LineCells:], bits[:])
	var sp lineStatePlanes
	sp.init(cells)
	var dw dataWords
	for b := 0; b < fnwBlocks; b++ {
		lo := b * fnwBlockCells
		tab := &f.swarKeep
		if bits[b] == 1 {
			tab = &f.swarFlip
		}
		dw.decodeBlock(tab, &sp, lo, lo+fnwBlockCells)
	}
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, dw.word(w))
	}
}
