package core

import (
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// FNW is Flip-N-Write (Cho & Lee [7]) adapted to MLC PCM as the paper's
// evaluation does: the line is partitioned into four 128-bit blocks, and
// each block is stored either as-is or bitwise complemented, whichever
// needs less differential-write energy. One flip bit per block — four
// bits, two auxiliary cells per line — matches FlipMin's space overhead
// (§VIII).
type FNW struct {
	em pcm.EnergyModel
}

// fnwBlocks is the number of independently-flippable blocks per line.
const fnwBlocks = 4

// fnwBlockCells is the number of cells per 128-bit block.
const fnwBlockCells = memline.LineCells / fnwBlocks

// NewFNW returns the FNW scheme.
func NewFNW(cfg Config) *FNW { return &FNW{em: cfg.Energy} }

// Name implements Scheme.
func (*FNW) Name() string { return "FNW" }

// TotalCells implements Scheme.
func (*FNW) TotalCells() int { return memline.LineCells + 2 }

// DataCells implements Scheme.
func (*FNW) DataCells() int { return memline.LineCells }

// Encode implements Scheme. Complementing a bit pair complements the
// symbol (v -> ^v&3), so flipping is evaluated symbol-wise under the
// default mapping.
func (f *FNW) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	syms := lineSymbols(data)
	out := make([]pcm.State, f.TotalCells())
	copy(out, old)
	bits := make([]uint8, fnwBlocks)
	for b := 0; b < fnwBlocks; b++ {
		lo := b * fnwBlockCells
		hi := lo + fnwBlockCells
		var costKeep, costFlip float64
		for c := lo; c < hi; c++ {
			if st := coset.C1[syms[c]]; st != old[c] {
				costKeep += f.em.WriteEnergy(st)
			}
			if st := coset.C1[^syms[c]&3]; st != old[c] {
				costFlip += f.em.WriteEnergy(st)
			}
		}
		flip := uint8(0)
		if costFlip < costKeep {
			flip = 1
		}
		bits[b] = flip
		for c := lo; c < hi; c++ {
			v := syms[c]
			if flip == 1 {
				v = ^v & 3
			}
			out[c] = coset.C1[v]
		}
	}
	coset.PackBitsToStates(bits, out[memline.LineCells:])
	return out
}

// Decode implements Scheme.
func (f *FNW) Decode(cells []pcm.State) memline.Line {
	bits := coset.UnpackStatesToBits(cells[memline.LineCells:], fnwBlocks)
	inv := coset.C1.Inverse()
	var l memline.Line
	for b := 0; b < fnwBlocks; b++ {
		lo := b * fnwBlockCells
		for c := lo; c < lo+fnwBlockCells; c++ {
			v := inv[cells[c]]
			if bits[b] == 1 {
				v = ^v & 3
			}
			l.SetSymbol(c, v)
		}
	}
	return l
}
