// Package core implements the paper's write-encoding schemes: the
// baseline differential write, the full-line encoders it compares against
// (FlipMin, FNW, DIN, 6cosets), the fine-grain coset encoders of §III–V
// (4cosets, 3cosets, restricted cosets), and the paper's contribution —
// WLCRC, the integration of word-level compression with restricted coset
// coding (§VI) — plus the WLC+4cosets and COC+4cosets variants evaluated
// in §VIII.
//
// Every scheme turns (current cell states, new 512-bit data) into the new
// cell states to program; the simulator in internal/sim charges the
// differential write, endurance and disturbance models from package pcm
// on the (old, new) state pair. Every scheme also implements Decode so
// tests can prove the stored states always recover the written data.
package core

import (
	"fmt"
	"strings"

	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/vcc"
)

// Scheme is one write-encoding scheme for 512-bit MLC PCM lines.
//
// EncodeInto/DecodeInto are the hot-path codec API: they write into
// caller storage and, together with the table-driven cost model built at
// scheme construction, run without heap allocation. Encode/Decode are
// thin allocating wrappers kept for convenience and compatibility.
// Scheme implementations are immutable after construction and safe for
// concurrent use — all per-call scratch lives on the caller's stack — so
// the parallel engine shares one instance across its shards.
type Scheme interface {
	// Name identifies the scheme in reports (e.g. "WLCRC-16").
	Name() string
	// TotalCells is the number of MLC cells one line occupies: 256 data
	// cells plus the scheme's auxiliary cells.
	TotalCells() int
	// DataCells is the boundary index between the data region and the
	// auxiliary region for the blk/aux split in the paper's figures.
	DataCells() int
	// Encode returns the TotalCells() states to program when writing
	// data over a line whose cells currently hold old. Implementations
	// must not retain or modify old.
	Encode(old []pcm.State, data *memline.Line) []pcm.State
	// EncodeInto computes the same states as Encode into dst, which must
	// have length TotalCells() and must not alias old. Every cell of dst
	// is written (auxiliary cells the scheme leaves alone are copied from
	// old), so dst may hold garbage on entry. Implementations must not
	// retain dst, and must not retain or modify old.
	EncodeInto(dst, old []pcm.State, data *memline.Line)
	// Decode recovers the stored data from the cell states.
	Decode(cells []pcm.State) memline.Line
	// DecodeInto recovers the stored data into dst, overwriting it
	// completely — the allocation-free form of Decode.
	DecodeInto(cells []pcm.State, dst *memline.Line)
}

// CompressionGate is implemented by compression-gated schemes whose flag
// cell distinguishes the encoded (compressed) path from the raw
// fallback. Resolving the gate once at construction time lets the
// simulator classify writes without per-request name switches; schemes
// that do not implement it take their encoded path on every write.
type CompressionGate interface {
	// CompressedWrite reports whether the stored cell vector took the
	// scheme's encoded (compressed) path.
	CompressedWrite(cells []pcm.State) bool
}

// CounterScheme is the optional extension for schemes whose encoding
// depends on the line address and its per-line write counter — the
// virtual-coset and encrypted schemes of internal/vcc, whose keystreams
// and candidate vectors derive from (key, addr, counter). The counter
// models the counter store a counter-mode encryption engine already
// maintains: the replay frontends (sim shards, the public Memory) own
// it, incrementing it on every write to an address and presenting the
// same value back at decode. Requests to one address replay in trace
// order on a single shard, so the counters — and therefore all results —
// stay bit-identical across worker counts.
//
// CounterSchemes still implement the plain EncodeInto/DecodeInto, which
// must be the degenerate (addr=0, ctr=0) form of the counter-aware
// pair, so every generic Scheme property (round trip, idempotence of
// decode, full dst overwrite) keeps holding.
type CounterScheme interface {
	// EncodeCtrInto is EncodeInto keyed by (addr, ctr).
	EncodeCtrInto(dst, old []pcm.State, addr, ctr uint64, data *memline.Line)
	// DecodeCtrInto is DecodeInto keyed by (addr, ctr); ctr must be the
	// value used by the write that stored cells.
	DecodeCtrInto(cells []pcm.State, addr, ctr uint64, dst *memline.Line)
}

// UsesCounters reports whether s needs the per-line write counter —
// frontends use it to decide whether to maintain a counter map at all.
func UsesCounters(s Scheme) bool {
	_, ok := s.(CounterScheme)
	return ok
}

// EncodeCtrFunc resolves a scheme's encode entry point once: counter
// schemes get their keyed path, everything else ignores (addr, ctr).
// Replay frontends resolve at construction instead of type-switching
// per request.
func EncodeCtrFunc(s Scheme) func(dst, old []pcm.State, addr, ctr uint64, data *memline.Line) {
	if cs, ok := s.(CounterScheme); ok {
		return cs.EncodeCtrInto
	}
	return func(dst, old []pcm.State, addr, ctr uint64, data *memline.Line) {
		s.EncodeInto(dst, old, data)
	}
}

// DecodeCtrFunc is the decode-side counterpart of EncodeCtrFunc.
func DecodeCtrFunc(s Scheme) func(cells []pcm.State, addr, ctr uint64, dst *memline.Line) {
	if cs, ok := s.(CounterScheme); ok {
		return cs.DecodeCtrInto
	}
	return func(cells []pcm.State, addr, ctr uint64, dst *memline.Line) {
		s.DecodeInto(cells, dst)
	}
}

// CompressedWriteFunc resolves a scheme's write classifier once:
// gated schemes answer through their flag cell, everything else counts
// every write as encoded. Both replay frontends and the public Memory
// share this policy.
func CompressedWriteFunc(s Scheme) func([]pcm.State) bool {
	if gate, ok := s.(CompressionGate); ok {
		return gate.CompressedWrite
	}
	return func([]pcm.State) bool { return true }
}

// InitialCells returns the state vector of a freshly-initialized line:
// all cells in S1, the RESET state a PCM array starts from.
func InitialCells(n int) []pcm.State {
	return make([]pcm.State, n)
}

// Flag-cell states for compression-gated schemes. The paper: "since COC
// and WLC compress more than 90% of memory lines, we flagged the
// 'compressed' state with the lowest energy state" and uses only the two
// lowest-energy states for the flag.
const (
	flagCompressed   = pcm.S1
	flagUncompressed = pcm.S2
)

// rawEncode fills dst[0:256] with the default-mapping (C1) states of the
// line's symbols — the uncompressed fallback path shared by every
// compression-gated scheme, and the whole of the baseline scheme. The
// fixed mapping is applied word-parallel on the line's bit-planes.
func rawEncode(data *memline.Line, dst []pcm.State) {
	for w := 0; w < memline.LineWords; w++ {
		nlo, nhi := coset.C1SWAR.ApplyPlanes(memline.LoHiPlanes(data.Word(w)))
		coset.UnpackStates(nlo, nhi, dst[w*memline.WordCells:(w+1)*memline.WordCells])
	}
}

// rawDecode inverts rawEncode.
func rawDecode(cells []pcm.State) memline.Line {
	var l memline.Line
	rawDecodeInto(cells, &l)
	return l
}

// rawDecodeInto inverts rawEncode into caller storage, word-parallel
// through the C1 inverse plane selectors.
func rawDecodeInto(cells []pcm.State, l *memline.Line) {
	for w := 0; w < memline.LineWords; w++ {
		slo, shi := coset.PackStates(cells[w*memline.WordCells:])
		l.SetWord(w, memline.InterleavePlanes(coset.C1SWAR.ApplyInvPlanes(slo, shi)))
	}
}

// Baseline is standard differential write with the default symbol-to-
// state mapping and no auxiliary information (paper §VIII "Baseline").
type Baseline struct{}

// NewBaseline returns the baseline scheme.
func NewBaseline() Baseline { return Baseline{} }

// Name implements Scheme.
func (Baseline) Name() string { return "Baseline" }

// TotalCells implements Scheme.
func (Baseline) TotalCells() int { return memline.LineCells }

// DataCells implements Scheme.
func (Baseline) DataCells() int { return memline.LineCells }

// Encode implements Scheme.
func (b Baseline) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, memline.LineCells)
	b.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements Scheme.
func (Baseline) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	rawEncode(data, dst)
}

// Decode implements Scheme.
func (Baseline) Decode(cells []pcm.State) memline.Line { return rawDecode(cells) }

// DecodeInto implements Scheme.
func (Baseline) DecodeInto(cells []pcm.State, dst *memline.Line) {
	rawDecodeInto(cells, dst)
}

// Registry construction -----------------------------------------------

// Config carries the shared knobs schemes need at construction time.
type Config struct {
	Energy pcm.EnergyModel
	// MultiObjectiveT is the §VIII.D threshold T (e.g. 0.01 for 1%):
	// when two restricted-coset group costs are within T of each other,
	// WLCRC breaks the tie by updated-cell count instead of energy.
	// Zero disables the multi-objective mode.
	MultiObjectiveT float64
	// DisturbAwareLambda enables the write-disturbance-aware WLCRC the
	// paper proposes as future work (§XI): candidate costs gain a
	// penalty of lambda pJ per expected disturbance error the block's
	// write pattern would induce. Zero disables the extension.
	DisturbAwareLambda float64
	// Disturb is the disturbance model the WD-aware extension prices
	// against; the zero value means Table II defaults.
	Disturb pcm.DisturbModel
	// EncryptionKey keys the counter-mode encryption model of the VCC-n
	// and Enc(...) schemes. Zero means vcc.DefaultKey, keeping every
	// experiment reproducible by default.
	EncryptionKey uint64
}

// DefaultConfig returns the Table II configuration.
func DefaultConfig() Config {
	return Config{Energy: pcm.DefaultEnergy()}
}

// NewScheme constructs a scheme by its evaluation-section name. Valid
// names: Baseline, FlipMin, FNW, DIN, 6cosets, COC+4cosets, WLC+4cosets,
// WLC+3cosets, WLCRC-8, WLCRC-16, WLCRC-32, WLCRC-64, the encrypted-PCM
// schemes VCC-2, VCC-4, VCC-8, and Enc(<inner>) for any non-counter
// inner scheme name (e.g. Enc(WLCRC-16), the encrypted-WLCRC baseline).
func NewScheme(name string, cfg Config) (Scheme, error) {
	if inner, ok := strings.CutPrefix(name, "Enc("); ok && strings.HasSuffix(inner, ")") {
		is, err := NewScheme(strings.TrimSuffix(inner, ")"), cfg)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		if UsesCounters(is) {
			return nil, fmt.Errorf("core: %s: inner scheme is already counter-keyed", name)
		}
		return vcc.NewEncrypted(is, cfg.EncryptionKey), nil
	}
	switch name {
	case "Baseline":
		return NewBaseline(), nil
	case "FlipMin":
		return NewFlipMin(cfg), nil
	case "FNW":
		return NewFNW(cfg), nil
	case "DIN":
		return NewDIN(cfg), nil
	case "6cosets":
		return NewLineCosets(cfg, "6cosets", coset.SixCosets(), memline.LineBits), nil
	case "COC+4cosets":
		return NewCOC4(cfg), nil
	case "WLC+4cosets":
		return NewWLCCosets(cfg, 4, 32)
	case "WLC+3cosets":
		return NewWLCCosets(cfg, 3, 32)
	case "WLCRC-8":
		return NewWLCRC(cfg, 8)
	case "WLCRC-16":
		return NewWLCRC(cfg, 16)
	case "WLCRC-32":
		return NewWLCRC(cfg, 32)
	case "WLCRC-64":
		return NewWLCRC(cfg, 64)
	case "VCC-2":
		return vcc.New(cfg.Energy, 2, cfg.EncryptionKey)
	case "VCC-4":
		return vcc.New(cfg.Energy, 4, cfg.EncryptionKey)
	case "VCC-8":
		return vcc.New(cfg.Energy, 8, cfg.EncryptionKey)
	}
	return nil, fmt.Errorf("core: unknown scheme %q", name)
}

// EncryptedSchemes lists the schemes of the encrypted-memory study: the
// raw encrypted write, the collapsed compression-gated baseline, and the
// VCC family that recovers coset coding on ciphertext.
func EncryptedSchemes() []string {
	return []string{"Enc(Baseline)", "Enc(FlipMin)", "Enc(WLCRC-16)", "VCC-2", "VCC-4", "VCC-8"}
}

// EvaluationSchemes lists the eight schemes of Figures 8–10 in paper
// order.
func EvaluationSchemes() []string {
	return []string{
		"Baseline", "FlipMin", "FNW", "DIN",
		"6cosets", "COC+4cosets", "WLC+4cosets", "WLCRC-16",
	}
}

// auxPairIndex builds the candidate-index lookup for two-cell auxiliary
// encodings (6cosets).
func auxPairIndex(pairs [][2]pcm.State) map[[2]pcm.State]int {
	idx := make(map[[2]pcm.State]int, len(pairs))
	for i, p := range pairs {
		idx[p] = i
	}
	return idx
}
