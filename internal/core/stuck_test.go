package core

import (
	"reflect"
	"testing"

	"wlcrc/internal/coset"
	"wlcrc/internal/fault"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// stuckSchemes is the coset cross-section the stuck-aware re-encode is
// exercised over: full-line and fine-grained blocks, one- and two-aux-
// cell candidate counts.
func stuckSchemes(t *testing.T) []*LineCosets {
	t.Helper()
	cfg := DefaultConfig()
	return []*LineCosets{
		NewLineCosets(cfg, "4cosets", coset.Table1[:], memline.LineBits),
		NewLineCosets(cfg, "6cosets", coset.SixCosets(), memline.LineBits),
		NewLineCosets(cfg, "4cosets-16", coset.Table1[:], 16),
		NewLineCosets(cfg, "6cosets-64", coset.SixCosets(), 64),
	}
}

// randomStuck freezes up to maxStuck random cells (data and aux alike)
// at random states.
func randomStuck(r *prng.Xoshiro256, n, maxStuck int) *fault.LineStuck {
	ls := &fault.LineStuck{States: make([]uint8, n)}
	for k := r.Intn(maxStuck + 1); k > 0; k-- {
		c := r.Intn(n)
		if ls.States[c] == 0 {
			ls.States[c] = uint8(r.Intn(pcm.NumStates)) + 1
			ls.N++
		}
	}
	return ls
}

// TestEncodeStuckInto is the stuck-aware re-encode contract: whenever a
// candidate assignment satisfying the stuck cells exists, the returned
// encoding agrees with every stuck cell (zero write-verify mismatches)
// and still decodes back to the written data; when none exists the
// method reports false. Over a random corpus both outcomes must occur,
// and with no stuck cells the method must reproduce the canonical
// cheapest encode exactly.
func TestEncodeStuckInto(t *testing.T) {
	r := prng.New(0xfa117)
	for _, s := range stuckSchemes(t) {
		n := s.TotalCells()
		dst := make([]pcm.State, n)
		want := make([]pcm.State, n)
		okCount, failCount := 0, 0
		for trial := 0; trial < 300; trial++ {
			data := randomBiasedLine(r)
			old := randomOld(r, n)

			empty := &fault.LineStuck{States: make([]uint8, n)}
			s.EncodeInto(want, old, &data)
			if !s.EncodeStuckInto(dst, old, &data, empty) {
				t.Fatalf("%s: unconstrained stuck encode failed", s.Name())
			}
			if !reflect.DeepEqual(want, dst) {
				t.Fatalf("%s: unconstrained stuck encode differs from EncodeInto", s.Name())
			}

			ls := randomStuck(r, n, 6)
			if !s.EncodeStuckInto(dst, old, &data, ls) {
				failCount++
				continue
			}
			okCount++
			if m := ls.MismatchCount(dst); m != 0 {
				t.Fatalf("%s: satisfying encode leaves %d stuck mismatches", s.Name(), m)
			}
			var got memline.Line
			s.DecodeInto(dst, &got)
			if !got.Equal(&data) {
				t.Fatalf("%s: stuck-aware encode does not decode back", s.Name())
			}
		}
		if okCount == 0 || failCount == 0 {
			t.Errorf("%s: corpus not exercising both outcomes (ok=%d fail=%d)",
				s.Name(), okCount, failCount)
		}
	}
}

// TestEncodeStuckIntoImpossible pins the failure path analytically: an
// aux cell stuck at a state no surviving candidate can store makes the
// line unsatisfiable regardless of the data.
func TestEncodeStuckIntoImpossible(t *testing.T) {
	cfg := DefaultConfig()
	s := NewLineCosets(cfg, "4cosets", coset.Table1[:], memline.LineBits)
	n := s.TotalCells()
	r := prng.New(3)
	data := randomBiasedLine(r)
	old := make([]pcm.State, n)
	dst := make([]pcm.State, n)

	// Freeze one data cell at each of two different states the identity
	// candidate disagrees on... simpler and airtight: freeze the same
	// word's cells so every candidate's mapped output conflicts. With 4
	// candidates and one aux cell, freezing the aux cell alone never
	// fails (every index is storable), so conflict through data cells:
	// pick cell 0 and force all 4 candidate outputs to be wrong by
	// trying all 4 frozen states against all 4 candidates' outputs for
	// this data/old pair and keeping a state no candidate produces —
	// with 4 candidates and 4 states one may not exist, so freeze two
	// cells: 16 combinations against 4 candidates always leaves an
	// unsatisfiable pair.
	base := make([]pcm.State, n)
	outputs := make([][2]pcm.State, 0, 4)
	for idx := 0; idx < 4; idx++ {
		ls := &fault.LineStuck{States: make([]uint8, n)}
		ls.States[memline.LineCells] = uint8(pcm.State(idx)) + 1 // pin the aux cell = force candidate idx
		ls.N = 1
		if !s.EncodeStuckInto(base, old, &data, ls) {
			t.Fatalf("pinning candidate %d failed", idx)
		}
		outputs = append(outputs, [2]pcm.State{base[0], base[1]})
	}
	var st0, st1 pcm.State
found:
	for a := 0; a < pcm.NumStates; a++ {
		for b := 0; b < pcm.NumStates; b++ {
			hit := false
			for _, o := range outputs {
				if o[0] == pcm.State(a) && o[1] == pcm.State(b) {
					hit = true
					break
				}
			}
			if !hit {
				st0, st1 = pcm.State(a), pcm.State(b)
				break found
			}
		}
	}
	ls := &fault.LineStuck{States: make([]uint8, n)}
	ls.States[0] = uint8(st0) + 1
	ls.States[1] = uint8(st1) + 1
	ls.N = 2
	if s.EncodeStuckInto(dst, old, &data, ls) {
		t.Fatalf("encode satisfied cells frozen at (%v,%v), which no candidate stores", st0, st1)
	}
}
