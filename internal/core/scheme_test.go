package core

import (
	"testing"
	"testing/quick"

	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// allSchemes returns one instance of every registered scheme.
func allSchemes(t *testing.T) []Scheme {
	t.Helper()
	cfg := DefaultConfig()
	names := []string{
		"Baseline", "FlipMin", "FNW", "DIN", "6cosets", "COC+4cosets",
		"WLC+4cosets", "WLC+3cosets",
		"WLCRC-8", "WLCRC-16", "WLCRC-32", "WLCRC-64",
	}
	var out []Scheme
	for _, n := range names {
		s, err := NewScheme(n, cfg)
		if err != nil {
			t.Fatalf("NewScheme(%q): %v", n, err)
		}
		out = append(out, s)
	}
	return out
}

// randomBiasedLine mixes compressible and incompressible content so the
// round-trip tests exercise both paths of compression-gated schemes.
func randomBiasedLine(r *prng.Xoshiro256) memline.Line {
	var l memline.Line
	switch r.Intn(4) {
	case 0: // random
		r.Fill(l[:])
	case 1: // small signed ints: WLC-compressible
		for w := 0; w < memline.LineWords; w++ {
			l.SetWord(w, memline.SignExtend(r.Uint64()&0xffff, 16))
		}
	case 2: // zero-dominated
		for w := 0; w < memline.LineWords; w++ {
			if r.Bool(0.3) {
				l.SetWord(w, uint64(r.Uint32()&0xff))
			}
		}
	default: // pointer-ish
		base := uint64(0x00007f32_00000000)
		for w := 0; w < memline.LineWords; w++ {
			l.SetWord(w, base|uint64(r.Uint32()))
		}
	}
	return l
}

func TestNewSchemeUnknown(t *testing.T) {
	if _, err := NewScheme("nope", DefaultConfig()); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestEvaluationSchemesConstructible(t *testing.T) {
	for _, n := range EvaluationSchemes() {
		s, err := NewScheme(n, DefaultConfig())
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if s.Name() != n {
			t.Errorf("Name() = %q, want %q", s.Name(), n)
		}
	}
}

func TestSchemeGeometry(t *testing.T) {
	for _, s := range allSchemes(t) {
		if s.DataCells() != memline.LineCells {
			t.Errorf("%s: DataCells = %d", s.Name(), s.DataCells())
		}
		if s.TotalCells() < s.DataCells() {
			t.Errorf("%s: TotalCells < DataCells", s.Name())
		}
		if s.TotalCells() > memline.LineCells+128 {
			t.Errorf("%s: TotalCells = %d unreasonably large", s.Name(), s.TotalCells())
		}
	}
}

// TestRoundTripAllSchemes is the central correctness property: whatever a
// scheme stores must decode back to the written data, starting from a
// fresh line and across consecutive rewrites.
func TestRoundTripAllSchemes(t *testing.T) {
	r := prng.New(1234)
	for _, s := range allSchemes(t) {
		cells := InitialCells(s.TotalCells())
		for step := 0; step < 40; step++ {
			data := randomBiasedLine(r)
			cells = s.Encode(cells, &data)
			if len(cells) != s.TotalCells() {
				t.Fatalf("%s: Encode returned %d cells", s.Name(), len(cells))
			}
			got := s.Decode(cells)
			if !got.Equal(&data) {
				t.Fatalf("%s: decode mismatch at step %d\nwant %s\ngot  %s",
					s.Name(), step, data.String(), got.String())
			}
		}
	}
}

// TestRewriteSameDataIsFree: differential write of identical data must
// program zero cells for every scheme (the encoder must be deterministic
// and must not flip auxiliary choices gratuitously).
func TestRewriteSameDataIsFree(t *testing.T) {
	r := prng.New(77)
	em := pcm.DefaultEnergy()
	for _, s := range allSchemes(t) {
		for trial := 0; trial < 10; trial++ {
			data := randomBiasedLine(r)
			cells := s.Encode(InitialCells(s.TotalCells()), &data)
			again := s.Encode(cells, &data)
			st := em.DiffWrite(cells, again, s.DataCells())
			if st.Updated() != 0 {
				t.Errorf("%s: rewriting identical data programs %d cells",
					s.Name(), st.Updated())
				break
			}
		}
	}
}

// TestEncodeDoesNotMutateOld guards the Scheme contract.
func TestEncodeDoesNotMutateOld(t *testing.T) {
	r := prng.New(5)
	for _, s := range allSchemes(t) {
		data := randomBiasedLine(r)
		old := InitialCells(s.TotalCells())
		for i := range old {
			old[i] = pcm.State(r.Intn(pcm.NumStates))
		}
		snapshot := append([]pcm.State(nil), old...)
		s.Encode(old, &data)
		for i := range old {
			if old[i] != snapshot[i] {
				t.Errorf("%s: Encode mutated old[%d]", s.Name(), i)
				break
			}
		}
	}
}

// TestSchemesBeatOrMatchBaselineOnBiasedData: on compressible biased
// data, every energy-aware scheme should cost at most the baseline on a
// fresh write (fresh cells are all S1; candidate C1 is always available,
// so the minimum over candidates cannot exceed the baseline's data cost
// by more than the auxiliary cost, and on biased data it should win).
func TestWLCRCBeatsBaselineOnBiasedFreshWrites(t *testing.T) {
	r := prng.New(31)
	em := pcm.DefaultEnergy()
	base := NewBaseline()
	wl, err := NewWLCRC(DefaultConfig(), 16)
	if err != nil {
		t.Fatal(err)
	}
	var baseTotal, wlTotal float64
	for trial := 0; trial < 200; trial++ {
		var data memline.Line
		// Biased, WLC-compressible content.
		for w := 0; w < memline.LineWords; w++ {
			data.SetWord(w, memline.SignExtend(r.Uint64()&0x3ffffff, 26))
		}
		bCells := base.Encode(InitialCells(base.TotalCells()), &data)
		bst := em.DiffWrite(InitialCells(base.TotalCells()), bCells, base.DataCells())
		wCells := wl.Encode(InitialCells(wl.TotalCells()), &data)
		wst := em.DiffWrite(InitialCells(wl.TotalCells()), wCells, wl.DataCells())
		baseTotal += bst.Energy()
		wlTotal += wst.Energy()
	}
	if wlTotal >= baseTotal {
		t.Errorf("WLCRC-16 energy %.0f >= baseline %.0f on biased data", wlTotal, baseTotal)
	}
}

func TestQuickRoundTripWLCRC16(t *testing.T) {
	s, err := NewWLCRC(DefaultConfig(), 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(ws [memline.LineWords]uint64, oldSeed uint64) bool {
		data := memline.FromWords(ws)
		r := prng.New(oldSeed)
		old := InitialCells(s.TotalCells())
		for i := range old {
			old[i] = pcm.State(r.Intn(pcm.NumStates))
		}
		cells := s.Encode(old, &data)
		got := s.Decode(cells)
		return got.Equal(&data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripCompressibleWLCRC(t *testing.T) {
	// Force compressible lines so the encoded path (not the raw
	// fallback) is exercised for every granularity.
	for _, gran := range []int{8, 16, 32, 64} {
		s, err := NewWLCRC(DefaultConfig(), gran)
		if err != nil {
			t.Fatal(err)
		}
		keep := 64 - wlcrcGeoms[gran].reclaim
		f := func(ws [memline.LineWords]uint64) bool {
			var data memline.Line
			for w, v := range ws {
				data.SetWord(w, memline.SignExtend(v&(1<<uint(keep)-1), keep))
			}
			if !s.Compressible(&data) {
				return false // construction bug, fail loudly
			}
			cells := s.Encode(InitialCells(s.TotalCells()), &data)
			if cells[memline.LineCells] != flagCompressed {
				return false
			}
			got := s.Decode(cells)
			return got.Equal(&data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("granularity %d: %v", gran, err)
		}
	}
}

func TestWLCRCUncompressibleFallsBackToRaw(t *testing.T) {
	s, err := NewWLCRC(DefaultConfig(), 16)
	if err != nil {
		t.Fatal(err)
	}
	var data memline.Line
	data.SetWord(0, 0x4123456789abcdef) // MSB run of 1 < k=6
	if s.Compressible(&data) {
		t.Fatal("line should be incompressible")
	}
	cells := s.Encode(InitialCells(s.TotalCells()), &data)
	if cells[memline.LineCells] != flagUncompressed {
		t.Error("flag cell must mark uncompressed")
	}
	got := s.Decode(cells)
	if !got.Equal(&data) {
		t.Error("raw fallback decode mismatch")
	}
}

func TestWLCRCAuxOverhead(t *testing.T) {
	// §VI.A: total encoding space overhead < 0.4% (one flag cell per 256).
	s, _ := NewWLCRC(DefaultConfig(), 16)
	over := float64(s.TotalCells()-memline.LineCells) / float64(memline.LineCells)
	if over >= 0.004 {
		t.Errorf("space overhead %.4f, want < 0.004", over)
	}
	if s.AuxCellsPerWord() != 2 {
		t.Errorf("WLCRC-16 pure-aux cells per word = %d, want 2", s.AuxCellsPerWord())
	}
}

func TestWLCCosetsGranularities(t *testing.T) {
	r := prng.New(99)
	for _, gran := range []int{8, 16, 32, 64} {
		for _, n := range []int{3, 4} {
			s, err := NewWLCCosets(DefaultConfig(), n, gran)
			if err != nil {
				t.Fatalf("WLC+%dcosets-%d: %v", n, gran, err)
			}
			keep := 64 - wlcReclaim[gran]
			cells := InitialCells(s.TotalCells())
			for step := 0; step < 10; step++ {
				var data memline.Line
				for w := 0; w < memline.LineWords; w++ {
					data.SetWord(w, memline.SignExtend(r.Uint64()&(1<<uint(keep)-1), keep))
				}
				if !s.Compressible(&data) {
					t.Fatalf("%s: constructed line not compressible", s.Name())
				}
				cells = s.Encode(cells, &data)
				got := s.Decode(cells)
				if !got.Equal(&data) {
					t.Fatalf("%s: round trip failed", s.Name())
				}
			}
		}
	}
}

func TestWLCCosetsInvalidConfig(t *testing.T) {
	if _, err := NewWLCCosets(DefaultConfig(), 4, 24); err == nil {
		t.Error("granularity 24 must be rejected")
	}
	if _, err := NewWLCCosets(DefaultConfig(), 6, 32); err == nil {
		t.Error("6 candidates must be rejected")
	}
	if _, err := NewWLCRC(DefaultConfig(), 12); err == nil {
		t.Error("WLCRC granularity 12 must be rejected")
	}
}

func TestMultiObjectiveNameAndBehavior(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MultiObjectiveT = 0.01
	s, err := NewWLCRC(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "WLCRC-16(T=1%)" {
		t.Errorf("Name = %q", s.Name())
	}
	// Multi-objective must never harm correctness.
	r := prng.New(3)
	cells := InitialCells(s.TotalCells())
	for step := 0; step < 30; step++ {
		data := randomBiasedLine(r)
		cells = s.Encode(cells, &data)
		got := s.Decode(cells)
		if !got.Equal(&data) {
			t.Fatalf("multi-objective round trip failed at step %d", step)
		}
	}
}

func TestMultiObjectiveReducesUpdates(t *testing.T) {
	// Aggregate over many rewrites: T=1% must not increase updated cells
	// and must not increase energy by more than ~2%.
	em := pcm.DefaultEnergy()
	plain, _ := NewWLCRC(DefaultConfig(), 16)
	cfgT := DefaultConfig()
	cfgT.MultiObjectiveT = 0.01
	multi, _ := NewWLCRC(cfgT, 16)

	r := prng.New(42)
	cellsP := InitialCells(plain.TotalCells())
	cellsM := InitialCells(multi.TotalCells())
	var eP, eM float64
	var uP, uM int
	for step := 0; step < 400; step++ {
		var data memline.Line
		for w := 0; w < memline.LineWords; w++ {
			data.SetWord(w, memline.SignExtend(r.Uint64()&0xffffffff, 32))
		}
		nP := plain.Encode(cellsP, &data)
		st := em.DiffWrite(cellsP, nP, plain.DataCells())
		eP += st.Energy()
		uP += st.Updated()
		cellsP = nP
		nM := multi.Encode(cellsM, &data)
		st = em.DiffWrite(cellsM, nM, multi.DataCells())
		eM += st.Energy()
		uM += st.Updated()
		cellsM = nM
	}
	if uM > uP {
		t.Errorf("multi-objective updates %d > plain %d", uM, uP)
	}
	if eM > eP*1.05 {
		t.Errorf("multi-objective energy %.0f exceeds plain %.0f by >5%%", eM, eP)
	}
}

// TestEncryptedSchemeRegistry covers the counter-keyed scheme names:
// VCC-n and the Enc(inner) wrapper form, including nesting rules.
func TestEncryptedSchemeRegistry(t *testing.T) {
	cfg := DefaultConfig()
	for _, name := range EncryptedSchemes() {
		s, err := NewScheme(name, cfg)
		if err != nil {
			t.Fatalf("NewScheme(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
		if s.DataCells() != memline.LineCells {
			t.Errorf("%s: DataCells = %d", name, s.DataCells())
		}
	}
	// VCC and Enc are counter schemes; the classics are not.
	for name, want := range map[string]bool{
		"VCC-4": true, "Enc(WLCRC-16)": true, "WLCRC-16": false, "Baseline": false,
	} {
		s, err := NewScheme(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if UsesCounters(s) != want {
			t.Errorf("UsesCounters(%s) = %v, want %v", name, !want, want)
		}
	}
	if _, err := NewScheme("Enc(nope)", cfg); err == nil {
		t.Error("Enc of an unknown inner scheme must fail")
	}
	if _, err := NewScheme("Enc(VCC-2)", cfg); err == nil {
		t.Error("Enc of a counter-keyed inner scheme must fail")
	}
	if _, err := NewScheme("Enc(Enc(Baseline))", cfg); err == nil {
		t.Error("nested Enc must fail")
	}
}

// TestCtrFuncFallbacks pins the resolved entry points: non-counter
// schemes ignore (addr, ctr); counter schemes' plain forms equal their
// (0, 0) keyed forms — which is what keeps every generic Scheme
// property valid for them.
func TestCtrFuncFallbacks(t *testing.T) {
	r := prng.New(91)
	for _, name := range []string{"WLCRC-16", "VCC-8", "Enc(WLCRC-16)"} {
		s, err := NewScheme(name, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		enc := EncodeCtrFunc(s)
		dec := DecodeCtrFunc(s)
		data := randomBiasedLine(r)
		old := InitialCells(s.TotalCells())
		a := make([]pcm.State, s.TotalCells())
		b := make([]pcm.State, s.TotalCells())
		s.EncodeInto(a, old, &data)
		enc(b, old, 0, 0, &data)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: EncodeCtrFunc(0,0) differs from EncodeInto", name)
			}
		}
		var got memline.Line
		dec(b, 0, 0, &got)
		if !got.Equal(&data) {
			t.Fatalf("%s: DecodeCtrFunc(0,0) round trip failed", name)
		}
		if !UsesCounters(s) {
			// Non-counter schemes must ignore arbitrary (addr, ctr).
			enc(b, old, 123, 456, &data)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: non-counter scheme depends on (addr, ctr)", name)
				}
			}
		}
	}
}
