package core

import (
	"wlcrc/internal/fault"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// StuckAwareEncoder is the optional Scheme extension behind the fault
// repair pipeline's first recourse: re-encode the line so every stuck
// cell's frozen state is exactly what the encoding wants to store
// there. Coset families can often do this for free — any candidate
// whose mapped output matches the stuck cells is a valid encoding — so
// a stuck line costs a second candidate search instead of ECC budget.
//
// EncodeStuckInto reports false when no candidate assignment satisfies
// the stuck cells; dst is then unspecified and the caller falls back to
// its next recourse (re-encoding canonically first).
type StuckAwareEncoder interface {
	EncodeStuckInto(dst, old []pcm.State, data *memline.Line, stuck *fault.LineStuck) bool
}

// EncodeStuckFunc resolves a scheme's stuck-aware re-encode entry
// point, or nil when the scheme cannot trade candidate freedom against
// stuck cells (the pipeline then goes straight to ECC). Resolved once
// at shard construction like the other optional extensions.
func EncodeStuckFunc(s Scheme) func(dst, old []pcm.State, data *memline.Line, stuck *fault.LineStuck) bool {
	if sa, ok := s.(StuckAwareEncoder); ok {
		return sa.EncodeStuckInto
	}
	return nil
}

// EncodeStuckInto implements StuckAwareEncoder for the unrestricted
// coset family: per block, the candidates are re-priced with the stuck
// cells as a hard constraint — a candidate survives only if its mapped
// output agrees with every stuck data cell of the block (word-parallel
// via SWARTable.StuckMismatch) and its auxiliary encoding agrees with
// every stuck aux cell — and the cheapest survivor wins. A block with
// no survivor fails the whole line.
func (s *LineCosets) EncodeStuckInto(dst, old []pcm.State, data *memline.Line, stuck *fault.LineStuck) bool {
	var lp linePlanes
	lp.init(data, old)
	var ns newStates
	for b := 0; b < s.nblocks; b++ {
		lo := b * s.blockCells
		hi := lo + s.blockCells
		best, bestCost := -1, 0.0
		for i := range s.swar {
			if !s.stuckOK(&lp, i, b, lo, hi, stuck) {
				continue
			}
			c, _ := lp.blockCost(&s.swar[i], lo, hi)
			if best < 0 || c < bestCost {
				best, bestCost = i, c
			}
		}
		if best < 0 {
			return false
		}
		ns.applyBlock(&s.swar[best], &lp, lo, hi)
		s.writeAux(dst, b, best)
	}
	ns.unpack(dst, memline.LineCells)
	return true
}

// stuckOK reports whether candidate idx of block b (data cells
// [lo, hi)) satisfies every stuck cell it would program.
func (s *LineCosets) stuckOK(lp *linePlanes, idx, b, lo, hi int, stuck *fault.LineStuck) bool {
	t := &s.swar[idx]
	for w := lo / memline.WordCells; w*memline.WordCells < hi; w++ {
		sm, sl, sh := stuck.WordPlanes(w)
		if sm == 0 {
			continue
		}
		if t.StuckMismatch(&lp[w], wordMask(w, lo, hi), sm, sl, sh) != 0 {
			return false
		}
	}
	base := memline.LineCells + b*s.auxPerBlk
	if s.auxPerBlk == 1 {
		if st, ok := stuck.StateOf(base); ok && st != pcm.State(idx) {
			return false
		}
		return true
	}
	pair := s.pairs[idx]
	if st, ok := stuck.StateOf(base); ok && st != pair[0] {
		return false
	}
	if st, ok := stuck.StateOf(base + 1); ok && st != pair[1] {
		return false
	}
	return true
}
