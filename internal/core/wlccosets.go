package core

import (
	"fmt"

	"wlcrc/internal/compress"
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// WLCCosets integrates word-level compression with *unrestricted* coset
// encoding (§VI: "WLC can be integrated with unrestricted 3cosets or
// 4cosets encodings, as long as WLC can reclaim enough bits"). Each
// 64-bit word must reclaim two candidate bits per block:
//
//	granularity  8   16  32  64  bits
//	reclaimed    16  8   4   2   bits per word (k = r+1 MSBs compressed)
//
// The reclaimed field of each word holds the per-block candidate indices
// (stored through the fixed C1 mapping); one global flag cell marks
// incompressible lines, which are written raw. The Figure 8 scheme
// "WLC+4cosets" is this encoder with four candidates at 32-bit blocks.
type WLCCosets struct {
	displayName string
	em          pcm.EnergyModel
	cands       []coset.Mapping
	tabs        []coset.CostTable
	swar        []coset.SWARTable
	gran        int
	wlc         compress.WLC
	dataCells   int      // fully-data cells per word
	blocks      [][2]int // [lo,hi) cell ranges of each block within a word
}

// wlcReclaim maps block granularity to the reclaimed bits per word.
var wlcReclaim = map[int]int{8: 16, 16: 8, 32: 4, 64: 2}

// NewWLCCosets builds a WLC+Ncosets scheme with ncands in {3, 4} Table I
// candidates at the given block granularity (8, 16, 32 or 64 bits). The
// canonical evaluation configuration (ncands=4, gran=32) reports its name
// as "WLC+4cosets"; other configurations append the granularity.
func NewWLCCosets(cfg Config, ncands, gran int) (*WLCCosets, error) {
	r, ok := wlcReclaim[gran]
	if !ok {
		return nil, fmt.Errorf("core: WLC+cosets granularity %d not in {8,16,32,64}", gran)
	}
	if ncands != 3 && ncands != 4 {
		return nil, fmt.Errorf("core: WLC+cosets needs 3 or 4 candidates, got %d", ncands)
	}
	s := &WLCCosets{
		displayName: fmt.Sprintf("WLC+%dcosets-%d", ncands, gran),
		em:          cfg.Energy,
		cands:       coset.Table1[:ncands],
		tabs:        coset.CostTables(&cfg.Energy, coset.Table1[:ncands]),
		swar:        coset.SWARTables(&cfg.Energy, coset.Table1[:ncands]),
		gran:        gran,
		wlc:         compress.WLC{K: r + 1},
		dataCells:   (64 - r) / 2,
	}
	if gran == 32 {
		s.displayName = fmt.Sprintf("WLC+%dcosets", ncands)
	}
	bc := gran / 2
	for lo := 0; lo < s.dataCells; lo += bc {
		hi := lo + bc
		if hi > s.dataCells {
			hi = s.dataCells
		}
		s.blocks = append(s.blocks, [2]int{lo, hi})
	}
	if 2*len(s.blocks) > r {
		return nil, fmt.Errorf("core: %d blocks need %d aux bits but only %d reclaimed", len(s.blocks), 2*len(s.blocks), r)
	}
	return s, nil
}

// Name implements Scheme.
func (s *WLCCosets) Name() string { return s.displayName }

// Granularity returns the block size in bits.
func (s *WLCCosets) Granularity() int { return s.gran }

// Compressible reports whether WLC can reclaim enough bits in every word
// of the line for this configuration.
func (s *WLCCosets) Compressible(data *memline.Line) bool {
	return s.wlc.LineCompressible(data)
}

// CompressedWrite implements CompressionGate.
func (s *WLCCosets) CompressedWrite(cells []pcm.State) bool {
	return cells[memline.LineCells] == flagCompressed
}

// TotalCells implements Scheme: the aux candidate bits live inside the
// words; only the compression flag cell is extra.
func (s *WLCCosets) TotalCells() int { return memline.LineCells + 1 }

// DataCells implements Scheme. The in-word reclaimed cells are classified
// as auxiliary by the simulator via AuxCellMask, but for region
// accounting the boundary stays at 256 with the flag cell beyond it.
func (s *WLCCosets) DataCells() int { return memline.LineCells }

// AuxCellsPerWord returns how many trailing cells of each word hold
// auxiliary candidate bits when the line is compressed.
func (s *WLCCosets) AuxCellsPerWord() int { return memline.WordCells - s.dataCells }

// Encode implements Scheme.
func (s *WLCCosets) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, s.TotalCells())
	s.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements Scheme.
func (s *WLCCosets) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	// Both paths overwrite every cell (data, in-word aux, flag), so no
	// copy-from-old is needed.
	if !s.wlc.LineCompressible(data) {
		rawEncode(data, dst)
		dst[memline.LineCells] = flagUncompressed
		return
	}
	for w := 0; w < memline.LineWords; w++ {
		s.encodeWord(data.Word(w), old[w*memline.WordCells:(w+1)*memline.WordCells], dst[w*memline.WordCells:(w+1)*memline.WordCells])
	}
	dst[memline.LineCells] = flagCompressed
}

func (s *WLCCosets) encodeWord(word uint64, old, out []pcm.State) {
	var p coset.WordPlanes
	p.Init(word, old)
	var auxBits [2 * memline.WordCells]uint8
	nAux := 2 * (memline.WordCells - s.dataCells)
	var nlo, nhi uint64
	for b, rng := range s.blocks {
		mask := coset.CellMask(rng[0], rng[1]-rng[0])
		idx, _ := coset.BestSWAR(s.swar, &p, mask)
		lo, hi := s.swar[idx].Apply(&p)
		nlo |= lo & mask
		nhi |= hi & mask
		auxBits[2*b] = uint8(idx) & 1
		auxBits[2*b+1] = uint8(idx) >> 1
	}
	// The aux cells the unpack scribbles on are overwritten just below.
	coset.UnpackStates(nlo, nhi, out[:memline.WordCells])
	coset.PackBitsToStates(auxBits[:nAux], out[s.dataCells:])
}

// Decode implements Scheme.
func (s *WLCCosets) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	s.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements Scheme.
func (s *WLCCosets) DecodeInto(cells []pcm.State, dst *memline.Line) {
	if cells[memline.LineCells] != flagCompressed {
		rawDecodeInto(cells, dst)
		return
	}
	for w := 0; w < memline.LineWords; w++ {
		dst.SetWord(w, s.decodeWord(cells[w*memline.WordCells:(w+1)*memline.WordCells]))
	}
}

func (s *WLCCosets) decodeWord(cells []pcm.State) uint64 {
	auxCells := memline.WordCells - s.dataCells
	var auxBits [2 * memline.WordCells]uint8
	coset.UnpackBits(cells[s.dataCells:], auxBits[:2*auxCells])
	slo, shi := coset.PackStates(cells)
	var dlo, dhi uint64
	for b, rng := range s.blocks {
		idx := int(auxBits[2*b]) | int(auxBits[2*b+1])<<1
		if idx >= len(s.cands) {
			idx = 0
		}
		lo, hi := s.swar[idx].ApplyInvPlanes(slo, shi)
		mask := coset.CellMask(rng[0], rng[1]-rng[0])
		dlo |= lo & mask
		dhi |= hi & mask
	}
	return s.wlc.DecompressWord(memline.InterleavePlanes(dlo, dhi))
}
