package core

import (
	"fmt"

	"wlcrc/internal/compress"
	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// WLCCosets integrates word-level compression with *unrestricted* coset
// encoding (§VI: "WLC can be integrated with unrestricted 3cosets or
// 4cosets encodings, as long as WLC can reclaim enough bits"). Each
// 64-bit word must reclaim two candidate bits per block:
//
//	granularity  8   16  32  64  bits
//	reclaimed    16  8   4   2   bits per word (k = r+1 MSBs compressed)
//
// The reclaimed field of each word holds the per-block candidate indices
// (stored through the fixed C1 mapping); one global flag cell marks
// incompressible lines, which are written raw. The Figure 8 scheme
// "WLC+4cosets" is this encoder with four candidates at 32-bit blocks.
type WLCCosets struct {
	displayName string
	em          pcm.EnergyModel
	cands       []coset.Mapping
	gran        int
	wlc         compress.WLC
	dataCells   int      // fully-data cells per word
	blocks      [][2]int // [lo,hi) cell ranges of each block within a word
}

// wlcReclaim maps block granularity to the reclaimed bits per word.
var wlcReclaim = map[int]int{8: 16, 16: 8, 32: 4, 64: 2}

// NewWLCCosets builds a WLC+Ncosets scheme with ncands in {3, 4} Table I
// candidates at the given block granularity (8, 16, 32 or 64 bits). The
// canonical evaluation configuration (ncands=4, gran=32) reports its name
// as "WLC+4cosets"; other configurations append the granularity.
func NewWLCCosets(cfg Config, ncands, gran int) (*WLCCosets, error) {
	r, ok := wlcReclaim[gran]
	if !ok {
		return nil, fmt.Errorf("core: WLC+cosets granularity %d not in {8,16,32,64}", gran)
	}
	if ncands != 3 && ncands != 4 {
		return nil, fmt.Errorf("core: WLC+cosets needs 3 or 4 candidates, got %d", ncands)
	}
	s := &WLCCosets{
		displayName: fmt.Sprintf("WLC+%dcosets-%d", ncands, gran),
		em:          cfg.Energy,
		cands:       coset.Table1[:ncands],
		gran:        gran,
		wlc:         compress.WLC{K: r + 1},
		dataCells:   (64 - r) / 2,
	}
	if gran == 32 {
		s.displayName = fmt.Sprintf("WLC+%dcosets", ncands)
	}
	bc := gran / 2
	for lo := 0; lo < s.dataCells; lo += bc {
		hi := lo + bc
		if hi > s.dataCells {
			hi = s.dataCells
		}
		s.blocks = append(s.blocks, [2]int{lo, hi})
	}
	if 2*len(s.blocks) > r {
		return nil, fmt.Errorf("core: %d blocks need %d aux bits but only %d reclaimed", len(s.blocks), 2*len(s.blocks), r)
	}
	return s, nil
}

// Name implements Scheme.
func (s *WLCCosets) Name() string { return s.displayName }

// Granularity returns the block size in bits.
func (s *WLCCosets) Granularity() int { return s.gran }

// Compressible reports whether WLC can reclaim enough bits in every word
// of the line for this configuration.
func (s *WLCCosets) Compressible(data *memline.Line) bool {
	return s.wlc.LineCompressible(data)
}

// TotalCells implements Scheme: the aux candidate bits live inside the
// words; only the compression flag cell is extra.
func (s *WLCCosets) TotalCells() int { return memline.LineCells + 1 }

// DataCells implements Scheme. The in-word reclaimed cells are classified
// as auxiliary by the simulator via AuxCellMask, but for region
// accounting the boundary stays at 256 with the flag cell beyond it.
func (s *WLCCosets) DataCells() int { return memline.LineCells }

// AuxCellsPerWord returns how many trailing cells of each word hold
// auxiliary candidate bits when the line is compressed.
func (s *WLCCosets) AuxCellsPerWord() int { return memline.WordCells - s.dataCells }

// Encode implements Scheme.
func (s *WLCCosets) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, s.TotalCells())
	copy(out, old)
	if !s.wlc.LineCompressible(data) {
		rawEncode(data, out)
		out[memline.LineCells] = flagUncompressed
		return out
	}
	for w := 0; w < memline.LineWords; w++ {
		s.encodeWord(data.Word(w), old[w*memline.WordCells:(w+1)*memline.WordCells], out[w*memline.WordCells:(w+1)*memline.WordCells])
	}
	out[memline.LineCells] = flagCompressed
	return out
}

func (s *WLCCosets) encodeWord(word uint64, old, out []pcm.State) {
	var syms [memline.WordCells]uint8
	for c := 0; c < s.dataCells; c++ {
		syms[c] = uint8(word >> (uint(c) * 2) & 3)
	}
	auxBits := make([]uint8, 2*(memline.WordCells-s.dataCells))
	for b, rng := range s.blocks {
		idx, _ := coset.Best(&s.em, s.cands, syms[rng[0]:rng[1]], old[rng[0]:rng[1]])
		coset.Encode(s.cands[idx], syms[rng[0]:rng[1]], out[rng[0]:rng[1]])
		auxBits[2*b] = uint8(idx) & 1
		auxBits[2*b+1] = uint8(idx) >> 1
	}
	coset.PackBitsToStates(auxBits, out[s.dataCells:])
}

// Decode implements Scheme.
func (s *WLCCosets) Decode(cells []pcm.State) memline.Line {
	if cells[memline.LineCells] != flagCompressed {
		return rawDecode(cells)
	}
	var l memline.Line
	for w := 0; w < memline.LineWords; w++ {
		l.SetWord(w, s.decodeWord(cells[w*memline.WordCells:(w+1)*memline.WordCells]))
	}
	return l
}

func (s *WLCCosets) decodeWord(cells []pcm.State) uint64 {
	auxCells := memline.WordCells - s.dataCells
	auxBits := coset.UnpackStatesToBits(cells[s.dataCells:], 2*auxCells)
	var word uint64
	blkSyms := make([]uint8, s.gran/2)
	for b, rng := range s.blocks {
		idx := int(auxBits[2*b]) | int(auxBits[2*b+1])<<1
		if idx >= len(s.cands) {
			idx = 0
		}
		n := rng[1] - rng[0]
		coset.Decode(s.cands[idx], cells[rng[0]:rng[1]], blkSyms[:n])
		for i := 0; i < n; i++ {
			word |= uint64(blkSyms[i]) << (uint(rng[0]+i) * 2)
		}
	}
	return s.wlc.DecompressWord(word)
}
