package core

import (
	"testing"

	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// The §XI extension: write-disturbance-aware WLCRC trades a little
// energy for fewer expected disturbance errors.

func wdScheme(t *testing.T, lambda float64) *WLCRC {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DisturbAwareLambda = lambda
	s, err := NewWLCRC(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWDAwareName(t *testing.T) {
	if got := wdScheme(t, 500).Name(); got != "WLCRC-16(WD)" {
		t.Errorf("Name = %q", got)
	}
}

func TestWDAwareRoundTrip(t *testing.T) {
	s := wdScheme(t, 500)
	r := prng.New(9)
	cells := InitialCells(s.TotalCells())
	for step := 0; step < 40; step++ {
		data := randomBiasedLine(r)
		cells = s.Encode(cells, &data)
		if got := s.Decode(cells); !got.Equal(&data) {
			t.Fatalf("round trip failed at step %d", step)
		}
	}
}

func TestWDAwareReducesDisturbance(t *testing.T) {
	plain, _ := NewWLCRC(DefaultConfig(), 16)
	wd := wdScheme(t, 2000)
	em := pcm.DefaultEnergy()
	dm := pcm.DefaultDisturb()
	r := prng.New(123)

	run := func(s Scheme) (energy, disturb float64) {
		cells := InitialCells(s.TotalCells())
		for step := 0; step < 600; step++ {
			var data memline.Line
			for w := 0; w < memline.LineWords; w++ {
				data.SetWord(w, memline.SignExtend(r.Uint64()&0x3fffffff, 30))
			}
			next := s.Encode(cells, &data)
			energy += em.DiffWrite(cells, next, s.DataCells()).Energy()
			changed := pcm.ChangedMask(cells, next)
			disturb += dm.CountDisturb(next, changed, s.DataCells(), nil).Errors()
			cells = next
		}
		return energy, disturb
	}
	// Identical streams for both schemes.
	eP, dP := run(plain)
	r = prng.New(123)
	eW, dW := run(wd)

	if dW >= dP {
		t.Errorf("WD-aware disturbance %.1f >= plain %.1f", dW, dP)
	}
	if eW > eP*1.15 {
		t.Errorf("WD-aware energy %.0f exceeds plain %.0f by >15%%", eW, eP)
	}
	t.Logf("disturbance %.1f -> %.1f (-%.1f%%), energy %.0f -> %.0f (+%.1f%%)",
		dP, dW, 100*(1-dW/dP), eP, eW, 100*(eW/eP-1))
}
