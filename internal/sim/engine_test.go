package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"wlcrc/internal/memsys"
	"wlcrc/internal/trace"
	"wlcrc/internal/workload"
)

// fixedTrace records a deterministic finite trace from a synthetic
// profile so every engine run in a test replays the exact same stream.
func fixedTrace(t *testing.T, profile string, footprint, n int, seed uint64) *trace.SliceSource {
	t.Helper()
	p, ok := workload.ProfileByName(profile)
	if !ok {
		t.Fatalf("unknown profile %q", profile)
	}
	return trace.Record(workload.NewGenerator(p, footprint, seed), n)
}

// engineSchemes is the cross-section of scheme families the determinism
// tests replay: plain differential write, full-line cosets, a
// compression-gated scheme and the paper's headline configuration.
var engineSchemeNames = []string{"Baseline", "6cosets", "COC+4cosets", "WLCRC-16"}

// TestEngineBitIdenticalAcrossWorkerCounts is the core determinism
// guarantee: the merged metrics of a parallel run must equal the serial
// (Workers=1) run of the same engine exactly — floats bit-for-bit — in
// every accounting mode.
func TestEngineBitIdenticalAcrossWorkerCounts(t *testing.T) {
	modes := map[string]func(*Options){
		"deterministic": func(o *Options) {},
		"sampled":       func(o *Options) { o.SampleDisturb = true; o.Seed = 42 },
		"vnr":           func(o *Options) { o.InjectFaults = true; o.Seed = 7 },
	}
	for name, tweak := range modes {
		t.Run(name, func(t *testing.T) {
			src := fixedTrace(t, "gcc", 512, 3000, 11)
			baseline := engineRun(t, src, 1, tweak)
			for _, workers := range []int{2, 3, 4, 8} {
				src.Rewind()
				got := engineRun(t, src, workers, tweak)
				if !reflect.DeepEqual(baseline, got) {
					t.Errorf("workers=%d metrics differ from serial run:\nserial:   %+v\nparallel: %+v",
						workers, baseline, got)
				}
			}
		})
	}
}

func engineRun(t *testing.T, src *trace.SliceSource, workers int, tweak func(*Options)) []Metrics {
	t.Helper()
	src.Rewind()
	opts := DefaultOptions()
	opts.Workers = workers
	tweak(&opts)
	e := NewEngine(opts, schemesForTest(t, engineSchemeNames...)...)
	if err := e.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	return e.Metrics()
}

// TestEngineMatchesSimulator checks the engine against the
// single-threaded reference implementation in deterministic mode:
// integer counters must agree exactly, and float accumulators must agree
// up to summation-order rounding (the engine groups per-bank partial
// sums before merging).
func TestEngineMatchesSimulator(t *testing.T) {
	src := fixedTrace(t, "mcf", 512, 3000, 5)
	ref := New(DefaultOptions(), schemesForTest(t, engineSchemeNames...)...)
	if err := ref.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	src.Rewind()
	opts := DefaultOptions()
	e := NewEngine(opts, schemesForTest(t, engineSchemeNames...)...)
	if err := e.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	want := ref.Metrics()
	got := e.Metrics()
	for i := range want {
		w, g := want[i], got[i]
		if w.Scheme != g.Scheme || w.Writes != g.Writes ||
			w.Energy.UpdatedData != g.Energy.UpdatedData ||
			w.Energy.UpdatedAux != g.Energy.UpdatedAux ||
			w.CompressedWrites != g.CompressedWrites ||
			w.DecodeErrors != g.DecodeErrors {
			t.Errorf("%s: integer counters diverge: simulator %+v, engine %+v", w.Scheme, w, g)
		}
		if !closeRel(w.Energy.EnergyData, g.Energy.EnergyData) ||
			!closeRel(w.Energy.EnergyAux, g.Energy.EnergyAux) ||
			!closeRel(w.Disturb.ErrorsData, g.Disturb.ErrorsData) ||
			!closeRel(w.Disturb.ErrorsAux, g.Disturb.ErrorsAux) {
			t.Errorf("%s: float accumulators diverge beyond rounding: simulator %+v, engine %+v",
				w.Scheme, w.Energy, g.Energy)
		}
	}
}

func closeRel(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestEngineWarmupResetMetrics mirrors the experiment harness's warm-up
// flow: warm up, reset metrics, measure — and must still be
// worker-count independent.
func TestEngineWarmupResetMetrics(t *testing.T) {
	run := func(workers int) []Metrics {
		src := fixedTrace(t, "lesl", 256, 2000, 9)
		opts := DefaultOptions()
		opts.Workers = workers
		e := NewEngine(opts, schemesForTest(t, "Baseline", "WLCRC-16")...)
		if err := e.Run(src, 1000); err != nil {
			t.Fatal(err)
		}
		e.ResetMetrics()
		if err := e.Run(src, 0); err != nil {
			t.Fatal(err)
		}
		return e.Metrics()
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("warmed-up metrics differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serial[0].Writes != 1000 {
		t.Errorf("post-warmup writes = %d, want 1000", serial[0].Writes)
	}
}

// TestEngineVerifyErrorDeterministic checks that a decode failure is
// reported identically for every worker count: the engine must surface
// the globally-first failing request no matter which worker detects it.
// (Metrics after an error cover an unspecified prefix — see Run — so
// only the error is compared.)
func TestEngineVerifyErrorDeterministic(t *testing.T) {
	run := func(workers int) string {
		src := fixedTrace(t, "gcc", 128, 500, 3)
		opts := DefaultOptions()
		opts.Workers = workers
		e := NewEngine(opts, brokenScheme{})
		err := e.Run(src, 0)
		if err == nil {
			t.Fatal("broken scheme did not surface a decode error")
		}
		if !strings.Contains(err.Error(), "decode mismatch") {
			t.Fatalf("err = %v, want decode mismatch", err)
		}
		return err.Error()
	}
	serialErr := run(1)
	for _, workers := range []int{2, 8} {
		for round := 0; round < 3; round++ {
			if gotErr := run(workers); gotErr != serialErr {
				t.Errorf("workers=%d reported %q, serial reported %q", workers, gotErr, serialErr)
			}
		}
	}
}

// TestEngineGeometry checks shard-count plumbing: the engine must adopt
// the Table II bank count by default and honor an explicit geometry.
func TestEngineGeometry(t *testing.T) {
	e := NewEngine(DefaultOptions(), schemesForTest(t, "Baseline")...)
	if want := memsys.TableII().Banks(); e.Banks() != want {
		t.Errorf("default banks = %d, want %d", e.Banks(), want)
	}
	if e.Workers() < 1 {
		t.Errorf("resolved workers = %d, want >= 1", e.Workers())
	}
	opts := DefaultOptions()
	opts.Geometry = memsys.Config{Channels: 1, DIMMsPerChan: 1, BanksPerDIMM: 4, WriteQueueCap: 8, DrainThreshold: 0.8}
	e = NewEngine(opts, schemesForTest(t, "Baseline")...)
	if e.Banks() != 4 {
		t.Errorf("explicit banks = %d, want 4", e.Banks())
	}

	// A different bank count regroups float sums, but worker-count
	// independence must hold for any geometry.
	src := fixedTrace(t, "sopl", 256, 1500, 21)
	runWith := func(workers int) []Metrics {
		src.Rewind()
		o := opts
		o.Workers = workers
		e := NewEngine(o, schemesForTest(t, "Baseline", "WLCRC-16")...)
		if err := e.Run(src, 0); err != nil {
			t.Fatal(err)
		}
		return e.Metrics()
	}
	if !reflect.DeepEqual(runWith(1), runWith(4)) {
		t.Error("4-bank geometry not worker-count independent")
	}
}

// TestEngineMetricsForAndReset covers the remaining Replayer surface.
func TestEngineMetricsForAndReset(t *testing.T) {
	src := fixedTrace(t, "libq", 64, 300, 1)
	e := NewEngine(DefaultOptions(), schemesForTest(t, "Baseline", "WLCRC-16")...)
	if err := e.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	m, ok := e.MetricsFor("WLCRC-16")
	if !ok || m.Writes != 300 {
		t.Errorf("MetricsFor(WLCRC-16) = %+v, %v", m, ok)
	}
	if _, ok := e.MetricsFor("nope"); ok {
		t.Error("MetricsFor(nope) succeeded")
	}
	e.Reset()
	if m, _ := e.MetricsFor("Baseline"); m.Writes != 0 || m.Energy.Energy() != 0 {
		t.Errorf("Reset did not clear metrics: %+v", m)
	}
}

// TestEngineRunMaxLimit mirrors the Simulator's max-request contract.
func TestEngineRunMaxLimit(t *testing.T) {
	p, _ := workload.ProfileByName("mcf")
	e := NewEngine(DefaultOptions(), schemesForTest(t, "Baseline")...)
	if err := e.Run(workload.NewGenerator(p, 128, 2), 100); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics()[0]; m.Writes != 100 {
		t.Errorf("writes = %d, want 100", m.Writes)
	}
}
