package sim

import (
	"math"
	"strings"
	"testing"

	"wlcrc/internal/core"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/trace"
	"wlcrc/internal/workload"
)

func schemesForTest(t *testing.T, names ...string) []core.Scheme {
	t.Helper()
	cfg := core.DefaultConfig()
	var out []core.Scheme
	for _, n := range names {
		s, err := core.NewScheme(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func TestSimulatorBasicRun(t *testing.T) {
	schemes := schemesForTest(t, "Baseline", "WLCRC-16")
	s := New(DefaultOptions(), schemes...)
	p, _ := workload.ProfileByName("gcc")
	src := &workload.Limited{Src: workload.NewGenerator(p, 256, 1), N: 500}
	if err := s.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	for _, m := range s.Metrics() {
		if m.Writes != 500 {
			t.Errorf("%s: writes = %d", m.Scheme, m.Writes)
		}
		if m.DecodeErrors != 0 {
			t.Errorf("%s: %d decode errors", m.Scheme, m.DecodeErrors)
		}
		if m.AvgEnergy() <= 0 {
			t.Errorf("%s: no energy recorded", m.Scheme)
		}
		if m.AvgUpdated() <= 0 || m.AvgUpdated() > float64(memline.LineCells) {
			t.Errorf("%s: avg updated = %v", m.Scheme, m.AvgUpdated())
		}
	}
}

func TestSimulatorRunMaxLimit(t *testing.T) {
	schemes := schemesForTest(t, "Baseline")
	s := New(DefaultOptions(), schemes...)
	p, _ := workload.ProfileByName("mcf")
	if err := s.Run(workload.NewGenerator(p, 128, 2), 100); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics()[0]; m.Writes != 100 {
		t.Errorf("writes = %d, want 100", m.Writes)
	}
}

func TestWLCRCBeatsBaselineOnBenchmarks(t *testing.T) {
	// The headline claim at small scale: WLCRC-16 must use substantially
	// less write energy than the baseline on biased workloads.
	schemes := schemesForTest(t, "Baseline", "WLCRC-16")
	s := New(DefaultOptions(), schemes...)
	for _, name := range []string{"gcc", "mcf", "lesl"} {
		p, _ := workload.ProfileByName(name)
		if err := s.Run(&workload.Limited{Src: workload.NewGenerator(p, 256, 3), N: 800}, 0); err != nil {
			t.Fatal(err)
		}
	}
	base, _ := s.MetricsFor("Baseline")
	wl, _ := s.MetricsFor("WLCRC-16")
	if wl.AvgEnergy() >= base.AvgEnergy()*0.75 {
		t.Errorf("WLCRC-16 avg energy %.0f not clearly below baseline %.0f",
			wl.AvgEnergy(), base.AvgEnergy())
	}
	if wl.CompressedFraction() < 0.8 {
		t.Errorf("WLCRC-16 compressed fraction %.2f, want >= 0.8", wl.CompressedFraction())
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	// A scheme that decodes wrongly must surface as an error.
	s := New(DefaultOptions(), brokenScheme{})
	var req trace.Request
	req.New.SetWord(0, 42)
	err := s.Write(req)
	if err == nil || !strings.Contains(err.Error(), "decode mismatch") {
		t.Fatalf("err = %v, want decode mismatch", err)
	}
}

type brokenScheme struct{ core.Baseline }

func (brokenScheme) Name() string { return "broken" }

func (b brokenScheme) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	b.DecodeInto(cells, &l)
	return l
}

func (b brokenScheme) DecodeInto(cells []pcm.State, dst *memline.Line) {
	b.Baseline.DecodeInto(cells, dst)
	dst[0] ^= 0xff
}

// DecodePlanesInto mirrors the scalar corruption so the breakage
// surfaces on whichever storage path the shard resolves.
func (b brokenScheme) DecodePlanesInto(planes []uint64, dst *memline.Line) {
	b.Baseline.DecodePlanesInto(planes, dst)
	dst[0] ^= 0xff
}

func TestDisturbSampledVsExpected(t *testing.T) {
	// Sampled disturbance should be close to expected-value accounting
	// in aggregate.
	p, _ := workload.ProfileByName("zeus")

	exp := New(DefaultOptions(), schemesForTest(t, "Baseline")...)
	if err := exp.Run(&workload.Limited{Src: workload.NewGenerator(p, 256, 4), N: 1500}, 0); err != nil {
		t.Fatal(err)
	}
	optsS := DefaultOptions()
	optsS.SampleDisturb = true
	optsS.Seed = 12345
	smp := New(optsS, schemesForTest(t, "Baseline")...)
	if err := smp.Run(&workload.Limited{Src: workload.NewGenerator(p, 256, 4), N: 1500}, 0); err != nil {
		t.Fatal(err)
	}
	e := exp.Metrics()[0].AvgDisturb()
	g := smp.Metrics()[0].AvgDisturb()
	if e <= 0 {
		t.Fatal("no disturbance recorded")
	}
	if math.Abs(e-g)/e > 0.15 {
		t.Errorf("sampled %.3f vs expected %.3f differ by >15%%", g, e)
	}
}

func TestReset(t *testing.T) {
	s := New(DefaultOptions(), schemesForTest(t, "Baseline")...)
	p, _ := workload.ProfileByName("libq")
	s.Run(&workload.Limited{Src: workload.NewGenerator(p, 64, 5), N: 50}, 0)
	s.Reset()
	if m := s.Metrics()[0]; m.Writes != 0 || m.Energy.Energy() != 0 {
		t.Errorf("Reset did not clear metrics: %+v", m)
	}
}

func TestMetricsForUnknown(t *testing.T) {
	s := New(DefaultOptions(), schemesForTest(t, "Baseline")...)
	if _, ok := s.MetricsFor("nope"); ok {
		t.Error("MetricsFor(nope) succeeded")
	}
}
