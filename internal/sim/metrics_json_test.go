package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"wlcrc/internal/core"
	"wlcrc/internal/fault"
	"wlcrc/internal/workload"
)

// TestMetricsJSONRoundTrip is the stable-schema guarantee behind the
// pcmserver API and result store: a fully populated Metrics — histograms,
// wear digest, fault stats from a real fault-enabled replay — survives
// encoding/json byte-for-byte (Go emits floats with round-trip
// precision, every field is exported, and the fixed-array types carry
// their own MarshalJSON).
func TestMetricsJSONRoundTrip(t *testing.T) {
	cfg := core.DefaultConfig()
	var schemes []core.Scheme
	for _, name := range []string{"Baseline", "WLCRC-16"} {
		s, err := core.NewScheme(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		schemes = append(schemes, s)
	}
	opts := DefaultOptions()
	opts.TrackWear = true
	opts.Seed = 3
	opts.Faults = fault.Config{Enabled: true, CellEndurance: 50, EnduranceSpread: 0.5}
	eng := NewEngine(opts, schemes...)
	p, _ := workload.ProfileByName("gcc")
	src := &workload.Limited{Src: workload.NewGenerator(p, 64, 3), N: 2000}
	if err := eng.Run(src, 0); err != nil {
		if _, ok := err.(*DegradedError); !ok {
			t.Fatal(err)
		}
	}
	for _, m := range eng.Metrics() {
		if m.Writes == 0 || m.EnergyHist.N == 0 {
			t.Fatalf("replay produced hollow metrics: %+v", m)
		}
		if m.Wear.Updates == 0 {
			t.Fatalf("wear digest empty despite TrackWear: %+v", m.Wear)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back Metrics
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, m) {
			t.Errorf("%s: JSON round trip changed the metrics:\n got %+v\nwant %+v", m.Scheme, back, m)
		}
	}
}

// TestFaultStatsJSONRoundTrip covers fault.Stats alone (every field
// set), complementing the replay-populated pass above.
func TestFaultStatsJSONRoundTrip(t *testing.T) {
	s := fault.Stats{
		StuckCells: 1, WearStuck: 2, InjectedStuck: 3, LinesTouched: 4,
		Detected: 5, Retries: 6, RetriedOK: 7, CorrectedWrites: 8,
		CorrectedBits: 9, RetiredLines: 10, RemapHits: 11,
		Uncorrectable: 12, FirstRetireSeq: 13,
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back fault.Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("round trip changed fault stats:\n got %+v\nwant %+v", back, s)
	}
}
