package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"wlcrc/internal/fault"
	"wlcrc/internal/memline"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

// faultTestTrace returns a deterministic trace plus the expected final
// content of every written address (the read-back oracle).
func faultTestTrace(t *testing.T, profile string, footprint, n int, seed uint64) (*trace.SliceSource, map[uint64]*memline.Line) {
	t.Helper()
	src := fixedTrace(t, profile, footprint, n, seed)
	final := map[uint64]*memline.Line{}
	for i := range src.Reqs {
		final[src.Reqs[i].Addr] = &src.Reqs[i].New
	}
	return src, final
}

// checkReadBack reads every written address back through each shard's
// controller read path and compares it bit-exactly against the last
// write — the fault pipeline's end-to-end recoverability contract.
func checkReadBack(t *testing.T, s *Simulator, final map[uint64]*memline.Line) {
	t.Helper()
	for _, u := range s.shards {
		var got memline.Line
		for addr, want := range final {
			ok, err := u.readLine(addr, &got)
			if err != nil {
				t.Fatalf("%s: read %#x: %v", u.scheme.Name(), addr, err)
			}
			if !ok {
				t.Fatalf("%s: addr %#x not resident", u.scheme.Name(), addr)
			}
			if !got.Equal(want) {
				t.Fatalf("%s: addr %#x reads back wrong content", u.scheme.Name(), addr)
			}
		}
	}
}

// TestFaultRepairWithinECCBudget is the first acceptance scenario: with
// static stuck cells within the per-line ECC budget, the run completes
// clean (no uncorrectable writes, no degradation) and every line reads
// back bit-exactly through the recovery path. Baseline has no candidate
// freedom, so its repairs exercise the ECC; the coset schemes also
// exercise the stuck-aware re-encode retry.
func TestFaultRepairWithinECCBudget(t *testing.T) {
	src, final := faultTestTrace(t, "gcc", 32, 800, 17)
	opts := DefaultOptions()
	opts.Faults = fault.Config{
		Enabled: true,
		ECCBits: 8, // 4 interleaved ways
		Static:  fault.RandomStatic(9, 24, 32),
	}
	s := New(opts, schemesForTest(t, "Baseline", "6cosets", "WLCRC-16")...)
	if err := s.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	sawRetry, sawECC := false, false
	for _, m := range s.Metrics() {
		f := m.Faults
		if f.StuckCells == 0 || f.Detected == 0 {
			t.Errorf("%s: fault pipeline never engaged: %+v", m.Scheme, f)
		}
		if f.Uncorrectable != 0 {
			t.Errorf("%s: %d uncorrectable writes within budget", m.Scheme, f.Uncorrectable)
		}
		if m.DecodeErrors != 0 {
			t.Errorf("%s: %d decode errors", m.Scheme, m.DecodeErrors)
		}
		sawRetry = sawRetry || f.RetriedOK > 0
		sawECC = sawECC || f.CorrectedWrites > 0
		t.Logf("%-10s stuck %d, detected %d, retriedOK %d, ECC-corrected %d (%d bits), retired %d",
			m.Scheme, f.StuckCells, f.Detected, f.RetriedOK, f.CorrectedWrites, f.CorrectedBits, f.RetiredLines)
	}
	if !sawRetry || !sawECC {
		t.Errorf("repair recourses not both exercised: retry=%v ecc=%v", sawRetry, sawECC)
	}
	checkReadBack(t, s, final)
}

// TestFaultRetireBeyondBudget is the second acceptance scenario: a line
// with more stuck cells than the ECC can absorb retires to a spare, its
// traffic replays onto the remap, and reads stay bit-exact.
func TestFaultRetireBeyondBudget(t *testing.T) {
	src, final := faultTestTrace(t, "mcf", 8, 200, 3)
	static := make([]fault.StuckCell, 0, 6)
	for c := 0; c < 6; c++ { // six worst-case cells on one hot line
		static = append(static, fault.StuckCell{Addr: 2, Cell: 40 * c, State: 3})
	}
	opts := DefaultOptions()
	opts.Faults = fault.Config{
		Enabled:            true,
		ECCBits:            2, // one way: at most one fully-stuck cell
		SpareLines:         4,
		MaxRetiredFraction: 1,
		Static:             static,
	}
	s := New(opts, schemesForTest(t, "Baseline", "WLCRC-16")...)
	if err := s.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	for _, m := range s.Metrics() {
		f := m.Faults
		if f.RetiredLines == 0 || f.FirstRetireSeq == 0 {
			t.Errorf("%s: overloaded line never retired: %+v", m.Scheme, f)
		}
		if f.RemapHits == 0 {
			t.Errorf("%s: no traffic replayed onto the remapped line", m.Scheme)
		}
		if f.Uncorrectable != 0 {
			t.Errorf("%s: %d uncorrectable despite spare pool", m.Scheme, f.Uncorrectable)
		}
	}
	checkReadBack(t, s, final)
}

// TestFaultFailFastVsGraceful pins the two failure semantics over the
// same wear-out collapse: a one-spare pool and single-cycle endurance
// exhaust recoverability mid-trace. FailFast aborts at the first
// uncorrectable write; graceful mode replays the whole trace and
// reports the collapse as a *DegradedError carrying complete metrics.
func TestFaultFailFastVsGraceful(t *testing.T) {
	r := prng.New(77)
	reqs := make([]trace.Request, 60)
	for i := range reqs {
		var ws [memline.LineWords]uint64
		for w := range ws {
			ws[w] = r.Uint64()
		}
		reqs[i] = trace.Request{Addr: uint64(i % 2), New: memline.FromWords(ws)}
	}
	cfg := fault.Config{
		Enabled:       true,
		CellEndurance: 1,
		ECCBits:       2,
		SpareLines:    1,
		// MaxRetiredFraction left at the 0.25 default: with 2 touched
		// lines and 1 retirement the fraction alone crosses it too.
	}

	opts := DefaultOptions()
	opts.Faults = cfg
	opts.FailFast = true
	s := New(opts, schemesForTest(t, "Baseline")...)
	err := s.Run(&trace.SliceSource{Reqs: reqs}, 0)
	if err == nil || !strings.Contains(err.Error(), "uncorrectable stuck-at fault") {
		t.Fatalf("FailFast err = %v, want uncorrectable abort", err)
	}
	if w := s.Metrics()[0].Writes; w == 0 || w >= len(reqs) {
		t.Errorf("FailFast replayed %d writes, want a strict prefix", w)
	}

	opts.FailFast = false
	s = New(opts, schemesForTest(t, "Baseline")...)
	err = s.Run(&trace.SliceSource{Reqs: reqs}, 0)
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("graceful err = %v, want *DegradedError", err)
	}
	if len(de.Schemes) != 1 || de.Schemes[0] != "Baseline" {
		t.Errorf("degraded schemes = %v", de.Schemes)
	}
	if de.Threshold != 0.25 {
		t.Errorf("threshold = %v, want resolved default 0.25", de.Threshold)
	}
	m := s.Metrics()[0]
	if m.Writes != len(reqs) {
		t.Errorf("graceful mode replayed %d writes, want the full trace %d", m.Writes, len(reqs))
	}
	if m.Faults.Uncorrectable == 0 {
		t.Errorf("graceful run recorded no uncorrectable writes: %+v", m.Faults)
	}
	if len(de.Metrics) != 1 || de.Metrics[0].Writes != m.Writes {
		t.Errorf("DegradedError metrics incomplete: %+v", de.Metrics)
	}
}

// TestFaultBelowThresholdNoError covers the healthy-degradation
// boundary: retirements below MaxRetiredFraction and zero uncorrectable
// writes must not error.
func TestFaultBelowThresholdNoError(t *testing.T) {
	src, _ := faultTestTrace(t, "gcc", 64, 600, 29)
	var static []fault.StuckCell
	for addr := uint64(0); addr < 4; addr++ {
		for c := 0; c < 3; c++ { // three worst-case cells: beyond a 1-way ECC
			static = append(static, fault.StuckCell{Addr: addr, Cell: 50 * (c + 1), State: 3})
		}
	}
	opts := DefaultOptions()
	opts.Faults = fault.Config{
		Enabled:            true,
		ECCBits:            2,
		SpareLines:         32,
		MaxRetiredFraction: 0.9,
		Static:             static,
	}
	s := New(opts, schemesForTest(t, "Baseline")...)
	if err := s.Run(src, 0); err != nil {
		t.Fatalf("run below threshold errored: %v", err)
	}
	f := s.Metrics()[0].Faults
	if f.RetiredLines == 0 {
		t.Fatal("overloaded static lines never retired; threshold boundary untested")
	}
	if frac := f.RetiredFraction(); frac > 0.9 {
		t.Fatalf("retired fraction %v above configured threshold yet no error", frac)
	}
}

// cancelAfterSource cancels a context after serving n requests, then
// keeps serving — modeling an external cancellation racing a long
// replay.
type cancelAfterSource struct {
	src    trace.Source
	n      int
	served int
	cancel context.CancelFunc
}

func (c *cancelAfterSource) Next() (trace.Request, bool) {
	if c.served == c.n {
		c.cancel()
	}
	c.served++
	return c.src.Next()
}

// TestEngineRunContextCancel is the cooperative-cancellation contract:
// a canceled context stops dispatch, drains the workers cleanly, and
// returns ctx.Err() with the merged metrics of the replayed prefix.
func TestEngineRunContextCancel(t *testing.T) {
	const total = 20000
	src := fixedTrace(t, "gcc", 256, total, 13)
	for _, ingest := range []int{-1, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		opts := DefaultOptions()
		opts.Workers = 4
		opts.IngestRouters = ingest
		e := NewEngine(opts, schemesForTest(t, "Baseline", "WLCRC-16")...)
		cs := &cancelAfterSource{src: src, n: 500, cancel: cancel}
		err := e.RunContext(ctx, cs, 0)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ingest=%d: err = %v, want context.Canceled", ingest, err)
		}
		ms := e.Metrics()
		for _, m := range ms {
			if m.Writes == 0 || m.Writes >= total {
				t.Errorf("ingest=%d: %s replayed %d writes after cancel, want a non-empty strict prefix",
					ingest, m.Scheme, m.Writes)
			}
			if m.Writes != ms[0].Writes {
				t.Errorf("ingest=%d: schemes drained unevenly: %d vs %d writes",
					ingest, m.Writes, ms[0].Writes)
			}
		}
		src.Rewind()
	}

	// A context canceled up front never dispatches at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewEngine(DefaultOptions(), schemesForTest(t, "Baseline")...)
	if err := e.RunContext(ctx, src, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled err = %v", err)
	}
	if w := e.Metrics()[0].Writes; w != 0 {
		t.Errorf("pre-canceled context still replayed %d writes", w)
	}
}

// TestSimulatorRunContextCancel mirrors the contract on the serial
// frontend.
func TestSimulatorRunContextCancel(t *testing.T) {
	src := fixedTrace(t, "mcf", 64, 2000, 7)
	ctx, cancel := context.WithCancel(context.Background())
	s := New(DefaultOptions(), schemesForTest(t, "Baseline")...)
	cs := &cancelAfterSource{src: src, n: 100, cancel: cancel}
	err := s.RunContext(ctx, cs, 0)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if w := s.Metrics()[0].Writes; w == 0 || w > 110 {
		t.Errorf("canceled at request 100 but replayed %d writes", w)
	}
}

// TestVnRIterationCapFeedsFaultPipeline covers the restore-loop cap
// path: with the cap forced to one iteration on a disturbance-prone
// profile, residual errors survive VnR, and with the fault model on
// they freeze as injected stuck-at cells.
func TestVnRIterationCapFeedsFaultPipeline(t *testing.T) {
	opts := DefaultOptions()
	opts.InjectFaults = true
	opts.Seed = 11
	opts.MaxVnRIterations = 1
	opts.Faults = fault.Config{Enabled: true, ECCBits: 8, MaxRetiredFraction: 1}
	opts.FailFast = false
	s := New(opts, schemesForTest(t, "Baseline")...)
	src, _ := faultTestTrace(t, "lesl", 128, 2000, 9)
	err := s.Run(src, 0)
	var de *DegradedError
	if err != nil && !errors.As(err, &de) {
		t.Fatal(err)
	}
	m := s.Metrics()[0]
	if m.VnR.MaxIterations != 1 {
		t.Errorf("MaxIterations = %d, want the forced cap 1", m.VnR.MaxIterations)
	}
	if m.VnR.Residual == 0 {
		t.Fatal("iteration cap never left residual errors; cap path untested")
	}
	if m.Faults.InjectedStuck == 0 {
		t.Errorf("residuals did not feed the fault pipeline: %+v", m.Faults)
	}
	if m.Faults.InjectedStuck > m.VnR.Residual {
		t.Errorf("injected %d stuck cells from %d residuals", m.Faults.InjectedStuck, m.VnR.Residual)
	}
}

// TestVnRIterationCapWithoutFaultModel pins the pre-existing behavior:
// residuals are counted but nothing is injected when the fault model is
// off.
func TestVnRIterationCapWithoutFaultModel(t *testing.T) {
	opts := DefaultOptions()
	opts.InjectFaults = true
	opts.Seed = 11
	opts.MaxVnRIterations = 1
	s := New(opts, schemesForTest(t, "Baseline")...)
	src, _ := faultTestTrace(t, "lesl", 128, 2000, 9)
	if err := s.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()[0]
	if m.VnR.Residual == 0 {
		t.Fatal("no residuals at cap 1")
	}
	if m.Faults.InjectedStuck != 0 || m.Faults.StuckCells != 0 {
		t.Errorf("fault stats touched with the model off: %+v", m.Faults)
	}
}
