package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"wlcrc/internal/core"
	"wlcrc/internal/memsys"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

// engineBatch is the number of requests the dispatcher groups per
// broadcast. Large enough to amortize channel traffic, small enough to
// keep every worker busy on short traces.
const engineBatch = 512

// Engine is the concurrent sharded replay pipeline. It maintains one
// shard per (scheme, bank) pair — the bank comes from the configured
// memsys geometry, exactly the interleaving the Table II memory
// controller uses — and fans each trace batch out to a pool of workers.
// Every shard is owned by exactly one worker, so no locks guard
// simulation state, and a shard sees its requests in trace order (the
// dispatcher emits batches in order and a worker drains its channel in
// FIFO order).
//
// Determinism: results never depend on Options.Workers. Each shard
// accumulates its metrics sequentially in trace order regardless of
// which worker owns it, each shard's PRNG substream is seeded only from
// (Options.Seed, scheme, bank), and Metrics folds the per-bank shards in
// fixed bank order. Workers = 1 is therefore the serial mode of the same
// engine, and a parallel run is bit-identical to it — floats included.
//
// An Engine is not safe for concurrent use: Run, Metrics and the Reset
// methods must not be called concurrently with each other.
type Engine struct {
	opts    Options
	schemes []core.Scheme
	geo     memsys.Config
	banks   int
	workers int
	// shards[i*banks+b] is scheme i's view of bank b.
	shards []*shard
}

// NewEngine builds a sharded engine for the given schemes. Worker count
// and bank geometry come from opts (zero values mean all CPUs and the
// Table II geometry).
func NewEngine(opts Options, schemes ...core.Scheme) *Engine {
	if opts.MaxVnRIterations == 0 {
		opts.MaxVnRIterations = 16
	}
	geo := opts.Geometry
	if geo.Banks() <= 0 {
		geo = memsys.TableII()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		opts:    opts,
		schemes: schemes,
		geo:     geo,
		banks:   geo.Banks(),
		workers: workers,
	}
	e.shards = make([]*shard, len(schemes)*e.banks)
	sampled := opts.SampleDisturb || opts.InjectFaults
	for i, sch := range schemes {
		for b := 0; b < e.banks; b++ {
			var rnd *prng.Xoshiro256
			if sampled {
				rnd = prng.New(shardSeed(opts.Seed, i, b))
			}
			e.shards[i*e.banks+b] = newShard(&e.opts, sch, rnd)
		}
	}
	return e
}

// shardSeed derives the PRNG seed of shard (scheme, bank) from the run
// seed. The substreams must be decorrelated (adjacent integer seeds feed
// SplitMix64, whose output is well-mixed) and must depend only on the
// run seed and the shard coordinates — never on scheduling.
func shardSeed(seed uint64, scheme, bank int) uint64 {
	sm := prng.NewSplitMix64(seed ^ (0x9e3779b97f4a7c15 * (uint64(scheme)<<20 + uint64(bank) + 1)))
	return sm.Uint64()
}

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.workers }

// Banks returns the number of address shards per scheme.
func (e *Engine) Banks() int { return e.banks }

// batch is one dispatched group of requests. base is the global sequence
// number of reqs[0]; workers use it to order verification failures. The
// slice is shared read-only by every worker.
type batch struct {
	base uint64
	reqs []trace.Request
}

// Run drains a source through the engine, stopping after max requests
// when max > 0. The source is read sequentially on the calling
// goroutine; requests fan out to the workers in batches.
//
// On a verification failure the engine stops dispatching, lets in-flight
// batches finish, and returns the error of the earliest failing request
// in trace order — deterministic even though the failure is detected
// concurrently (every dispatched batch is fully drained, and the batch
// holding the globally-first failure is always dispatched before any
// stop it can trigger). A shard that erred freezes, so its own metrics
// cover exactly its prefix up to the failure; metrics of other shards
// cover an unspecified prefix of the tail, since how many batches were
// dispatched before the stop depends on timing. Metrics of error-free
// runs are always exact and worker-count independent.
func (e *Engine) Run(src trace.Source, max int) error {
	chans := make([]chan batch, e.workers)
	for i := range chans {
		chans[i] = make(chan batch, 2)
	}
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := range chans[w] {
				e.applyBatch(w, b, &failed)
			}
		}(w)
	}

	dispatch := func(b batch) {
		for _, c := range chans {
			c <- b
		}
	}
	var seq uint64
	n := 0
	reqs := make([]trace.Request, 0, engineBatch)
	for !failed.Load() {
		if max > 0 && n >= max {
			break
		}
		req, ok := src.Next()
		if !ok {
			break
		}
		reqs = append(reqs, req)
		seq++
		n++
		if len(reqs) == engineBatch {
			dispatch(batch{base: seq - uint64(len(reqs)), reqs: reqs})
			reqs = make([]trace.Request, 0, engineBatch)
		}
	}
	// A pending partial batch is dropped on failure: the earliest error
	// is in an already-dispatched batch (its detection is why we are
	// stopping), and every undispatched request has a higher sequence
	// number, so the reported error cannot change.
	if len(reqs) > 0 && !failed.Load() {
		dispatch(batch{base: seq - uint64(len(reqs)), reqs: reqs})
	}
	for _, c := range chans {
		close(c)
	}
	wg.Wait()
	return e.firstError()
}

// applyBatch replays the requests of one batch through every shard owned
// by worker w. Ownership is static — shard u belongs to worker u mod
// workers — so each shard is only ever touched by one goroutine.
func (e *Engine) applyBatch(w int, b batch, failed *atomic.Bool) {
	for j := range b.reqs {
		req := &b.reqs[j]
		bank := e.geo.BankOf(req.Addr)
		for i := range e.schemes {
			unit := i*e.banks + bank
			if unit%e.workers != w {
				continue
			}
			u := e.shards[unit]
			if u.err != nil {
				continue // frozen after its first failure
			}
			if err := u.apply(req); err != nil {
				u.err = err
				u.errSeq = b.base + uint64(j)
				failed.Store(true)
			}
		}
	}
}

// firstError returns the recorded error with the lowest sequence number
// (ties broken by shard index), or nil.
func (e *Engine) firstError() error {
	var err error
	var errSeq uint64
	for _, u := range e.shards {
		if u.err != nil && (err == nil || u.errSeq < errSeq) {
			err, errSeq = u.err, u.errSeq
		}
	}
	return err
}

// Metrics merges the per-bank shards of every scheme, in fixed bank
// order, and returns the per-scheme metrics index-aligned with the
// schemes passed to NewEngine.
func (e *Engine) Metrics() []Metrics {
	out := make([]Metrics, len(e.schemes))
	for i, sch := range e.schemes {
		m := Metrics{Scheme: sch.Name()}
		for b := 0; b < e.banks; b++ {
			m.Merge(e.shards[i*e.banks+b].m)
		}
		out[i] = m
	}
	return out
}

// MetricsFor returns the merged metrics of the named scheme.
func (e *Engine) MetricsFor(name string) (Metrics, bool) {
	for i, sch := range e.schemes {
		if sch.Name() == name {
			return e.Metrics()[i], true
		}
	}
	return Metrics{}, false
}

// ResetMetrics clears the accumulated metrics but keeps every shard's
// memory state — used after a warm-up phase so reported numbers reflect
// steady-state behavior rather than cold first writes.
func (e *Engine) ResetMetrics() {
	for _, u := range e.shards {
		u.resetMetrics()
	}
}

// Reset clears metrics and memory state (schemes and PRNG positions are
// kept; build a fresh Engine for an independent randomized run).
func (e *Engine) Reset() {
	for _, u := range e.shards {
		u.reset()
	}
}

// Replayer is the interface shared by Simulator and Engine: replay a
// write stream, then report per-scheme metrics. The compile-time
// asserts below keep the two frontends' surfaces in lockstep; callers
// that want to swap the serial reference for the parallel engine (or
// back) can program against it.
type Replayer interface {
	Run(src trace.Source, max int) error
	Metrics() []Metrics
	MetricsFor(name string) (Metrics, bool)
	ResetMetrics()
	Reset()
}

var (
	_ Replayer = (*Simulator)(nil)
	_ Replayer = (*Engine)(nil)
)
