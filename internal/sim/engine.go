package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wlcrc/internal/core"
	"wlcrc/internal/memsys"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

// engineBatch is the per-worker batch capacity: the number of routed
// requests the dispatcher accumulates for one worker before handing the
// batch over. Large enough to amortize channel traffic, small enough to
// bound how far a Snapshot can lag and to keep workers busy on short
// traces.
const engineBatch = 512

// progressStride is how many dispatched requests pass between clock
// checks for the Progress callback — the dispatch loop never reads the
// clock more than once per stride. Must be a power of two.
const progressStride = 1024

// Engine is the concurrent sharded replay pipeline. It maintains one
// shard per (scheme, bank) pair — the bank comes from the configured
// memsys geometry, exactly the interleaving the Table II memory
// controller uses — and streams the trace through per-worker queues.
//
// Dispatch is routed, not broadcast: every bank is owned by exactly one
// worker (bank mod workers, all schemes of the bank together), and the
// dispatcher appends each request only to its owner's pending batch. A
// request therefore crosses one channel once, so channel traffic is
// O(batches) instead of the previous O(workers x batches), and a worker
// only ever sees requests it will actually apply. Batch buffers recycle
// through a sync.Pool: workers return drained buffers, the dispatcher
// reuses them, and an arbitrarily long streamed trace runs with zero
// steady-state dispatcher allocations.
//
// Determinism: results never depend on Options.Workers. Bank ownership
// is static, so every shard sees its bank's requests in trace order (the
// dispatcher reads the source sequentially and a worker drains its
// queue FIFO); each shard's PRNG substream is seeded only from
// (Options.Seed, scheme, bank); and Metrics folds the per-bank shards in
// fixed bank order. Workers = 1 is therefore the serial mode of the same
// engine, and a parallel run is bit-identical to it — floats included.
//
// Observability: Snapshot may be called from any goroutine while Run is
// executing — workers publish a copy of each shard's metrics after every
// batch, so a snapshot lags a shard by at most one in-flight batch — and
// Options.Progress delivers live dispatcher throughput. Run, Metrics and
// the Reset methods themselves must still not be called concurrently
// with each other.
type Engine struct {
	opts    Options
	schemes []core.Scheme
	geo     memsys.Config
	banks   int
	workers int
	// shards[i*banks+b] is scheme i's view of bank b.
	shards []*shard
	// bufPool recycles batch buffers across batches and across Run
	// calls (warm-up then measure reuses the same pool).
	bufPool sync.Pool
}

// NewEngine builds a sharded engine for the given schemes. Worker count
// and bank geometry come from opts (zero values mean all CPUs and the
// Table II geometry; worker counts above the bank count are capped at
// it, since a bank is the unit of routing).
func NewEngine(opts Options, schemes ...core.Scheme) *Engine {
	if opts.MaxVnRIterations == 0 {
		opts.MaxVnRIterations = 16
	}
	geo := opts.Geometry
	if geo.Banks() <= 0 {
		geo = memsys.TableII()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > geo.Banks() {
		workers = geo.Banks()
	}
	e := &Engine{
		opts:    opts,
		schemes: schemes,
		geo:     geo,
		banks:   geo.Banks(),
		workers: workers,
	}
	e.bufPool.New = func() any {
		s := make([]routedReq, 0, engineBatch)
		return &s
	}
	e.shards = make([]*shard, len(schemes)*e.banks)
	sampled := opts.SampleDisturb || opts.InjectFaults
	for i, sch := range schemes {
		for b := 0; b < e.banks; b++ {
			var rnd *prng.Xoshiro256
			if sampled {
				rnd = prng.New(shardSeed(opts.Seed, i, b))
			}
			e.shards[i*e.banks+b] = newShard(&e.opts, sch, rnd)
		}
	}
	return e
}

// shardSeed derives the PRNG seed of shard (scheme, bank) from the run
// seed. The substreams must be decorrelated (adjacent integer seeds feed
// SplitMix64, whose output is well-mixed) and must depend only on the
// run seed and the shard coordinates — never on scheduling.
func shardSeed(seed uint64, scheme, bank int) uint64 {
	sm := prng.NewSplitMix64(seed ^ (0x9e3779b97f4a7c15 * (uint64(scheme)<<20 + uint64(bank) + 1)))
	return sm.Uint64()
}

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.workers }

// Banks returns the number of address shards per scheme.
func (e *Engine) Banks() int { return e.banks }

// routedReq is one request annotated with its global trace sequence
// number (for deterministic error ordering) and its resolved bank (so
// workers do not recompute the routing function).
type routedReq struct {
	seq  uint64
	bank int32
	req  trace.Request
}

// batch is one dispatched group of requests for a single worker. The
// buffer is owned by the receiving worker until it returns it to the
// engine's pool.
type batch struct {
	reqs *[]routedReq
}

// Run drains a source through the engine, stopping after max requests
// when max > 0. The source is read sequentially on the calling
// goroutine; each request is routed to the single worker owning its
// bank and travels in pooled batch buffers.
//
// On a verification failure the engine stops reading the source,
// flushes every pending batch (so all requests read before the stop are
// applied), lets workers drain, and returns the error of the earliest
// failing request in trace order — deterministic even though the
// failure is detected concurrently: the globally-first failing request
// was necessarily read before any failure that could trigger a stop,
// so it is always dispatched and applied. A shard that erred freezes,
// so its own metrics cover exactly its prefix up to the failure;
// metrics of other shards cover an unspecified prefix of the tail,
// since how many requests were read before the stop depends on timing.
// Metrics of error-free runs are always exact and worker-count
// independent.
func (e *Engine) Run(src trace.Source, max int) error {
	chans := make([]chan batch, e.workers)
	for i := range chans {
		chans[i] = make(chan batch, 8)
	}
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := range chans[w] {
				e.applyBatch(b, &failed)
				*b.reqs = (*b.reqs)[:0]
				e.bufPool.Put(b.reqs)
				e.publishOwned(w)
			}
			e.publishOwned(w)
		}(w)
	}

	var (
		start    = time.Now()
		lastTick = start
		interval = e.opts.ProgressInterval
		queue    []int
	)
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}

	pending := make([]*[]routedReq, e.workers)
	var seq uint64
	n := 0
	for !failed.Load() {
		if max > 0 && n >= max {
			break
		}
		req, ok := src.Next()
		if !ok {
			break
		}
		bank := e.geo.BankOf(req.Addr)
		w := bank % e.workers
		p := pending[w]
		if p == nil {
			p = e.bufPool.Get().(*[]routedReq)
			pending[w] = p
		}
		*p = append(*p, routedReq{seq: seq, bank: int32(bank), req: req})
		seq++
		n++
		if len(*p) == engineBatch {
			chans[w] <- batch{reqs: p}
			pending[w] = nil
		}
		if e.opts.Progress != nil && seq&(progressStride-1) == 0 {
			if now := time.Now(); now.Sub(lastTick) >= interval {
				lastTick = now
				if queue == nil {
					queue = make([]int, e.workers)
				}
				for i, c := range chans {
					queue[i] = len(c)
				}
				e.opts.Progress(Progress{
					Dispatched: seq,
					Elapsed:    now.Sub(start),
					QueueDepth: queue,
				})
			}
		}
	}
	// Flush every pending batch — even when stopping on a failure.
	// Determinism of the reported error depends on it: the earliest
	// failing request overall was read before the (later) failure whose
	// detection triggered the stop, so it sits in an already-dispatched
	// batch or in one of these pending buffers, and flushing guarantees
	// it is applied and recorded.
	for w, p := range pending {
		if p != nil && len(*p) > 0 {
			chans[w] <- batch{reqs: p}
			pending[w] = nil
		}
	}
	for _, c := range chans {
		close(c)
	}
	wg.Wait()
	if e.opts.Progress != nil {
		if queue == nil {
			queue = make([]int, e.workers)
		}
		for i := range queue {
			queue[i] = 0
		}
		e.opts.Progress(Progress{
			Dispatched: seq,
			Elapsed:    time.Since(start),
			QueueDepth: queue,
			Done:       true,
		})
	}
	return e.firstError()
}

// applyBatch replays one routed batch. Every request in the batch maps
// to a bank owned by the receiving worker, and all schemes' shards of a
// bank share that owner, so no other goroutine ever touches the shards
// referenced here.
func (e *Engine) applyBatch(b batch, failed *atomic.Bool) {
	rs := *b.reqs
	for j := range rs {
		rr := &rs[j]
		bank := int(rr.bank)
		for i := range e.schemes {
			u := e.shards[i*e.banks+bank]
			if u.err != nil {
				continue // frozen after its first failure
			}
			if err := u.apply(&rr.req); err != nil {
				u.err = err
				u.errSeq = rr.seq
				failed.Store(true)
			}
		}
	}
}

// publishOwned refreshes the snapshot copies of every shard worker w
// owns (cheap for shards without new writes).
func (e *Engine) publishOwned(w int) {
	for b := w; b < e.banks; b += e.workers {
		for i := range e.schemes {
			e.shards[i*e.banks+b].publishIfDirty()
		}
	}
}

// firstError returns the recorded error with the lowest sequence number
// (ties broken by shard index), or nil.
func (e *Engine) firstError() error {
	var err error
	var errSeq uint64
	for _, u := range e.shards {
		if u.err != nil && (err == nil || u.errSeq < errSeq) {
			err, errSeq = u.err, u.errSeq
		}
	}
	return err
}

// Metrics merges the per-bank shards of every scheme, in fixed bank
// order, and returns the per-scheme metrics index-aligned with the
// schemes passed to NewEngine. It reads the live accumulators and must
// not be called concurrently with Run — use Snapshot for that.
func (e *Engine) Metrics() []Metrics {
	out := make([]Metrics, len(e.schemes))
	for i, sch := range e.schemes {
		m := newMetrics(sch.Name())
		for b := 0; b < e.banks; b++ {
			m.Merge(e.shards[i*e.banks+b].metricsView())
		}
		out[i] = m
	}
	return out
}

// Snapshot merges the per-shard published metric copies, in the same
// fixed bank order as Metrics, and is safe to call from any goroutine
// while Run is executing. Workers publish after every batch, so a
// snapshot lags each shard by at most one in-flight batch; once Run has
// returned, Snapshot and Metrics agree exactly. Counters within one
// scheme are mutually consistent per shard (each publish is an atomic
// copy under the shard's lock), and Writes per scheme is monotonically
// non-decreasing across snapshots.
func (e *Engine) Snapshot() []Metrics {
	out := make([]Metrics, len(e.schemes))
	for i, sch := range e.schemes {
		m := newMetrics(sch.Name())
		for b := 0; b < e.banks; b++ {
			m.Merge(e.shards[i*e.banks+b].snapshot())
		}
		out[i] = m
	}
	return out
}

// MetricsFor returns the merged metrics of the named scheme.
func (e *Engine) MetricsFor(name string) (Metrics, bool) {
	for i, sch := range e.schemes {
		if sch.Name() == name {
			return e.Metrics()[i], true
		}
	}
	return Metrics{}, false
}

// ResetMetrics clears the accumulated metrics (wear counts included;
// the tracked footprint stays) but keeps every shard's memory state —
// used after a warm-up phase so reported numbers reflect steady-state
// behavior rather than cold first writes.
func (e *Engine) ResetMetrics() {
	for _, u := range e.shards {
		u.resetMetrics()
	}
}

// Reset clears metrics and memory state (schemes and PRNG positions are
// kept; build a fresh Engine for an independent randomized run).
func (e *Engine) Reset() {
	for _, u := range e.shards {
		u.reset()
	}
}

// Replayer is the interface shared by Simulator and Engine: replay a
// write stream, then report per-scheme metrics. The compile-time
// asserts below keep the two frontends' surfaces in lockstep; callers
// that want to swap the serial reference for the parallel engine (or
// back) can program against it.
type Replayer interface {
	Run(src trace.Source, max int) error
	Metrics() []Metrics
	Snapshot() []Metrics
	MetricsFor(name string) (Metrics, bool)
	ResetMetrics()
	Reset()
}

var (
	_ Replayer = (*Simulator)(nil)
	_ Replayer = (*Engine)(nil)
)
