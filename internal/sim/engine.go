package sim

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wlcrc/internal/core"
	"wlcrc/internal/fault"
	"wlcrc/internal/memsys"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

// unitBatch is the per-routing-unit batch capacity: the number of
// requests the dispatcher accumulates for one (bank, sub-shard) unit
// before handing the batch to the unit's owner. Large enough to
// amortize channel traffic and to give the shard batch-encode path
// multi-line runs, small enough to bound how far a Snapshot can lag and
// to keep workers busy on short traces.
const unitBatch = 128

// unitChanCap is each worker's batch-queue capacity. With per-unit
// batches a worker multiplexes many units over one channel, so the
// queue holds more, smaller batches than the old per-worker batching.
const unitChanCap = 16

// progressStride is how many dispatched requests pass between clock
// checks for the Progress callback — the dispatch loop never reads the
// clock more than once per stride. Must be a power of two.
const progressStride = 1024

// Engine is the concurrent sharded replay pipeline. It maintains one
// shard per (scheme, bank, sub-shard) triple — the bank comes from the
// configured memsys geometry, exactly the interleaving the Table II
// memory controller uses, and each bank is further split into
// address-interleaved sub-shards (memsys.Config.SubShards) so the
// worker count is not capped at the bank count — and streams the trace
// through per-worker queues.
//
// Dispatch is routed, not broadcast: every routing unit (bank,
// sub-shard) is owned by exactly one worker (unit mod workers, all
// schemes of the unit together), and the dispatcher appends each
// request only to its unit's pending batch. A request therefore crosses
// one channel once, so channel traffic is O(batches), and a worker only
// ever sees requests it will actually apply. Hand-off is double-
// buffered and pipelined: when a batch fills, the dispatcher first
// tries a non-blocking send and otherwise parks the batch in the unit's
// ready slot and keeps routing into a fresh buffer — it only blocks
// when a unit has both a parked and a newly-filled batch waiting, so a
// momentarily busy worker does not stall the routing of everyone
// else's requests. Batch buffers recycle through a free list: workers
// return drained buffers, the dispatcher reuses them, and an
// arbitrarily long streamed trace runs with zero steady-state
// dispatcher allocations.
//
// When Options.IngestRouters resolves above zero, reading and routing
// move off the Run goroutine entirely: the ingest stage (ingest.go)
// pulls sequence-stamped chunks from the source, pre-routes them into
// per-unit sub-batches on K router goroutines, and Run reassembles the
// chunks in order into the same pending/ready buffers — identical
// hand-off order, so identical results, with the front-end off the
// critical path.
//
// Workers drain their queue one unit-batch at a time and replay it
// scheme-major through the shard batch-encode path (shard.applyRun):
// all of one scheme's state — SWAR cost tables, coset selectors, the
// shard's line map — stays hot across the whole batch instead of being
// evicted by the next scheme's on every request.
//
// Determinism: results never depend on Options.Workers. Unit ownership
// is static and sub-shard assignment depends only on the address, so
// every shard sees its lines' requests in trace order (the dispatcher
// reads the source sequentially, batches of one unit traverse one
// channel in fill order, and a worker drains its queue FIFO); each
// shard's PRNG substream is seeded only from (Options.Seed, scheme,
// unit); and Metrics folds the shards in fixed (scheme, bank,
// sub-shard) order. Workers = 1 is therefore the serial mode of the
// same engine, and a parallel run is bit-identical to it — floats
// included.
//
// Observability: Snapshot may be called from any goroutine while Run is
// executing — workers publish a copy of each shard's metrics after every
// batch, so a snapshot lags a shard by at most one in-flight batch — and
// Options.Progress delivers live dispatcher throughput. Run, Metrics and
// the Reset methods themselves must still not be called concurrently
// with each other.
type Engine struct {
	opts      Options
	schemes   []core.Scheme
	geo       memsys.Config
	banks     int
	subShards int
	units     int // banks * subShards
	workers   int
	// shards[i*units+u] is scheme i's view of routing unit u; unit
	// u = bank*subShards + subShard.
	shards []*shard
	// workerReqs[w] counts the requests worker w applied during the last
	// Run — each worker owns its slot, and post-Run readers see the
	// final values after the worker WaitGroup settles. It backs the
	// engaged-worker reporting (and the regression test that uncapped
	// worker counts actually spread work past the bank count).
	workerReqs []uint64
	// freeBufs recycles batch buffers across batches and across Run
	// calls (warm-up then measure reuses the same buffers). A buffered
	// channel instead of a sync.Pool: the pool sheds items under GC
	// pressure (and randomly under the race detector), while the
	// channel's capacity covers every buffer that can be in flight at
	// once, so steady state is allocation-free unconditionally.
	freeBufs chan *[]routedReq
	// ingest is the resolved ingest-router count (0 = classic in-line
	// dispatch). freeChunks recycles ingest chunks the way freeBufs
	// recycles batch buffers, and doubles as the in-flight bound: a
	// router blocks for a free chunk before reading, so at most
	// cap(freeChunks) chunk sequences are ever outstanding — which is
	// what lets the reassembly ring index by seq modulo that capacity.
	ingest     int
	freeChunks chan *ingestChunk
}

// NewEngine builds a sharded engine for the given schemes. Worker count
// and bank/sub-shard geometry come from opts (zero values mean all CPUs
// and the Table II geometry with its default sub-shard split). The
// worker count is capped only at the total routing-unit count —
// banks x sub-shards, 256 under Table II — not at the bank count; the
// resolved value is reported by Workers and in every Progress callback.
func NewEngine(opts Options, schemes ...core.Scheme) *Engine {
	if opts.MaxVnRIterations == 0 {
		opts.MaxVnRIterations = 16
	}
	geo := opts.Geometry
	if geo.Banks() <= 0 {
		geo = memsys.TableII()
	}
	units := geo.RouteUnits()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > units {
		workers = units
	}
	e := &Engine{
		opts:       opts,
		schemes:    schemes,
		geo:        geo,
		banks:      geo.Banks(),
		subShards:  geo.SubShardsPerBank(),
		units:      units,
		workers:    workers,
		workerReqs: make([]uint64, workers),
	}
	// Worst-case buffers in flight: one pending + one parked per unit,
	// plus each worker's full queue and the batch it is draining.
	e.freeBufs = make(chan *[]routedReq, 2*units+workers*(unitChanCap+1))
	e.ingest = resolveIngestRouters(opts.IngestRouters, runtime.GOMAXPROCS(0))
	if e.ingest > 0 {
		// Enough chunks that every router holds one, the routed channel
		// can buffer one per router, and the reassembly keeps a couple in
		// hand — prefilled so steady state never allocates a chunk.
		e.freeChunks = make(chan *ingestChunk, 2*e.ingest+2)
		for i := 0; i < cap(e.freeChunks); i++ {
			e.freeChunks <- newIngestChunk()
		}
	}
	e.shards = make([]*shard, len(schemes)*units)
	sampled := opts.SampleDisturb || opts.InjectFaults
	var ecc *fault.ECC
	var fcfg fault.Config
	if opts.Faults.Enabled {
		fcfg = opts.Faults.WithDefaults()
		ecc = fault.NewECC(fcfg.ECCBits)
	}
	for i, sch := range schemes {
		for u := 0; u < units; u++ {
			var rnd *prng.Xoshiro256
			var fm *fault.Map
			if sampled || opts.Faults.Enabled {
				r := prng.New(shardSeed(opts.Seed, i, u))
				if opts.Faults.Enabled {
					// The fault map's threshold seed is the first draw of
					// the shard's PRNG substream; static defects route to
					// the unit that owns their address. The substream is
					// handed to the shard only when disturbance sampling
					// asked for it, so fault-only runs keep deterministic
					// expected-value disturb accounting.
					fm = fault.NewMap(fcfg, r.Uint64(), sch.TotalCells(), ecc)
					for _, sc := range fcfg.Static {
						if e.routeOf(sc.Addr) == u {
							fm.SeedStatic(sc)
						}
					}
				}
				if sampled {
					rnd = r
				}
			}
			e.shards[i*units+u] = newShard(&e.opts, sch, rnd, fm)
		}
	}
	return e
}

// shardSeed derives the PRNG seed of shard (scheme, unit) from the run
// seed. The substreams must be decorrelated (adjacent integer seeds feed
// SplitMix64, whose output is well-mixed) and must depend only on the
// run seed and the shard coordinates — never on scheduling.
func shardSeed(seed uint64, scheme, unit int) uint64 {
	sm := prng.NewSplitMix64(seed ^ (0x9e3779b97f4a7c15 * (uint64(scheme)<<20 + uint64(unit) + 1)))
	return sm.Uint64()
}

// Workers returns the resolved worker count: Options.Workers clamped to
// [1, Units()], with 0 resolved to the CPU count.
func (e *Engine) Workers() int { return e.workers }

// Banks returns the number of banks the address space is sharded over.
func (e *Engine) Banks() int { return e.banks }

// SubShards returns the number of address-interleaved sub-shards per
// bank.
func (e *Engine) SubShards() int { return e.subShards }

// Units returns the total routing-unit count (banks x sub-shards), the
// upper bound on useful worker counts.
func (e *Engine) Units() int { return e.units }

// IngestRouters returns the resolved ingest-router count: 0 means Run
// reads and routes the source in-line on its own goroutine (the classic
// dispatcher), N > 0 means N parallel pre-routing goroutines feed it
// (Options.IngestRouters documents the resolution rule). Like Workers,
// the value never affects results, only wall-clock time.
func (e *Engine) IngestRouters() int { return e.ingest }

// routeOf maps an address to its routing unit. It must agree with the
// geometry's memsys.Config.RouteOf — the engine keeps the resolved
// counts as plain ints so the dispatch loop's hottest instruction
// sequence stays two integer divisions (FuzzRouteSubShard asserts the
// agreement).
func (e *Engine) routeOf(addr uint64) int {
	banks := uint64(e.banks)
	k := uint64(e.subShards)
	return int((addr%banks)*k + (addr/banks)%k)
}

// routedReq is one request annotated with its global trace sequence
// number (for deterministic error ordering).
type routedReq struct {
	seq uint64
	req trace.Request
}

// batch is one dispatched group of requests for a single routing unit.
// The buffer is owned by the receiving worker until it returns it to
// the engine's pool.
type batch struct {
	unit int32
	reqs *[]routedReq
}

// Run drains a source through the engine, stopping after max requests
// when max > 0. With ingest disabled the source is read sequentially on
// the calling goroutine; with ingest routers the source is read in
// chunks (batched through trace.Batched when it is not already a
// trace.BatchSource), pre-routed in parallel, and reassembled in
// sequence here — either way each request is routed to the single
// worker owning its (bank, sub-shard) unit, travels in pooled batch
// buffers, and the results are bit-identical.
//
// On a verification failure the engine stops reading the source,
// flushes every pending batch (so all requests read before the stop are
// applied), lets workers drain, and returns the error of the earliest
// failing request in trace order — deterministic even though the
// failure is detected concurrently: the globally-first failing request
// was necessarily read before any failure that could trigger a stop,
// so it is always dispatched and applied. A shard that erred freezes,
// so its own metrics cover exactly its prefix up to the failure;
// metrics of other shards cover an unspecified prefix of the tail,
// since how many requests were read before the stop depends on timing.
// Metrics of error-free runs are always exact and worker-count
// independent.
func (e *Engine) Run(src trace.Source, max int) error {
	return e.RunContext(context.Background(), src, max)
}

// RunContext is Run with cooperative cancellation. The dispatch loop
// (serial or ingest) checks ctx between requests: on cancellation it
// stops reading the source, the already-dispatched batches drain
// through the workers normally (the queues are bounded, so the drain is
// prompt), and RunContext returns ctx.Err() — the merged metrics then
// cover exactly the requests read before the stop, applied to every
// scheme alike. A background context costs one nil check per request.
func (e *Engine) RunContext(ctx context.Context, src trace.Source, max int) error {
	e.reserveLines(src, max)
	done := ctx.Done()
	chans := make([]chan batch, e.workers)
	for i := range chans {
		chans[i] = make(chan batch, unitChanCap)
	}
	for w := range e.workerReqs {
		e.workerReqs[w] = 0
	}
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := range chans[w] {
				e.workerReqs[w] += uint64(len(*b.reqs))
				e.applyUnitBatch(b, &failed)
				*b.reqs = (*b.reqs)[:0]
				e.putBuf(b.reqs)
				e.publishUnit(int(b.unit))
			}
		}(w)
	}

	var (
		start = time.Now()
		queue []int
	)

	// pending[u] is unit u's filling buffer; ready[u] is a filled batch
	// parked when the owner's queue was momentarily full (the second
	// half of the double buffer). Per unit, ready is always older than
	// pending, and both drain before anything newer — FIFO per unit is
	// what per-shard trace order rests on.
	pending := make([]*[]routedReq, e.units)
	ready := make([]*[]routedReq, e.units)
	var seq uint64
	if e.ingest > 0 {
		seq = e.dispatchIngest(trace.Batched(src), max, chans, pending, ready, &failed, done, start)
	} else {
		seq = e.dispatchSerial(src, max, chans, pending, ready, &failed, done, start)
	}
	// Flush every parked and pending batch — even when stopping on a
	// failure. Determinism of the reported error depends on it: the
	// earliest failing request overall was read before the (later)
	// failure whose detection triggered the stop, so it sits in an
	// already-dispatched batch or in one of these buffers, and flushing
	// guarantees it is applied and recorded.
	for u := 0; u < e.units; u++ {
		w := u % e.workers
		if r := ready[u]; r != nil {
			chans[w] <- batch{unit: int32(u), reqs: r}
			ready[u] = nil
		}
		if p := pending[u]; p != nil && len(*p) > 0 {
			chans[w] <- batch{unit: int32(u), reqs: p}
			pending[u] = nil
		}
	}
	for _, c := range chans {
		close(c)
	}
	wg.Wait()
	if e.opts.Progress != nil {
		if queue == nil {
			queue = make([]int, e.workers)
		}
		for i := range queue {
			queue[i] = 0
		}
		e.opts.Progress(Progress{
			Dispatched: seq,
			Elapsed:    time.Since(start),
			Workers:    e.workers,
			QueueDepth: queue,
			Done:       true,
		})
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := e.firstError(); err != nil {
		return err
	}
	return degradedError(e.Metrics(), e.opts.Faults)
}

// reserveLineCap bounds the per-shard arena preallocation a Count()
// hint can request. The request count only upper-bounds the distinct
// lines (most traces rewrite heavily), so the hint is treated as a
// growth-churn saver, not a sizing guarantee — past the cap, the
// arena's amortized doubling takes over.
const reserveLineCap = 4096

// reserveLines sizes every shard's arena from the source's request
// count when it advertises one (mmap-backed and pre-parsed sources
// implement Count). Shards partition the address space, so each gets
// the per-unit share.
func (e *Engine) reserveLines(src trace.Source, max int) {
	c, ok := src.(interface{ Count() uint64 })
	if !ok {
		return
	}
	n := c.Count()
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	hint := int(n/uint64(e.units)) + 1
	if hint > reserveLineCap {
		hint = reserveLineCap
	}
	for _, u := range e.shards {
		u.reserve(hint)
	}
}

// canceled reports whether done is closed without blocking; a nil done
// (context.Background) is never canceled.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// dispatchSerial is the classic in-line dispatch loop: read one request
// per Source.Next on this goroutine, route it, and hand off per-unit
// batches as they fill. It returns the number of requests dispatched.
// dispatchIngest (ingest.go) is the parallel front-end that replaces it
// when ingest routers are configured; the two must fill the per-unit
// pending buffers with identical content in identical order.
func (e *Engine) dispatchSerial(src trace.Source, max int, chans []chan batch,
	pending, ready []*[]routedReq, failed *atomic.Bool, done <-chan struct{}, start time.Time) uint64 {
	var (
		lastTick = start
		interval = e.opts.ProgressInterval
		queue    []int
	)
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	var seq uint64
	n := 0
	for !failed.Load() && !canceled(done) {
		if max > 0 && n >= max {
			break
		}
		req, ok := src.Next()
		if !ok {
			break
		}
		u := e.routeOf(req.Addr)
		p := pending[u]
		if p == nil {
			p = e.getBuf()
			pending[u] = p
		}
		*p = append(*p, routedReq{seq: seq, req: req})
		seq++
		n++
		if len(*p) == unitBatch {
			e.handOff(chans[u%e.workers], ready, u, p)
			pending[u] = nil
		}
		if e.opts.Progress != nil && seq&(progressStride-1) == 0 {
			if now := time.Now(); now.Sub(lastTick) >= interval {
				lastTick = now
				if queue == nil {
					queue = make([]int, e.workers)
				}
				for i, c := range chans {
					queue[i] = len(c)
				}
				e.opts.Progress(Progress{
					Dispatched: seq,
					Elapsed:    now.Sub(start),
					Workers:    e.workers,
					QueueDepth: queue,
				})
			}
		}
	}
	return seq
}

// getBuf pops a recycled batch buffer, allocating only while the
// free-list is still filling (cold start).
func (e *Engine) getBuf() *[]routedReq {
	select {
	case p := <-e.freeBufs:
		return p
	default:
		s := make([]routedReq, 0, unitBatch)
		return &s
	}
}

// putBuf returns a drained buffer to the free-list. The capacity covers
// every buffer that can exist at once, but a non-blocking send keeps the
// invariant local: worst case the buffer is dropped to the GC.
func (e *Engine) putBuf(p *[]routedReq) {
	select {
	case e.freeBufs <- p:
	default:
	}
}

// handOff pipelines a filled batch to unit u's owner: the unit's parked
// batch (older) goes first — blocking only if the owner is still
// backlogged — then the fresh batch is sent without blocking, or parked
// in the ready slot so the dispatcher can keep routing while the owner
// drains.
func (e *Engine) handOff(ch chan batch, ready []*[]routedReq, u int, p *[]routedReq) {
	if r := ready[u]; r != nil {
		ch <- batch{unit: int32(u), reqs: r}
		ready[u] = nil
	}
	select {
	case ch <- batch{unit: int32(u), reqs: p}:
	default:
		ready[u] = p
	}
}

// applyUnitBatch replays one routed unit-batch scheme-major: every
// request in the batch maps to the single (bank, sub-shard) unit owned
// by the receiving worker, and all schemes' shards of that unit share
// the owner, so no other goroutine ever touches the shards referenced
// here. Replaying the whole batch through one scheme before the next
// keeps that scheme's tables and line map hot, and hands the shard
// batch-encode path runs of multiple lines per scheme call.
func (e *Engine) applyUnitBatch(b batch, failed *atomic.Bool) {
	rs := *b.reqs
	unit := int(b.unit)
	for i := range e.schemes {
		u := e.shards[i*e.units+unit]
		if u.err != nil {
			continue // frozen after its first failure
		}
		if seq, err := u.applyRun(rs); err != nil {
			u.err = err
			u.errSeq = seq
			failed.Store(true)
		}
	}
}

// publishUnit refreshes the snapshot copies of every scheme's shard of
// one routing unit (cheap for shards without new writes). Each batch
// touches exactly one unit, so publishing per batch covers every
// mutation.
func (e *Engine) publishUnit(unit int) {
	for i := range e.schemes {
		e.shards[i*e.units+unit].publishIfDirty()
	}
}

// firstError returns the recorded error with the lowest sequence number
// (ties broken by shard index), or nil.
func (e *Engine) firstError() error {
	var err error
	var errSeq uint64
	for _, u := range e.shards {
		if u.err != nil && (err == nil || u.errSeq < errSeq) {
			err, errSeq = u.err, u.errSeq
		}
	}
	return err
}

// Metrics merges the shards of every scheme, in fixed (bank, sub-shard)
// order, and returns the per-scheme metrics index-aligned with the
// schemes passed to NewEngine. It reads the live accumulators and must
// not be called concurrently with Run — use Snapshot for that.
func (e *Engine) Metrics() []Metrics {
	out := make([]Metrics, len(e.schemes))
	for i, sch := range e.schemes {
		m := newMetrics(sch.Name())
		for u := 0; u < e.units; u++ {
			m.Merge(e.shards[i*e.units+u].metricsView())
		}
		out[i] = m
	}
	return out
}

// Snapshot merges the per-shard published metric copies, in the same
// fixed order as Metrics, and is safe to call from any goroutine
// while Run is executing. Workers publish after every batch, so a
// snapshot lags each shard by at most one in-flight batch; once Run has
// returned, Snapshot and Metrics agree exactly. Counters within one
// scheme are mutually consistent per shard (each publish is an atomic
// copy under the shard's lock), and Writes per scheme is monotonically
// non-decreasing across snapshots.
func (e *Engine) Snapshot() []Metrics {
	out := make([]Metrics, len(e.schemes))
	for i, sch := range e.schemes {
		m := newMetrics(sch.Name())
		for u := 0; u < e.units; u++ {
			m.Merge(e.shards[i*e.units+u].snapshot())
		}
		out[i] = m
	}
	return out
}

// MetricsFor returns the merged metrics of the named scheme.
func (e *Engine) MetricsFor(name string) (Metrics, bool) {
	for i, sch := range e.schemes {
		if sch.Name() == name {
			return e.Metrics()[i], true
		}
	}
	return Metrics{}, false
}

// ResetMetrics clears the accumulated metrics (wear counts included;
// the tracked footprint stays) but keeps every shard's memory state —
// used after a warm-up phase so reported numbers reflect steady-state
// behavior rather than cold first writes.
func (e *Engine) ResetMetrics() {
	for _, u := range e.shards {
		u.resetMetrics()
	}
}

// Reset clears metrics and memory state (schemes and PRNG positions are
// kept; build a fresh Engine for an independent randomized run).
func (e *Engine) Reset() {
	for _, u := range e.shards {
		u.reset()
	}
}

// RetiredLines returns the sorted retired-line addresses of every
// scheme, index-aligned with the schemes passed to NewEngine (nil
// per scheme when the fault model is off or nothing retired). Like
// Metrics, it merges per-unit state in fixed order, so the sets are
// identical for every worker count.
func (e *Engine) RetiredLines() [][]uint64 {
	out := make([][]uint64, len(e.schemes))
	for i := range e.schemes {
		var all []uint64
		for u := 0; u < e.units; u++ {
			if fm := e.shards[i*e.units+u].fm; fm != nil {
				all = append(all, fm.Retired()...)
			}
		}
		sortUint64(all)
		out[i] = all
	}
	return out
}

// sortUint64 sorts in place (the per-unit lists are already sorted, but
// units interleave addresses, so the merged list is not).
func sortUint64(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// DegradedError reports a replay that completed but crossed the
// graceful-degradation threshold: at least one scheme retired more than
// Faults.MaxRetiredFraction of its touched lines, or recorded an
// uncorrectable write. It carries the complete per-scheme metrics of
// the run — the replay finished; the array is just past its serviceable
// life — and is deterministic across worker counts like the metrics
// themselves.
type DegradedError struct {
	// Schemes names the degraded schemes, in engine scheme order.
	Schemes []string
	// Threshold is the resolved MaxRetiredFraction the run was held to.
	Threshold float64
	// Metrics holds every scheme's full metrics (not just the degraded
	// ones), as Engine.Metrics would return them.
	Metrics []Metrics
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("sim: replay degraded beyond service thresholds (retired-line fraction > %.3g or uncorrectable writes) for %s",
		e.Threshold, strings.Join(e.Schemes, ", "))
}

// degradedError evaluates the graceful-degradation threshold over a
// finished run's merged metrics; nil when the fault model is off or
// every scheme stayed within its serviceable envelope.
func degradedError(ms []Metrics, cfg fault.Config) error {
	if !cfg.Enabled {
		return nil
	}
	threshold := cfg.WithDefaults().MaxRetiredFraction
	var degraded []string
	for _, m := range ms {
		if m.Faults.Uncorrectable > 0 || m.Faults.RetiredFraction() > threshold {
			degraded = append(degraded, m.Scheme)
		}
	}
	if degraded == nil {
		return nil
	}
	return &DegradedError{Schemes: degraded, Threshold: threshold, Metrics: ms}
}

// Replayer is the interface shared by Simulator and Engine: replay a
// write stream, then report per-scheme metrics. The compile-time
// asserts below keep the two frontends' surfaces in lockstep; callers
// that want to swap the serial reference for the parallel engine (or
// back) can program against it.
type Replayer interface {
	Run(src trace.Source, max int) error
	RunContext(ctx context.Context, src trace.Source, max int) error
	Metrics() []Metrics
	Snapshot() []Metrics
	MetricsFor(name string) (Metrics, bool)
	ResetMetrics()
	Reset()
}

var (
	_ Replayer = (*Simulator)(nil)
	_ Replayer = (*Engine)(nil)
)
