package sim

import (
	"fmt"

	"wlcrc/internal/core"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

// shard is the unit of simulation state: one scheme's view of one slice
// of the address space. The serial Simulator uses one shard per scheme
// covering all addresses; the parallel Engine uses one shard per
// (scheme, bank) pair so independent lines can replay concurrently.
//
// A shard is single-threaded by construction: exactly one goroutine ever
// calls apply on it, and requests arrive in trace order. All cross-shard
// aggregation happens after the run via Metrics.Merge. The shard owns
// the reusable encode/decode buffers of its hot path — schemes are
// shared across shards and hold no per-call state — so steady-state
// replay of a warmed address performs zero heap allocations per request.
type shard struct {
	opts   *Options
	scheme core.Scheme
	// compressed classifies a stored cell vector as encoded-path or
	// raw-fallback. The flag convention is resolved once here, at
	// construction, from the scheme's optional CompressionGate — not
	// per request via name switches.
	compressed func([]pcm.State) bool
	// mem is this shard's cell-state view of its addresses.
	mem map[uint64][]pcm.State
	// scratch is the double buffer EncodeInto targets: after each
	// request it swaps roles with the stored line, so the previous
	// states become the next scratch and no per-request slice is ever
	// allocated.
	scratch []pcm.State
	// changed is the reusable differential-write mask.
	changed []bool
	// decodeBuf is the Verify path's reusable decode target (a stack
	// Line would escape through the Scheme interface call).
	decodeBuf memline.Line
	// vnrStored / vnrRestore / vnrHits are the fault-injection loop's
	// reusable buffers (only touched when Options.InjectFaults is set).
	vnrStored  []pcm.State
	vnrRestore []bool
	vnrHits    []int
	// rnd is nil under deterministic expected-value accounting. The
	// Simulator points every shard at one shared stream (so scheme i+1
	// continues scheme i's sequence within a request, the historical
	// behavior); the Engine gives each shard its own substream so the
	// sampled results do not depend on scheduling.
	rnd *prng.Xoshiro256
	m   Metrics

	// err records the first verification failure; errSeq is the global
	// sequence number of the request that caused it. Both are maintained
	// by the Engine, which freezes an erred shard so the reported error
	// is deterministic. The Simulator returns errors immediately instead.
	err    error
	errSeq uint64
}

// newShard builds a shard for sch. opts must outlive the shard.
func newShard(opts *Options, sch core.Scheme, rnd *prng.Xoshiro256) *shard {
	n := sch.TotalCells()
	u := &shard{
		opts:    opts,
		scheme:  sch,
		mem:     make(map[uint64][]pcm.State),
		scratch: make([]pcm.State, n),
		changed: make([]bool, n),
		rnd:     rnd,
		m:       Metrics{Scheme: sch.Name()},
	}
	u.compressed = core.CompressedWriteFunc(sch)
	return u
}

// apply replays one request through the shard's scheme, charging the
// energy, endurance and disturbance models and updating the stored cell
// state. It returns a non-nil error when Verify is on and the stored
// line fails to decode back to the written data.
func (u *shard) apply(req *trace.Request) error {
	sch := u.scheme
	old, ok := u.mem[req.Addr]
	if !ok {
		old = core.InitialCells(sch.TotalCells())
	}
	newCells := u.scratch
	sch.EncodeInto(newCells, old, &req.New)
	m := &u.m
	m.Writes++
	st, changed := u.opts.Energy.DiffWriteMask(old, newCells, sch.DataCells(), u.changed)
	m.Energy.Add(st)
	u.changed = changed
	var sampler pcm.Sampler
	if u.rnd != nil {
		sampler = u.rnd
	}
	d := u.opts.Disturb.CountDisturb(newCells, u.changed, sch.DataCells(), sampler)
	m.Disturb.Add(d)
	if e := d.Errors(); e > m.MaxDisturb {
		m.MaxDisturb = e
	}
	if u.compressed(newCells) {
		m.CompressedWrites++
	}
	if u.opts.InjectFaults {
		u.runVnR(newCells, u.changed, u.opts.MaxVnRIterations)
	}
	// Swap the buffers: the freshly-encoded states become the stored
	// line; the previous stored line (or the first-touch initial vector)
	// becomes the next request's scratch.
	u.mem[req.Addr] = newCells
	u.scratch = old
	if u.opts.Verify {
		got := &u.decodeBuf
		sch.DecodeInto(newCells, got)
		if !got.Equal(&req.New) {
			m.DecodeErrors++
			return fmt.Errorf("sim: %s: decode mismatch at addr %#x", sch.Name(), req.Addr)
		}
	}
	return nil
}

// resetMetrics clears the accumulated metrics but keeps the memory state
// (used after warm-up).
func (u *shard) resetMetrics() {
	u.m = Metrics{Scheme: u.scheme.Name()}
	u.err = nil
	u.errSeq = 0
}

// reset clears metrics and memory state.
func (u *shard) reset() {
	u.resetMetrics()
	u.mem = make(map[uint64][]pcm.State)
}
