package sim

import (
	"fmt"
	"sync"

	"wlcrc/internal/arena"
	"wlcrc/internal/core"
	"wlcrc/internal/coset"
	"wlcrc/internal/fault"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
	"wlcrc/internal/wear"
)

// shardRunCap is the number of lines a shard's batch-encode path prices
// per scheme call (see applyRun): large enough to amortize the scheme's
// table loads across several lines, small enough that the run's encode
// outputs are still L1-hot when the deferred settle pass re-reads them
// for the energy/disturb models (measured: 4 beats both 2 and 16 on
// every scheme family; 16 loses ~40% to settle-time cache misses).
const shardRunCap = 4

// shard is the unit of simulation state: one scheme's view of one slice
// of the address space. The serial Simulator uses one shard per scheme
// covering all addresses; the parallel Engine uses one shard per
// (scheme, bank, sub-shard) triple so independent lines replay
// concurrently.
//
// A shard is single-threaded by construction: exactly one goroutine ever
// calls apply/applyRun on it, and requests arrive in trace order. All
// cross-shard aggregation happens after the run via Metrics.Merge. The
// shard owns the reusable encode/decode buffers of its hot path —
// schemes are shared across shards and hold no per-call state — so
// steady-state replay of a warmed address performs zero heap allocations
// per request.
type shard struct {
	opts   *Options
	scheme core.Scheme
	// compressed classifies a stored cell vector as encoded-path or
	// raw-fallback. The flag convention is resolved once here, at
	// construction, from the scheme's optional CompressionGate — not
	// per request via name switches.
	compressed func([]pcm.State) bool
	// encodeCtr / decodeCtr are the codec entry points resolved once
	// from the scheme's optional CounterScheme extension: counter-keyed
	// schemes (VCC, Enc) get the per-line write counter, everything else
	// ignores it. encodeBatch is the line-batch form (core.BatchEncoder
	// or the hoisted loop), the entry point of applyRun.
	encodeCtr   func(dst, old []pcm.State, addr, ctr uint64, data *memline.Line)
	decodeCtr   func(cells []pcm.State, addr, ctr uint64, dst *memline.Line)
	encodeBatch func(jobs []core.EncodeJob)
	// mem is this shard's cell-state view of its addresses — the scalar
	// reference store, used only when the scheme has no plane codec.
	mem map[uint64][]pcm.State
	// Plane-native path: when the scheme implements core.PlaneScheme,
	// lines live in the arena as bit-plane words — 128 contiguous data
	// bytes per line instead of 256 scattered cell bytes — addressed by
	// the arena's open slot index instead of the mem map, and every
	// encode, diff, wear, disturb and fault step below runs on planes.
	// planeEnc == nil selects the scalar path throughout.
	planeEnc  core.PlaneScheme
	planeGate func([]uint64) bool
	arena     *arena.Lines
	stride    int // plane words per line
	// planeSpare is the plane path's free-buffer stack (the []uint64
	// analog of spare): encode targets a detached buffer, settle commits
	// it into the arena slot with one copy, and the buffer recycles.
	planeSpare [][]uint64
	// planeJobs is the open plane batch-encode run. Jobs carry arena
	// slots, not plane slices: Ensure during routing may grow the slab,
	// so old-plane pointers resolve at flush time, when no insert can
	// intervene. pjobs is the resolved scratch handed to the batch call.
	planeJobs []planeJob
	pjobs     []core.PlaneEncodeJob
	// masks is the reusable changed-cell mask (one word per 32 cells),
	// the plane path's counterpart of changed.
	masks []uint64
	// cellsOld/cellsNew are the plane path's scalar materialization
	// scratch, touched only off the fast path: fault repair, VnR
	// injection and recovery reads unpack into them.
	cellsOld, cellsNew []pcm.State
	// ctrs is the per-line write-counter store (the shard-local slice of
	// an encryption engine's counter cache); nil unless the scheme is a
	// CounterScheme. Requests to one address always replay in trace
	// order on one shard, so counters are deterministic for every worker
	// count.
	ctrs map[uint64]uint64
	// spare is the stack of free cell buffers EncodeInto targets: each
	// settled request stores its freshly-encoded buffer and releases the
	// line's previous states back here, so steady state never allocates.
	// apply uses one buffer; applyRun keeps up to shardRunCap in flight.
	spare [][]pcm.State
	// jobs/jobSeqs are the open batch-encode run: up to shardRunCap
	// address-distinct lines that one encodeBatch call prices together.
	// jobSeqs carries each job's global trace sequence number for
	// deterministic error reporting.
	jobs    []core.EncodeJob
	jobSeqs []uint64
	// changed is the reusable differential-write mask.
	changed []bool
	// decodeBuf is the Verify path's reusable decode target (a stack
	// Line would escape through the Scheme interface call).
	decodeBuf memline.Line
	// vnrStored / vnrRestore / vnrHits are the fault-injection loop's
	// reusable buffers (only touched when Options.InjectFaults is set).
	vnrStored  []pcm.State
	vnrRestore []bool
	vnrHits    []int
	// rnd is nil under deterministic expected-value accounting. The
	// Simulator points every shard at one shared stream (so scheme i+1
	// continues scheme i's sequence within a request, the historical
	// behavior); the Engine gives each shard its own substream so the
	// sampled results do not depend on scheduling.
	rnd *prng.Xoshiro256
	m   Metrics
	// wear records dense per-cell program counts when Options.TrackWear
	// is set or the fault model is enabled (wear onset needs the
	// counts); nil otherwise. Owned by the shard's single goroutine;
	// only its fixed-size Summary ever leaves, folded into metricsView —
	// and only when TrackWear asked for it.
	wear *wear.Dense
	// fm is the shard's stuck-at fault state and repair stats when
	// Options.Faults.Enabled (nil otherwise — the fault-free settle path
	// carries exactly one nil check). encodeStuck is the scheme's
	// optional stuck-aware re-encode, the repair pipeline's first
	// recourse; eccSc is the reusable ECC scratch of the second.
	fm          *fault.Map
	encodeStuck func(dst, old []pcm.State, data *memline.Line, stuck *fault.LineStuck) bool
	eccSc       fault.ECCScratch

	// pub is the last published copy of this shard's metrics, the
	// half that makes Engine.Snapshot safe during Run: the owning worker
	// copies metricsView() into pub under pubMu (publish), and Snapshot
	// readers copy it back out under the same lock, never touching the
	// live accumulators. pubWrites is the Writes value at the last
	// publish, the owner's cheap dirty check; it is only ever accessed
	// by the owning worker.
	pubMu     sync.Mutex
	pub       Metrics
	pubWrites int

	// err records the first verification failure; errSeq is the global
	// sequence number of the request that caused it. Both are maintained
	// by the Engine, which freezes an erred shard so the reported error
	// is deterministic. The Simulator returns errors immediately instead.
	err    error
	errSeq uint64
}

// newShard builds a shard for sch. opts must outlive the shard. fm is
// the shard's fault map (nil when the fault model is off) and implies a
// wear recorder: wear onset compares live program counts against the
// drawn endurance thresholds.
func newShard(opts *Options, sch core.Scheme, rnd *prng.Xoshiro256, fm *fault.Map) *shard {
	n := sch.TotalCells()
	u := &shard{
		opts:    opts,
		scheme:  sch,
		changed: make([]bool, n),
		rnd:     rnd,
		m:       newMetrics(sch.Name()),
		pub:     newMetrics(sch.Name()),
		fm:      fm,
	}
	if opts.TrackWear || fm != nil {
		u.wear = wear.NewDense(n)
	}
	u.compressed = core.CompressedWriteFunc(sch)
	u.encodeCtr = core.EncodeCtrFunc(sch)
	u.decodeCtr = core.DecodeCtrFunc(sch)
	u.encodeBatch = core.EncodeBatchFunc(sch)
	if fm != nil {
		u.encodeStuck = core.EncodeStuckFunc(sch)
	}
	if core.UsesCounters(sch) {
		u.ctrs = make(map[uint64]uint64)
	}
	if ps, ok := core.PlaneCodec(sch); ok && !opts.ScalarStorage {
		u.planeEnc = ps
		u.planeGate = core.CompressedWritePlanesFunc(sch)
		u.stride = coset.PlaneWords(n)
		u.arena = arena.New(u.stride, 0)
		u.planeSpare = [][]uint64{make([]uint64, u.stride)}
		u.masks = make([]uint64, u.stride/2)
		u.cellsOld = make([]pcm.State, n)
		u.cellsNew = make([]pcm.State, n)
	} else {
		u.mem = make(map[uint64][]pcm.State)
		u.spare = [][]pcm.State{make([]pcm.State, n)}
	}
	return u
}

// reserve preallocates the line store for the expected number of
// distinct lines (a trace Count()-derived hint; see Engine.reserveLines).
func (u *shard) reserve(lines int) {
	if u.arena != nil {
		u.arena.Reserve(lines)
	}
}

// takeSpare pops a free cell buffer (allocating only while the shard's
// in-flight buffer count still grows toward its steady-state ceiling of
// shardRunCap+1).
func (u *shard) takeSpare() []pcm.State {
	if n := len(u.spare); n > 0 {
		s := u.spare[n-1]
		u.spare = u.spare[:n-1]
		return s
	}
	return make([]pcm.State, u.scheme.TotalCells())
}

// putSpare releases a cell buffer for reuse.
func (u *shard) putSpare(s []pcm.State) { u.spare = append(u.spare, s) }

// takePlaneSpare pops a free plane buffer (the plane path's takeSpare:
// allocating only while the in-flight count grows toward its
// steady-state ceiling of shardRunCap+1).
func (u *shard) takePlaneSpare() []uint64 {
	if n := len(u.planeSpare); n > 0 {
		s := u.planeSpare[n-1]
		u.planeSpare = u.planeSpare[:n-1]
		return s
	}
	return make([]uint64, u.stride)
}

// putPlaneSpare releases a plane buffer for reuse.
func (u *shard) putPlaneSpare(s []uint64) { u.planeSpare = append(u.planeSpare, s) }

// planeJob is one pending write of a plane batch-encode run. It holds
// the line's arena slot rather than its plane slice: a later Ensure of
// the same run may grow the arena slab, so the old planes are resolved
// at flush, when inserts can no longer move them.
type planeJob struct {
	slot int
	addr uint64
	seq  uint64
	dst  []uint64
	data *memline.Line
}

// prepare resolves a request's encode inputs: the line's current cells
// (the initial RESET vector on first touch) and, for counter schemes,
// the incremented per-line write counter.
func (u *shard) prepare(addr uint64) (old []pcm.State, ctr uint64) {
	old, ok := u.mem[addr]
	if !ok {
		old = core.InitialCells(u.scheme.TotalCells())
	}
	if u.ctrs != nil {
		ctr = u.ctrs[addr] + 1
		u.ctrs[addr] = ctr
	}
	return old, ctr
}

// apply replays one request through the shard's scheme, charging the
// energy, endurance and disturbance models and updating the stored cell
// state. seq is the request's global trace sequence number (for
// deterministic fault and error ordering). It returns a non-nil error
// when Verify is on and the stored line fails to decode back to the
// written data, or when FailFast is on and the fault pipeline hit an
// uncorrectable stuck line.
func (u *shard) apply(req *trace.Request, seq uint64) error {
	if u.planeEnc != nil {
		slot, _ := u.arena.Ensure(req.Addr)
		dst := u.takePlaneSpare()
		u.planeEnc.EncodePlanesInto(dst, u.arena.Planes(slot), &req.New)
		return u.settlePlanes(dst, slot, req.Addr, seq, &req.New)
	}
	old, ctr := u.prepare(req.Addr)
	dst := u.takeSpare()
	u.encodeCtr(dst, old, req.Addr, ctr, &req.New)
	return u.settle(dst, old, req.Addr, ctr, seq, &req.New)
}

// settle charges the accounting models for one encoded write and commits
// it: fault detection and repair first (it may re-encode newCells),
// then energy/endurance/disturbance accumulation, histograms, wear,
// compression classification, optional fault injection, then the buffer
// swap that stores dst and recycles the previous states. Requests of one
// shard settle strictly in trace order — the PRNG draws of the sampled
// models happen here, so batching the encodes never perturbs them.
//
// Under the fault model, newCells is the intended encode throughout the
// accounting (the controller attempts to program it, so energy and wear
// charge the attempt); the stuck cells' frozen states are overlaid just
// before the commit, so the stored line is the physical view future
// writes diff against, while Verify checks the intended content —
// whose recoverability from the physical states the ECC classification
// has already established.
func (u *shard) settle(newCells, old []pcm.State, addr, ctr, seq uint64, data *memline.Line) error {
	sch := u.scheme
	m := &u.m
	m.Writes++
	var faultErr error
	if u.fm != nil {
		faultErr = u.repairFaults(newCells, old, u.wear.LineCounts(addr), addr, ctr, seq, data)
	}
	st, changed := u.opts.Energy.DiffWriteMask(old, newCells, sch.DataCells(), u.changed)
	m.Energy.Add(st)
	u.changed = changed
	m.EnergyHist.Observe(st.Energy())
	m.UpdatedHist.Observe(float64(st.Updated()))
	if u.wear != nil {
		u.wear.RecordChanged(addr, u.changed)
	}
	var sampler pcm.Sampler
	if u.rnd != nil {
		sampler = u.rnd
	}
	d := u.opts.Disturb.CountDisturb(newCells, u.changed, sch.DataCells(), sampler)
	m.Disturb.Add(d)
	if e := d.Errors(); e > m.MaxDisturb {
		m.MaxDisturb = e
	}
	if u.compressed(newCells) {
		m.CompressedWrites++
	}
	if u.opts.InjectFaults {
		u.runVnR(newCells, u.changed, u.opts.MaxVnRIterations, addr)
	}
	var verifyErr error
	if u.opts.Verify {
		got := &u.decodeBuf
		u.decodeCtr(newCells, addr, ctr, got)
		if !got.Equal(data) {
			m.DecodeErrors++
			verifyErr = fmt.Errorf("sim: %s: decode mismatch at addr %#x", sch.Name(), addr)
		}
	}
	if u.fm != nil {
		// Wear onset: cells crossing their endurance threshold freeze at
		// the state this write just programmed. Then persist the ECC
		// parity of the intended content and overlay the frozen states,
		// making newCells the physically stored line.
		u.fm.OnWrite(addr, u.changed, newCells, u.wear.LineCounts(addr))
		if ls := u.fm.Stuck(addr); ls != nil {
			u.fm.StoreParity(addr, newCells, &u.eccSc)
			ls.Overlay(newCells)
		}
	}
	// Swap the buffers: the freshly-encoded states become the stored
	// line; the previous stored line (or the first-touch initial vector)
	// becomes a future request's encode target.
	u.mem[addr] = newCells
	u.putSpare(old)
	if verifyErr != nil {
		return verifyErr
	}
	return faultErr
}

// repairFaults is the per-write detection and repair pipeline of the
// fault model, run before the write's accounting so the models charge
// what the controller actually programs. Write-verify against the stuck
// map detects intended states that disagree with frozen cells; the
// recourses, in order:
//
//  1. stuck-aware re-encode — coset schemes search for a candidate
//     assignment matching every stuck cell (free if one exists);
//  2. ECC classification — the interleaved BCH budget covers the
//     mismatches, so reads will correct the stored line back to the
//     intended content;
//  3. line retirement — the address remaps to a healthy spare line and
//     the write re-encodes against a fresh initial vector;
//  4. uncorrectable — counted, and fatal only under Options.FailFast.
//
// Every step is a pure function of the shard's own trace-ordered
// history, so the outcome is bit-identical for every worker count.
//
// counts is the line's live per-cell wear — addr-keyed on the scalar
// store, slot-keyed on the plane arena. Retirement re-draws the spare
// line's endurance thresholds above it, so both stores must feed the
// counters they actually record into, or their retirement timelines
// diverge.
func (u *shard) repairFaults(newCells, old []pcm.State, counts []uint32, addr, ctr, seq uint64, data *memline.Line) error {
	ls := u.fm.Stuck(addr)
	if ls == nil || ls.MismatchCount(newCells) == 0 {
		return nil
	}
	st := &u.fm.Stats
	st.Detected++
	if u.encodeStuck != nil {
		st.Retries++
		if u.encodeStuck(newCells, old, data, ls) {
			st.RetriedOK++
			return nil
		}
		// The failed retry may have partially filled newCells; restore
		// the canonical encode before pricing it against the ECC.
		u.encodeCtr(newCells, old, addr, ctr, data)
	}
	if bits, ok := u.fm.Correct(newCells, ls, &u.eccSc); ok {
		st.CorrectedBits += uint64(bits)
		st.CorrectedWrites++
		return nil
	}
	if u.fm.Retire(addr, counts, seq) {
		// The spare line is pristine: restart from the initial RESET
		// vector and re-encode against it. The address keeps its write
		// counter — counters are address metadata and survive the remap.
		for i := range old {
			old[i] = pcm.S1
		}
		u.encodeCtr(newCells, old, addr, ctr, data)
		return nil
	}
	st.Uncorrectable++
	if u.opts.FailFast {
		return fmt.Errorf("sim: %s: uncorrectable stuck-at fault at addr %#x (%d stuck cells exceed the %d-bit ECC budget, spare pool empty)",
			u.scheme.Name(), addr, ls.N, u.fm.ECC().BudgetBits())
	}
	return nil
}

// settlePlanes is settle on the plane-native path: the same model
// charges in the same order — fault repair, energy+endurance, wear,
// disturbance, compression classification, fault injection, Verify,
// stuck overlay, commit — with every step reading planes instead of
// cell vectors. The XOR diff of the stored and encoded planes doubles
// as the changed-cell mask for wear, disturbance exposure and the fault
// model, and the commit is a single 144-byte copy into the arena slot.
// Energy sums, histogram observations and PRNG draws are bit-identical
// to the scalar path (DiffWriteMasks and CountDisturbMasks visit cells
// in the same ascending order), which the equivalence tests pin down.
func (u *shard) settlePlanes(newP []uint64, slot int, addr, seq uint64, data *memline.Line) error {
	sch := u.scheme
	m := &u.m
	m.Writes++
	oldP := u.arena.Planes(slot)
	var faultErr error
	if u.fm != nil {
		faultErr = u.repairFaultsPlanes(newP, oldP, slot, addr, seq, data)
	}
	st := u.opts.Energy.DiffWriteMasks(oldP, newP, u.masks, sch.DataCells())
	m.Energy.Add(st)
	m.EnergyHist.Observe(st.Energy())
	m.UpdatedHist.Observe(float64(st.Updated()))
	if u.wear != nil {
		u.wear.RecordSlotMasks(slot, u.masks)
	}
	var sampler pcm.Sampler
	if u.rnd != nil {
		sampler = u.rnd
	}
	d := u.opts.Disturb.CountDisturbMasks(newP, u.masks, sch.TotalCells(), sch.DataCells(), sampler)
	m.Disturb.Add(d)
	if e := d.Errors(); e > m.MaxDisturb {
		m.MaxDisturb = e
	}
	if u.planeGate(newP) {
		m.CompressedWrites++
	}
	if u.opts.InjectFaults {
		// The restore loop mutates a stored copy cell by cell; feed it
		// the materialized write and the expanded change mask.
		cells := u.cellsNew[:sch.TotalCells()]
		coset.UnpackLine(newP, cells)
		expandMasks(u.masks, u.changed)
		u.runVnR(cells, u.changed, u.opts.MaxVnRIterations, addr)
	}
	var verifyErr error
	if u.opts.Verify {
		got := &u.decodeBuf
		u.planeEnc.DecodePlanesInto(newP, got)
		if !got.Equal(data) {
			m.DecodeErrors++
			verifyErr = fmt.Errorf("sim: %s: decode mismatch at addr %#x", sch.Name(), addr)
		}
	}
	if u.fm != nil {
		u.fm.OnWriteMasks(addr, u.masks, newP, u.wear.SlotCounts(slot))
		if ls := u.fm.Stuck(addr); ls != nil {
			cells := u.cellsNew[:sch.TotalCells()]
			coset.UnpackLine(newP, cells)
			u.fm.StoreParity(addr, cells, &u.eccSc)
			ls.OverlayPlanes(newP)
		}
	}
	// Commit: the encoded planes overwrite the stored line in place —
	// the arena slot stays put, so no pointer swap and no map store —
	// and the detached buffer recycles.
	copy(oldP, newP)
	u.putPlaneSpare(newP)
	if verifyErr != nil {
		return verifyErr
	}
	return faultErr
}

// repairFaultsPlanes runs the write-verify fault check against plane
// storage. The no-mismatch fast path — every write on a healthy line,
// and most writes on stuck ones — costs one stuck-map lookup and a
// plane scan; an actual repair is rare, so it materializes both cell
// vectors, reuses the scalar repair pipeline verbatim (retry, ECC,
// retirement), and packs the outcome back — including the pristine
// all-S1 old vector a retirement resets the slot to.
func (u *shard) repairFaultsPlanes(newP, oldP []uint64, slot int, addr, seq uint64, data *memline.Line) error {
	ls := u.fm.Stuck(addr)
	if ls == nil || ls.MismatchCountPlanes(newP) == 0 {
		return nil
	}
	n := u.scheme.TotalCells()
	newC, oldC := u.cellsNew[:n], u.cellsOld[:n]
	coset.UnpackLine(newP, newC)
	coset.UnpackLine(oldP, oldC)
	err := u.repairFaults(newC, oldC, u.wear.SlotCounts(slot), addr, 0, seq, data)
	coset.PackLine(newC, newP)
	coset.PackLine(oldC, oldP)
	return err
}

// expandMasks spreads plane-diff change masks into the bool mask the
// scalar VnR loop consumes: dst[32w+i] = bit i of masks[w].
func expandMasks(masks []uint64, dst []bool) {
	n := len(dst)
	for w, m := range masks {
		base := w * 32
		end := base + 32
		if end > n {
			end = n
		}
		for c := base; c < end; c++ {
			dst[c] = m&1 == 1
			m >>= 1
		}
	}
}

// readLine decodes the current content of addr the way a controller
// read would: fetch the physically stored states, run the ECC recovery
// against the line's stored parity when it has stuck cells, then decode
// the scheme. ok=false means the address was never written; an error
// means the line is uncorrectably corrupted (deterministically so).
// On the plane path the healthy-line read decodes the arena slot
// directly; the fault path materializes cells for the ECC recovery.
func (u *shard) readLine(addr uint64, dst *memline.Line) (ok bool, err error) {
	var phys []pcm.State
	if u.planeEnc != nil {
		slot, ok := u.arena.Lookup(addr)
		if !ok {
			return false, nil
		}
		planes := u.arena.Planes(slot)
		if u.fm == nil {
			u.planeEnc.DecodePlanesInto(planes, dst)
			return true, nil
		}
		phys = u.cellsOld[:u.scheme.TotalCells()]
		coset.UnpackLine(planes, phys)
	} else if phys, ok = u.mem[addr]; !ok {
		return false, nil
	}
	cells := phys
	if u.fm != nil {
		if cap(u.vnrStored) < len(phys) {
			u.vnrStored = make([]pcm.State, len(phys))
			u.vnrRestore = make([]bool, len(phys))
		}
		rec, recOK := u.fm.Recover(addr, phys, u.vnrStored[:len(phys)], &u.eccSc)
		if !recOK {
			return true, fmt.Errorf("sim: %s: uncorrectable read at addr %#x", u.scheme.Name(), addr)
		}
		cells = rec
	}
	var ctr uint64
	if u.ctrs != nil {
		ctr = u.ctrs[addr]
	}
	u.decodeCtr(cells, addr, ctr, dst)
	return true, nil
}

// eachResident calls fn with every line address resident in the shard's
// store — arena or scalar map — in unspecified order. Test and debug
// helper; the hot path never enumerates residency.
func (u *shard) eachResident(fn func(addr uint64)) {
	if u.arena != nil {
		for s := 0; s < u.arena.Len(); s++ {
			fn(u.arena.Addr(s))
		}
		return
	}
	for addr := range u.mem {
		fn(addr)
	}
}

// runHasAddr reports whether the open batch-encode run already contains
// a job for addr — the read-after-write hazard that forces a flush,
// since the repeated write's Old must be the first write's Dst.
func (u *shard) runHasAddr(addr uint64) bool {
	for k := range u.jobs {
		if u.jobs[k].Addr == addr {
			return true
		}
	}
	return false
}

// applyRun is the batch-encode form of apply: it replays a routed batch
// through this shard, pricing up to shardRunCap address-distinct lines
// per encodeBatch call so the scheme's SWAR tables load once per run
// instead of once per line, then settles each line in trace order. On a
// verification failure it stops and returns the failing request's global
// sequence number with the error; the remaining requests of the batch
// are not applied (the Engine freezes the shard).
func (u *shard) applyRun(rs []routedReq) (errSeq uint64, err error) {
	if u.planeEnc != nil {
		return u.applyRunPlanes(rs)
	}
	for j := range rs {
		rr := &rs[j]
		if u.runHasAddr(rr.req.Addr) {
			if seq, err := u.flushRun(); err != nil {
				return seq, err
			}
		}
		old, ctr := u.prepare(rr.req.Addr)
		u.jobs = append(u.jobs, core.EncodeJob{
			Dst:  u.takeSpare(),
			Old:  old,
			Addr: rr.req.Addr,
			Ctr:  ctr,
			Data: &rr.req.New,
		})
		u.jobSeqs = append(u.jobSeqs, rr.seq)
		if len(u.jobs) == shardRunCap {
			if seq, err := u.flushRun(); err != nil {
				return seq, err
			}
		}
	}
	return u.flushRun()
}

// flushRun encodes the open run in one batch call and settles each job
// in order. After a failed settle the remaining jobs are discarded
// unaccounted — their buffers return to the spare stack and their lines
// keep the pre-run states — so an erred shard's metrics cover exactly
// its trace prefix up to and including the failing request.
func (u *shard) flushRun() (errSeq uint64, err error) {
	if len(u.jobs) == 0 {
		return 0, nil
	}
	u.encodeBatch(u.jobs)
	for k := range u.jobs {
		j := &u.jobs[k]
		if err != nil {
			u.putSpare(j.Dst)
			continue
		}
		if e := u.settle(j.Dst, j.Old, j.Addr, j.Ctr, u.jobSeqs[k], j.Data); e != nil {
			err, errSeq = e, u.jobSeqs[k]
		}
	}
	u.jobs = u.jobs[:0]
	u.jobSeqs = u.jobSeqs[:0]
	return errSeq, err
}

// applyRunPlanes is applyRun on the plane-native path: the same
// shardRunCap batching and address-hazard flushes, with line state
// resolved through the arena slot index instead of the mem map.
func (u *shard) applyRunPlanes(rs []routedReq) (errSeq uint64, err error) {
	for j := range rs {
		rr := &rs[j]
		if u.planeRunHasAddr(rr.req.Addr) {
			if seq, err := u.flushRunPlanes(); err != nil {
				return seq, err
			}
		}
		slot, _ := u.arena.Ensure(rr.req.Addr)
		u.planeJobs = append(u.planeJobs, planeJob{
			slot: slot,
			addr: rr.req.Addr,
			seq:  rr.seq,
			dst:  u.takePlaneSpare(),
			data: &rr.req.New,
		})
		if len(u.planeJobs) == shardRunCap {
			if seq, err := u.flushRunPlanes(); err != nil {
				return seq, err
			}
		}
	}
	return u.flushRunPlanes()
}

// planeRunHasAddr is runHasAddr for the plane batch-encode run.
func (u *shard) planeRunHasAddr(addr uint64) bool {
	for k := range u.planeJobs {
		if u.planeJobs[k].addr == addr {
			return true
		}
	}
	return false
}

// flushRunPlanes resolves the open run's old planes (safe now — no
// Ensure can land between here and the settles), batch-encodes, and
// settles each job in trace order; error semantics match flushRun.
func (u *shard) flushRunPlanes() (errSeq uint64, err error) {
	if len(u.planeJobs) == 0 {
		return 0, nil
	}
	u.pjobs = u.pjobs[:0]
	for k := range u.planeJobs {
		j := &u.planeJobs[k]
		u.pjobs = append(u.pjobs, core.PlaneEncodeJob{
			Dst:  j.dst,
			Old:  u.arena.Planes(j.slot),
			Data: j.data,
		})
	}
	core.EncodePlaneBatch(u.planeEnc, u.pjobs)
	for k := range u.planeJobs {
		j := &u.planeJobs[k]
		if err != nil {
			u.putPlaneSpare(j.dst)
			continue
		}
		if e := u.settlePlanes(j.dst, j.slot, j.addr, j.seq, j.data); e != nil {
			err, errSeq = e, j.seq
		}
	}
	u.planeJobs = u.planeJobs[:0]
	return errSeq, err
}

// metricsView returns the shard's current metrics with the wear digest
// folded in. Only the owning goroutine (or a post-run caller) may use
// it; concurrent readers go through the published copy instead.
func (u *shard) metricsView() Metrics {
	m := u.m
	if u.wear != nil && u.opts.TrackWear {
		m.Wear = u.wear.Summary()
	}
	if u.fm != nil {
		m.Faults = u.fm.Stats
	}
	return m
}

// publish copies the live metrics into the snapshot buffer. Called by
// the owning worker after each batch (and at drain), so Snapshot
// readers lag a shard by at most one in-flight batch.
func (u *shard) publish() {
	m := u.metricsView()
	u.pubMu.Lock()
	u.pub = m
	u.pubMu.Unlock()
}

// publishIfDirty publishes only when writes landed since the last
// publish, keeping the per-batch publish sweep cheap for untouched
// shards. Owner-only, like publish.
func (u *shard) publishIfDirty() {
	if u.m.Writes == u.pubWrites {
		return
	}
	u.pubWrites = u.m.Writes
	u.publish()
}

// snapshot returns the last published metrics copy. Safe to call from
// any goroutine at any time.
func (u *shard) snapshot() Metrics {
	u.pubMu.Lock()
	m := u.pub
	u.pubMu.Unlock()
	return m
}

// resetMetrics clears the accumulated metrics (including wear counts —
// the footprint stays) but keeps the memory state (used after warm-up).
func (u *shard) resetMetrics() {
	u.m = newMetrics(u.scheme.Name())
	if u.wear != nil {
		u.wear.Reset()
	}
	if u.fm != nil {
		u.fm.ResetStats()
	}
	u.err = nil
	u.errSeq = 0
	u.pubWrites = 0
	u.publish()
}

// reset clears metrics and memory state while keeping every allocation
// warm: the arena keeps its slab and index, the scalar store recycles
// its line buffers through the spare stack and keeps its map buckets,
// the counter map keeps its buckets, and the wear recorder keeps its
// count array — a reset-and-rerun (warm-up flows, repeated experiment
// phases) re-fills storage without rebuilding it.
func (u *shard) reset() {
	if u.arena != nil {
		u.arena.Reset()
	} else {
		for addr, cells := range u.mem {
			u.putSpare(cells)
			delete(u.mem, addr)
		}
	}
	if u.ctrs != nil {
		clear(u.ctrs)
	}
	if u.wear != nil {
		u.wear.Clear()
	}
	if u.fm != nil {
		u.fm.Reset()
	}
	u.resetMetrics()
}
