package sim

import (
	"fmt"

	"wlcrc/internal/core"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

// shard is the unit of simulation state: one scheme's view of one slice
// of the address space. The serial Simulator uses one shard per scheme
// covering all addresses; the parallel Engine uses one shard per
// (scheme, bank) pair so independent lines can replay concurrently.
//
// A shard is single-threaded by construction: exactly one goroutine ever
// calls apply on it, and requests arrive in trace order. All cross-shard
// aggregation happens after the run via Metrics.Merge.
type shard struct {
	opts   *Options
	scheme core.Scheme
	// mem is this shard's cell-state view of its addresses.
	mem map[uint64][]pcm.State
	// rnd is nil under deterministic expected-value accounting. The
	// Simulator points every shard at one shared stream (so scheme i+1
	// continues scheme i's sequence within a request, the historical
	// behavior); the Engine gives each shard its own substream so the
	// sampled results do not depend on scheduling.
	rnd *prng.Xoshiro256
	m   Metrics

	// err records the first verification failure; errSeq is the global
	// sequence number of the request that caused it. Both are maintained
	// by the Engine, which freezes an erred shard so the reported error
	// is deterministic. The Simulator returns errors immediately instead.
	err    error
	errSeq uint64
}

// newShard builds a shard for sch. opts must outlive the shard.
func newShard(opts *Options, sch core.Scheme, rnd *prng.Xoshiro256) *shard {
	return &shard{
		opts:   opts,
		scheme: sch,
		mem:    make(map[uint64][]pcm.State),
		rnd:    rnd,
		m:      Metrics{Scheme: sch.Name()},
	}
}

// apply replays one request through the shard's scheme, charging the
// energy, endurance and disturbance models and updating the stored cell
// state. It returns a non-nil error when Verify is on and the stored
// line fails to decode back to the written data.
func (u *shard) apply(req *trace.Request) error {
	sch := u.scheme
	old, ok := u.mem[req.Addr]
	if !ok {
		old = core.InitialCells(sch.TotalCells())
	}
	newCells := sch.Encode(old, &req.New)
	m := &u.m
	m.Writes++
	m.Energy.Add(u.opts.Energy.DiffWrite(old, newCells, sch.DataCells()))
	changed := pcm.ChangedMask(old, newCells)
	var sampler pcm.Sampler
	if u.rnd != nil {
		sampler = u.rnd
	}
	d := u.opts.Disturb.CountDisturb(newCells, changed, sch.DataCells(), sampler)
	m.Disturb.Add(d)
	if e := d.Errors(); e > m.MaxDisturb {
		m.MaxDisturb = e
	}
	if isCompressedWrite(sch, newCells) {
		m.CompressedWrites++
	}
	if u.opts.InjectFaults {
		u.runVnR(newCells, changed, u.opts.MaxVnRIterations)
	}
	u.mem[req.Addr] = newCells
	if u.opts.Verify {
		got := sch.Decode(newCells)
		if !got.Equal(&req.New) {
			m.DecodeErrors++
			return fmt.Errorf("sim: %s: decode mismatch at addr %#x", sch.Name(), req.Addr)
		}
	}
	return nil
}

// resetMetrics clears the accumulated metrics but keeps the memory state
// (used after warm-up).
func (u *shard) resetMetrics() {
	u.m = Metrics{Scheme: u.scheme.Name()}
	u.err = nil
	u.errSeq = 0
}

// reset clears metrics and memory state.
func (u *shard) reset() {
	u.resetMetrics()
	u.mem = make(map[uint64][]pcm.State)
}

// isCompressedWrite inspects the flag cell of compression-gated schemes.
// Schemes without a gate count every write as encoded.
func isCompressedWrite(sch core.Scheme, cells []pcm.State) bool {
	type gated interface{ Compressible(*memline.Line) bool }
	if _, ok := sch.(gated); !ok {
		return true
	}
	if sch.TotalCells() <= memline.LineCells {
		return true
	}
	// The flag-cell convention: S1 = compressed. COC+4cosets also uses
	// S2 for its 32-bit mode; only S3+ (or S2 for two-state flags) means
	// raw. Checking "not raw" per scheme family:
	flag := cells[memline.LineCells]
	switch sch.Name() {
	case "COC+4cosets":
		return flag == pcm.S1 || flag == pcm.S2
	default:
		return flag == pcm.S1
	}
}
