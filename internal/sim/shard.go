package sim

import (
	"fmt"
	"sync"

	"wlcrc/internal/core"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
	"wlcrc/internal/wear"
)

// shard is the unit of simulation state: one scheme's view of one slice
// of the address space. The serial Simulator uses one shard per scheme
// covering all addresses; the parallel Engine uses one shard per
// (scheme, bank) pair so independent lines can replay concurrently.
//
// A shard is single-threaded by construction: exactly one goroutine ever
// calls apply on it, and requests arrive in trace order. All cross-shard
// aggregation happens after the run via Metrics.Merge. The shard owns
// the reusable encode/decode buffers of its hot path — schemes are
// shared across shards and hold no per-call state — so steady-state
// replay of a warmed address performs zero heap allocations per request.
type shard struct {
	opts   *Options
	scheme core.Scheme
	// compressed classifies a stored cell vector as encoded-path or
	// raw-fallback. The flag convention is resolved once here, at
	// construction, from the scheme's optional CompressionGate — not
	// per request via name switches.
	compressed func([]pcm.State) bool
	// encodeCtr / decodeCtr are the codec entry points resolved once
	// from the scheme's optional CounterScheme extension: counter-keyed
	// schemes (VCC, Enc) get the per-line write counter, everything else
	// ignores it.
	encodeCtr func(dst, old []pcm.State, addr, ctr uint64, data *memline.Line)
	decodeCtr func(cells []pcm.State, addr, ctr uint64, dst *memline.Line)
	// mem is this shard's cell-state view of its addresses.
	mem map[uint64][]pcm.State
	// ctrs is the per-line write-counter store (the shard-local slice of
	// an encryption engine's counter cache); nil unless the scheme is a
	// CounterScheme. Requests to one address always replay in trace
	// order on one shard, so counters are deterministic for every worker
	// count.
	ctrs map[uint64]uint64
	// scratch is the double buffer EncodeInto targets: after each
	// request it swaps roles with the stored line, so the previous
	// states become the next scratch and no per-request slice is ever
	// allocated.
	scratch []pcm.State
	// changed is the reusable differential-write mask.
	changed []bool
	// decodeBuf is the Verify path's reusable decode target (a stack
	// Line would escape through the Scheme interface call).
	decodeBuf memline.Line
	// vnrStored / vnrRestore / vnrHits are the fault-injection loop's
	// reusable buffers (only touched when Options.InjectFaults is set).
	vnrStored  []pcm.State
	vnrRestore []bool
	vnrHits    []int
	// rnd is nil under deterministic expected-value accounting. The
	// Simulator points every shard at one shared stream (so scheme i+1
	// continues scheme i's sequence within a request, the historical
	// behavior); the Engine gives each shard its own substream so the
	// sampled results do not depend on scheduling.
	rnd *prng.Xoshiro256
	m   Metrics
	// wear records dense per-cell program counts when Options.TrackWear
	// is set (nil otherwise). Owned by the shard's single goroutine;
	// only its fixed-size Summary ever leaves, folded into metricsView.
	wear *wear.Dense

	// pub is the last published copy of this shard's metrics, the
	// half that makes Engine.Snapshot safe during Run: the owning worker
	// copies metricsView() into pub under pubMu (publish), and Snapshot
	// readers copy it back out under the same lock, never touching the
	// live accumulators. pubWrites is the Writes value at the last
	// publish, the owner's cheap dirty check; it is only ever accessed
	// by the owning worker.
	pubMu     sync.Mutex
	pub       Metrics
	pubWrites int

	// err records the first verification failure; errSeq is the global
	// sequence number of the request that caused it. Both are maintained
	// by the Engine, which freezes an erred shard so the reported error
	// is deterministic. The Simulator returns errors immediately instead.
	err    error
	errSeq uint64
}

// newShard builds a shard for sch. opts must outlive the shard.
func newShard(opts *Options, sch core.Scheme, rnd *prng.Xoshiro256) *shard {
	n := sch.TotalCells()
	u := &shard{
		opts:    opts,
		scheme:  sch,
		mem:     make(map[uint64][]pcm.State),
		scratch: make([]pcm.State, n),
		changed: make([]bool, n),
		rnd:     rnd,
		m:       newMetrics(sch.Name()),
		pub:     newMetrics(sch.Name()),
	}
	if opts.TrackWear {
		u.wear = wear.NewDense(n)
	}
	u.compressed = core.CompressedWriteFunc(sch)
	u.encodeCtr = core.EncodeCtrFunc(sch)
	u.decodeCtr = core.DecodeCtrFunc(sch)
	if core.UsesCounters(sch) {
		u.ctrs = make(map[uint64]uint64)
	}
	return u
}

// apply replays one request through the shard's scheme, charging the
// energy, endurance and disturbance models and updating the stored cell
// state. It returns a non-nil error when Verify is on and the stored
// line fails to decode back to the written data.
func (u *shard) apply(req *trace.Request) error {
	sch := u.scheme
	old, ok := u.mem[req.Addr]
	if !ok {
		old = core.InitialCells(sch.TotalCells())
	}
	var ctr uint64
	if u.ctrs != nil {
		ctr = u.ctrs[req.Addr] + 1
		u.ctrs[req.Addr] = ctr
	}
	newCells := u.scratch
	u.encodeCtr(newCells, old, req.Addr, ctr, &req.New)
	m := &u.m
	m.Writes++
	st, changed := u.opts.Energy.DiffWriteMask(old, newCells, sch.DataCells(), u.changed)
	m.Energy.Add(st)
	u.changed = changed
	m.EnergyHist.Observe(st.Energy())
	m.UpdatedHist.Observe(float64(st.Updated()))
	if u.wear != nil {
		u.wear.RecordChanged(req.Addr, u.changed)
	}
	var sampler pcm.Sampler
	if u.rnd != nil {
		sampler = u.rnd
	}
	d := u.opts.Disturb.CountDisturb(newCells, u.changed, sch.DataCells(), sampler)
	m.Disturb.Add(d)
	if e := d.Errors(); e > m.MaxDisturb {
		m.MaxDisturb = e
	}
	if u.compressed(newCells) {
		m.CompressedWrites++
	}
	if u.opts.InjectFaults {
		u.runVnR(newCells, u.changed, u.opts.MaxVnRIterations)
	}
	// Swap the buffers: the freshly-encoded states become the stored
	// line; the previous stored line (or the first-touch initial vector)
	// becomes the next request's scratch.
	u.mem[req.Addr] = newCells
	u.scratch = old
	if u.opts.Verify {
		got := &u.decodeBuf
		u.decodeCtr(newCells, req.Addr, ctr, got)
		if !got.Equal(&req.New) {
			m.DecodeErrors++
			return fmt.Errorf("sim: %s: decode mismatch at addr %#x", sch.Name(), req.Addr)
		}
	}
	return nil
}

// metricsView returns the shard's current metrics with the wear digest
// folded in. Only the owning goroutine (or a post-run caller) may use
// it; concurrent readers go through the published copy instead.
func (u *shard) metricsView() Metrics {
	m := u.m
	if u.wear != nil {
		m.Wear = u.wear.Summary()
	}
	return m
}

// publish copies the live metrics into the snapshot buffer. Called by
// the owning worker after each batch (and at drain), so Snapshot
// readers lag a shard by at most one in-flight batch.
func (u *shard) publish() {
	m := u.metricsView()
	u.pubMu.Lock()
	u.pub = m
	u.pubMu.Unlock()
}

// publishIfDirty publishes only when writes landed since the last
// publish, keeping the per-batch publish sweep cheap for untouched
// shards. Owner-only, like publish.
func (u *shard) publishIfDirty() {
	if u.m.Writes == u.pubWrites {
		return
	}
	u.pubWrites = u.m.Writes
	u.publish()
}

// snapshot returns the last published metrics copy. Safe to call from
// any goroutine at any time.
func (u *shard) snapshot() Metrics {
	u.pubMu.Lock()
	m := u.pub
	u.pubMu.Unlock()
	return m
}

// resetMetrics clears the accumulated metrics (including wear counts —
// the footprint stays) but keeps the memory state (used after warm-up).
func (u *shard) resetMetrics() {
	u.m = newMetrics(u.scheme.Name())
	if u.wear != nil {
		u.wear.Reset()
	}
	u.err = nil
	u.errSeq = 0
	u.pubWrites = 0
	u.publish()
}

// reset clears metrics and memory state. The wear recorder is replaced
// before resetMetrics runs so the old footprint is dropped rather than
// pointlessly zeroed.
func (u *shard) reset() {
	u.mem = make(map[uint64][]pcm.State)
	if u.ctrs != nil {
		u.ctrs = make(map[uint64]uint64)
	}
	if u.wear != nil {
		u.wear = wear.NewDense(u.scheme.TotalCells())
	}
	u.resetMetrics()
}
