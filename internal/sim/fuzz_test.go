package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"wlcrc/internal/fault"
	"wlcrc/internal/memline"
	"wlcrc/internal/memsys"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

// FuzzStuckRepair fuzzes the stuck-at fault pipeline end to end: the
// input selects an ECC budget, a spare-pool size, an endurance regime,
// a set of static stuck cells, and a write stream over a 16-line
// footprint; the replay runs with Verify on and graceful degradation.
// Checked invariants:
//
//   - a run only ever fails with a *DegradedError — the repair pipeline
//     must never corrupt an intended encode (Verify would abort);
//   - when no write was uncorrectable, every line reads back bit-exactly
//     through the controller read path (ECC recovery included);
//   - the entire outcome — metrics, per-line read results, retired
//     sets — is deterministic: an identical second replay reproduces it
//     exactly, uncorrectable reads included.
func FuzzStuckRepair(f *testing.F) {
	f.Add([]byte{0, 1, 0, 4, 1, 10, 3, 2, 200, 1, 0, 1, 2, 3, 0, 1, 2, 3})
	f.Add([]byte{1, 2, 5, 12, 5, 100, 2, 5, 101, 2, 5, 102, 1, 9, 60, 3, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2})
	f.Add([]byte{3, 7, 3, 0, 7, 7, 7, 7, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{2, 0, 9, 4, 0, 0, 3, 0, 1, 3, 0, 2, 3, 1, 0, 3, 1, 1, 3, 15, 255, 0, 15, 0, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			t.Skip("need a header")
		}
		cfg := fault.Config{
			Enabled:            true,
			ECCBits:            2 * (1 + int(data[0])%4),
			SpareLines:         1 + int(data[1])%8,
			MaxRetiredFraction: 1,
		}
		if e := int(data[2]) % 16; e != 0 {
			cfg.CellEndurance = uint32(e) + 1
			cfg.EnduranceSpread = 0.5
		}
		body := data[4:]
		nStatic := int(data[3]) % 24
		for len(body) >= 3 && nStatic > 0 {
			cfg.Static = append(cfg.Static, fault.StuckCell{
				Addr:  uint64(body[0]) % 16,
				Cell:  int(body[1]),
				State: pcm.State(body[2] % 4),
			})
			body = body[3:]
			nStatic--
		}
		n := len(body)
		if n == 0 {
			t.Skip("no requests")
		}
		if n > 300 {
			n = 300
		}
		rnd := prng.New(uint64(data[0])<<8 | uint64(data[2]) + 1)
		reqs := make([]trace.Request, n)
		final := map[uint64]*memline.Line{}
		for i := 0; i < n; i++ {
			var ws [memline.LineWords]uint64
			for w := range ws {
				ws[w] = rnd.Uint64()
			}
			reqs[i] = trace.Request{Addr: uint64(body[i]) % 16, New: memline.FromWords(ws)}
			final[reqs[i].Addr] = &reqs[i].New
		}

		type readResult struct {
			match bool
			err   string
		}
		replay := func() ([]Metrics, map[string]map[uint64]readResult) {
			opts := DefaultOptions() // Verify on
			opts.Faults = cfg
			s := New(opts, schemesForTest(t, "Baseline", "WLCRC-16")...)
			err := s.Run(&trace.SliceSource{Reqs: reqs}, 0)
			if err != nil {
				if !errors.As(err, new(*DegradedError)) {
					t.Fatalf("replay failed outside graceful degradation: %v", err)
				}
			}
			reads := map[string]map[uint64]readResult{}
			for _, u := range s.shards {
				rs := map[uint64]readResult{}
				var got memline.Line
				for addr, want := range final {
					ok, rerr := u.readLine(addr, &got)
					if !ok {
						t.Fatalf("%s: written addr %#x not resident", u.scheme.Name(), addr)
					}
					r := readResult{match: rerr == nil && got.Equal(want)}
					if rerr != nil {
						r.err = rerr.Error()
					}
					rs[addr] = r
					if u.fm.Stats.Uncorrectable == 0 && !r.match {
						t.Fatalf("%s: addr %#x reads back wrong with zero uncorrectable writes (stats %+v)",
							u.scheme.Name(), addr, u.fm.Stats)
					}
				}
				reads[u.scheme.Name()] = rs
			}
			return s.Metrics(), reads
		}
		m1, r1 := replay()
		m2, r2 := replay()
		if !reflect.DeepEqual(m1, m2) {
			t.Fatal("identical replays produced different metrics")
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Fatal("identical replays produced different read outcomes")
		}
	})
}

// fuzzGeometries is the geometry pool FuzzRouteSubShard draws from:
// the paper's Table II array plus small and degenerate configurations
// (down to a single bank with a single sub-shard, where the engine must
// behave like the serial simulator).
func fuzzGeometries() []memsys.Config {
	small := memsys.Config{Channels: 1, DIMMsPerChan: 1, BanksPerDIMM: 4,
		WriteQueueCap: 8, DrainThreshold: 0.8}
	odd := small
	odd.BanksPerDIMM = 3
	odd.SubShards = 2
	tiny := small
	tiny.BanksPerDIMM = 1
	tiny.SubShards = 1
	return []memsys.Config{memsys.TableII(), small, odd, tiny}
}

// FuzzRouteSubShard fuzzes the routed dispatcher over random address
// streams, geometries and worker counts. The input bytes select a
// geometry, a worker count and a line-data seed, then encode a request
// stream (two bytes per address). Checked invariants:
//
//   - the engine's cached integer routing agrees with the geometry's
//     memsys.Config.RouteOf for every address, and the unit decomposes
//     into exactly (BankOf, SubShardOf);
//   - no request is dropped or duplicated: every scheme's merged write
//     count equals the stream length;
//   - every line ends up resident in exactly the shard its address
//     routes to, and in no other shard;
//   - no request is reordered within its line's sub-shard: metrics of
//     the parallel run are bit-identical to the Workers=1 serial
//     reference of the same engine — with a counter-keyed scheme (VCC-4,
//     Verify on) in the set, any reordering of one address's writes
//     desynchronizes the write counter and fails the decode round-trip.
func FuzzRouteSubShard(f *testing.F) {
	f.Add([]byte{0, 2, 11, 0, 1, 0, 2, 1, 255, 0, 1, 2, 0})
	f.Add([]byte{1, 7, 3, 9, 9, 9, 9, 9, 9, 0, 0, 1, 1, 2, 2, 3, 3})
	f.Add([]byte{2, 255, 42, 0, 0, 0, 1, 7, 7, 7, 7, 7, 7, 0, 1, 0, 1})
	f.Add([]byte{3, 1, 99, 5, 5, 5, 5, 4, 4, 250, 250, 3, 141, 59, 26})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			t.Skip("need header + at least one address")
		}
		geos := fuzzGeometries()
		geo := geos[int(data[0])%len(geos)]
		units := geo.RouteUnits()
		workers := int(data[1])%(units+2) + 1 // deliberately past the cap sometimes
		rnd := prng.New(uint64(data[2]) + 1)

		body := data[3:]
		n := len(body) / 2
		if n > 512 {
			n = 512
		}
		reqs := make([]trace.Request, n)
		for i := 0; i < n; i++ {
			addr := uint64(body[2*i])<<8 | uint64(body[2*i+1])
			var ws [memline.LineWords]uint64
			for w := range ws {
				ws[w] = rnd.Uint64()
			}
			reqs[i] = trace.Request{Addr: addr, New: memline.FromWords(ws)}
		}

		opts := DefaultOptions() // Verify on
		opts.Geometry = geo
		opts.Workers = workers
		schemes := schemesForTest(t, "Baseline", "WLCRC-16", "VCC-4")
		e := NewEngine(opts, schemes...)

		// Routing agreement with the serial reference formulas.
		k := geo.SubShardsPerBank()
		for i := range reqs {
			addr := reqs[i].Addr
			u := e.routeOf(addr)
			if u != geo.RouteOf(addr) {
				t.Fatalf("engine routes %#x to unit %d, geometry says %d", addr, u, geo.RouteOf(addr))
			}
			if u < 0 || u >= units {
				t.Fatalf("unit %d out of range [0,%d)", u, units)
			}
			if bank := u / k; bank != geo.BankOf(addr) {
				t.Fatalf("unit %d of %#x implies bank %d, BankOf says %d", u, addr, bank, geo.BankOf(addr))
			}
			if sub := u % k; sub != geo.SubShardOf(addr) {
				t.Fatalf("unit %d of %#x implies sub-shard %d, SubShardOf says %d", u, addr, sub, geo.SubShardOf(addr))
			}
		}

		if err := e.Run(&trace.SliceSource{Reqs: reqs}, 0); err != nil {
			t.Fatalf("parallel run (workers=%d): %v", workers, err)
		}
		for _, m := range e.Metrics() {
			if m.Writes != n {
				t.Fatalf("%s: %d writes merged, want %d (dropped or duplicated requests)",
					m.Scheme, m.Writes, n)
			}
		}

		// Residency: each address's line lives in exactly its routed
		// shard (checked for every scheme's shard array).
		want := map[uint64]bool{}
		for i := range reqs {
			want[reqs[i].Addr] = true
		}
		for si := range schemes {
			seen := map[uint64]bool{}
			for u := 0; u < units; u++ {
				sh := e.shards[si*units+u]
				var bad error
				sh.eachResident(func(addr uint64) {
					if e.routeOf(addr) != u {
						bad = fmt.Errorf("scheme %d: addr %#x resident in unit %d, routes to %d",
							si, addr, u, e.routeOf(addr))
					}
					if seen[addr] {
						bad = fmt.Errorf("scheme %d: addr %#x resident in two shards", si, addr)
					}
					seen[addr] = true
				})
				if bad != nil {
					t.Fatal(bad)
				}
			}
			if !reflect.DeepEqual(want, seen) {
				t.Fatalf("scheme %d: resident address set has %d entries, trace wrote %d",
					si, len(seen), len(want))
			}
		}

		// Order within each sub-shard: bit-identical to the serial run.
		opts.Workers = 1
		ref := NewEngine(opts, schemesForTest(t, "Baseline", "WLCRC-16", "VCC-4")...)
		if err := ref.Run(&trace.SliceSource{Reqs: reqs}, 0); err != nil {
			t.Fatalf("serial run: %v", err)
		}
		if wantM, gotM := ref.Metrics(), e.Metrics(); !reflect.DeepEqual(wantM, gotM) {
			t.Fatalf("workers=%d metrics differ from serial reference", workers)
		}
	})
}
