package sim

import (
	"testing"

	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
	"wlcrc/internal/workload"
)

func TestDisturbedCellsSampling(t *testing.T) {
	dm := pcm.DefaultDisturb()
	states := []pcm.State{pcm.S3, pcm.S1, pcm.S3, pcm.S2}
	changed := []bool{false, true, false, false}
	rnd := prng.New(5)
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		for _, c := range dm.DisturbedCells(states, changed, rnd) {
			counts[c]++
		}
	}
	// Cell 0 (S3, exposed): ~27.6%. Cell 2 (S3, exposed): ~27.6%.
	// Cell 1 written, cell 3 not exposed (neighbor 2 idle): never.
	if counts[1] != 0 || counts[3] != 0 {
		t.Errorf("non-disturbable cells hit: %v", counts)
	}
	for _, c := range []int{0, 2} {
		rate := float64(counts[c]) / n
		if rate < 0.25 || rate > 0.31 {
			t.Errorf("cell %d rate %.3f, want ~0.276", c, rate)
		}
	}
}

func TestVnREliminatesErrorsWithinFiveIterations(t *testing.T) {
	// The paper: "write disturbance errors can be completely removed if
	// 3-5 iterations of VnR are used."
	opts := DefaultOptions()
	opts.InjectFaults = true
	opts.Seed = 11
	s := New(opts, schemesForTest(t, "Baseline", "WLCRC-16")...)
	p, _ := workload.ProfileByName("lesl") // most disturbance-prone
	if err := s.Run(&workload.Limited{Src: workload.NewGenerator(p, 128, 9), N: 2000}, 0); err != nil {
		t.Fatal(err)
	}
	for _, m := range s.Metrics() {
		if m.VnR.InjectedErrors == 0 {
			t.Errorf("%s: no faults injected on lesl", m.Scheme)
		}
		if m.VnR.Residual != 0 {
			t.Errorf("%s: %d residual errors after VnR", m.Scheme, m.VnR.Residual)
		}
		if m.VnR.RestoreWrites != m.VnR.InjectedErrors {
			t.Errorf("%s: restored %d != injected %d",
				m.Scheme, m.VnR.RestoreWrites, m.VnR.InjectedErrors)
		}
		// The paper: 3-5 VnR iterations remove all errors in practice;
		// the average sits well below that.
		if m.AvgVnRIterations() <= 0 || m.AvgVnRIterations() > 3 {
			t.Errorf("%s: avg VnR iterations = %.2f, want (0, 3]",
				m.Scheme, m.AvgVnRIterations())
		}
		t.Logf("%-10s injected %d, restores %d, avg iters %.3f, max iters %d, restore energy %.0f pJ total",
			m.Scheme, m.VnR.InjectedErrors, m.VnR.RestoreWrites,
			m.AvgVnRIterations(), m.VnR.MaxIterations, m.VnR.RestoreEnergyPJ)
	}
}

func TestVnRRestoreEnergySmallVsWriteEnergy(t *testing.T) {
	// VnR repairs a handful of cells per write; its energy must be a
	// small fraction of the programming energy (the paper argues the
	// bandwidth/energy effect is limited).
	opts := DefaultOptions()
	opts.InjectFaults = true
	opts.Seed = 3
	s := New(opts, schemesForTest(t, "WLCRC-16")...)
	p, _ := workload.ProfileByName("zeus")
	if err := s.Run(&workload.Limited{Src: workload.NewGenerator(p, 128, 4), N: 2000}, 0); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()[0]
	if frac := m.VnR.RestoreEnergyPJ / m.Energy.Energy(); frac > 0.25 {
		t.Errorf("VnR energy is %.1f%% of write energy, implausibly high", 100*frac)
	}
}

func TestVnRDisabledByDefault(t *testing.T) {
	s := New(DefaultOptions(), schemesForTest(t, "Baseline")...)
	p, _ := workload.ProfileByName("gcc")
	if err := s.Run(&workload.Limited{Src: workload.NewGenerator(p, 64, 1), N: 200}, 0); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics()[0]; m.VnR.InjectedErrors != 0 || m.VnR.Iterations != 0 {
		t.Errorf("VnR ran without InjectFaults: %+v", m.VnR)
	}
}
