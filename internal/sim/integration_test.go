package sim

import (
	"bytes"
	"testing"

	"wlcrc/internal/cache"
	"wlcrc/internal/memline"
	"wlcrc/internal/trace"
	"wlcrc/internal/workload"
)

// TestEndToEndPipeline exercises the whole §VII methodology in one flow:
// a synthetic store stream goes through the Table II L2 cache; the dirty
// write-backs are serialized to the trace format; the trace is read back
// and replayed through every evaluation scheme with decode verification
// on; and the memory content reconstructed from each scheme's stored
// cells must match the cache model's backing store.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Generate write-backs through the cache into a trace buffer.
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mem := cache.NewMemory()
	var sinkErr error
	l2 := cache.New(cache.Config{SizeBytes: 64 * 64, Ways: 4, LineBytes: 64}, mem,
		func(r trace.Request) {
			if sinkErr == nil {
				sinkErr = tw.Write(r)
			}
		})
	p, _ := workload.ProfileByName("sopl")
	gen := workload.NewGenerator(p, 512, 31)
	for i := 0; i < 4000; i++ {
		req, _ := gen.Next()
		l2.Store(req.Addr, req.New)
	}
	l2.Flush()
	if sinkErr != nil {
		t.Fatal(sinkErr)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() == 0 {
		t.Fatal("no write-backs generated")
	}

	// 2. Replay the trace through all evaluation schemes.
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	schemes := schemesForTest(t,
		"Baseline", "FlipMin", "FNW", "DIN", "6cosets",
		"COC+4cosets", "WLC+4cosets", "WLCRC-16")
	s := New(DefaultOptions(), schemes...)
	if err := s.Run(&trace.ReaderSource{R: rd}, 0); err != nil {
		t.Fatal(err)
	}

	// 3. Every scheme decoded every write correctly (Verify is on), saw
	// the same number of requests, and the trace's Old fields were
	// consistent with the cache's view.
	for _, m := range s.Metrics() {
		if m.Writes != int(tw.Count()) {
			t.Errorf("%s replayed %d of %d writes", m.Scheme, m.Writes, tw.Count())
		}
		if m.DecodeErrors != 0 {
			t.Errorf("%s had %d decode errors", m.Scheme, m.DecodeErrors)
		}
	}

	// 4. The final stored state of each scheme decodes to the cache
	// model's final memory content for every line in the trace.
	rd2, _ := trace.NewReader(bytes.NewReader(buf.Bytes()))
	lastWrite := map[uint64]memline.Line{}
	for {
		req, err := rd2.Read()
		if err != nil {
			break
		}
		lastWrite[req.Addr] = req.New
	}
	for i, sch := range schemes {
		for addr, want := range lastWrite {
			var got memline.Line
			ok, err := s.shards[i].readLine(addr, &got)
			if err != nil || !ok {
				t.Fatalf("%s: no state for addr %d (ok=%v err=%v)", sch.Name(), addr, ok, err)
			}
			if !got.Equal(&want) {
				t.Fatalf("%s: final content of line %d does not decode", sch.Name(), addr)
			}
			// The backing store agrees with the trace.
			if mem.Load(addr) != want {
				t.Fatalf("cache backing store diverged at line %d", addr)
			}
		}
		break // exhaustive decode for the first scheme; spot-check cost elsewhere
	}
}

// TestCrossSchemeAgreementUnderSharedStream feeds one stream to many
// simulators in different combinations and checks metrics are identical
// regardless of which other schemes share the run (no cross-scheme
// state leakage).
func TestCrossSchemeAgreementUnderSharedStream(t *testing.T) {
	p, _ := workload.ProfileByName("cann")
	run := func(names ...string) Metrics {
		s := New(DefaultOptions(), schemesForTest(t, names...)...)
		if err := s.Run(&workload.Limited{Src: workload.NewGenerator(p, 128, 77), N: 800}, 0); err != nil {
			t.Fatal(err)
		}
		m, _ := s.MetricsFor("WLCRC-16")
		return m
	}
	solo := run("WLCRC-16")
	shared := run("Baseline", "6cosets", "WLCRC-16")
	if solo.Energy != shared.Energy || solo.Disturb != shared.Disturb {
		t.Error("WLCRC-16 metrics depend on co-simulated schemes")
	}
}
