// Package sim is the trace-driven write simulator of §VII: it replays a
// write stream through one or more encoding schemes, maintaining each
// scheme's independent view of the PCM array (its own cell states,
// because different encodings store different states for the same data),
// and charges the differential-write energy, endurance (updated cells)
// and write-disturbance models on every request.
package sim

import (
	"fmt"

	"wlcrc/internal/core"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

// Metrics aggregates per-scheme results over a run.
type Metrics struct {
	Scheme string
	Writes int

	Energy  pcm.WriteStats   // accumulated energy / updated cells
	Disturb pcm.DisturbStats // accumulated disturbance errors

	// MaxDisturb tracks the worst single write (§VIII.C reports the
	// maximum changes little across schemes).
	MaxDisturb float64

	// CompressedWrites counts writes that took a scheme's encoded
	// (compressed) path, for coverage reporting.
	CompressedWrites int

	// DecodeErrors counts writes after which the stored line failed to
	// decode back to the written data. Always zero for a correct scheme;
	// the simulator checks when Verify is enabled.
	DecodeErrors int

	// VnR reports fault-injection / Verify-and-Restore activity when
	// Options.InjectFaults is set.
	VnR VnRStats
}

// AvgVnRIterations returns mean restore iterations per write.
func (m Metrics) AvgVnRIterations() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.VnR.Iterations) / float64(m.Writes)
}

// AvgEnergy returns mean pJ per write (data+aux).
func (m Metrics) AvgEnergy() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Energy.Energy() / float64(m.Writes)
}

// AvgEnergyData returns mean data-region pJ per write.
func (m Metrics) AvgEnergyData() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Energy.EnergyData / float64(m.Writes)
}

// AvgEnergyAux returns mean aux-region pJ per write.
func (m Metrics) AvgEnergyAux() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Energy.EnergyAux / float64(m.Writes)
}

// AvgUpdated returns mean programmed cells per write.
func (m Metrics) AvgUpdated() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.Energy.Updated()) / float64(m.Writes)
}

// AvgUpdatedData returns mean programmed data cells per write.
func (m Metrics) AvgUpdatedData() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.Energy.UpdatedData) / float64(m.Writes)
}

// AvgUpdatedAux returns mean programmed aux cells per write.
func (m Metrics) AvgUpdatedAux() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.Energy.UpdatedAux) / float64(m.Writes)
}

// AvgDisturb returns mean disturbance errors per write.
func (m Metrics) AvgDisturb() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Disturb.Errors() / float64(m.Writes)
}

// AvgDisturbData returns mean data-region disturbance errors per write.
func (m Metrics) AvgDisturbData() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Disturb.ErrorsData / float64(m.Writes)
}

// AvgDisturbAux returns mean aux-region disturbance errors per write.
func (m Metrics) AvgDisturbAux() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Disturb.ErrorsAux / float64(m.Writes)
}

// CompressedFraction returns the fraction of writes that used the
// encoded path.
func (m Metrics) CompressedFraction() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.CompressedWrites) / float64(m.Writes)
}

// Options configures a Simulator.
type Options struct {
	Energy  pcm.EnergyModel
	Disturb pcm.DisturbModel
	// SampleDisturb switches the disturbance model from deterministic
	// expected-value accounting to Monte-Carlo sampling with Seed.
	SampleDisturb bool
	Seed          uint64
	// Verify makes the simulator decode after every write and compare
	// against the written data — a continuous correctness audit.
	Verify bool
	// InjectFaults corrupts disturbed cells after each write and runs
	// the §VIII.C Verify-and-Restore loop (implies sampled disturbance).
	InjectFaults bool
	// MaxVnRIterations is a safety cap on the restore loop (0 = 16). In
	// practice the loop converges in the paper's 3-5 iterations; the cap
	// only guards against pathological restore-disturb ping-pong.
	MaxVnRIterations int
}

// DefaultOptions returns the Table II configuration with deterministic
// disturbance accounting and verification enabled.
func DefaultOptions() Options {
	return Options{
		Energy:  pcm.DefaultEnergy(),
		Disturb: pcm.DefaultDisturb(),
		Verify:  true,
	}
}

// Simulator replays write requests through a set of schemes.
type Simulator struct {
	opts    Options
	schemes []core.Scheme
	metrics []Metrics
	// mem[i] is scheme i's cell-state view of the array.
	mem []map[uint64][]pcm.State
	rnd *prng.Xoshiro256
}

// New builds a simulator for the given schemes.
func New(opts Options, schemes ...core.Scheme) *Simulator {
	s := &Simulator{
		opts:    opts,
		schemes: schemes,
		metrics: make([]Metrics, len(schemes)),
		mem:     make([]map[uint64][]pcm.State, len(schemes)),
	}
	for i, sch := range schemes {
		s.metrics[i].Scheme = sch.Name()
		s.mem[i] = make(map[uint64][]pcm.State)
	}
	if opts.SampleDisturb || opts.InjectFaults {
		s.rnd = prng.New(opts.Seed)
	}
	if s.opts.MaxVnRIterations == 0 {
		s.opts.MaxVnRIterations = 16
	}
	return s
}

// Write replays one request through every scheme.
func (s *Simulator) Write(req trace.Request) error {
	for i, sch := range s.schemes {
		old, ok := s.mem[i][req.Addr]
		if !ok {
			old = core.InitialCells(sch.TotalCells())
		}
		newCells := sch.Encode(old, &req.New)
		m := &s.metrics[i]
		m.Writes++
		m.Energy.Add(s.opts.Energy.DiffWrite(old, newCells, sch.DataCells()))
		changed := pcm.ChangedMask(old, newCells)
		var sampler pcm.Sampler
		if s.rnd != nil {
			sampler = s.rnd
		}
		d := s.opts.Disturb.CountDisturb(newCells, changed, sch.DataCells(), sampler)
		m.Disturb.Add(d)
		if e := d.Errors(); e > m.MaxDisturb {
			m.MaxDisturb = e
		}
		if isCompressedWrite(sch, newCells) {
			m.CompressedWrites++
		}
		if s.opts.InjectFaults {
			s.runVnR(m, newCells, changed, s.opts.MaxVnRIterations)
		}
		s.mem[i][req.Addr] = newCells
		if s.opts.Verify {
			got := sch.Decode(newCells)
			if !got.Equal(&req.New) {
				m.DecodeErrors++
				return fmt.Errorf("sim: %s: decode mismatch at addr %#x", sch.Name(), req.Addr)
			}
		}
	}
	return nil
}

// isCompressedWrite inspects the flag cell of compression-gated schemes.
// Schemes without a gate count every write as encoded.
func isCompressedWrite(sch core.Scheme, cells []pcm.State) bool {
	type gated interface{ Compressible(*memline.Line) bool }
	if _, ok := sch.(gated); !ok {
		return true
	}
	if sch.TotalCells() <= memline.LineCells {
		return true
	}
	// The flag-cell convention: S1 = compressed. COC+4cosets also uses
	// S2 for its 32-bit mode; only S3+ (or S2 for two-state flags) means
	// raw. Checking "not raw" per scheme family:
	flag := cells[memline.LineCells]
	switch sch.Name() {
	case "COC+4cosets":
		return flag == pcm.S1 || flag == pcm.S2
	default:
		return flag == pcm.S1
	}
}

// Run drains a source through the simulator, stopping after max requests
// when max > 0.
func (s *Simulator) Run(src trace.Source, max int) error {
	n := 0
	for {
		if max > 0 && n >= max {
			return nil
		}
		req, ok := src.Next()
		if !ok {
			return nil
		}
		if err := s.Write(req); err != nil {
			return err
		}
		n++
	}
}

// Metrics returns the accumulated per-scheme metrics, index-aligned with
// the schemes passed to New.
func (s *Simulator) Metrics() []Metrics {
	out := make([]Metrics, len(s.metrics))
	copy(out, s.metrics)
	return out
}

// MetricsFor returns the metrics of the named scheme.
func (s *Simulator) MetricsFor(name string) (Metrics, bool) {
	for _, m := range s.metrics {
		if m.Scheme == name {
			return m, true
		}
	}
	return Metrics{}, false
}

// ResetMetrics clears the accumulated metrics but keeps every scheme's
// memory state — used after a warm-up phase so reported numbers reflect
// steady-state behavior rather than cold first writes.
func (s *Simulator) ResetMetrics() {
	for i := range s.metrics {
		s.metrics[i] = Metrics{Scheme: s.schemes[i].Name()}
	}
}

// Reset clears metrics and memory state (schemes are kept).
func (s *Simulator) Reset() {
	for i := range s.metrics {
		s.metrics[i] = Metrics{Scheme: s.schemes[i].Name()}
		s.mem[i] = make(map[uint64][]pcm.State)
	}
}
