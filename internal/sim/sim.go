// Package sim is the trace-driven write simulator of §VII: it replays a
// write stream through one or more encoding schemes, maintaining each
// scheme's independent view of the PCM array (its own cell states,
// because different encodings store different states for the same data),
// and charges the differential-write energy, endurance (updated cells)
// and write-disturbance models on every request.
//
// Two replay frontends share the same per-request core (see shard.go):
//
//   - Simulator is the single-threaded reference implementation with a
//     synchronous per-request Write API.
//   - Engine is the concurrent sharded pipeline (engine.go): it fans the
//     trace out to per-scheme workers and, within a scheme, shards the
//     address space by (bank, sub-shard) routing unit (memsys geometry)
//     so independent lines replay in parallel on far more workers than
//     there are banks. Per-shard metrics are merged in a fixed order,
//     so an Engine run is bit-identical for every worker count —
//     Options.Workers = 1 is the serial mode of the same engine.
package sim

import (
	"context"
	"fmt"
	"io"
	"time"

	"wlcrc/internal/core"
	"wlcrc/internal/fault"
	"wlcrc/internal/memsys"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
	"wlcrc/internal/stats"
	"wlcrc/internal/trace"
	"wlcrc/internal/wear"
)

// Bucket widths of the per-write metric histograms. Fixed so every
// shard's histogram is mergeable with every other's: per-write energy in
// 1024 pJ steps (64 buckets span 0..64k pJ, beyond the worst realistic
// full-line write; the rest overflows), updated cells in steps of 8 (64
// buckets span 0..512, above any scheme's total cell count).
const (
	energyHistBucketPJ     = 1024
	updatedHistBucketCells = 8
)

// Metrics aggregates per-scheme results over a run.
type Metrics struct {
	Scheme string
	Writes int

	Energy  pcm.WriteStats   // accumulated energy / updated cells
	Disturb pcm.DisturbStats // accumulated disturbance errors

	// MaxDisturb tracks the worst single write (§VIII.C reports the
	// maximum changes little across schemes).
	MaxDisturb float64

	// CompressedWrites counts writes that took a scheme's encoded
	// (compressed) path, for coverage reporting.
	CompressedWrites int

	// DecodeErrors counts writes after which the stored line failed to
	// decode back to the written data. Always zero for a correct scheme;
	// the simulator checks when Verify is enabled.
	DecodeErrors int

	// VnR reports fault-injection / Verify-and-Restore activity when
	// Options.InjectFaults is set.
	VnR VnRStats

	// Faults reports the stuck-at fault lifecycle — stuck cells,
	// repair-pipeline recourse counts, retired lines, uncorrectable
	// writes — when Options.Faults.Enabled is set.
	Faults fault.Stats

	// EnergyHist is the distribution of per-write total programming
	// energy (pJ), and UpdatedHist of per-write programmed cells — the
	// online form of the Figure 8/9 series: fixed-bucket, mergeable, and
	// cheap enough to maintain on every request.
	EnergyHist  stats.Histogram
	UpdatedHist stats.Histogram

	// Wear digests the per-cell wear distribution (worst-cell wear,
	// log2 wear-level CDF buckets, first-failure projection via
	// Wear.LifetimeWrites) when Options.TrackWear is enabled; otherwise
	// it stays zero.
	Wear wear.Summary
}

// newMetrics returns an empty accumulator for one scheme with the
// histogram bucket widths configured. All metric construction funnels
// through here so every shard's histograms stay mergeable.
func newMetrics(scheme string) Metrics {
	return Metrics{
		Scheme:      scheme,
		EnergyHist:  stats.NewHistogram(energyHistBucketPJ),
		UpdatedHist: stats.NewHistogram(updatedHistBucketCells),
	}
}

// Merge folds another shard's metrics for the same scheme into m:
// counters and accumulators add, worst-case trackers take the maximum.
// The Engine merges its per-bank shards in a fixed order so the result
// is independent of how work was scheduled across workers.
func (m *Metrics) Merge(o Metrics) {
	m.Writes += o.Writes
	m.Energy.Add(o.Energy)
	m.Disturb.Add(o.Disturb)
	if o.MaxDisturb > m.MaxDisturb {
		m.MaxDisturb = o.MaxDisturb
	}
	m.CompressedWrites += o.CompressedWrites
	m.DecodeErrors += o.DecodeErrors
	m.VnR.Merge(o.VnR)
	m.Faults.Merge(o.Faults)
	m.EnergyHist.Merge(o.EnergyHist)
	m.UpdatedHist.Merge(o.UpdatedHist)
	m.Wear.Merge(o.Wear)
}

// AvgVnRIterations returns mean restore iterations per write.
func (m Metrics) AvgVnRIterations() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.VnR.Iterations) / float64(m.Writes)
}

// AvgEnergy returns mean pJ per write (data+aux).
func (m Metrics) AvgEnergy() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Energy.Energy() / float64(m.Writes)
}

// AvgEnergyData returns mean data-region pJ per write.
func (m Metrics) AvgEnergyData() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Energy.EnergyData / float64(m.Writes)
}

// AvgEnergyAux returns mean aux-region pJ per write.
func (m Metrics) AvgEnergyAux() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Energy.EnergyAux / float64(m.Writes)
}

// AvgUpdated returns mean programmed cells per write.
func (m Metrics) AvgUpdated() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.Energy.Updated()) / float64(m.Writes)
}

// AvgUpdatedData returns mean programmed data cells per write.
func (m Metrics) AvgUpdatedData() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.Energy.UpdatedData) / float64(m.Writes)
}

// AvgUpdatedAux returns mean programmed aux cells per write.
func (m Metrics) AvgUpdatedAux() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.Energy.UpdatedAux) / float64(m.Writes)
}

// AvgDisturb returns mean disturbance errors per write.
func (m Metrics) AvgDisturb() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Disturb.Errors() / float64(m.Writes)
}

// AvgDisturbData returns mean data-region disturbance errors per write.
func (m Metrics) AvgDisturbData() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Disturb.ErrorsData / float64(m.Writes)
}

// AvgDisturbAux returns mean aux-region disturbance errors per write.
func (m Metrics) AvgDisturbAux() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Disturb.ErrorsAux / float64(m.Writes)
}

// CompressedFraction returns the fraction of writes that used the
// encoded path.
func (m Metrics) CompressedFraction() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.CompressedWrites) / float64(m.Writes)
}

// Options configures a Simulator or an Engine.
type Options struct {
	Energy  pcm.EnergyModel
	Disturb pcm.DisturbModel
	// SampleDisturb switches the disturbance model from deterministic
	// expected-value accounting to Monte-Carlo sampling with Seed.
	SampleDisturb bool
	Seed          uint64
	// Verify makes the simulator decode after every write and compare
	// against the written data — a continuous correctness audit.
	Verify bool
	// InjectFaults corrupts disturbed cells after each write and runs
	// the §VIII.C Verify-and-Restore loop (implies sampled disturbance).
	InjectFaults bool
	// MaxVnRIterations is a safety cap on the restore loop (0 = 16). In
	// practice the loop converges in the paper's 3-5 iterations; the cap
	// only guards against pathological restore-disturb ping-pong.
	MaxVnRIterations int

	// Faults enables the stuck-at fault lifetime model and its repair
	// pipeline (internal/fault): cells wear out against deterministic
	// endurance thresholds and freeze at their last-programmed state,
	// writes that disagree with stuck cells are repaired by stuck-aware
	// re-encoding, ECC, or line retirement to a spare pool, and
	// Metrics.Faults reports the lifecycle. Off by default; when off the
	// replay hot path carries no fault overhead.
	Faults fault.Config
	// FailFast restores the pre-fault-model failure semantics: an
	// uncorrectable stuck line (ECC budget exceeded, spare pool empty)
	// freezes its unit and aborts the run with the earliest such error,
	// exactly like a Verify decode mismatch. With FailFast off (the
	// default) uncorrectable writes are only counted and the full trace
	// replays; a run whose retired-line fraction exceeds
	// Faults.MaxRetiredFraction — or that recorded any uncorrectable
	// write — then returns a *DegradedError carrying the complete
	// metrics. Decode mismatches of a buggy scheme abort regardless.
	FailFast bool

	// Workers is the number of goroutines an Engine replays with.
	// 0 means runtime.GOMAXPROCS(0); 1 is the serial mode; values above
	// the routing-unit count (banks x sub-shards, see Geometry) are
	// capped at it — a (bank, sub-shard) unit is the unit of routing, so
	// under the Table II geometry up to 256 workers are useful. The
	// resolved count is returned by Engine.Workers and reported in every
	// Progress callback. The worker count only changes wall-clock time,
	// never results: Engine metrics are bit-identical across worker
	// counts. Ignored by Simulator.
	Workers int
	// Geometry is the memory organization whose bank and sub-shard
	// functions shard the address space inside an Engine (the zero value
	// means the paper's Table II geometry: 64 banks, 4 sub-shards per
	// bank, 256 routing units). Ignored by Simulator.
	Geometry memsys.Config
	// IngestRouters controls the Engine's parallel ingest stage (see
	// ingest.go): the front-end that reads the source in fixed-size
	// chunks and pre-routes them on dedicated goroutines before the
	// dispatcher reassembles them in order. 0 (the default) auto-sizes —
	// disabled on a single-CPU machine, otherwise min(4, GOMAXPROCS);
	// a negative value forces the classic in-line dispatcher; a positive
	// value requests exactly that many routers. Like Workers, the
	// setting only changes wall-clock time, never results: replay output
	// is bit-identical with ingest on or off, for any router count, and
	// for Source, BatchSource or MappedSource inputs alike. The resolved
	// count is reported by Engine.IngestRouters. Ignored by Simulator.
	IngestRouters int

	// ScalarStorage forces plane-capable schemes onto the reference
	// scalar store (a map of []pcm.State lines with per-write
	// pack/unpack) instead of the plane-native arena. Results are
	// bit-identical either way — the scalar path exists as the
	// equivalence reference and as the baseline the benchguard arena
	// gate measures the plane path against. Leave it off outside
	// benchmarks and differential tests.
	ScalarStorage bool

	// TrackWear enables dense per-cell wear accounting: every programmed
	// cell of every touched line gets a uint32 program counter, and the
	// mergeable wear digest (worst-cell wear, wear-level CDF,
	// first-failure projection) is folded into Metrics.Wear. Off by
	// default because the counters cost 4 bytes per tracked cell per
	// scheme — enable it for endurance studies, not for unbounded
	// streaming footprints. Cells programmed by the Verify-and-Restore
	// repair loop are not counted, only the write itself.
	TrackWear bool

	// Progress, when non-nil, is called by Engine.Run on the dispatcher
	// goroutine roughly every ProgressInterval with live throughput and
	// queue-depth numbers, plus once when the run finishes. The callback
	// must return quickly (it stalls dispatch) and must not retain the
	// QueueDepth slice, which is reused between calls. Ignored by
	// Simulator.
	Progress func(Progress)
	// ProgressInterval is the minimum time between Progress calls
	// (0 = 500ms).
	ProgressInterval time.Duration
}

// Progress is one live report from the Engine dispatcher.
type Progress struct {
	// Dispatched is the number of requests handed to workers so far.
	Dispatched uint64
	// Elapsed is the time since Run started.
	Elapsed time.Duration
	// Workers is the resolved worker count of the run — Options.Workers
	// after clamping to [1, units] (surfacing what a requested count
	// actually resolved to, since silent capping hid it before).
	Workers int
	// QueueDepth holds the number of batches queued per worker, a
	// saturation signal: depths pinned at the channel capacity mean the
	// workers, not the trace source, bound throughput. The slice is
	// reused between callbacks — copy it to keep it.
	QueueDepth []int
	// Done marks the final report of a Run.
	Done bool
}

// Rate returns the average dispatch rate in requests per second.
func (p Progress) Rate() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Dispatched) / p.Elapsed.Seconds()
}

// ProgressPrinter returns an Options.Progress callback that renders a
// single live status line to w (mid-run reports overwrite in place via
// \r; the final report ends the line) — the shared -progress
// implementation of the CLIs.
func ProgressPrinter(w io.Writer) func(Progress) {
	return func(p Progress) {
		if p.Done {
			fmt.Fprintf(w, "\rreplayed %d requests in %v (%s)            \n",
				p.Dispatched, p.Elapsed.Round(10*time.Millisecond), stats.Rate(p.Dispatched, p.Elapsed))
			return
		}
		fmt.Fprintf(w, "\rreplaying: %d requests, %s, queues %v   ",
			p.Dispatched, stats.Rate(p.Dispatched, p.Elapsed), p.QueueDepth)
	}
}

// DefaultOptions returns the Table II configuration with deterministic
// disturbance accounting and verification enabled.
func DefaultOptions() Options {
	return Options{
		Energy:  pcm.DefaultEnergy(),
		Disturb: pcm.DefaultDisturb(),
		Verify:  true,
	}
}

// Simulator replays write requests through a set of schemes, one request
// at a time on the calling goroutine. It is the single-threaded
// reference implementation; Engine is the concurrent counterpart and is
// checked against it. When disturbance is sampled, every scheme draws
// from one shared PRNG stream in scheme order (the historical behavior).
type Simulator struct {
	opts Options
	// shards holds one full-address-space shard per scheme.
	shards []*shard
	// seq numbers requests across Write/Run calls — the serial
	// counterpart of the engine's global trace sequence, feeding the
	// fault model's writes-to-first-retirement accounting.
	seq uint64
}

// New builds a simulator for the given schemes.
func New(opts Options, schemes ...core.Scheme) *Simulator {
	if opts.MaxVnRIterations == 0 {
		opts.MaxVnRIterations = 16
	}
	sampled := opts.SampleDisturb || opts.InjectFaults
	var rnd *prng.Xoshiro256
	if sampled || opts.Faults.Enabled {
		rnd = prng.New(opts.Seed)
	}
	var ecc *fault.ECC
	var fcfg fault.Config
	if opts.Faults.Enabled {
		fcfg = opts.Faults.WithDefaults()
		ecc = fault.NewECC(fcfg.ECCBits)
	}
	s := &Simulator{opts: opts}
	s.shards = make([]*shard, len(schemes))
	for i, sch := range schemes {
		var fm *fault.Map
		if opts.Faults.Enabled {
			// Seed each scheme's map from the shared stream (drawn in
			// fixed scheme order at construction, before any replay).
			fm = fault.NewMap(fcfg, rnd.Uint64(), sch.TotalCells(), ecc)
			for _, sc := range fcfg.Static {
				fm.SeedStatic(sc)
			}
		}
		shardRnd := rnd
		if !sampled {
			shardRnd = nil
		}
		s.shards[i] = newShard(&s.opts, sch, shardRnd, fm)
	}
	return s
}

// Write replays one request through every scheme.
func (s *Simulator) Write(req trace.Request) error {
	seq := s.seq
	s.seq++
	for _, u := range s.shards {
		if err := u.apply(&req, seq); err != nil {
			return err
		}
	}
	return nil
}

// Run drains a source through the simulator, stopping after max requests
// when max > 0.
func (s *Simulator) Run(src trace.Source, max int) error {
	return s.RunContext(context.Background(), src, max)
}

// RunContext is Run with cooperative cancellation: the loop checks ctx
// between requests and returns ctx.Err() with the metrics of the prefix
// replayed so far.
func (s *Simulator) RunContext(ctx context.Context, src trace.Source, max int) error {
	if c, ok := src.(interface{ Count() uint64 }); ok {
		hint := c.Count()
		if max > 0 && uint64(max) < hint {
			hint = uint64(max)
		}
		if hint > 1<<16 {
			hint = 1 << 16
		}
		for _, u := range s.shards {
			u.reserve(int(hint))
		}
	}
	done := ctx.Done()
	n := 0
	for {
		if canceled(done) {
			return ctx.Err()
		}
		if max > 0 && n >= max {
			break
		}
		req, ok := src.Next()
		if !ok {
			break
		}
		if err := s.Write(req); err != nil {
			return err
		}
		n++
	}
	return degradedError(s.Metrics(), s.opts.Faults)
}

// Metrics returns the accumulated per-scheme metrics, index-aligned with
// the schemes passed to New.
func (s *Simulator) Metrics() []Metrics {
	out := make([]Metrics, len(s.shards))
	for i, u := range s.shards {
		out[i] = u.metricsView()
	}
	return out
}

// Snapshot returns the same per-scheme metrics as Metrics. It exists
// for Replayer-interface parity with Engine.Snapshot; the Simulator is
// single-threaded, so there is no concurrent-read story to solve.
func (s *Simulator) Snapshot() []Metrics { return s.Metrics() }

// MetricsFor returns the metrics of the named scheme.
func (s *Simulator) MetricsFor(name string) (Metrics, bool) {
	for _, u := range s.shards {
		if u.m.Scheme == name {
			return u.metricsView(), true
		}
	}
	return Metrics{}, false
}

// ResetMetrics clears the accumulated metrics but keeps every scheme's
// memory state — used after a warm-up phase so reported numbers reflect
// steady-state behavior rather than cold first writes.
func (s *Simulator) ResetMetrics() {
	for _, u := range s.shards {
		u.resetMetrics()
	}
}

// Reset clears metrics and memory state (schemes are kept).
func (s *Simulator) Reset() {
	for _, u := range s.shards {
		u.reset()
	}
	s.seq = 0
}
