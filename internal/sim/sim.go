// Package sim is the trace-driven write simulator of §VII: it replays a
// write stream through one or more encoding schemes, maintaining each
// scheme's independent view of the PCM array (its own cell states,
// because different encodings store different states for the same data),
// and charges the differential-write energy, endurance (updated cells)
// and write-disturbance models on every request.
//
// Two replay frontends share the same per-request core (see shard.go):
//
//   - Simulator is the single-threaded reference implementation with a
//     synchronous per-request Write API.
//   - Engine is the concurrent sharded pipeline (engine.go): it fans the
//     trace out to per-scheme workers and, within a scheme, shards the
//     address space by bank (memsys geometry) so independent lines
//     replay in parallel. Per-shard metrics are merged in a fixed order,
//     so an Engine run is bit-identical for every worker count —
//     Options.Workers = 1 is the serial mode of the same engine.
package sim

import (
	"wlcrc/internal/core"
	"wlcrc/internal/memsys"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

// Metrics aggregates per-scheme results over a run.
type Metrics struct {
	Scheme string
	Writes int

	Energy  pcm.WriteStats   // accumulated energy / updated cells
	Disturb pcm.DisturbStats // accumulated disturbance errors

	// MaxDisturb tracks the worst single write (§VIII.C reports the
	// maximum changes little across schemes).
	MaxDisturb float64

	// CompressedWrites counts writes that took a scheme's encoded
	// (compressed) path, for coverage reporting.
	CompressedWrites int

	// DecodeErrors counts writes after which the stored line failed to
	// decode back to the written data. Always zero for a correct scheme;
	// the simulator checks when Verify is enabled.
	DecodeErrors int

	// VnR reports fault-injection / Verify-and-Restore activity when
	// Options.InjectFaults is set.
	VnR VnRStats
}

// Merge folds another shard's metrics for the same scheme into m:
// counters and accumulators add, worst-case trackers take the maximum.
// The Engine merges its per-bank shards in a fixed order so the result
// is independent of how work was scheduled across workers.
func (m *Metrics) Merge(o Metrics) {
	m.Writes += o.Writes
	m.Energy.Add(o.Energy)
	m.Disturb.Add(o.Disturb)
	if o.MaxDisturb > m.MaxDisturb {
		m.MaxDisturb = o.MaxDisturb
	}
	m.CompressedWrites += o.CompressedWrites
	m.DecodeErrors += o.DecodeErrors
	m.VnR.Merge(o.VnR)
}

// AvgVnRIterations returns mean restore iterations per write.
func (m Metrics) AvgVnRIterations() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.VnR.Iterations) / float64(m.Writes)
}

// AvgEnergy returns mean pJ per write (data+aux).
func (m Metrics) AvgEnergy() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Energy.Energy() / float64(m.Writes)
}

// AvgEnergyData returns mean data-region pJ per write.
func (m Metrics) AvgEnergyData() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Energy.EnergyData / float64(m.Writes)
}

// AvgEnergyAux returns mean aux-region pJ per write.
func (m Metrics) AvgEnergyAux() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Energy.EnergyAux / float64(m.Writes)
}

// AvgUpdated returns mean programmed cells per write.
func (m Metrics) AvgUpdated() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.Energy.Updated()) / float64(m.Writes)
}

// AvgUpdatedData returns mean programmed data cells per write.
func (m Metrics) AvgUpdatedData() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.Energy.UpdatedData) / float64(m.Writes)
}

// AvgUpdatedAux returns mean programmed aux cells per write.
func (m Metrics) AvgUpdatedAux() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.Energy.UpdatedAux) / float64(m.Writes)
}

// AvgDisturb returns mean disturbance errors per write.
func (m Metrics) AvgDisturb() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Disturb.Errors() / float64(m.Writes)
}

// AvgDisturbData returns mean data-region disturbance errors per write.
func (m Metrics) AvgDisturbData() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Disturb.ErrorsData / float64(m.Writes)
}

// AvgDisturbAux returns mean aux-region disturbance errors per write.
func (m Metrics) AvgDisturbAux() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.Disturb.ErrorsAux / float64(m.Writes)
}

// CompressedFraction returns the fraction of writes that used the
// encoded path.
func (m Metrics) CompressedFraction() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.CompressedWrites) / float64(m.Writes)
}

// Options configures a Simulator or an Engine.
type Options struct {
	Energy  pcm.EnergyModel
	Disturb pcm.DisturbModel
	// SampleDisturb switches the disturbance model from deterministic
	// expected-value accounting to Monte-Carlo sampling with Seed.
	SampleDisturb bool
	Seed          uint64
	// Verify makes the simulator decode after every write and compare
	// against the written data — a continuous correctness audit.
	Verify bool
	// InjectFaults corrupts disturbed cells after each write and runs
	// the §VIII.C Verify-and-Restore loop (implies sampled disturbance).
	InjectFaults bool
	// MaxVnRIterations is a safety cap on the restore loop (0 = 16). In
	// practice the loop converges in the paper's 3-5 iterations; the cap
	// only guards against pathological restore-disturb ping-pong.
	MaxVnRIterations int

	// Workers is the number of goroutines an Engine replays with.
	// 0 means runtime.GOMAXPROCS(0); 1 is the serial mode. The worker
	// count only changes wall-clock time, never results: Engine metrics
	// are bit-identical across worker counts. Ignored by Simulator.
	Workers int
	// Geometry is the memory organization whose bank function shards the
	// address space inside an Engine (the zero value means the paper's
	// Table II geometry, 64 banks). Ignored by Simulator.
	Geometry memsys.Config
}

// DefaultOptions returns the Table II configuration with deterministic
// disturbance accounting and verification enabled.
func DefaultOptions() Options {
	return Options{
		Energy:  pcm.DefaultEnergy(),
		Disturb: pcm.DefaultDisturb(),
		Verify:  true,
	}
}

// Simulator replays write requests through a set of schemes, one request
// at a time on the calling goroutine. It is the single-threaded
// reference implementation; Engine is the concurrent counterpart and is
// checked against it. When disturbance is sampled, every scheme draws
// from one shared PRNG stream in scheme order (the historical behavior).
type Simulator struct {
	opts Options
	// shards holds one full-address-space shard per scheme.
	shards []*shard
}

// New builds a simulator for the given schemes.
func New(opts Options, schemes ...core.Scheme) *Simulator {
	if opts.MaxVnRIterations == 0 {
		opts.MaxVnRIterations = 16
	}
	var rnd *prng.Xoshiro256
	if opts.SampleDisturb || opts.InjectFaults {
		rnd = prng.New(opts.Seed)
	}
	s := &Simulator{opts: opts}
	s.shards = make([]*shard, len(schemes))
	for i, sch := range schemes {
		s.shards[i] = newShard(&s.opts, sch, rnd)
	}
	return s
}

// Write replays one request through every scheme.
func (s *Simulator) Write(req trace.Request) error {
	for _, u := range s.shards {
		if err := u.apply(&req); err != nil {
			return err
		}
	}
	return nil
}

// Run drains a source through the simulator, stopping after max requests
// when max > 0.
func (s *Simulator) Run(src trace.Source, max int) error {
	n := 0
	for {
		if max > 0 && n >= max {
			return nil
		}
		req, ok := src.Next()
		if !ok {
			return nil
		}
		if err := s.Write(req); err != nil {
			return err
		}
		n++
	}
}

// Metrics returns the accumulated per-scheme metrics, index-aligned with
// the schemes passed to New.
func (s *Simulator) Metrics() []Metrics {
	out := make([]Metrics, len(s.shards))
	for i, u := range s.shards {
		out[i] = u.m
	}
	return out
}

// MetricsFor returns the metrics of the named scheme.
func (s *Simulator) MetricsFor(name string) (Metrics, bool) {
	for _, u := range s.shards {
		if u.m.Scheme == name {
			return u.m, true
		}
	}
	return Metrics{}, false
}

// ResetMetrics clears the accumulated metrics but keeps every scheme's
// memory state — used after a warm-up phase so reported numbers reflect
// steady-state behavior rather than cold first writes.
func (s *Simulator) ResetMetrics() {
	for _, u := range s.shards {
		u.resetMetrics()
	}
}

// Reset clears metrics and memory state (schemes are kept).
func (s *Simulator) Reset() {
	for _, u := range s.shards {
		u.reset()
	}
}
