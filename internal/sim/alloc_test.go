package sim

import (
	"testing"

	"wlcrc/internal/core"
	"wlcrc/internal/fault"
	"wlcrc/internal/trace"
	"wlcrc/internal/workload"
)

// allocSchemes is every evaluation scheme plus the remaining WLCRC
// granularities and the VCC family — the full set whose steady-state
// replay must be allocation-free. The Enc(...) wrapper is exempt: its
// ciphertext staging line cycles through a sync.Pool, which is
// allocation-free in steady state but may refill after a GC, so it has
// no hard zero-alloc guarantee to assert.
var allocSchemes = []string{
	"Baseline", "FlipMin", "FNW", "DIN", "6cosets", "COC+4cosets",
	"WLC+4cosets", "WLC+3cosets",
	"WLCRC-8", "WLCRC-16", "WLCRC-32", "WLCRC-64",
	"VCC-2", "VCC-4", "VCC-8",
}

// allocFixture builds a shard and a warmed request set: every address
// has been written once, so the measured loop only exercises the
// steady-state rewrite path.
func allocFixture(t *testing.T, name string, opts Options) (*shard, []trace.Request) {
	t.Helper()
	sch, err := core.NewScheme(name, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if opts.MaxVnRIterations == 0 {
		opts.MaxVnRIterations = 16
	}
	u := newShard(&opts, sch, nil, nil)
	p, ok := workload.ProfileByName("gcc")
	if !ok {
		t.Fatal("gcc profile missing")
	}
	src := trace.Record(workload.NewGenerator(p, 64, 11), 256)
	reqs := src.Reqs
	for i := range reqs {
		if err := u.apply(&reqs[i], uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return u, reqs
}

// TestSteadyStateApplyZeroAllocs is the PR's acceptance criterion: with
// deterministic disturbance accounting and Verify off, replaying a
// warmed address space performs zero heap allocations per request, for
// every scheme.
func TestSteadyStateApplyZeroAllocs(t *testing.T) {
	for _, name := range allocSchemes {
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Verify = false
			u, reqs := allocFixture(t, name, opts)
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				if err := u.apply(&reqs[i%len(reqs)], uint64(i)); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if avg != 0 {
				t.Errorf("%s: steady-state apply allocates %.2f objects/op, want 0", name, avg)
			}
		})
	}
}

// TestSteadyStateApplyZeroAllocsWear extends the guarantee to dense
// wear tracking: once a line has a wear slot, recording its programmed
// cells is pure array increments.
func TestSteadyStateApplyZeroAllocsWear(t *testing.T) {
	for _, name := range []string{"Baseline", "WLCRC-16"} {
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Verify = false
			opts.TrackWear = true
			u, reqs := allocFixture(t, name, opts)
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				if err := u.apply(&reqs[i%len(reqs)], uint64(i)); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if avg != 0 {
				t.Errorf("%s: wear-tracking apply allocates %.2f objects/op, want 0", name, avg)
			}
			if u.wear.Summary().MaxCellWear == 0 {
				t.Errorf("%s: wear not recorded", name)
			}
		})
	}
}

// routedBatch wraps warmed requests as one routed unit-batch so the
// alloc tests can drive the engine's batch-encode entry point
// (shard.applyRun) directly.
func routedBatch(reqs []trace.Request) []routedReq {
	rs := make([]routedReq, len(reqs))
	for i := range reqs {
		rs[i] = routedReq{seq: uint64(i), req: reqs[i]}
	}
	return rs
}

// TestSteadyStateApplyRunZeroAllocs pins the batch-encode path: after a
// warm-up pass has grown the run buffers (jobs, jobSeqs, the spare cell
// stack) to their steady-state capacity, replaying whole routed batches
// through applyRun must allocate nothing — with Verify off and on, for
// every scheme. This is the path every Engine worker runs, so it is the
// pipeline's real zero-alloc guarantee.
func TestSteadyStateApplyRunZeroAllocs(t *testing.T) {
	for _, verify := range []bool{false, true} {
		name := "verify=off"
		if verify {
			name = "verify=on"
		}
		t.Run(name, func(t *testing.T) {
			for _, scheme := range allocSchemes {
				t.Run(scheme, func(t *testing.T) {
					opts := DefaultOptions()
					opts.Verify = verify
					u, reqs := allocFixture(t, scheme, opts)
					rs := routedBatch(reqs)
					// Warm the run buffers themselves (allocFixture warmed
					// via the single-request path only).
					if _, err := u.applyRun(rs); err != nil {
						t.Fatal(err)
					}
					avg := testing.AllocsPerRun(20, func() {
						if _, err := u.applyRun(rs); err != nil {
							t.Fatal(err)
						}
					})
					if avg != 0 {
						t.Errorf("%s: steady-state applyRun allocates %.2f objects/batch, want 0",
							scheme, avg)
					}
				})
			}
		})
	}
}

// TestArenaStorageSelection pins the storage dispatch of the
// plane-native PR: every plane-capable scheme must get the arena store
// (and no scalar map), while counter-keyed schemes keep the scalar map
// path — their codecs need (addr, ctr) and have no plane entry points.
func TestArenaStorageSelection(t *testing.T) {
	opts := DefaultOptions()
	for _, name := range allocSchemes {
		sch, err := core.NewScheme(name, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		u := newShard(&opts, sch, nil, nil)
		_, wantPlanes := core.PlaneCodec(sch)
		if gotPlanes := u.arena != nil; gotPlanes != wantPlanes {
			t.Errorf("%s: arena storage = %v, PlaneCodec = %v", name, gotPlanes, wantPlanes)
		}
		if wantPlanes && u.mem != nil {
			t.Errorf("%s: plane-native shard also allocated the scalar map", name)
		}
		if !wantPlanes && u.mem == nil {
			t.Errorf("%s: scalar shard has no map store", name)
		}
	}
}

// TestSteadyStateApplyZeroAllocsStuckRepair extends the zero-alloc
// guarantee to the fault pipeline on arena storage: with static stuck
// cells live in the written footprint — so writes keep hitting the
// detection, retry and ECC paths — warmed replay must still allocate
// nothing. Endurance wear-out stays off to keep the stuck set (and
// hence the parity store) fixed after warm-up.
func TestSteadyStateApplyZeroAllocsStuckRepair(t *testing.T) {
	for _, name := range []string{"Baseline", "WLCRC-16", "6cosets"} {
		t.Run(name, func(t *testing.T) {
			sch, err := core.NewScheme(name, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			cfg := fault.Config{
				Enabled:            true,
				ECCBits:            8,
				SpareLines:         2,
				MaxRetiredFraction: 1,
			}.WithDefaults()
			fm := fault.NewMap(cfg, 99, sch.TotalCells(), fault.NewECC(cfg.ECCBits))
			for _, sc := range fault.RandomStatic(5, 24, 64) {
				fm.SeedStatic(sc)
			}
			opts := DefaultOptions()
			opts.Verify = true
			opts.MaxVnRIterations = 16
			u := newShard(&opts, sch, nil, fm)
			p, ok := workload.ProfileByName("gcc")
			if !ok {
				t.Fatal("gcc profile missing")
			}
			src := trace.Record(workload.NewGenerator(p, 64, 11), 256)
			reqs := src.Reqs
			for i := range reqs {
				if err := u.apply(&reqs[i], uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if u.fm.Stats.Detected == 0 {
				t.Fatal("warm-up never hit a stuck cell; the test is not exercising repair")
			}
			i := len(reqs)
			avg := testing.AllocsPerRun(200, func() {
				if err := u.apply(&reqs[i%len(reqs)], uint64(i)); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if avg != 0 {
				t.Errorf("%s: stuck+repair apply allocates %.2f objects/op, want 0", name, avg)
			}
		})
	}
}

// TestSteadyStateApplyZeroAllocsVerify extends the guarantee to the
// Verify path: decoding every write back through DecodeInto must not
// allocate either.
func TestSteadyStateApplyZeroAllocsVerify(t *testing.T) {
	for _, name := range allocSchemes {
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Verify = true
			u, reqs := allocFixture(t, name, opts)
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				if err := u.apply(&reqs[i%len(reqs)], uint64(i)); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if avg != 0 {
				t.Errorf("%s: verify-on apply allocates %.2f objects/op, want 0", name, avg)
			}
		})
	}
}
