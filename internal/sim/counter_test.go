package sim

import (
	"reflect"
	"testing"

	"wlcrc/internal/core"
	"wlcrc/internal/trace"
	"wlcrc/internal/workload"
)

// counterSchemeNames are the counter-keyed (encrypted-PCM) schemes the
// integration tests replay alongside the raw encrypted write.
var counterSchemeNames = []string{"Baseline", "Enc(Baseline)", "Enc(WLCRC-16)", "VCC-2", "VCC-4", "VCC-8"}

// encryptedTrace records a deterministic counter-mode encrypted stream.
func encryptedTrace(t *testing.T, n int) *trace.SliceSource {
	t.Helper()
	p, ok := workload.ProfileByName("gcc")
	if !ok {
		t.Fatal("gcc profile missing")
	}
	return trace.Record(workload.Encrypted(workload.NewGenerator(p, 256, 13), 0), n)
}

// TestEngineCounterSchemesBitIdenticalAcrossWorkers extends the
// engine's determinism guarantee to counter-keyed schemes: the per-line
// write counters live in the bank shards, and because one address
// always replays in trace order on one shard, metrics must stay
// bit-identical for every worker count — with Verify on, so every write
// also round-trips through decrypt.
func TestEngineCounterSchemesBitIdenticalAcrossWorkers(t *testing.T) {
	src := encryptedTrace(t, 2500)
	run := func(workers int) []Metrics {
		src.Rewind()
		opts := DefaultOptions() // Verify on
		opts.Workers = workers
		e := NewEngine(opts, schemesForTest(t, counterSchemeNames...)...)
		if err := e.Run(src, 0); err != nil {
			t.Fatal(err)
		}
		return e.Metrics()
	}
	baseline := run(1)
	for _, m := range baseline {
		if m.DecodeErrors != 0 {
			t.Fatalf("%s: %d decode errors", m.Scheme, m.DecodeErrors)
		}
	}
	for _, workers := range []int{2, 4, 7} {
		if got := run(workers); !reflect.DeepEqual(baseline, got) {
			t.Errorf("workers=%d metrics differ from serial run", workers)
		}
	}
}

// TestEngineCounterSchemesMatchSimulator checks the sharded engine
// against the single-threaded reference for counter-keyed schemes: the
// counter stores are per-frontend, so both must advance identically.
func TestEngineCounterSchemesMatchSimulator(t *testing.T) {
	src := encryptedTrace(t, 1500)
	ref := New(DefaultOptions(), schemesForTest(t, counterSchemeNames...)...)
	if err := ref.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	src.Rewind()
	e := NewEngine(DefaultOptions(), schemesForTest(t, counterSchemeNames...)...)
	if err := e.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	want, got := ref.Metrics(), e.Metrics()
	for i := range want {
		w, g := want[i], got[i]
		if w.Scheme != g.Scheme || w.Writes != g.Writes ||
			w.Energy.UpdatedData != g.Energy.UpdatedData ||
			w.Energy.UpdatedAux != g.Energy.UpdatedAux ||
			w.DecodeErrors != g.DecodeErrors {
			t.Errorf("%s: simulator and engine diverge: %+v vs %+v", w.Scheme, w.Energy, g.Energy)
		}
	}
}

// TestCompressionGateCollapsesOnEncryptedStream is the acceptance
// criterion of the encrypted scenario: on a counter-mode encrypted
// workload the compression-gated WLCRC baseline falls back to raw on
// essentially every write, while every VCC-n scheme still decodes
// bit-exactly and programs less energy and fewer cells than the raw
// encrypted write.
func TestCompressionGateCollapsesOnEncryptedStream(t *testing.T) {
	src := encryptedTrace(t, 3000)
	names := []string{"Baseline", "WLCRC-16", "VCC-2", "VCC-4", "VCC-8"}
	e := NewEngine(DefaultOptions(), schemesForTest(t, names...)...)
	if err := e.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	byName := map[string]Metrics{}
	for _, m := range e.Metrics() {
		if m.DecodeErrors != 0 {
			t.Fatalf("%s: %d decode errors on encrypted stream", m.Scheme, m.DecodeErrors)
		}
		byName[m.Scheme] = m
	}
	if f := byName["WLCRC-16"].CompressedFraction(); f > 0.001 {
		t.Errorf("WLCRC-16 compressed %.4f of encrypted writes, want ~0", f)
	}
	raw := byName["Baseline"]
	for _, n := range []string{"VCC-2", "VCC-4", "VCC-8"} {
		m := byName[n]
		if m.AvgEnergy() >= raw.AvgEnergy() {
			t.Errorf("%s energy %.0f pJ/write >= raw encrypted write %.0f", n, m.AvgEnergy(), raw.AvgEnergy())
		}
		if m.AvgUpdated() >= raw.AvgUpdated() {
			t.Errorf("%s updated %.1f cells/write >= raw encrypted write %.1f", n, m.AvgUpdated(), raw.AvgUpdated())
		}
	}
	// The recovery must be substantial for the larger candidate pools.
	if e8 := byName["VCC-8"].AvgEnergy(); e8 > 0.88*raw.AvgEnergy() {
		t.Errorf("VCC-8 energy %.0f recovers <12%% of the raw encrypted write %.0f", e8, raw.AvgEnergy())
	}
}

// TestShardCounterAdvances pins the counter-store semantics: one
// counter per address, starting at 1, incrementing per write, surviving
// resetMetrics but not reset.
func TestShardCounterAdvances(t *testing.T) {
	sch, err := core.NewScheme("VCC-4", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	u := newShard(&opts, sch, nil, nil)
	src := encryptedTrace(t, 1)
	req := src.Reqs[0]
	for i := 1; i <= 3; i++ {
		if err := u.apply(&req, 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if got := u.ctrs[req.Addr]; got != uint64(i) {
			t.Fatalf("after write %d: counter = %d", i, got)
		}
	}
	u.resetMetrics()
	if got := u.ctrs[req.Addr]; got != 3 {
		t.Errorf("resetMetrics cleared the counter store (ctr=%d)", got)
	}
	u.reset()
	if got := u.ctrs[req.Addr]; got != 0 {
		t.Errorf("reset kept the counter store (ctr=%d)", got)
	}
}
