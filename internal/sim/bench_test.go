package sim

// Per-layer replay benchmarks, the bottom two rungs of the ladder the
// root package's replay benchmarks sit on:
//
//	word:   internal/coset BenchmarkSWARBestWord / BenchmarkSWARApplyWord
//	line:   root BenchmarkEncodeInto (codec hot path, no simulation state)
//	shard:  BenchmarkShardApply / BenchmarkShardApplyRun (this file)
//	engine: BenchmarkEngineRun (this file), root BenchmarkReplaySerial /
//	        BenchmarkReplayParallelScaling (full dispatch pipeline)
//
// Comparing adjacent layers attributes regressions: a shard slowdown
// with flat line cost is accounting overhead; an engine slowdown with
// flat shard cost is dispatch overhead.

import (
	"fmt"
	"testing"

	"wlcrc/internal/core"
	"wlcrc/internal/fault"
	"wlcrc/internal/trace"
	"wlcrc/internal/workload"
)

// benchShard builds a warmed shard and request set for b, mirroring the
// alloc tests' fixture: every address pre-written once so the measured
// loop is the steady-state rewrite path.
func benchShard(b *testing.B, scheme string, opts Options) (*shard, []trace.Request) {
	b.Helper()
	sch, err := core.NewScheme(scheme, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if opts.MaxVnRIterations == 0 {
		opts.MaxVnRIterations = 16
	}
	u := newShard(&opts, sch, nil, nil)
	p, ok := workload.ProfileByName("gcc")
	if !ok {
		b.Fatal("gcc profile missing")
	}
	src := trace.Record(workload.NewGenerator(p, 64, 11), 256)
	for i := range src.Reqs {
		if err := u.apply(&src.Reqs[i], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	return u, src.Reqs
}

// benchShardSchemes spans the cost spectrum: plain differential write,
// the paper's headline scheme, and a counter-keyed encrypted scheme.
var benchShardSchemes = []string{"Baseline", "WLCRC-16", "VCC-4"}

// BenchmarkShardApply measures the shard layer one request at a time —
// the serial Simulator's inner loop.
func BenchmarkShardApply(b *testing.B) {
	for _, scheme := range benchShardSchemes {
		b.Run(scheme, func(b *testing.B) {
			opts := DefaultOptions()
			opts.Verify = false
			u, reqs := benchShard(b, scheme, opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := u.apply(&reqs[i%len(reqs)], uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(64)
		})
	}
}

// BenchmarkShardApplyRun measures the same work through the batch-encode
// path the Engine workers run — the delta against BenchmarkShardApply is
// what batching the scheme calls buys at the shard layer.
func BenchmarkShardApplyRun(b *testing.B) {
	for _, scheme := range benchShardSchemes {
		b.Run(scheme, func(b *testing.B) {
			opts := DefaultOptions()
			opts.Verify = false
			u, reqs := benchShard(b, scheme, opts)
			rs := make([]routedReq, len(reqs))
			for i := range reqs {
				rs[i] = routedReq{seq: uint64(i), req: reqs[i]}
			}
			if _, err := u.applyRun(rs); err != nil { // warm run buffers
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := u.applyRun(rs); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(64 * len(rs)))
		})
	}
}

// BenchmarkEngineRun measures the full engine layer at fixed small
// worker counts on a single-scheme load, isolating dispatch overhead
// from the root package's multi-scheme replay benchmarks. Each worker
// count runs with the ingest front-end off (the classic serial
// dispatcher) and with 2 router goroutines pre-routing the stream; the
// delta is what the parallel front-end buys (or costs, on a single-CPU
// box) at the engine layer.
func BenchmarkEngineRun(b *testing.B) {
	p, ok := workload.ProfileByName("gcc")
	if !ok {
		b.Fatal("gcc profile missing")
	}
	src := trace.Record(workload.NewGenerator(p, 1024, 17), 4000)
	for _, workers := range []int{1, 4} {
		for _, ingest := range []int{-1, 2} {
			name := fmt.Sprintf("workers=%d/ingest=off", workers)
			if ingest > 0 {
				name = fmt.Sprintf("workers=%d/ingest=%d", workers, ingest)
			}
			b.Run(name, func(b *testing.B) {
				opts := DefaultOptions()
				opts.Verify = false
				opts.Workers = workers
				opts.IngestRouters = ingest
				e := NewEngine(opts, schemesForBench(b, "WLCRC-16")...)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					src.Rewind()
					if err := e.Run(src, 0); err != nil {
						b.Fatal(err)
					}
				}
				writes := float64(len(src.Reqs) * b.N)
				b.ReportMetric(writes/b.Elapsed().Seconds(), "writes/s")
			})
		}
	}
}

// BenchmarkEngineRunFaults measures the fault model's replay cost at
// the engine layer on the BenchmarkEngineRun fixture: "off" is the
// fault-free configuration the benchguard fault_free_pr8 gate holds
// within 5% of the pre-fault-model engine (the stuck-map check must
// compile out to one nil test per request), "on" pays for live stuck
// maps, wear thresholds and repair classification.
func BenchmarkEngineRunFaults(b *testing.B) {
	p, ok := workload.ProfileByName("gcc")
	if !ok {
		b.Fatal("gcc profile missing")
	}
	src := trace.Record(workload.NewGenerator(p, 1024, 17), 4000)
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			opts := DefaultOptions()
			opts.Verify = false
			opts.Workers = 4
			opts.IngestRouters = -1
			if mode == "on" {
				opts.Faults = fault.Config{
					Enabled:         true,
					CellEndurance:   1 << 20, // wear tracked, onset never fires
					EnduranceSpread: 0.3,
					Static:          fault.RandomStatic(3, 64, 1024),
				}
			}
			e := NewEngine(opts, schemesForBench(b, "WLCRC-16")...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Rewind()
				if err := e.Run(src, 0); err != nil {
					b.Fatal(err)
				}
			}
			writes := float64(len(src.Reqs) * b.N)
			b.ReportMetric(writes/b.Elapsed().Seconds(), "writes/s")
		})
	}
}

func schemesForBench(b *testing.B, names ...string) []core.Scheme {
	b.Helper()
	out := make([]core.Scheme, len(names))
	for i, n := range names {
		s, err := core.NewScheme(n, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		out[i] = s
	}
	return out
}
