package sim

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"wlcrc/internal/fault"
	"wlcrc/internal/memsys"
	"wlcrc/internal/trace"
)

// determinismGeometry is a deliberately small bank array so the worker
// set {banks, banks+1} sits well inside the test's time budget while
// still exercising uneven unit-to-worker wrapping (units = banks x 4
// sub-shards = 32).
func determinismGeometry() memsys.Config {
	return memsys.Config{Channels: 1, DIMMsPerChan: 2, BanksPerDIMM: 4,
		WriteQueueCap: 16, DrainThreshold: 0.8}
}

// determinismWorkerSet is the matrix axis from the sub-bank sharding
// PR: the serial reference, small counts that wrap the units unevenly,
// the bank count itself (the old cap), one past it (the old silent-cap
// regression point), and twice the machine's CPU count.
func determinismWorkerSet(banks int) []int {
	set := []int{1, 2, 3, banks, banks + 1, 2 * runtime.NumCPU()}
	seen := map[int]bool{}
	out := set[:0]
	for _, w := range set {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// TestEngineDeterminismMatrix is the layered determinism net: for
// every accounting mode (deterministic, sampled disturbance, fault
// injection + VnR, and counter-keyed encrypted replay), every worker
// count in the matrix, and the ingest front-end both off and on, the
// engine's Metrics, post-run Snapshot and wear summaries must be
// bit-identical — reflect.DeepEqual, floats included — to the
// Workers=1, ingest-off run of the same trace. The -race CI job runs
// this matrix too, so the guarantee is checked under the race detector.
// TestScalarStorageBitIdentical is the cross-storage leg of the net:
// the same trace replayed on the plane-native arena and on the
// reference scalar store (Options.ScalarStorage) must produce
// DeepEqual metrics, snapshots, retired-line sets and errors —
// including under the full stuck-at + repair pipeline, whose plane
// fast path falls back to the scalar repair encoder on mismatches.
func TestScalarStorageBitIdentical(t *testing.T) {
	geo := determinismGeometry()
	modes := []struct {
		name  string
		src   func(t *testing.T) *trace.SliceSource
		tweak func(*Options)
	}{
		{
			name:  "deterministic",
			src:   func(t *testing.T) *trace.SliceSource { return fixedTrace(t, "gcc", 512, 2500, 11) },
			tweak: func(o *Options) {},
		},
		{
			name: "stuck+repair",
			src:  func(t *testing.T) *trace.SliceSource { return fixedTrace(t, "gcc", 96, 2500, 31) },
			tweak: func(o *Options) {
				o.Seed = 13
				o.Faults = fault.Config{
					Enabled:            true,
					CellEndurance:      8,
					EnduranceSpread:    0.5,
					ECCBits:            4,
					SpareLines:         4,
					MaxRetiredFraction: 1,
					Static:             fault.RandomStatic(5, 40, 96),
				}
			},
		},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			src := mode.src(t)
			run := func(scalar bool) (metrics []Metrics, retired [][]uint64, err error) {
				src.Rewind()
				opts := DefaultOptions()
				opts.Geometry = geo
				opts.Workers = 1
				opts.TrackWear = true
				opts.ScalarStorage = scalar
				mode.tweak(&opts)
				e := NewEngine(opts, schemesForTest(t, engineSchemeNames...)...)
				err = e.Run(src, 0)
				if err != nil && !errors.As(err, new(*DegradedError)) {
					t.Fatal(err)
				}
				return e.Metrics(), e.RetiredLines(), err
			}
			planeMetrics, planeRetired, planeErr := run(false)
			scalarMetrics, scalarRetired, scalarErr := run(true)
			if !reflect.DeepEqual(planeMetrics, scalarMetrics) {
				t.Error("plane-arena Metrics differ from scalar-storage reference")
			}
			if !reflect.DeepEqual(planeRetired, scalarRetired) {
				t.Errorf("retired-line sets differ:\nplanes: %v\nscalar: %v", planeRetired, scalarRetired)
			}
			if !reflect.DeepEqual(planeErr, scalarErr) {
				t.Errorf("run errors differ:\nplanes: %v\nscalar: %v", planeErr, scalarErr)
			}
		})
	}
}

func TestEngineDeterminismMatrix(t *testing.T) {
	geo := determinismGeometry()
	banks := geo.Banks()
	modes := []struct {
		name    string
		schemes []string
		src     func(t *testing.T) *trace.SliceSource
		tweak   func(*Options)
	}{
		{
			name:    "deterministic",
			schemes: engineSchemeNames,
			src:     func(t *testing.T) *trace.SliceSource { return fixedTrace(t, "gcc", 512, 2500, 11) },
			tweak:   func(o *Options) {},
		},
		{
			name:    "sampled",
			schemes: engineSchemeNames,
			src:     func(t *testing.T) *trace.SliceSource { return fixedTrace(t, "mcf", 512, 2500, 23) },
			tweak:   func(o *Options) { o.SampleDisturb = true; o.Seed = 42 },
		},
		{
			name:    "faults",
			schemes: engineSchemeNames,
			src:     func(t *testing.T) *trace.SliceSource { return fixedTrace(t, "libq", 512, 2500, 5) },
			tweak:   func(o *Options) { o.InjectFaults = true; o.Seed = 7 },
		},
		{
			name:    "encrypted",
			schemes: []string{"Baseline", "Enc(WLCRC-16)", "VCC-4"},
			src:     func(t *testing.T) *trace.SliceSource { return encryptedTrace(t, 2500) },
			tweak:   func(o *Options) {}, // Verify stays on: every write round-trips decrypt
		},
		{
			// Stuck-at faults plus the whole repair pipeline: tiny
			// endurance so wear onset, retries, ECC corrections,
			// retirements, spare-pool exhaustion and uncorrectable
			// writes all fire mid-trace. Graceful mode replays the full
			// trace, so the run may legitimately end in a *DegradedError
			// — which must itself be DeepEqual-identical across worker
			// counts, like the retired-line sets.
			name:    "stuck+repair",
			schemes: engineSchemeNames,
			src:     func(t *testing.T) *trace.SliceSource { return fixedTrace(t, "gcc", 96, 2500, 31) },
			tweak: func(o *Options) {
				o.Seed = 13
				o.Faults = fault.Config{
					Enabled:            true,
					CellEndurance:      8,
					EnduranceSpread:    0.5,
					ECCBits:            4,
					SpareLines:         4,
					MaxRetiredFraction: 1,
					Static:             fault.RandomStatic(5, 40, 96),
				}
			},
		},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			src := mode.src(t)
			run := func(workers, ingest int) (metrics, snapshot []Metrics, retired [][]uint64, err error) {
				src.Rewind()
				opts := DefaultOptions()
				opts.Geometry = geo
				opts.Workers = workers
				opts.IngestRouters = ingest
				opts.TrackWear = true
				mode.tweak(&opts)
				e := NewEngine(opts, schemesForTest(t, mode.schemes...)...)
				err = e.Run(src, 0)
				if err != nil && !errors.As(err, new(*DegradedError)) {
					t.Fatal(err)
				}
				return e.Metrics(), e.Snapshot(), e.RetiredLines(), err
			}
			wantMetrics, wantSnap, wantRetired, wantErr := run(1, -1)
			if wantMetrics[0].Writes != 2500 {
				t.Fatalf("serial run replayed %d writes, want 2500", wantMetrics[0].Writes)
			}
			if wantMetrics[0].Wear.Writes != 2500 || wantMetrics[0].Wear.MaxCellWear == 0 {
				t.Fatalf("serial run wear not tracked: %+v", wantMetrics[0].Wear)
			}
			if !reflect.DeepEqual(wantMetrics, wantSnap) {
				t.Fatal("serial Snapshot differs from Metrics after Run")
			}
			for _, workers := range determinismWorkerSet(banks) {
				for _, ingest := range []int{-1, 2} {
					if workers == 1 && ingest == -1 {
						continue // the baseline itself
					}
					gotMetrics, gotSnap, gotRetired, gotErr := run(workers, ingest)
					if !reflect.DeepEqual(wantMetrics, gotMetrics) {
						t.Errorf("workers=%d ingest=%d: Metrics differ from serial run", workers, ingest)
					}
					if !reflect.DeepEqual(wantSnap, gotSnap) {
						t.Errorf("workers=%d ingest=%d: Snapshot differs from serial run", workers, ingest)
					}
					if !reflect.DeepEqual(wantRetired, gotRetired) {
						t.Errorf("workers=%d ingest=%d: retired-line sets differ from serial run:\nserial:   %v\nparallel: %v",
							workers, ingest, wantRetired, gotRetired)
					}
					if !reflect.DeepEqual(wantErr, gotErr) {
						t.Errorf("workers=%d ingest=%d: run error differs from serial run:\nserial:   %v\nparallel: %v",
							workers, ingest, wantErr, gotErr)
					}
					for i := range wantMetrics {
						if !reflect.DeepEqual(wantMetrics[i].Wear, gotMetrics[i].Wear) {
							t.Errorf("workers=%d ingest=%d: %s wear summary differs from serial run",
								workers, ingest, wantMetrics[i].Scheme)
						}
					}
				}
			}
			if mode.name == "stuck+repair" {
				nRetired := 0
				for _, rs := range wantRetired {
					nRetired += len(rs)
				}
				if nRetired == 0 || wantMetrics[0].Faults.WearStuck == 0 {
					t.Errorf("stuck+repair mode exercised no retirements/wear onset: retired %d, %+v",
						nRetired, wantMetrics[0].Faults)
				}
			}
		})
	}
}
