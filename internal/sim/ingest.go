package sim

import (
	"sync"
	"sync/atomic"
	"time"

	"wlcrc/internal/trace"
)

// The parallel ingest stage sits in front of the dispatcher when
// Options.IngestRouters resolves above zero. The classic Run loop reads
// one record per Source.Next interface call and routes it on the same
// goroutine — a serial front-end whose per-record decode + two 64-byte
// line copies become the Amdahl ceiling once the back end (256 routing
// units, pipelined dispatch) stops being the bottleneck. The ingest
// stage replaces it with a three-step pipeline:
//
//	reader   one mutex-guarded BatchSource.NextBatch per chunk stamps
//	         each fixed-size chunk with a chunk sequence number and the
//	         global sequence of its first request. Sources that decode
//	         in bulk (MappedSource, Reader.ReadBatch) amortize all
//	         per-record I/O here; legacy Sources arrive via the
//	         trace.Batched adapter and just lose the per-request
//	         interface call.
//	route    K router goroutines each take a filled chunk and pre-route
//	         it independently: a stable counting sort by routing unit
//	         groups the chunk into per-unit sub-batches (within-unit
//	         order preserved) and stamps every request's global
//	         sequence number.
//	reassemble  the Run goroutine consumes routed chunks through a
//	         fixed ring, strictly in chunk-sequence order, and appends
//	         each unit's sub-batch into the same pending/ready
//	         double-buffer the classic dispatcher fills — so per-unit
//	         batch boundaries, hand-off order, and therefore per-shard
//	         trace order are byte-identical to the classic path.
//
// Determinism: only the reassembly step touches dispatcher state, and
// it runs in chunk order on one goroutine; routing is pure computation
// on private chunk buffers. Every guarantee of the classic path — the
// PR 6 worker-count matrix, PRNG draw order, earliest-failure error
// selection — carries over bit-exactly, which the ingest determinism
// tests assert for Source, BatchSource and MappedSource inputs alike.
//
// Allocation: chunks (request buffer, unit scratch, grouped output)
// recycle through the engine's chunk free list exactly like batch
// buffers recycle through freeBufs, so steady-state ingest performs no
// per-chunk allocations; the only per-Run cost is the fixed setup
// (channels, router goroutines, one counting-sort scratch per router).

// ingestChunkCap is the fixed chunk size in requests. At 136 bytes per
// record a chunk spans ~70 KB — big enough that the reader mutex and
// chunk hand-off amortize to noise, small enough that a chunk's decode
// output is still cache-warm when the reassembly step copies it into
// per-unit batches, and several chunks fit in flight without bloat.
const ingestChunkCap = 512

// ingestAutoMax caps the auto-resolved router count: decode + routing
// saturates well before the worker pool does, so a handful of routers
// keeps even a fast mapped source ahead of 200+ workers.
const ingestAutoMax = 4

// unitRun is one routing unit's contiguous sub-batch inside a routed
// chunk's grouped request array.
type unitRun struct {
	unit       int32
	start, end int32
}

// ingestChunk is one fixed-size unit of ingest work, recycled through
// Engine.freeChunks. reqs holds the raw decoded requests in trace
// order; after routing, perm[:n] holds the same requests grouped by
// routing unit (stable, sequence-stamped) and runs indexes the groups.
type ingestChunk struct {
	seq  int    // chunk sequence number, for in-order reassembly
	base uint64 // global sequence of reqs[0]
	n    int    // requests in this chunk

	reqs  []trace.Request // len ingestChunkCap
	units []int32         // scratch: routing unit per request
	perm  []routedReq     // grouped-by-unit output
	runs  []unitRun       // one entry per unit present, ascending unit
}

func newIngestChunk() *ingestChunk {
	return &ingestChunk{
		reqs:  make([]trace.Request, ingestChunkCap),
		units: make([]int32, ingestChunkCap),
		perm:  make([]routedReq, ingestChunkCap),
	}
}

// resolveIngestRouters maps Options.IngestRouters to the effective
// router count: negative forces the classic in-line dispatcher, zero
// auto-sizes (off on a single-CPU machine, else up to ingestAutoMax),
// positive is taken as-is.
func resolveIngestRouters(opt, cpus int) int {
	switch {
	case opt < 0:
		return 0
	case opt > 0:
		return opt
	case cpus <= 1:
		return 0
	default:
		return min(ingestAutoMax, cpus)
	}
}

// ingestReader serializes chunk fills over the source: one lock, one
// NextBatch, one stamp. It is the only place the source is touched, so
// a plain Source behind the Batched adapter is read exactly as the
// classic dispatcher would read it.
type ingestReader struct {
	mu   sync.Mutex
	src  trace.BatchSource
	max  int // stop after max requests when > 0
	read uint64
	seq  int
	done bool
}

// fill loads the next chunk under the reader lock, stamping its chunk
// and base sequence numbers. It returns false at end of stream (or once
// the max-request budget is spent).
func (r *ingestReader) fill(c *ingestChunk) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return false
	}
	want := len(c.reqs)
	if r.max > 0 {
		if left := r.max - int(r.read); left < want {
			want = left
		}
	}
	if want <= 0 {
		r.done = true
		return false
	}
	n := r.src.NextBatch(c.reqs[:want])
	if n == 0 {
		r.done = true
		return false
	}
	c.n = n
	c.seq = r.seq
	c.base = r.read
	r.seq++
	r.read += uint64(n)
	return true
}

// routeChunk pre-routes one chunk: a stable counting sort by routing
// unit over the chunk's requests, writing the grouped, sequence-stamped
// form into c.perm and the group index into c.runs. counts is the
// router's reusable per-unit scratch (len == e.units). Pure computation
// on chunk-private buffers — safe to run on many routers at once.
func (e *Engine) routeChunk(c *ingestChunk, counts []int32) {
	reqs := c.reqs[:c.n]
	for i := range counts {
		counts[i] = 0
	}
	for i := range reqs {
		u := int32(e.routeOf(reqs[i].Addr))
		c.units[i] = u
		counts[u]++
	}
	c.runs = c.runs[:0]
	off := int32(0)
	for u := range counts {
		if counts[u] == 0 {
			continue
		}
		start := off
		off += counts[u]
		c.runs = append(c.runs, unitRun{unit: int32(u), start: start, end: off})
		counts[u] = start // becomes the placement cursor below
	}
	perm := c.perm[:len(reqs)]
	for i := range reqs {
		u := c.units[i]
		perm[counts[u]] = routedReq{seq: c.base + uint64(i), req: reqs[i]}
		counts[u]++
	}
}

// assembleChunk folds one routed chunk into the dispatcher state,
// reproducing exactly what the classic loop would have done for the
// same requests: per unit, append into the pending buffer and hand off
// every time it reaches unitBatch. Called in strict chunk-sequence
// order on the Run goroutine only.
func (e *Engine) assembleChunk(c *ingestChunk, chans []chan batch, pending, ready []*[]routedReq) {
	for _, run := range c.runs {
		u := int(run.unit)
		sub := c.perm[run.start:run.end]
		for len(sub) > 0 {
			p := pending[u]
			if p == nil {
				p = e.getBuf()
				pending[u] = p
			}
			take := unitBatch - len(*p)
			if take > len(sub) {
				take = len(sub)
			}
			*p = append(*p, sub[:take]...)
			sub = sub[take:]
			if len(*p) == unitBatch {
				e.handOff(chans[u%e.workers], ready, u, p)
				pending[u] = nil
			}
		}
	}
}

// dispatchIngest is the ingest-stage replacement for the classic
// dispatch loop inside Run: it spawns the routers, then reassembles
// routed chunks in order into the shared pending/ready state. It
// returns the number of requests dispatched. On a failure the routers
// stop pulling new chunks, but every chunk already read is still
// routed, reassembled and dispatched — the flush in Run then guarantees
// the globally-earliest failing request is applied, exactly like the
// classic path.
func (e *Engine) dispatchIngest(src trace.BatchSource, max int, chans []chan batch,
	pending, ready []*[]routedReq, failed *atomic.Bool, done <-chan struct{}, start time.Time) uint64 {
	inflight := cap(e.freeChunks)
	routedCh := make(chan *ingestChunk, inflight)
	rd := &ingestReader{src: src, max: max}
	var rwg sync.WaitGroup
	for r := 0; r < e.ingest; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			counts := make([]int32, e.units)
			for !failed.Load() && !canceled(done) {
				c := <-e.freeChunks
				if !rd.fill(c) {
					e.freeChunks <- c
					return
				}
				e.routeChunk(c, counts)
				routedCh <- c
			}
		}()
	}
	go func() { rwg.Wait(); close(routedCh) }()

	var (
		dispatched uint64
		next       int
		hold       = make([]*ingestChunk, inflight)
		lastTick   = start
		interval   = e.opts.ProgressInterval
		queue      []int
	)
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	for c := range routedCh {
		// The chunk pool bounds in-flight chunk sequences to a window
		// smaller than the ring, so seq%inflight slots never collide.
		hold[c.seq%inflight] = c
		for {
			h := hold[next%inflight]
			if h == nil {
				break
			}
			hold[next%inflight] = nil
			e.assembleChunk(h, chans, pending, ready)
			dispatched += uint64(h.n)
			h.n = 0
			e.freeChunks <- h
			next++
			if e.opts.Progress != nil {
				if now := time.Now(); now.Sub(lastTick) >= interval {
					lastTick = now
					if queue == nil {
						queue = make([]int, e.workers)
					}
					for i, ch := range chans {
						queue[i] = len(ch)
					}
					e.opts.Progress(Progress{
						Dispatched: dispatched,
						Elapsed:    now.Sub(start),
						Workers:    e.workers,
						QueueDepth: queue,
					})
				}
			}
		}
	}
	return dispatched
}
