package sim

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"wlcrc/internal/memsys"
)

// TestEngineRoutedDeterminismWithWear extends the bit-identity guarantee
// to the full streaming feature set: routed dispatch, dense wear
// tracking and per-write histograms must produce byte-identical merged
// metrics for Workers in {1, 2, 7, GOMAXPROCS} — 7 deliberately does not
// divide the 64-bank geometry, so bank ownership wraps unevenly.
func TestEngineRoutedDeterminismWithWear(t *testing.T) {
	src := fixedTrace(t, "gcc", 512, 4000, 11)
	run := func(workers int) []Metrics {
		src.Rewind()
		opts := DefaultOptions()
		opts.Workers = workers
		opts.TrackWear = true
		e := NewEngine(opts, schemesForTest(t, engineSchemeNames...)...)
		if err := e.Run(src, 0); err != nil {
			t.Fatal(err)
		}
		return e.Metrics()
	}
	baseline := run(1)
	if baseline[0].Wear.Writes != 4000 || baseline[0].Wear.MaxCellWear == 0 {
		t.Fatalf("wear not tracked: %+v", baseline[0].Wear)
	}
	if baseline[0].EnergyHist.N != 4000 || baseline[0].UpdatedHist.N != 4000 {
		t.Fatalf("histograms not populated: energy N=%d updated N=%d",
			baseline[0].EnergyHist.N, baseline[0].UpdatedHist.N)
	}
	for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		if got := run(workers); !reflect.DeepEqual(baseline, got) {
			t.Errorf("workers=%d metrics differ from serial run", workers)
		}
	}
}

// TestEngineSnapshotDuringRun hammers Snapshot from a second goroutine
// while Run is executing (the -race CI job is the real assertion here)
// and checks the online invariants: per-scheme Writes never decreases
// across snapshots, never exceeds the trace length, and the final
// snapshot agrees exactly with the post-run Metrics.
func TestEngineSnapshotDuringRun(t *testing.T) {
	const total = 20000
	src := fixedTrace(t, "gcc", 512, total, 3)
	opts := DefaultOptions()
	opts.Workers = 4
	opts.TrackWear = true
	e := NewEngine(opts, schemesForTest(t, "Baseline", "WLCRC-16")...)
	done := make(chan error, 1)
	go func() { done <- e.Run(src, 0) }()

	last := make([]int, 2)
	snaps := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if snaps == 0 {
				t.Log("run finished before the first snapshot; invariants vacuous")
			}
			if !reflect.DeepEqual(e.Snapshot(), e.Metrics()) {
				t.Error("post-run Snapshot differs from Metrics")
			}
			return
		default:
		}
		snap := e.Snapshot()
		snaps++
		for i, m := range snap {
			if m.Writes < last[i] {
				t.Fatalf("scheme %d Writes went backwards: %d -> %d", i, last[i], m.Writes)
			}
			if m.Writes > total {
				t.Fatalf("scheme %d Writes = %d exceeds trace length %d", i, m.Writes, total)
			}
			if m.Wear.Writes != uint64(m.Writes) {
				t.Fatalf("scheme %d wear writes %d inconsistent with %d writes "+
					"(publish must copy atomically)", i, m.Wear.Writes, m.Writes)
			}
			last[i] = m.Writes
		}
	}
}

// TestEngineSnapshotWhileIdle checks Snapshot outside a Run: fresh
// engines report zeroed metrics, finished engines the final state.
func TestEngineSnapshotWhileIdle(t *testing.T) {
	e := NewEngine(DefaultOptions(), schemesForTest(t, "Baseline")...)
	snap := e.Snapshot()
	if snap[0].Writes != 0 || snap[0].Scheme != "Baseline" {
		t.Errorf("fresh snapshot = %+v", snap[0])
	}
	src := fixedTrace(t, "libq", 64, 300, 1)
	if err := e.Run(src, 0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Snapshot(), e.Metrics()) {
		t.Error("idle Snapshot differs from Metrics after Run")
	}
	e.ResetMetrics()
	if snap := e.Snapshot(); snap[0].Writes != 0 {
		t.Errorf("Snapshot after ResetMetrics = %+v", snap[0])
	}
}

// TestDispatcherSteadyStateAllocs asserts the pooled routed dispatcher
// runs allocation-free at steady state: after a warm-up Run has
// populated the shard memory and the batch-buffer pool, a whole second
// Run amortizes to (near) zero allocations per request — the fixed
// per-Run setup (channels, worker goroutines) is all that remains.
func TestDispatcherSteadyStateAllocs(t *testing.T) {
	const reqs = 8192
	opts := DefaultOptions()
	opts.Verify = false
	opts.Workers = 2
	e := NewEngine(opts, schemesForTest(t, "Baseline")...)
	src := fixedTrace(t, "gcc", 256, reqs, 13)
	if err := e.Run(src, 0); err != nil { // warm up memory, pool, histograms
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1, func() {
		src.Rewind()
		if err := e.Run(src, 0); err != nil {
			t.Fatal(err)
		}
	})
	if perReq := allocs / reqs; perReq > 0.01 {
		t.Errorf("dispatcher allocates %.4f objects per request (%.0f per run), want ~0",
			perReq, allocs)
	}
}

// TestEngineProgressCallback drives the dispatcher with a zero-interval
// progress hook and checks the stream of reports: monotone dispatched
// counts, sane queue depths, and a terminal Done report carrying the
// full request count.
func TestEngineProgressCallback(t *testing.T) {
	const total = 5000
	var calls, doneCalls int
	var lastDispatched uint64
	opts := DefaultOptions()
	opts.Workers = 2
	opts.ProgressInterval = time.Nanosecond
	opts.Progress = func(p Progress) {
		calls++
		if p.Dispatched < lastDispatched {
			t.Errorf("dispatched went backwards: %d -> %d", lastDispatched, p.Dispatched)
		}
		lastDispatched = p.Dispatched
		if len(p.QueueDepth) != 2 {
			t.Errorf("queue depth len = %d, want workers=2", len(p.QueueDepth))
		}
		if p.Done {
			doneCalls++
			if p.Dispatched != total {
				t.Errorf("final report dispatched = %d, want %d", p.Dispatched, total)
			}
			for w, d := range p.QueueDepth {
				if d != 0 {
					t.Errorf("final report queue[%d] = %d, want drained", w, d)
				}
			}
			if p.Rate() <= 0 {
				t.Errorf("final rate = %v, want > 0", p.Rate())
			}
		}
	}
	e := NewEngine(opts, schemesForTest(t, "Baseline")...)
	if err := e.Run(fixedTrace(t, "gcc", 256, total, 7), 0); err != nil {
		t.Fatal(err)
	}
	if doneCalls != 1 {
		t.Errorf("done reports = %d, want exactly 1", doneCalls)
	}
	if calls < 2 { // at least one mid-run tick (5000 > progressStride) + final
		t.Errorf("progress calls = %d, want >= 2", calls)
	}
}

// TestEngineProgressNotCalledWhenUnset guards the hot path: without a
// callback the dispatcher must not consult the clock per stride (proxy:
// nothing blows up and results match a progress-enabled run).
func TestEngineProgressNotCalledWhenUnset(t *testing.T) {
	src := fixedTrace(t, "mcf", 128, 2500, 9)
	run := func(withProgress bool) []Metrics {
		src.Rewind()
		opts := DefaultOptions()
		opts.Workers = 2
		if withProgress {
			opts.ProgressInterval = time.Nanosecond
			opts.Progress = func(Progress) {}
		}
		e := NewEngine(opts, schemesForTest(t, "Baseline")...)
		if err := e.Run(src, 0); err != nil {
			t.Fatal(err)
		}
		return e.Metrics()
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Error("progress callback changed results")
	}
}

// TestEngineWorkersCappedAtUnits: a (bank, sub-shard) unit is the
// routing unit, so the resolved worker count caps at banks x sub-shards
// — not at the bank count, which used to be the (silent) ceiling.
func TestEngineWorkersCappedAtUnits(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 64
	opts.Geometry = memsys.Config{Channels: 1, DIMMsPerChan: 1, BanksPerDIMM: 4,
		WriteQueueCap: 8, DrainThreshold: 0.8}
	e := NewEngine(opts, schemesForTest(t, "Baseline")...)
	units := 4 * memsys.DefaultSubShards
	if e.Units() != units {
		t.Fatalf("units = %d, want %d (4 banks x %d sub-shards)",
			e.Units(), units, memsys.DefaultSubShards)
	}
	if e.Workers() != units {
		t.Errorf("workers = %d, want capped at %d units (4 banks is no longer the cap)",
			e.Workers(), units)
	}
	if err := e.Run(fixedTrace(t, "gcc", 64, 500, 5), 0); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics()[0]; m.Writes != 500 {
		t.Errorf("writes = %d, want 500", m.Writes)
	}
}

// TestEngineWorkersBeyondBanksEngage is the regression test for the old
// silent cap: with Workers above the bank count, more than `banks`
// goroutines must actually process requests — sub-bank sharding has to
// spread the work, not just resolve to a bigger number.
func TestEngineWorkersBeyondBanksEngage(t *testing.T) {
	const banks, workers = 2, 6
	opts := DefaultOptions()
	opts.Workers = workers
	opts.Geometry = memsys.Config{Channels: 1, DIMMsPerChan: 1, BanksPerDIMM: banks,
		WriteQueueCap: 8, DrainThreshold: 0.8}
	e := NewEngine(opts, schemesForTest(t, "Baseline")...)
	if e.Workers() != workers {
		t.Fatalf("workers = %d, want %d (units = %d)", e.Workers(), workers, e.Units())
	}
	if err := e.Run(fixedTrace(t, "gcc", 256, 4000, 17), 0); err != nil {
		t.Fatal(err)
	}
	engaged := 0
	var total uint64
	for w, n := range e.workerReqs {
		if n > 0 {
			engaged++
		}
		total += n
		t.Logf("worker %d applied %d requests", w, n)
	}
	if total != 4000 {
		t.Errorf("workers applied %d requests total, want 4000", total)
	}
	if engaged <= banks {
		t.Errorf("only %d workers engaged, want more than the %d banks", engaged, banks)
	}
}

// TestEngineWearWarmupReset mirrors the experiment harness flow with
// wear on: warm-up wear must not leak into measured metrics, and the
// measured wear must still be worker-count independent.
func TestEngineWearWarmupReset(t *testing.T) {
	run := func(workers int) []Metrics {
		src := fixedTrace(t, "lesl", 256, 2000, 9)
		opts := DefaultOptions()
		opts.Workers = workers
		opts.TrackWear = true
		e := NewEngine(opts, schemesForTest(t, "Baseline", "WLCRC-16")...)
		if err := e.Run(src, 1000); err != nil {
			t.Fatal(err)
		}
		e.ResetMetrics()
		if err := e.Run(src, 0); err != nil {
			t.Fatal(err)
		}
		return e.Metrics()
	}
	serial := run(1)
	if got := serial[0].Wear.Writes; got != 1000 {
		t.Errorf("post-warmup wear writes = %d, want 1000", got)
	}
	if serial[0].Wear.MaxCellWear == 0 {
		t.Error("post-warmup wear empty")
	}
	if !reflect.DeepEqual(serial, run(7)) {
		t.Error("warmed-up wear metrics differ across worker counts")
	}
}

// TestEngineSnapshotConcurrencyStress is a dedicated -race workout:
// several goroutines snapshot concurrently while the engine replays,
// with wear and sampling enabled to cover every published field.
func TestEngineSnapshotConcurrencyStress(t *testing.T) {
	src := fixedTrace(t, "sopl", 256, 8000, 21)
	opts := DefaultOptions()
	opts.Workers = 4
	opts.TrackWear = true
	opts.SampleDisturb = true
	opts.Seed = 42
	e := NewEngine(opts, schemesForTest(t, "Baseline", "6cosets")...)
	var stop atomic.Bool
	snapDone := make(chan struct{})
	for g := 0; g < 3; g++ {
		go func() {
			defer func() { snapDone <- struct{}{} }()
			for !stop.Load() {
				_ = e.Snapshot()
			}
		}()
	}
	err := e.Run(src, 0)
	stop.Store(true)
	for g := 0; g < 3; g++ {
		<-snapDone
	}
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Snapshot(), e.Metrics()) {
		t.Error("final snapshot differs from metrics")
	}
}
