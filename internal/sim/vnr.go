package sim

import (
	"wlcrc/internal/pcm"
)

// VnRStats aggregates the Verify-and-Restore behavior of one run
// (§VIII.C): with fault injection enabled, every write may disturb idle
// neighbor cells toward S2; a read-after-write detects the corruption
// and restore iterations rewrite the affected cells, each iteration
// itself risking new disturbance. The paper reports that 3–5 iterations
// remove all disturbance errors; the stats below let that be checked.
type VnRStats struct {
	InjectedErrors  uint64 // cells corrupted by disturbance
	RestoreWrites   uint64 // cells rewritten by VnR
	RestoreEnergyPJ float64
	Iterations      uint64 // total VnR iterations across writes
	MaxIterations   int    // worst single write
	Residual        uint64 // errors left when the iteration cap was hit
}

// Merge folds another shard's VnR stats into v: accumulators add,
// MaxIterations takes the maximum.
func (v *VnRStats) Merge(o VnRStats) {
	v.InjectedErrors += o.InjectedErrors
	v.RestoreWrites += o.RestoreWrites
	v.RestoreEnergyPJ += o.RestoreEnergyPJ
	v.Iterations += o.Iterations
	if o.MaxIterations > v.MaxIterations {
		v.MaxIterations = o.MaxIterations
	}
	v.Residual += o.Residual
}

// runVnR injects disturbance faults for a completed write and repairs
// them. cells is the freshly-programmed state vector (the intended
// content); changed marks the cells this write programmed. The array's
// stored state is corrupted in place and then restored; the shard's VnR
// stats describe the repair effort. maxIter caps the restore loop.
func (u *shard) runVnR(cells []pcm.State, changed []bool, maxIter int) {
	m := &u.m
	if cap(u.vnrStored) < len(cells) {
		u.vnrStored = make([]pcm.State, len(cells))
		u.vnrRestore = make([]bool, len(cells))
	}
	stored := u.vnrStored[:len(cells)]
	copy(stored, cells)
	// Initial disturbance from the write itself.
	hits := u.opts.Disturb.DisturbedCellsInto(u.vnrHits, stored, changed, u.rnd)
	m.VnR.InjectedErrors += uint64(len(hits))
	iter := 0
	for len(hits) > 0 && iter < maxIter {
		iter++
		// Corrupt: disturbance drives cells to the SET state.
		for _, i := range hits {
			stored[i] = pcm.S2
		}
		// Verify (read-after-write) finds every mismatch vs the
		// intended content; restore rewrites those cells.
		restore := u.vnrRestore[:len(cells)]
		nRestore := 0
		for i := range stored {
			restore[i] = false
			if stored[i] != cells[i] {
				restore[i] = true
				stored[i] = cells[i]
				nRestore++
				m.VnR.RestoreEnergyPJ += u.opts.Energy.WriteEnergy(cells[i])
			}
		}
		m.VnR.RestoreWrites += uint64(nRestore)
		// The restore writes are RESET events of their own: they may
		// disturb idle neighbors again.
		hits = u.opts.Disturb.DisturbedCellsInto(hits, stored, restore, u.rnd)
		m.VnR.InjectedErrors += uint64(len(hits))
	}
	u.vnrHits = hits[:0]
	m.VnR.Iterations += uint64(iter)
	if iter > m.VnR.MaxIterations {
		m.VnR.MaxIterations = iter
	}
	if len(hits) > 0 {
		m.VnR.Residual += uint64(len(hits))
	}
}
