package sim

import (
	"wlcrc/internal/pcm"
)

// VnRStats aggregates the Verify-and-Restore behavior of one run
// (§VIII.C): with fault injection enabled, every write may disturb idle
// neighbor cells toward S2; a read-after-write detects the corruption
// and restore iterations rewrite the affected cells, each iteration
// itself risking new disturbance. The paper reports that 3–5 iterations
// remove all disturbance errors; the stats below let that be checked.
type VnRStats struct {
	InjectedErrors  uint64 // cells corrupted by disturbance
	RestoreWrites   uint64 // cells rewritten by VnR
	RestoreEnergyPJ float64
	Iterations      uint64 // total VnR iterations across writes
	MaxIterations   int    // worst single write
	Residual        uint64 // errors left when the iteration cap was hit
}

// Merge folds another shard's VnR stats into v: accumulators add,
// MaxIterations takes the maximum.
func (v *VnRStats) Merge(o VnRStats) {
	v.InjectedErrors += o.InjectedErrors
	v.RestoreWrites += o.RestoreWrites
	v.RestoreEnergyPJ += o.RestoreEnergyPJ
	v.Iterations += o.Iterations
	if o.MaxIterations > v.MaxIterations {
		v.MaxIterations = o.MaxIterations
	}
	v.Residual += o.Residual
}

// runVnR injects disturbance faults for a completed write and repairs
// them. cells is the freshly-programmed state vector (the intended
// content); changed marks the cells this write programmed. The array's
// stored state is corrupted in place and then restored; the shard's VnR
// stats describe the repair effort. maxIter caps the restore loop.
// Residual errors at the cap — disturbance VnR never cleared — feed the
// fault pipeline when it is enabled: the affected cells of addr are
// injected as stuck at the disturbed SET state.
func (u *shard) runVnR(cells []pcm.State, changed []bool, maxIter int, addr uint64) {
	m := &u.m
	if cap(u.vnrStored) < len(cells) {
		u.vnrStored = make([]pcm.State, len(cells))
		u.vnrRestore = make([]bool, len(cells))
	}
	stored := u.vnrStored[:len(cells)]
	copy(stored, cells)
	// Initial disturbance from the write itself.
	hits := u.opts.Disturb.DisturbedCellsInto(u.vnrHits, stored, changed, u.rnd)
	m.VnR.InjectedErrors += uint64(len(hits))
	iter := 0
	for len(hits) > 0 && iter < maxIter {
		iter++
		// Corrupt: disturbance drives cells to the SET state.
		for _, i := range hits {
			stored[i] = pcm.S2
		}
		// Verify (read-after-write) finds every mismatch vs the
		// intended content; restore rewrites those cells.
		restore := u.vnrRestore[:len(cells)]
		nRestore := 0
		for i := range stored {
			restore[i] = false
			if stored[i] != cells[i] {
				restore[i] = true
				stored[i] = cells[i]
				nRestore++
				m.VnR.RestoreEnergyPJ += u.opts.Energy.WriteEnergy(cells[i])
			}
		}
		m.VnR.RestoreWrites += uint64(nRestore)
		// The restore writes are RESET events of their own: they may
		// disturb idle neighbors again.
		hits = u.opts.Disturb.DisturbedCellsInto(hits, stored, restore, u.rnd)
		m.VnR.InjectedErrors += uint64(len(hits))
	}
	u.vnrHits = hits[:0]
	m.VnR.Iterations += uint64(iter)
	if iter > m.VnR.MaxIterations {
		m.VnR.MaxIterations = iter
	}
	if len(hits) > 0 {
		m.VnR.Residual += uint64(len(hits))
		if u.fm != nil {
			u.injectResiduals(addr, cells, hits)
		}
	}
}

// injectResiduals freezes VnR residual cells at the SET state the
// disturbance drove them to and classifies the line's recoverability:
// residuals beyond the ECC budget make reads of the line deterministic
// garbage, counted as uncorrectable (no retry or retirement recourse —
// the write itself succeeded; the corruption crept in afterwards).
func (u *shard) injectResiduals(addr uint64, cells []pcm.State, hits []int) {
	injected := 0
	for _, c := range hits {
		if u.fm.InjectStuck(addr, c, pcm.S2) {
			injected++
		}
	}
	if injected == 0 {
		return
	}
	if _, ok := u.fm.Correct(cells, u.fm.Stuck(addr), &u.eccSc); !ok {
		u.fm.Stats.Uncorrectable++
	}
}
