package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wlcrc/internal/trace"
)

// nextOnlySource hides SliceSource's NextBatch so a test can force the
// trace.Batched adapter path — the one a legacy Source takes through the
// ingest stage.
type nextOnlySource struct{ src *trace.SliceSource }

func (s nextOnlySource) Next() (trace.Request, bool) { return s.src.Next() }

// ingestTraceFile records a fixed trace to a real on-disk file (so the
// header count is back-patched) and returns its path alongside the
// in-memory SliceSource it was recorded from.
func ingestTraceFile(t *testing.T, n int) (string, *trace.SliceSource) {
	t.Helper()
	src := fixedTrace(t, "gcc", 512, n, 17)
	path := filepath.Join(t.TempDir(), "ingest.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for {
		req, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src.Rewind()
	return path, src
}

// TestIngestSourceKindsBitIdentical is the acceptance matrix across
// source types: the same trace replayed through a legacy Source (via the
// Batched adapter), a batch-decoding ReaderSource, and a MappedSource
// must produce bit-identical Metrics and Snapshot for every combination
// of worker and ingest-router counts — all equal to the serial,
// ingest-off reference run.
func TestIngestSourceKindsBitIdentical(t *testing.T) {
	const n = 3000
	path, slice := ingestTraceFile(t, n)
	sources := map[string]func(t *testing.T) trace.Source{
		"legacy-source": func(t *testing.T) trace.Source {
			slice.Rewind()
			return nextOnlySource{src: slice}
		},
		"batch-source": func(t *testing.T) trace.Source {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { f.Close() })
			r, err := trace.NewReader(f)
			if err != nil {
				t.Fatal(err)
			}
			return &trace.ReaderSource{R: r}
		},
		"mapped-source": func(t *testing.T) trace.Source {
			m, err := trace.OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { m.Close() })
			return m
		},
	}
	run := func(t *testing.T, src trace.Source, workers, ingest int) ([]Metrics, []Metrics) {
		opts := DefaultOptions()
		opts.Workers = workers
		opts.IngestRouters = ingest
		opts.TrackWear = true
		e := NewEngine(opts, schemesForTest(t, engineSchemeNames...)...)
		if e.IngestRouters() != max(ingest, 0) {
			t.Fatalf("IngestRouters() = %d, want %d", e.IngestRouters(), max(ingest, 0))
		}
		if err := e.Run(src, 0); err != nil {
			t.Fatal(err)
		}
		return e.Metrics(), e.Snapshot()
	}
	slice.Rewind()
	wantMetrics, wantSnap := run(t, slice, 1, -1)
	if wantMetrics[0].Writes != n {
		t.Fatalf("reference run replayed %d writes, want %d", wantMetrics[0].Writes, n)
	}
	for name, open := range sources {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				for _, ingest := range []int{1, 3} {
					gotMetrics, gotSnap := run(t, open(t), workers, ingest)
					if !reflect.DeepEqual(wantMetrics, gotMetrics) {
						t.Errorf("workers=%d ingest=%d: Metrics differ from serial reference",
							workers, ingest)
					}
					if !reflect.DeepEqual(wantSnap, gotSnap) {
						t.Errorf("workers=%d ingest=%d: Snapshot differs from serial reference",
							workers, ingest)
					}
				}
			}
		})
	}
}

// TestIngestRunMaxLimit checks the max-request budget is enforced by the
// chunk reader exactly (the budget is clipped per fill, not rounded to a
// chunk boundary) — including a limit below one chunk and one that does
// not divide the chunk size.
func TestIngestRunMaxLimit(t *testing.T) {
	for _, limit := range []int{100, ingestChunkCap + 37} {
		src := fixedTrace(t, "mcf", 256, 2*ingestChunkCap, 2)
		opts := DefaultOptions()
		opts.IngestRouters = 2
		e := NewEngine(opts, schemesForTest(t, "Baseline")...)
		if err := e.Run(src, limit); err != nil {
			t.Fatal(err)
		}
		if m := e.Metrics()[0]; m.Writes != limit {
			t.Errorf("max=%d: writes = %d", limit, m.Writes)
		}
	}
}

// TestIngestVerifyErrorDeterministic extends the earliest-failure
// guarantee to the ingest path: with routers racing over chunks, the
// reported error must still be the globally-first failing request, run
// after run, for every router and worker count.
func TestIngestVerifyErrorDeterministic(t *testing.T) {
	run := func(workers, ingest int) string {
		src := fixedTrace(t, "gcc", 128, 500, 3)
		opts := DefaultOptions()
		opts.Workers = workers
		opts.IngestRouters = ingest
		e := NewEngine(opts, brokenScheme{})
		err := e.Run(src, 0)
		if err == nil {
			t.Fatal("broken scheme did not surface a decode error")
		}
		if !strings.Contains(err.Error(), "decode mismatch") {
			t.Fatalf("err = %v, want decode mismatch", err)
		}
		return err.Error()
	}
	serialErr := run(1, -1)
	for _, workers := range []int{1, 2, 8} {
		for _, ingest := range []int{1, 3} {
			for round := 0; round < 3; round++ {
				if gotErr := run(workers, ingest); gotErr != serialErr {
					t.Errorf("workers=%d ingest=%d reported %q, serial reported %q",
						workers, ingest, gotErr, serialErr)
				}
			}
		}
	}
}

// TestIngestSteadyStateAllocs is the ingest counterpart of
// TestDispatcherSteadyStateAllocs: after a warm-up Run has filled the
// shard memory, the batch-buffer pool and the chunk pool, a whole
// second Run through the chunk routers amortizes to (near) zero
// allocations per request — only the fixed per-Run setup (channels,
// router and worker goroutines, per-router scratch) remains.
func TestIngestSteadyStateAllocs(t *testing.T) {
	const reqs = 8192
	opts := DefaultOptions()
	opts.Verify = false
	opts.Workers = 2
	opts.IngestRouters = 2
	e := NewEngine(opts, schemesForTest(t, "Baseline")...)
	src := fixedTrace(t, "gcc", 256, reqs, 13)
	if err := e.Run(src, 0); err != nil { // warm up memory, pools, histograms
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1, func() {
		src.Rewind()
		if err := e.Run(src, 0); err != nil {
			t.Fatal(err)
		}
	})
	if perReq := allocs / reqs; perReq > 0.01 {
		t.Errorf("ingest dispatcher allocates %.4f objects per request (%.0f per run), want ~0",
			perReq, allocs)
	}
}

// TestResolveIngestRouters pins the Options.IngestRouters resolution
// rule: negative disables, zero auto-sizes by CPU count (off on one
// CPU), positive is taken verbatim.
func TestResolveIngestRouters(t *testing.T) {
	cases := []struct{ opt, cpus, want int }{
		{-1, 8, 0},
		{0, 1, 0},
		{0, 2, 2},
		{0, 16, ingestAutoMax},
		{3, 1, 3},
		{7, 16, 7},
	}
	for _, c := range cases {
		if got := resolveIngestRouters(c.opt, c.cpus); got != c.want {
			t.Errorf("resolveIngestRouters(%d, %d) = %d, want %d", c.opt, c.cpus, got, c.want)
		}
	}
}
