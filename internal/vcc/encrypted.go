package vcc

import (
	"sync"

	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// Inner is the subset of core.Scheme the Encrypted wrapper drives. It is
// declared locally (structurally identical) so this package does not
// import internal/core, which imports it back for scheme registration.
type Inner interface {
	Name() string
	TotalCells() int
	DataCells() int
	EncodeInto(dst, old []pcm.State, data *memline.Line)
	DecodeInto(cells []pcm.State, dst *memline.Line)
}

// compressionGate mirrors core.CompressionGate for delegation.
type compressionGate interface {
	CompressedWrite(cells []pcm.State) bool
}

// Encrypted models counter-mode encryption sitting below an ordinary
// write encoder: every write re-encrypts the line under a fresh
// (key, addr, ctr) pad and hands the inner scheme the ciphertext; reads
// decode the inner scheme and then decrypt. It is the "encrypted WLCRC"
// baseline of the evaluation — wrap WLCRC-16 in it and the compression
// gate collapses, because no ciphertext line is WLC-compressible, while
// wrapping Baseline yields the raw encrypted write every other scheme is
// measured against.
//
// Encrypted implements core.CounterScheme; the counter-blind forms use
// (addr=0, ctr=0) like Scheme. Cell geometry is the inner scheme's —
// the write counter lives in the encryption engine's counter store, not
// in the line.
type Encrypted struct {
	inner  Inner
	cipher Cipher
	gate   func([]pcm.State) bool // nil when the inner scheme has no gate
	name   string
	// bufs recycles the ciphertext staging line: a stack Line would
	// escape through the inner-scheme interface call on every write.
	bufs sync.Pool
}

// NewEncrypted wraps inner behind the counter-mode encryption model.
// key 0 means DefaultKey.
func NewEncrypted(inner Inner, key uint64) *Encrypted {
	e := &Encrypted{
		inner:  inner,
		cipher: Cipher{Key: key},
		name:   "Enc(" + inner.Name() + ")",
	}
	if g, ok := inner.(compressionGate); ok {
		e.gate = g.CompressedWrite
	}
	e.bufs.New = func() any { return new(memline.Line) }
	return e
}

// Name implements core.Scheme.
func (e *Encrypted) Name() string { return e.name }

// Inner returns the wrapped scheme.
func (e *Encrypted) Inner() Inner { return e.inner }

// TotalCells implements core.Scheme.
func (e *Encrypted) TotalCells() int { return e.inner.TotalCells() }

// DataCells implements core.Scheme.
func (e *Encrypted) DataCells() int { return e.inner.DataCells() }

// CompressedWrite implements core.CompressionGate by delegating to the
// inner scheme's gate; gateless inner schemes count every write as
// encoded, matching core.CompressedWriteFunc's default.
func (e *Encrypted) CompressedWrite(cells []pcm.State) bool {
	if e.gate == nil {
		return true
	}
	return e.gate(cells)
}

// Encode implements core.Scheme (allocating wrapper, addr=0, ctr=0).
func (e *Encrypted) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, e.TotalCells())
	e.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements core.Scheme with the degenerate (addr=0, ctr=0)
// stream.
func (e *Encrypted) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	e.EncodeCtrInto(dst, old, 0, 0, data)
}

// Decode implements core.Scheme (allocating wrapper, addr=0, ctr=0).
func (e *Encrypted) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	e.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements core.Scheme with the degenerate (addr=0, ctr=0)
// stream.
func (e *Encrypted) DecodeInto(cells []pcm.State, dst *memline.Line) {
	e.DecodeCtrInto(cells, 0, 0, dst)
}

// EncodeCtrInto implements core.CounterScheme: encrypt, then let the
// inner scheme encode the ciphertext.
func (e *Encrypted) EncodeCtrInto(dst, old []pcm.State, addr, ctr uint64, data *memline.Line) {
	buf := e.bufs.Get().(*memline.Line)
	*buf = *data
	e.cipher.WhitenLine(buf, addr, ctr)
	e.inner.EncodeInto(dst, old, buf)
	e.bufs.Put(buf)
}

// DecodeCtrInto implements core.CounterScheme: inner decode yields the
// ciphertext, the pad of (addr, ctr) turns it back into plaintext.
func (e *Encrypted) DecodeCtrInto(cells []pcm.State, addr, ctr uint64, dst *memline.Line) {
	e.inner.DecodeInto(cells, dst)
	e.cipher.WhitenLine(dst, addr, ctr)
}
