package vcc

import (
	"testing"

	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// Fuzz targets for the virtual-coset subsystem: candidate generation
// and the encode/decode round trip through decrypt, cross-checked
// against the scalar reference encoder. The seeded corpus lives in
// testdata/fuzz; `go test` replays it on every run and `go test -fuzz
// FuzzVCC` explores further (wired into the CI fuzz smoke loop).

// fuzzN maps a selector byte onto a valid candidate count.
func fuzzN(sel byte) int {
	return []int{2, 4, 8}[int(sel)%3]
}

// fuzzOld derives a full old-state vector from packed 2-bit state
// words, repeating the 64-byte pattern across data and aux cells.
func fuzzOld(oldBits []byte, n int) []pcm.State {
	old := make([]pcm.State, n)
	for i := range old {
		var b byte
		if len(oldBits) > 0 {
			b = oldBits[i%len(oldBits)]
		}
		old[i] = pcm.State(b >> uint(2*(i%4)) & 3)
	}
	return old
}

// FuzzVCCRoundTrip asserts, for arbitrary plaintext, old states, keys,
// addresses and counters: the full-line encode decodes bit-exactly back
// to the plaintext, and every word's SWAR candidate choice and output
// states match the scalar CostTable reference.
func FuzzVCCRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint64(0), uint64(0), uint64(0), byte(2))
	f.Add([]byte{0xFF, 0x00, 0xAA}, uint64(1), uint64(1), uint64(7), byte(0))
	f.Add([]byte("counter mode whitening makes every line incompressible.."),
		uint64(0xDEAD), uint64(42), uint64(0x5EC2E7C0DE5EED01), byte(1))
	f.Fuzz(func(t *testing.T, raw []byte, addr, ctr, key uint64, nSel byte) {
		n := fuzzN(nSel)
		s, err := New(pcm.DefaultEnergy(), n, key)
		if err != nil {
			t.Fatal(err)
		}
		var data memline.Line
		copy(data[:], raw)
		old := fuzzOld(raw, s.TotalCells())
		dst := make([]pcm.State, s.TotalCells())
		s.EncodeCtrInto(dst, old, addr, ctr, &data)

		var got memline.Line
		s.DecodeCtrInto(dst, addr, ctr, &got)
		if !got.Equal(&data) {
			t.Fatalf("VCC-%d: round trip failed (addr %#x ctr %d key %#x)", n, addr, ctr, key)
		}

		var pad [memline.LineWords]uint64
		var vecs [MaxCandidates][memline.LineWords]uint64
		s.cipher.Candidates(addr, ctr, n, &pad, &vecs)
		var idx [memline.LineWords]uint8
		s.unpackIndices(dst[memline.LineCells:s.TotalCells()], &idx)
		var refOut [memline.WordCells]pcm.State
		for w := 0; w < memline.LineWords; w++ {
			refIdx := s.encodeWordScalar(data.Word(w)^pad[w], &vecs, w, old[w*memline.WordCells:], refOut[:])
			if refIdx != idx[w] {
				t.Fatalf("word %d: SWAR index %d != scalar %d", w, idx[w], refIdx)
			}
			for c := 0; c < memline.WordCells; c++ {
				if dst[w*memline.WordCells+c] != refOut[c] {
					t.Fatalf("word %d cell %d: SWAR %v != scalar %v", w, c,
						dst[w*memline.WordCells+c], refOut[c])
				}
			}
		}
	})
}

// FuzzVCCCandidates asserts candidate-generation invariants for
// arbitrary (key, addr, ctr): determinism, the zero candidate, pad
// consistency with Pad, and the whitening involution.
func FuzzVCCCandidates(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), byte(2))
	f.Add(uint64(1)<<63, ^uint64(0), uint64(3), byte(1))
	f.Add(uint64(0xABCDEF), uint64(9), uint64(0xC0FFEE), byte(0))
	f.Fuzz(func(t *testing.T, addr, ctr, key uint64, nSel byte) {
		n := fuzzN(nSel)
		c := Cipher{Key: key}
		var pad1, pad2 [memline.LineWords]uint64
		var v1, v2 [MaxCandidates][memline.LineWords]uint64
		c.Candidates(addr, ctr, n, &pad1, &v1)
		c.Candidates(addr, ctr, n, &pad2, &v2)
		if pad1 != pad2 || v1 != v2 {
			t.Fatal("candidate generation not deterministic")
		}
		var pad3 [memline.LineWords]uint64
		c.Pad(addr, ctr, &pad3)
		if pad1 != pad3 {
			t.Fatal("Candidates pad differs from Pad")
		}
		if v1[0] != ([memline.LineWords]uint64{}) {
			t.Fatal("candidate 0 is not the zero vector")
		}
		var l memline.Line
		copy(l[:], []byte{byte(addr), byte(ctr), byte(key)})
		orig := l
		c.WhitenLine(&l, addr, ctr)
		c.WhitenLine(&l, addr, ctr)
		if !l.Equal(&orig) {
			t.Fatal("whitening is not an involution")
		}
	})
}
