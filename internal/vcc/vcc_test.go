package vcc

import (
	"testing"

	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

func randomLine(r *prng.Xoshiro256) memline.Line {
	var l memline.Line
	r.Fill(l[:])
	return l
}

func randomOld(r *prng.Xoshiro256, n int) []pcm.State {
	old := make([]pcm.State, n)
	for i := range old {
		old[i] = pcm.State(r.Intn(pcm.NumStates))
	}
	return old
}

func newVCC(t *testing.T, n int) *Scheme {
	t.Helper()
	s, err := New(pcm.DefaultEnergy(), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadCandidateCounts(t *testing.T) {
	for _, n := range []int{0, 1, 3, 5, 16} {
		if _, err := New(pcm.DefaultEnergy(), n, 0); err == nil {
			t.Errorf("n=%d: expected error", n)
		}
	}
}

func TestGeometry(t *testing.T) {
	want := map[int]int{2: 260, 4: 264, 8: 268}
	for n, total := range want {
		s := newVCC(t, n)
		if s.TotalCells() != total {
			t.Errorf("VCC-%d: TotalCells = %d, want %d", n, s.TotalCells(), total)
		}
		if s.DataCells() != memline.LineCells {
			t.Errorf("VCC-%d: DataCells = %d", n, s.DataCells())
		}
		if s.Candidates() != n {
			t.Errorf("VCC-%d: Candidates = %d", n, s.Candidates())
		}
	}
}

// TestRoundTripCtr is the central property: EncodeCtrInto followed by
// DecodeCtrInto with the same (addr, ctr) recovers the plaintext
// exactly, from any old state, for every candidate count — the "decodes
// bit-exactly through decrypt" acceptance criterion.
func TestRoundTripCtr(t *testing.T) {
	r := prng.New(1)
	for _, n := range []int{2, 4, 8} {
		s := newVCC(t, n)
		for trial := 0; trial < 200; trial++ {
			data := randomLine(r)
			old := randomOld(r, s.TotalCells())
			addr, ctr := r.Uint64()%4096, r.Uint64()%1024
			dst := make([]pcm.State, s.TotalCells())
			s.EncodeCtrInto(dst, old, addr, ctr, &data)
			var got memline.Line
			s.DecodeCtrInto(dst, addr, ctr, &got)
			if !got.Equal(&data) {
				t.Fatalf("VCC-%d: round trip failed at trial %d (addr %d ctr %d)", n, trial, addr, ctr)
			}
		}
	}
}

// TestRoundTripChained replays consecutive counter-incrementing writes
// over the scheme's own previous output, the way a shard drives it.
func TestRoundTripChained(t *testing.T) {
	r := prng.New(2)
	for _, n := range []int{2, 4, 8} {
		s := newVCC(t, n)
		cells := make([]pcm.State, s.TotalCells())
		scratch := make([]pcm.State, s.TotalCells())
		const addr = 77
		for ctr := uint64(1); ctr <= 50; ctr++ {
			data := randomLine(r)
			s.EncodeCtrInto(scratch, cells, addr, ctr, &data)
			cells, scratch = scratch, cells
			var got memline.Line
			s.DecodeCtrInto(cells, addr, ctr, &got)
			if !got.Equal(&data) {
				t.Fatalf("VCC-%d: chained round trip failed at ctr %d", n, ctr)
			}
		}
	}
}

// TestCounterBlindFormsAreCtrZero pins the Scheme-interface fallback:
// EncodeInto/DecodeInto must be exactly the (addr=0, ctr=0) keyed pair.
func TestCounterBlindFormsAreCtrZero(t *testing.T) {
	r := prng.New(3)
	s := newVCC(t, 4)
	data := randomLine(r)
	old := randomOld(r, s.TotalCells())
	a := make([]pcm.State, s.TotalCells())
	b := make([]pcm.State, s.TotalCells())
	s.EncodeInto(a, old, &data)
	s.EncodeCtrInto(b, old, 0, 0, &data)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("EncodeInto differs from EncodeCtrInto(0,0) at cell %d", i)
		}
	}
	var got memline.Line
	s.DecodeInto(a, &got)
	if !got.Equal(&data) {
		t.Fatal("counter-blind round trip failed")
	}
}

// TestEncodeIntoContract mirrors core's generic scheme contract:
// Encode == EncodeInto over garbage dst, and old is never mutated.
func TestEncodeIntoContract(t *testing.T) {
	r := prng.New(4)
	for _, n := range []int{2, 4, 8} {
		s := newVCC(t, n)
		data := randomLine(r)
		old := randomOld(r, s.TotalCells())
		snapshot := append([]pcm.State(nil), old...)
		dst := make([]pcm.State, s.TotalCells())
		for i := range dst {
			dst[i] = pcm.State(3)
		}
		s.EncodeInto(dst, old, &data)
		ref := s.Encode(old, &data)
		for i := range dst {
			if dst[i] != ref[i] {
				t.Fatalf("VCC-%d: EncodeInto differs from Encode at cell %d", n, i)
			}
		}
		for i := range old {
			if old[i] != snapshot[i] {
				t.Fatalf("VCC-%d: EncodeInto mutated old", n)
			}
		}
	}
}

// TestSWARMatchesScalar asserts the word-parallel encode path is
// bit-identical to the scalar CostTable reference: same chosen
// candidate index, same output states, for every word.
func TestSWARMatchesScalar(t *testing.T) {
	r := prng.New(5)
	for _, n := range []int{2, 4, 8} {
		s := newVCC(t, n)
		for trial := 0; trial < 100; trial++ {
			data := randomLine(r)
			old := randomOld(r, s.TotalCells())
			addr, ctr := r.Uint64(), r.Uint64()
			dst := make([]pcm.State, s.TotalCells())
			s.EncodeCtrInto(dst, old, addr, ctr, &data)

			var pad [memline.LineWords]uint64
			var vecs [MaxCandidates][memline.LineWords]uint64
			s.cipher.Candidates(addr, ctr, s.n, &pad, &vecs)
			var idx [memline.LineWords]uint8
			s.unpackIndices(dst[memline.LineCells:s.TotalCells()], &idx)
			var refOut [memline.WordCells]pcm.State
			for w := 0; w < memline.LineWords; w++ {
				cw := data.Word(w) ^ pad[w]
				refIdx := s.encodeWordScalar(cw, &vecs, w, old[w*memline.WordCells:], refOut[:])
				if refIdx != idx[w] {
					t.Fatalf("VCC-%d word %d: SWAR picked %d, scalar %d", n, w, idx[w], refIdx)
				}
				for c := 0; c < memline.WordCells; c++ {
					if dst[w*memline.WordCells+c] != refOut[c] {
						t.Fatalf("VCC-%d word %d cell %d: SWAR state %v != scalar %v",
							n, w, c, dst[w*memline.WordCells+c], refOut[c])
					}
				}
			}
		}
	}
}

// TestDeterministicAndKeyed: the same (key, addr, ctr, data, old)
// encodes identically; a different key or counter encodes differently
// (with overwhelming probability on random data).
func TestDeterministicAndKeyed(t *testing.T) {
	r := prng.New(6)
	s1, _ := New(pcm.DefaultEnergy(), 8, 0)
	s2, _ := New(pcm.DefaultEnergy(), 8, 0)
	s3, _ := New(pcm.DefaultEnergy(), 8, 12345)
	data := randomLine(r)
	old := randomOld(r, s1.TotalCells())
	a := s1.Encode(old, &data)
	b := s2.Encode(old, &data)
	c := s3.Encode(old, &data)
	same := func(x, y []pcm.State) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("identical schemes encode differently")
	}
	if same(a, c) {
		t.Error("different keys encode identically")
	}
	d1 := make([]pcm.State, s1.TotalCells())
	d2 := make([]pcm.State, s1.TotalCells())
	s1.EncodeCtrInto(d1, old, 9, 1, &data)
	s1.EncodeCtrInto(d2, old, 9, 2, &data)
	if same(d1, d2) {
		t.Error("consecutive counters encode identically")
	}
}

// TestReducesEnergyOnCiphertext: against the raw C1 write of the same
// ciphertext over the same old states, picking the cheapest of n
// candidates must reduce total energy, more with larger n — the VCC
// value proposition on encrypted traffic. Updated cells (including the
// index aux cells) must not regress either.
func TestReducesEnergyOnCiphertext(t *testing.T) {
	r := prng.New(7)
	em := pcm.DefaultEnergy()
	const trials = 600
	raw := 0.0
	rawUpd := 0
	energy := map[int]float64{}
	upd := map[int]int{}
	schemes := map[int]*Scheme{2: newVCC(t, 2), 4: newVCC(t, 4), 8: newVCC(t, 8)}
	for trial := 0; trial < trials; trial++ {
		data := randomLine(r)
		old := randomOld(r, 268) // max TotalCells; schemes slice their prefix
		addr, ctr := r.Uint64(), r.Uint64()

		// Raw encrypted write: ciphertext through the fixed C1 mapping.
		cipher := data
		Cipher{}.WhitenLine(&cipher, addr, ctr)
		rawCells := make([]pcm.State, memline.LineCells)
		var syms [memline.LineCells]uint8
		cipher.SymbolsInto(&syms)
		tab := coset.C1.CostTable(&em)
		tab.Encode(syms[:], rawCells)
		st := em.DiffWrite(old[:memline.LineCells], rawCells, memline.LineCells)
		raw += st.Energy()
		rawUpd += st.Updated()

		for n, s := range schemes {
			dst := make([]pcm.State, s.TotalCells())
			s.EncodeCtrInto(dst, old[:s.TotalCells()], addr, ctr, &data)
			st := em.DiffWrite(old[:s.TotalCells()], dst, s.DataCells())
			energy[n] += st.Energy()
			upd[n] += st.Updated()
		}
	}
	if !(energy[8] < energy[4] && energy[4] < energy[2] && energy[2] < raw) {
		t.Errorf("energy not monotonically improving: raw %.0f, VCC-2 %.0f, VCC-4 %.0f, VCC-8 %.0f",
			raw, energy[2], energy[4], energy[8])
	}
	// VCC-8 should recover well over 10% of the raw encrypted write.
	if energy[8] > 0.9*raw {
		t.Errorf("VCC-8 energy %.0f recovers <10%% of raw %.0f", energy[8], raw)
	}
	for n := range schemes {
		if upd[n] >= rawUpd {
			t.Errorf("VCC-%d updated cells %d >= raw %d", n, upd[n], rawUpd)
		}
	}
}

// TestEncryptedWrapperRoundTrip: Enc(inner) must round-trip plaintext
// through encrypt -> inner encode -> inner decode -> decrypt for keyed
// and counter-blind forms.
func TestEncryptedWrapperRoundTrip(t *testing.T) {
	r := prng.New(8)
	inner := newVCCInnerStub()
	e := NewEncrypted(inner, 0)
	if e.Name() != "Enc(stub)" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.TotalCells() != inner.TotalCells() || e.DataCells() != inner.DataCells() {
		t.Error("wrapper geometry must delegate")
	}
	for trial := 0; trial < 100; trial++ {
		data := randomLine(r)
		old := randomOld(r, e.TotalCells())
		addr, ctr := r.Uint64()%512, r.Uint64()%64
		dst := make([]pcm.State, e.TotalCells())
		e.EncodeCtrInto(dst, old, addr, ctr, &data)
		var got memline.Line
		e.DecodeCtrInto(dst, addr, ctr, &got)
		if !got.Equal(&data) {
			t.Fatalf("wrapper round trip failed at trial %d", trial)
		}
		// The inner scheme must have seen ciphertext, not the plaintext.
		var innerView memline.Line
		inner.DecodeInto(dst, &innerView)
		if innerView.Equal(&data) {
			t.Fatal("inner scheme stored plaintext — no encryption happened")
		}
	}
	var got memline.Line
	data := randomLine(r)
	cells := e.Encode(make([]pcm.State, e.TotalCells()), &data)
	e.DecodeInto(cells, &got)
	if !got.Equal(&data) {
		t.Fatal("counter-blind wrapper round trip failed")
	}
}

// vccInnerStub is a trivial raw C1 inner scheme for wrapper tests.
type vccInnerStub struct {
	tab coset.CostTable
}

func newVCCInnerStub() *vccInnerStub {
	em := pcm.DefaultEnergy()
	return &vccInnerStub{tab: coset.C1.CostTable(&em)}
}

func (s *vccInnerStub) Name() string    { return "stub" }
func (s *vccInnerStub) TotalCells() int { return memline.LineCells }
func (s *vccInnerStub) DataCells() int  { return memline.LineCells }

func (s *vccInnerStub) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	var syms [memline.LineCells]uint8
	data.SymbolsInto(&syms)
	s.tab.Encode(syms[:], dst[:memline.LineCells])
}

func (s *vccInnerStub) DecodeInto(cells []pcm.State, dst *memline.Line) {
	var syms [memline.LineCells]uint8
	for i := 0; i < memline.LineCells; i++ {
		syms[i] = s.tab.Inv[cells[i]]
	}
	dst.SetSymbolsFrom(&syms)
}

// TestStreamEncryptorRoundTrip: whitening a recorded stream twice with
// the same key restores it exactly — the tracegen -encrypt round trip.
func TestStreamEncryptorRoundTrip(t *testing.T) {
	r := prng.New(9)
	var reqs []trace.Request
	for i := 0; i < 300; i++ {
		reqs = append(reqs, trace.Request{
			Addr: uint64(r.Intn(16)), // few addresses: counters climb
			Old:  randomLine(r),
			New:  randomLine(r),
		})
	}
	src := &trace.SliceSource{Reqs: reqs}
	enc := NewEncryptSource(src, 42)
	dec := NewEncryptSource(enc, 42)
	for i := range reqs {
		got, ok := dec.Next()
		if !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		if got.Addr != reqs[i].Addr || !got.New.Equal(&reqs[i].New) || !got.Old.Equal(&reqs[i].Old) {
			t.Fatalf("round trip mismatch at request %d", i)
		}
	}
	if _, ok := dec.Next(); ok {
		t.Fatal("stream should have ended")
	}
}

// TestStreamEncryptorWhitens: the encrypted form of a highly biased
// stream must differ from the plaintext and advance per-line counters.
func TestStreamEncryptorWhitens(t *testing.T) {
	var biased memline.Line // all zero: maximally compressible
	src := &trace.SliceSource{Reqs: []trace.Request{
		{Addr: 5, New: biased},
		{Addr: 5, New: biased},
	}}
	enc := NewEncryptSource(src, 0)
	a, _ := enc.Next()
	b, _ := enc.Next()
	if a.New.Equal(&biased) || b.New.Equal(&biased) {
		t.Fatal("whitened line equals plaintext")
	}
	if a.New.Equal(&b.New) {
		t.Fatal("two writes of identical plaintext produced identical ciphertext — counter not advancing")
	}
	// The second request's Old must be the first request's ciphertext.
	if !b.Old.Equal(&a.New) {
		t.Fatal("Old of write 2 is not the stored ciphertext of write 1")
	}
	if enc.E.Counter(5) != 2 {
		t.Fatalf("counter = %d, want 2", enc.E.Counter(5))
	}
}

// TestCipherPadDeterminism pins the keystream: same (key, addr, ctr) →
// same pad; different ctr → different pad; candidate 0 is always zero.
func TestCipherPadDeterminism(t *testing.T) {
	c := Cipher{Key: 7}
	var p1, p2, p3 [memline.LineWords]uint64
	c.Pad(3, 9, &p1)
	c.Pad(3, 9, &p2)
	c.Pad(3, 10, &p3)
	if p1 != p2 {
		t.Error("pad not deterministic")
	}
	if p1 == p3 {
		t.Error("pad ignores the counter")
	}
	var pad [memline.LineWords]uint64
	var vecs [MaxCandidates][memline.LineWords]uint64
	c.Candidates(3, 9, 8, &pad, &vecs)
	if pad != p1 {
		t.Error("Candidates pad differs from Pad")
	}
	if vecs[0] != ([memline.LineWords]uint64{}) {
		t.Error("candidate 0 must be the zero vector")
	}
	seen := map[[memline.LineWords]uint64]bool{}
	for v := 1; v < 8; v++ {
		if seen[vecs[v]] {
			t.Errorf("candidate %d repeats", v)
		}
		seen[vecs[v]] = true
	}
}

// TestWhitenLineInvolution: whitening twice restores the line.
func TestWhitenLineInvolution(t *testing.T) {
	r := prng.New(10)
	c := Cipher{}
	l := randomLine(r)
	orig := l
	c.WhitenLine(&l, 11, 22)
	if l.Equal(&orig) {
		t.Fatal("whitening did nothing")
	}
	c.WhitenLine(&l, 11, 22)
	if !l.Equal(&orig) {
		t.Fatal("whitening is not an involution")
	}
}

// TestEncryptSourceNextBatchMatchesNext pins the batch path of the
// stream encryptor: counters advance in stream order, so draining the
// same plaintext stream through NextBatch yields the exact ciphertext
// sequence Next does — through a batch-capable inner source and through
// a legacy per-request one.
func TestEncryptSourceNextBatchMatchesNext(t *testing.T) {
	r := prng.New(14)
	reqs := make([]trace.Request, 100)
	for i := range reqs {
		reqs[i] = trace.Request{
			Addr: uint64(r.Intn(8)), // few addresses: counters climb
			Old:  randomLine(r),
			New:  randomLine(r),
		}
	}
	ref := NewEncryptSource(&trace.SliceSource{Reqs: reqs}, 0)
	want := make([]trace.Request, len(reqs))
	for i := range want {
		var ok bool
		if want[i], ok = ref.Next(); !ok {
			t.Fatalf("reference stream ended at %d", i)
		}
	}
	for _, batch := range []int{1, 7, 100} {
		bulk := NewEncryptSource(&trace.SliceSource{Reqs: reqs}, 0)
		dst := make([]trace.Request, batch)
		var got []trace.Request
		for {
			n := bulk.NextBatch(dst)
			if n == 0 {
				break
			}
			got = append(got, dst[:n]...)
		}
		if len(got) != len(want) {
			t.Fatalf("batch=%d drained %d requests, want %d", batch, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d ciphertext %d differs between Next and NextBatch", batch, i)
			}
		}
	}
}
