package vcc

import (
	"fmt"

	"wlcrc/internal/coset"
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// Scheme is the VCC-n write encoder: counter-mode encryption fused with
// per-word virtual coset selection. Each 64-bit word of the line is
// encrypted with the (key, addr, ctr) pad, then the cheapest of n
// candidate XOR vectors (candidate 0 = raw ciphertext) is applied and
// the result stored through the fixed C1 mapping; the winning index
// lands in the word's auxiliary cells. Decode reads the indices,
// regenerates the identical candidates from (key, addr, ctr), and
// undoes the XORs — the round trip ends in plaintext.
//
// Unlike WLCRC there is no compression gate: the encoded path is taken
// on every write, incompressible or not, which is the whole point on
// encrypted traffic.
//
// Scheme implements core.CounterScheme. The counter-blind
// EncodeInto/DecodeInto forms use (addr=0, ctr=0) — a degenerate
// static-whitening mode kept for the generic Scheme contract; replay
// frontends always drive the counter-aware path.
//
// Scheme is immutable after construction and safe for concurrent use;
// all per-call scratch lives on the caller's stack.
type Scheme struct {
	name    string
	n       int // candidates per word: 2, 4 or 8
	idxBits int // bits per stored index: log2(n)
	cipher  Cipher
	em      pcm.EnergyModel
	// swar prices and applies the fixed C1 mapping word-parallel; tab is
	// the scalar CostTable the reference encoder and tests price with.
	swar coset.SWARTable
	tab  coset.CostTable
}

// New builds a VCC scheme with n candidate vectors per word (2, 4 or 8)
// under the given energy model. key 0 means DefaultKey.
func New(em pcm.EnergyModel, n int, key uint64) (*Scheme, error) {
	bits := 0
	switch n {
	case 2:
		bits = 1
	case 4:
		bits = 2
	case 8:
		bits = 3
	default:
		return nil, fmt.Errorf("vcc: candidate count %d not in {2,4,8}", n)
	}
	return &Scheme{
		name:    fmt.Sprintf("VCC-%d", n),
		n:       n,
		idxBits: bits,
		cipher:  Cipher{Key: key},
		em:      em,
		swar:    coset.C1.SWAR(&em),
		tab:     coset.C1.CostTable(&em),
	}, nil
}

// Name implements core.Scheme.
func (s *Scheme) Name() string { return s.name }

// Candidates returns the per-word candidate count n.
func (s *Scheme) Candidates() int { return s.n }

// auxCells is the number of cells holding candidate indices: 8 words x
// idxBits bits, two bits per cell.
func (s *Scheme) auxCells() int { return memline.LineWords * s.idxBits / 2 }

// TotalCells implements core.Scheme: 256 data cells plus the candidate
// index cells (4, 8 or 12 for n = 2, 4, 8). The per-line write counter
// is not charged here — counter-mode encryption already maintains it in
// the counter store, and VCC merely reuses it (the paper's "free"
// randomness source).
func (s *Scheme) TotalCells() int { return memline.LineCells + s.auxCells() }

// DataCells implements core.Scheme.
func (s *Scheme) DataCells() int { return memline.LineCells }

// Encode implements core.Scheme (allocating wrapper, addr=0, ctr=0).
func (s *Scheme) Encode(old []pcm.State, data *memline.Line) []pcm.State {
	out := make([]pcm.State, s.TotalCells())
	s.EncodeInto(out, old, data)
	return out
}

// EncodeInto implements core.Scheme with the degenerate (addr=0, ctr=0)
// stream.
func (s *Scheme) EncodeInto(dst, old []pcm.State, data *memline.Line) {
	s.EncodeCtrInto(dst, old, 0, 0, data)
}

// Decode implements core.Scheme (allocating wrapper, addr=0, ctr=0).
func (s *Scheme) Decode(cells []pcm.State) memline.Line {
	var l memline.Line
	s.DecodeInto(cells, &l)
	return l
}

// DecodeInto implements core.Scheme with the degenerate (addr=0, ctr=0)
// stream.
func (s *Scheme) DecodeInto(cells []pcm.State, dst *memline.Line) {
	s.DecodeCtrInto(cells, 0, 0, dst)
}

// EncodeCtrInto implements core.CounterScheme: encrypt data under
// (addr, ctr), pick each word's cheapest candidate vector word-parallel,
// store the winners through C1 and the indices in the aux cells. Every
// cell of dst is written.
func (s *Scheme) EncodeCtrInto(dst, old []pcm.State, addr, ctr uint64, data *memline.Line) {
	var pad [memline.LineWords]uint64
	var vecs [MaxCandidates][memline.LineWords]uint64
	s.cipher.Candidates(addr, ctr, s.n, &pad, &vecs)

	var idx [memline.LineWords]uint8
	var p coset.WordPlanes
	for w := 0; w < memline.LineWords; w++ {
		cw := data.Word(w) ^ pad[w]
		p.Init(cw, old[w*memline.WordCells:(w+1)*memline.WordCells])
		clo, chi := p.Lo, p.Hi
		// Candidate 0 is the zero vector: price the ciphertext directly.
		best := 0
		bestCost, _ := s.swar.CostCount(&p, coset.AllCells)
		for c := 1; c < s.n; c++ {
			vlo, vhi := memline.LoHiPlanes(vecs[c][w])
			var cnt [4]int
			// LoHiPlanes is linear over XOR, so the candidate's planes
			// are two XORs — the word is never re-extracted.
			s.swar.CountsPlanes(clo^vlo, chi^vhi, &p, coset.AllCells, &cnt)
			cost, _ := s.swar.CostOf(&cnt)
			if cost < bestCost {
				best, bestCost = c, cost
			}
		}
		idx[w] = uint8(best)
		vlo, vhi := memline.LoHiPlanes(vecs[best][w])
		nlo, nhi := s.swar.ApplyPlanes(clo^vlo, chi^vhi)
		coset.UnpackStates(nlo, nhi, dst[w*memline.WordCells:(w+1)*memline.WordCells])
	}
	s.packIndices(&idx, dst[memline.LineCells:s.TotalCells()])
}

// DecodeCtrInto implements core.CounterScheme: read the indices,
// regenerate the candidates of (addr, ctr), undo the winning XOR and the
// pad. dst is fully overwritten.
func (s *Scheme) DecodeCtrInto(cells []pcm.State, addr, ctr uint64, dst *memline.Line) {
	var pad [memline.LineWords]uint64
	var vecs [MaxCandidates][memline.LineWords]uint64
	s.cipher.Candidates(addr, ctr, s.n, &pad, &vecs)

	var idx [memline.LineWords]uint8
	s.unpackIndices(cells[memline.LineCells:s.TotalCells()], &idx)
	for w := 0; w < memline.LineWords; w++ {
		slo, shi := coset.PackStates(cells[w*memline.WordCells:])
		dlo, dhi := s.swar.ApplyInvPlanes(slo, shi)
		cw := memline.InterleavePlanes(dlo, dhi)
		dst.SetWord(w, cw^vecs[idx[w]][w]^pad[w])
	}
}

// packIndices stores the eight per-word candidate indices, idxBits bits
// each LSB-first, into the auxiliary cells through the fixed AuxPack
// mapping.
func (s *Scheme) packIndices(idx *[memline.LineWords]uint8, aux []pcm.State) {
	var bits [memline.LineWords * 3]uint8
	k := 0
	for w := 0; w < memline.LineWords; w++ {
		for b := 0; b < s.idxBits; b++ {
			bits[k] = idx[w] >> uint(b) & 1
			k++
		}
	}
	coset.PackBitsToStates(bits[:k], aux)
}

// unpackIndices inverts packIndices.
func (s *Scheme) unpackIndices(aux []pcm.State, idx *[memline.LineWords]uint8) {
	var bits [memline.LineWords * 3]uint8
	coset.UnpackBits(aux, bits[:memline.LineWords*s.idxBits])
	k := 0
	for w := 0; w < memline.LineWords; w++ {
		idx[w] = 0
		for b := 0; b < s.idxBits; b++ {
			idx[w] |= bits[k] & 1 << uint(b)
			k++
		}
	}
}

// encodeWordScalar is the per-cell reference of the SWAR word path: it
// prices every candidate with the scalar CostTable, applies the winner
// symbol by symbol, and returns the chosen index. Equivalence tests and
// fuzz targets assert SWAR == scalar bit for bit.
func (s *Scheme) encodeWordScalar(cipherWord uint64, vecs *[MaxCandidates][memline.LineWords]uint64, w int, old, out []pcm.State) uint8 {
	best, bestCost := 0, 0.0
	for c := 0; c < s.n; c++ {
		var syms [memline.WordCells]uint8
		memline.WordSymbols(cipherWord^vecs[c][w], &syms)
		cost := s.tab.BlockCost(syms[:], old[:memline.WordCells])
		if c == 0 || cost < bestCost {
			best, bestCost = c, cost
		}
	}
	var syms [memline.WordCells]uint8
	memline.WordSymbols(cipherWord^vecs[best][w], &syms)
	s.tab.Encode(syms[:], out[:memline.WordCells])
	return uint8(best)
}
