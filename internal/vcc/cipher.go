// Package vcc implements Virtual Coset Coding for counter-mode
// encrypted PCM, after Longofono, Seyedzadeh & Jones (arXiv:2112.01658).
//
// Counter-mode memory encryption hands the write encoder uniformly
// random ciphertext: every write re-encrypts the whole line under a
// fresh per-line counter, so compression-gated schemes like WLCRC lose
// their gate (no line is WLC-compressible) and differential write loses
// its locality (the ciphertext changes wholesale even when the
// plaintext barely moved). VCC recovers coset-style write reduction on
// exactly this traffic: instead of the fixed Table-I candidates it
// derives n fresh pseudo-random candidate vectors per write from the
// same (key, address, counter) tuple the encryption pad comes from, XORs
// each candidate into the ciphertext word, prices the results with the
// word-parallel SWAR machinery of package coset, and stores only the
// winning candidate's index in auxiliary cells. Decode regenerates the
// identical candidates from (key, address, counter) — the counter is
// already maintained by the encryption engine, so it costs VCC nothing —
// undoes the winning XOR and then the encryption pad.
//
// The package provides three layers:
//
//   - Cipher: the deterministic keystream model — per-(key, addr,
//     counter) pads and candidate vectors (cipher.go).
//   - Scheme (VCC-2/4/8) and Encrypted (a wrapper that runs any inner
//     scheme on ciphertext): core.Scheme implementations registered in
//     internal/core (vcc.go, encrypted.go). Both implement the
//     core.CounterScheme extension; their address/counter-blind
//     EncodeInto/DecodeInto forms fall back to (addr=0, ctr=0).
//   - StreamEncryptor / EncryptSource: whiten a whole write-request
//     stream the way an encrypted DIMM would see it, for workloads and
//     traces (source.go).
package vcc

import (
	"wlcrc/internal/memline"
	"wlcrc/internal/prng"
)

// DefaultKey is the encryption key used when a caller does not supply
// one. Like core's flipMinSeed it pins the pseudo-random streams so
// every experiment is reproducible; it is not a security parameter.
const DefaultKey uint64 = 0x5EC2E7C0DE5EED01

// MaxCandidates bounds the per-word candidate count (VCC-8).
const MaxCandidates = 8

// Cipher is the deterministic counter-mode encryption model: a keyed
// keystream PRNG addressed by (line address, per-line write counter).
// The zero value uses DefaultKey. Cipher is a value type with no
// mutable state, so it is safe to share across goroutines.
type Cipher struct {
	// Key is the memory encryption key; 0 means DefaultKey.
	Key uint64
}

// key returns the effective key.
func (c Cipher) key() uint64 {
	if c.Key == 0 {
		return DefaultKey
	}
	return c.Key
}

// mix64 is the splitmix64 output finalizer, used to whiten the
// (key, addr, ctr) tuple into a stream seed.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// seed derives the per-(addr, ctr) stream seed. Address and counter are
// folded in through distinct odd multipliers before the finalizer so
// (addr, ctr) and (ctr, addr) collide only accidentally.
func (c Cipher) seed(addr, ctr uint64) uint64 {
	return mix64(mix64(c.key()^addr*0x9e3779b97f4a7c15) ^ ctr*0xd1342543de82ef95)
}

// Pad fills pad with the eight 64-bit keystream words of (addr, ctr) —
// the one-time pad a counter-mode AES engine would produce for the
// line. XORing the pad into a line encrypts it; XORing again decrypts.
func (c Cipher) Pad(addr, ctr uint64, pad *[memline.LineWords]uint64) {
	sm := prng.NewSplitMix64(c.seed(addr, ctr))
	for w := range pad {
		pad[w] = sm.Uint64()
	}
}

// WhitenLine XORs the (addr, ctr) keystream into l in place. The
// operation is an involution: applying it twice with the same (addr,
// ctr) restores l, so the same call encrypts and decrypts.
func (c Cipher) WhitenLine(l *memline.Line, addr, ctr uint64) {
	var pad [memline.LineWords]uint64
	c.Pad(addr, ctr, &pad)
	for w := 0; w < memline.LineWords; w++ {
		l.SetWord(w, l.Word(w)^pad[w])
	}
}

// Candidates fills pad with the line's keystream and vecs[0..n) with the
// n virtual coset candidate vectors of (addr, ctr), one 8-word vector
// per candidate. Candidate 0 is always the zero vector, so the raw
// ciphertext is a member of every candidate set and VCC can never do
// worse than the raw encrypted write on the cells it prices; candidates
// 1..n-1 are fresh pseudo-random draws from the continuation of the pad
// stream. n must be in [1, MaxCandidates].
func (c Cipher) Candidates(addr, ctr uint64, n int,
	pad *[memline.LineWords]uint64, vecs *[MaxCandidates][memline.LineWords]uint64) {
	if n < 1 || n > MaxCandidates {
		panic("vcc: candidate count out of range")
	}
	sm := prng.NewSplitMix64(c.seed(addr, ctr))
	for w := range pad {
		pad[w] = sm.Uint64()
	}
	for w := range vecs[0] {
		vecs[0][w] = 0
	}
	for v := 1; v < n; v++ {
		for w := range vecs[v] {
			vecs[v][w] = sm.Uint64()
		}
	}
}
