package vcc

import "wlcrc/internal/trace"

// StreamEncryptor whitens a write-request stream the way a counter-mode
// encrypted DIMM would store it: it maintains the per-line write
// counter (incremented on every write to an address, exactly the
// counter a real encryption engine keeps in its counter store) and XORs
// each request's New content with the pad of (addr, counter) and its Old
// content with the pad of the previous write (addr, counter-1). The
// first write to a line leaves Old untouched — there was no previous
// encrypted content.
//
// Because the pad XOR is an involution, applying a second
// StreamEncryptor with the same key to an already-encrypted stream
// decrypts it; the counters resynchronize because both passes see the
// same request order. That makes the transform its own inverse, which
// the trace round-trip tests rely on.
type StreamEncryptor struct {
	c    Cipher
	ctrs map[uint64]uint64
}

// streamDomain separates the stream-whitening keyspace from the
// scheme-side engine's: a whitened stream replayed through a VCC or
// Enc(...) scheme built from the same user key models two independent
// encryption engines (upstream link/OS encryption plus the DIMM's own),
// not one engine applied twice — without the separation the two pads
// would cancel bit for bit and silently hand the encoder plaintext.
const streamDomain uint64 = 0x9D39247E33776D41

// NewStreamEncryptor returns an encryptor with fresh counters. key 0
// means DefaultKey. The effective whitening key is domain-separated
// from the scheme-side engine's (see streamDomain); two
// StreamEncryptors built from the same key still share a keystream, so
// applying the transform twice remains the identity.
func NewStreamEncryptor(key uint64) *StreamEncryptor {
	return &StreamEncryptor{
		c:    Cipher{Key: mix64(Cipher{Key: key}.key() ^ streamDomain)},
		ctrs: make(map[uint64]uint64),
	}
}

// Apply advances the address's write counter and whitens the request in
// place.
func (e *StreamEncryptor) Apply(r *trace.Request) {
	n := e.ctrs[r.Addr] + 1
	e.ctrs[r.Addr] = n
	if n > 1 {
		e.c.WhitenLine(&r.Old, r.Addr, n-1)
	}
	e.c.WhitenLine(&r.New, r.Addr, n)
}

// Counter returns the current write counter of addr (0 = never written).
func (e *StreamEncryptor) Counter(addr uint64) uint64 { return e.ctrs[addr] }

// EncryptSource wraps a request source with a StreamEncryptor, yielding
// the stream's ciphertext form — the encrypted workload mode of
// internal/workload and the tracegen -encrypt transform.
type EncryptSource struct {
	Src trace.Source
	E   *StreamEncryptor
}

// NewEncryptSource wraps src with a fresh encryptor. key 0 means
// DefaultKey.
func NewEncryptSource(src trace.Source, key uint64) *EncryptSource {
	return &EncryptSource{Src: src, E: NewStreamEncryptor(key)}
}

// Next implements trace.Source.
func (s *EncryptSource) Next() (trace.Request, bool) {
	req, ok := s.Src.Next()
	if !ok {
		return trace.Request{}, false
	}
	s.E.Apply(&req)
	return req, true
}

// NextBatch implements trace.BatchSource: the wrapped source's batch
// fill (its own batch path when it has one) plus one in-place whitening
// pass per request. Counters advance in stream order, so the ciphertext
// is bit-identical to draining the same stream through Next.
func (s *EncryptSource) NextBatch(dst []trace.Request) int {
	var n int
	if bs, ok := s.Src.(trace.BatchSource); ok {
		n = bs.NextBatch(dst)
	} else {
		for n < len(dst) {
			req, ok := s.Src.Next()
			if !ok {
				break
			}
			dst[n] = req
			n++
		}
	}
	for i := 0; i < n; i++ {
		s.E.Apply(&dst[i])
	}
	return n
}
