// Package hw estimates the silicon cost of the WLCRC encode/decode
// pipeline — the §VI.B numbers the paper obtained with Synopsys Design
// Compiler on the 45nm FreePDK library. We cannot run a synthesis flow
// here, so this is a structural gate-count model: the architecture of
// Figure 7 is decomposed into adders, comparators and muxes, gate counts
// are derived from textbook implementations, and per-gate area / delay /
// energy constants are calibrated to 45nm standard-cell characteristics.
// DESIGN.md §2 documents the substitution; the model reproduces the
// paper's totals to the right order of magnitude and, more importantly,
// the relative costs (WLC is a tiny fraction of the design; decode is
// much faster than encode).
package hw

import (
	"fmt"

	"wlcrc/internal/stats"
)

// Tech holds per-gate constants for a technology node (NAND2-equivalent
// gates).
type Tech struct {
	Name       string
	AreaUM2    float64 // um^2 per gate (placed, routed overhead included)
	DelayNS    float64 // ns per gate of logic depth
	EnergyPJ   float64 // pJ per gate toggle at nominal activity
	ActivityPc float64 // fraction of gates toggling per operation
}

// FreePDK45 approximates the 45nm FreePDK standard-cell library the
// paper synthesized against: a NAND2 is ~0.8 um^2 raw; with routing and
// larger cells mixed in, ~1.9 um^2 per gate-equivalent is typical.
func FreePDK45() Tech {
	return Tech{
		Name:       "FreePDK45",
		AreaUM2:    1.9,
		DelayNS:    0.09, // effective ns/gate incl. wire load at 45nm
		EnergyPJ:   0.00035,
		ActivityPc: 0.18,
	}
}

// Module is a logic block with a gate count and a logic depth.
type Module struct {
	Name  string
	Gates int // NAND2-equivalent gates
	Depth int // critical-path logic depth in gates
	Count int // instances
}

// Gate-count building blocks (textbook ripple/carry-select figures).
const (
	gatesPerFullAdder   = 9
	gatesPerComparator2 = 3 // 2-bit equality/compare slice
	gatesPerMux2        = 3 // 2:1 mux bit slice
	gatesPerXor         = 2 // XOR as ~2 NAND2 equivalents
	gatesPerRegisterBit = 6 // DFF
)

// WLCRCDesign builds the module inventory of the Figure 7 architecture
// at 16-bit granularity: the WLC compressibility checker, eight
// restricted-coset word encoders (each evaluating C1/C2/C3 over four
// blocks and summing 10-bit energy costs), the differential-write XOR
// stage, and the decoder.
func WLCRCDesign() []Module {
	// WLC: per word, k-MSB equality check (6-input AND trees over 6 bits
	// and their complements) plus the line-level AND; decompression is a
	// 5-bit sign extension (wiring plus a mux).
	wlc := Module{Name: "WLC check+reclaim", Gates: 8*(2*6+4) + 8, Depth: 5, Count: 1}
	wld := Module{Name: "WLD sign-extend", Gates: 8 * (5 * gatesPerMux2), Depth: 2, Count: 1}

	// Per-word restricted coset encoder:
	//   - 3 candidate mappings x 32 cells: 2-bit remap LUT per cell (~4
	//     gates each)
	//   - per-cell cost lookup (10-bit energy) and difference detect vs
	//     old state: comparator + mask (~8 gates per cell per candidate)
	//   - 4 blocks x 2 adder trees summing eight 10-bit costs (7 adds of
	//     10 bits each) per candidate pair
	//   - block min-select comparators and the group compare
	remap := 3 * 32 * 4
	costDetect := 3 * 32 * 8
	adders := 4 * 2 * 7 * 10 / 2 * gatesPerFullAdder / 4 // compressed-tree estimate
	selects := 4*10*gatesPerComparator2 + 2*12*gatesPerComparator2
	regs := 64 * gatesPerRegisterBit
	encoder := Module{
		Name:  "Restricted coset encoder (per word)",
		Gates: remap + costDetect + adders + selects + regs,
		Depth: 5 /*remap+cost*/ + 11 /*adder tree*/ + 6, /*selects*/
		Count: 8,
	}

	// Differential write: XOR + change detect across 514 bits.
	diff := Module{Name: "DIFF stage", Gates: 514 * gatesPerXor, Depth: 2, Count: 1}

	// Decoder: read aux cells (fixed mapping), 2-bit inverse remap per
	// cell, then WLD. Far shallower than encode: no cost evaluation.
	decoder := Module{Name: "Restricted coset decoder (per word)",
		Gates: 32*4 + 5*gatesPerMux2*4, Depth: 6, Count: 8}

	return []Module{wlc, encoder, diff, decoder, wld}
}

// Report is the §VI.B cost summary.
type Report struct {
	Tech        Tech
	TotalGates  int
	AreaMM2     float64
	WriteNS     float64 // encode path latency
	ReadNS      float64 // decode path latency
	WritePJ     float64 // energy per encoded line write
	ReadPJ      float64 // energy per decoded line read
	WLCSharePct float64 // share of area in the WLC/WLD portion
}

// Estimate computes the cost report for a design on a technology.
func Estimate(tech Tech, design []Module) Report {
	var rep Report
	rep.Tech = tech
	var wlcGates int
	var encodeDepth, decodeDepth int
	var encodeGates, decodeGates int
	for _, m := range design {
		g := m.Gates * m.Count
		rep.TotalGates += g
		switch m.Name {
		case "WLC check+reclaim", "WLD sign-extend":
			wlcGates += g
		}
		switch m.Name {
		case "WLC check+reclaim", "Restricted coset encoder (per word)", "DIFF stage":
			if m.Depth > 0 {
				encodeDepth += m.Depth
			}
			encodeGates += g
		case "Restricted coset decoder (per word)", "WLD sign-extend":
			decodeDepth += m.Depth
			decodeGates += g
		}
	}
	rep.AreaMM2 = float64(rep.TotalGates) * tech.AreaUM2 / 1e6
	rep.WriteNS = float64(encodeDepth) * tech.DelayNS
	rep.ReadNS = float64(decodeDepth) * tech.DelayNS
	rep.WritePJ = float64(encodeGates) * tech.ActivityPc * tech.EnergyPJ
	rep.ReadPJ = float64(decodeGates) * tech.ActivityPc * tech.EnergyPJ
	if rep.TotalGates > 0 {
		rep.WLCSharePct = 100 * float64(wlcGates) / float64(rep.TotalGates)
	}
	return rep
}

// Table renders the report next to the paper's synthesized values.
func (r Report) Table() *stats.Table {
	t := stats.NewTable("metric", "model", "paper (§VI.B)")
	t.Row("area (mm^2)", fmt.Sprintf("%.4f", r.AreaMM2), "0.0498")
	t.Row("write delay (ns)", fmt.Sprintf("%.2f", r.WriteNS), "2.63")
	t.Row("read delay (ns)", fmt.Sprintf("%.2f", r.ReadNS), "0.89")
	t.Row("write energy (pJ)", fmt.Sprintf("%.2f", r.WritePJ), "0.94")
	t.Row("read energy (pJ)", fmt.Sprintf("%.2f", r.ReadPJ), "0.27")
	t.Row("WLC share of area (%)", fmt.Sprintf("%.1f", r.WLCSharePct), "~0.4 (0.0002 mm^2)")
	return t
}
