package hw

import "testing"

func TestEstimateOrdersOfMagnitude(t *testing.T) {
	rep := Estimate(FreePDK45(), WLCRCDesign())
	// The model stands in for synthesis; it must land in the paper's
	// neighborhood, not match it exactly.
	if rep.AreaMM2 < 0.005 || rep.AreaMM2 > 0.5 {
		t.Errorf("area = %.4f mm^2, want within [0.005, 0.5] around 0.0498", rep.AreaMM2)
	}
	if rep.WriteNS < 0.2 || rep.WriteNS > 10 {
		t.Errorf("write delay = %.2f ns, want around 2.63", rep.WriteNS)
	}
	if rep.ReadNS >= rep.WriteNS {
		t.Errorf("decode (%.2f ns) must be faster than encode (%.2f ns)", rep.ReadNS, rep.WriteNS)
	}
	if rep.ReadPJ >= rep.WritePJ {
		t.Errorf("read energy (%.2f pJ) must be below write energy (%.2f)", rep.ReadPJ, rep.WritePJ)
	}
	if rep.WritePJ < 0.05 || rep.WritePJ > 20 {
		t.Errorf("write energy = %.2f pJ, want around 0.94", rep.WritePJ)
	}
}

func TestWLCIsSmallShare(t *testing.T) {
	// §VI.B: the WLC compression/decompression portion is very small
	// compared to the encoders (paper: 0.0002 of 0.0498 mm^2).
	rep := Estimate(FreePDK45(), WLCRCDesign())
	if rep.WLCSharePct > 10 {
		t.Errorf("WLC share = %.1f%%, should be a small fraction", rep.WLCSharePct)
	}
}

func TestDesignInventory(t *testing.T) {
	design := WLCRCDesign()
	if len(design) != 5 {
		t.Fatalf("got %d modules", len(design))
	}
	encoders := 0
	for _, m := range design {
		if m.Gates <= 0 || m.Count <= 0 {
			t.Errorf("module %q has non-positive size", m.Name)
		}
		if m.Name == "Restricted coset encoder (per word)" {
			encoders = m.Count
		}
	}
	if encoders != 8 {
		t.Errorf("encoder instances = %d, want 8 (Figure 7)", encoders)
	}
}

func TestTableRenders(t *testing.T) {
	rep := Estimate(FreePDK45(), WLCRCDesign())
	if rep.Table().String() == "" {
		t.Error("empty table")
	}
}
