// Package server is the HTTP face of the pcmserver job daemon: a thin
// net/http layer over internal/jobs (submission, status, SSE event
// streams, cancellation) and internal/store (cross-run result and
// series queries), plus /healthz and a Prometheus-style text /metrics
// endpoint. All routing is manual path parsing — the go1.21 ServeMux
// has no pattern wildcards — and every response body is JSON except
// the SSE stream and /metrics.
//
// Endpoints:
//
//	POST   /v1/jobs            submit a replay or sweep spec (202)
//	GET    /v1/jobs            list jobs known to this process
//	GET    /v1/jobs/{id}        job status (falls back to the store
//	                            for jobs from previous server runs)
//	GET    /v1/jobs/{id}/events SSE stream: state/progress/snapshot
//	                            events, closed by a final done event
//	DELETE /v1/jobs/{id}        cancel (pending or running)
//	GET    /v1/results?scheme=&workload=&label=&job=   stored rows
//	GET    /v1/series           stored series names
//	GET    /v1/series/{name}    stored series points
//	POST   /v1/series           append a series observation
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text format
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"wlcrc/internal/jobs"
	"wlcrc/internal/store"
)

// Server routes HTTP requests onto a job manager and a store. Both are
// owned by the caller (cmd/pcmserver wires and shuts them down).
type Server struct {
	mgr   *jobs.Manager
	store store.Store
	log   *slog.Logger
	start time.Time
}

// New builds a Server. store may be nil (no persistence: /v1/results
// and /v1/series serve empty sets); log may be nil (silent).
func New(mgr *jobs.Manager, st store.Store, log *slog.Logger) *Server {
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Server{mgr: mgr, store: st, log: log, start: time.Now()}
}

// ServeHTTP implements http.Handler with structured request logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.route(sw, r)
	s.log.Info("request",
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.code,
		"duration_ms", time.Since(t0).Milliseconds(),
		"remote", r.RemoteAddr,
	)
}

// statusWriter captures the response code for the request log. It
// deliberately does not implement http.Flusher pass-through implicitly:
// the SSE handler needs Flush, so it is forwarded explicitly.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it streams.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// route dispatches by path. go1.21's ServeMux cannot express
// /v1/jobs/{id}/events, so the tree is parsed by hand.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		s.handleHealth(w, r)
	case path == "/metrics":
		s.handleMetrics(w, r)
	case path == "/v1/jobs":
		switch r.Method {
		case http.MethodPost:
			s.handleSubmit(w, r)
		case http.MethodGet:
			s.handleListJobs(w, r)
		default:
			s.methodNotAllowed(w, "GET, POST")
		}
	case strings.HasPrefix(path, "/v1/jobs/"):
		rest := strings.TrimPrefix(path, "/v1/jobs/")
		if id, ok := strings.CutSuffix(rest, "/events"); ok && !strings.Contains(id, "/") && id != "" {
			s.handleEvents(w, r, id)
			return
		}
		if rest == "" || strings.Contains(rest, "/") {
			s.errorJSON(w, http.StatusNotFound, "no such resource")
			return
		}
		switch r.Method {
		case http.MethodGet:
			s.handleJob(w, r, rest)
		case http.MethodDelete:
			s.handleCancel(w, r, rest)
		default:
			s.methodNotAllowed(w, "GET, DELETE")
		}
	case path == "/v1/results":
		s.handleResults(w, r)
	case path == "/v1/series":
		switch r.Method {
		case http.MethodGet:
			s.handleSeriesNames(w, r)
		case http.MethodPost:
			s.handleSeriesPost(w, r)
		default:
			s.methodNotAllowed(w, "GET, POST")
		}
	case strings.HasPrefix(path, "/v1/series/"):
		name := strings.TrimPrefix(path, "/v1/series/")
		if name == "" || strings.Contains(name, "/") {
			s.errorJSON(w, http.StatusNotFound, "no such resource")
			return
		}
		s.handleSeries(w, r, name)
	default:
		s.errorJSON(w, http.StatusNotFound, "no such resource")
	}
}

func (s *Server) methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	s.errorJSON(w, http.StatusMethodNotAllowed, "method not allowed")
}

// writeJSON writes v as the JSON response body.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("encode response", "err", err)
	}
}

// errorJSON writes a {"error": ...} body.
func (s *Server) errorJSON(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a jobs.Spec and queues it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.errorJSON(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	j, err := s.mgr.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.errorJSON(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, jobs.ErrShutdown):
		s.errorJSON(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		s.errorJSON(w, http.StatusBadRequest, "%v", err)
	default:
		s.writeJSON(w, http.StatusAccepted, j.Status())
	}
}

// handleListJobs lists this process's jobs, oldest first.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	live := s.mgr.Jobs()
	out := make([]jobs.Status, 0, len(live))
	for _, j := range live {
		out = append(out, j.Status())
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// handleJob returns one job's status: the live job when this process
// owns it, else the persisted record — results from previous server
// runs stay addressable by the same URL.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request, id string) {
	if j, ok := s.mgr.Job(id); ok {
		s.writeJSON(w, http.StatusOK, j.Status())
		return
	}
	if s.store != nil {
		if rec, ok := s.store.Job(id); ok {
			s.writeJSON(w, http.StatusOK, rec)
			return
		}
	}
	s.errorJSON(w, http.StatusNotFound, "no job %q", id)
}

// handleCancel cancels a pending or running job.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, id string) {
	if !s.mgr.Cancel(id) {
		s.errorJSON(w, http.StatusNotFound, "no job %q", id)
		return
	}
	j, _ := s.mgr.Job(id)
	s.writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams a job's events as SSE until the job finishes or
// the client goes away. Every stream ends with a `done` event carrying
// the job's final status (also sent immediately for already-terminal
// jobs, so late subscribers still get a well-formed stream).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, "GET")
		return
	}
	j, ok := s.mgr.Job(id)
	if !ok {
		s.errorJSON(w, http.StatusNotFound, "no job %q", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.errorJSON(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	ch, cancel := j.Subscribe(256)
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// Terminal: close the stream with the final status.
				send("done", j.Status())
				return
			}
			if !send(ev.Type, ev) {
				return
			}
		}
	}
}

// handleResults serves stored result rows filtered by query params.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, "GET")
		return
	}
	rows := []store.ResultRow{}
	if s.store != nil {
		q := store.Query{
			Scheme:   r.URL.Query().Get("scheme"),
			Workload: r.URL.Query().Get("workload"),
			Label:    r.URL.Query().Get("label"),
			JobID:    r.URL.Query().Get("job"),
		}
		rows = s.store.Results(q)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"results": rows})
}

// handleSeriesNames lists stored series.
func (s *Server) handleSeriesNames(w http.ResponseWriter, r *http.Request) {
	names := []string{}
	if s.store != nil {
		names = s.store.SeriesNames()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"series": names})
}

// handleSeries serves one series' points in append order.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, "GET")
		return
	}
	pts := []store.SeriesPoint{}
	if s.store != nil {
		pts = s.store.Series(name)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"name": name, "points": pts})
}

// handleSeriesPost appends one series observation — the push side of
// benchguard -from-store (CI records a measured bench map, later runs
// gate against it).
func (s *Server) handleSeriesPost(w http.ResponseWriter, r *http.Request) {
	var p store.SeriesPoint
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	if err := dec.Decode(&p); err != nil {
		s.errorJSON(w, http.StatusBadRequest, "bad series point: %v", err)
		return
	}
	if p.Name == "" || len(p.Values) == 0 {
		s.errorJSON(w, http.StatusBadRequest, "series point needs a name and values")
		return
	}
	if s.store == nil {
		s.errorJSON(w, http.StatusServiceUnavailable, "no store configured")
		return
	}
	if p.Unix == 0 {
		p.Unix = time.Now().UnixNano()
	}
	if err := s.store.PutSeries(p); err != nil {
		s.errorJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusCreated, p)
}

// handleHealth is the liveness probe.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
	})
}

// handleMetrics renders the Prometheus text exposition format by hand —
// a dozen gauges and counters do not justify a client library (and the
// repo is stdlib-only by charter).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.mgr.Counters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	metric := func(name, help, typ string, val any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, val)
	}
	metric("pcmserver_jobs_submitted_total", "Jobs accepted into the queue.", "counter", c.Submitted)
	metric("pcmserver_jobs_completed_total", "Jobs that reached done (including degraded).", "counter", c.Completed)
	metric("pcmserver_jobs_failed_total", "Jobs that reached failed.", "counter", c.Failed)
	metric("pcmserver_jobs_canceled_total", "Jobs canceled before or during their run.", "counter", c.Canceled)
	metric("pcmserver_jobs_running", "Jobs currently replaying.", "gauge", c.Running)
	metric("pcmserver_jobs_running_peak", "High-water mark of concurrently running jobs.", "gauge", c.PeakRunning)
	metric("pcmserver_queue_depth", "Pending jobs waiting for a pool worker.", "gauge", c.QueueDepth)
	metric("pcmserver_replayed_requests_total", "Engine requests dispatched across all jobs.", "counter", c.Replayed)
	if sw, ok := s.store.(interface{ Writes() uint64 }); ok && s.store != nil {
		metric("pcmserver_store_writes_total", "Records appended to the result store by this process.", "counter", sw.Writes())
	}
	metric("pcmserver_uptime_seconds", "Seconds since the server started.", "gauge", int64(time.Since(s.start).Seconds()))
	io.WriteString(w, b.String())
}
