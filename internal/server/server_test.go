package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"wlcrc"
	"wlcrc/internal/jobs"
	"wlcrc/internal/server"
	"wlcrc/internal/sim"
	"wlcrc/internal/store"
)

// newTestServer wires a manager + optional store dir behind an
// httptest server and tears everything down with the test.
func newTestServer(t *testing.T, cfg jobs.Config, dataDir string) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	var st store.Store
	if dataDir != "" {
		js, err := store.Open(dataDir)
		if err != nil {
			t.Fatal(err)
		}
		st = js
		t.Cleanup(func() { js.Close() })
	}
	cfg.Store = st
	mgr := jobs.NewManager(cfg)
	t.Cleanup(mgr.Shutdown)
	ts := httptest.NewServer(server.New(mgr, st, nil))
	t.Cleanup(ts.Close)
	return ts, mgr
}

// submit POSTs a spec and decodes the accepted status.
func submit(t *testing.T, ts *httptest.Server, spec jobs.Spec) jobs.Status {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %v", resp.StatusCode, e)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// getStatus fetches one job's status.
func getStatus(t *testing.T, ts *httptest.Server, id string) (jobs.Status, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobs.Status
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// waitDone polls a job over the API until it reaches a terminal state.
func waitDone(t *testing.T, ts *httptest.Server, id string, want jobs.State) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, code := getStatus(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %q (err=%q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return jobs.Status{}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	event string
	data  []byte
}

// readSSE consumes a job's event stream until the final done event.
func readSSE(t *testing.T, ts *httptest.Server, id string) []sseEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
				if cur.event == "done" {
					return events
				}
				cur = sseEvent{}
			}
		}
	}
	t.Fatalf("SSE stream ended without a done event (%d events, scan err %v)", len(events), sc.Err())
	return nil
}

// TestSubmitStreamFetch is the headline flow: submit a job, watch its
// SSE stream deliver progress and snapshots, then fetch the result and
// find it in the store.
func TestSubmitStreamFetch(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{
		Pool:             2,
		SnapshotInterval: 5 * time.Millisecond,
		ProgressInterval: time.Millisecond,
	}, t.TempDir())

	st := submit(t, ts, jobs.Spec{
		Workload: "gcc", Writes: 150000, Seed: 11, Label: "stream",
		Schemes: []string{"Baseline", "WLCRC-16"},
	})
	if st.State != jobs.StatePending && st.State != jobs.StateRunning {
		t.Fatalf("accepted job state = %q", st.State)
	}

	events := readSSE(t, ts, st.ID)
	var sawProgress, sawSnapshot bool
	for _, e := range events {
		switch e.event {
		case "progress":
			var ev jobs.Event
			if err := json.Unmarshal(e.data, &ev); err != nil || ev.Progress == nil {
				t.Fatalf("bad progress event %s (err=%v)", e.data, err)
			}
			if ev.Progress.Workload == "gcc" && ev.Progress.Dispatched > 0 {
				sawProgress = true
			}
		case "snapshot":
			sawSnapshot = true
		}
	}
	if !sawProgress {
		t.Error("SSE stream delivered no progress events")
	}
	if !sawSnapshot {
		t.Error("SSE stream delivered no snapshot events")
	}
	final := events[len(events)-1]
	var done jobs.Status
	if err := json.Unmarshal(final.data, &done); err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("final SSE status = %q (err=%q)", done.State, done.Error)
	}

	got := waitDone(t, ts, st.ID, jobs.StateDone)
	if len(got.Results) != 1 || len(got.Results[0].Metrics) != 2 {
		t.Fatalf("results = %+v", got.Results)
	}
	if got.Results[0].Metrics[0].Writes != 150000 {
		t.Errorf("writes = %d", got.Results[0].Metrics[0].Writes)
	}

	// The store has the flattened rows, queryable by scheme and label.
	resp, err := http.Get(ts.URL + "/v1/results?scheme=wlcrc-16&label=stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows struct {
		Results []store.ResultRow `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows.Results) != 1 || rows.Results[0].JobID != st.ID || rows.Results[0].Metrics.Writes != 150000 {
		t.Fatalf("stored rows = %+v", rows.Results)
	}
}

// TestDeterminismMatchesDirectReplay is the product guarantee: metrics
// produced by the server — through job queueing, concurrent execution,
// JSON encoding and the HTTP API — are bit-identical to a direct
// wlcrc.Replay of the same spec.
func TestDeterminismMatchesDirectReplay(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Pool: 4}, "")

	const (
		writes = 4000
		seed   = 17
	)
	schemeNames := []string{"Baseline", "WLCRC-16", "VCC-4"}

	// Direct path: the public batch API, serial workers.
	var schemes []wlcrc.Scheme
	for _, n := range schemeNames {
		schemes = append(schemes, wlcrc.MustScheme(n))
	}
	wl, err := wlcrc.NewWorkload("gcc", 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := wlcrc.Replay(wl, writes, wlcrc.ReplayOptions{Seed: seed, Workers: 1, TrackWear: true}, schemes...)
	if err != nil {
		t.Fatal(err)
	}

	// Server path: same spec, default (parallel) workers, JSON round
	// trip through the API.
	st := submit(t, ts, jobs.Spec{
		Workload: "gcc", Writes: writes, Seed: seed, TrackWear: true,
		Schemes: schemeNames,
	})
	got := waitDone(t, ts, st.ID, jobs.StateDone)
	if len(got.Results) != 1 {
		t.Fatalf("results = %+v", got.Results)
	}
	if !reflect.DeepEqual(got.Results[0].Metrics, direct) {
		t.Errorf("server metrics diverge from direct wlcrc.Replay:\n got %+v\nwant %+v",
			got.Results[0].Metrics, direct)
	}
}

// TestConcurrentJobs drives the acceptance criterion: at least 4 jobs
// replaying concurrently over HTTP, observed through the /metrics
// running gauge.
func TestConcurrentJobs(t *testing.T) {
	ts, mgr := newTestServer(t, jobs.Config{Pool: 4}, "")

	// Submit all four in parallel: on a single-CPU machine a running
	// engine starves sequential submits long enough for early jobs to
	// finish, so the POSTs must race the replays to get four jobs into
	// the running state at once. The jobs are single-worker and big
	// enough to outlive the submission burst by a wide margin.
	ids := make([]string, 4)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := jobs.Spec{
				Workload: "gcc", Writes: 150000, Seed: uint64(i + 1),
				Schemes: []string{"Baseline"}, Workers: 1,
			}
			body, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs[i] = fmt.Errorf("submit %d: status %d", i, resp.StatusCode)
				return
			}
			var st jobs.Status
			if errs[i] = json.NewDecoder(resp.Body).Decode(&st); errs[i] == nil {
				ids[i] = st.ID
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		waitDone(t, ts, id, jobs.StateDone)
	}
	if peak := mgr.Counters().PeakRunning; peak < 4 {
		t.Errorf("peak concurrent jobs = %d, want >= 4", peak)
	}

	// The Prometheus endpoint reports the lifetime counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	metrics := buf.String()
	for _, want := range []string{
		"pcmserver_jobs_submitted_total 4",
		"pcmserver_jobs_completed_total 4",
		"pcmserver_jobs_running_peak 4",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestRestartPersistence: results written by one server process are
// served by the next one from the same data dir, addressable by the
// same job URL and queryable by scheme.
func TestRestartPersistence(t *testing.T) {
	dir := t.TempDir()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := jobs.NewManager(jobs.Config{Pool: 1, Store: st1})
	ts1 := httptest.NewServer(server.New(mgr1, st1, nil))
	job := submit(t, ts1, jobs.Spec{Workload: "lbm", Writes: 800, Seed: 5, Label: "restart", Schemes: []string{"WLCRC-16"}})
	final := waitDone(t, ts1, job.ID, jobs.StateDone)
	ts1.Close()
	mgr1.Shutdown()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second server process: fresh manager, same data dir.
	ts2, _ := newTestServer(t, jobs.Config{Pool: 1}, dir)
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job from previous run: status %d", resp.StatusCode)
	}
	var rec store.JobRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != "done" || len(rec.Results) != 1 {
		t.Fatalf("restored record = %+v", rec)
	}
	if !reflect.DeepEqual(rec.Results[0].Metrics, final.Results[0].Metrics) {
		t.Error("metrics changed across the restart round trip")
	}

	resp2, err := http.Get(ts2.URL + "/v1/results?scheme=WLCRC-16")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var rows struct {
		Results []store.ResultRow `json:"results"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows.Results) != 1 || rows.Results[0].Label != "restart" {
		t.Fatalf("rows after restart = %+v", rows.Results)
	}
}

// TestCancelOverHTTP cancels a running job with DELETE and checks the
// canceled state lands, with whatever partial snapshot the engine had.
func TestCancelOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Pool: 1}, "")
	// A job big enough to still be running when the DELETE arrives.
	st := submit(t, ts, jobs.Spec{Workload: "gcc", Writes: 50000000, Workers: 1, Schemes: []string{"Baseline"}})

	// Wait until it is actually running before canceling.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		cur, _ := getStatus(t, ts, st.ID)
		if cur.State == jobs.StateRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	waitDone(t, ts, st.ID, jobs.StateCanceled)
}

// TestAPIErrors covers the unhappy paths: bad specs, unknown jobs,
// wrong methods.
func TestAPIErrors(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Pool: 1}, "")

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/jobs", `{"workload":"nope"}`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"schemes":["bogus"]}`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"unknown_field":1}`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `not json`, http.StatusBadRequest},
		{"GET", "/v1/jobs/nope", "", http.StatusNotFound},
		{"DELETE", "/v1/jobs/nope", "", http.StatusNotFound},
		{"GET", "/v1/jobs/nope/events", "", http.StatusNotFound},
		{"PUT", "/v1/jobs", "", http.StatusMethodNotAllowed},
		{"GET", "/v1/nope", "", http.StatusNotFound},
		{"POST", "/v1/series", `{"values":{}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

// TestSeriesEndpoints pushes a series point and reads it back — the
// push side of benchguard -from-store.
func TestSeriesEndpoints(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Pool: 1}, t.TempDir())

	point := store.SeriesPoint{Name: "encode", Unix: 99, Values: map[string]float64{"WLCRC-16": 1466.5, "Baseline": 2200}}
	body, _ := json.Marshal(point)
	resp, err := http.Post(ts.URL+"/v1/series", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST series: status %d", resp.StatusCode)
	}

	resp2, err := http.Get(ts.URL + "/v1/series/encode")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var got struct {
		Name   string              `json:"name"`
		Points []store.SeriesPoint `json:"points"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 1 || !reflect.DeepEqual(got.Points[0], point) {
		t.Fatalf("series points = %+v, want %+v", got.Points, point)
	}

	resp3, err := http.Get(ts.URL + "/v1/series")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var names struct {
		Series []string `json:"series"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names.Series) != "[encode]" {
		t.Fatalf("series names = %v", names.Series)
	}
}

// TestHealthz sanity-checks the liveness probe.
func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Pool: 1}, "")
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, body)
	}
}

var _ = sim.Metrics{} // the API round-trips sim.Metrics; keep the import explicit
