// Package pcm models a multi-level-cell (MLC) phase change memory at the
// level of detail the paper's evaluation needs: four resistance states per
// cell, per-state programming energies (Table II), differential write,
// endurance accounting (number of programmed cells) and the write
// disturbance model (per-state disturbance error rates when a neighboring
// cell is RESET).
package pcm

import "fmt"

// State is one of the four programmable resistance states of a 4-level
// cell. States are numbered in order of programming energy: S1 cheapest
// (a single RESET pulse), S4 most expensive (RESET plus many partial SET
// iterations). See paper §III and Table I/II.
type State uint8

// The four MLC states.
const (
	S1 State = iota // RESET state, highest resistance
	S2              // SET state, lowest resistance (immune to disturbance)
	S3              // intermediate, high programming energy
	S4              // intermediate, highest programming energy
)

// NumStates is the number of programmable states of a 4-level cell.
const NumStates = 4

// String implements fmt.Stringer.
func (s State) String() string {
	if s < NumStates {
		return [NumStates]string{"S1", "S2", "S3", "S4"}[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// EnergyModel holds the programming-energy parameters of the device.
// Writing a cell always starts with a RESET pulse (Reset pJ) followed by
// the per-state iterative SET energy (Set[s] pJ). These default to the
// 90nm MLC PCM prototype values the paper uses (Table II), and the Fig 14
// sensitivity study swaps in reduced intermediate-state energies.
type EnergyModel struct {
	Reset float64            // pJ for the initial RESET pulse
	Set   [NumStates]float64 // additional pJ of SET iterations per target state
}

// DefaultEnergy is the Table II energy model: 36 pJ RESET; SET energies
// 0, 20, 307 and 547 pJ for S1..S4.
func DefaultEnergy() EnergyModel {
	return EnergyModel{Reset: 36, Set: [NumStates]float64{0, 20, 307, 547}}
}

// ScaledEnergy returns the Table II model with the intermediate state
// energies (S3, S4) replaced, as in the Figure 14 sensitivity study.
func ScaledEnergy(s3, s4 float64) EnergyModel {
	m := DefaultEnergy()
	m.Set[S3] = s3
	m.Set[S4] = s4
	return m
}

// WriteEnergy returns the energy in pJ to program a cell into state s
// (RESET plus iterative SET).
func (m *EnergyModel) WriteEnergy(s State) float64 { return m.Reset + m.Set[s] }

// DisturbModel holds the per-state write disturbance error rates: the
// probability that an idle cell currently in state s is disturbed when an
// adjacent cell undergoes a RESET. S2 (minimum resistance) is immune.
// Values are the 20nm measurements from Table II.
type DisturbModel struct {
	DER [NumStates]float64
}

// DefaultDisturb returns the Table II disturbance rates:
// S1 12.3%, S2 0%, S3 27.6%, S4 15.2%.
func DefaultDisturb() DisturbModel {
	return DisturbModel{DER: [NumStates]float64{0.123, 0, 0.276, 0.152}}
}

// WriteStats aggregates the cost of one differential write of a cell
// vector, split into the data-cell region and the auxiliary region the
// way the paper's figures report them (blk vs aux).
type WriteStats struct {
	EnergyData  float64 // pJ spent programming data cells
	EnergyAux   float64 // pJ spent programming auxiliary cells
	UpdatedData int     // number of data cells programmed
	UpdatedAux  int     // number of auxiliary cells programmed
}

// Energy returns the total programming energy.
func (w WriteStats) Energy() float64 { return w.EnergyData + w.EnergyAux }

// Updated returns the total number of programmed cells.
func (w WriteStats) Updated() int { return w.UpdatedData + w.UpdatedAux }

// Add accumulates o into w.
func (w *WriteStats) Add(o WriteStats) {
	w.EnergyData += o.EnergyData
	w.EnergyAux += o.EnergyAux
	w.UpdatedData += o.UpdatedData
	w.UpdatedAux += o.UpdatedAux
}

// DiffWrite computes the differential-write cost of programming the cell
// vector old into new. Only cells whose state changes are programmed
// (Zhou et al. [37]); each programmed cell costs Reset + Set[new state].
// Cells with index < dataCells are accounted as data, the rest as aux.
// The two slices must have equal length.
func (m *EnergyModel) DiffWrite(old, new []State, dataCells int) WriteStats {
	if len(old) != len(new) {
		panic("pcm: DiffWrite on cell vectors of different length")
	}
	var st WriteStats
	for i, n := range new {
		if old[i] == n {
			continue
		}
		e := m.WriteEnergy(n)
		if i < dataCells {
			st.EnergyData += e
			st.UpdatedData++
		} else {
			st.EnergyAux += e
			st.UpdatedAux++
		}
	}
	return st
}

// DiffWriteMask is DiffWrite fused with ChangedMaskInto: one pass over
// the cell vectors charges the write and fills changed with the
// programmed-cell mask. The replay hot path calls this instead of the
// two separate sweeps; changed is reused when large enough.
func (m *EnergyModel) DiffWriteMask(old, new []State, dataCells int, changed []bool) (WriteStats, []bool) {
	if len(old) != len(new) {
		panic("pcm: DiffWriteMask on cell vectors of different length")
	}
	if cap(changed) < len(old) {
		changed = make([]bool, len(old))
	}
	changed = changed[:len(old)]
	var st WriteStats
	for i, n := range new {
		ch := old[i] != n
		changed[i] = ch
		if !ch {
			continue
		}
		e := m.WriteEnergy(n)
		if i < dataCells {
			st.EnergyData += e
			st.UpdatedData++
		} else {
			st.EnergyAux += e
			st.UpdatedAux++
		}
	}
	return st, changed
}

// ChangedMask returns a bitmask-style bool slice marking cells whose state
// differs between old and new (the cells a differential write programs).
func ChangedMask(old, new []State) []bool {
	return ChangedMaskInto(make([]bool, len(old)), old, new)
}

// ChangedMaskInto fills dst with the changed-cell mask, reusing dst's
// backing when it is large enough — the allocation-free form replay hot
// paths use with a per-shard scratch buffer.
func ChangedMaskInto(dst []bool, old, new []State) []bool {
	if len(old) != len(new) {
		panic("pcm: ChangedMask on cell vectors of different length")
	}
	if cap(dst) < len(old) {
		dst = make([]bool, len(old))
	}
	dst = dst[:len(old)]
	for i := range old {
		dst[i] = old[i] != new[i]
	}
	return dst
}

// Sampler abstracts the randomness used by the disturbance model so tests
// can use deterministic expected-value accounting.
type Sampler interface {
	// Bool returns true with probability p.
	Bool(p float64) bool
}

// DisturbStats counts write disturbance errors for one write request,
// split by region like WriteStats.
type DisturbStats struct {
	ErrorsData float64 // disturbance errors among idle data cells
	ErrorsAux  float64 // disturbance errors among idle aux cells
}

// Errors returns the total disturbance errors.
func (d DisturbStats) Errors() float64 { return d.ErrorsData + d.ErrorsAux }

// Add accumulates o into d.
func (d *DisturbStats) Add(o DisturbStats) {
	d.ErrorsData += o.ErrorsData
	d.ErrorsAux += o.ErrorsAux
}

// CountDisturb simulates write disturbance for one write request.
// changed marks the cells programmed by this request (each programmed
// cell undergoes a RESET whose heat may disturb its immediate physical
// neighbors). An idle neighbor in state s is disturbed with probability
// DER[s]; S2 is immune. Disturbed cells are counted but not corrupted:
// the paper assumes Verify-and-Restore repairs them before they become
// visible (§VIII.C).
//
// If rnd is nil the expected number of errors is accumulated instead of
// sampling, which is deterministic and is what the unit tests and the
// default experiment configuration use. states holds the post-write cell
// states; cells with index < dataCells count toward ErrorsData.
func (dm *DisturbModel) CountDisturb(states []State, changed []bool, dataCells int, rnd Sampler) DisturbStats {
	if len(states) != len(changed) {
		panic("pcm: CountDisturb length mismatch")
	}
	var st DisturbStats
	n := len(states)
	for i, ch := range changed {
		if ch {
			continue // programmed cells are not idle; they cannot be disturbed
		}
		// A cell is exposed once if at least one neighbor is RESET this
		// request. (Modeling per-neighbor independent exposure instead
		// changes magnitudes slightly but not orderings; the paper counts
		// "idle cells disturbed by neighboring cells".)
		exposed := (i > 0 && changed[i-1]) || (i < n-1 && changed[i+1])
		if !exposed {
			continue
		}
		p := dm.DER[states[i]]
		if p == 0 {
			continue
		}
		var hit float64
		if rnd == nil {
			hit = p
		} else if rnd.Bool(p) {
			hit = 1
		}
		if i < dataCells {
			st.ErrorsData += hit
		} else {
			st.ErrorsAux += hit
		}
	}
	return st
}

// DisturbedCells samples which idle cells are disturbed by this write
// (same exposure model as CountDisturb, always sampled — rnd must be
// non-nil). Disturbance is unidirectional: it drives a cell toward the
// minimum-resistance SET state, so a disturbed cell's content becomes
// S2. The returned indices let a fault-injection simulator corrupt and
// then Verify-and-Restore the array (§VIII.C).
func (dm *DisturbModel) DisturbedCells(states []State, changed []bool, rnd Sampler) []int {
	return dm.DisturbedCellsInto(nil, states, changed, rnd)
}

// DisturbedCellsInto is DisturbedCells appending into dst[:0], so a
// caller with a reusable buffer samples without allocating.
func (dm *DisturbModel) DisturbedCellsInto(dst []int, states []State, changed []bool, rnd Sampler) []int {
	if rnd == nil {
		panic("pcm: DisturbedCells requires a sampler")
	}
	if len(states) != len(changed) {
		panic("pcm: DisturbedCells length mismatch")
	}
	hits := dst[:0]
	n := len(states)
	for i, ch := range changed {
		if ch {
			continue
		}
		exposed := (i > 0 && changed[i-1]) || (i < n-1 && changed[i+1])
		if !exposed {
			continue
		}
		if p := dm.DER[states[i]]; p > 0 && rnd.Bool(p) {
			hits = append(hits, i)
		}
	}
	return hits
}
