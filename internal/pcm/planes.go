package pcm

import "math/bits"

// Plane-resident write accounting for the arena replay path. Lines are
// stored as (lo, hi) bit-plane pairs — 32 cells in the low bits of each
// uint64, cell c of word w at bit c&31 of words 2w (low state bit) and
// 2w+1 (high state bit) — with every bit at or beyond the line's cell
// count zero. Under that tail-zero invariant the XOR of two lines'
// planes is a valid changed-cell mask with no extra clamping, which is
// what makes the mask-based forms below drop-in replacements for the
// scalar DiffWriteMask/CountDisturb pair.
//
// Both routines visit cells in ascending index order, charging each
// cell exactly the way the scalar loops do, so energy sums and sampler
// draw sequences are bit-identical to the reference path.

// planeWordCells is the number of cells per plane word pair.
const planeWordCells = 32

// DiffWriteMasks computes the differential-write cost of programming
// the plane-resident line oldP into newP and fills masks[w] with the
// changed-cell mask of cells [32w, 32w+32). masks must have
// len(oldP)/2 words; cells with index < dataCells are accounted as
// data, the rest as aux.
func (m *EnergyModel) DiffWriteMasks(oldP, newP, masks []uint64, dataCells int) WriteStats {
	var st WriteStats
	for w := range masks {
		lo, hi := newP[2*w], newP[2*w+1]
		ch := (oldP[2*w] ^ lo) | (oldP[2*w+1] ^ hi)
		masks[w] = ch
		base := w * planeWordCells
		for mch := ch; mch != 0; mch &= mch - 1 {
			b := bits.TrailingZeros64(mch)
			s := State(lo>>uint(b)&1 | (hi>>uint(b)&1)<<1)
			e := m.Reset + m.Set[s]
			if base+b < dataCells {
				st.EnergyData += e
				st.UpdatedData++
			} else {
				st.EnergyAux += e
				st.UpdatedAux++
			}
		}
	}
	return st
}

// CountDisturbMasks is CountDisturb over a plane-resident post-write
// line and its changed-cell masks. Exposure is the same immediate-
// neighbor model: an idle cell next to at least one programmed cell is
// disturbed with probability DER[state]. totalCells bounds the valid
// cells of the final word — tail bits read as S1, whose DER is
// nonzero, so they must be masked out rather than trusted to skip.
func (dm *DisturbModel) CountDisturbMasks(newP, masks []uint64, totalCells, dataCells int, rnd Sampler) DisturbStats {
	var st DisturbStats
	nw := len(masks)
	const wordMask = 1<<planeWordCells - 1
	for w := 0; w < nw; w++ {
		ch := masks[w]
		exp := (ch<<1 | ch>>1) & wordMask
		if w > 0 {
			exp |= masks[w-1] >> (planeWordCells - 1) & 1
		}
		if w+1 < nw {
			exp |= (masks[w+1] & 1) << (planeWordCells - 1)
		}
		exp &^= ch
		base := w * planeWordCells
		if rem := totalCells - base; rem < planeWordCells {
			if rem <= 0 {
				break
			}
			exp &= 1<<uint(rem) - 1
		}
		if exp == 0 {
			continue
		}
		lo, hi := newP[2*w], newP[2*w+1]
		for ; exp != 0; exp &= exp - 1 {
			b := bits.TrailingZeros64(exp)
			p := dm.DER[lo>>uint(b)&1|(hi>>uint(b)&1)<<1]
			if p == 0 {
				continue
			}
			var hit float64
			if rnd == nil {
				hit = p
			} else if rnd.Bool(p) {
				hit = 1
			}
			if base+b < dataCells {
				st.ErrorsData += hit
			} else {
				st.ErrorsAux += hit
			}
		}
	}
	return st
}
