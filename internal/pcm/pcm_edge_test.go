package pcm

import (
	"testing"

	"wlcrc/internal/prng"
)

func TestChangedMaskPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ChangedMask([]State{S1}, []State{S1, S2})
}

func TestCountDisturbPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d := DefaultDisturb()
	d.CountDisturb([]State{S1, S2}, []bool{true}, 2, nil)
}

func TestDisturbedCellsRequiresSampler(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d := DefaultDisturb()
	d.DisturbedCells([]State{S1}, []bool{false}, nil)
}

func TestDisturbedCellsEdgeCells(t *testing.T) {
	// First and last cells have only one neighbor; writing cell 0 must
	// be able to disturb cell 1 but nothing else.
	d := DisturbModel{DER: [NumStates]float64{1, 1, 1, 1}} // always disturb
	r := prng.New(1)
	states := []State{S1, S3, S4}
	hits := d.DisturbedCells(states, []bool{true, false, false}, r)
	if len(hits) != 1 || hits[0] != 1 {
		t.Errorf("hits = %v, want [1]", hits)
	}
	hits = d.DisturbedCells(states, []bool{false, false, true}, r)
	if len(hits) != 1 || hits[0] != 1 {
		t.Errorf("hits = %v, want [1]", hits)
	}
}

func TestDisturbedCellsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d := DefaultDisturb()
	d.DisturbedCells([]State{S1, S2}, []bool{true}, prng.New(1))
}

func TestCountDisturbSingleCellArray(t *testing.T) {
	// Degenerate geometry: one cell, written — no neighbors, no errors.
	d := DefaultDisturb()
	st := d.CountDisturb([]State{S4}, []bool{true}, 1, nil)
	if st.Errors() != 0 {
		t.Errorf("errors = %v", st.Errors())
	}
	// One idle cell, nothing written: no exposure.
	st = d.CountDisturb([]State{S4}, []bool{false}, 1, nil)
	if st.Errors() != 0 {
		t.Errorf("errors = %v", st.Errors())
	}
}

func TestWriteEnergyAllStates(t *testing.T) {
	m := DefaultEnergy()
	want := map[State]float64{S1: 36, S2: 56, S3: 343, S4: 583}
	for s, w := range want {
		if got := m.WriteEnergy(s); got != w {
			t.Errorf("WriteEnergy(%v) = %v, want %v", s, got, w)
		}
	}
}

func TestDisturbStatsAdd(t *testing.T) {
	a := DisturbStats{ErrorsData: 1, ErrorsAux: 2}
	a.Add(DisturbStats{ErrorsData: 3, ErrorsAux: 4})
	if a.ErrorsData != 4 || a.ErrorsAux != 6 || a.Errors() != 10 {
		t.Errorf("Add: %+v", a)
	}
}
