package pcm

import (
	"math"
	"testing"
	"testing/quick"

	"wlcrc/internal/prng"
)

func TestDefaultEnergyTableII(t *testing.T) {
	m := DefaultEnergy()
	if m.Reset != 36 {
		t.Errorf("Reset = %v, want 36", m.Reset)
	}
	want := [NumStates]float64{0, 20, 307, 547}
	if m.Set != want {
		t.Errorf("Set = %v, want %v", m.Set, want)
	}
	// Energy ordering S1 < S2 < S3 < S4 must hold: states are numbered by
	// programming energy (paper §III).
	for s := S1; s < S4; s++ {
		if m.WriteEnergy(s) >= m.WriteEnergy(s+1) {
			t.Errorf("WriteEnergy(%v) >= WriteEnergy(%v)", s, s+1)
		}
	}
	if got := m.WriteEnergy(S1); got != 36 {
		t.Errorf("WriteEnergy(S1) = %v, want 36", got)
	}
	if got := m.WriteEnergy(S4); got != 583 {
		t.Errorf("WriteEnergy(S4) = %v, want 583", got)
	}
}

func TestScaledEnergy(t *testing.T) {
	m := ScaledEnergy(75, 135)
	if m.Set[S3] != 75 || m.Set[S4] != 135 {
		t.Errorf("ScaledEnergy Set = %v", m.Set)
	}
	if m.Set[S1] != 0 || m.Set[S2] != 20 {
		t.Error("ScaledEnergy must not change S1/S2")
	}
}

func TestDefaultDisturbTableII(t *testing.T) {
	d := DefaultDisturb()
	want := [NumStates]float64{0.123, 0, 0.276, 0.152}
	if d.DER != want {
		t.Errorf("DER = %v, want %v", d.DER, want)
	}
}

func TestStateString(t *testing.T) {
	if S1.String() != "S1" || S4.String() != "S4" {
		t.Error("State.String broken")
	}
	if State(9).String() != "State(9)" {
		t.Error("out-of-range State.String broken")
	}
}

func TestDiffWriteIdentical(t *testing.T) {
	m := DefaultEnergy()
	cells := []State{S1, S2, S3, S4, S1}
	st := m.DiffWrite(cells, cells, len(cells))
	if st.Energy() != 0 || st.Updated() != 0 {
		t.Errorf("rewriting identical data: %+v, want zero", st)
	}
}

func TestDiffWriteAccounting(t *testing.T) {
	m := DefaultEnergy()
	old := []State{S1, S1, S1, S1}
	new := []State{S2, S1, S4, S3}
	st := m.DiffWrite(old, new, 2)
	// data region: cell0 S1->S2 (56), cell1 unchanged.
	if st.EnergyData != 56 || st.UpdatedData != 1 {
		t.Errorf("data: %+v", st)
	}
	// aux region: cell2 S1->S4 (583), cell3 S1->S3 (343).
	if st.EnergyAux != 583+343 || st.UpdatedAux != 2 {
		t.Errorf("aux: %+v", st)
	}
	if st.Energy() != 56+583+343 {
		t.Errorf("total energy %v", st.Energy())
	}
	if st.Updated() != 3 {
		t.Errorf("updated %v", st.Updated())
	}
}

func TestDiffWritePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m := DefaultEnergy()
	m.DiffWrite([]State{S1}, []State{S1, S2}, 1)
}

func TestWriteStatsAdd(t *testing.T) {
	a := WriteStats{EnergyData: 1, EnergyAux: 2, UpdatedData: 3, UpdatedAux: 4}
	b := WriteStats{EnergyData: 10, EnergyAux: 20, UpdatedData: 30, UpdatedAux: 40}
	a.Add(b)
	if a.EnergyData != 11 || a.EnergyAux != 22 || a.UpdatedData != 33 || a.UpdatedAux != 44 {
		t.Errorf("Add: %+v", a)
	}
}

func TestChangedMask(t *testing.T) {
	old := []State{S1, S2, S3}
	new := []State{S1, S3, S3}
	mask := ChangedMask(old, new)
	want := []bool{false, true, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Errorf("mask[%d] = %v", i, mask[i])
		}
	}
}

func TestCountDisturbExpectedValue(t *testing.T) {
	d := DefaultDisturb()
	// Layout: cell1 is written; idle neighbors cell0 (S1) and cell2 (S3)
	// are exposed; cell3 (S4) is not adjacent to a written cell.
	states := []State{S1, S2, S3, S4}
	changed := []bool{false, true, false, false}
	st := d.CountDisturb(states, changed, 4, nil)
	want := 0.123 + 0.276
	if math.Abs(st.Errors()-want) > 1e-12 {
		t.Errorf("expected errors = %v, want %v", st.Errors(), want)
	}
	if st.ErrorsAux != 0 {
		t.Errorf("aux errors = %v, want 0", st.ErrorsAux)
	}
}

func TestCountDisturbS2Immune(t *testing.T) {
	d := DefaultDisturb()
	states := []State{S2, S1, S2}
	changed := []bool{false, true, false}
	st := d.CountDisturb(states, changed, 3, nil)
	if st.Errors() != 0 {
		t.Errorf("S2 neighbors must be immune, got %v", st.Errors())
	}
}

func TestCountDisturbWrittenCellsNotDisturbed(t *testing.T) {
	d := DefaultDisturb()
	states := []State{S1, S1, S1}
	changed := []bool{true, true, true}
	st := d.CountDisturb(states, changed, 3, nil)
	if st.Errors() != 0 {
		t.Errorf("written cells are not idle; got %v errors", st.Errors())
	}
}

func TestCountDisturbRegionSplit(t *testing.T) {
	d := DefaultDisturb()
	// cell0 data idle S1, cell1 data written, cell2 aux idle S3 exposed
	// by written cell1.
	states := []State{S1, S2, S3}
	changed := []bool{false, true, false}
	st := d.CountDisturb(states, changed, 2, nil)
	if math.Abs(st.ErrorsData-0.123) > 1e-12 {
		t.Errorf("ErrorsData = %v", st.ErrorsData)
	}
	if math.Abs(st.ErrorsAux-0.276) > 1e-12 {
		t.Errorf("ErrorsAux = %v", st.ErrorsAux)
	}
}

func TestCountDisturbSampledMatchesExpectation(t *testing.T) {
	d := DefaultDisturb()
	states := []State{S1, S2, S3, S1, S4, S1, S3, S2}
	changed := []bool{false, true, false, true, false, false, true, false}
	exp := d.CountDisturb(states, changed, len(states), nil).Errors()
	rnd := prng.New(99)
	var total float64
	const n = 200000
	for i := 0; i < n; i++ {
		total += d.CountDisturb(states, changed, len(states), rnd).Errors()
	}
	got := total / n
	if math.Abs(got-exp) > 0.01 {
		t.Errorf("sampled mean = %v, expected-value mode = %v", got, exp)
	}
}

func TestQuickDisturbOnlyIdleNeighbors(t *testing.T) {
	// Property: with all cells in S4 (max DER), expected errors equal
	// DER[S4] times the number of idle cells adjacent to a changed cell.
	d := DefaultDisturb()
	f := func(pattern uint16) bool {
		n := 16
		states := make([]State, n)
		changed := make([]bool, n)
		idleExposed := 0
		for i := 0; i < n; i++ {
			states[i] = S4
			changed[i] = pattern>>uint(i)&1 == 1
		}
		for i := 0; i < n; i++ {
			if changed[i] {
				continue
			}
			if (i > 0 && changed[i-1]) || (i < n-1 && changed[i+1]) {
				idleExposed++
			}
		}
		st := d.CountDisturb(states, changed, n, nil)
		return math.Abs(st.Errors()-0.152*float64(idleExposed)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDiffWriteEnergyNonNegative(t *testing.T) {
	m := DefaultEnergy()
	f := func(oldRaw, newRaw [16]uint8) bool {
		old := make([]State, 16)
		new := make([]State, 16)
		for i := range old {
			old[i] = State(oldRaw[i] % NumStates)
			new[i] = State(newRaw[i] % NumStates)
		}
		st := m.DiffWrite(old, new, 8)
		if st.EnergyData < 0 || st.EnergyAux < 0 {
			return false
		}
		// Updated count equals number of differing cells.
		diff := 0
		for i := range old {
			if old[i] != new[i] {
				diff++
			}
		}
		return st.Updated() == diff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffWriteMaskMatchesSeparatePasses(t *testing.T) {
	em := DefaultEnergy()
	rnd := uint64(12345)
	next := func(n int) State {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return State(rnd >> 33 % uint64(n))
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + int(next(300))
		old := make([]State, n)
		neu := make([]State, n)
		for i := range old {
			old[i] = next(NumStates)
			neu[i] = next(NumStates)
		}
		dataCells := int(next(4)) * n / 3
		st, changed := em.DiffWriteMask(old, neu, dataCells, nil)
		if want := em.DiffWrite(old, neu, dataCells); st != want {
			t.Fatalf("trial %d: fused stats %+v != separate %+v", trial, st, want)
		}
		wantMask := ChangedMask(old, neu)
		for i := range changed {
			if changed[i] != wantMask[i] {
				t.Fatalf("trial %d: mask differs at %d", trial, i)
			}
		}
	}
}
