package pcm

import (
	"testing"

	"wlcrc/internal/prng"
)

// packTestPlanes packs a cell vector into the bit-plane layout the
// arena stores: planes[2w] holds the low state bits and planes[2w+1]
// the high state bits of cells [32w, 32w+32), tail bits zero. (The
// canonical packer lives in coset, which imports pcm — re-implemented
// here to keep the test in-package.)
func packTestPlanes(cells []State) []uint64 {
	words := 2 * ((len(cells) + 31) / 32)
	p := make([]uint64, words)
	for i, s := range cells {
		p[2*(i/32)] |= uint64(s&1) << uint(i%32)
		p[2*(i/32)+1] |= uint64(s>>1) << uint(i%32)
	}
	return p
}

// randStates fills a random cell vector.
func randStates(r *prng.Xoshiro256, n int) []State {
	cells := make([]State, n)
	for i := range cells {
		cells[i] = State(r.Intn(NumStates))
	}
	return cells
}

// maskEquivCase cross-checks the plane-mask accounting against the
// scalar reference for one (old, new) pair: DiffWriteMasks must produce
// the exact WriteStats of DiffWrite (bit-identical floats — both visit
// changed cells in the same ascending order) plus the changed mask of
// ChangedMask, and CountDisturbMasks must produce the exact
// DisturbStats of CountDisturb under both expected-value and sampled
// accounting, with identical PRNG draw sequences.
func maskEquivCase(t *testing.T, old, new []State, dataCells int, seed uint64) {
	t.Helper()
	em := DefaultEnergy()
	dm := DefaultDisturb()
	n := len(old)

	wantW := em.DiffWrite(old, new, dataCells)
	wantCh := ChangedMask(old, new)

	oldP, newP := packTestPlanes(old), packTestPlanes(new)
	masks := make([]uint64, len(newP)/2)
	gotW := em.DiffWriteMasks(oldP, newP, masks, dataCells)
	if wantW != gotW {
		t.Fatalf("DiffWriteMasks = %+v, DiffWrite = %+v", gotW, wantW)
	}
	for i, ch := range wantCh {
		if got := masks[i/32]>>uint(i%32)&1 == 1; got != ch {
			t.Fatalf("changed mask differs at cell %d: plane %v scalar %v", i, got, ch)
		}
	}
	for w, m := range masks {
		hi := (w + 1) * 32
		if hi > n {
			if m>>(uint(n-w*32)) != 0 {
				t.Fatalf("mask word %d has tail bits set: %#x", w, m)
			}
		}
	}

	// Expected-value disturbance.
	wantD := dm.CountDisturb(new, wantCh, dataCells, nil)
	gotD := dm.CountDisturbMasks(newP, masks, n, dataCells, nil)
	if wantD != gotD {
		t.Fatalf("CountDisturbMasks = %+v, CountDisturb = %+v", gotD, wantD)
	}

	// Sampled disturbance: identical stats from identical seeds, and the
	// two streams must end at the same position (same number of draws).
	r1, r2 := prng.New(seed), prng.New(seed)
	wantS := dm.CountDisturb(new, wantCh, dataCells, r1)
	gotS := dm.CountDisturbMasks(newP, masks, n, dataCells, r2)
	if wantS != gotS {
		t.Fatalf("sampled CountDisturbMasks = %+v, CountDisturb = %+v", gotS, wantS)
	}
	if a, b := r1.Uint64(), r2.Uint64(); a != b {
		t.Fatalf("sampled paths consumed different draw counts (next draws %#x vs %#x)", a, b)
	}
}

// TestPlaneMaskAccountingMatchesScalar sweeps the plane-mask energy and
// disturbance accounting over the line geometries the schemes use (257
// and 258 total cells, 256 data cells) plus boundary sizes around the
// 32-cell plane word.
func TestPlaneMaskAccountingMatchesScalar(t *testing.T) {
	r := prng.New(20260807)
	sizes := []struct{ n, data int }{
		{257, 256}, {258, 256}, {256, 256}, {64, 32}, {33, 32}, {32, 16}, {1, 1},
	}
	for _, sz := range sizes {
		for trial := 0; trial < 40; trial++ {
			old := randStates(r, sz.n)
			new := randStates(r, sz.n)
			if trial%4 == 0 {
				copy(new, old) // no-op write: nothing changed, nothing exposed
				if sz.n > 2 {
					new[sz.n/2] = (new[sz.n/2] + 1) % NumStates
				}
			}
			maskEquivCase(t, old, new, sz.data, uint64(trial)+1)
		}
	}
}

// FuzzPlaneMaskAccounting fuzzes the same equivalence: the input bytes
// drive both state vectors and the data-cell split.
func FuzzPlaneMaskAccounting(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{3, 2, 1, 0}, uint16(2))
	f.Add([]byte{1}, []byte{2}, uint16(1))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 3}, []byte{1, 1, 1, 1, 0, 0, 0, 0, 3}, uint16(8))
	f.Fuzz(func(t *testing.T, a, b []byte, dataSel uint16) {
		if len(a) == 0 || len(b) == 0 {
			t.Skip("empty vectors")
		}
		n := len(a)
		if n > 258 {
			n = 258
		}
		old := make([]State, n)
		new := make([]State, n)
		for i := 0; i < n; i++ {
			old[i] = State(a[i] % 4)
			new[i] = State(b[i%len(b)] % 4)
		}
		dataCells := int(dataSel) % (n + 1)
		maskEquivCase(t, old, new, dataCells, uint64(dataSel)+7)
	})
}
