package prng

import (
	"math"
	"testing"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the splitmix64 reference
	// implementation (Vigna).
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	c := New(8)
	same := 0
	a2 := New(7)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn(10): value %d appeared %d times, want ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(3)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.123) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.123) > 0.01 {
		t.Errorf("Bool(0.123) rate = %v", got)
	}
}

func TestFill(t *testing.T) {
	r := New(4)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 65} {
		b := make([]byte, n)
		r.Fill(b)
		if n >= 16 {
			zero := 0
			for _, v := range b {
				if v == 0 {
					zero++
				}
			}
			if zero == n {
				t.Errorf("Fill(%d) produced all zeros", n)
			}
		}
	}
}

func TestPick(t *testing.T) {
	r := New(5)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	r0 := float64(counts[0]) / n
	if math.Abs(r0-0.25) > 0.01 {
		t.Errorf("index 0 rate = %v, want ~0.25", r0)
	}
	if got := r.Pick([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero weights: Pick = %d, want 0", got)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
