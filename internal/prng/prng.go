// Package prng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator. Experiments must be exactly
// reproducible across runs and platforms, so all randomness in the
// repository flows through this package instead of math/rand.
package prng

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// used to seed Xoshiro and as a cheap standalone stream.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements xoshiro256** 1.0 (Blackman & Vigna). It has a
// 256-bit state, passes BigCrush, and is far faster than crypto-grade
// generators, which matters when generating hundreds of millions of lines.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 seeded from seed via SplitMix64, as recommended
// by the xoshiro authors.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// An all-zero state would be a fixed point; splitmix makes that
	// astronomically unlikely, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (x *Xoshiro256) Uint32() uint32 { return uint32(x.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation. The bias for
	// n << 2^64 is negligible for simulation purposes.
	return int((uint64(x.Uint32()) * uint64(n)) >> 32)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (x *Xoshiro256) Bool(p float64) bool { return x.Float64() < p }

// Fill fills b with random bytes.
func (x *Xoshiro256) Fill(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := x.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := x.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to weights[i]. Zero or negative weights are treated as zero. If all
// weights are zero it returns 0.
func (x *Xoshiro256) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	r := x.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if r < w {
			return i
		}
		r -= w
	}
	return len(weights) - 1
}
