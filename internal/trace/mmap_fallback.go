//go:build !unix || wlcrc_nommap

package trace

import (
	"io"
	"os"
)

// mapFile is the portable fallback for platforms without mmap (or any
// build with -tags wlcrc_nommap): the file is loaded into memory with
// one bulk read. The nil release function tells MappedSource it owns a
// plain heap copy — Mapped() reports false, and Close is a no-op — but
// the decode path and every stream semantic are identical to the mmap
// build, which is exactly what the cross-build equivalence tests pin.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	n, err := io.ReadFull(f, data)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		// The file shrank between Stat and read; serve what is there.
		return data[:n], nil, nil
	}
	return data[:n], nil, err
}
