//go:build unix && !wlcrc_nommap

package trace

import (
	"os"
	"syscall"
)

// mapFile memory-maps size bytes of f read-only and returns the mapping
// with its release function. The mapping is independent of the file
// descriptor's lifetime, so the caller may close f immediately.
//
// Build the portable fallback instead with -tags wlcrc_nommap (or on
// any non-unix platform, automatically).
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
