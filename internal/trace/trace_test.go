package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"wlcrc/internal/memline"
	"wlcrc/internal/prng"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(1)
	var reqs []Request
	for i := 0; i < 100; i++ {
		var req Request
		req.Addr = uint64(r.Intn(1 << 20))
		r.Fill(req.Old[:])
		r.Fill(req.New[:])
		reqs = append(reqs, req)
		if err := w.Write(req); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 100 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range reqs {
		got, err := rd.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

// TestCloseBackPatchesCount writes a trace to a real file, closes it,
// and checks that the header's count field — written as 0 up front —
// was patched to the true record count, that the records survive, and
// that appending position was restored (the stream is not truncated or
// corrupted by the seek dance).
func TestCloseBackPatchesCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.wlct")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(7)
	var reqs []Request
	for i := 0; i < 37; i++ {
		var req Request
		req.Addr = uint64(i * 3)
		r.Fill(req.New[:])
		reqs = append(reqs, req)
		if err := w.Write(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	rd, err := NewReader(g)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Count() != 37 {
		t.Errorf("header count = %d, want 37", rd.Count())
	}
	for i, want := range reqs {
		got, err := rd.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d mismatch after back-patch", i)
		}
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Errorf("expected EOF after %d records, got %v", len(reqs), err)
	}
}

// TestCloseOnUnseekableKeepsZeroCount: pipes and buffers cannot be
// back-patched; Close must still flush cleanly and leave the header's
// streamed-count convention (0) intact.
func TestCloseOnUnseekableKeepsZeroCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Write(Request{Addr: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Count() != 0 {
		t.Errorf("unseekable header count = %d, want 0 (unknown)", rd.Count())
	}
	n := 0
	for {
		if _, err := rd.Read(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 5 {
		t.Errorf("read %d records, want 5", n)
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("NOPE0000000000000000")
	if _, err := NewReader(buf); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	buf := bytes.NewBufferString("WL")
	if _, err := NewReader(buf); err == nil {
		t.Error("expected error on truncated header")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	var req Request
	req.Addr = 42
	w.Write(req)
	w.Flush()
	data := buf.Bytes()
	rd, err := NewReader(bytes.NewReader(data[:len(data)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Read(); err == nil {
		t.Error("expected error on truncated record")
	}
}

func TestReaderSource(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		var req Request
		req.Addr = uint64(i)
		req.New[0] = byte(i)
		w.Write(req)
	}
	w.Flush()
	rd, _ := NewReader(&buf)
	src := &ReaderSource{R: rd}
	n := 0
	for {
		req, ok := src.Next()
		if !ok {
			break
		}
		if req.Addr != uint64(n) {
			t.Errorf("record %d addr = %d", n, req.Addr)
		}
		n++
	}
	if n != 5 {
		t.Errorf("read %d records", n)
	}
	if src.Err() != nil {
		t.Errorf("Err = %v", src.Err())
	}
}

func TestRecordSizeMatchesLineGeometry(t *testing.T) {
	var req Request
	if len(req.Old) != memline.LineBytes || len(req.New) != memline.LineBytes {
		t.Error("trace record payload does not match the 64-byte line")
	}
}
