package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// benchRecords is the per-pass record count for BenchmarkIngest. Every
// sub-benchmark decodes exactly this many records per iteration, so the
// ns/op of the three paths are directly comparable and their ratio is
// the per-record decode-cost ratio cmd/benchguard -ingest gates.
const benchRecords = 4096

// BenchmarkIngest measures pure trace-decode throughput through the
// three ingest paths a replay can take:
//
//	reader  per-record Reader.Read — the pre-PR7 hot loop
//	batch   Reader.ReadBatch in ingest-chunk-sized slices
//	mapped  MappedSource.NextBatch decoding zero-copy off the mapping
//
// reader and batch run over the same in-memory image (so the bufio
// layer's underlying reads are free in all cases and the delta is pure
// per-record overhead); mapped decodes a page-cached temp file. The
// committed ingest_pr7 series in BENCH_encode.json records the ratio.
func BenchmarkIngest(b *testing.B) {
	image, _ := testTraceImage(b, benchRecords, 99)
	path := filepath.Join(b.TempDir(), "bench.wlct")
	if err := os.WriteFile(path, image, 0o644); err != nil {
		b.Fatal(err)
	}
	payload := int64(len(image) - HeaderSize)

	b.Run("reader", func(b *testing.B) {
		src := bytes.NewReader(image)
		b.SetBytes(payload)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.Reset(image)
			rd, err := NewReader(src)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				if _, err := rd.Read(); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
				n++
			}
			if n != benchRecords {
				b.Fatalf("decoded %d records, want %d", n, benchRecords)
			}
		}
		reportRecordRate(b)
	})

	b.Run("batch", func(b *testing.B) {
		src := bytes.NewReader(image)
		var buf [512]Request
		b.SetBytes(payload)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.Reset(image)
			rd, err := NewReader(src)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				got, err := rd.ReadBatch(buf[:])
				if err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
				n += got
			}
			if n != benchRecords {
				b.Fatalf("decoded %d records, want %d", n, benchRecords)
			}
		}
		reportRecordRate(b)
	})

	b.Run("mapped", func(b *testing.B) {
		m, err := OpenMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		var buf [512]Request
		// Warm pass: fault the mapping in before the clock starts.
		for m.NextBatch(buf[:]) != 0 {
		}
		if m.Err() != nil {
			b.Fatal(m.Err())
		}
		b.SetBytes(payload)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Rewind()
			n := 0
			for {
				got := m.NextBatch(buf[:])
				if got == 0 {
					break
				}
				n += got
			}
			if n != benchRecords {
				b.Fatalf("decoded %d records, want %d", n, benchRecords)
			}
		}
		if m.Err() != nil {
			b.Fatal(m.Err())
		}
		reportRecordRate(b)
	})
}

func reportRecordRate(b *testing.B) {
	b.ReportMetric(float64(benchRecords)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
