package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"wlcrc/internal/prng"
)

// testTraceImage builds an in-memory trace image of n random records and
// returns it alongside the records themselves.
func testTraceImage(t testing.TB, n int, seed uint64) ([]byte, []Request) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(seed)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i].Addr = uint64(r.Intn(1 << 24))
		r.Fill(reqs[i].Old[:])
		r.Fill(reqs[i].New[:])
		if err := w.Write(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), reqs
}

// readAll drains a reader through Read, for equivalence baselines.
func readAll(t *testing.T, rd *Reader) []Request {
	t.Helper()
	var out []Request
	for {
		req, err := rd.Read()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, req)
	}
}

// TestReadBatchMatchesRead pins the equivalence contract: for any batch
// size — dividing the stream or not, including a batch bigger than the
// whole stream — ReadBatch must deliver the byte-exact sequence Read
// does, ending with (0, io.EOF).
func TestReadBatchMatchesRead(t *testing.T) {
	const n = 157
	image, want := testTraceImage(t, n, 3)
	for _, size := range []int{1, 7, 64, n, n + 50} {
		rd, err := NewReader(bytes.NewReader(image))
		if err != nil {
			t.Fatal(err)
		}
		var got []Request
		dst := make([]Request, size)
		for {
			k, err := rd.ReadBatch(dst)
			got = append(got, dst[:k]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("batch=%d after %d records: %v", size, len(got), err)
			}
		}
		if len(got) != n {
			t.Fatalf("batch=%d decoded %d records, want %d", size, len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("batch=%d record %d differs from Read sequence", size, i)
			}
		}
	}
}

// TestReadBatchShortFinalBatch pins the tail contract: a batch size that
// does not divide the stream gets a short final fill with a nil error,
// and only the following call reports (0, io.EOF).
func TestReadBatchShortFinalBatch(t *testing.T) {
	image, want := testTraceImage(t, 10, 5)
	rd, err := NewReader(bytes.NewReader(image))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Request, 4)
	for _, wantN := range []int{4, 4} {
		n, err := rd.ReadBatch(dst)
		if n != wantN || err != nil {
			t.Fatalf("full batch: got (%d, %v), want (%d, nil)", n, err, wantN)
		}
	}
	n, err := rd.ReadBatch(dst)
	if n != 2 || err != nil {
		t.Fatalf("short final batch: got (%d, %v), want (2, nil)", n, err)
	}
	if dst[0] != want[8] || dst[1] != want[9] {
		t.Error("short final batch decoded wrong records")
	}
	if n, err := rd.ReadBatch(dst); n != 0 || err != io.EOF {
		t.Fatalf("post-EOF call: got (%d, %v), want (0, io.EOF)", n, err)
	}
}

// TestReadBatchMixedWithRead checks the two decode paths share one
// stream position: alternating Read and ReadBatch walks the same
// sequence with no records skipped or repeated.
func TestReadBatchMixedWithRead(t *testing.T) {
	image, want := testTraceImage(t, 20, 9)
	rd, err := NewReader(bytes.NewReader(image))
	if err != nil {
		t.Fatal(err)
	}
	var got []Request
	dst := make([]Request, 3)
	for len(got) < 20 {
		if len(got)%2 == 0 {
			req, err := rd.Read()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, req)
		} else {
			n, err := rd.ReadBatch(dst)
			if err != nil && err != io.EOF {
				t.Fatal(err)
			}
			got = append(got, dst[:n]...)
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs when mixing Read and ReadBatch", i)
		}
	}
}

// TestReadBatchTruncatedRecord pins the tear contract: a stream cut
// mid-record yields every complete record plus the same truncation
// error Read reports, wrapping io.ErrUnexpectedEOF.
func TestReadBatchTruncatedRecord(t *testing.T) {
	image, want := testTraceImage(t, 5, 11)
	torn := image[:len(image)-RecordSize/2]
	rd, err := NewReader(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Request, 8)
	n, err := rd.ReadBatch(dst)
	if n != 4 {
		t.Fatalf("decoded %d complete records, want 4", n)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF wrap", err)
	}
	for i := 0; i < n; i++ {
		if dst[i] != want[i] {
			t.Fatalf("record %d corrupted by the torn tail", i)
		}
	}
}

// TestMappedSourceMatchesReader is the zero-copy equivalence net: over
// the same image, MappedSource must deliver the byte-exact Read
// sequence through Next and through NextBatch at any batch size, report
// the header count and the true record count, and support Rewind.
func TestMappedSourceMatchesReader(t *testing.T) {
	const n = 100
	image, _ := testTraceImage(t, n, 17)
	rd, err := NewReader(bytes.NewReader(image))
	if err != nil {
		t.Fatal(err)
	}
	want := readAll(t, rd)

	m, err := NewMappedBytes(image)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 0 {
		t.Errorf("streamed image header count = %d, want 0 (unknown)", m.Count())
	}
	if m.Records() != n {
		t.Errorf("Records() = %d, want %d", m.Records(), n)
	}
	var got []Request
	for {
		req, ok := m.Next()
		if !ok {
			break
		}
		got = append(got, req)
	}
	if len(got) != n {
		t.Fatalf("Next drained %d records, want %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Next record %d differs from Reader", i)
		}
	}
	for _, size := range []int{1, 9, n, n + 13} {
		m.Rewind()
		got = got[:0]
		dst := make([]Request, size)
		for {
			k := m.NextBatch(dst)
			if k == 0 {
				break
			}
			got = append(got, dst[:k]...)
		}
		if len(got) != n {
			t.Fatalf("batch=%d drained %d records, want %d", size, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d record %d differs from Reader", size, i)
			}
		}
	}
	if m.Err() != nil {
		t.Errorf("Err = %v on a clean image", m.Err())
	}
}

// TestMappedSourceTruncatedRecord mirrors the Reader's tear handling:
// the complete records are served, Err reports the truncation (wrapping
// io.ErrUnexpectedEOF), and Records excludes the torn tail.
func TestMappedSourceTruncatedRecord(t *testing.T) {
	image, want := testTraceImage(t, 6, 21)
	m, err := NewMappedBytes(image[:len(image)-10])
	if err != nil {
		t.Fatal(err)
	}
	if m.Records() != 5 {
		t.Errorf("Records() = %d, want 5 complete records", m.Records())
	}
	if !errors.Is(m.Err(), io.ErrUnexpectedEOF) {
		t.Errorf("Err = %v, want io.ErrUnexpectedEOF wrap", m.Err())
	}
	dst := make([]Request, 8)
	n := m.NextBatch(dst)
	if n != 5 {
		t.Fatalf("NextBatch = %d, want 5", n)
	}
	for i := 0; i < n; i++ {
		if dst[i] != want[i] {
			t.Fatalf("record %d corrupted by the torn tail", i)
		}
	}
}

// TestMappedSourceRejectsBadImages covers header validation parity with
// NewReader.
func TestMappedSourceRejectsBadImages(t *testing.T) {
	if _, err := NewMappedBytes([]byte("WL")); err == nil {
		t.Error("accepted a sub-header image")
	}
	if _, err := NewMappedBytes([]byte("NOPE000000000000")); err != ErrBadMagic {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}
	bad := []byte(Magic + "\x09\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")
	if _, err := NewMappedBytes(bad); err == nil {
		t.Error("accepted an unsupported version")
	}
}

// TestOpenMapped exercises the real-file path: the back-patched header
// count is visible, the replay matches the writer's records, Rewind
// works after Close-free reuse, and Close releases the source.
func TestOpenMapped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mapped.wlct")
	image, want := testTraceImage(t, 42, 29)
	// Write through a real file so Close back-patches the count.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range want {
		if err := w.Write(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_ = image

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 42 || m.Records() != 42 {
		t.Errorf("Count = %d, Records = %d, want 42, 42", m.Count(), m.Records())
	}
	for pass := 0; pass < 2; pass++ {
		for i := range want {
			req, ok := m.Next()
			if !ok {
				t.Fatalf("pass %d: stream ended at record %d", pass, i)
			}
			if req != want[i] {
				t.Fatalf("pass %d: record %d mismatch", pass, i)
			}
		}
		if _, ok := m.Next(); ok {
			t.Fatalf("pass %d: stream did not end after 42 records", pass)
		}
		m.Rewind()
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

// TestOpenMappedRejectsTinyFile pins the pre-map size check.
func TestOpenMappedRejectsTinyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.wlct")
	if err := os.WriteFile(path, []byte("WLCT"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(path); err == nil {
		t.Error("accepted a file smaller than the header")
	}
}

// legacySource is a Source that deliberately does not implement
// BatchSource, for adapter tests.
type legacySource struct{ reqs []Request }

func (s *legacySource) Next() (Request, bool) {
	if len(s.reqs) == 0 {
		return Request{}, false
	}
	r := s.reqs[0]
	s.reqs = s.reqs[1:]
	return r, true
}

// TestBatched pins the adapter contract: a BatchSource passes through
// unchanged, a legacy Source gets a Next-loop adapter that fills full
// batches, short final batches, then 0.
func TestBatched(t *testing.T) {
	ss := &SliceSource{Reqs: make([]Request, 3)}
	if got := Batched(ss); got != BatchSource(ss) {
		t.Error("Batched re-wrapped a source that already implements BatchSource")
	}

	reqs := make([]Request, 5)
	for i := range reqs {
		reqs[i].Addr = uint64(i)
	}
	bs := Batched(&legacySource{reqs: reqs})
	dst := make([]Request, 3)
	if n := bs.NextBatch(dst); n != 3 || dst[2].Addr != 2 {
		t.Fatalf("first batch = %d (last addr %d), want 3 (addr 2)", n, dst[2].Addr)
	}
	if n := bs.NextBatch(dst); n != 2 || dst[1].Addr != 4 {
		t.Fatalf("short batch = %d, want 2 ending at addr 4", n)
	}
	if n := bs.NextBatch(dst); n != 0 {
		t.Fatalf("post-end batch = %d, want 0", n)
	}
}

// TestSliceSourceNextBatch covers the bulk copy path and its interplay
// with Next and Rewind.
func TestSliceSourceNextBatch(t *testing.T) {
	reqs := make([]Request, 7)
	for i := range reqs {
		reqs[i].Addr = uint64(i)
	}
	s := &SliceSource{Reqs: reqs}
	if req, ok := s.Next(); !ok || req.Addr != 0 {
		t.Fatal("Next did not yield record 0")
	}
	dst := make([]Request, 4)
	if n := s.NextBatch(dst); n != 4 || dst[0].Addr != 1 || dst[3].Addr != 4 {
		t.Fatalf("NextBatch after Next: n=%d dst[0]=%d", n, dst[0].Addr)
	}
	if n := s.NextBatch(dst); n != 2 || dst[1].Addr != 6 {
		t.Fatalf("tail NextBatch: n=%d", n)
	}
	if n := s.NextBatch(dst); n != 0 {
		t.Fatalf("post-end NextBatch: n=%d, want 0", n)
	}
	s.Rewind()
	if n := s.NextBatch(dst); n != 4 || dst[0].Addr != 0 {
		t.Fatal("Rewind did not restart the batch stream")
	}
}

// TestRecordPreallocatesFromCount pins the satellite contract: Record
// over a source with a real declared count allocates the slice in one
// shot (capacity equals the recorded length, clamped by n), while a
// zero count means unknown and the slice grows as it drains.
func TestRecordPreallocatesFromCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "count.wlct")
	_, want := testTraceImage(t, 300, 31)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range want {
		if err := w.Write(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s := Record(m, 0)
	if len(s.Reqs) != 300 || cap(s.Reqs) != 300 {
		t.Errorf("counted source: len=%d cap=%d, want exactly 300", len(s.Reqs), cap(s.Reqs))
	}
	for i := range want {
		if s.Reqs[i] != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	m.Rewind()
	if s := Record(m, 120); len(s.Reqs) != 120 || cap(s.Reqs) != 120 {
		t.Errorf("clamped record: len=%d cap=%d, want exactly 120", len(s.Reqs), cap(s.Reqs))
	}
}
