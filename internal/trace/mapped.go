package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// MappedSource replays a trace file straight out of a read-only memory
// mapping of its bytes: no bufio layer, no per-record syscalls — every
// record is decoded by sub-slicing the mapping at
// HeaderSize + i*RecordSize. On platforms without mmap support (see
// mmap_fallback.go) the file is loaded with one bulk read instead; the
// decode path and every semantic are identical, only residency differs.
//
// Like SliceSource it is rewindable, which makes it the natural fixture
// for replaying one on-disk trace several times (determinism matrices,
// per-scheme sweeps, warm-up-then-measure benchmarks) without re-paying
// file I/O. Unlike SliceSource the requests are materialized lazily —
// the mapping holds raw records, and a page is only faulted in when a
// request on it is decoded — so footprint is bounded by the page cache,
// not by len(trace) copies of Request.
//
// A MappedSource is not safe for concurrent use; each goroutine of a
// parallel consumer must pull from it under the consumer's own
// serialization (the sim engine's ingest stage reads chunks under a
// mutex and fans only the decode out).
type MappedSource struct {
	data  []byte // whole file, header included
	recs  []byte // record region: data[HeaderSize:], truncation trimmed
	count uint64 // header count (0 = unknown/streamed)
	n     int    // full records in the mapping
	next  int
	err   error        // non-nil if the file ends mid-record
	unmap func() error // releases the mapping; nil for the read fallback
}

// OpenMapped maps the trace file at path and validates its header. The
// file descriptor is closed before returning — the mapping (or the
// fallback's in-memory copy) survives it. Callers should Close the
// source when done to release the mapping promptly; a forgotten Close
// leaks address space until the MappedSource is garbage-collected, not
// file descriptors.
func OpenMapped(path string) (*MappedSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < HeaderSize {
		return nil, fmt.Errorf("trace: %s: %d bytes is smaller than the %d-byte header",
			path, st.Size(), HeaderSize)
	}
	data, unmap, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("trace: mapping %s: %w", path, err)
	}
	m, err := newMappedSource(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	m.unmap = unmap
	return m, nil
}

// NewMappedBytes builds a MappedSource over an in-memory trace image
// (header included) — the zero-copy decode path without a file, used by
// tests and by consumers that already hold the bytes.
func NewMappedBytes(data []byte) (*MappedSource, error) {
	return newMappedSource(data)
}

// newMappedSource validates the header and slices up the record region.
func newMappedSource(data []byte) (*MappedSource, error) {
	if len(data) < HeaderSize {
		return nil, fmt.Errorf("trace: %d bytes is smaller than the %d-byte header",
			len(data), HeaderSize)
	}
	if string(data[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	body := data[HeaderSize:]
	m := &MappedSource{
		data:  data,
		count: binary.LittleEndian.Uint64(data[8:16]),
		n:     len(body) / RecordSize,
	}
	m.recs = body[:m.n*RecordSize]
	if len(body)%RecordSize != 0 {
		// Mirror Reader's behavior exactly: the full records before the
		// tear are served, then the stream reports the same truncation
		// error Read would (via Err, like ReaderSource).
		m.err = fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)
	}
	return m, nil
}

// Count reports the header's declared record count; 0 means the trace
// was streamed and the count is unknown — use Records for the number of
// records actually present in the mapping. When both are known they can
// disagree only for a file truncated or appended after its header was
// back-patched; Records is what a replay will deliver.
func (m *MappedSource) Count() uint64 { return m.count }

// Records returns the number of complete records in the mapping — the
// exact stream length, independent of the header count.
func (m *MappedSource) Records() int { return m.n }

// Mapped reports whether the source is backed by a real memory mapping
// (true) or by the portable bulk-read fallback (false).
func (m *MappedSource) Mapped() bool { return m.unmap != nil }

// Next implements Source, decoding one record off the mapping.
func (m *MappedSource) Next() (Request, bool) {
	if m.next >= m.n {
		return Request{}, false
	}
	var req Request
	decodeRecord(m.recs[m.next*RecordSize:], &req)
	m.next++
	return req, true
}

// NextBatch implements BatchSource: each destination request is decoded
// from its record's sub-slice of the mapping, with no intermediate
// buffer between the page cache and dst.
func (m *MappedSource) NextBatch(dst []Request) int {
	n := m.n - m.next
	if n <= 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	base := m.recs[m.next*RecordSize:]
	for i := 0; i < n; i++ {
		decodeRecord(base[i*RecordSize:], &dst[i])
	}
	m.next += n
	return n
}

// Rewind restarts the stream from the first record.
func (m *MappedSource) Rewind() { m.next = 0 }

// Err reports whether the file ends mid-record — the mapped equivalent
// of the truncated-record error Reader.Read returns. The full records
// before the tear are still served; check Err after draining, exactly
// like ReaderSource.Err.
func (m *MappedSource) Err() error { return m.err }

// Close releases the mapping. The source must not be used afterwards.
// Closing a fallback (non-mmap) source is a no-op.
func (m *MappedSource) Close() error {
	if m.unmap == nil {
		return nil
	}
	unmap := m.unmap
	m.unmap = nil
	m.data, m.recs, m.n, m.next = nil, nil, 0, 0
	return unmap()
}
