// Package trace defines the write-trace format the simulator consumes,
// mirroring the paper's methodology (§VII.A): traces carry, for every
// memory write transaction, the line address, the value to be stored and
// the value being overwritten (so differential write can be evaluated
// without replaying the whole history).
//
// The on-disk format is a fixed header followed by fixed-size records:
//
//	magic   "WLCT"            4 bytes
//	version uint32 LE         4 bytes
//	count   uint64 LE         8 bytes (0 if unknown/streamed)
//	record: addr uint64 LE, old [64]byte, new [64]byte
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"wlcrc/internal/memline"
)

// Magic identifies trace files.
const Magic = "WLCT"

// Version is the current format version.
const Version = 1

// Request is one memory write transaction.
type Request struct {
	Addr uint64       // line address (line index, not byte address)
	Old  memline.Line // content being overwritten
	New  memline.Line // content to store
}

// countOffset is the byte offset of the header's count field (after the
// 4-byte magic and the 4-byte version).
const countOffset = 8

// Writer streams requests to an io.Writer.
type Writer struct {
	under io.Writer
	w     *bufio.Writer
	count uint64
}

// NewWriter writes a header (with unknown count) and returns a Writer.
// Call Close when done: for seekable destinations it back-patches the
// header with the real record count.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], Version)
	binary.LittleEndian.PutUint64(hdr[4:12], 0)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{under: w, w: bw}, nil
}

// Write appends one request.
func (w *Writer) Write(r Request) error {
	var addr [8]byte
	binary.LittleEndian.PutUint64(addr[:], r.Addr)
	if _, err := w.w.Write(addr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(r.Old[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(r.New[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of requests written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Close flushes buffered records and, when the underlying writer is an
// io.WriteSeeker (an *os.File, typically), back-patches the header's
// count field with the number of records written, leaving the write
// position at the end of the stream. Unseekable destinations (pipes,
// network streams, plain buffers) keep count 0, which readers treat as
// "unknown/streamed". Close does not close the underlying writer —
// the caller owns it — and the Writer must not be used afterwards.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	ws, ok := w.under.(io.WriteSeeker)
	if !ok {
		return nil
	}
	if _, err := ws.Seek(countOffset, io.SeekStart); err != nil {
		return fmt.Errorf("trace: seeking to header count: %w", err)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], w.count)
	if _, err := ws.Write(buf[:]); err != nil {
		return fmt.Errorf("trace: back-patching header count: %w", err)
	}
	if _, err := ws.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("trace: restoring write position: %w", err)
	}
	return nil
}

// Reader streams requests from an io.Reader.
type Reader struct {
	r     *bufio.Reader
	count uint64 // from header; 0 = unknown
	read  uint64
}

// ErrBadMagic is returned when the stream is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic")

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br, count: binary.LittleEndian.Uint64(hdr[8:16])}, nil
}

// Count returns the record count declared in the header; 0 means the
// producer streamed to an unseekable destination and the count is
// unknown.
func (r *Reader) Count() uint64 { return r.count }

// Read returns the next request, or io.EOF at end of stream.
func (r *Reader) Read() (Request, error) {
	var rec [8 + 2*memline.LineBytes]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return Request{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Request{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Request{}, err
	}
	var req Request
	req.Addr = binary.LittleEndian.Uint64(rec[0:8])
	copy(req.Old[:], rec[8:8+memline.LineBytes])
	copy(req.New[:], rec[8+memline.LineBytes:])
	r.read++
	return req, nil
}

// Source is anything that yields a stream of write requests: a trace
// file reader or a synthetic workload generator.
type Source interface {
	// Next returns the next request; ok=false at end of stream.
	Next() (Request, bool)
}

// ReaderSource adapts a Reader to the Source interface, stopping at EOF
// or on the first error (exposed via Err).
type ReaderSource struct {
	R   *Reader
	err error
}

// Next implements Source.
func (s *ReaderSource) Next() (Request, bool) {
	req, err := s.R.Read()
	if err != nil {
		if err != io.EOF {
			s.err = err
		}
		return Request{}, false
	}
	return req, true
}

// Err reports a non-EOF read error, if any occurred.
func (s *ReaderSource) Err() error { return s.err }

// SliceSource replays an in-memory request slice. Unlike a Reader it can
// be rewound, which makes it the natural fixture for determinism tests
// and serial-vs-parallel benchmarks that must replay the exact same
// stream several times.
type SliceSource struct {
	Reqs []Request
	next int
}

// Next implements Source.
func (s *SliceSource) Next() (Request, bool) {
	if s.next >= len(s.Reqs) {
		return Request{}, false
	}
	r := s.Reqs[s.next]
	s.next++
	return r, true
}

// Rewind restarts the stream from the first request.
func (s *SliceSource) Rewind() { s.next = 0 }

// Record drains up to n requests from src into a new SliceSource
// (n <= 0 drains src completely — do not use that with an infinite
// synthetic generator).
func Record(src Source, n int) *SliceSource {
	var reqs []Request
	for n <= 0 || len(reqs) < n {
		req, ok := src.Next()
		if !ok {
			break
		}
		reqs = append(reqs, req)
	}
	return &SliceSource{Reqs: reqs}
}
