// Package trace defines the write-trace format the simulator consumes,
// mirroring the paper's methodology (§VII.A): traces carry, for every
// memory write transaction, the line address, the value to be stored and
// the value being overwritten (so differential write can be evaluated
// without replaying the whole history).
//
// The on-disk format is a fixed header followed by fixed-size records:
//
//	magic   "WLCT"            4 bytes
//	version uint32 LE         4 bytes
//	count   uint64 LE         8 bytes (0 if unknown/streamed)
//	record: addr uint64 LE, old [64]byte, new [64]byte
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"wlcrc/internal/memline"
)

// Magic identifies trace files.
const Magic = "WLCT"

// Version is the current format version.
const Version = 1

// HeaderSize is the byte length of the fixed file header (magic,
// version, count), and RecordSize of one fixed-width record (addr +
// old line + new line). Every record starts at
// HeaderSize + i*RecordSize, which is what lets MappedSource decode by
// sub-slicing a mapping and Reader.ReadBatch decode many records per
// read.
const (
	HeaderSize = 16
	RecordSize = 8 + 2*memline.LineBytes
)

// Request is one memory write transaction.
type Request struct {
	Addr uint64       // line address (line index, not byte address)
	Old  memline.Line // content being overwritten
	New  memline.Line // content to store
}

// countOffset is the byte offset of the header's count field (after the
// 4-byte magic and the 4-byte version).
const countOffset = 8

// Writer streams requests to an io.Writer.
type Writer struct {
	under io.Writer
	w     *bufio.Writer
	count uint64
}

// NewWriter writes a header (with unknown count) and returns a Writer.
// Call Close when done: for seekable destinations it back-patches the
// header with the real record count.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], Version)
	binary.LittleEndian.PutUint64(hdr[4:12], 0)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{under: w, w: bw}, nil
}

// Write appends one request.
func (w *Writer) Write(r Request) error {
	var addr [8]byte
	binary.LittleEndian.PutUint64(addr[:], r.Addr)
	if _, err := w.w.Write(addr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(r.Old[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(r.New[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of requests written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Close flushes buffered records and, when the underlying writer is an
// io.WriteSeeker (an *os.File, typically), back-patches the header's
// count field with the number of records written, leaving the write
// position at the end of the stream. Unseekable destinations (pipes,
// network streams, plain buffers) keep count 0, which readers treat as
// "unknown/streamed". Close does not close the underlying writer —
// the caller owns it — and the Writer must not be used afterwards.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	ws, ok := w.under.(io.WriteSeeker)
	if !ok {
		return nil
	}
	if _, err := ws.Seek(countOffset, io.SeekStart); err != nil {
		return fmt.Errorf("trace: seeking to header count: %w", err)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], w.count)
	if _, err := ws.Write(buf[:]); err != nil {
		return fmt.Errorf("trace: back-patching header count: %w", err)
	}
	if _, err := ws.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("trace: restoring write position: %w", err)
	}
	return nil
}

// Reader streams requests from an io.Reader.
type Reader struct {
	r     *bufio.Reader
	count uint64 // from header; 0 = unknown
	read  uint64
	// batchBuf is ReadBatch's reusable raw-record staging buffer; it
	// grows to the largest batch requested and is then reused, so a
	// steady ReadBatch loop performs no per-call allocations.
	batchBuf []byte
}

// ErrBadMagic is returned when the stream is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic")

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br, count: binary.LittleEndian.Uint64(hdr[8:16])}, nil
}

// Count returns the record count declared in the header; 0 means the
// producer streamed to an unseekable destination (tracegen -out -, a
// pipe) and the count is unknown — NOT that the trace is empty. A zero
// count must never be trusted as a length: consumers that want to
// preallocate should treat 0 as "size unknown" and fall back to
// growing as they read (Record does exactly that). Non-zero counts are
// back-patched by Writer.Close and are authoritative.
func (r *Reader) Count() uint64 { return r.count }

// decodeRecord decodes one fixed-width record from rec into req.
// rec must hold at least RecordSize bytes.
func decodeRecord(rec []byte, req *Request) {
	req.Addr = binary.LittleEndian.Uint64(rec[0:8])
	copy(req.Old[:], rec[8:8+memline.LineBytes])
	copy(req.New[:], rec[8+memline.LineBytes:RecordSize])
}

// Read returns the next request, or io.EOF at end of stream.
func (r *Reader) Read() (Request, error) {
	var rec [RecordSize]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return Request{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Request{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Request{}, err
	}
	var req Request
	decodeRecord(rec[:], &req)
	r.read++
	return req, nil
}

// ReadBatch decodes up to len(dst) records in one bulk read and returns
// how many landed in dst. One io.ReadFull covers the whole batch —
// large batches bypass the bufio layer and go to the underlying reader
// directly — so the per-record syscall and bounds-check overhead of the
// record-at-a-time Read loop is amortized over the batch.
//
// The error contract follows io conventions: a short final batch
// returns n > 0 with a nil error, the next call returns (0, io.EOF);
// a stream ending mid-record returns the full records decoded before
// the tear together with the same truncated-record error Read reports.
// Read and ReadBatch may be mixed freely on one Reader.
func (r *Reader) ReadBatch(dst []Request) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	need := len(dst) * RecordSize
	if cap(r.batchBuf) < need {
		r.batchBuf = make([]byte, need)
	}
	buf := r.batchBuf[:need]
	n, err := io.ReadFull(r.r, buf)
	nrec := n / RecordSize
	for i := 0; i < nrec; i++ {
		decodeRecord(buf[i*RecordSize:], &dst[i])
	}
	r.read += uint64(nrec)
	switch {
	case err == nil:
		return nrec, nil
	case err == io.EOF:
		return 0, io.EOF
	case errors.Is(err, io.ErrUnexpectedEOF):
		if n%RecordSize != 0 {
			return nrec, fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)
		}
		if nrec == 0 {
			return 0, io.EOF
		}
		return nrec, nil
	default:
		return nrec, err
	}
}

// Source is anything that yields a stream of write requests: a trace
// file reader or a synthetic workload generator.
type Source interface {
	// Next returns the next request; ok=false at end of stream.
	Next() (Request, bool)
}

// BatchSource is the bulk form of Source: NextBatch fills a prefix of
// dst and returns how many requests landed there. It returns 0 only at
// the end of the stream; a short fill (0 < n < len(dst)) is legal
// mid-stream, so consumers must keep pulling until 0. Implementations
// must yield the exact same request sequence through NextBatch as
// through Next, and the two may be mixed on one source.
//
// Migration note (Source vs BatchSource): Source stays the universal
// interface — everything that consumes a stream keeps accepting it, and
// Batched upgrades any legacy Source for free. New sources should
// implement both (NextBatch as the native loop, Next as the one-element
// special case): batch consumers like the sim engine's parallel ingest
// stage detect BatchSource dynamically and fall back to the adapter,
// which preserves results exactly but keeps the per-request interface
// call on the hot path.
type BatchSource interface {
	Source
	NextBatch(dst []Request) int
}

// Batched returns src as a BatchSource: sources that already implement
// the bulk interface are returned unchanged, anything else is wrapped
// in an adapter whose NextBatch is a plain Next loop. The adapter adds
// no buffering and never reads ahead of what it returns, so wrapping a
// partially-consumed source is safe.
func Batched(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &sourceBatcher{Source: src}
}

// sourceBatcher adapts a legacy Source to BatchSource.
type sourceBatcher struct {
	Source
}

// NextBatch implements BatchSource by looping Next.
func (s *sourceBatcher) NextBatch(dst []Request) int {
	for i := range dst {
		req, ok := s.Next()
		if !ok {
			return i
		}
		dst[i] = req
	}
	return len(dst)
}

// ReaderSource adapts a Reader to the Source and BatchSource
// interfaces, stopping at EOF or on the first error (exposed via Err).
type ReaderSource struct {
	R   *Reader
	err error
}

// Next implements Source.
func (s *ReaderSource) Next() (Request, bool) {
	req, err := s.R.Read()
	if err != nil {
		if err != io.EOF {
			s.err = err
		}
		return Request{}, false
	}
	return req, true
}

// NextBatch implements BatchSource via Reader.ReadBatch, decoding many
// records per underlying read.
func (s *ReaderSource) NextBatch(dst []Request) int {
	if s.err != nil {
		return 0
	}
	n, err := s.R.ReadBatch(dst)
	if err != nil && err != io.EOF {
		s.err = err
	}
	return n
}

// Count reports the header's declared record count; 0 means unknown
// (streamed), never "empty" — see Reader.Count.
func (s *ReaderSource) Count() uint64 { return s.R.Count() }

// Err reports a non-EOF read error, if any occurred.
func (s *ReaderSource) Err() error { return s.err }

// SliceSource replays an in-memory request slice. Unlike a Reader it can
// be rewound, which makes it the natural fixture for determinism tests
// and serial-vs-parallel benchmarks that must replay the exact same
// stream several times.
type SliceSource struct {
	Reqs []Request
	next int
}

// Next implements Source.
func (s *SliceSource) Next() (Request, bool) {
	if s.next >= len(s.Reqs) {
		return Request{}, false
	}
	r := s.Reqs[s.next]
	s.next++
	return r, true
}

// NextBatch implements BatchSource as a single bulk copy.
func (s *SliceSource) NextBatch(dst []Request) int {
	n := copy(dst, s.Reqs[s.next:])
	s.next += n
	return n
}

// Rewind restarts the stream from the first request.
func (s *SliceSource) Rewind() { s.next = 0 }

// recordGrain is Record's per-pull batch size on bulk sources: big
// enough to amortize the NextBatch call, small enough that the final
// short pull wastes little zeroed tail.
const recordGrain = 512

// Record drains up to n requests from src into a new SliceSource
// (n <= 0 drains src completely — do not use that with an infinite
// synthetic generator). Sources that declare a real record count — a
// ReaderSource over a back-patched trace file, a MappedSource — are
// preallocated in one shot; a zero count means unknown, not empty (see
// Reader.Count), so those sources grow as they drain. Bulk sources are
// drained through NextBatch.
func Record(src Source, n int) *SliceSource {
	var reqs []Request
	if c, ok := src.(interface{ Count() uint64 }); ok {
		if cnt := c.Count(); cnt > 0 {
			if n > 0 && uint64(n) < cnt {
				cnt = uint64(n)
			}
			reqs = make([]Request, 0, cnt)
		}
	}
	if bs, ok := src.(BatchSource); ok {
		if reqs == nil {
			reqs = make([]Request, 0, recordGrain)
		}
		var scratch []Request
		for n <= 0 || len(reqs) < n {
			grain := recordGrain
			if n > 0 && n-len(reqs) < grain {
				grain = n - len(reqs)
			}
			off := len(reqs)
			room := cap(reqs) - off
			if room == 0 {
				// Capacity exactly spent — probe through a scratch buffer
				// before growing, so a source whose declared count was
				// exact (the preallocated fast path) ends with no
				// pointless doubling; only a source that outgrows its
				// count pays the append copy.
				if scratch == nil {
					scratch = make([]Request, recordGrain)
				}
				got := bs.NextBatch(scratch[:grain])
				if got == 0 {
					break
				}
				reqs = append(reqs, scratch[:got]...)
				continue
			}
			if grain > room {
				grain = room
			}
			got := bs.NextBatch(reqs[off : off+grain])
			reqs = reqs[:off+got]
			if got == 0 {
				break
			}
		}
		return &SliceSource{Reqs: reqs}
	}
	for n <= 0 || len(reqs) < n {
		req, ok := src.Next()
		if !ok {
			break
		}
		reqs = append(reqs, req)
	}
	return &SliceSource{Reqs: reqs}
}
