// Package jobs turns the one-shot replay engine into a job service: it
// owns a bounded shared worker pool, adapts sim/exp-style runs into
// queued jobs with a pending→running→done/failed/canceled state
// machine, fans live Progress reports and periodic Engine.Snapshot()
// merges out to any number of subscribers, and persists specs and
// results through the store layer. The HTTP surface in internal/server
// is a thin shell over this package.
//
// Determinism is the product: a job's metrics are produced by the same
// sim.Engine configuration as a direct wlcrc.Replay of the same spec,
// so server-run results are bit-identical to batch runs — the
// determinism test in internal/server asserts DeepEqual against the
// public API.
package jobs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"wlcrc/internal/core"
	"wlcrc/internal/fault"
	"wlcrc/internal/sim"
	"wlcrc/internal/workload"
)

// Kind selects a job's shape.
type Kind string

const (
	// KindReplay replays one workload (or trace file) through the
	// spec's schemes — the pcmsim shape.
	KindReplay Kind = "replay"
	// KindSweep replays every listed workload (all profiles when the
	// list is empty) through the schemes, one engine per workload — the
	// experiments evaluation-matrix shape.
	KindSweep Kind = "sweep"
)

// State is a job's position in its lifecycle. Transitions only move
// forward: pending → running → one of the terminal states, or pending →
// canceled directly when a queued job is canceled before a pool worker
// picks it up.
type State string

const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec describes one job. It is the POST /v1/jobs body and is persisted
// verbatim with the job record, so a stored job can be re-run exactly.
type Spec struct {
	// Kind is "replay" (default) or "sweep".
	Kind Kind `json:"kind,omitempty"`
	// Label tags the job for querying (GET /v1/results?label=...).
	Label string `json:"label,omitempty"`

	// Workload names the synthetic workload of a replay job (default
	// "gcc"); Workloads lists the sweep's profiles (empty = all).
	Workload  string   `json:"workload,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	// Trace replays a server-local trace file instead of a synthetic
	// workload (replay jobs only).
	Trace string `json:"trace,omitempty"`

	// Writes bounds the requests replayed per workload (synthetic
	// sources; default 2000). Trace replays always run the whole file.
	Writes int `json:"writes,omitempty"`
	// Footprint overrides the working-set size in lines (0 = profile
	// default).
	Footprint int `json:"footprint,omitempty"`
	// Seed drives the workload generator and any sampled models.
	Seed uint64 `json:"seed,omitempty"`

	// Schemes lists the encoding schemes to replay (default Baseline +
	// WLCRC-16).
	Schemes []string `json:"schemes,omitempty"`

	// Workers / IngestRouters are the engine speed knobs; results are
	// bit-identical for every value (see sim.Options).
	Workers       int `json:"workers,omitempty"`
	IngestRouters int `json:"ingest_routers,omitempty"`

	// SampleDisturb switches disturbance accounting to Monte-Carlo
	// sampling with Seed; TrackWear enables the dense per-cell wear
	// digest.
	SampleDisturb bool `json:"sample_disturb,omitempty"`
	TrackWear     bool `json:"track_wear,omitempty"`

	// Encrypted replays the counter-mode encrypted form of the stream;
	// EncryptionKey keys it and the VCC/Enc schemes (0 = default key).
	Encrypted     bool   `json:"encrypted,omitempty"`
	EncryptionKey uint64 `json:"encryption_key,omitempty"`

	// Faults enables the stuck-at fault model and repair pipeline.
	Faults *fault.Config `json:"faults,omitempty"`
	// FailFast aborts a fault-enabled replay at the first uncorrectable
	// write instead of degrading gracefully.
	FailFast bool `json:"fail_fast,omitempty"`

	// Series, when set, records the finished job's per-scheme average
	// write energy (pJ/write) under this series name in the store —
	// keyed by scheme name for single-workload jobs and
	// "workload/scheme" otherwise — so runs are comparable across days
	// and benchguard -from-store can gate them.
	Series string `json:"series,omitempty"`
}

// Normalize fills defaults and validates the spec, returning the
// resolved copy. It constructs every scheme once (and throws the
// instances away) so submission rejects bad scheme names synchronously
// instead of failing the job later.
func (s Spec) Normalize() (Spec, error) {
	switch s.Kind {
	case "":
		s.Kind = KindReplay
	case KindReplay, KindSweep:
	default:
		return s, fmt.Errorf("jobs: unknown kind %q (want %q or %q)", s.Kind, KindReplay, KindSweep)
	}
	if s.Writes < 0 {
		return s, fmt.Errorf("jobs: negative writes %d", s.Writes)
	}
	if s.Writes == 0 {
		s.Writes = 2000
	}
	if len(s.Schemes) == 0 {
		s.Schemes = []string{"Baseline", "WLCRC-16"}
	}
	if _, err := s.schemes(); err != nil {
		return s, err
	}
	switch s.Kind {
	case KindReplay:
		if len(s.Workloads) > 0 {
			return s, fmt.Errorf("jobs: replay jobs take a single workload (use kind=sweep for %v)", s.Workloads)
		}
		if s.Trace == "" {
			if s.Workload == "" {
				s.Workload = "gcc"
			}
			if _, err := profileFor(s.Workload); err != nil {
				return s, err
			}
		} else if s.Workload != "" {
			return s, fmt.Errorf("jobs: trace and workload are mutually exclusive")
		}
	case KindSweep:
		if s.Trace != "" {
			return s, fmt.Errorf("jobs: sweep jobs replay synthetic workloads, not traces")
		}
		if s.Workload != "" {
			return s, fmt.Errorf("jobs: sweep jobs list workloads, not a single workload")
		}
		if len(s.Workloads) == 0 {
			for _, p := range workload.Profiles() {
				s.Workloads = append(s.Workloads, p.Name)
			}
		}
		for _, name := range s.Workloads {
			if _, err := profileFor(name); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// workloadNames returns the workloads the job will replay, in run
// order (a single element for replay jobs; the trace path for trace
// replays).
func (s Spec) workloadNames() []string {
	if s.Kind == KindSweep {
		return s.Workloads
	}
	if s.Trace != "" {
		return []string{s.Trace}
	}
	return []string{s.Workload}
}

// schemes constructs the spec's scheme instances. Each engine needs its
// own construction call anyway (schemes are immutable and shareable,
// but building per run keeps the path identical to wlcrc.Replay).
func (s Spec) schemes() ([]core.Scheme, error) {
	cfg := core.DefaultConfig()
	cfg.EncryptionKey = s.EncryptionKey
	out := make([]core.Scheme, 0, len(s.Schemes))
	seen := map[string]bool{}
	for _, name := range s.Schemes {
		if name == "" {
			return nil, fmt.Errorf("jobs: empty scheme name")
		}
		if seen[name] {
			return nil, fmt.Errorf("jobs: duplicate scheme %q", name)
		}
		seen[name] = true
		sch, err := core.NewScheme(name, cfg)
		if err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
		out = append(out, sch)
	}
	return out, nil
}

// simOptions resolves the spec to engine options. This mirrors
// wlcrc.Replay field for field — the determinism guarantee (server-run
// metrics bit-identical to a direct replay) rests on the two paths
// configuring the engine identically.
func (s Spec) simOptions() sim.Options {
	o := sim.DefaultOptions()
	o.Workers = s.Workers
	o.IngestRouters = s.IngestRouters
	o.SampleDisturb = s.SampleDisturb
	o.Seed = s.Seed
	o.TrackWear = s.TrackWear
	if s.Faults != nil {
		o.Faults = *s.Faults
	}
	o.FailFast = s.FailFast
	return o
}

// profileFor resolves a workload name ("random" included).
func profileFor(name string) (workload.Profile, error) {
	if name == "random" {
		return workload.RandomProfile(), nil
	}
	p, ok := workload.ProfileByName(name)
	if !ok {
		return workload.Profile{}, fmt.Errorf("jobs: unknown workload %q", name)
	}
	return p, nil
}

// Result is one workload's finished (or partial) metrics.
type Result struct {
	Workload string        `json:"workload"`
	Metrics  []sim.Metrics `json:"metrics"`
}

// ProgressInfo is the JSON-friendly snapshot of one engine Progress
// report, annotated with the workload it came from.
type ProgressInfo struct {
	Workload   string  `json:"workload"`
	Dispatched uint64  `json:"dispatched"`
	ElapsedMS  int64   `json:"elapsed_ms"`
	PerSecond  float64 `json:"per_second"`
	Workers    int     `json:"workers"`
	Done       bool    `json:"done,omitempty"`
}

// Event is one fan-out message to a job subscriber.
type Event struct {
	// Type is "state", "progress" or "snapshot". The SSE layer emits a
	// final "done" event itself from the job's terminal Status.
	Type string `json:"type"`
	// State accompanies "state" events.
	State State `json:"state,omitempty"`
	// Progress accompanies "progress" events.
	Progress *ProgressInfo `json:"progress,omitempty"`
	// Workload and Snapshot accompany "snapshot" events: a live
	// Engine.Snapshot() merge of the workload currently replaying.
	Workload string        `json:"workload,omitempty"`
	Snapshot []sim.Metrics `json:"snapshot,omitempty"`
}

// Status is the externally visible state of a job — the GET
// /v1/jobs/{id} body.
type Status struct {
	ID       string        `json:"id"`
	State    State         `json:"state"`
	Spec     Spec          `json:"spec"`
	Error    string        `json:"error,omitempty"`
	Degraded bool          `json:"degraded,omitempty"`
	Created  time.Time     `json:"created"`
	Started  time.Time     `json:"started,omitempty"`
	Finished time.Time     `json:"finished,omitempty"`
	Progress *ProgressInfo `json:"progress,omitempty"`
	Results  []Result      `json:"results,omitempty"`
}

// Job is one queued or running simulation job. All fields behind mu;
// external readers use Status().
type Job struct {
	id   string
	spec Spec

	mu       sync.Mutex
	state    State
	err      string
	degraded bool
	created  time.Time
	started  time.Time
	finished time.Time
	progress *ProgressInfo
	results  []Result
	cancel   func() // non-nil while running
	subs     map[int]chan Event
	nextSub  int
}

// ID returns the job's immutable identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's resolved spec.
func (j *Job) Spec() Spec { return j.spec }

// Status returns a consistent copy of the job's externally visible
// state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:       j.id,
		State:    j.state,
		Spec:     j.spec,
		Error:    j.err,
		Degraded: j.degraded,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Results:  j.results,
	}
	if j.progress != nil {
		p := *j.progress
		st.Progress = &p
	}
	return st
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Subscribe registers a fan-out channel for the job's events. The
// returned channel closes when the job reaches a terminal state (read
// the final Status afterwards for results) — or immediately when it
// already has. Slow subscribers never block the replay: events that
// do not fit the buffer are dropped, and every dropped class (state,
// progress, snapshot) is recoverable from Status or the next periodic
// event. cancel unregisters; it is idempotent and must be called when
// the subscriber goes away.
func (j *Job) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 16
	}
	ch := make(chan Event, buf)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	canceled := false
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if canceled {
			return
		}
		canceled = true
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
	}
}

// publish fans one event out to every subscriber, non-blocking.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(ev)
}

func (j *Job) publishLocked(ev Event) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, never stall the replay
		}
	}
}

// setProgress records the latest engine progress and fans it out.
func (j *Job) setProgress(p ProgressInfo) {
	j.mu.Lock()
	j.progress = &p
	cp := p
	j.publishLocked(Event{Type: "progress", Progress: &cp})
	j.mu.Unlock()
}

// finish moves the job to a terminal state, fans out the final state
// event, and closes every subscriber channel.
func (j *Job) finish(state State, errMsg string, degraded bool, results []Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.err = errMsg
	j.degraded = degraded
	if results != nil {
		j.results = results
	}
	j.finished = time.Now()
	j.cancel = nil
	j.publishLocked(Event{Type: "state", State: state})
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
}

// record converts the job to its persisted form.
func (j *Job) record() (rec jobRecord) {
	st := j.Status()
	raw, _ := json.Marshal(st.Spec)
	rec.id = st.ID
	rec.label = st.Spec.Label
	rec.state = string(st.State)
	rec.err = st.Error
	rec.degraded = st.Degraded
	rec.created = st.Created.UnixNano()
	if !st.Finished.IsZero() {
		rec.finished = st.Finished.UnixNano()
	}
	rec.trace = st.Spec.Trace
	rec.workloads = st.Spec.workloadNames()
	rec.schemes = st.Spec.Schemes
	rec.spec = raw
	rec.results = st.Results
	return rec
}

// jobRecord is the intermediate between Job and store.JobRecord,
// keeping the store conversion in one place (manager.go owns the
// store dependency).
type jobRecord struct {
	id, label, state, err string
	degraded              bool
	created, finished     int64
	trace                 string
	workloads, schemes    []string
	spec                  json.RawMessage
	results               []Result
}
