package jobs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wlcrc/internal/store"
)

// ErrQueueFull reports a Submit against a saturated queue: the pool is
// busy and the FIFO backlog is at capacity. Clients should retry later
// (the HTTP layer maps it to 503).
var ErrQueueFull = fmt.Errorf("jobs: queue full")

// ErrShutdown reports a Submit after Shutdown began.
var ErrShutdown = fmt.Errorf("jobs: manager shutting down")

// Config sizes a Manager.
type Config struct {
	// Pool is the number of jobs that run concurrently (0 = 2). Each
	// running job owns a full sim.Engine, which parallelizes internally,
	// so the pool bounds oversubscription rather than providing it.
	Pool int
	// QueueCap bounds the FIFO backlog of pending jobs beyond the ones
	// running (0 = 64). Submit fails with ErrQueueFull past it.
	QueueCap int
	// Store, when non-nil, receives a record at submission and a
	// rewrite at every terminal transition, plus the job's series point.
	Store store.Store
	// SnapshotInterval paces the periodic Engine.Snapshot() fan-out to
	// subscribers while a job runs (0 = 1s).
	SnapshotInterval time.Duration
	// ProgressInterval paces the engine Progress callbacks
	// (0 = the engine's 500ms default).
	ProgressInterval time.Duration
}

// Counters is a point-in-time view of the manager's lifetime counters —
// the numbers behind the server's /metrics endpoint.
type Counters struct {
	Submitted   uint64
	Completed   uint64 // done (including degraded)
	Failed      uint64
	Canceled    uint64
	Running     int
	PeakRunning int
	QueueDepth  int
	// Replayed counts engine requests dispatched across all jobs,
	// accumulated from progress reports — the writes/s numerator.
	Replayed uint64
}

// Manager owns the shared worker pool: it queues submitted jobs FIFO,
// runs at most Pool of them concurrently, drives their state machines,
// isolates their panics, and persists their records.
type Manager struct {
	cfg   Config
	queue chan *Job

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	nextSeq int
	epoch   int64 // manager start time, embedded in IDs for cross-restart uniqueness

	submitted   atomic.Uint64
	completed   atomic.Uint64
	failed      atomic.Uint64
	canceled    atomic.Uint64
	running     atomic.Int64
	peakRunning atomic.Int64
	replayed    atomic.Uint64
}

// testRunHook, when non-nil, replaces the real job runner — the seam
// the panic-isolation test injects a panicking run through.
var testRunHook func(ctx context.Context, j *Job) (results []Result, degraded bool, err error)

// NewManager starts a manager with cfg's pool. Stop it with Shutdown.
func NewManager(cfg Config) *Manager {
	if cfg.Pool <= 0 {
		cfg.Pool = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.QueueCap),
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*Job),
		epoch:   time.Now().UnixNano(),
	}
	for i := 0; i < cfg.Pool; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit validates spec, enqueues the job, and returns it. The job
// record (state pending) is persisted before Submit returns, so an
// accepted job survives an immediate crash.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if m.baseCtx.Err() != nil {
		return nil, ErrShutdown
	}
	m.mu.Lock()
	m.nextSeq++
	j := &Job{
		id:      fmt.Sprintf("j-%x-%04d", uint64(m.epoch), m.nextSeq),
		spec:    spec,
		state:   StatePending,
		created: time.Now(),
		subs:    make(map[int]chan Event),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.mu.Unlock()

	if err := m.persist(j); err != nil {
		m.forget(j.id)
		return nil, err
	}
	select {
	case m.queue <- j:
	default:
		m.forget(j.id)
		// The pending record was already written; supersede it so the
		// store does not carry a job that never existed for clients.
		j.finish(StateCanceled, ErrQueueFull.Error(), false, nil)
		m.persist(j)
		return nil, ErrQueueFull
	}
	m.submitted.Add(1)
	return j, nil
}

// forget drops a job that never made it into the queue.
func (m *Manager) forget(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.jobs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Job returns the live job for id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every job this manager has accepted, oldest first.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel moves a pending job straight to canceled or signals a running
// job's context; terminal jobs are left alone. It reports whether the
// job existed.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Job(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	switch j.state {
	case StatePending:
		// The queue still holds the pointer; the worker that eventually
		// drains it sees the terminal state and skips it.
		j.mu.Unlock()
		j.finish(StateCanceled, "canceled before start", false, nil)
		m.canceled.Add(1)
		m.persist(j)
		return true
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel() // the worker observes ctx.Err() and finishes the job
		}
		return true
	default:
		j.mu.Unlock()
		return true
	}
}

// Shutdown cancels every running job (their contexts are children of
// the manager's), waits for the pool to drain, and leaves partial
// snapshots persisted. Queued jobs that never started are marked
// canceled.
func (m *Manager) Shutdown() {
	m.stop()
	// Drain the backlog so workers exit their range loop; each drained
	// job is finished as canceled (its record already says pending).
	for {
		select {
		case j := <-m.queue:
			if j.State() == StatePending {
				j.finish(StateCanceled, "server shutting down", false, nil)
				m.canceled.Add(1)
				m.persist(j)
			}
		default:
			close(m.queue)
			m.wg.Wait()
			return
		}
	}
}

// Counters returns the manager's lifetime counters.
func (m *Manager) Counters() Counters {
	return Counters{
		Submitted:   m.submitted.Load(),
		Completed:   m.completed.Load(),
		Failed:      m.failed.Load(),
		Canceled:    m.canceled.Load(),
		Running:     int(m.running.Load()),
		PeakRunning: int(m.peakRunning.Load()),
		QueueDepth:  len(m.queue),
		Replayed:    m.replayed.Load(),
	}
}

// worker is one pool goroutine: it drains the FIFO queue and runs each
// job to a terminal state.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		if m.baseCtx.Err() != nil {
			// Shutdown raced us to the queue: hand the job back to the
			// Shutdown drain path by finishing it here.
			if j.State() == StatePending {
				j.finish(StateCanceled, "server shutting down", false, nil)
				m.canceled.Add(1)
				m.persist(j)
			}
			continue
		}
		if j.State().Terminal() {
			continue // canceled while queued
		}
		m.runOne(j)
	}
}

// runOne drives one job pending→running→terminal, isolating panics:
// a panicking run fails its own job and the worker (and every other
// job) keeps going.
func (m *Manager) runOne(j *Job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.state.Terminal() { // canceled between the check and here
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.publishLocked(Event{Type: "state", State: StateRunning})
	j.mu.Unlock()

	n := m.running.Add(1)
	for {
		peak := m.peakRunning.Load()
		if n <= peak || m.peakRunning.CompareAndSwap(peak, n) {
			break
		}
	}
	defer m.running.Add(-1)

	var (
		results  []Result
		degraded bool
		runErr   error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				runErr = fmt.Errorf("job panicked: %v", r)
			}
		}()
		if testRunHook != nil {
			results, degraded, runErr = testRunHook(ctx, j)
		} else {
			results, degraded, runErr = m.run(ctx, j)
		}
	}()

	switch {
	case runErr == nil:
		j.finish(StateDone, "", degraded, results)
		m.completed.Add(1)
	case ctx.Err() != nil:
		// Cancellation (client DELETE or server shutdown): keep the
		// partial snapshot results alongside the canceled verdict.
		j.finish(StateCanceled, "canceled", false, results)
		m.canceled.Add(1)
	case degraded:
		// Graceful degradation is a completed run with a verdict, not a
		// failure: the metrics are complete.
		j.finish(StateDone, runErr.Error(), true, results)
		m.completed.Add(1)
	default:
		j.finish(StateFailed, runErr.Error(), false, results)
		m.failed.Add(1)
	}
	m.persist(j)
	m.persistSeries(j)
}

// persist writes the job's current record to the store (no-op without
// one). Persistence errors never fail the job — the in-memory state is
// still authoritative for live clients — but they are surfaced in the
// job error field when the job is otherwise clean.
func (m *Manager) persist(j *Job) error {
	if m.cfg.Store == nil {
		return nil
	}
	rec := j.record()
	results := make([]store.WorkloadResult, 0, len(rec.results))
	for _, r := range rec.results {
		results = append(results, store.WorkloadResult{Workload: r.Workload, Metrics: r.Metrics})
	}
	return m.cfg.Store.PutJob(store.JobRecord{
		ID:        rec.id,
		Label:     rec.label,
		State:     rec.state,
		Error:     rec.err,
		Degraded:  rec.degraded,
		Created:   rec.created,
		Finished:  rec.finished,
		Trace:     rec.trace,
		Workloads: rec.workloads,
		Schemes:   rec.schemes,
		Spec:      rec.spec,
		Results:   results,
	})
}

// persistSeries records the finished job's per-scheme average write
// energy under its Series name: scheme-name keys for single-workload
// jobs (the BENCH_encode.json key shape) and "workload/scheme" keys
// for sweeps.
func (m *Manager) persistSeries(j *Job) {
	st := j.Status()
	if m.cfg.Store == nil || st.Spec.Series == "" || st.State != StateDone {
		return
	}
	vals := make(map[string]float64)
	multi := len(st.Results) > 1
	for _, r := range st.Results {
		for _, met := range r.Metrics {
			key := met.Scheme
			if multi {
				key = r.Workload + "/" + met.Scheme
			}
			vals[key] = met.AvgEnergy()
		}
	}
	if len(vals) == 0 {
		return
	}
	m.cfg.Store.PutSeries(store.SeriesPoint{
		Name:   st.Spec.Series,
		JobID:  st.ID,
		Unix:   st.Finished.UnixNano(),
		Values: vals,
	})
}
