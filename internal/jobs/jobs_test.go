package jobs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"wlcrc/internal/store"
)

// waitState polls until the job reaches a terminal state or the
// deadline passes.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := j.State(); st == want {
			return
		} else if st.Terminal() {
			t.Fatalf("job %s reached %q, want %q (err=%q)", j.ID(), st, want, j.Status().Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %q, want %q", j.ID(), j.State(), want)
}

// blockingHook installs a testRunHook whose jobs block until released
// (or their context fires), and returns the release func. Tests that
// install hooks must not run in parallel.
func blockingHook(t *testing.T) (started chan string, release chan struct{}) {
	t.Helper()
	started = make(chan string, 16)
	release = make(chan struct{})
	testRunHook = func(ctx context.Context, j *Job) ([]Result, bool, error) {
		started <- j.ID()
		select {
		case <-ctx.Done():
			return []Result{{Workload: "partial"}}, false, ctx.Err()
		case <-release:
			return []Result{{Workload: "done"}}, false, nil
		}
	}
	t.Cleanup(func() { testRunHook = nil })
	return started, release
}

func TestSpecNormalize(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantErr string
	}{
		{"defaults", Spec{}, ""},
		{"bad kind", Spec{Kind: "exotic"}, "unknown kind"},
		{"bad scheme", Spec{Schemes: []string{"nope"}}, "nope"},
		{"dup scheme", Spec{Schemes: []string{"Baseline", "Baseline"}}, "duplicate"},
		{"bad workload", Spec{Workload: "nope"}, "unknown workload"},
		{"trace+workload", Spec{Trace: "x.wlct", Workload: "gcc"}, "mutually exclusive"},
		{"sweep with trace", Spec{Kind: KindSweep, Trace: "x.wlct"}, "not traces"},
		{"replay with workloads", Spec{Workloads: []string{"gcc"}}, "single workload"},
		{"negative writes", Spec{Writes: -1}, "negative writes"},
	}
	for _, c := range cases {
		got, err := c.spec.Normalize()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
				continue
			}
			if got.Kind != KindReplay || got.Workload != "gcc" || got.Writes != 2000 || len(got.Schemes) != 2 {
				t.Errorf("%s: defaults not applied: %+v", c.name, got)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}

	// An empty sweep expands to every profile.
	sw, err := Spec{Kind: KindSweep}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Workloads) < 3 {
		t.Errorf("sweep expanded to %v, want all profiles", sw.Workloads)
	}
}

func TestJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := NewManager(Config{Pool: 2, Store: st, SnapshotInterval: 10 * time.Millisecond})
	defer m.Shutdown()

	j, err := m.Submit(Spec{Workload: "gcc", Writes: 500, Schemes: []string{"Baseline", "WLCRC-16"}, Label: "lifecycle"})
	if err != nil {
		t.Fatal(err)
	}
	ev, cancel := j.Subscribe(64)
	defer cancel()
	waitState(t, j, StateDone)

	stt := j.Status()
	if len(stt.Results) != 1 || len(stt.Results[0].Metrics) != 2 {
		t.Fatalf("results = %+v, want 1 workload x 2 schemes", stt.Results)
	}
	if got := stt.Results[0].Metrics[0].Writes; got != 500 {
		t.Errorf("Baseline writes = %d, want 500", got)
	}
	if stt.Finished.Before(stt.Started) || stt.Started.Before(stt.Created) {
		t.Errorf("timestamps out of order: %+v", stt)
	}

	// The subscriber channel closed at the terminal transition and saw
	// at least the running state event on the way.
	var sawRunning bool
	for e := range ev {
		if e.Type == "state" && e.State == StateRunning {
			sawRunning = true
		}
	}
	if !sawRunning {
		t.Error("subscriber never saw the running state event")
	}

	// The terminal record (with results) is persisted.
	rec, ok := st.Job(j.ID())
	if !ok || rec.State != "done" || len(rec.Results) != 1 {
		t.Fatalf("stored record = %+v (ok=%v)", rec, ok)
	}
	rows := st.Results(store.Query{Scheme: "WLCRC-16", Label: "lifecycle"})
	if len(rows) != 1 || rows[0].Metrics.Writes != 500 {
		t.Fatalf("store rows = %+v", rows)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started, _ := blockingHook(t)
	m := NewManager(Config{Pool: 1})
	defer m.Shutdown()

	j, err := m.Submit(Spec{Writes: 10})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !m.Cancel(j.ID()) {
		t.Fatal("Cancel reported job missing")
	}
	waitState(t, j, StateCanceled)
	if res := j.Status().Results; len(res) != 1 || res[0].Workload != "partial" {
		t.Errorf("canceled job kept results %+v, want the partial snapshot", res)
	}
	if c := m.Counters(); c.Canceled != 1 {
		t.Errorf("counters = %+v, want Canceled=1", c)
	}
}

func TestCancelPendingJob(t *testing.T) {
	started, release := blockingHook(t)
	m := NewManager(Config{Pool: 1})
	defer m.Shutdown()

	blocker, err := m.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != StatePending {
		t.Fatalf("queued job state = %q, want pending", st)
	}
	m.Cancel(queued.ID())
	waitState(t, queued, StateCanceled)

	// Release the blocker; the worker must skip the canceled job and
	// stay healthy for the next submission.
	close(release)
	waitState(t, blocker, StateDone)
	if queued.State() != StateCanceled {
		t.Fatalf("canceled pending job was resurrected to %q", queued.State())
	}
}

func TestQueueSaturation(t *testing.T) {
	started, release := blockingHook(t)
	m := NewManager(Config{Pool: 1, QueueCap: 2})
	defer m.Shutdown()

	if _, err := m.Submit(Spec{}); err != nil { // running
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 2; i++ { // fills the queue
		if _, err := m.Submit(Spec{}); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	if _, err := m.Submit(Spec{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: err = %v, want ErrQueueFull", err)
	}
	if c := m.Counters(); c.QueueDepth != 2 || c.Running != 1 {
		t.Errorf("counters = %+v, want QueueDepth=2 Running=1", c)
	}
	close(release)
	for _, j := range m.Jobs() {
		if !j.State().Terminal() {
			waitState(t, j, StateDone)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	calls := 0
	testRunHook = func(ctx context.Context, j *Job) ([]Result, bool, error) {
		calls++
		if calls == 1 {
			panic("injected job panic")
		}
		return []Result{{Workload: "ok"}}, false, nil
	}
	t.Cleanup(func() { testRunHook = nil })

	m := NewManager(Config{Pool: 1})
	defer m.Shutdown()

	bad, err := m.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, bad, StateFailed)
	if msg := bad.Status().Error; !strings.Contains(msg, "injected job panic") {
		t.Errorf("failed job error = %q, want the panic value", msg)
	}

	// The pool worker survived: the next job runs to completion.
	good, err := m.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, good, StateDone)
	if c := m.Counters(); c.Failed != 1 || c.Completed != 1 {
		t.Errorf("counters = %+v, want Failed=1 Completed=1", c)
	}
}

func TestShutdownCancelsAndPersists(t *testing.T) {
	started, _ := blockingHook(t)
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{Pool: 1, Store: st})

	running, err := m.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	m.Shutdown() // blocks until the pool drains

	if st1 := running.State(); st1 != StateCanceled {
		t.Errorf("running job after shutdown = %q, want canceled", st1)
	}
	if st2 := queued.State(); st2 != StateCanceled {
		t.Errorf("queued job after shutdown = %q, want canceled", st2)
	}
	// Partial snapshots persisted: the running job's record carries the
	// hook's partial result.
	rec, ok := st.Job(running.ID())
	if !ok || rec.State != "canceled" || len(rec.Results) != 1 || rec.Results[0].Workload != "partial" {
		t.Errorf("persisted record = %+v (ok=%v), want canceled with partial results", rec, ok)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := m.Submit(Spec{}); !errors.Is(err, ErrShutdown) {
		t.Errorf("submit after shutdown: err = %v, want ErrShutdown", err)
	}
}

func TestSweepJob(t *testing.T) {
	m := NewManager(Config{Pool: 2})
	defer m.Shutdown()
	j, err := m.Submit(Spec{Kind: KindSweep, Workloads: []string{"gcc", "lbm"}, Writes: 200, Schemes: []string{"Baseline"}, Series: "sweep-energy"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	res := j.Status().Results
	if len(res) != 2 || res[0].Workload != "gcc" || res[1].Workload != "lbm" {
		t.Fatalf("sweep results = %+v, want gcc then lbm", res)
	}
	for _, r := range res {
		if len(r.Metrics) != 1 || r.Metrics[0].Writes != 200 {
			t.Errorf("%s metrics = %+v", r.Workload, r.Metrics)
		}
	}
}
