package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"wlcrc/internal/sim"
	"wlcrc/internal/trace"
	"wlcrc/internal/workload"
)

// run executes one job: every workload in spec order replays on a fresh
// engine (fresh scheme instances too, like pcmsim's per-source loop),
// with progress reports and periodic snapshots fanned out to the job's
// subscribers. The returned results are partial when ctx fires or a
// replay errors mid-sweep — whatever Snapshot() drained stays attached
// to the job.
//
// The engine options come from Spec.simOptions, which mirrors
// wlcrc.Replay field for field; the determinism test in internal/server
// holds the two paths bit-identical.
func (m *Manager) run(ctx context.Context, j *Job) (results []Result, degraded bool, err error) {
	spec := j.Spec()
	for _, name := range spec.workloadNames() {
		if ctx.Err() != nil {
			return results, degraded, ctx.Err()
		}
		res, deg, runErr := m.runWorkload(ctx, j, spec, name)
		results = append(results, res)
		degraded = degraded || deg
		if runErr != nil {
			return results, degraded, runErr
		}
	}
	return results, degraded, nil
}

// runWorkload replays one workload (or the trace file) of the job.
func (m *Manager) runWorkload(ctx context.Context, j *Job, spec Spec, name string) (Result, bool, error) {
	res := Result{Workload: name}

	schemes, err := spec.schemes()
	if err != nil {
		return res, false, err // unreachable: Normalize validated them
	}

	src, max, closeSrc, err := openSource(spec, name)
	if err != nil {
		return res, false, err
	}
	if closeSrc != nil {
		defer closeSrc()
	}

	opts := spec.simOptions()
	opts.ProgressInterval = m.cfg.ProgressInterval
	var lastDispatched uint64
	opts.Progress = func(p sim.Progress) {
		// Fold the dispatch delta into the manager-wide replayed counter
		// (the /metrics writes/s numerator), then fan out. The callback
		// runs on the dispatcher goroutine — keep it light and do not
		// retain p.QueueDepth.
		m.replayed.Add(p.Dispatched - lastDispatched)
		lastDispatched = p.Dispatched
		j.setProgress(ProgressInfo{
			Workload:   name,
			Dispatched: p.Dispatched,
			ElapsedMS:  p.Elapsed.Milliseconds(),
			PerSecond:  p.Rate(),
			Workers:    p.Workers,
			Done:       p.Done,
		})
	}

	eng := sim.NewEngine(opts, schemes...)

	// Periodic live snapshots: Engine.Snapshot is safe during Run, so a
	// ticker goroutine can merge and publish mid-replay state without
	// touching the dispatch path.
	snapDone := make(chan struct{})
	go func() {
		t := time.NewTicker(m.cfg.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-snapDone:
				return
			case <-t.C:
				j.publish(Event{Type: "snapshot", Workload: name, Snapshot: eng.Snapshot()})
			}
		}
	}()
	runErr := eng.RunContext(ctx, src, max)
	close(snapDone)

	// Whatever happened, the merged prefix is the workload's result.
	res.Metrics = eng.Snapshot()

	if runErr != nil {
		var deg *sim.DegradedError
		if errors.As(runErr, &deg) {
			return res, true, runErr
		}
		return res, false, runErr
	}
	return res, false, nil
}

// openSource builds the workload's trace source: the trace file
// (mapped, with a reader fallback) or the named synthetic generator,
// optionally encrypted, budgeted to spec.Writes for synthetic streams.
// max is the engine-side request bound (0 = drain the source).
func openSource(spec Spec, name string) (src trace.Source, max int, closeFn func(), err error) {
	if spec.Trace != "" {
		if mp, merr := trace.OpenMapped(spec.Trace); merr == nil {
			// A torn trace tail replays its complete prefix (mp.Err() is
			// advisory), same as pcmsim.
			src, closeFn = mp, func() { mp.Close() }
		} else {
			f, oerr := os.Open(spec.Trace)
			if oerr != nil {
				return nil, 0, nil, fmt.Errorf("jobs: %w", oerr)
			}
			rd, rerr := trace.NewReader(f)
			if rerr != nil {
				f.Close()
				return nil, 0, nil, fmt.Errorf("jobs: %w", rerr)
			}
			src, closeFn = &trace.ReaderSource{R: rd}, func() { f.Close() }
		}
	} else {
		p, perr := profileFor(name)
		if perr != nil {
			return nil, 0, nil, perr
		}
		src = workload.NewGenerator(p, spec.Footprint, spec.Seed)
		max = spec.Writes
	}
	if spec.Encrypted {
		src = workload.Encrypted(src, spec.EncryptionKey)
	}
	return src, max, closeFn, nil
}
