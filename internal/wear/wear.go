// Package wear tracks per-cell program counts and projects array
// lifetime. The paper evaluates endurance as the average number of
// updated cells per write (Figure 9) because PCM cells wear out with
// programming; this module extends that metric to the distributions a
// lifetime analysis needs: per-cell wear, worst-cell wear, and a
// first-cell-failure projection under a given cell endurance budget.
package wear

import (
	"math"
	"sort"

	"wlcrc/internal/pcm"
)

// DefaultCellEndurance is a representative MLC PCM cell endurance
// (program cycles to failure); PCM literature reports 1e6..1e8 for MLC.
const DefaultCellEndurance = 1e7

// Tracker accumulates per-cell program counts for a set of lines.
type Tracker struct {
	cellsPerLine int
	counts       map[uint64][]uint32
	totalWrites  uint64
	totalUpdates uint64
}

// NewTracker builds a tracker for lines of the given cell count.
func NewTracker(cellsPerLine int) *Tracker {
	if cellsPerLine <= 0 {
		panic("wear: cellsPerLine must be positive")
	}
	return &Tracker{
		cellsPerLine: cellsPerLine,
		counts:       make(map[uint64][]uint32),
	}
}

// Record registers one write: every cell whose state changed between old
// and new is counted as programmed.
func (t *Tracker) Record(addr uint64, old, new []pcm.State) {
	if len(old) != len(new) {
		panic("wear: Record length mismatch")
	}
	c, ok := t.counts[addr]
	if !ok {
		c = make([]uint32, t.cellsPerLine)
		t.counts[addr] = c
	}
	t.totalWrites++
	for i := range new {
		if old[i] != new[i] && i < len(c) {
			c[i]++
			t.totalUpdates++
		}
	}
}

// Writes returns the number of recorded line writes.
func (t *Tracker) Writes() uint64 { return t.totalWrites }

// AvgUpdatedCells returns the Figure 9 metric over the recorded history.
func (t *Tracker) AvgUpdatedCells() float64 {
	if t.totalWrites == 0 {
		return 0
	}
	return float64(t.totalUpdates) / float64(t.totalWrites)
}

// MaxWear returns the largest per-cell program count seen.
func (t *Tracker) MaxWear() uint32 {
	var max uint32
	for _, line := range t.counts {
		for _, c := range line {
			if c > max {
				max = c
			}
		}
	}
	return max
}

// WearImbalance returns max wear divided by mean wear over cells that
// were programmed at least once (1.0 = perfectly even). Higher values
// mean hot cells will fail far earlier than the array average.
func (t *Tracker) WearImbalance() float64 {
	var sum float64
	var n int
	for _, line := range t.counts {
		for _, c := range line {
			if c > 0 {
				sum += float64(c)
				n++
			}
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return float64(t.MaxWear()) / (sum / float64(n))
}

// Percentile returns the p-th percentile (0..100) of per-cell wear over
// all tracked cells, including never-programmed ones.
func (t *Tracker) Percentile(p float64) uint32 {
	var all []uint32
	for _, line := range t.counts {
		all = append(all, line...)
	}
	if len(all) == 0 {
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	idx := int(math.Ceil(p/100*float64(len(all)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(all) {
		idx = len(all) - 1
	}
	return all[idx]
}

// LifetimeWrites projects how many more writes (with the recorded
// workload's wear pattern) the array survives before the hottest cell
// exhausts cellEndurance program cycles. It scales the observed
// worst-cell wear rate linearly, the standard first-failure model.
func (t *Tracker) LifetimeWrites(cellEndurance float64) float64 {
	max := float64(t.MaxWear())
	if max == 0 || t.totalWrites == 0 {
		return math.Inf(1)
	}
	perWrite := max / float64(t.totalWrites)
	return cellEndurance / perWrite
}

// RelativeLifetime returns how much longer (>1) or shorter (<1) this
// tracker's projected lifetime is versus other, under the same cell
// endurance. Useful for scheme-vs-scheme endurance comparisons beyond
// the average-updates metric.
func (t *Tracker) RelativeLifetime(other *Tracker) float64 {
	a := t.LifetimeWrites(DefaultCellEndurance)
	b := other.LifetimeWrites(DefaultCellEndurance)
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return 1
	}
	if b == 0 || math.IsInf(a, 1) {
		return math.Inf(1)
	}
	return a / b
}
