// Package wear tracks per-cell program counts and projects array
// lifetime. The paper evaluates endurance as the average number of
// updated cells per write (Figure 9) because PCM cells wear out with
// programming; this package extends that metric to the distributions a
// lifetime analysis needs: dense per-cell wear counts, worst-cell wear,
// a wear-level CDF, and a first-cell-failure projection under a given
// cell endurance budget.
//
// The package is built for the streaming replay engine in internal/sim:
// each single-threaded shard owns a Dense recorder (per-cell uint32
// counts over the shard's line footprint, map-free on the hot path once
// a line is known), and maintains a fixed-size, mergeable Summary
// incrementally with every programmed cell. Only the Summary travels —
// it is embedded in the simulator's Metrics, copied into concurrent
// snapshots, and folded across shards with plain adds and maxes — while
// the dense count array never leaves its owning shard.
package wear

import (
	"math"
	"math/bits"

	"wlcrc/internal/pcm"
)

// DefaultCellEndurance is a representative MLC PCM cell endurance
// (program cycles to failure); PCM literature reports 1e6..1e8 for MLC.
const DefaultCellEndurance = 1e7

// summaryBuckets is the number of wear-level buckets of a Summary:
// bucket b (1..32) counts cells whose program count c has
// bits.Len32(c) == b, i.e. c in [2^(b-1), 2^b). Bucket 0 is unused —
// never-programmed cells are Cells - CellsTouched.
const summaryBuckets = 33

// Summary is the fixed-size, mergeable digest of a wear distribution.
// It is a plain value (no slices), so the simulator can embed it in
// metrics, copy it when publishing snapshots, and merge per-shard
// partials deterministically: counters add, MaxCellWear takes the
// maximum. Because shards partition the address space, cells are never
// double-counted across merged summaries.
type Summary struct {
	// Writes is the number of recorded line writes.
	Writes uint64
	// Updates is the total number of cell programs (the Figure 9
	// numerator).
	Updates uint64
	// Cells is the total number of tracked cells (touched lines times
	// cells per line).
	Cells uint64
	// CellsTouched is the number of distinct cells programmed at least
	// once.
	CellsTouched uint64
	// MaxCellWear is the largest per-cell program count seen.
	MaxCellWear uint32
	// Buckets[b] counts cells whose current wear c has bits.Len32(c)==b:
	// a log2-scaled wear-level histogram over touched cells, maintained
	// incrementally as counts move between levels.
	Buckets [summaryBuckets]uint64
}

// Merge folds another shard's summary into s. Shards partition the
// address space, so every tracked cell belongs to exactly one operand.
func (s *Summary) Merge(o Summary) {
	s.Writes += o.Writes
	s.Updates += o.Updates
	s.Cells += o.Cells
	s.CellsTouched += o.CellsTouched
	if o.MaxCellWear > s.MaxCellWear {
		s.MaxCellWear = o.MaxCellWear
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// AvgUpdatedCells returns the Figure 9 metric over the recorded history.
func (s Summary) AvgUpdatedCells() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.Updates) / float64(s.Writes)
}

// MeanWear returns the mean program count over cells programmed at
// least once (0 when nothing was programmed).
func (s Summary) MeanWear() float64 {
	if s.CellsTouched == 0 {
		return 0
	}
	return float64(s.Updates) / float64(s.CellsTouched)
}

// WearImbalance returns max wear divided by mean wear over programmed
// cells (1.0 = perfectly even). Higher values mean hot cells will fail
// far earlier than the array average.
func (s Summary) WearImbalance() float64 {
	mean := s.MeanWear()
	if mean == 0 {
		return 0
	}
	return float64(s.MaxCellWear) / mean
}

// BucketUpper returns the largest wear count belonging to bucket b
// (inclusive), the x-axis of the wear CDF.
func BucketUpper(b int) uint32 {
	if b <= 0 {
		return 0
	}
	if b >= 32 {
		return math.MaxUint32
	}
	return 1<<uint(b) - 1
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) of
// per-cell wear over all tracked cells, including never-programmed
// ones: the upper edge of the log2 wear-level bucket holding the cell
// of that rank. MaxCellWear is exact; Quantile trades exactness for a
// fixed-size summary.
func (s Summary) Quantile(q float64) uint32 {
	if s.Cells == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Cells))
	if rank == 0 {
		rank = 1
	}
	cum := s.Cells - s.CellsTouched // never-programmed cells sort first
	if cum >= rank {
		return 0
	}
	for b := 1; b < summaryBuckets; b++ {
		cum += s.Buckets[b]
		if cum >= rank {
			u := BucketUpper(b)
			if u > s.MaxCellWear {
				u = s.MaxCellWear
			}
			return u
		}
	}
	return s.MaxCellWear
}

// LifetimeWrites projects how many writes (with the recorded workload's
// wear pattern) the array survives before the hottest cell exhausts
// cellEndurance program cycles. It scales the observed worst-cell wear
// rate linearly, the standard first-failure model.
func (s Summary) LifetimeWrites(cellEndurance float64) float64 {
	if s.MaxCellWear == 0 || s.Writes == 0 {
		return math.Inf(1)
	}
	perWrite := float64(s.MaxCellWear) / float64(s.Writes)
	return cellEndurance / perWrite
}

// RelativeLifetime returns how much longer (>1) or shorter (<1) this
// summary's projected lifetime is versus other, under the same cell
// endurance. Useful for scheme-vs-scheme endurance comparisons beyond
// the average-updates metric.
func (s Summary) RelativeLifetime(other Summary) float64 {
	a := s.LifetimeWrites(DefaultCellEndurance)
	b := other.LifetimeWrites(DefaultCellEndurance)
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return 1
	}
	if b == 0 || math.IsInf(a, 1) {
		return math.Inf(1)
	}
	return a / b
}

// Dense accumulates per-cell program counts for a set of lines in one
// flat uint32 array. Lines get a slot on first touch; after that a
// write is a map lookup plus direct array increments, allocation-free.
// Dense is single-writer by design — in the replay engine exactly one
// shard (hence one goroutine) owns each Dense — and the mergeable
// Summary is maintained incrementally so readers never need to scan the
// count array.
type Dense struct {
	cellsPerLine int
	slots        map[uint64]int // line addr -> slot index (addr-keyed API)
	nSlots       int            // slots allocated through the slot-keyed API
	counts       []uint32       // slot*cellsPerLine + cell
	zero         []uint32       // reusable zero block for new lines
	s            Summary
}

// NewDense builds a recorder for lines of the given cell count.
func NewDense(cellsPerLine int) *Dense {
	if cellsPerLine <= 0 {
		panic("wear: cellsPerLine must be positive")
	}
	return &Dense{
		cellsPerLine: cellsPerLine,
		slots:        make(map[uint64]int),
		zero:         make([]uint32, cellsPerLine),
	}
}

// CellsPerLine returns the per-line cell count the recorder was built
// with.
func (d *Dense) CellsPerLine() int { return d.cellsPerLine }

// Lines returns the number of distinct lines touched.
func (d *Dense) Lines() int {
	if d.nSlots > len(d.slots) {
		return d.nSlots
	}
	return len(d.slots)
}

// slot returns the count-array base index of addr, allocating a zeroed
// block on first touch.
func (d *Dense) slot(addr uint64) int {
	sl, ok := d.slots[addr]
	if !ok {
		sl = len(d.slots)
		d.slots[addr] = sl
		d.counts = append(d.counts, d.zero...)
		d.s.Cells += uint64(d.cellsPerLine)
	}
	return sl * d.cellsPerLine
}

// bump programs cell at flat index i once, keeping the summary's
// touched-cell count, wear-level buckets and max in sync.
func (d *Dense) bump(i int) {
	c := d.counts[i] + 1
	d.counts[i] = c
	d.s.Updates++
	if c == 1 {
		d.s.CellsTouched++
	} else {
		d.s.Buckets[bits.Len32(c-1)]--
	}
	d.s.Buckets[bits.Len32(c)]++
	if c > d.s.MaxCellWear {
		d.s.MaxCellWear = c
	}
}

// RecordChanged registers one line write from a differential-write
// change mask: changed[i] reports whether cell i was programmed. The
// mask must have the recorder's cells-per-line length. This is the
// replay hot path — the simulator already computes the mask for energy
// accounting and hands it over for free.
func (d *Dense) RecordChanged(addr uint64, changed []bool) {
	if len(changed) != d.cellsPerLine {
		panic("wear: RecordChanged mask length mismatch")
	}
	base := d.slot(addr)
	d.s.Writes++
	for i, ch := range changed {
		if ch {
			d.bump(base + i)
		}
	}
}

// Record registers one write by diffing cell states: every cell whose
// state changed between old and new is counted as programmed. The
// slices must have equal, cells-per-line length.
func (d *Dense) Record(addr uint64, old, new []pcm.State) {
	if len(old) != len(new) || len(new) != d.cellsPerLine {
		panic("wear: Record length mismatch")
	}
	base := d.slot(addr)
	d.s.Writes++
	for i := range new {
		if old[i] != new[i] {
			d.bump(base + i)
		}
	}
}

// CellWear returns the program count of one cell of a line (0 for
// untracked lines).
func (d *Dense) CellWear(addr uint64, cell int) uint32 {
	sl, ok := d.slots[addr]
	if !ok || cell < 0 || cell >= d.cellsPerLine {
		return 0
	}
	return d.counts[sl*d.cellsPerLine+cell]
}

// LineCounts returns the live per-cell program counts of one line, or
// nil for untracked lines. The slice aliases the recorder's storage —
// valid only until the next Record/RecordChanged (which may grow the
// array) and must not be modified. The fault model reads it to compare
// a line's wear against its endurance thresholds without copying.
func (d *Dense) LineCounts(addr uint64) []uint32 {
	sl, ok := d.slots[addr]
	if !ok {
		return nil
	}
	base := sl * d.cellsPerLine
	return d.counts[base : base+d.cellsPerLine]
}

// ensureSlot grows the count array to cover slot, zeroing any new
// blocks. Slots are handed out by the sim arena in first-touch order, so
// growth is almost always by exactly one line.
func (d *Dense) ensureSlot(slot int) {
	for d.nSlots <= slot {
		d.counts = append(d.counts, d.zero...)
		d.nSlots++
		d.s.Cells += uint64(d.cellsPerLine)
	}
}

// RecordSlotMasks registers one line write from plane-diff change masks:
// bit i of masks[w] reports whether cell 32*w+i was programmed (bits at
// or beyond cells-per-line must be zero — the plane storage's tail-zero
// invariant guarantees this for masks produced by DiffWritePlanes). slot
// is the caller's dense line index — in the replay engine, the shard
// arena's slot, assigned in first-touch order — and replaces the
// addr-keyed map lookup of RecordChanged on the plane-resident path.
func (d *Dense) RecordSlotMasks(slot int, masks []uint64) {
	d.ensureSlot(slot)
	base := slot * d.cellsPerLine
	d.s.Writes++
	for w, m := range masks {
		for ; m != 0; m &= m - 1 {
			d.bump(base + w*32 + bits.TrailingZeros64(m))
		}
	}
}

// SlotCounts returns the live per-cell program counts of a slot-keyed
// line, growing the store if the slot is new. Like LineCounts, the slice
// aliases the recorder's storage and is valid only until the next
// record call.
func (d *Dense) SlotCounts(slot int) []uint32 {
	d.ensureSlot(slot)
	base := slot * d.cellsPerLine
	return d.counts[base : base+d.cellsPerLine]
}

// Summary returns the current mergeable digest. The copy is detached:
// later writes do not affect it.
func (d *Dense) Summary() Summary { return d.s }

// Reset zeroes all wear counts and the summary but keeps the line
// footprint (slots stay allocated, Cells is preserved), mirroring the
// simulator's reset-metrics-after-warmup flow.
func (d *Dense) Reset() {
	for i := range d.counts {
		d.counts[i] = 0
	}
	d.s = Summary{Cells: uint64(d.Lines() * d.cellsPerLine)}
}

// Clear drops the line footprint as well as the counts but keeps the
// allocated capacity, so a full simulator reset reuses the count array
// instead of reallocating it. Slot-keyed callers reassign slots from 0
// after a Clear (the sim arena resets its index the same way).
func (d *Dense) Clear() {
	d.counts = d.counts[:0]
	d.nSlots = 0
	clear(d.slots)
	d.s = Summary{}
}
