package wear

import (
	"encoding/json"
	"fmt"
)

// summaryJSON is the wire schema of Summary: stable lowercase keys, and
// the log2 wear-level buckets as a variable-length array with trailing
// zero levels trimmed (a run's wear occupies a few adjacent levels of
// the 33, so the fixed array would serialize mostly as zeros).
type summaryJSON struct {
	Writes       uint64   `json:"writes"`
	Updates      uint64   `json:"updates"`
	Cells        uint64   `json:"cells"`
	CellsTouched uint64   `json:"cells_touched"`
	MaxCellWear  uint32   `json:"max_cell_wear"`
	Buckets      []uint64 `json:"buckets,omitempty"`
}

// MarshalJSON implements json.Marshaler with the stable trimmed schema.
// Value receiver on purpose: Metrics embeds Summary by value and
// encoding/json only sees value-receiver methods on non-addressable
// fields.
func (s Summary) MarshalJSON() ([]byte, error) {
	last := -1
	for i, c := range s.Buckets {
		if c != 0 {
			last = i
		}
	}
	var buckets []uint64
	if last >= 0 {
		buckets = s.Buckets[:last+1]
	}
	return json.Marshal(summaryJSON{
		Writes:       s.Writes,
		Updates:      s.Updates,
		Cells:        s.Cells,
		CellsTouched: s.CellsTouched,
		MaxCellWear:  s.MaxCellWear,
		Buckets:      buckets,
	})
}

// UnmarshalJSON implements json.Unmarshaler, restoring the fixed-size
// bucket array from the trimmed wire form.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var w summaryJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Buckets) > summaryBuckets {
		return fmt.Errorf("wear: summary has %d wear buckets, max %d", len(w.Buckets), summaryBuckets)
	}
	*s = Summary{
		Writes:       w.Writes,
		Updates:      w.Updates,
		Cells:        w.Cells,
		CellsTouched: w.CellsTouched,
		MaxCellWear:  w.MaxCellWear,
	}
	copy(s.Buckets[:], w.Buckets)
	return nil
}
