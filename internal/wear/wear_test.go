package wear

import (
	"math"
	"testing"

	"wlcrc/internal/core"
	"wlcrc/internal/pcm"
	"wlcrc/internal/workload"
)

func TestRecordCountsOnlyChanges(t *testing.T) {
	tr := NewTracker(4)
	old := []pcm.State{pcm.S1, pcm.S1, pcm.S2, pcm.S3}
	new := []pcm.State{pcm.S1, pcm.S2, pcm.S2, pcm.S4}
	tr.Record(0, old, new)
	if tr.Writes() != 1 {
		t.Errorf("writes = %d", tr.Writes())
	}
	if got := tr.AvgUpdatedCells(); got != 2 {
		t.Errorf("avg updated = %v, want 2", got)
	}
	if tr.MaxWear() != 1 {
		t.Errorf("max wear = %d", tr.MaxWear())
	}
	// Same write again: no changes.
	tr.Record(0, new, new)
	if got := tr.AvgUpdatedCells(); got != 1 {
		t.Errorf("avg updated after idle write = %v, want 1", got)
	}
}

func TestMaxWearAndImbalance(t *testing.T) {
	tr := NewTracker(2)
	a := []pcm.State{pcm.S1, pcm.S1}
	b := []pcm.State{pcm.S2, pcm.S1}
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			tr.Record(0, a, b)
		} else {
			tr.Record(0, b, a)
		}
	}
	if tr.MaxWear() != 10 {
		t.Errorf("max wear = %d, want 10 (cell 0 flipped every write)", tr.MaxWear())
	}
	// Cell 1 never programmed: imbalance counts only programmed cells.
	if got := tr.WearImbalance(); got != 1 {
		t.Errorf("imbalance = %v, want 1 (single hot cell)", got)
	}
}

func TestPercentile(t *testing.T) {
	tr := NewTracker(4)
	old := []pcm.State{pcm.S1, pcm.S1, pcm.S1, pcm.S1}
	new := []pcm.State{pcm.S2, pcm.S1, pcm.S1, pcm.S1}
	tr.Record(0, old, new)
	if got := tr.Percentile(100); got != 1 {
		t.Errorf("p100 = %d", got)
	}
	if got := tr.Percentile(50); got != 0 {
		t.Errorf("p50 = %d, want 0 (3 of 4 cells unworn)", got)
	}
}

func TestLifetimeProjection(t *testing.T) {
	tr := NewTracker(1)
	// One cell programmed every write: lifetime = endurance writes.
	for i := 0; i < 100; i++ {
		st := []pcm.State{pcm.State(i % 2)}
		nx := []pcm.State{pcm.State((i + 1) % 2)}
		tr.Record(0, st, nx)
	}
	if got := tr.LifetimeWrites(1e6); math.Abs(got-1e6) > 1 {
		t.Errorf("lifetime = %v, want 1e6", got)
	}
	empty := NewTracker(1)
	if !math.IsInf(empty.LifetimeWrites(1e6), 1) {
		t.Error("empty tracker must project infinite lifetime")
	}
}

// TestSchemesLifetimeOrdering is the wear-level integration check:
// WLCRC-16 must project a longer lifetime than the baseline on biased
// workloads (it programs fewer cells), mirroring the paper's endurance
// claim at the distribution level rather than just the mean.
func TestSchemesLifetimeOrdering(t *testing.T) {
	cfg := core.DefaultConfig()
	base, _ := core.NewScheme("Baseline", cfg)
	wl, _ := core.NewScheme("WLCRC-16", cfg)

	run := func(s core.Scheme) *Tracker {
		tr := NewTracker(s.TotalCells())
		mem := map[uint64][]pcm.State{}
		p, _ := workload.ProfileByName("gcc")
		gen := workload.NewGenerator(p, 128, 5)
		for i := 0; i < 3000; i++ {
			req, _ := gen.Next()
			old, ok := mem[req.Addr]
			if !ok {
				old = core.InitialCells(s.TotalCells())
			}
			next := s.Encode(old, &req.New)
			tr.Record(req.Addr, old, next)
			mem[req.Addr] = next
		}
		return tr
	}
	trBase := run(base)
	trWl := run(wl)
	if trWl.AvgUpdatedCells() >= trBase.AvgUpdatedCells() {
		t.Errorf("WLCRC updates %.1f >= baseline %.1f",
			trWl.AvgUpdatedCells(), trBase.AvgUpdatedCells())
	}
	rel := trWl.RelativeLifetime(trBase)
	if rel < 1.0 {
		t.Errorf("WLCRC relative lifetime %.2f, want >= 1", rel)
	}
	t.Logf("projected lifetime ratio WLCRC-16 / Baseline = %.2f "+
		"(avg updates %.1f vs %.1f, max wear %d vs %d)",
		rel, trWl.AvgUpdatedCells(), trBase.AvgUpdatedCells(),
		trWl.MaxWear(), trBase.MaxWear())
}
