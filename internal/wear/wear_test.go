package wear

import (
	"math"
	"testing"

	"wlcrc/internal/core"
	"wlcrc/internal/pcm"
	"wlcrc/internal/workload"
)

func TestRecordCountsOnlyChanges(t *testing.T) {
	d := NewDense(4)
	old := []pcm.State{pcm.S1, pcm.S1, pcm.S2, pcm.S3}
	new := []pcm.State{pcm.S1, pcm.S2, pcm.S2, pcm.S4}
	d.Record(0, old, new)
	s := d.Summary()
	if s.Writes != 1 {
		t.Errorf("writes = %d", s.Writes)
	}
	if got := s.AvgUpdatedCells(); got != 2 {
		t.Errorf("avg updated = %v, want 2", got)
	}
	if s.MaxCellWear != 1 {
		t.Errorf("max wear = %d", s.MaxCellWear)
	}
	if s.Cells != 4 || s.CellsTouched != 2 {
		t.Errorf("cells = %d touched = %d, want 4, 2", s.Cells, s.CellsTouched)
	}
	// Same write again: no changes.
	d.Record(0, new, new)
	if got := d.Summary().AvgUpdatedCells(); got != 1 {
		t.Errorf("avg updated after idle write = %v, want 1", got)
	}
}

func TestRecordChangedMatchesRecord(t *testing.T) {
	a, b := NewDense(3), NewDense(3)
	old := []pcm.State{pcm.S1, pcm.S2, pcm.S3}
	new := []pcm.State{pcm.S4, pcm.S2, pcm.S1}
	a.Record(7, old, new)
	b.RecordChanged(7, []bool{true, false, true})
	if a.Summary() != b.Summary() {
		t.Errorf("Record %+v != RecordChanged %+v", a.Summary(), b.Summary())
	}
	if a.CellWear(7, 0) != 1 || a.CellWear(7, 1) != 0 || a.CellWear(7, 2) != 1 {
		t.Error("per-cell counts wrong")
	}
	if a.CellWear(99, 0) != 0 {
		t.Error("untracked line should read 0")
	}
}

func TestMaxWearAndImbalance(t *testing.T) {
	d := NewDense(2)
	a := []pcm.State{pcm.S1, pcm.S1}
	b := []pcm.State{pcm.S2, pcm.S1}
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			d.Record(0, a, b)
		} else {
			d.Record(0, b, a)
		}
	}
	s := d.Summary()
	if s.MaxCellWear != 10 {
		t.Errorf("max wear = %d, want 10 (cell 0 flipped every write)", s.MaxCellWear)
	}
	// Cell 1 never programmed: imbalance counts only programmed cells.
	if got := s.WearImbalance(); got != 1 {
		t.Errorf("imbalance = %v, want 1 (single hot cell)", got)
	}
	// The wear-level buckets must hold exactly the one touched cell, at
	// level bits.Len32(10) = 4.
	var n uint64
	for b, c := range s.Buckets {
		n += c
		if c > 0 && b != 4 {
			t.Errorf("bucket %d = %d, want only bucket 4 occupied", b, c)
		}
	}
	if n != 1 {
		t.Errorf("bucket total = %d, want 1", n)
	}
}

func TestQuantile(t *testing.T) {
	d := NewDense(4)
	old := []pcm.State{pcm.S1, pcm.S1, pcm.S1, pcm.S1}
	new := []pcm.State{pcm.S2, pcm.S1, pcm.S1, pcm.S1}
	d.Record(0, old, new)
	s := d.Summary()
	if got := s.Quantile(1); got != 1 {
		t.Errorf("p100 = %d, want 1", got)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("p50 = %d, want 0 (3 of 4 cells unworn)", got)
	}
	if got := (Summary{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d", got)
	}
}

func TestSummaryMergePartitions(t *testing.T) {
	// Recording the same stream into one recorder, or partitioned by
	// address across two recorders and merged, must give identical
	// summaries — the property the sharded engine's metric merge needs.
	whole := NewDense(2)
	even, odd := NewDense(2), NewDense(2)
	states := [][]pcm.State{
		{pcm.S1, pcm.S1}, {pcm.S2, pcm.S3}, {pcm.S2, pcm.S1}, {pcm.S4, pcm.S1},
	}
	for i := 0; i < 40; i++ {
		addr := uint64(i % 4)
		old, new := states[i%4], states[(i+1)%4]
		whole.Record(addr, old, new)
		if addr%2 == 0 {
			even.Record(addr, old, new)
		} else {
			odd.Record(addr, old, new)
		}
	}
	merged := even.Summary()
	merged.Merge(odd.Summary())
	if merged != whole.Summary() {
		t.Errorf("merged partitions differ from whole:\nwhole:  %+v\nmerged: %+v",
			whole.Summary(), merged)
	}
}

func TestResetKeepsFootprint(t *testing.T) {
	d := NewDense(2)
	d.Record(1, []pcm.State{pcm.S1, pcm.S1}, []pcm.State{pcm.S2, pcm.S2})
	d.Reset()
	s := d.Summary()
	if s.Writes != 0 || s.Updates != 0 || s.MaxCellWear != 0 || s.CellsTouched != 0 {
		t.Errorf("reset left counters: %+v", s)
	}
	if s.Cells != 2 || d.Lines() != 1 {
		t.Errorf("reset dropped footprint: cells=%d lines=%d", s.Cells, d.Lines())
	}
	d.Record(1, []pcm.State{pcm.S1, pcm.S1}, []pcm.State{pcm.S2, pcm.S1})
	if got := d.Summary().MaxCellWear; got != 1 {
		t.Errorf("post-reset max wear = %d, want 1", got)
	}
}

func TestLifetimeProjection(t *testing.T) {
	d := NewDense(1)
	// One cell programmed every write: lifetime = endurance writes.
	for i := 0; i < 100; i++ {
		st := []pcm.State{pcm.State(i % 2)}
		nx := []pcm.State{pcm.State((i + 1) % 2)}
		d.Record(0, st, nx)
	}
	if got := d.Summary().LifetimeWrites(1e6); math.Abs(got-1e6) > 1 {
		t.Errorf("lifetime = %v, want 1e6", got)
	}
	if !math.IsInf((Summary{}).LifetimeWrites(1e6), 1) {
		t.Error("empty summary must project infinite lifetime")
	}
}

func TestBucketUpper(t *testing.T) {
	cases := map[int]uint32{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 32: math.MaxUint32}
	for b, want := range cases {
		if got := BucketUpper(b); got != want {
			t.Errorf("BucketUpper(%d) = %d, want %d", b, got, want)
		}
	}
}

// TestSchemesLifetimeOrdering is the wear-level integration check:
// WLCRC-16 must project a longer lifetime than the baseline on biased
// workloads (it programs fewer cells), mirroring the paper's endurance
// claim at the distribution level rather than just the mean.
func TestSchemesLifetimeOrdering(t *testing.T) {
	cfg := core.DefaultConfig()
	base, _ := core.NewScheme("Baseline", cfg)
	wl, _ := core.NewScheme("WLCRC-16", cfg)

	run := func(s core.Scheme) Summary {
		d := NewDense(s.TotalCells())
		mem := map[uint64][]pcm.State{}
		p, _ := workload.ProfileByName("gcc")
		gen := workload.NewGenerator(p, 128, 5)
		for i := 0; i < 3000; i++ {
			req, _ := gen.Next()
			old, ok := mem[req.Addr]
			if !ok {
				old = core.InitialCells(s.TotalCells())
			}
			next := s.Encode(old, &req.New)
			d.Record(req.Addr, old, next)
			mem[req.Addr] = next
		}
		return d.Summary()
	}
	sBase := run(base)
	sWl := run(wl)
	if sWl.AvgUpdatedCells() >= sBase.AvgUpdatedCells() {
		t.Errorf("WLCRC updates %.1f >= baseline %.1f",
			sWl.AvgUpdatedCells(), sBase.AvgUpdatedCells())
	}
	rel := sWl.RelativeLifetime(sBase)
	if rel < 1.0 {
		t.Errorf("WLCRC relative lifetime %.2f, want >= 1", rel)
	}
	t.Logf("projected lifetime ratio WLCRC-16 / Baseline = %.2f "+
		"(avg updates %.1f vs %.1f, max wear %d vs %d)",
		rel, sWl.AvgUpdatedCells(), sBase.AvgUpdatedCells(),
		sWl.MaxCellWear, sBase.MaxCellWear)
}
