package wear

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestSummaryJSONRoundTrip(t *testing.T) {
	// Populate a summary the way the replay does: through a Dense
	// recorder, so the bucket invariants hold.
	d := NewDense(4)
	for i := 0; i < 10; i++ {
		d.RecordChanged(7, []bool{true, i%2 == 0, false, true})
	}
	d.RecordChanged(9, []bool{true, false, false, false})
	s := d.Summary()

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("round trip changed the summary:\n got %+v\nwant %+v", back, s)
	}
	// Trailing zero wear levels are trimmed on the wire.
	if strings.Count(string(data), ",") >= summaryBuckets {
		t.Errorf("wire form looks untrimmed: %s", data)
	}
}

func TestSummaryJSONZeroValue(t *testing.T) {
	var s Summary
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("zero summary round trip = %+v", back)
	}
}
