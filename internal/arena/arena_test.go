package arena

import (
	"testing"
)

const testStride = 18 // a 257-cell scheme: 9 word pairs

// fill stamps a recognizable per-slot pattern into slot's planes.
func fill(a *Lines, slot int, tag uint64) {
	p := a.Planes(slot)
	for i := range p {
		p[i] = tag<<32 | uint64(i)
	}
}

// check verifies the pattern fill stamped.
func check(t *testing.T, a *Lines, slot int, tag uint64) {
	t.Helper()
	p := a.Planes(slot)
	if len(p) != a.Stride() {
		t.Fatalf("Planes(%d) has %d words, want %d", slot, len(p), a.Stride())
	}
	for i := range p {
		if p[i] != tag<<32|uint64(i) {
			t.Fatalf("slot %d word %d = %#x, want tag %#x", slot, i, p[i], tag)
		}
	}
}

func TestEnsureLookupBasic(t *testing.T) {
	a := New(testStride, 0)
	if a.Len() != 0 {
		t.Fatalf("fresh arena has %d lines", a.Len())
	}
	if _, ok := a.Lookup(42); ok {
		t.Fatal("Lookup hit on an empty arena")
	}
	slot, fresh := a.Ensure(42)
	if !fresh {
		t.Fatal("first Ensure not fresh")
	}
	for _, w := range a.Planes(slot) {
		if w != 0 {
			t.Fatal("fresh slot not zeroed")
		}
	}
	if got, ok := a.Lookup(42); !ok || got != slot {
		t.Fatalf("Lookup(42) = %d,%v after Ensure gave %d", got, ok, slot)
	}
	if s2, fresh := a.Ensure(42); fresh || s2 != slot {
		t.Fatalf("second Ensure(42) = %d, fresh=%v", s2, fresh)
	}
	if a.Addr(slot) != 42 || a.Len() != 1 {
		t.Fatalf("Addr=%d Len=%d", a.Addr(slot), a.Len())
	}
}

// TestSlotsAreFirstTouchOrdered pins the slot assignment the wear
// recorder's dense slot array relies on: slot k is the k-th distinct
// address ever ensured.
func TestSlotsAreFirstTouchOrdered(t *testing.T) {
	a := New(testStride, 0)
	addrs := []uint64{900, 3, 77, 0, 1 << 40}
	for k, addr := range addrs {
		if slot, _ := a.Ensure(addr); slot != k {
			t.Fatalf("Ensure(%d) -> slot %d, want %d", addr, slot, k)
		}
	}
}

// TestGrowthPreservesLines inserts far past the initial table and slab
// capacity — forcing several rehashes and slab moves — and demands
// every line's content and addressing survive. Addresses are spread
// (dense, strided, and high-bit) to exercise collision probing.
func TestGrowthPreservesLines(t *testing.T) {
	a := New(testStride, 0)
	const n = 5000
	addrOf := func(k int) uint64 {
		switch k % 3 {
		case 0:
			return uint64(k)
		case 1:
			return uint64(k) << 20
		default:
			return uint64(k)<<44 | 0xfff
		}
	}
	slots := make(map[uint64]int, n)
	for k := 0; k < n; k++ {
		addr := addrOf(k)
		slot, fresh := a.Ensure(addr)
		if !fresh {
			t.Fatalf("addr %#x duplicated at k=%d", addr, k)
		}
		slots[addr] = slot
		fill(a, slot, addr)
	}
	if a.Len() != n {
		t.Fatalf("Len = %d, want %d", a.Len(), n)
	}
	for addr, slot := range slots {
		got, ok := a.Lookup(addr)
		if !ok || got != slot {
			t.Fatalf("Lookup(%#x) = %d,%v, want slot %d", addr, got, ok, slot)
		}
		if a.Addr(slot) != addr {
			t.Fatalf("Addr(%d) = %#x, want %#x", slot, a.Addr(slot), addr)
		}
		check(t, a, slot, addr)
	}
}

// TestReserveNoGrowthAllocs pins the Count()-hint path: after
// Reserve(n), inserting n lines performs zero heap allocations.
func TestReserveNoGrowthAllocs(t *testing.T) {
	a := New(testStride, 0)
	const n = 1000
	a.Reserve(n)
	k := uint64(0)
	avg := testing.AllocsPerRun(n, func() {
		slot, _ := a.Ensure(k * 977)
		fill(a, slot, k*977)
		k++
	})
	if avg != 0 {
		t.Fatalf("insert after Reserve allocates %.2f objects/op, want 0", avg)
	}
	for i := uint64(0); i < k; i++ {
		slot, ok := a.Lookup(i * 977)
		if !ok {
			t.Fatalf("addr %d missing", i*977)
		}
		check(t, a, slot, i*977)
	}
}

// TestResetKeepsFootprintAndZeroes covers the shard reset fix: after
// Reset, the arena is empty, refilling allocates nothing, and recycled
// slots come back fully zeroed even though the slab kept the old bytes.
func TestResetKeepsFootprintAndZeroes(t *testing.T) {
	a := New(testStride, 0)
	const n = 300
	for k := uint64(0); k < n; k++ {
		slot, _ := a.Ensure(k)
		fill(a, slot, ^k) // dirty every word
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len after Reset = %d", a.Len())
	}
	if _, ok := a.Lookup(5); ok {
		t.Fatal("Lookup hit after Reset")
	}
	k := uint64(1)
	avg := testing.AllocsPerRun(n-1, func() {
		slot, fresh := a.Ensure(k * 3)
		if !fresh {
			t.Fatal("refill found a stale entry")
		}
		for _, w := range a.Planes(slot) {
			if w != 0 {
				t.Fatalf("recycled slot %d not re-zeroed", slot)
			}
		}
		k++
	})
	if avg != 0 {
		t.Fatalf("refill after Reset allocates %.2f objects/op, want 0", avg)
	}
}

// TestPlanesSliceCapped guards against append-through-slice corruption:
// a slot's Planes view must not reach into the next slot.
func TestPlanesSliceCapped(t *testing.T) {
	a := New(testStride, 0)
	s0, _ := a.Ensure(1)
	s1, _ := a.Ensure(2)
	fill(a, s1, 7)
	p := a.Planes(s0)
	if cap(p) != testStride {
		t.Fatalf("Planes cap = %d, want %d", cap(p), testStride)
	}
	_ = append(p, 0xdead) // must reallocate, not clobber slot s1
	check(t, a, s1, 7)
}

func TestLookupZeroAddress(t *testing.T) {
	// Address 0 must be a first-class key (the index encodes slots as
	// slot+1 precisely so 0 can mean empty).
	a := New(testStride, 0)
	if _, ok := a.Lookup(0); ok {
		t.Fatal("Lookup(0) hit on empty arena")
	}
	slot, fresh := a.Ensure(0)
	if !fresh {
		t.Fatal("Ensure(0) not fresh")
	}
	if got, ok := a.Lookup(0); !ok || got != slot {
		t.Fatalf("Lookup(0) = %d,%v", got, ok)
	}
}
