// Package arena provides flat plane-resident line storage: every stored
// line is a fixed-stride run of uint64 bit-plane words inside one
// contiguous slab, addressed by an open-addressed slot index keyed on
// the line address. It replaces the map[addr][]state line stores of the
// replay hot path — one multiply-shift hash probe instead of a map
// lookup per request, 16-byte-aligned contiguous line images instead of
// pointer-chased cell vectors, and a Reset that keeps every allocation.
package arena

import "math/bits"

// fibK is the 64-bit Fibonacci hashing multiplier (2^64 / phi). Line
// addresses are dense small integers under most traces; the multiply
// spreads them across the high bits the index shift keeps.
const fibK = 0x9E3779B97F4A7C15

// minIndexBits sizes the smallest slot index (64 entries).
const minIndexBits = 6

// Lines is a flat arena of plane-resident lines. The zero value is not
// ready to use; call New. Lines is not safe for concurrent use.
type Lines struct {
	stride int      // plane words per line
	planes []uint64 // live*stride words; slot s at [s*stride, (s+1)*stride)
	addrs  []uint64 // slot -> line address
	zero   []uint64 // stride zero words, the append source of fresh slots
	// index is the open-addressed hash table: entries hold slot+1, 0 is
	// empty. Capacity is a power of two, grown at 3/4 load; collisions
	// probe linearly.
	index []int32
	shift uint // 64 - log2(len(index))
}

// New builds an arena for lines of the given plane-word stride, with
// capacity preallocated for capHint lines (0 for the minimal table).
func New(stride, capHint int) *Lines {
	a := &Lines{stride: stride, zero: make([]uint64, stride)}
	a.rehash(1 << minIndexBits)
	if capHint > 0 {
		a.Reserve(capHint)
	}
	return a
}

// Stride returns the plane words per line.
func (a *Lines) Stride() int { return a.stride }

// Len returns the number of stored lines.
func (a *Lines) Len() int { return len(a.addrs) }

// Planes returns slot's plane words. The slice stays valid until the
// next Ensure or Reserve call, which may move the slab.
func (a *Lines) Planes(slot int) []uint64 {
	return a.planes[slot*a.stride : (slot+1)*a.stride : (slot+1)*a.stride]
}

// Addr returns the line address stored at slot.
func (a *Lines) Addr(slot int) uint64 { return a.addrs[slot] }

// find probes for addr: it returns the slot holding it, or -1 and the
// index position where it would insert.
func (a *Lines) find(addr uint64) (pos uint64, slot int32) {
	mask := uint64(len(a.index) - 1)
	i := (addr * fibK) >> a.shift
	for {
		s := a.index[i]
		if s == 0 {
			return i, -1
		}
		if a.addrs[s-1] == addr {
			return i, s - 1
		}
		i = (i + 1) & mask
	}
}

// Lookup returns the slot storing addr, or ok=false.
func (a *Lines) Lookup(addr uint64) (slot int, ok bool) {
	_, s := a.find(addr)
	return int(s), s >= 0
}

// Ensure returns addr's slot, inserting a fresh all-zero-plane line
// (the all-S1 initial RESET vector) on first touch. Warmed addresses
// never allocate.
func (a *Lines) Ensure(addr uint64) (slot int, fresh bool) {
	pos, s := a.find(addr)
	if s >= 0 {
		return int(s), false
	}
	if (len(a.addrs)+1)*4 > len(a.index)*3 {
		a.rehash(len(a.index) * 2)
		pos, _ = a.find(addr)
	}
	slot = len(a.addrs)
	a.addrs = append(a.addrs, addr)
	if need := (slot + 1) * a.stride; need <= cap(a.planes) {
		// Reused capacity from a Reset: re-zero the recycled slot.
		a.planes = a.planes[:need]
		clear(a.planes[need-a.stride : need])
	} else {
		a.planes = append(a.planes, a.zero...)
	}
	a.index[pos] = int32(slot + 1)
	return slot, true
}

// Reserve grows the arena's capacity to hold at least n lines without
// further slab or index allocations. It never shrinks.
func (a *Lines) Reserve(n int) {
	if n <= 0 {
		return
	}
	if size := indexSize(n); size > len(a.index) {
		a.rehash(size)
	}
	if want := n * a.stride; want > cap(a.planes) {
		grown := make([]uint64, len(a.planes), want)
		copy(grown, a.planes)
		a.planes = grown
	}
	if n > cap(a.addrs) {
		grown := make([]uint64, len(a.addrs), n)
		copy(grown, a.addrs)
		a.addrs = grown
	}
}

// indexSize returns the smallest power-of-two table size keeping n
// entries under 3/4 load.
func indexSize(n int) int {
	size := 1 << minIndexBits
	for size*3 < n*4 {
		size <<= 1
	}
	return size
}

// rehash rebuilds the index at the given power-of-two size.
func (a *Lines) rehash(size int) {
	a.index = make([]int32, size)
	a.shift = uint(64 - bits.Len(uint(size-1)))
	mask := uint64(size - 1)
	for s, addr := range a.addrs {
		i := (addr * fibK) >> a.shift
		for a.index[i] != 0 {
			i = (i + 1) & mask
		}
		a.index[i] = int32(s + 1)
	}
}

// Reset drops every stored line but keeps the slab, the address list
// and the index table — the next fill reuses all of it.
func (a *Lines) Reset() {
	a.planes = a.planes[:0]
	a.addrs = a.addrs[:0]
	clear(a.index)
}
