// Package cache models the private 2MB 8-way write-back L2 of Table II.
// In the paper's methodology the memory write trace is the stream of
// dirty-line write-backs leaving this cache (plus the previously stored
// line content, captured by Simics). The model here serves the same
// role for synthetic CPU store streams: stores dirty lines in the cache;
// evictions of dirty lines emit trace requests carrying both the old
// memory content and the new data.
package cache

import (
	"fmt"

	"wlcrc/internal/memline"
	"wlcrc/internal/trace"
)

// Config describes the cache geometry.
type Config struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// TableII returns the paper's L2 configuration: 2MB, 8-way, 64B lines.
func TableII() Config {
	return Config{SizeBytes: 2 << 20, Ways: 8, LineBytes: memline.LineBytes}
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

type way struct {
	valid bool
	dirty bool
	tag   uint64
	data  memline.Line
	lru   uint64 // larger = more recently used
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	WriteBacks uint64
	Fills      uint64
}

// HitRate returns hits / (hits+misses).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Memory is the backing store the cache fills from and writes back to.
// It retains the *data values* of every line (the encoding schemes keep
// their own cell-state views downstream).
type Memory struct {
	lines map[uint64]memline.Line
}

// NewMemory returns an empty backing store (all lines zero).
func NewMemory() *Memory { return &Memory{lines: make(map[uint64]memline.Line)} }

// Load returns the current content of a line.
func (m *Memory) Load(addr uint64) memline.Line { return m.lines[addr] }

// Store replaces the content of a line.
func (m *Memory) Store(addr uint64, l memline.Line) { m.lines[addr] = l }

// Cache is a set-associative write-back, write-allocate cache.
type Cache struct {
	cfg   Config
	sets  [][]way
	mem   *Memory
	clock uint64
	stats Stats
	// sink receives dirty evictions as trace requests.
	sink func(trace.Request)
}

// New builds a cache over mem; evicted dirty lines are passed to sink
// (which may be nil).
func New(cfg Config, mem *Memory, sink func(trace.Request)) *Cache {
	if cfg.Sets() <= 0 || cfg.Ways <= 0 {
		panic("cache: invalid geometry")
	}
	sets := make([][]way, cfg.Sets())
	for i := range sets {
		sets[i] = make([]way, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, mem: mem, sink: sink}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) locate(addr uint64) (set []way, idx int, hit bool) {
	s := c.sets[addr%uint64(len(c.sets))]
	tag := addr / uint64(len(c.sets))
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			return s, i, true
		}
	}
	return s, -1, false
}

// victim picks the LRU way of a set.
func victim(s []way) int {
	v := 0
	for i := range s {
		if !s[i].valid {
			return i
		}
		if s[i].lru < s[v].lru {
			v = i
		}
	}
	return v
}

// evict writes back way i of set s if dirty.
func (c *Cache) evict(s []way, i int, setIdx uint64) {
	w := &s[i]
	if !w.valid || !w.dirty {
		return
	}
	addr := w.tag*uint64(len(c.sets)) + setIdx
	old := c.mem.Load(addr)
	c.mem.Store(addr, w.data)
	c.stats.WriteBacks++
	if c.sink != nil {
		c.sink(trace.Request{Addr: addr, Old: old, New: w.data})
	}
}

// Store writes a full line into the cache (write-allocate).
func (c *Cache) Store(addr uint64, data memline.Line) {
	c.clock++
	s, i, hit := c.locate(addr)
	if hit {
		c.stats.Hits++
	} else {
		c.stats.Misses++
		i = victim(s)
		c.evict(s, i, addr%uint64(len(c.sets)))
		s[i] = way{valid: true, tag: addr / uint64(len(c.sets))}
		// Write-allocate: fill from memory (content immediately
		// overwritten here because our synthetic CPU writes whole
		// lines, but the fill is still an access).
		s[i].data = c.mem.Load(addr)
		c.stats.Fills++
	}
	s[i].data = data
	s[i].dirty = true
	s[i].lru = c.clock
}

// StoreWord writes one 64-bit word of a line (read-modify-write).
func (c *Cache) StoreWord(addr uint64, word int, v uint64) {
	c.clock++
	s, i, hit := c.locate(addr)
	if hit {
		c.stats.Hits++
	} else {
		c.stats.Misses++
		i = victim(s)
		c.evict(s, i, addr%uint64(len(c.sets)))
		s[i] = way{valid: true, tag: addr / uint64(len(c.sets)), data: c.mem.Load(addr)}
		c.stats.Fills++
	}
	s[i].data.SetWord(word, v)
	s[i].dirty = true
	s[i].lru = c.clock
}

// Load reads a line through the cache.
func (c *Cache) Load(addr uint64) memline.Line {
	c.clock++
	s, i, hit := c.locate(addr)
	if hit {
		c.stats.Hits++
		s[i].lru = c.clock
		return s[i].data
	}
	c.stats.Misses++
	i = victim(s)
	c.evict(s, i, addr%uint64(len(c.sets)))
	s[i] = way{valid: true, tag: addr / uint64(len(c.sets)), data: c.mem.Load(addr), lru: c.clock}
	c.stats.Fills++
	return s[i].data
}

// Flush writes back every dirty line (end of trace).
func (c *Cache) Flush() {
	for setIdx := range c.sets {
		s := c.sets[setIdx]
		for i := range s {
			c.evict(s, i, uint64(setIdx))
			s[i].dirty = false
		}
	}
}

// String describes the geometry.
func (c Config) String() string {
	return fmt.Sprintf("%dKB %d-way, %dB lines, %d sets",
		c.SizeBytes>>10, c.Ways, c.LineBytes, c.Sets())
}
