package cache

import (
	"testing"

	"wlcrc/internal/memline"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

func line(b byte) memline.Line {
	var l memline.Line
	for i := range l {
		l[i] = b
	}
	return l
}

func TestTableIIGeometry(t *testing.T) {
	cfg := TableII()
	if cfg.Sets() != 4096 {
		t.Errorf("sets = %d, want 4096 (2MB / (8 x 64B))", cfg.Sets())
	}
	if cfg.String() == "" {
		t.Error("empty geometry string")
	}
}

func TestStoreLoadHit(t *testing.T) {
	mem := NewMemory()
	c := New(TableII(), mem, nil)
	c.Store(42, line(0xaa))
	got := c.Load(42)
	if got != line(0xaa) {
		t.Error("load after store mismatch")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestDirtyEvictionEmitsWriteBack(t *testing.T) {
	cfg := Config{SizeBytes: 2 * 64, Ways: 1, LineBytes: 64} // 2 sets, direct-mapped
	mem := NewMemory()
	var evictions []trace.Request
	c := New(cfg, mem, func(r trace.Request) { evictions = append(evictions, r) })

	c.Store(0, line(1)) // set 0
	c.Store(2, line(2)) // set 0 again -> evicts addr 0
	if len(evictions) != 1 {
		t.Fatalf("evictions = %d, want 1", len(evictions))
	}
	ev := evictions[0]
	if ev.Addr != 0 {
		t.Errorf("evicted addr = %d", ev.Addr)
	}
	if ev.New != line(1) {
		t.Error("write-back data mismatch")
	}
	if (ev.Old != memline.Line{}) {
		t.Error("old content of a fresh line must be zero")
	}
	if mem.Load(0) != line(1) {
		t.Error("memory not updated by write-back")
	}
}

func TestWriteBackCarriesOldContent(t *testing.T) {
	cfg := Config{SizeBytes: 64, Ways: 1, LineBytes: 64} // 1 set
	mem := NewMemory()
	var evictions []trace.Request
	c := New(cfg, mem, func(r trace.Request) { evictions = append(evictions, r) })

	c.Store(0, line(1))
	c.Store(1, line(2)) // evicts 0 (old=zero, new=1)
	c.Store(0, line(3)) // evicts 1 (old=zero, new=2)
	c.Store(1, line(4)) // evicts 0 (old=1!, new=3)
	if len(evictions) != 3 {
		t.Fatalf("evictions = %d", len(evictions))
	}
	last := evictions[2]
	if last.Addr != 0 || last.Old != line(1) || last.New != line(3) {
		t.Errorf("third eviction = addr %d old %v new %v", last.Addr, last.Old[0], last.New[0])
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := Config{SizeBytes: 2 * 64, Ways: 2, LineBytes: 64} // 1 set, 2 ways
	mem := NewMemory()
	var evicted []uint64
	c := New(cfg, mem, func(r trace.Request) { evicted = append(evicted, r.Addr) })
	c.Store(0, line(1))
	c.Store(1, line(2))
	c.Load(0)           // touch 0: now 1 is LRU
	c.Store(2, line(3)) // evict 1
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Errorf("evicted %v, want [1]", evicted)
	}
}

func TestStoreWordReadModifyWrite(t *testing.T) {
	mem := NewMemory()
	mem.Store(7, line(0x11))
	c := New(TableII(), mem, nil)
	c.StoreWord(7, 3, 0xdeadbeef)
	got := c.Load(7)
	want := line(0x11)
	want.SetWord(3, 0xdeadbeef)
	if got != want {
		t.Error("StoreWord lost surrounding content")
	}
}

func TestFlushWritesEverythingBack(t *testing.T) {
	mem := NewMemory()
	n := 0
	c := New(TableII(), mem, func(trace.Request) { n++ })
	for i := 0; i < 100; i++ {
		c.Store(uint64(i), line(byte(i)))
	}
	c.Flush()
	if n != 100 {
		t.Errorf("flush emitted %d write-backs, want 100", n)
	}
	for i := 0; i < 100; i++ {
		if mem.Load(uint64(i)) != line(byte(i)) {
			t.Fatalf("memory line %d not written back", i)
		}
	}
	// A second flush must emit nothing.
	c.Flush()
	if n != 100 {
		t.Error("second flush re-emitted write-backs")
	}
}

func TestHitRateOnLocalityStream(t *testing.T) {
	mem := NewMemory()
	c := New(TableII(), mem, nil)
	r := prng.New(4)
	for i := 0; i < 20000; i++ {
		// 90% of accesses to 64 hot lines: should hit nearly always.
		var addr uint64
		if r.Bool(0.9) {
			addr = uint64(r.Intn(64))
		} else {
			addr = uint64(r.Intn(1 << 20))
		}
		c.Store(addr, line(byte(i)))
	}
	if hr := c.Stats().HitRate(); hr < 0.85 {
		t.Errorf("hit rate = %.2f, want >= 0.85", hr)
	}
}
