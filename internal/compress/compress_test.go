package compress

import (
	"testing"
	"testing/quick"

	"wlcrc/internal/memline"
	"wlcrc/internal/prng"
)

func randomLine(r *prng.Xoshiro256) memline.Line {
	var l memline.Line
	r.Fill(l[:])
	return l
}

// --- BitWriter / BitReader ---

func TestBitIORoundTrip(t *testing.T) {
	w := NewBitWriter(128)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xdeadbeef, 32)
	w.WriteBits(1, 1)
	w.WriteBits(0xffffffffffffffff, 64)
	if w.Len() != 100 {
		t.Fatalf("Len = %d, want 100", w.Len())
	}
	r := NewBitReader(w.Bytes())
	if got := r.ReadBits(3); got != 0b101 {
		t.Errorf("first field = %#x", got)
	}
	if got := r.ReadBits(32); got != 0xdeadbeef {
		t.Errorf("second field = %#x", got)
	}
	if got := r.ReadBits(1); got != 1 {
		t.Errorf("third field = %d", got)
	}
	if got := r.ReadBits(64); got != 0xffffffffffffffff {
		t.Errorf("fourth field = %#x", got)
	}
	if r.Pos() != 100 {
		t.Errorf("Pos = %d", r.Pos())
	}
	// Reading past the end yields zeros.
	if got := r.ReadBits(8); got != 0 {
		t.Errorf("past-end read = %#x", got)
	}
}

func TestQuickBitIO(t *testing.T) {
	f := func(vals [8]uint64, widths [8]uint8) bool {
		w := NewBitWriter(512)
		want := make([]uint64, 8)
		ns := make([]int, 8)
		for i := range vals {
			n := int(widths[i]) % 65
			ns[i] = n
			if n < 64 {
				want[i] = vals[i] & (1<<uint(n) - 1)
			} else {
				want[i] = vals[i]
			}
			w.WriteBits(vals[i], n)
		}
		r := NewBitReader(w.Bytes())
		for i := range vals {
			if r.ReadBits(ns[i]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- WLC ---

func TestWLCWordCompressible(t *testing.T) {
	w := WLC{K: 6}
	cases := []struct {
		v    uint64
		want bool
	}{
		{0, true},
		{^uint64(0), true},
		{1 << 57, true},            // top 6 bits zero
		{1 << 58, false},           // bit 58 set breaks the run
		{0xfc00000000000000, true}, // top 6 ones
		{0xf800000000000000, false},
	}
	for _, c := range cases {
		if got := w.WordCompressible(c.v); got != c.want {
			t.Errorf("WordCompressible(%#x) = %v", c.v, got)
		}
	}
	if w.Reclaimed() != 5 {
		t.Errorf("Reclaimed = %d, want 5", w.Reclaimed())
	}
}

func TestWLCCompressDecompress(t *testing.T) {
	w := WLC{K: 6}
	for _, v := range []uint64{0, ^uint64(0), 0x03ffffffffffffff, 0xfc00000000001234, 42} {
		if !w.WordCompressible(v) {
			t.Fatalf("%#x should be compressible", v)
		}
		c := w.CompressWord(v)
		// Reclaimed field must be clear.
		if memline.BitField(c, 59, 5) != 0 {
			t.Errorf("reclaimed field not cleared: %#x", c)
		}
		// Stuff aux garbage into the reclaimed field; decompression must
		// still recover the original word.
		dirty := memline.SetBitField(c, 59, 5, 0b10101)
		if got := w.DecompressWord(dirty); got != v {
			t.Errorf("DecompressWord(%#x) = %#x, want %#x", dirty, got, v)
		}
	}
}

func TestWLCLineRoundTrip(t *testing.T) {
	w := WLC{K: 6}
	var l memline.Line
	l.SetWord(0, 0x0000000000001234)
	l.SetWord(1, ^uint64(0))
	l.SetWord(2, 0xffffff0000000000)
	for i := 3; i < 8; i++ {
		l.SetWord(i, uint64(i))
	}
	if !w.LineCompressible(&l) {
		t.Fatal("line should be compressible")
	}
	c := w.CompressLine(&l)
	d := w.DecompressLine(&c)
	if !d.Equal(&l) {
		t.Error("line round trip failed")
	}
}

func TestWLCLineNotCompressible(t *testing.T) {
	w := WLC{K: 6}
	var l memline.Line
	l.SetWord(4, 0x4000000000000000)
	if w.LineCompressible(&l) {
		t.Error("line with non-compressible word reported compressible")
	}
}

func TestQuickWLCRoundTrip(t *testing.T) {
	for k := 4; k <= 9; k++ {
		w := WLC{K: k}
		f := func(raw uint64, aux uint16) bool {
			// Force compressibility by sign-extending.
			v := memline.SignExtend(raw&(1<<uint(64-k)-1), 65-k)
			if !w.WordCompressible(v) {
				return false
			}
			c := w.CompressWord(v)
			dirty := memline.SetBitField(c, 64-w.Reclaimed(), w.Reclaimed(), uint64(aux))
			return w.DecompressWord(dirty) == v
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

// --- FPC ---

func TestFPCZeroLine(t *testing.T) {
	var l memline.Line
	_, bits := FPCCompress(&l)
	// 16 zero words = 2 runs of 8 = 2*(3+3) = 12 bits.
	if bits != 12 {
		t.Errorf("zero line FPC size = %d, want 12", bits)
	}
}

func TestFPCRoundTripPatterns(t *testing.T) {
	lines := []memline.Line{}
	var l memline.Line
	lines = append(lines, l)         // zeros
	l.SetWord(0, 7)                  // 4-bit SE
	l.SetWord(1, 0xffffffffffffff85) // 8-bit SE in both halves? hi=0xffffffff (SE4 of -1), lo=0xffffff85
	l.SetWord(2, 0x00001234_00005678)
	l.SetWord(3, 0xabcd0000_000000ff) // padded half + 8-bit
	l.SetWord(4, 0x7f7f7f7f_11223344) // repeated bytes + raw
	lines = append(lines, l)
	r := prng.New(3)
	for i := 0; i < 50; i++ {
		lines = append(lines, randomLine(r))
	}
	for i, ln := range lines {
		buf, _ := FPCCompress(&ln)
		got := FPCDecompress(buf)
		if !got.Equal(&ln) {
			t.Fatalf("line %d: FPC round trip failed\n in: %v\nout: %v", i, ln.String(), got.String())
		}
	}
}

func TestFPCRandomLineIsLarge(t *testing.T) {
	r := prng.New(9)
	l := randomLine(r)
	if s := FPCSize(&l); s < 500 {
		t.Errorf("random line FPC size = %d, suspiciously small", s)
	}
}

// --- BDI ---

func TestBDIZeroAndRep(t *testing.T) {
	var l memline.Line
	if s := BDISize(&l); s != 4 {
		t.Errorf("zeros size = %d, want 4", s)
	}
	for i := 0; i < memline.LineWords; i++ {
		l.SetWord(i, 0xdeadbeefcafebabe)
	}
	if s := BDISize(&l); s != 68 {
		t.Errorf("rep8 size = %d, want 68", s)
	}
}

func TestBDIBaseDelta(t *testing.T) {
	var l memline.Line
	base := uint64(0x00007f8812340000)
	for i := 0; i < memline.LineWords; i++ {
		l.SetWord(i, base+uint64(i*16))
	}
	buf, bits := BDICompress(&l)
	// base8-delta1: 4 + 64 + 8*8 + 8 = 140.
	if bits != 140 {
		t.Errorf("pointer line size = %d, want 140", bits)
	}
	got := BDIDecompress(buf)
	if !got.Equal(&l) {
		t.Fatal("BDI round trip failed")
	}
}

func TestBDIMixedZeroBase(t *testing.T) {
	// Half small values (zero base), half near one large base.
	var l memline.Line
	for i := 0; i < memline.LineWords; i++ {
		if i%2 == 0 {
			l.SetWord(i, uint64(i))
		} else {
			l.SetWord(i, 0x5500000000000000+uint64(i))
		}
	}
	buf, _ := BDICompress(&l)
	got := BDIDecompress(buf)
	if !got.Equal(&l) {
		t.Fatal("BDI immediate round trip failed")
	}
}

func TestBDIRoundTripRandom(t *testing.T) {
	r := prng.New(17)
	for i := 0; i < 100; i++ {
		l := randomLine(r)
		buf, bits := BDICompress(&l)
		got := BDIDecompress(buf)
		if !got.Equal(&l) {
			t.Fatalf("BDI round trip failed for random line %d", i)
		}
		if bits != 4+memline.LineBits {
			// Random lines should almost always be raw; tolerate rare
			// compressible ones but they must still round trip.
			t.Logf("random line %d compressed to %d bits", i, bits)
		}
	}
}

func TestFPCBDISelectsBetter(t *testing.T) {
	// Pointer-style line: BDI shines, FPC does not.
	var l memline.Line
	for i := 0; i < memline.LineWords; i++ {
		l.SetWord(i, 0x00007f8812340000+uint64(i*8))
	}
	if got := FPCBDISize(&l); got != BDISize(&l)+1 {
		t.Errorf("FPCBDISize = %d, want BDI+1 = %d", got, BDISize(&l)+1)
	}
	// Small-int line: FPC wins.
	var l2 memline.Line
	for i := 0; i < memline.LineWords; i++ {
		l2.SetWord(i, uint64(i)) // each 32-bit half is tiny
	}
	if got := FPCBDISize(&l2); got != FPCSize(&l2)+1 {
		t.Errorf("FPCBDISize = %d, want FPC+1 = %d", got, FPCSize(&l2)+1)
	}
}

func TestFPCBDIRoundTrip(t *testing.T) {
	r := prng.New(23)
	for i := 0; i < 60; i++ {
		l := randomLine(r)
		if i%3 == 0 {
			// Make some lines compressible.
			for w := 0; w < memline.LineWords; w++ {
				l.SetWord(w, uint64(int64(int8(l[w]))))
			}
		}
		buf, _ := FPCBDICompress(&l)
		got := FPCBDIDecompress(buf)
		if !got.Equal(&l) {
			t.Fatalf("FPC+BDI round trip failed for line %d", i)
		}
	}
}

// --- COC ---

func TestCOCMenuSize(t *testing.T) {
	if NumCOCCompressors != 28 {
		t.Errorf("menu has %d compressors, want 28", NumCOCCompressors)
	}
	if len(cocSEWidths)+3+len(cocDeltaWidths)+1 != 28 {
		t.Errorf("tag space inconsistent")
	}
}

func TestCOCZeroLine(t *testing.T) {
	var l memline.Line
	// Every word: tag(5) + SE width 1 = 6 bits -> 48 bits total.
	if s := COCSize(&l); s != 48 {
		t.Errorf("zero line COC size = %d, want 48", s)
	}
}

func TestCOCDeltaChain(t *testing.T) {
	var l memline.Line
	base := uint64(0x123456789abcdef0)
	for i := 0; i < memline.LineWords; i++ {
		l.SetWord(i, base+uint64(i)*3)
	}
	// Word 0 raw (or rep), words 1..7 tiny deltas.
	s := COCSize(&l)
	if s >= 512 {
		t.Errorf("delta chain did not compress: %d bits", s)
	}
	buf, _ := COCCompress(&l)
	got := COCDecompress(buf)
	if !got.Equal(&l) {
		t.Fatal("COC round trip failed")
	}
}

func TestCOCRoundTripRandom(t *testing.T) {
	r := prng.New(31)
	for i := 0; i < 200; i++ {
		l := randomLine(r)
		switch i % 4 {
		case 1: // sign-extended words
			for w := 0; w < memline.LineWords; w++ {
				l.SetWord(w, memline.SignExtend(l.Word(w)&0xffffff, 24))
			}
		case 2: // repeated halfwords
			for w := 0; w < memline.LineWords; w++ {
				h := l.Word(w) & 0xffff
				l.SetWord(w, h*0x0001000100010001)
			}
		}
		buf, _ := COCCompress(&l)
		got := COCDecompress(buf)
		if !got.Equal(&l) {
			t.Fatalf("COC round trip failed for line %d", i)
		}
	}
}

func TestCOCCoversMoreThanFPCBDI(t *testing.T) {
	// A line of unrelated pointers with a shared high part compresses
	// under COC's delta menu but not to DIN's 369-bit FPC+BDI threshold.
	var l memline.Line
	r := prng.New(5)
	base := uint64(0x00007fa400000000)
	for i := 0; i < memline.LineWords; i++ {
		l.SetWord(i, base|uint64(r.Uint32()&0x00ffffff))
	}
	if COCSize(&l) > 448 {
		t.Errorf("COC size = %d, want <= 448", COCSize(&l))
	}
}

func TestQuickCOCRoundTrip(t *testing.T) {
	f := func(ws [memline.LineWords]uint64) bool {
		l := memline.FromWords(ws)
		buf, _ := COCCompress(&l)
		got := COCDecompress(buf)
		return got.Equal(&l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFPCRoundTrip(t *testing.T) {
	f := func(ws [memline.LineWords]uint64) bool {
		l := memline.FromWords(ws)
		buf, _ := FPCCompress(&l)
		got := FPCDecompress(buf)
		return got.Equal(&l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBDIRoundTrip(t *testing.T) {
	f := func(ws [memline.LineWords]uint64) bool {
		l := memline.FromWords(ws)
		buf, _ := BDICompress(&l)
		got := BDIDecompress(buf)
		return got.Equal(&l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
