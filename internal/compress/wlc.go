package compress

import "wlcrc/internal/memline"

// WLC implements the paper's Word-Level Compression (§IV, Fig 6a).
//
// A 64-bit word is k-compressible when its k most significant bits are
// all 0 or all 1 — i.e. the word is a sign-extended (65-k)-bit value. A
// 512-bit line is compressible when all eight of its words are. Upon
// compression the k MSBs collapse into the single representative bit
// b(64-k), reclaiming the top r = k-1 bits of every word for auxiliary
// coset-encoding information. Decompression sign-extends b(64-k) back
// into the reclaimed field.
type WLC struct {
	// K is the number of most-significant bits that must be identical
	// for a word to compress. Figure 4 sweeps K from 4 to 9; WLCRC-16
	// uses K=6.
	K int
}

// Reclaimed returns the number of bits WLC frees per word (k-1).
func (w WLC) Reclaimed() int { return w.K - 1 }

// WordCompressible reports whether the top K bits of v are identical.
func (w WLC) WordCompressible(v uint64) bool {
	return memline.MSBRun(v) >= w.K
}

// LineCompressible reports whether every word of the line compresses.
func (w WLC) LineCompressible(l *memline.Line) bool {
	for i := 0; i < memline.LineWords; i++ {
		if !w.WordCompressible(l.Word(i)) {
			return false
		}
	}
	return true
}

// CompressWord clears the reclaimed field (the top k-1 bits) of v,
// leaving the representative bit b(64-K) and the data bits in place. The
// caller stores auxiliary bits in the cleared field. v must be
// K-compressible.
func (w WLC) CompressWord(v uint64) uint64 {
	r := w.Reclaimed()
	return memline.SetBitField(v, 64-r, r, 0)
}

// DecompressWord reconstructs the original word from a compressed word
// (whose reclaimed field may hold arbitrary auxiliary bits) by extending
// the representative bit b(64-K) into the reclaimed field, "similar to
// sign extension" (§IV).
func (w WLC) DecompressWord(v uint64) uint64 {
	r := w.Reclaimed()
	rep := v >> uint(63-r) & 1
	fill := uint64(0)
	if rep == 1 {
		fill = 1<<uint(r) - 1
	}
	return memline.SetBitField(v, 64-r, r, fill)
}

// CompressLine applies CompressWord to every word. The line must be
// LineCompressible.
func (w WLC) CompressLine(l *memline.Line) memline.Line {
	var out memline.Line
	for i := 0; i < memline.LineWords; i++ {
		out.SetWord(i, w.CompressWord(l.Word(i)))
	}
	return out
}

// DecompressLine applies DecompressWord to every word.
func (w WLC) DecompressLine(l *memline.Line) memline.Line {
	var out memline.Line
	for i := 0; i < memline.LineWords; i++ {
		out.SetWord(i, w.DecompressWord(l.Word(i)))
	}
	return out
}
