package compress

import "wlcrc/internal/memline"

// FPC implements Frequent Pattern Compression (Alameldeen & Wood [2]) on
// a 512-bit memory line viewed as sixteen 32-bit words. Each word is
// encoded as a 3-bit prefix plus a variable payload; runs of zero words
// share one code.
//
// Prefixes (payload bits in parentheses):
//
//	000 zero-word run, payload = run length - 1 in 3 bits (up to 8 words)
//	001 4-bit sign-extended (4)
//	010 8-bit sign-extended (8)
//	011 16-bit sign-extended (16)
//	100 halfword padded with a zero halfword: low 16 bits are zero (16)
//	101 two halfwords, each sign-extended from 8 bits (16)
//	110 word with repeated bytes (8)
//	111 uncompressed (32)
const (
	fpcZeroRun = iota
	fpcSE4
	fpcSE8
	fpcSE16
	fpcPadHalf
	fpcTwoHalves
	fpcRepByte
	fpcRaw
)

const fpcWords = 16 // 32-bit words per 512-bit line

// fits32Signed reports whether the 32-bit two's-complement value v is
// representable in `bits` bits.
func fits32Signed(v uint32, bits int) bool {
	return memline.FitsSigned(memline.SignExtend(uint64(v), 32), bits)
}

// fpcClassify picks the cheapest pattern for one non-zero 32-bit word and
// returns (prefix, payload, payloadBits).
func fpcClassify(v uint32) (prefix int, payload uint64, bits int) {
	switch {
	case fits32Signed(v, 4):
		return fpcSE4, uint64(v) & 0xf, 4
	case fits32Signed(v, 8):
		return fpcSE8, uint64(v) & 0xff, 8
	case fits32Signed(v, 16):
		return fpcSE16, uint64(v) & 0xffff, 16
	case v&0xffff == 0:
		return fpcPadHalf, uint64(v >> 16), 16
	case memline.FitsSigned(memline.SignExtend(uint64(v&0xffff), 16), 8) &&
		memline.FitsSigned(memline.SignExtend(uint64(v>>16), 16), 8):
		return fpcTwoHalves, uint64(v>>16&0xff)<<8 | uint64(v&0xff), 16
	case byte(v) == byte(v>>8) && byte(v) == byte(v>>16) && byte(v) == byte(v>>24):
		return fpcRepByte, uint64(v & 0xff), 8
	default:
		return fpcRaw, uint64(v), 32
	}
}

// FPCMaxBits is the worst-case FPC stream length (sixteen raw 32-bit
// words, each behind a 3-bit prefix), sizing fixed scratch buffers for
// FPCCompressTo.
const FPCMaxBits = fpcWords * (3 + 32)

// FPCCompress encodes the line and returns the packed stream and its
// length in bits.
func FPCCompress(l *memline.Line) ([]byte, int) {
	w := NewBitWriter(FPCMaxBits)
	bits := FPCCompressTo(l, w)
	return w.Bytes(), bits
}

// FPCCompressTo encodes the line into w (back it with at least
// FPCMaxBits of storage) and returns the stream length in bits.
func FPCCompressTo(l *memline.Line, w *BitWriter) int {
	words := fpc32Words(l)
	for i := 0; i < fpcWords; {
		if words[i] == 0 {
			run := 1
			for i+run < fpcWords && words[i+run] == 0 && run < 8 {
				run++
			}
			w.WriteBits(fpcZeroRun, 3)
			w.WriteBits(uint64(run-1), 3)
			i += run
			continue
		}
		prefix, payload, bits := fpcClassify(words[i])
		w.WriteBits(uint64(prefix), 3)
		w.WriteBits(payload, bits)
		i++
	}
	return w.Len()
}

// FPCSize returns only the compressed size in bits.
func FPCSize(l *memline.Line) int {
	_, n := FPCCompress(l)
	return n
}

// FPCDecompress reconstructs a line from an FPC stream.
func FPCDecompress(buf []byte) memline.Line {
	r := NewBitReader(buf)
	var words [fpcWords]uint32
	for i := 0; i < fpcWords; {
		prefix := int(r.ReadBits(3))
		switch prefix {
		case fpcZeroRun:
			run := int(r.ReadBits(3)) + 1
			i += run
		case fpcSE4:
			words[i] = uint32(memline.SignExtend(r.ReadBits(4), 4))
			i++
		case fpcSE8:
			words[i] = uint32(memline.SignExtend(r.ReadBits(8), 8))
			i++
		case fpcSE16:
			words[i] = uint32(memline.SignExtend(r.ReadBits(16), 16))
			i++
		case fpcPadHalf:
			words[i] = uint32(r.ReadBits(16)) << 16
			i++
		case fpcTwoHalves:
			v := r.ReadBits(16)
			lo := uint32(memline.SignExtend(v&0xff, 8)) & 0xffff
			hi := uint32(memline.SignExtend(v>>8, 8)) & 0xffff
			words[i] = hi<<16 | lo
			i++
		case fpcRepByte:
			b := uint32(r.ReadBits(8))
			words[i] = b | b<<8 | b<<16 | b<<24
			i++
		default: // fpcRaw
			words[i] = uint32(r.ReadBits(32))
			i++
		}
	}
	return fromFPC32Words(words)
}

func fpc32Words(l *memline.Line) [fpcWords]uint32 {
	var out [fpcWords]uint32
	for i := 0; i < fpcWords; i++ {
		w := l.Word(i / 2)
		if i%2 == 1 {
			w >>= 32
		}
		out[i] = uint32(w)
	}
	return out
}

func fromFPC32Words(words [fpcWords]uint32) memline.Line {
	var l memline.Line
	for i := 0; i < memline.LineWords; i++ {
		l.SetWord(i, uint64(words[2*i])|uint64(words[2*i+1])<<32)
	}
	return l
}
