// Package compress implements the compression substrates the paper builds
// on or compares against: Word-Level Compression (WLC, the paper's own
// §IV contribution), Frequent Pattern Compression (FPC [2]),
// Base-Delta-Immediate (BDI [26]), the combined FPC+BDI selector used by
// DIN [16], and a Coverage-Oriented Compression (COC [20]) menu of 28
// variable-length word compressors.
//
// FPC, BDI and COC produce variable-length bit streams; BitWriter and
// BitReader provide the LSB-first bit packing they share. WLC is special:
// it does not repack bits — it frees a fixed field at the top of every
// 64-bit word, preserving bit positions, which is the property that makes
// differential writes effective (paper §VIII.A).
package compress

// BitWriter accumulates a bit stream, least-significant bit first within
// each byte, matching the line bit numbering of package memline.
type BitWriter struct {
	buf  []byte
	bits int
}

// NewBitWriter returns a writer with capacity preallocated for sizeBits.
func NewBitWriter(sizeBits int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, (sizeBits+7)/8)}
}

// WriteBits appends the n low bits of v, LSB first. n must be in [0, 64].
func (w *BitWriter) WriteBits(v uint64, n int) {
	for i := 0; i < n; i++ {
		if w.bits%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v>>uint(i)&1 == 1 {
			w.buf[w.bits/8] |= 1 << uint(w.bits%8)
		}
		w.bits++
	}
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int { return w.bits }

// Bytes returns the packed stream. The final byte is zero-padded.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader consumes a bit stream produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits consumes the next n bits and returns them LSB first.
// Reading past the end yields zero bits, mirroring the zero padding a
// fixed-size memory line provides.
func (r *BitReader) ReadBits(n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		if r.pos/8 < len(r.buf) && r.buf[r.pos/8]>>uint(r.pos%8)&1 == 1 {
			v |= 1 << uint(i)
		}
		r.pos++
	}
	return v
}

// Pos returns the number of bits consumed so far.
func (r *BitReader) Pos() int { return r.pos }
