// Package compress implements the compression substrates the paper builds
// on or compares against: Word-Level Compression (WLC, the paper's own
// §IV contribution), Frequent Pattern Compression (FPC [2]),
// Base-Delta-Immediate (BDI [26]), the combined FPC+BDI selector used by
// DIN [16], and a Coverage-Oriented Compression (COC [20]) menu of 28
// variable-length word compressors.
//
// FPC, BDI and COC produce variable-length bit streams; BitWriter and
// BitReader provide the LSB-first bit packing they share. WLC is special:
// it does not repack bits — it frees a fixed field at the top of every
// 64-bit word, preserving bit positions, which is the property that makes
// differential writes effective (paper §VIII.A).
package compress

// BitWriter accumulates a bit stream, least-significant bit first within
// each byte, matching the line bit numbering of package memline.
type BitWriter struct {
	buf  []byte
	bits int
}

// NewBitWriter returns a writer with capacity preallocated for sizeBits.
func NewBitWriter(sizeBits int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, (sizeBits+7)/8)}
}

// WrapBitWriter returns a value writer over caller storage. As long as
// the stream fits cap(buf), writing never allocates — encode hot paths
// wrap fixed-size stack arrays.
func WrapBitWriter(buf []byte) BitWriter { return BitWriter{buf: buf[:0]} }

// Reset clears the writer for reuse, keeping its backing buffer.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.bits = 0
}

// WriteBits appends the n low bits of v, LSB first. n must be in [0, 64].
// The write runs a byte at a time — merge into the current partial byte,
// then whole-byte stores — instead of bit-by-bit.
//
// Growth is deliberately written without append: append makes escape
// analysis move every stack-backed writer to the heap, defeating
// WrapBitWriter's purpose. With a right-sized buffer (every compressor
// here has a known worst case) the grow branch never runs and the call
// is allocation-free.
func (w *BitWriter) WriteBits(v uint64, n int) {
	if n <= 0 {
		return
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	need := (w.bits + n + 7) / 8
	for need > cap(w.buf) {
		w.grow()
	}
	// Newly exposed bytes must be zeroed: Wrap callers hand in
	// uninitialized storage.
	for len(w.buf) < need {
		w.buf = w.buf[:len(w.buf)+1]
		w.buf[len(w.buf)-1] = 0
	}
	idx := w.bits >> 3
	off := uint(w.bits) & 7
	w.bits += n
	w.buf[idx] |= byte(v << off)
	v >>= 8 - off
	written := 8 - int(off)
	for idx++; written < n; idx++ {
		w.buf[idx] = byte(v)
		v >>= 8
		written += 8
	}
}

// grow replaces the backing buffer with a larger heap copy; only hit
// when a writer was constructed with too little capacity.
func (w *BitWriter) grow() {
	nb := make([]byte, len(w.buf), 2*cap(w.buf)+8)
	copy(nb, w.buf)
	w.buf = nb
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int { return w.bits }

// Bytes returns the packed stream. The final byte is zero-padded.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader consumes a bit stream produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// WrapBitReader returns a value reader over buf, the allocation-free
// counterpart of NewBitReader for hot paths.
func WrapBitReader(buf []byte) BitReader { return BitReader{buf: buf} }

// Reset repoints the reader at buf for reuse.
func (r *BitReader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
}

// ReadBits consumes the next n bits and returns them LSB first.
// Reading past the end yields zero bits, mirroring the zero padding a
// fixed-size memory line provides. Like WriteBits, it moves a byte at a
// time rather than bit-by-bit.
func (r *BitReader) ReadBits(n int) uint64 {
	if n <= 0 {
		return 0
	}
	idx := r.pos >> 3
	off := uint(r.pos) & 7
	r.pos += n
	var v uint64
	if idx < len(r.buf) {
		v = uint64(r.buf[idx] >> off)
	}
	got := 8 - int(off)
	for idx++; got < n; idx++ {
		if idx < len(r.buf) {
			v |= uint64(r.buf[idx]) << uint(got)
		}
		got += 8
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	return v
}

// Pos returns the number of bits consumed so far.
func (r *BitReader) Pos() int { return r.pos }
