package compress

import "wlcrc/internal/memline"

// COC implements a Coverage-Oriented Compression menu in the spirit of
// Kim et al. [20] (Frugal ECC): 28 variable-length compressors applied
// per 64-bit word, chosen to maximize the fraction of lines that shrink
// at least a little, rather than the compression ratio of the lines that
// shrink a lot. Each word is encoded as a 5-bit compressor tag plus a
// variable payload; the per-word streams are concatenated, so — exactly
// as the paper observes in §VIII.A — bit positions shift between
// consecutive writes and the scheme destroys the bit-level locality that
// differential writes exploit.
//
// The menu (28 entries):
//
//	 0..16  sign-extended value, payload width from cocSEWidths
//	17      repeated byte (8)
//	18      repeated 16-bit halfword (16)
//	19      repeated 32-bit word (32)
//	20..26  signed delta from the previous original word, width from
//	        cocDeltaWidths (word 0 has no previous word and cannot use these)
//	27      raw (64)
var (
	cocSEWidths    = []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60}
	cocDeltaWidths = []int{4, 8, 16, 24, 32, 40, 48}
)

const (
	cocTagBits  = 5
	cocRepByte  = 17
	cocRep16    = 18
	cocRep32    = 19
	cocDelta0   = 20
	cocRawTag   = 27
	cocNumComps = 28
)

// NumCOCCompressors is the size of the compressor menu, matching the 28
// compressors of [20].
const NumCOCCompressors = cocNumComps

// cocBest returns the cheapest (tag, payload, payloadBits) for word v
// given the previous original word prev (valid only when hasPrev).
func cocBest(v, prev uint64, hasPrev bool) (tag int, payload uint64, bits int) {
	tag, payload, bits = cocRawTag, v, 64
	for i, w := range cocSEWidths {
		if w < bits && memline.FitsSigned(v, w) {
			tag, payload, bits = i, v&(1<<uint(w)-1), w
			break // widths ascend; first hit is cheapest SE
		}
	}
	if 8 < bits && isRepeated(v, 8) {
		tag, payload, bits = cocRepByte, v&0xff, 8
	}
	if 16 < bits && isRepeated(v, 16) {
		tag, payload, bits = cocRep16, v&0xffff, 16
	}
	if 32 < bits && isRepeated(v, 32) {
		tag, payload, bits = cocRep32, v&0xffffffff, 32
	}
	if hasPrev {
		d := v - prev
		for i, w := range cocDeltaWidths {
			if w < bits && memline.FitsSigned(d, w) {
				tag, payload, bits = cocDelta0+i, d&(1<<uint(w)-1), w
				break
			}
		}
	}
	return tag, payload, bits
}

func isRepeated(v uint64, unit int) bool {
	shift := uint(unit)
	mask := uint64(1)<<shift - 1
	if unit == 64 {
		return true
	}
	first := v & mask
	for s := shift; s < 64; s += shift {
		if v>>s&mask != first {
			return false
		}
	}
	return true
}

// COCMaxBits is the worst-case COC stream length (every word raw plus
// its tag), sizing fixed scratch buffers for COCCompressTo.
const COCMaxBits = memline.LineBits + memline.LineWords*cocTagBits

// COCCompress encodes the line and returns the packed stream and its
// length in bits.
func COCCompress(l *memline.Line) ([]byte, int) {
	w := NewBitWriter(COCMaxBits)
	bits := COCCompressTo(l, w)
	return w.Bytes(), bits
}

// COCCompressTo encodes the line into w (which the caller may back with
// stack storage of at least COCMaxBits via WrapBitWriter) and returns
// the stream length in bits. The packed bytes are w.Bytes().
func COCCompressTo(l *memline.Line, w *BitWriter) int {
	var prev uint64
	for i := 0; i < memline.LineWords; i++ {
		v := l.Word(i)
		tag, payload, bits := cocBest(v, prev, i > 0)
		w.WriteBits(uint64(tag), cocTagBits)
		w.WriteBits(payload, bits)
		prev = v
	}
	return w.Len()
}

// COCSize returns only the compressed size in bits.
func COCSize(l *memline.Line) int {
	_, n := COCCompress(l)
	return n
}

// COCDecompress reconstructs a line from a COC stream.
func COCDecompress(buf []byte) memline.Line {
	r := NewBitReader(buf)
	var l memline.Line
	var prev uint64
	for i := 0; i < memline.LineWords; i++ {
		tag := int(r.ReadBits(cocTagBits))
		var v uint64
		switch {
		case tag < len(cocSEWidths):
			w := cocSEWidths[tag]
			v = memline.SignExtend(r.ReadBits(w), w)
		case tag == cocRepByte:
			b := r.ReadBits(8)
			v = b * 0x0101010101010101
		case tag == cocRep16:
			h := r.ReadBits(16)
			v = h * 0x0001000100010001
		case tag == cocRep32:
			x := r.ReadBits(32)
			v = x | x<<32
		case tag >= cocDelta0 && tag < cocDelta0+len(cocDeltaWidths):
			w := cocDeltaWidths[tag-cocDelta0]
			v = prev + memline.SignExtend(r.ReadBits(w), w)
		default: // cocRawTag
			v = r.ReadBits(64)
		}
		l.SetWord(i, v)
		prev = v
	}
	return l
}
