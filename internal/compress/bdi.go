package compress

import "wlcrc/internal/memline"

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al.
// [26]) for a 64-byte line. The line is viewed as segments of 2, 4 or 8
// bytes; each segment is stored either as a small signed delta from an
// implicit zero base or as a delta from one explicit base (the first
// segment that does not fit the zero base). A per-segment mask selects
// the base, which is the "immediate" part of the scheme.
//
// Encodings tried, cheapest wins (tag is 4 bits):
//
//	0  zeros            line of all zero bytes                (4 bits)
//	1  rep8             eight identical 64-bit values         (4+64)
//	2  base8-delta1     8-byte segments, 1-byte deltas        (4+64+8*8 +8)
//	3  base8-delta2                                          (4+64+8*16+8)
//	4  base8-delta4                                          (4+64+8*32+8)
//	5  base4-delta1     4-byte segments, 1-byte deltas        (4+32+16*8+16)
//	6  base4-delta2                                          (4+32+16*16+16)
//	7  base2-delta1     2-byte segments, 1-byte deltas        (4+16+32*8+32)
//	15 raw              uncompressed                          (4+512)
const (
	bdiZeros = iota
	bdiRep8
	bdiB8D1
	bdiB8D2
	bdiB8D4
	bdiB4D1
	bdiB4D2
	bdiB2D1
	bdiRaw = 15
)

type bdiConfig struct {
	tag      int
	segBytes int
	dltBytes int
}

var bdiConfigs = []bdiConfig{
	{bdiB8D1, 8, 1},
	{bdiB8D2, 8, 2},
	{bdiB8D4, 8, 4},
	{bdiB4D1, 4, 1},
	{bdiB4D2, 4, 2},
	{bdiB2D1, 2, 1},
}

// bdiMaxSegs is the largest segment count of any configuration
// (2-byte segments over a 64-byte line), sizing the fixed scratch
// arrays the allocation-free compressor works in.
const bdiMaxSegs = memline.LineBytes / 2

// bdiSegments fills segs with the line's segments and returns the
// count.
func bdiSegments(l *memline.Line, segBytes int, segs *[bdiMaxSegs]uint64) int {
	n := memline.LineBytes / segBytes
	for i := 0; i < n; i++ {
		var v uint64
		for b := segBytes - 1; b >= 0; b-- {
			v = v<<8 | uint64(l[i*segBytes+b])
		}
		segs[i] = v
	}
	return n
}

// bdiTry attempts one base+delta configuration over segs, writing the
// per-segment zero-base mask and deltas into caller scratch. It returns
// the explicit base and ok=false if some segment fits neither base.
func bdiTry(segs []uint64, segBytes, dltBytes int, mask *[bdiMaxSegs]bool, deltas *[bdiMaxSegs]uint64) (base uint64, ok bool) {
	segBits := segBytes * 8
	dltBits := dltBytes * 8
	haveBase := false
	for i, s := range segs {
		mask[i] = false
		sv := memline.SignExtend(s, segBits)
		if memline.FitsSigned(sv, dltBits) {
			mask[i] = true // zero base
			deltas[i] = s & (1<<uint(dltBits) - 1)
			continue
		}
		if !haveBase {
			base = s
			haveBase = true
		}
		d := (s - base) & (1<<uint(segBits) - 1)
		dv := memline.SignExtend(d, segBits)
		if !memline.FitsSigned(dv, dltBits) {
			return 0, false
		}
		deltas[i] = d & (1<<uint(dltBits) - 1)
	}
	return base, true
}

func bdiConfigSize(segBytes, dltBytes int) int {
	n := memline.LineBytes / segBytes
	return 4 + segBytes*8 + n*dltBytes*8 + n
}

// BDIMaxBits is the worst-case BDI stream length (raw tag plus the
// uncompressed line), sizing fixed scratch buffers for BDICompressTo.
const BDIMaxBits = 4 + memline.LineBits

// BDICompress encodes the line with the cheapest applicable BDI encoding
// and returns the packed stream and its size in bits.
func BDICompress(l *memline.Line) ([]byte, int) {
	w := NewBitWriter(BDIMaxBits)
	bits := BDICompressTo(l, w)
	return w.Bytes(), bits
}

// BDICompressTo encodes the line into w (back it with at least
// BDIMaxBits of storage) and returns the stream length in bits. All
// working state lives in fixed-size scratch, so the call itself never
// allocates.
func BDICompressTo(l *memline.Line, w *BitWriter) int {
	// Zeros?
	zero := true
	for _, b := range l {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		w.WriteBits(bdiZeros, 4)
		return w.Len()
	}
	// Repeated 64-bit value?
	rep := true
	w0 := l.Word(0)
	for i := 1; i < memline.LineWords; i++ {
		if l.Word(i) != w0 {
			rep = false
			break
		}
	}
	if rep {
		w.WriteBits(bdiRep8, 4)
		w.WriteBits(w0, 64)
		return w.Len()
	}
	// Base+delta configs in order of compressed size. The try scratch is
	// promoted to best on improvement, so two fixed sets suffice.
	best := -1
	bestSize := 4 + memline.LineBits // raw
	var bestBase uint64
	var bestN int
	var segs, deltas, bestDeltas [bdiMaxSegs]uint64
	var mask, bestMask [bdiMaxSegs]bool
	for ci, cfg := range bdiConfigs {
		size := bdiConfigSize(cfg.segBytes, cfg.dltBytes)
		if size >= bestSize {
			continue
		}
		n := bdiSegments(l, cfg.segBytes, &segs)
		base, ok := bdiTry(segs[:n], cfg.segBytes, cfg.dltBytes, &mask, &deltas)
		if !ok {
			continue
		}
		best, bestSize = ci, size
		bestBase, bestN = base, n
		bestMask, bestDeltas = mask, deltas
	}
	if best < 0 {
		w.WriteBits(bdiRaw, 4)
		for i := 0; i < memline.LineWords; i++ {
			w.WriteBits(l.Word(i), 64)
		}
		return w.Len()
	}
	cfg := bdiConfigs[best]
	w.WriteBits(uint64(cfg.tag), 4)
	w.WriteBits(bestBase, cfg.segBytes*8)
	for _, m := range bestMask[:bestN] {
		if m {
			w.WriteBits(1, 1)
		} else {
			w.WriteBits(0, 1)
		}
	}
	for _, d := range bestDeltas[:bestN] {
		w.WriteBits(d, cfg.dltBytes*8)
	}
	return w.Len()
}

// BDISize returns only the compressed size in bits.
func BDISize(l *memline.Line) int {
	_, n := BDICompress(l)
	return n
}

// BDIDecompress reconstructs a line from a BDI stream.
func BDIDecompress(buf []byte) memline.Line {
	r := NewBitReader(buf)
	tag := int(r.ReadBits(4))
	var l memline.Line
	switch tag {
	case bdiZeros:
		return l
	case bdiRep8:
		v := r.ReadBits(64)
		for i := 0; i < memline.LineWords; i++ {
			l.SetWord(i, v)
		}
		return l
	case bdiRaw:
		for i := 0; i < memline.LineWords; i++ {
			l.SetWord(i, r.ReadBits(64))
		}
		return l
	}
	var cfg bdiConfig
	found := false
	for _, c := range bdiConfigs {
		if c.tag == tag {
			cfg, found = c, true
			break
		}
	}
	if !found {
		return l // corrupt stream decodes to zeros
	}
	segBits := cfg.segBytes * 8
	dltBits := cfg.dltBytes * 8
	n := memline.LineBytes / cfg.segBytes
	base := r.ReadBits(segBits)
	var mask [bdiMaxSegs]bool
	for i := 0; i < n; i++ {
		mask[i] = r.ReadBits(1) == 1
	}
	segMask := ^uint64(0)
	if segBits < 64 {
		segMask = 1<<uint(segBits) - 1
	}
	for i := 0; i < n; i++ {
		d := memline.SignExtend(r.ReadBits(dltBits), dltBits)
		var v uint64
		if mask[i] {
			v = d & segMask
		} else {
			v = (base + d) & segMask
		}
		for b := 0; b < cfg.segBytes; b++ {
			l[i*cfg.segBytes+b] = byte(v >> uint(8*b))
		}
	}
	return l
}

// FPCBDIMaxBits is the worst-case FPC+BDI stream length: the selector
// bit plus the larger of the two substreams' worst cases.
const FPCBDIMaxBits = 1 + FPCMaxBits

// FPCBDISize returns the size in bits of the better of FPC and BDI for
// the line, plus one selector bit, which is how DIN [16] and Figure 4
// account for the combined FPC+BDI scheme.
func FPCBDISize(l *memline.Line) int {
	var fBack [(FPCMaxBits + 7) / 8]byte
	var bBack [(BDIMaxBits + 7) / 8]byte
	fw := WrapBitWriter(fBack[:])
	bw := WrapBitWriter(bBack[:])
	f := FPCCompressTo(l, &fw)
	b := BDICompressTo(l, &bw)
	if b < f {
		return b + 1
	}
	return f + 1
}

// FPCBDICompress encodes with the better of FPC and BDI behind a one-bit
// selector (0 = FPC, 1 = BDI).
func FPCBDICompress(l *memline.Line) ([]byte, int) {
	w := NewBitWriter(FPCBDIMaxBits)
	bits := FPCBDICompressTo(l, w)
	return w.Bytes(), bits
}

// FPCBDICompressTo encodes into w (back it with at least FPCBDIMaxBits
// of storage) and returns the stream length in bits. The two candidate
// substreams live in fixed stack scratch, so the call never allocates.
func FPCBDICompressTo(l *memline.Line, w *BitWriter) int {
	var fBack [(FPCMaxBits + 7) / 8]byte
	var bBack [(BDIMaxBits + 7) / 8]byte
	fw := WrapBitWriter(fBack[:])
	bw := WrapBitWriter(bBack[:])
	fBits := FPCCompressTo(l, &fw)
	bBits := BDICompressTo(l, &bw)
	if bBits < fBits {
		w.WriteBits(1, 1)
		copyStream(w, bw.Bytes(), bBits)
	} else {
		w.WriteBits(0, 1)
		copyStream(w, fw.Bytes(), fBits)
	}
	return w.Len()
}

// FPCBDIDecompress inverts FPCBDICompress.
func FPCBDIDecompress(buf []byte) memline.Line {
	r := WrapBitReader(buf)
	sel := r.ReadBits(1)
	var back [(memline.LineBits + 16 + 7) / 8]byte
	w := WrapBitWriter(back[:])
	extractStream(&r, &w, memline.LineBits+16)
	if sel == 1 {
		return BDIDecompress(w.Bytes())
	}
	return FPCDecompress(w.Bytes())
}

func copyStream(w *BitWriter, buf []byte, bits int) {
	r := WrapBitReader(buf)
	for bits > 0 {
		n := bits
		if n > 64 {
			n = 64
		}
		w.WriteBits(r.ReadBits(n), n)
		bits -= n
	}
}

// extractStream re-packs maxBits bits from r into w, realigning a
// stream that sits at a non-byte offset.
func extractStream(r *BitReader, w *BitWriter, maxBits int) {
	for w.Len() < maxBits {
		n := maxBits - w.Len()
		if n > 64 {
			n = 64
		}
		w.WriteBits(r.ReadBits(n), n)
	}
}
