package compress

import (
	"testing"

	"wlcrc/internal/prng"
)

// Decompressors must tolerate arbitrary (corrupt) input buffers without
// panicking: a decoder fed garbage produces a garbage line, not a crash.
func TestDecompressorsNeverPanicOnGarbage(t *testing.T) {
	r := prng.New(999)
	for trial := 0; trial < 2000; trial++ {
		n := r.Intn(80)
		buf := make([]byte, n)
		r.Fill(buf)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d (len %d): panic: %v", trial, n, p)
				}
			}()
			_ = FPCDecompress(buf)
			_ = BDIDecompress(buf)
			_ = COCDecompress(buf)
			_ = FPCBDIDecompress(buf)
		}()
	}
}

// Truncating a valid stream must also be safe.
func TestDecompressorsTolerateTruncation(t *testing.T) {
	r := prng.New(1001)
	l := randomLine(r)
	for _, tc := range []struct {
		name string
		comp func() []byte
		dec  func([]byte)
	}{
		{"FPC", func() []byte { b, _ := FPCCompress(&l); return b }, func(b []byte) { FPCDecompress(b) }},
		{"BDI", func() []byte { b, _ := BDICompress(&l); return b }, func(b []byte) { BDIDecompress(b) }},
		{"COC", func() []byte { b, _ := COCCompress(&l); return b }, func(b []byte) { COCDecompress(b) }},
	} {
		buf := tc.comp()
		for cut := 0; cut <= len(buf); cut += 7 {
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s truncated to %d: panic: %v", tc.name, cut, p)
					}
				}()
				tc.dec(buf[:cut])
			}()
		}
	}
}
