// Package memsys models the main-memory organization of Table II: a
// 32GB MLC PCM main memory with two channels, two DIMMs per channel,
// sixteen banks per DIMM, per-bank 32-entry write queues, read-over-write
// priority with a high-watermark drain (writes are serviced ahead of
// reads once the write queue passes 80% of capacity), and write pausing
// (an in-flight iterative PCM write can be paused to service a read to
// the same bank).
//
// The simulator is cycle-based and intentionally simple: the paper's
// energy/endurance/disturbance results do not depend on timing, but the
// substrate exists so the system can be exercised end to end (cmd/pcmsim
// reports bandwidth and latency alongside the encoding metrics).
package memsys

import (
	"container/list"
	"fmt"
)

// Config describes the memory organization and timing.
type Config struct {
	Channels       int
	DIMMsPerChan   int
	BanksPerDIMM   int
	WriteQueueCap  int
	DrainThreshold float64 // write-queue occupancy that forces draining
	ReadCycles     int     // bank-busy cycles for an array read
	WriteCycles    int     // bank-busy cycles for a full MLC write (P&V)
	PauseOverhead  int     // cycles lost when pausing an in-flight write
	// WriteMinCycles is the bank-busy floor of a write that programs
	// very few cells (decode, row activation and at least one
	// program-and-verify iteration still happen). Zero means ReadCycles.
	WriteMinCycles int
	// CellsPerLine is the programmed-cell count of a full-line write,
	// the denominator of the P&V scaling in WriteCyclesFor. Zero means
	// 256 (one 512-bit MLC line).
	CellsPerLine int
	// SubShards is the number of address-interleaved sub-shards each
	// bank is split into for parallel replay. A bank is the hardware's
	// unit of independence, but it is not the smallest one the software
	// can exploit: lines within a bank never share encoder state, so the
	// replay engine splits every bank into SubShards routing units and
	// is no longer capped at the bank count. The split is part of the
	// deterministic geometry — sub-shard assignment depends only on the
	// address, never on worker count — so results stay bit-identical
	// however many workers replay them. Zero means DefaultSubShards.
	SubShards int
}

// DefaultSubShards is the per-bank sub-shard count used when
// Config.SubShards is zero: enough to let worker counts run well past
// the bank count without inflating the shard table.
const DefaultSubShards = 4

// TableII returns the paper's configuration. Timing reflects MLC PCM's
// ~10x write/read asymmetry.
func TableII() Config {
	return Config{
		Channels:       2,
		DIMMsPerChan:   2,
		BanksPerDIMM:   16,
		WriteQueueCap:  32,
		DrainThreshold: 0.8,
		ReadCycles:     75,
		WriteCycles:    750,
		PauseOverhead:  20,
		WriteMinCycles: 75,
		CellsPerLine:   256,
		SubShards:      DefaultSubShards,
	}
}

// WriteCyclesFor returns the bank-busy cycles of a write that programs
// the given number of cells. MLC PCM writes are iterative
// program-and-verify sweeps over the cells being updated, so the busy
// time scales with the programmed-cell count: a full-line write (cells
// >= CellsPerLine) costs WriteCycles, fewer updated cells interpolate
// linearly down to the WriteMinCycles floor, and cells <= 0 — "unknown",
// the zero value of Access.Cells — conservatively costs the full
// WriteCycles. Callers that do know the count and want a silent store
// (zero updated cells) priced at the floor should clamp it to 1 before
// enqueueing, as pcmsim's timing tap does. This is how the encoders'
// endurance savings become a latency/bandwidth win: a coset-coded write
// that programs a quarter of the cells occupies its bank for roughly a
// quarter of the time.
func (c Config) WriteCyclesFor(cells int) int {
	if cells <= 0 {
		return c.WriteCycles
	}
	perLine := c.CellsPerLine
	if perLine <= 0 {
		perLine = 256
	}
	min := c.WriteMinCycles
	if min <= 0 {
		min = c.ReadCycles
	}
	if min > c.WriteCycles {
		min = c.WriteCycles
	}
	if cells >= perLine {
		return c.WriteCycles
	}
	cyc := min + (c.WriteCycles-min)*cells/perLine
	return cyc
}

// Banks returns the total bank count.
func (c Config) Banks() int { return c.Channels * c.DIMMsPerChan * c.BanksPerDIMM }

// BankOf maps a line address to a bank (line interleaving across
// channels, then DIMMs, then banks). Both the cycle-based Controller and
// the parallel replay engine in internal/sim shard the address space
// with this function, so "one shard per bank" matches the hardware's own
// notion of independent lines.
func (c Config) BankOf(addr uint64) int {
	return int(addr % uint64(c.Banks()))
}

// SubShardsPerBank returns the resolved per-bank sub-shard count
// (Config.SubShards, or DefaultSubShards when unset).
func (c Config) SubShardsPerBank() int {
	if c.SubShards <= 0 {
		return DefaultSubShards
	}
	return c.SubShards
}

// SubShardOf maps a line address to its sub-shard within its bank:
// consecutive lines of one bank round-robin across the bank's
// sub-shards, the same interleaving idea BankOf applies across banks.
// The assignment depends only on the address and the geometry.
func (c Config) SubShardOf(addr uint64) int {
	return int((addr / uint64(c.Banks())) % uint64(c.SubShardsPerBank()))
}

// RouteUnits returns the total number of routing units the replay
// engine shards each scheme's address space into: one per (bank,
// sub-shard) pair.
func (c Config) RouteUnits() int { return c.Banks() * c.SubShardsPerBank() }

// RouteOf maps a line address to its flat routing unit, ordered bank-
// major: unit = bank*SubShardsPerBank() + subShard. RouteOf/BankOf/
// SubShardOf are consistent by construction: RouteOf(a) /
// SubShardsPerBank() == BankOf(a) and RouteOf(a) % SubShardsPerBank()
// == SubShardOf(a).
func (c Config) RouteOf(addr uint64) int {
	banks := uint64(c.Banks())
	k := uint64(c.SubShardsPerBank())
	return int((addr%banks)*k + (addr/banks)%k)
}

// AccessKind distinguishes reads from writes.
type AccessKind int

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

// Access is one memory request.
type Access struct {
	Kind AccessKind
	Addr uint64 // line address
	// Cells is the number of cells the write programs (the encoder's
	// updated-cell count), which scales the write's bank-busy time via
	// Config.WriteCyclesFor. 0 means unknown: the write is charged the
	// full WriteCycles. Ignored for reads.
	Cells int
	// Arrival is the cycle the request enters the controller.
	Arrival uint64
}

// Stats aggregates the run.
type Stats struct {
	Reads, Writes      uint64
	ReadCycles         uint64 // total read latency (arrival to done)
	WriteCycles        uint64 // total write latency
	WritePauses        uint64 // in-flight writes paused for a read
	DrainEvents        uint64 // times a queue crossed the drain threshold
	MaxWriteQueueDepth int
	StallsQueueFull    uint64 // cycles producers were blocked on full queues
	BusyCycles         uint64 // cycles with at least one bank active
	TotalCycles        uint64
}

// AvgReadLatency returns mean cycles from arrival to completion.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadCycles) / float64(s.Reads)
}

// AvgWriteLatency returns mean cycles from arrival to completion.
func (s Stats) AvgWriteLatency() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.WriteCycles) / float64(s.Writes)
}

// Utilization returns the fraction of cycles any bank was busy.
func (s Stats) Utilization() float64 {
	if s.TotalCycles == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.TotalCycles)
}

type bankState struct {
	readQ  *list.List // of Access
	writeQ *list.List
	// busyUntil is the cycle the current operation finishes.
	busyUntil uint64
	// current in-flight op (valid when busyUntil > now).
	inflight     Access
	inflightLeft int
	draining     bool
}

// Controller is the cycle-based memory controller.
type Controller struct {
	cfg   Config
	banks []bankState
	now   uint64
	stats Stats
}

// New builds a controller.
func New(cfg Config) *Controller {
	if cfg.Banks() <= 0 || cfg.WriteQueueCap <= 0 {
		panic("memsys: invalid configuration")
	}
	c := &Controller{cfg: cfg, banks: make([]bankState, cfg.Banks())}
	for i := range c.banks {
		c.banks[i].readQ = list.New()
		c.banks[i].writeQ = list.New()
	}
	return c
}

// BankOf maps a line address to a bank, per the configuration's
// interleaving.
func (c *Controller) BankOf(addr uint64) int {
	return c.cfg.BankOf(addr)
}

// Enqueue adds a request, advancing time until there is queue room
// (modeling back-pressure). It returns the enqueue cycle.
func (c *Controller) Enqueue(a Access) uint64 {
	b := &c.banks[c.BankOf(a.Addr)]
	if a.Kind == Write {
		for b.writeQ.Len() >= c.cfg.WriteQueueCap {
			c.stats.StallsQueueFull++
			c.Step(1)
		}
	}
	a.Arrival = c.now
	if a.Kind == Read {
		b.readQ.PushBack(a)
	} else {
		b.writeQ.PushBack(a)
		if b.writeQ.Len() > c.stats.MaxWriteQueueDepth {
			c.stats.MaxWriteQueueDepth = b.writeQ.Len()
		}
	}
	return c.now
}

// Step advances the clock n cycles, scheduling bank operations.
func (c *Controller) Step(n int) {
	for i := 0; i < n; i++ {
		c.tick()
	}
}

func (c *Controller) tick() {
	c.now++
	c.stats.TotalCycles++
	busy := false
	for i := range c.banks {
		b := &c.banks[i]
		if c.now < b.busyUntil {
			busy = true
			// Write pausing: a pending read preempts an in-flight write
			// when the queue is not draining.
			if b.inflight.Kind == Write && b.readQ.Len() > 0 && !b.draining {
				b.inflightLeft = int(b.busyUntil-c.now) + c.cfg.PauseOverhead
				b.busyUntil = c.now // pause; the read is issued below
				c.stats.WritePauses++
			} else {
				continue
			}
		}
		// Operation (if any) completed at busyUntil.
		c.issue(b)
		if c.now < b.busyUntil {
			busy = true
		}
	}
	if busy {
		c.stats.BusyCycles++
	}
}

// issue selects the next operation for a bank per the §VII.A policy:
// reads first, unless the write queue is past the drain threshold (then
// writes go ahead of reads until the queue empties); paused writes
// resume when no reads are waiting.
func (c *Controller) issue(b *bankState) {
	occupancy := float64(b.writeQ.Len()) / float64(c.cfg.WriteQueueCap)
	if occupancy >= c.cfg.DrainThreshold && !b.draining {
		b.draining = true
		c.stats.DrainEvents++
	}
	if b.writeQ.Len() == 0 {
		b.draining = false
	}

	if b.draining && b.writeQ.Len() > 0 {
		c.startWrite(b)
		return
	}
	if b.readQ.Len() > 0 {
		a := b.readQ.Remove(b.readQ.Front()).(Access)
		b.inflight = a
		b.busyUntil = c.now + uint64(c.cfg.ReadCycles)
		c.stats.Reads++
		c.stats.ReadCycles += b.busyUntil - a.Arrival
		return
	}
	if b.inflightLeft > 0 {
		// Resume the paused write.
		b.inflight = Access{Kind: Write, Addr: b.inflight.Addr, Arrival: b.inflight.Arrival}
		b.busyUntil = c.now + uint64(b.inflightLeft)
		b.inflightLeft = 0
		return
	}
	if b.writeQ.Len() > 0 {
		c.startWrite(b)
	}
}

func (c *Controller) startWrite(b *bankState) {
	a := b.writeQ.Remove(b.writeQ.Front()).(Access)
	b.inflight = a
	b.busyUntil = c.now + uint64(c.cfg.WriteCyclesFor(a.Cells))
	c.stats.Writes++
	c.stats.WriteCycles += b.busyUntil - a.Arrival
}

// Drain advances time until every queue is empty and all banks idle.
func (c *Controller) Drain() {
	for {
		idle := true
		for i := range c.banks {
			b := &c.banks[i]
			if b.readQ.Len() > 0 || b.writeQ.Len() > 0 || c.now < b.busyUntil || b.inflightLeft > 0 {
				idle = false
				break
			}
		}
		if idle {
			return
		}
		c.Step(1)
	}
}

// Now returns the current cycle.
func (c *Controller) Now() uint64 { return c.now }

// Stats returns a snapshot of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// String summarizes the configuration.
func (c Config) String() string {
	return fmt.Sprintf("%d channels x %d DIMMs x %d banks, %d-entry write queues, drain at %.0f%%",
		c.Channels, c.DIMMsPerChan, c.BanksPerDIMM, c.WriteQueueCap, c.DrainThreshold*100)
}
