package memsys

import (
	"testing"

	"wlcrc/internal/prng"
)

func TestTableIIConfig(t *testing.T) {
	cfg := TableII()
	if cfg.Banks() != 64 {
		t.Errorf("banks = %d, want 64 (2ch x 2DIMM x 16)", cfg.Banks())
	}
	if cfg.WriteQueueCap != 32 {
		t.Errorf("write queue = %d, want 32", cfg.WriteQueueCap)
	}
	if cfg.DrainThreshold != 0.8 {
		t.Errorf("drain threshold = %v, want 0.8", cfg.DrainThreshold)
	}
	if cfg.String() == "" {
		t.Error("empty config string")
	}
}

func TestSingleReadLatency(t *testing.T) {
	c := New(TableII())
	c.Enqueue(Access{Kind: Read, Addr: 0})
	c.Drain()
	st := c.Stats()
	if st.Reads != 1 {
		t.Fatalf("reads = %d", st.Reads)
	}
	// One idle bank: latency = issue delay (1 tick) + ReadCycles.
	if st.AvgReadLatency() > float64(TableII().ReadCycles+2) {
		t.Errorf("read latency = %v, want ~%d", st.AvgReadLatency(), TableII().ReadCycles)
	}
}

func TestReadPriorityOverWrites(t *testing.T) {
	cfg := TableII()
	c := New(cfg)
	// A few writes then a read to the same bank; the read must not wait
	// behind all writes.
	for i := 0; i < 5; i++ {
		c.Enqueue(Access{Kind: Write, Addr: 0})
	}
	c.Step(2) // let the first write start
	c.Enqueue(Access{Kind: Read, Addr: 0})
	c.Drain()
	st := c.Stats()
	if st.Reads != 1 || st.Writes != 5 {
		t.Fatalf("reads=%d writes=%d", st.Reads, st.Writes)
	}
	// If the read had waited for all five 750-cycle writes it would see
	// ~3750 cycles; with priority and pausing it should be far less.
	if st.AvgReadLatency() > float64(cfg.WriteCycles) {
		t.Errorf("read latency %v suggests no read priority", st.AvgReadLatency())
	}
	if st.WritePauses == 0 {
		t.Error("expected at least one write pause")
	}
}

func TestDrainThresholdTriggersWriteBurst(t *testing.T) {
	cfg := TableII()
	c := New(cfg)
	// Fill one bank's write queue past 80%.
	for i := 0; i < 27; i++ {
		c.Enqueue(Access{Kind: Write, Addr: 0})
	}
	c.Step(1)
	if c.Stats().DrainEvents == 0 {
		t.Error("expected a drain event at >80% occupancy")
	}
	// During draining, a read must wait (writes go ahead of reads).
	c.Enqueue(Access{Kind: Read, Addr: 0})
	c.Drain()
	st := c.Stats()
	if st.AvgReadLatency() < float64(cfg.ReadCycles) {
		t.Errorf("read finished implausibly fast: %v", st.AvgReadLatency())
	}
}

func TestBackPressureOnFullQueue(t *testing.T) {
	cfg := TableII()
	c := New(cfg)
	for i := 0; i < cfg.WriteQueueCap+4; i++ {
		c.Enqueue(Access{Kind: Write, Addr: 0})
	}
	if c.Stats().StallsQueueFull == 0 {
		t.Error("expected stalls when overfilling a queue")
	}
	c.Drain()
	if got := c.Stats().Writes; got != uint64(cfg.WriteQueueCap+4) {
		t.Errorf("writes = %d", got)
	}
}

func TestBankParallelism(t *testing.T) {
	cfg := TableII()
	// Writes to different banks overlap; same bank serializes.
	same := New(cfg)
	for i := 0; i < 4; i++ {
		same.Enqueue(Access{Kind: Write, Addr: 0})
	}
	same.Drain()
	spread := New(cfg)
	for i := 0; i < 4; i++ {
		spread.Enqueue(Access{Kind: Write, Addr: uint64(i)})
	}
	spread.Drain()
	if spread.Now() >= same.Now() {
		t.Errorf("spread banks took %d cycles, same bank %d; expected parallelism",
			spread.Now(), same.Now())
	}
}

func TestMixedWorkloadCompletes(t *testing.T) {
	cfg := TableII()
	c := New(cfg)
	r := prng.New(6)
	reads, writes := 0, 0
	for i := 0; i < 3000; i++ {
		if r.Bool(0.6) {
			c.Enqueue(Access{Kind: Read, Addr: uint64(r.Intn(4096))})
			reads++
		} else {
			c.Enqueue(Access{Kind: Write, Addr: uint64(r.Intn(4096))})
			writes++
		}
		if i%4 == 0 {
			c.Step(30)
		}
	}
	c.Drain()
	st := c.Stats()
	if st.Reads != uint64(reads) || st.Writes != uint64(writes) {
		t.Fatalf("completed %d/%d, want %d/%d", st.Reads, st.Writes, reads, writes)
	}
	if st.Utilization() <= 0 || st.Utilization() > 1 {
		t.Errorf("utilization = %v", st.Utilization())
	}
	if st.AvgWriteLatency() < float64(cfg.WriteCycles) {
		t.Errorf("write latency %v below the device write time", st.AvgWriteLatency())
	}
}

func TestWriteCyclesForScaling(t *testing.T) {
	cfg := TableII()
	if got := cfg.WriteCyclesFor(0); got != cfg.WriteCycles {
		t.Errorf("unknown cell count: %d cycles, want full %d", got, cfg.WriteCycles)
	}
	if got := cfg.WriteCyclesFor(cfg.CellsPerLine); got != cfg.WriteCycles {
		t.Errorf("full line: %d cycles, want %d", got, cfg.WriteCycles)
	}
	if got := cfg.WriteCyclesFor(10 * cfg.CellsPerLine); got != cfg.WriteCycles {
		t.Errorf("over-full line: %d cycles, want clamp at %d", got, cfg.WriteCycles)
	}
	if got := cfg.WriteCyclesFor(1); got != cfg.WriteMinCycles+
		(cfg.WriteCycles-cfg.WriteMinCycles)/cfg.CellsPerLine {
		t.Errorf("one cell: %d cycles", got)
	}
	half := cfg.WriteCyclesFor(cfg.CellsPerLine / 2)
	if half >= cfg.WriteCycles || half <= cfg.WriteMinCycles {
		t.Errorf("half line: %d cycles not strictly between floor %d and full %d",
			half, cfg.WriteMinCycles, cfg.WriteCycles)
	}
	// Monotone in the programmed-cell count.
	prev := 0
	for cells := 1; cells <= cfg.CellsPerLine; cells++ {
		cyc := cfg.WriteCyclesFor(cells)
		if cyc < prev {
			t.Fatalf("WriteCyclesFor not monotone at %d cells", cells)
		}
		prev = cyc
	}
	// Zero-value fallbacks: floor defaults to ReadCycles, line size to 256.
	bare := Config{ReadCycles: 75, WriteCycles: 750}
	if got := bare.WriteCyclesFor(256); got != 750 {
		t.Errorf("bare full line: %d", got)
	}
	if got := bare.WriteCyclesFor(1); got < 75 || got >= 750 {
		t.Errorf("bare one cell: %d", got)
	}
}

// TestFewerProgrammedCellsLowerLatency is the satellite's acceptance
// check: the same write stream with small per-write programmed-cell
// counts (a coset-coded scheme) must finish with strictly lower average
// write latency than the full-line writes of an unencoded scheme.
func TestFewerProgrammedCellsLowerLatency(t *testing.T) {
	run := func(cells int) float64 {
		c := New(TableII())
		for i := 0; i < 200; i++ {
			c.Enqueue(Access{Kind: Write, Addr: uint64(i), Cells: cells})
			c.Step(5)
		}
		c.Drain()
		return c.Stats().AvgWriteLatency()
	}
	full := run(0)   // unknown -> full WriteCycles
	coded := run(48) // ~WLCRC-grade updated-cell count
	if coded >= full {
		t.Errorf("coded writes (48 cells) latency %.0f >= full-line latency %.0f", coded, full)
	}
}

// TestSubShardRouting pins the sub-bank routing contract the replay
// engine builds on: RouteOf decomposes into exactly (BankOf,
// SubShardOf), every unit index is in range, unset SubShards resolves
// to the default, and the interleaving actually spreads consecutive
// same-bank lines across all sub-shards.
func TestSubShardRouting(t *testing.T) {
	cfgs := []Config{
		TableII(),
		{Channels: 1, DIMMsPerChan: 1, BanksPerDIMM: 4, WriteQueueCap: 8, DrainThreshold: 0.8},
		{Channels: 1, DIMMsPerChan: 1, BanksPerDIMM: 3, SubShards: 2, WriteQueueCap: 8, DrainThreshold: 0.8},
		{Channels: 1, DIMMsPerChan: 1, BanksPerDIMM: 1, SubShards: 1, WriteQueueCap: 8, DrainThreshold: 0.8},
	}
	rnd := prng.New(7)
	for ci, c := range cfgs {
		k := c.SubShardsPerBank()
		if c.SubShards <= 0 && k != DefaultSubShards {
			t.Errorf("cfg %d: unset SubShards resolved to %d, want default %d", ci, k, DefaultSubShards)
		}
		if got := c.RouteUnits(); got != c.Banks()*k {
			t.Errorf("cfg %d: RouteUnits = %d, want banks*k = %d", ci, got, c.Banks()*k)
		}
		hit := make([]bool, c.RouteUnits())
		check := func(addr uint64) {
			u := c.RouteOf(addr)
			if u < 0 || u >= c.RouteUnits() {
				t.Fatalf("cfg %d: RouteOf(%#x) = %d out of [0,%d)", ci, addr, u, c.RouteUnits())
			}
			hit[u] = true
			if u/k != c.BankOf(addr) {
				t.Fatalf("cfg %d: RouteOf(%#x)=%d implies bank %d, BankOf says %d",
					ci, addr, u, u/k, c.BankOf(addr))
			}
			if u%k != c.SubShardOf(addr) {
				t.Fatalf("cfg %d: RouteOf(%#x)=%d implies sub-shard %d, SubShardOf says %d",
					ci, addr, u, u%k, c.SubShardOf(addr))
			}
		}
		for addr := uint64(0); addr < uint64(4*c.RouteUnits()); addr++ {
			check(addr)
		}
		for i := 0; i < 1000; i++ {
			check(rnd.Uint64())
		}
		for u, ok := range hit {
			if !ok {
				t.Errorf("cfg %d: unit %d never hit by a dense address sweep", ci, u)
			}
		}
		// Consecutive lines of one bank must round-robin the sub-shards.
		bank0 := make([]bool, k)
		for i := 0; i < k; i++ {
			bank0[c.SubShardOf(uint64(i*c.Banks()))] = true
		}
		for s, ok := range bank0 {
			if !ok {
				t.Errorf("cfg %d: sub-shard %d of bank 0 unreachable by consecutive lines", ci, s)
			}
		}
	}
}

// TestTableIIRouteUnits pins the headline number: the paper's geometry
// exposes 64 banks x 4 sub-shards = 256 routing units, the new ceiling
// on useful replay workers (the old one was the bank count).
func TestTableIIRouteUnits(t *testing.T) {
	c := TableII()
	if c.SubShardsPerBank() != DefaultSubShards {
		t.Errorf("TableII sub-shards = %d, want %d", c.SubShardsPerBank(), DefaultSubShards)
	}
	if got := c.RouteUnits(); got != 256 {
		t.Errorf("TableII route units = %d, want 256", got)
	}
}
