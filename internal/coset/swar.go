// Word-parallel (SWAR) coset pricing and mapping application.
//
// A coset mapping is a bijection on 2-bit symbols, so both its
// application and its differential-write pricing are expressible as
// boolean algebra on the two bit-planes of a word (memline.LoHiPlanes)
// plus bits.OnesCount64 — the same word-level trick FNW/FlipMin hardware
// uses. Pricing a candidate over a 32-cell word costs a handful of ALU
// ops instead of 32 table lookups:
//
//	count[s] = popcount(sym[Inv[s]] &^ oldIs[s] & mask)   for each state s
//	cost     = Σ count[s]·WriteEnergy(s),  updates = Σ count[s]
//
// where sym[v] masks the cells whose data symbol is v and oldIs[s] the
// cells currently in state s. The formula is exact — it groups the
// per-cell energy additions of the CostTable path by target state, and
// with integer-valued energy models (Table II and every model in this
// repo) every partial sum is an exactly-representable integer, so the
// SWAR cost, the scalar reference (CostCountRef), and the CostTable
// accumulation agree bit for bit, including tie-breaks.
package coset

import (
	"math/bits"

	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// AllCells masks all 32 cells of a word in plane coordinates.
const AllCells = 1<<memline.WordCells - 1

// CellMask masks cells [lo, lo+n) of a word in plane coordinates.
func CellMask(lo, n int) uint64 {
	return (uint64(1)<<uint(n) - 1) << uint(lo)
}

// minterms decodes a pair of bit-planes into the four value-occupancy
// masks: m[v] has bit c set when cell c holds value v.
func minterms(lo, hi uint64) [4]uint64 {
	return [4]uint64{
		^(hi | lo) & AllCells,
		lo &^ hi,
		hi &^ lo,
		hi & lo,
	}
}

// WordPlanes is the bit-plane decomposition of one 64-bit data word and
// the 32 old cell states it will be written over. Built once per word,
// it prices any number of candidate mappings without another pass over
// the cells.
type WordPlanes struct {
	Lo, Hi uint64    // data symbol planes (memline.LoHiPlanes of the word)
	Sym    [4]uint64 // Sym[v]: cells whose data symbol is v
	OldIs  [4]uint64 // OldIs[s]: cells currently in state s
}

// Init fills all planes from a data word and its 32 old states.
func (p *WordPlanes) Init(word uint64, old []pcm.State) {
	p.SetData(word)
	p.SetOld(old)
}

// SetData replaces the data planes, keeping the old-state planes.
func (p *WordPlanes) SetData(word uint64) {
	p.SetDataPlanes(memline.LoHiPlanes(word))
}

// SetDataPlanes replaces the data planes from an already-decomposed
// pair. Because LoHiPlanes is linear over XOR, callers that price many
// XOR-candidates of one word (FlipMin) feed precomputed plane pairs here
// instead of re-extracting.
func (p *WordPlanes) SetDataPlanes(lo, hi uint64) {
	p.Lo, p.Hi = lo, hi
	p.Sym = minterms(lo, hi)
}

// SetOld replaces the old-state planes from the word's 32 current cell
// states. old must hold at least 32 states.
func (p *WordPlanes) SetOld(old []pcm.State) {
	p.OldIs = minterms(PackStates(old))
}

// PackStates packs the first 32 states of cells into compacted planes:
// bit c of lo/hi is the low/high bit of cells[c].
func PackStates(cells []pcm.State) (lo, hi uint64) {
	c := (*[memline.WordCells]pcm.State)(cells[:memline.WordCells])
	var z uint64
	for b := 0; b < 8; b++ {
		i := 4 * b
		z |= uint64(c[i]&3|c[i+1]&3<<2|c[i+2]&3<<4|c[i+3]&3<<6) << uint(8*b)
	}
	return memline.LoHiPlanes(z)
}

// stateLUT expands a (lo nibble, hi nibble) plane pair back into four
// cell states, so UnpackStates writes four states per lookup without
// re-interleaving the planes.
var stateLUT = func() (t [256][4]pcm.State) {
	for b := 0; b < 256; b++ {
		for i := 0; i < 4; i++ {
			t[b][i] = pcm.State(b>>i&1 | b>>(4+i)&1<<1)
		}
	}
	return
}()

// UnpackStates writes the cell states encoded by a pair of state planes
// into dst — the inverse of PackStates. It writes min(32, len(dst))
// cells, so a caller whose region ends mid-word passes the short slice.
func UnpackStates(lo, hi uint64, dst []pcm.State) {
	n := len(dst)
	if n >= memline.WordCells {
		dst = dst[:memline.WordCells:memline.WordCells]
		for g := 0; g < 8; g++ {
			idx := lo>>uint(4*g)&0xF | hi>>uint(4*g)&0xF<<4
			copy(dst[4*g:4*g+4], stateLUT[idx][:])
		}
		return
	}
	for c := 0; c < n; c++ {
		dst[c] = pcm.State(lo>>uint(c)&1 | hi>>uint(c)&1<<1)
	}
}

// SWARTable is the word-parallel counterpart of CostTable: one mapping's
// pricing weights plus the plane-selector masks that apply the bijection
// (and its inverse) as 2-output boolean functions of the bit-planes.
type SWARTable struct {
	// States is the mapping itself; Inv its cached inverse.
	States Mapping
	Inv    [4]uint8
	// Energy[s] is the full programming energy of target state s
	// (WriteEnergy, i.e. Reset + Set[s]); zero when the table was built
	// apply-only with a nil energy model.
	Energy [4]float64
	// loSet[v]/hiSet[v] are all-ones when States[v] has its low/high bit
	// set; invLo[s]/invHi[s] likewise for Inv[s]. ORing value-masked
	// minterms through them applies the (inverse) mapping to a word.
	loSet, hiSet [4]uint64
	invLo, invHi [4]uint64
}

// SWAR builds the word-parallel table of m under em. A nil em yields an
// apply/decode-only table whose costs are all zero — enough for the
// fixed-mapping paths (raw fallback, aux cells) that never price.
func (m Mapping) SWAR(em *pcm.EnergyModel) SWARTable {
	t := SWARTable{States: m, Inv: m.Inverse()}
	for v := 0; v < 4; v++ {
		if em != nil {
			t.Energy[v] = em.WriteEnergy(pcm.State(v))
		}
		if m[v]&1 != 0 {
			t.loSet[v] = ^uint64(0)
		}
		if m[v]&2 != 0 {
			t.hiSet[v] = ^uint64(0)
		}
		if t.Inv[v]&1 != 0 {
			t.invLo[v] = ^uint64(0)
		}
		if t.Inv[v]&2 != 0 {
			t.invHi[v] = ^uint64(0)
		}
	}
	return t
}

// SWARTables builds one word-parallel table per candidate.
func SWARTables(em *pcm.EnergyModel, cands []Mapping) []SWARTable {
	out := make([]SWARTable, len(cands))
	for i, m := range cands {
		out[i] = m.SWAR(em)
	}
	return out
}

// C1SWAR is the apply/decode-only SWAR view of the fixed C1 mapping,
// shared by the raw-fallback and auxiliary-cell paths.
var C1SWAR = C1.SWAR(nil)

// CostCount prices writing the word's data through t over its old
// states, restricted to the cells selected by mask. It returns the
// differential-write energy and the number of programmed cells,
// bit-identical to summing CostTable entries over the same cells (see
// the package comment on exactness).
func (t *SWARTable) CostCount(p *WordPlanes, mask uint64) (cost float64, updates int) {
	n0 := bits.OnesCount64(p.Sym[t.Inv[0]] &^ p.OldIs[0] & mask)
	n1 := bits.OnesCount64(p.Sym[t.Inv[1]] &^ p.OldIs[1] & mask)
	n2 := bits.OnesCount64(p.Sym[t.Inv[2]] &^ p.OldIs[2] & mask)
	n3 := bits.OnesCount64(p.Sym[t.Inv[3]] &^ p.OldIs[3] & mask)
	// Left-to-right accumulation, the same order as the s-loop form.
	cost = float64(n0)*t.Energy[0] + float64(n1)*t.Energy[1] +
		float64(n2)*t.Energy[2] + float64(n3)*t.Energy[3]
	return cost, n0 + n1 + n2 + n3
}

// Counts accumulates the per-target-state programmed-cell counts of the
// masked cells into cnt. Multi-word blocks gather integer counts across
// words and convert to energy once (CostOf) — regrouping exact integer
// sums, so the total still matches the per-word and per-cell paths bit
// for bit.
func (t *SWARTable) Counts(p *WordPlanes, mask uint64, cnt *[4]int) {
	for s := 0; s < 4; s++ {
		cnt[s] += bits.OnesCount64(p.Sym[t.Inv[s]] &^ p.OldIs[s] & mask)
	}
}

// CountsPlanes is Counts over alternative data planes (e.g. the word
// XORed with a FlipMin candidate) against p's old states, without
// disturbing p.
func (t *SWARTable) CountsPlanes(lo, hi uint64, p *WordPlanes, mask uint64, cnt *[4]int) {
	sym := minterms(lo, hi)
	for s := 0; s < 4; s++ {
		cnt[s] += bits.OnesCount64(sym[t.Inv[s]] &^ p.OldIs[s] & mask)
	}
}

// CostOf prices accumulated per-state counts.
func (t *SWARTable) CostOf(cnt *[4]int) (cost float64, updates int) {
	for s := 0; s < 4; s++ {
		cost += float64(cnt[s]) * t.Energy[s]
		updates += cnt[s]
	}
	return cost, updates
}

// Apply maps the word's data symbols through t, returning the new-state
// planes for all 32 cells (callers mask to their block).
func (t *SWARTable) Apply(p *WordPlanes) (lo, hi uint64) {
	return t.ApplySyms(&p.Sym)
}

// ApplySyms is Apply from precomputed symbol-occupancy masks.
func (t *SWARTable) ApplySyms(sym *[4]uint64) (lo, hi uint64) {
	lo = sym[0]&t.loSet[0] | sym[1]&t.loSet[1] | sym[2]&t.loSet[2] | sym[3]&t.loSet[3]
	hi = sym[0]&t.hiSet[0] | sym[1]&t.hiSet[1] | sym[2]&t.hiSet[2] | sym[3]&t.hiSet[3]
	return lo, hi
}

// ApplyPlanes is Apply from raw data planes.
func (t *SWARTable) ApplyPlanes(lo, hi uint64) (nlo, nhi uint64) {
	sym := minterms(lo, hi)
	return t.ApplySyms(&sym)
}

// ApplyInvPlanes decodes state planes back to data-symbol planes — the
// word-parallel form of indexing Inv per cell.
func (t *SWARTable) ApplyInvPlanes(lo, hi uint64) (dlo, dhi uint64) {
	is := minterms(lo, hi)
	dlo = is[0]&t.invLo[0] | is[1]&t.invLo[1] | is[2]&t.invLo[2] | is[3]&t.invLo[3]
	dhi = is[0]&t.invHi[0] | is[1]&t.invHi[1] | is[2]&t.invHi[2] | is[3]&t.invHi[3]
	return dlo, dhi
}

// BestSWAR evaluates every candidate over the masked cells and returns
// the index of the cheapest, with the same lowest-index tie-break as
// Best and BestTable.
func BestSWAR(tabs []SWARTable, p *WordPlanes, mask uint64) (idx int, cost float64) {
	idx = 0
	cost, _ = tabs[0].CostCount(p, mask)
	for i := 1; i < len(tabs); i++ {
		if c, _ := tabs[i].CostCount(p, mask); c < cost {
			idx, cost = i, c
		}
	}
	return idx, cost
}

// StuckMismatch prices a candidate against a word's stuck-at faults:
// it applies the candidate's mapping to the data symbols and returns
// the cells (within mask) where a stuck cell's frozen state planes
// (stuckLo/stuckHi on the positions of stuckMask) disagree with the
// state the candidate would program. A zero return means this candidate
// happens to want exactly what every stuck cell is frozen at — the
// re-encode-retry recourse of the fault repair pipeline.
func (t *SWARTable) StuckMismatch(p *WordPlanes, mask, stuckMask, stuckLo, stuckHi uint64) uint64 {
	lo, hi := t.ApplySyms(&p.Sym)
	return ((lo ^ stuckLo) | (hi ^ stuckHi)) & stuckMask & mask
}

// CostCountRef is the scalar reference for CostCount: it walks the
// masked cells one at a time, classifies each into its target state, and
// prices the identical Σ count[s]·Energy[s] sum. Equivalence tests and
// fuzz targets assert SWAR == scalar bit for bit against it.
func (t *SWARTable) CostCountRef(word uint64, old []pcm.State, mask uint64) (cost float64, updates int) {
	var count [4]int
	for c := 0; c < memline.WordCells; c++ {
		if mask>>uint(c)&1 == 0 {
			continue
		}
		st := t.States[word>>uint(2*c)&3]
		if st != old[c] {
			count[st]++
		}
	}
	for s := 0; s < 4; s++ {
		cost += float64(count[s]) * t.Energy[s]
		updates += count[s]
	}
	return cost, updates
}
