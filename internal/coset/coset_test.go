package coset

import (
	"testing"
	"testing/quick"

	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

func TestTable1MatchesPaper(t *testing.T) {
	// Table I, read column-wise (state <- symbol):
	//        C1  C2  C3  C4
	//  S1    00  11  11  11
	//  S2    10  00  01  00
	//  S3    11  10  00  01
	//  S4    01  01  10  10
	type row struct {
		state pcm.State
		syms  [4]uint8 // symbol mapped to this state under C1..C4
	}
	rows := []row{
		{pcm.S1, [4]uint8{0b00, 0b11, 0b11, 0b11}},
		{pcm.S2, [4]uint8{0b10, 0b00, 0b01, 0b00}},
		{pcm.S3, [4]uint8{0b11, 0b10, 0b00, 0b01}},
		{pcm.S4, [4]uint8{0b01, 0b01, 0b10, 0b10}},
	}
	for ci, m := range Table1 {
		inv := m.Inverse()
		for _, r := range rows {
			if inv[r.state] != r.syms[ci] {
				t.Errorf("C%d: state %v stores symbol %02b, want %02b",
					ci+1, r.state, inv[r.state], r.syms[ci])
			}
		}
	}
}

func TestAllMappingsValid(t *testing.T) {
	for i, m := range Table1 {
		if !m.Valid() {
			t.Errorf("C%d is not a bijection: %v", i+1, m)
		}
	}
	for i, m := range SixCosets() {
		if !m.Valid() {
			t.Errorf("6cosets[%d] is not a bijection: %v", i, m)
		}
	}
}

func TestC1C3Complement(t *testing.T) {
	// Paper §III: combined, C1 and C3 map every symbol to a low-energy
	// state (S1 or S2) in at least one of the two.
	for v := 0; v < 4; v++ {
		low1 := C1[v] == pcm.S1 || C1[v] == pcm.S2
		low3 := C3[v] == pcm.S1 || C3[v] == pcm.S2
		if !low1 && !low3 {
			t.Errorf("symbol %02b is high-energy in both C1 and C3", v)
		}
	}
}

func TestC2MapsRunsToLowEnergy(t *testing.T) {
	if C2[0b11] != pcm.S1 {
		t.Error("C2 must map 11 to S1")
	}
	if C2[0b00] != pcm.S2 {
		t.Error("C2 must map 00 to S2")
	}
}

func TestSixCosetsProperties(t *testing.T) {
	cands := SixCosets()
	if len(cands) != 6 {
		t.Fatalf("got %d candidates, want 6", len(cands))
	}
	// Every unordered pair of symbols must be mapped to {S1,S2} by
	// exactly one candidate.
	seen := map[[2]int]int{}
	for _, m := range cands {
		var low []int
		for v := 0; v < 4; v++ {
			if m[v] == pcm.S1 || m[v] == pcm.S2 {
				low = append(low, v)
			}
		}
		if len(low) != 2 {
			t.Fatalf("candidate %v has %d low-energy symbols", m, len(low))
		}
		seen[[2]int{low[0], low[1]}]++
	}
	if len(seen) != 6 {
		t.Errorf("low-energy pairs not unique: %v", seen)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	all := append([]Mapping{}, Table1[:]...)
	all = append(all, SixCosets()...)
	syms := []uint8{0, 1, 2, 3, 3, 2, 1, 0}
	for _, m := range all {
		states := make([]pcm.State, len(syms))
		Encode(m, syms, states)
		got := make([]uint8, len(syms))
		Decode(m, states, got)
		for i := range syms {
			if got[i] != syms[i] {
				t.Fatalf("mapping %v: round trip failed at %d", m, i)
			}
		}
	}
}

func TestBlockCostIdentityIsFree(t *testing.T) {
	em := pcm.DefaultEnergy()
	syms := []uint8{0, 1, 2, 3}
	states := make([]pcm.State, 4)
	Encode(C2, syms, states)
	if c := BlockCost(&em, C2, syms, states); c != 0 {
		t.Errorf("rewriting same data with same mapping costs %v, want 0", c)
	}
	if u := BlockUpdates(C2, syms, states); u != 0 {
		t.Errorf("updates = %d, want 0", u)
	}
}

func TestBlockCostKnownValue(t *testing.T) {
	em := pcm.DefaultEnergy()
	// Old cells all S1; write symbols 00,11 with C1: 00->S1 (unchanged),
	// 11->S3 (36+307).
	old := []pcm.State{pcm.S1, pcm.S1}
	syms := []uint8{0b00, 0b11}
	if c := BlockCost(&em, C1, syms, old); c != 343 {
		t.Errorf("cost = %v, want 343", c)
	}
	// Same block with C2: 00->S2 (56), 11->S1 (unchanged, free).
	if c := BlockCost(&em, C2, syms, old); c != 56 {
		t.Errorf("C2 cost = %v, want 56", c)
	}
}

func TestBestPicksMinimum(t *testing.T) {
	em := pcm.DefaultEnergy()
	old := []pcm.State{pcm.S1, pcm.S1, pcm.S1, pcm.S1}
	// All-ones data strongly favors C2/C3/C4 (11 -> S1).
	syms := []uint8{3, 3, 3, 3}
	idx, cost := Best(&em, Table1[:], syms, old)
	for i := range Table1 {
		if c := BlockCost(&em, Table1[i], syms, old); c < cost {
			t.Errorf("Best returned %d (%v) but %d is cheaper (%v)", idx, cost, i, c)
		}
	}
	if idx == 0 {
		t.Error("all-ones over all-S1 should not pick C1")
	}
}

func TestBestTieBreaksTowardC1(t *testing.T) {
	em := pcm.DefaultEnergy()
	// Empty block: every candidate costs 0; C1 must win.
	idx, cost := Best(&em, Table1[:], nil, nil)
	if idx != 0 || cost != 0 {
		t.Errorf("Best(empty) = %d, %v", idx, cost)
	}
}

func TestQuickBestIsOptimal(t *testing.T) {
	em := pcm.DefaultEnergy()
	cands := SixCosets()
	f := func(raw [8]uint8, oldRaw [8]uint8) bool {
		syms := make([]uint8, 8)
		old := make([]pcm.State, 8)
		for i := range syms {
			syms[i] = raw[i] % 4
			old[i] = pcm.State(oldRaw[i] % 4)
		}
		idx, cost := Best(&em, cands, syms, old)
		for i := range cands {
			if BlockCost(&em, cands[i], syms, old) < cost {
				return false
			}
		}
		return idx >= 0 && idx < len(cands)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAuxPairsOrderedAndComplete(t *testing.T) {
	em := pcm.DefaultEnergy()
	pairs := AuxPairs(&em)
	if len(pairs) != 16 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		ei := em.Set[pairs[i-1][0]] + em.Set[pairs[i-1][1]]
		ej := em.Set[pairs[i][0]] + em.Set[pairs[i][1]]
		if ei > ej {
			t.Errorf("pairs not sorted at %d: %v then %v", i, pairs[i-1], pairs[i])
		}
	}
	// Cheapest must be (S1,S1); the 6 cheapest must avoid S4 entirely
	// and include only {S1,S2,S3} combos of low total energy.
	if pairs[0] != [2]pcm.State{pcm.S1, pcm.S1} {
		t.Errorf("cheapest pair = %v", pairs[0])
	}
	seen := map[[2]pcm.State]bool{}
	for _, p := range pairs {
		if seen[p] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestPackUnpackBits(t *testing.T) {
	bits := []uint8{1, 0, 1, 1, 0, 0, 1}
	dst := make([]pcm.State, 4)
	PackBitsToStates(bits, dst)
	got := UnpackStatesToBits(dst, len(bits))
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d: got %d want %d", i, got[i], bits[i])
		}
	}
	// Zero bits must land in S1 (cheap, most frequent per §IX.A).
	PackBitsToStates([]uint8{0, 0}, dst)
	if dst[0] != pcm.S1 {
		t.Errorf("bits 00 stored as %v, want S1", dst[0])
	}
}

func TestQuickPackUnpack(t *testing.T) {
	r := prng.New(11)
	f := func(n8 uint8) bool {
		n := int(n8)%63 + 1
		bits := make([]uint8, n)
		for i := range bits {
			bits[i] = uint8(r.Intn(2))
		}
		dst := make([]pcm.State, (n+1)/2)
		PackBitsToStates(bits, dst)
		got := UnpackStatesToBits(dst, n)
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMappingString(t *testing.T) {
	s := C1.String()
	if s != "S1<-00 S2<-10 S3<-11 S4<-01" {
		t.Errorf("C1.String() = %q", s)
	}
}
