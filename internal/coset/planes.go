package coset

import (
	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// Plane-resident line layout.
//
// The replay engine stores lines as de-interleaved bit-planes rather
// than byte-per-cell []pcm.State vectors: a line of n cells occupies
// PlaneWords(n) uint64 words, where planes[2w] carries the low state
// bits and planes[2w+1] the high state bits of cells [32w, 32w+32).
// Cell c in state s contributes bit s&1 at position c&31 of the low
// plane and bit s>>1 of the high plane — exactly the operand shape the
// SWAR tables price and apply, so a plane-resident line enters the
// kernels with zero conversion. A 256-cell line is 128 contiguous bytes
// instead of a 256-byte state vector.
//
// Tail-zero invariant: bits at positions >= n of the final word pair
// are always zero. All-zero planes decode to the all-S1 line, matching
// pcm/core's initial cell state, so a freshly zeroed arena slot *is* a
// pristine line; and because both operands of a diff share the
// invariant, XOR-based change masks never need a validity mask.

// PlaneWords returns the []uint64 length of a plane-resident line of
// totalCells cells: one (lo, hi) word pair per 32 cells.
func PlaneWords(totalCells int) int {
	return 2 * ((totalCells + memline.WordCells - 1) / memline.WordCells)
}

// PlaneGet reads cell c's state out of a plane-resident line.
func PlaneGet(planes []uint64, c int) pcm.State {
	w, b := c>>5, uint(c&31)
	return pcm.State((planes[2*w]>>b)&1 | ((planes[2*w+1]>>b)&1)<<1)
}

// PlaneSet stores state s into cell c of a plane-resident line.
func PlaneSet(planes []uint64, c int, s pcm.State) {
	w, b := c>>5, uint(c&31)
	planes[2*w] = planes[2*w]&^(1<<b) | uint64(s&1)<<b
	planes[2*w+1] = planes[2*w+1]&^(1<<b) | uint64(s>>1)<<b
}

// PackLine packs a state vector into plane layout, establishing the
// tail-zero invariant. planes must have PlaneWords(len(cells)) words.
func PackLine(cells []pcm.State, planes []uint64) {
	n := len(cells)
	full := n / memline.WordCells
	for w := 0; w < full; w++ {
		planes[2*w], planes[2*w+1] = PackStates(cells[w*memline.WordCells:])
	}
	if rem := n - full*memline.WordCells; rem > 0 {
		var lo, hi uint64
		for i, s := range cells[full*memline.WordCells:] {
			lo |= uint64(s&1) << uint(i)
			hi |= uint64(s>>1) << uint(i)
		}
		planes[2*full], planes[2*full+1] = lo, hi
	}
}

// UnpackLine writes the states of a plane-resident line into cells —
// the inverse of PackLine. It unpacks len(cells) states.
func UnpackLine(planes []uint64, cells []pcm.State) {
	n := len(cells)
	for w := 0; w*memline.WordCells < n; w++ {
		end := (w + 1) * memline.WordCells
		if end > n {
			end = n
		}
		UnpackStates(planes[2*w], planes[2*w+1], cells[w*memline.WordCells:end])
	}
}

// SetOldPlanes replaces the old-state planes from an already
// plane-resident line's word — the zero-conversion counterpart of
// SetOld, fed straight from arena storage instead of via PackStates.
func (p *WordPlanes) SetOldPlanes(lo, hi uint64) {
	p.OldIs = minterms(lo, hi)
}
