package coset

import (
	"testing"

	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
)

// Fuzz targets asserting SWAR == scalar over arbitrary words, old
// states and masks, for every Table I and SixCosets mapping. The seeded
// corpus lives in testdata/fuzz; `go test` replays it on every run and
// `go test -fuzz FuzzSWAR` explores further.

// fuzzCands is the candidate universe the schemes actually price.
var fuzzCands = append(append([]Mapping{}, Table1[:]...), SixCosets()...)

// fuzzMask builds a cell mask from two fuzz bytes: an offset and a
// width, both wrapped into range so every input is meaningful.
func fuzzMask(lo, n uint8) uint64 {
	off := int(lo) % memline.WordCells
	width := 1 + int(n)%(memline.WordCells-off)
	return CellMask(off, width)
}

// FuzzSWARCostCount cross-checks CostCount against both the scalar
// reference and the PR 2 CostTable accumulation.
func FuzzSWARCostCount(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(0), uint8(31))
	f.Add(^uint64(0), uint64(0x5555555555555555), uint8(0), uint8(31))
	f.Add(uint64(0x0123456789ABCDEF), uint64(0xFEDCBA9876543210), uint8(4), uint8(7))
	f.Add(uint64(0xAAAAAAAAAAAAAAAA), ^uint64(0), uint8(16), uint8(15))
	em := pcm.DefaultEnergy()
	swar := SWARTables(&em, fuzzCands)
	tabs := CostTables(&em, fuzzCands)
	f.Fuzz(func(t *testing.T, word, oldBits uint64, maskLo, maskN uint8) {
		mask := fuzzMask(maskLo, maskN)
		var old [memline.WordCells]pcm.State
		var syms []uint8
		var sub []pcm.State
		for c := range old {
			old[c] = pcm.State(oldBits >> uint(2*c) & 3)
			if mask>>uint(c)&1 == 1 {
				syms = append(syms, uint8(word>>uint(2*c)&3))
				sub = append(sub, old[c])
			}
		}
		var p WordPlanes
		p.Init(word, old[:])
		for i := range swar {
			gotCost, gotUpd := swar[i].CostCount(&p, mask)
			refCost, refUpd := swar[i].CostCountRef(word, old[:], mask)
			if gotCost != refCost || gotUpd != refUpd {
				t.Fatalf("cand %d: SWAR (%v,%d) != scalar (%v,%d)", i, gotCost, gotUpd, refCost, refUpd)
			}
			tabCost, tabUpd := tabs[i].BlockCostUpdates(syms, sub)
			if gotCost != tabCost || gotUpd != tabUpd {
				t.Fatalf("cand %d: SWAR (%v,%d) != CostTable (%v,%d)", i, gotCost, gotUpd, tabCost, tabUpd)
			}
		}
	})
}

// FuzzSWARBest cross-checks winner index, winning cost and tie-breaks
// against BestTable over contiguous blocks.
func FuzzSWARBest(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(32))
	f.Add(^uint64(0), uint64(0), uint8(16))
	f.Add(uint64(0x00FF00FF00FF00FF), uint64(0x0F0F0F0F0F0F0F0F), uint8(4))
	em := pcm.DefaultEnergy()
	sets := [][]Mapping{Table1[:], Table1[:3], SixCosets()}
	var swar [][]SWARTable
	var tabs [][]CostTable
	for _, cands := range sets {
		swar = append(swar, SWARTables(&em, cands))
		tabs = append(tabs, CostTables(&em, cands))
	}
	f.Fuzz(func(t *testing.T, word, oldBits uint64, width uint8) {
		n := 1 + int(width)%memline.WordCells
		var old [memline.WordCells]pcm.State
		var syms [memline.WordCells]uint8
		for c := range old {
			old[c] = pcm.State(oldBits >> uint(2*c) & 3)
			syms[c] = uint8(word >> uint(2*c) & 3)
		}
		var p WordPlanes
		p.Init(word, old[:])
		for si := range sets {
			gotIdx, gotCost := BestSWAR(swar[si], &p, CellMask(0, n))
			wantIdx, wantCost := BestTable(tabs[si], syms[:n], old[:n])
			if gotIdx != wantIdx || gotCost != wantCost {
				t.Fatalf("set %d: BestSWAR (%d,%v) != BestTable (%d,%v)", si, gotIdx, gotCost, wantIdx, wantCost)
			}
		}
	})
}

// FuzzSWARApply cross-checks mapping application and its inverse
// against the per-cell path.
func FuzzSWARApply(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(0x123456789ABCDEF0))
	em := pcm.DefaultEnergy()
	swar := SWARTables(&em, fuzzCands)
	tabs := CostTables(&em, fuzzCands)
	f.Fuzz(func(t *testing.T, word uint64) {
		var p WordPlanes
		p.SetData(word)
		var syms [memline.WordCells]uint8
		memline.WordSymbols(word, &syms)
		for i := range swar {
			lo, hi := swar[i].Apply(&p)
			var got, want [memline.WordCells]pcm.State
			UnpackStates(lo, hi, got[:])
			tabs[i].Encode(syms[:], want[:])
			if got != want {
				t.Fatalf("cand %d: Apply != Encode on %#x", i, word)
			}
			slo, shi := PackStates(want[:])
			dlo, dhi := swar[i].ApplyInvPlanes(slo, shi)
			if back := memline.InterleavePlanes(dlo, dhi); back != word {
				t.Fatalf("cand %d: inverse round trip %#x -> %#x", i, word, back)
			}
		}
	})
}
