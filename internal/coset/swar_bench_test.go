package coset

import (
	"testing"

	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// Word-level candidate-pricing benchmarks: the SWAR path against the PR
// 2 table-driven scalar path, six candidates over one 32-cell word (the
// 6cosets inner loop).

func benchFixture() (words []uint64, olds [][]pcm.State) {
	r := prng.New(77)
	words = make([]uint64, 64)
	olds = make([][]pcm.State, 64)
	for i := range words {
		words[i] = r.Uint64()
		old := make([]pcm.State, memline.WordCells)
		for c := range old {
			old[c] = pcm.State(r.Intn(pcm.NumStates))
		}
		olds[i] = old
	}
	return words, olds
}

func BenchmarkSWARBestWord(b *testing.B) {
	em := pcm.DefaultEnergy()
	tabs := SWARTables(&em, SixCosets())
	words, olds := benchFixture()
	var p WordPlanes
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		k := i % len(words)
		p.Init(words[k], olds[k])
		_, cost := BestSWAR(tabs, &p, AllCells)
		sink += cost
	}
	_ = sink
}

func BenchmarkScalarBestWord(b *testing.B) {
	em := pcm.DefaultEnergy()
	tabs := CostTables(&em, SixCosets())
	words, olds := benchFixture()
	var syms [memline.WordCells]uint8
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		k := i % len(words)
		memline.WordSymbols(words[k], &syms)
		_, cost := BestTable(tabs, syms[:], olds[k])
		sink += cost
	}
	_ = sink
}

func BenchmarkSWARApplyWord(b *testing.B) {
	em := pcm.DefaultEnergy()
	tab := C1.SWAR(&em)
	words, olds := benchFixture()
	out := make([]pcm.State, memline.WordCells)
	var p WordPlanes
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := i % len(words)
		p.Init(words[k], olds[k])
		lo, hi := tab.Apply(&p)
		UnpackStates(lo, hi, out)
	}
}

func BenchmarkScalarApplyWord(b *testing.B) {
	em := pcm.DefaultEnergy()
	tab := C1.CostTable(&em)
	words, _ := benchFixture()
	var syms [memline.WordCells]uint8
	out := make([]pcm.State, memline.WordCells)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		memline.WordSymbols(words[i%len(words)], &syms)
		tab.Encode(syms[:], out)
	}
}
