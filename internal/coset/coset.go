// Package coset implements the coset-coding machinery of the paper:
// symbol-to-state mappings (coset candidates), the four hand-picked
// candidates of Table I, the six candidates of the 6cosets scheme
// (Wang et al. [34]), block cost evaluation under differential write, and
// the auxiliary-symbol state assignments of §IX.A.
//
// A coset candidate is a bijective mapping from the four 2-bit data
// symbols to the four cell states. Encoding a block with candidate C
// stores state C[sym] for each symbol; decoding inverts the mapping.
package coset

import (
	"fmt"
	"sort"

	"wlcrc/internal/pcm"
)

// Mapping is a bijective symbol-to-state mapping: Mapping[v] is the state
// that stores symbol value v. Symbol values follow the paper's textual
// notation ("01" = high bit 0, low bit 1 = value 1).
type Mapping [4]pcm.State

// Valid reports whether m is a bijection.
func (m Mapping) Valid() bool {
	var seen [pcm.NumStates]bool
	for _, s := range m {
		if s >= pcm.NumStates || seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}

// Inverse returns the state-to-symbol inverse of m.
func (m Mapping) Inverse() [4]uint8 {
	var inv [4]uint8
	for sym, st := range m {
		inv[st] = uint8(sym)
	}
	return inv
}

// String renders the mapping in Table I orientation (state -> symbol).
func (m Mapping) String() string {
	inv := m.Inverse()
	return fmt.Sprintf("S1<-%02b S2<-%02b S3<-%02b S4<-%02b", inv[0], inv[1], inv[2], inv[3])
}

// The four coset candidates of Table I.
//
//	State  energy  C1  C2  C3  C4
//	S1     36+0    00  11  11  11
//	S2     36+20   10  00  01  00
//	S3     36+307  11  10  00  01
//	S4     36+547  01  01  10  10
var (
	// C1 is the default symbol-to-state mapping (paper [16]).
	C1 = Mapping{pcm.S1, pcm.S4, pcm.S2, pcm.S3} // 00->S1 01->S4 10->S2 11->S3
	// C2 maps the all-zeros and all-ones symbols to the two cheapest
	// states, for biased data with long runs of 0s or 1s.
	C2 = Mapping{pcm.S2, pcm.S4, pcm.S3, pcm.S1} // 00->S2 01->S4 10->S3 11->S1
	// C3 complements C1: each symbol is cheap in C1 or in C3, which
	// helps random (unbiased) blocks.
	C3 = Mapping{pcm.S3, pcm.S2, pcm.S4, pcm.S1} // 00->S3 01->S2 10->S4 11->S1
	// C4 is the final Table I candidate.
	C4 = Mapping{pcm.S2, pcm.S3, pcm.S4, pcm.S1} // 00->S2 01->S3 10->S4 11->S1
)

// Table1 lists the four candidates in paper order; index i is candidate
// C(i+1).
var Table1 = [4]Mapping{C1, C2, C3, C4}

// Cached inverses of the Table I candidates. The hot decode paths index
// these instead of recomputing Mapping.Inverse per call.
var (
	C1Inv = C1.Inverse()
	C2Inv = C2.Inverse()
	C3Inv = C3.Inverse()
	C4Inv = C4.Inverse()
)

// Table1Inv lists the cached inverses in paper order, aligned with
// Table1.
var Table1Inv = [4][4]uint8{C1Inv, C2Inv, C3Inv, C4Inv}

// CostTable is the precomputed differential-write pricing of one mapping
// under one energy model: storing symbol v over a cell currently in
// state s costs Cost[s][v] pJ and programs Update[s][v] cells (1 when
// the mapped state differs from s, else 0; the cost entry is then 0 too,
// so summing table entries over a block reproduces the branchy
// "skip-unchanged" accumulation bit-for-bit — adding 0.0 is exact).
// Building tables once at scheme construction turns every per-cell
// WriteEnergy branch of the encode hot path into a single lookup.
type CostTable struct {
	Cost   [pcm.NumStates][4]float64
	Update [pcm.NumStates][4]uint8
	// States is the mapping itself (States[v] stores symbol v), kept
	// alongside so encoders holding a table need not carry the Mapping
	// separately.
	States Mapping
	// Inv is the cached state-to-symbol inverse of States.
	Inv [4]uint8
}

// CostTable precomputes the differential-write pricing of m under em.
func (m Mapping) CostTable(em *pcm.EnergyModel) CostTable {
	t := CostTable{States: m, Inv: m.Inverse()}
	for old := pcm.State(0); old < pcm.NumStates; old++ {
		for v := 0; v < 4; v++ {
			if st := m[v]; st != old {
				t.Cost[old][v] = em.WriteEnergy(st)
				t.Update[old][v] = 1
			}
		}
	}
	return t
}

// CostTables builds one cost table per candidate.
func CostTables(em *pcm.EnergyModel, cands []Mapping) []CostTable {
	out := make([]CostTable, len(cands))
	for i, m := range cands {
		out[i] = m.CostTable(em)
	}
	return out
}

// BlockCost is the table-driven equivalent of the package-level
// BlockCost: the differential-write energy of storing syms over old.
// It is branch-free on the energy model and bit-identical to the direct
// computation (unchanged cells contribute an exact 0.0).
func (t *CostTable) BlockCost(syms []uint8, old []pcm.State) float64 {
	var cost float64
	for i, v := range syms {
		cost += t.Cost[old[i]][v&3]
	}
	return cost
}

// BlockCostUpdates returns the block cost and the number of programmed
// cells in one pass.
func (t *CostTable) BlockCostUpdates(syms []uint8, old []pcm.State) (float64, int) {
	var cost float64
	upd := 0
	for i, v := range syms {
		s := old[i]
		cost += t.Cost[s][v&3]
		upd += int(t.Update[s][v&3])
	}
	return cost, upd
}

// Encode writes the states States[syms[i]] into dst, like the
// package-level Encode but from a prebuilt table.
func (t *CostTable) Encode(syms []uint8, dst []pcm.State) {
	for i, v := range syms {
		dst[i] = t.States[v&3]
	}
}

// BestTable evaluates every candidate table and returns the index of the
// one with the lowest differential-write energy, with the same tie
// break as Best (lowest index wins).
func BestTable(tabs []CostTable, syms []uint8, old []pcm.State) (idx int, cost float64) {
	idx = 0
	cost = tabs[0].BlockCost(syms, old)
	for i := 1; i < len(tabs); i++ {
		if c := tabs[i].BlockCost(syms, old); c < cost {
			idx, cost = i, c
		}
	}
	return idx, cost
}

// SixCosets returns the six candidates of the 6cosets scheme [34]: for
// every unordered pair {a<b} of symbols, a is mapped to S1 and b to S2
// (the two low-energy states) and the remaining symbols {c<d} to S3 and
// S4. The encoder evaluates all six and keeps the cheapest, which
// generalizes "map the two most frequent symbols to the low-energy
// states".
func SixCosets() []Mapping {
	var out []Mapping
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			var m Mapping
			m[a] = pcm.S1
			m[b] = pcm.S2
			rest := pcm.S3
			for v := 0; v < 4; v++ {
				if v == a || v == b {
					continue
				}
				m[v] = rest
				rest = pcm.S4
			}
			out = append(out, m)
		}
	}
	return out
}

// BlockCost returns the differential-write energy of storing the data
// symbols syms into the cells currently holding states old, using
// candidate m. len(old) must equal len(syms).
func BlockCost(em *pcm.EnergyModel, m Mapping, syms []uint8, old []pcm.State) float64 {
	if len(syms) != len(old) {
		panic("coset: BlockCost length mismatch")
	}
	var cost float64
	for i, v := range syms {
		st := m[v&3]
		if st != old[i] {
			cost += em.WriteEnergy(st)
		}
	}
	return cost
}

// BlockUpdates returns the number of cells a differential write would
// program when storing syms with candidate m over old.
func BlockUpdates(m Mapping, syms []uint8, old []pcm.State) int {
	if len(syms) != len(old) {
		panic("coset: BlockUpdates length mismatch")
	}
	n := 0
	for i, v := range syms {
		if m[v&3] != old[i] {
			n++
		}
	}
	return n
}

// Encode writes the states m[syms[i]] into dst. dst and syms must have
// equal length.
func Encode(m Mapping, syms []uint8, dst []pcm.State) {
	if len(syms) != len(dst) {
		panic("coset: Encode length mismatch")
	}
	for i, v := range syms {
		dst[i] = m[v&3]
	}
}

// Decode recovers the data symbols from the stored states using
// candidate m.
func Decode(m Mapping, states []pcm.State, dst []uint8) {
	inv := m.Inverse()
	if len(states) != len(dst) {
		panic("coset: Decode length mismatch")
	}
	for i, s := range states {
		dst[i] = inv[s]
	}
}

// Best evaluates every candidate and returns the index of the one with
// the lowest differential-write energy (ties break toward the lower
// index, so C1 — the identity mapping — wins ties, which keeps auxiliary
// cells in low-energy states as §IX.A prescribes).
func Best(em *pcm.EnergyModel, cands []Mapping, syms []uint8, old []pcm.State) (idx int, cost float64) {
	idx = 0
	cost = BlockCost(em, cands[0], syms, old)
	for i := 1; i < len(cands); i++ {
		if c := BlockCost(em, cands[i], syms, old); c < cost {
			idx, cost = i, c
		}
	}
	return idx, cost
}

// AuxPairs returns the 16 two-symbol state combinations ordered by total
// programming energy (cheapest first). 6cosets identifies its candidate
// with the i-th cheapest pair (§III: "we use the six state combinations
// of the two auxiliary symbols that require the least write energy").
// The order is deterministic: ties break on (first state, second state).
func AuxPairs(em *pcm.EnergyModel) [][2]pcm.State {
	pairs := make([][2]pcm.State, 0, 16)
	for a := pcm.State(0); a < pcm.NumStates; a++ {
		for b := pcm.State(0); b < pcm.NumStates; b++ {
			pairs = append(pairs, [2]pcm.State{a, b})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		ei := em.Set[pairs[i][0]] + em.Set[pairs[i][1]]
		ej := em.Set[pairs[j][0]] + em.Set[pairs[j][1]]
		if ei != ej {
			return ei < ej
		}
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// AuxPack is the fixed mapping used for bit-packed auxiliary regions
// (restricted coset group bits, FNW flip bits, FlipMin candidate
// indices): pair value i is stored as state S(i+1), so the common
// low-population pairs stay in low-energy states (§IX.A: aux bit '0'
// identifies the most frequent candidate C1 and should cost least, and a
// single set bit should not land in S4 the way the default data mapping
// would put it).
var AuxPack = Mapping{pcm.S1, pcm.S2, pcm.S3, pcm.S4}

// PackBitsToStates packs a bit string (LSB first) into cells two bits at
// a time through the fixed AuxPack mapping (DESIGN.md §3). Bits beyond
// len(bits) are treated as zero to fill the final cell.
func PackBitsToStates(bits []uint8, dst []pcm.State) {
	PackBitsToStatesWith(AuxPack, bits, dst)
}

// PackBitsToStatesWith packs through an arbitrary fixed mapping; the
// ablation study uses it to compare AuxPack against the default data
// mapping C1.
func PackBitsToStatesWith(m Mapping, bits []uint8, dst []pcm.State) {
	need := (len(bits) + 1) / 2
	if len(dst) < need {
		panic("coset: PackBitsToStates dst too short")
	}
	for c := 0; c < need; c++ {
		lo := bits[2*c] & 1
		hi := uint8(0)
		if 2*c+1 < len(bits) {
			hi = bits[2*c+1] & 1
		}
		dst[c] = m[hi<<1|lo]
	}
}

// UnpackStatesToBits is the inverse of PackBitsToStates: it recovers
// nbits bits from cells stored with the fixed AuxPack mapping.
func UnpackStatesToBits(states []pcm.State, nbits int) []uint8 {
	return UnpackStatesToBitsWith(AuxPack, states, nbits)
}

// UnpackStatesToBitsWith inverts PackBitsToStatesWith.
func UnpackStatesToBitsWith(m Mapping, states []pcm.State, nbits int) []uint8 {
	bits := make([]uint8, nbits)
	UnpackBitsWith(m, states, bits)
	return bits
}

// UnpackBits recovers len(dst) bits from cells stored with the fixed
// AuxPack mapping into caller storage, the allocation-free counterpart
// of UnpackStatesToBits.
func UnpackBits(states []pcm.State, dst []uint8) {
	UnpackBitsWith(AuxPack, states, dst)
}

// UnpackBitsWith recovers len(dst) bits through an arbitrary fixed
// mapping into caller storage.
func UnpackBitsWith(m Mapping, states []pcm.State, dst []uint8) {
	inv := m.Inverse()
	for i := range dst {
		sym := inv[states[i/2]]
		if i%2 == 0 {
			dst[i] = sym & 1
		} else {
			dst[i] = sym >> 1
		}
	}
}
