package coset

import (
	"testing"

	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// TestCachedInverses pins the package-level inverse caches against
// Mapping.Inverse.
func TestCachedInverses(t *testing.T) {
	if C1Inv != C1.Inverse() || C2Inv != C2.Inverse() ||
		C3Inv != C3.Inverse() || C4Inv != C4.Inverse() {
		t.Fatal("cached inverse differs from Mapping.Inverse")
	}
	for i, m := range Table1 {
		if Table1Inv[i] != m.Inverse() {
			t.Errorf("Table1Inv[%d] stale", i)
		}
	}
}

// TestCostTableMatchesDirect is the table-vs-branchy equivalence that
// underwrites the hot-path rewrite: for random blocks, the precomputed
// CostTable must reproduce BlockCost, BlockUpdates and Best bit-for-bit
// (including float equality — unchanged cells contribute an exact 0.0).
func TestCostTableMatchesDirect(t *testing.T) {
	em := pcm.DefaultEnergy()
	cands := append([]Mapping{}, Table1[:]...)
	cands = append(cands, SixCosets()...)
	tabs := CostTables(&em, cands)
	r := prng.New(777)
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(32)
		syms := make([]uint8, n)
		old := make([]pcm.State, n)
		for i := range syms {
			syms[i] = uint8(r.Intn(4))
			old[i] = pcm.State(r.Intn(pcm.NumStates))
		}
		for ci, m := range cands {
			wantCost := BlockCost(&em, m, syms, old)
			wantUpd := BlockUpdates(m, syms, old)
			gotCost, gotUpd := tabs[ci].BlockCostUpdates(syms, old)
			if gotCost != wantCost || gotUpd != wantUpd {
				t.Fatalf("cand %d: table (%v, %d) != direct (%v, %d)",
					ci, gotCost, gotUpd, wantCost, wantUpd)
			}
			if c := tabs[ci].BlockCost(syms, old); c != wantCost {
				t.Fatalf("cand %d: BlockCost table %v != direct %v", ci, c, wantCost)
			}
		}
		wantIdx, wantCost := Best(&em, cands, syms, old)
		gotIdx, gotCost := BestTable(tabs, syms, old)
		if gotIdx != wantIdx || gotCost != wantCost {
			t.Fatalf("BestTable (%d, %v) != Best (%d, %v)", gotIdx, gotCost, wantIdx, wantCost)
		}
	}
}

// TestCostTableEncode checks the embedded mapping and inverse survive
// the table build.
func TestCostTableEncode(t *testing.T) {
	em := pcm.DefaultEnergy()
	for _, m := range Table1 {
		tab := m.CostTable(&em)
		if tab.States != m {
			t.Fatalf("table mapping %v != %v", tab.States, m)
		}
		if tab.Inv != m.Inverse() {
			t.Fatalf("table inverse stale for %v", m)
		}
		syms := []uint8{0, 1, 2, 3}
		direct := make([]pcm.State, 4)
		viaTab := make([]pcm.State, 4)
		Encode(m, syms, direct)
		tab.Encode(syms, viaTab)
		for i := range direct {
			if direct[i] != viaTab[i] {
				t.Fatalf("table Encode differs at %d", i)
			}
		}
	}
}

// TestUnpackBitsMatchesAlloc pins the in-place unpack against the
// allocating form.
func TestUnpackBitsMatchesAlloc(t *testing.T) {
	r := prng.New(5)
	for trial := 0; trial < 100; trial++ {
		nbits := 1 + r.Intn(16)
		bits := make([]uint8, nbits)
		for i := range bits {
			bits[i] = uint8(r.Intn(2))
		}
		states := make([]pcm.State, (nbits+1)/2)
		PackBitsToStates(bits, states)
		want := UnpackStatesToBits(states, nbits)
		got := make([]uint8, nbits)
		UnpackBits(states, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("UnpackBits differs at bit %d", i)
			}
		}
	}
}
