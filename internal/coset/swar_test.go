package coset

import (
	"testing"

	"wlcrc/internal/memline"
	"wlcrc/internal/pcm"
	"wlcrc/internal/prng"
)

// allBijections enumerates every bijective symbol-to-state mapping (all
// 24 permutations), a superset of Table I, SixCosets and the FNW flip
// mapping, so the SWAR engine is proven for any candidate a scheme could
// construct.
func allBijections() []Mapping {
	var out []Mapping
	states := [4]pcm.State{pcm.S1, pcm.S2, pcm.S3, pcm.S4}
	var permute func(k int)
	permute = func(k int) {
		if k == 4 {
			out = append(out, Mapping{states[0], states[1], states[2], states[3]})
			return
		}
		for i := k; i < 4; i++ {
			states[k], states[i] = states[i], states[k]
			permute(k + 1)
			states[k], states[i] = states[i], states[k]
		}
	}
	permute(0)
	return out
}

// randStates fills a 32-cell old-state vector from two plane words.
func oldFromBits(bits uint64) []pcm.State {
	old := make([]pcm.State, memline.WordCells)
	for c := range old {
		old[c] = pcm.State(bits >> uint(2*c) & 3)
	}
	return old
}

func TestPlanesRoundTrip(t *testing.T) {
	r := prng.New(1)
	for trial := 0; trial < 2000; trial++ {
		word := r.Uint64()
		lo, hi := memline.LoHiPlanes(word)
		if lo>>32 != 0 || hi>>32 != 0 {
			t.Fatalf("planes of %#x overflow 32 bits: %#x %#x", word, lo, hi)
		}
		if got := memline.InterleavePlanes(lo, hi); got != word {
			t.Fatalf("InterleavePlanes(LoHiPlanes(%#x)) = %#x", word, got)
		}
		// Plane bit c must equal data bits 2c / 2c+1.
		for c := 0; c < memline.WordCells; c++ {
			if lo>>uint(c)&1 != word>>uint(2*c)&1 || hi>>uint(c)&1 != word>>uint(2*c+1)&1 {
				t.Fatalf("plane bit %d of %#x wrong", c, word)
			}
		}
	}
}

func TestPackUnpackStatesRoundTrip(t *testing.T) {
	r := prng.New(2)
	for trial := 0; trial < 2000; trial++ {
		old := oldFromBits(r.Uint64())
		lo, hi := PackStates(old)
		got := make([]pcm.State, memline.WordCells)
		UnpackStates(lo, hi, got)
		for c := range old {
			if got[c] != old[c] {
				t.Fatalf("trial %d: cell %d: %v != %v", trial, c, got[c], old[c])
			}
		}
		// Short-destination unpack writes exactly len(dst) cells.
		short := make([]pcm.State, 13)
		UnpackStates(lo, hi, short)
		for c := range short {
			if short[c] != old[c] {
				t.Fatalf("short unpack cell %d differs", c)
			}
		}
	}
}

// TestCostCountMatchesScalarAndTable is the central SWAR==scalar
// equivalence property: for every bijection, CostCount, the scalar
// reference, and the PR 2 CostTable accumulation agree exactly on cost
// and update count over random words, old states and masks.
func TestCostCountMatchesScalarAndTable(t *testing.T) {
	em := pcm.DefaultEnergy()
	r := prng.New(3)
	for _, m := range allBijections() {
		swar := m.SWAR(&em)
		tab := m.CostTable(&em)
		for trial := 0; trial < 400; trial++ {
			word := r.Uint64()
			old := oldFromBits(r.Uint64())
			mask := r.Uint64() & AllCells
			if trial%8 == 0 {
				mask = AllCells
			}
			var p WordPlanes
			p.Init(word, old)

			gotCost, gotUpd := swar.CostCount(&p, mask)
			refCost, refUpd := swar.CostCountRef(word, old, mask)
			if gotCost != refCost || gotUpd != refUpd {
				t.Fatalf("%v: CostCount (%v,%d) != scalar ref (%v,%d)", m, gotCost, gotUpd, refCost, refUpd)
			}

			// CostTable path over the masked subset.
			var syms []uint8
			var sub []pcm.State
			for c := 0; c < memline.WordCells; c++ {
				if mask>>uint(c)&1 == 1 {
					syms = append(syms, uint8(word>>uint(2*c)&3))
					sub = append(sub, old[c])
				}
			}
			tabCost, tabUpd := tab.BlockCostUpdates(syms, sub)
			if gotCost != tabCost || gotUpd != tabUpd {
				t.Fatalf("%v: CostCount (%v,%d) != CostTable (%v,%d)", m, gotCost, gotUpd, tabCost, tabUpd)
			}

			// Counts/CostOf regrouping must agree too.
			var cnt [4]int
			swar.Counts(&p, mask, &cnt)
			if c2, u2 := swar.CostOf(&cnt); c2 != gotCost || u2 != gotUpd {
				t.Fatalf("%v: Counts/CostOf (%v,%d) != CostCount (%v,%d)", m, c2, u2, gotCost, gotUpd)
			}
		}
	}
}

// TestBestSWARMatchesBestTable pins winner index and cost (including
// the lowest-index tie-break) against the PR 2 path for the Table I and
// SixCosets candidate sets.
func TestBestSWARMatchesBestTable(t *testing.T) {
	em := pcm.DefaultEnergy()
	sets := [][]Mapping{Table1[:], SixCosets(), Table1[:3]}
	r := prng.New(4)
	for _, cands := range sets {
		swar := SWARTables(&em, cands)
		tabs := CostTables(&em, cands)
		for trial := 0; trial < 600; trial++ {
			word := r.Uint64()
			old := oldFromBits(r.Uint64())
			n := 1 + r.Intn(memline.WordCells)
			if trial%7 == 0 {
				// All-equal blocks force ties; the lowest index must win.
				word = 0
			}
			var p WordPlanes
			p.Init(word, old)
			gotIdx, gotCost := BestSWAR(swar, &p, CellMask(0, n))

			var syms [memline.WordCells]uint8
			for c := 0; c < n; c++ {
				syms[c] = uint8(word >> uint(2*c) & 3)
			}
			wantIdx, wantCost := BestTable(tabs, syms[:n], old[:n])
			if gotIdx != wantIdx || gotCost != wantCost {
				t.Fatalf("BestSWAR = (%d, %v), BestTable = (%d, %v)", gotIdx, gotCost, wantIdx, wantCost)
			}
		}
	}
}

// TestApplyMatchesEncode proves mapping application (and its inverse)
// agrees with the per-cell table path for every bijection.
func TestApplyMatchesEncode(t *testing.T) {
	em := pcm.DefaultEnergy()
	r := prng.New(5)
	for _, m := range allBijections() {
		swar := m.SWAR(&em)
		tab := m.CostTable(&em)
		for trial := 0; trial < 300; trial++ {
			word := r.Uint64()
			var p WordPlanes
			p.SetData(word)
			lo, hi := swar.Apply(&p)
			var got [memline.WordCells]pcm.State
			UnpackStates(lo, hi, got[:])

			var syms [memline.WordCells]uint8
			memline.WordSymbols(word, &syms)
			var want [memline.WordCells]pcm.State
			tab.Encode(syms[:], want[:])
			if got != want {
				t.Fatalf("%v: Apply differs from Encode on %#x", m, word)
			}

			// Inverse: decode the states back to the original word.
			slo, shi := PackStates(want[:])
			dlo, dhi := swar.ApplyInvPlanes(slo, shi)
			if back := memline.InterleavePlanes(dlo, dhi); back != word {
				t.Fatalf("%v: ApplyInvPlanes round trip %#x -> %#x", m, word, back)
			}
		}
	}
}

// TestC1SWARApplyOnly pins the apply-only package table: zero energies,
// same mapping behavior as C1.
func TestC1SWARApplyOnly(t *testing.T) {
	if C1SWAR.States != C1 {
		t.Fatalf("C1SWAR.States = %v", C1SWAR.States)
	}
	if C1SWAR.Energy != [4]float64{} {
		t.Fatalf("C1SWAR.Energy = %v, want zeros", C1SWAR.Energy)
	}
	var p WordPlanes
	p.SetData(0x0123456789ABCDEF)
	lo, hi := C1SWAR.Apply(&p)
	var got [memline.WordCells]pcm.State
	UnpackStates(lo, hi, got[:])
	for c := range got {
		if want := C1[0x0123456789ABCDEF>>uint(2*c)&3]; got[c] != want {
			t.Fatalf("cell %d: %v != %v", c, got[c], want)
		}
	}
}
