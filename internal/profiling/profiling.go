// Package profiling wires the standard pprof/trace collection flags
// into the command-line tools: a CPU profile and an execution trace
// stream for the duration of the run, and a heap profile snapshotted at
// stop. It exists so pcmsim and experiments share one tested
// implementation of the file handling and shutdown ordering.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins collecting the requested profiles. Empty paths disable
// the corresponding collector; Start with all paths empty is a no-op
// that still returns a valid stop function. The returned stop must be
// called exactly once before the process exits — deferred stops do not
// survive os.Exit — and flushes, in order: the CPU profile, the
// execution trace, then a garbage-collected heap profile.
func Start(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			cleanup()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	if tracePath != "" {
		traceF, err = os.Create(tracePath)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("profiling: start trace: %w", err)
		}
	}
	return func() error {
		cleanup()
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize the live heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("profiling: write heap profile: %w", err)
		}
		return nil
	}, nil
}
