package workload

import (
	"fmt"

	"wlcrc/internal/memline"
	"wlcrc/internal/prng"
	"wlcrc/internal/trace"
)

// Generator synthesizes an infinite write stream for one profile. It
// tracks the current content of every line in the working set so each
// emitted request carries both the value being overwritten and the new
// value, exactly like the paper's Simics traces (§VII.A).
type Generator struct {
	prof  Profile
	rng   *prng.Xoshiro256
	lines []lineSlot
	// hotLines get hotFraction of the writes (temporal locality).
	hot int
}

type lineSlot struct {
	ctx  lineContext
	data memline.Line
	init bool
}

const (
	hotSetFraction = 0.2 // fraction of lines that are "hot"
	hotWriteProb   = 0.8 // fraction of writes that go to the hot set
)

// NewGenerator builds a generator for prof with a deterministic seed.
// footprint overrides the profile's working-set size when positive.
func NewGenerator(prof Profile, footprint int, seed uint64) *Generator {
	if footprint <= 0 {
		footprint = prof.FootprintLines
	}
	if footprint <= 0 {
		footprint = 1024
	}
	g := &Generator{
		prof:  prof,
		rng:   prng.New(seed ^ hashName(prof.Name)),
		lines: make([]lineSlot, footprint),
		hot:   int(float64(footprint) * hotSetFraction),
	}
	if g.hot < 1 {
		g.hot = 1
	}
	return g
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// pickArchetype draws a line archetype from the profile mixture.
func (g *Generator) pickArchetype() Archetype {
	return Archetype(g.rng.Pick(g.prof.Mix[:]))
}

// Next implements trace.Source; it never ends.
func (g *Generator) Next() (trace.Request, bool) {
	var req trace.Request
	g.genInto(&req)
	return req, true
}

// NextBatch implements trace.BatchSource: the stream never ends, so dst
// is always filled completely. Each request is generated directly into
// its slot, so bulk consumers (trace.Record, the engine's ingest stage)
// skip the per-request interface call and 136-byte struct copy of Next.
// The draw sequence is identical to len(dst) Next calls.
func (g *Generator) NextBatch(dst []trace.Request) int {
	for i := range dst {
		g.genInto(&dst[i])
	}
	return len(dst)
}

// genInto generates the next request of the stream in place. It assigns
// every field of req — callers hand in recycled buffers with stale
// content.
func (g *Generator) genInto(req *trace.Request) {
	var addr int
	if g.rng.Bool(hotWriteProb) {
		addr = g.rng.Intn(g.hot)
	} else {
		addr = g.rng.Intn(len(g.lines))
	}
	slot := &g.lines[addr]
	if !slot.init {
		slot.ctx = newContext(g.pickArchetype(), g.rng)
		slot.data = slot.ctx.genLine(g.rng)
		slot.init = true
		// The first write to a line stores its initial content over an
		// all-zero line.
		req.Addr = uint64(addr)
		req.Old = memline.Line{}
		req.New = slot.data
		return
	}
	old := slot.data
	next := old
	fresh := g.rng.Bool(g.prof.Rewrite.FreshProb)
	if fresh && g.rng.Bool(g.prof.Rewrite.RerollProb) {
		// The line is repurposed to a different population (allocator
		// reuse): a genuinely full rewrite.
		slot.ctx = newContext(g.pickArchetype(), g.rng)
		next = slot.ctx.genLine(g.rng)
	} else if fresh && !incompressibleArch(slot.ctx.arch) {
		// Full-line value update within the population.
		next = slot.ctx.genLine(g.rng)
	} else {
		// Partial update of a few words. Noise-like populations (text
		// buffers, random blobs, double arrays) are always updated
		// in place — nobody rewrites a whole entropy-dense line on
		// every store, and modeling them as full rewrites would let a
		// handful of incompressible lines dominate every scheme's
		// energy equally, masking the encoders under study.
		n := g.wordsThisWrite()
		if fresh {
			n = memline.LineWords / 2
		}
		for i := 0; i < n; i++ {
			w := g.rng.Intn(memline.LineWords)
			slot.ctx.mutateWord(w, &next, g.rng)
		}
	}
	slot.data = next
	req.Addr = uint64(addr)
	req.Old = old
	req.New = next
}

// incompressibleArch marks the entropy-dense populations that are
// updated in place rather than wholesale.
func incompressibleArch(a Archetype) bool {
	return a == Text || a == Random || a == Double
}

// wordsThisWrite draws the number of words a partial update touches,
// with mean Rewrite.WordsPerWrite.
func (g *Generator) wordsThisWrite() int {
	mean := g.prof.Rewrite.WordsPerWrite
	if mean <= 1 {
		mean = 1
	}
	n := int(mean)
	if g.rng.Float64() < mean-float64(n) {
		n++
	}
	if n < 1 {
		n = 1
	}
	if n > memline.LineWords {
		n = memline.LineWords
	}
	return n
}

// Limited wraps a source with a request budget, turning the infinite
// generator into a finite trace.
type Limited struct {
	Src trace.Source
	N   int
}

// Next implements trace.Source.
func (l *Limited) Next() (trace.Request, bool) {
	if l.N <= 0 {
		return trace.Request{}, false
	}
	l.N--
	return l.Src.Next()
}

// NextBatch implements trace.BatchSource: the batch is clipped to the
// remaining budget and filled through the wrapped source's own batch
// path when it has one, so the limit costs one slice bound instead of a
// per-request check.
func (l *Limited) NextBatch(dst []trace.Request) int {
	if l.N <= 0 {
		return 0
	}
	if len(dst) > l.N {
		dst = dst[:l.N]
	}
	var n int
	if bs, ok := l.Src.(trace.BatchSource); ok {
		n = bs.NextBatch(dst)
	} else {
		for n < len(dst) {
			req, ok := l.Src.Next()
			if !ok {
				break
			}
			dst[n] = req
			n++
		}
	}
	l.N -= n
	return n
}

// Describe summarizes a profile for reports.
func Describe(p Profile) string {
	group := "LMI"
	if p.HMI {
		group = "HMI"
	}
	return fmt.Sprintf("%s (%s, fresh=%.2f, words=%.1f)", p.Name, group,
		p.Rewrite.FreshProb, p.Rewrite.WordsPerWrite)
}
