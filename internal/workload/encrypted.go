package workload

import (
	"wlcrc/internal/trace"
	"wlcrc/internal/vcc"
)

// Encrypted wraps any write-request source in the counter-mode
// encryption model of internal/vcc: the stream the simulator replays is
// the ciphertext an encrypted DIMM would actually store, with every
// write re-encrypted under the line's incremented counter. This is the
// encrypted workload mode of the evaluation — under it no line is
// WLC-compressible, so compression-gated schemes collapse to their raw
// fallback. key 0 means vcc.DefaultKey.
func Encrypted(src trace.Source, key uint64) trace.Source {
	return vcc.NewEncryptSource(src, key)
}
